#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the bbserve daemon.
#
# Boots bbserve on an ephemeral port, then walks the contract a deployment
# cares about:
#   1. /healthz and /readyz answer;
#   2. POST /v1/solve on a chain-100 instance returns 200 with an optimal
#      mapping and a pattern hash;
#   3. a deliberately impossible deadline (deadline_ms=1) returns a
#      structured 504 with code "deadline";
#   4. POST /v1/sweep returns every requested point;
#   5. SIGTERM drains gracefully: /readyz flips to 503 and the process
#      exits 0.
#
# Requires: curl, jq. Run from the repository root:
#   ./scripts/serve_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/bbserve" ./cmd/bbserve
go run ./cmd/bbgen -preset chain -n 100 -out "$workdir/chain100.json"

ADDR=127.0.0.1:18406
echo "== boot bbserve on $ADDR"
"$workdir/bbserve" -addr "$ADDR" -drain-timeout 30s >"$workdir/serve.log" 2>&1 &
SERVE_PID=$!
# The daemon prints its listening line after the socket is bound; wait for it.
for i in $(seq 1 100); do
    if grep -q "listening" "$workdir/serve.log"; then break; fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "bbserve died during startup:" >&2; cat "$workdir/serve.log" >&2; exit 1
    fi
    sleep 0.1
done

fail() { echo "FAIL: $*" >&2; cat "$workdir/serve.log" >&2; kill "$SERVE_PID" 2>/dev/null || true; exit 1; }

echo "== health endpoints"
curl -fsS "http://$ADDR/healthz" | jq -e '.status == "ok"' >/dev/null || fail "healthz"
curl -fsS "http://$ADDR/readyz" | jq -e '.status == "ready"' >/dev/null || fail "readyz"

echo "== solve chain-100"
jq -n --slurpfile cfg "$workdir/chain100.json" '{config: $cfg[0]}' >"$workdir/solve.json"
curl -fsS -X POST --data-binary @"$workdir/solve.json" "http://$ADDR/v1/solve" >"$workdir/solve_out.json" \
    || fail "solve request"
jq -e '.status == "optimal"' "$workdir/solve_out.json" >/dev/null || fail "solve not optimal: $(cat "$workdir/solve_out.json")"
jq -e '.mapping.budgets | length == 100' "$workdir/solve_out.json" >/dev/null || fail "mapping has wrong task count"
jq -e '.pattern | length == 16' "$workdir/solve_out.json" >/dev/null || fail "missing pattern hash"

echo "== impossible deadline is a structured 504"
jq -n --slurpfile cfg "$workdir/chain100.json" '{config: $cfg[0], deadline_ms: 1}' >"$workdir/late.json"
http_code=$(curl -sS -o "$workdir/late_out.json" -w '%{http_code}' -X POST \
    --data-binary @"$workdir/late.json" "http://$ADDR/v1/solve")
[ "$http_code" = "504" ] || fail "deadline_ms=1 returned HTTP $http_code, want 504"
jq -e '.error.code == "deadline"' "$workdir/late_out.json" >/dev/null || fail "504 body: $(cat "$workdir/late_out.json")"

echo "== sweep"
jq -n --slurpfile cfg "$workdir/chain100.json" '{config: $cfg[0], caps: [2, 4]}' >"$workdir/sweep.json"
curl -fsS -X POST --data-binary @"$workdir/sweep.json" "http://$ADDR/v1/sweep" >"$workdir/sweep_out.json" \
    || fail "sweep request"
jq -e '.completed == 2 and (.points | length == 2)' "$workdir/sweep_out.json" >/dev/null \
    || fail "sweep body: $(cat "$workdir/sweep_out.json")"

echo "== counters"
curl -fsS "http://$ADDR/debug/vars" | jq -e '.requests.accepted >= 3 and .cache.misses >= 1' >/dev/null \
    || fail "debug vars"

echo "== graceful drain on SIGTERM"
kill -TERM "$SERVE_PID"
rc=0; wait "$SERVE_PID" || rc=$?
[ "$rc" = "0" ] || fail "bbserve exited $rc after SIGTERM, want 0"
grep -q "drained cleanly" "$workdir/serve.log" || fail "no clean-drain log line"

echo "PASS: bbserve smoke"
