package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/taskgraph"
)

func writeConfig(t *testing.T, c *taskgraph.Config) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunJoint(t *testing.T) {
	path := writeConfig(t, gen.PaperT1(4))
	var out, errb bytes.Buffer
	mapPath := filepath.Join(t.TempDir(), "m.json")
	code := run(context.Background(), []string{"-config", path, "-out", mapPath}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "status: optimal") {
		t.Fatalf("missing status:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "21.83") {
		t.Fatalf("budget value not reported:\n%s", out.String())
	}
	m, err := taskgraph.ReadMappingFile(mapPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Capacities["bab"] != 4 {
		t.Fatalf("written mapping wrong: %+v", m)
	}
}

func TestRunBudgetFirst(t *testing.T) {
	path := writeConfig(t, gen.PaperT1(0))
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path, "-method", "budget-first"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "status: optimal") {
		t.Fatal("budget-first did not succeed")
	}
	// Fair-share variant.
	out.Reset()
	if code := run(context.Background(), []string{"-config", path, "-method", "budget-first", "-policy", "fair-share"}, &out, &errb); code != 0 {
		t.Fatalf("fair-share exit %d", code)
	}
}

func TestRunBufferFirst(t *testing.T) {
	path := writeConfig(t, gen.PaperT1(5))
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path, "-method", "buffer-first", "-quiet"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestRunInfeasibleExitCode(t *testing.T) {
	c := gen.PaperT1(0)
	c.Graphs[0].Period = 0.5
	path := writeConfig(t, c)
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "infeasible") {
		t.Fatalf("missing infeasible status:\n%s", out.String())
	}
}

func TestRunBinding(t *testing.T) {
	c := gen.PaperT1(1)
	c.Graphs[0].Period = 4.2
	c.Graphs[0].Tasks[0].Processor = "p1"
	c.Graphs[0].Tasks[1].Processor = "p1" // infeasible binding; search must fix it
	path := writeConfig(t, c)
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path, "-bind", "exhaustive", "-quiet"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "binding search") {
		t.Fatal("binding report missing")
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("missing -config: exit %d", code)
	}
	path := writeConfig(t, gen.PaperT1(0))
	if code := run(context.Background(), []string{"-config", path, "-method", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad method: exit %d", code)
	}
	if code := run(context.Background(), []string{"-config", path, "-method", "budget-first", "-policy", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad policy: exit %d", code)
	}
	if code := run(context.Background(), []string{"-config", path, "-bind", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad bind: exit %d", code)
	}
	if code := run(context.Background(), []string{"-config", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
}
