// Command bbmap computes budgets and buffer capacities for a task-graph
// configuration, using the paper's joint second-order cone program or one of
// the classical two-phase baselines, optionally searching task/buffer
// bindings first.
//
// Usage:
//
//	bbmap -config cfg.json [-method joint|budget-first|buffer-first]
//	      [-policy minimal-rate|fair-share] [-bind exhaustive|greedy]
//	      [-out mapping.json] [-quiet]
//
// The configuration format is the JSON encoding of taskgraph.Config; see
// cmd/bbgen for generators and examples/ for programmatic construction.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/binding"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/mrate"
	"repro/internal/taskgraph"
	"repro/internal/textplot"
)

func main() {
	ctx, stop := cli.SignalContext()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configPath = fs.String("config", "", "configuration JSON file (required)")
		method     = fs.String("method", "joint", "joint | budget-first | buffer-first")
		policy     = fs.String("policy", "minimal-rate", "budget-first phase-1 policy: minimal-rate | fair-share")
		bind       = fs.String("bind", "", "also search task/buffer bindings: exhaustive | greedy")
		outPath    = fs.String("out", "", "write the mapping as JSON to this file")
		quiet      = fs.Bool("quiet", false, "suppress the human-readable report")
		timeout    = fs.Duration("timeout", 0, "abort solving after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *configPath == "" {
		fmt.Fprintln(stderr, "bbmap: -config is required")
		fs.Usage()
		return 2
	}
	cfg, err := taskgraph.ReadFile(*configPath)
	if err != nil {
		fmt.Fprintln(stderr, "bbmap:", err)
		return 1
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	if *bind != "" {
		var br *binding.Result
		switch *bind {
		case "exhaustive":
			br, err = binding.Exhaustive(ctx, cfg, core.Options{}, 0)
		case "greedy":
			br, err = binding.Greedy(ctx, cfg, core.Options{}, 0)
		default:
			fmt.Fprintf(stderr, "bbmap: unknown binding mode %q\n", *bind)
			return 2
		}
		if err != nil {
			fmt.Fprintln(stderr, "bbmap:", err)
			return 1
		}
		fmt.Fprintf(stdout, "binding search (%s): evaluated %d candidates\n", *bind, br.Evaluated)
		cfg = br.Config
	}

	var res *core.Result
	switch *method {
	case "joint":
		if cfg.MultiRate() {
			// Multi-rate graphs use the hybrid solver (fixed-capacity cone
			// programs inside a capacity search).
			mr, merr := mrate.Solve(ctx, cfg, mrate.Options{})
			if merr != nil {
				fmt.Fprintln(stderr, "bbmap:", merr)
				return 1
			}
			res = &core.Result{
				Status:            mr.Status,
				Mapping:           mr.Mapping,
				ContinuousBudgets: mr.ContinuousBudgets,
				ContinuousDeltas:  map[string]float64{},
				Verification:      mr.Verification,
			}
			break
		}
		res, err = core.Solve(ctx, cfg, core.Options{})
	case "budget-first":
		pol := core.BudgetMinimalRate
		switch *policy {
		case "fair-share":
			pol = core.BudgetFairShare
		case "minimal-rate":
		default:
			fmt.Fprintf(stderr, "bbmap: unknown policy %q\n", *policy)
			return 2
		}
		res, err = core.TwoPhaseBudgetFirst(ctx, cfg, pol, core.Options{})
	case "buffer-first":
		res, err = core.TwoPhaseBufferFirst(ctx, cfg, nil, core.Options{})
	default:
		fmt.Fprintf(stderr, "bbmap: unknown method %q\n", *method)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "bbmap:", err)
		return 1
	}

	if res.Status != core.StatusOptimal {
		fmt.Fprintf(stdout, "status: %v (solver: %v)\n", res.Status, res.SolverStatus)
		return 1
	}
	if !*quiet {
		report(stdout, cfg, res)
	}
	if *outPath != "" {
		if err := res.Mapping.WriteFile(*outPath); err != nil {
			fmt.Fprintln(stderr, "bbmap:", err)
			return 1
		}
	}
	return 0
}

func report(w io.Writer, cfg *taskgraph.Config, res *core.Result) {
	fmt.Fprintf(w, "status: %v (%d interior-point iterations)\n\n", res.Status, res.SolverIterations)
	bt := textplot.NewTable("task", "processor", "budget (Mcycles)", "relaxed value")
	for _, tg := range cfg.Graphs {
		for _, task := range tg.Tasks {
			bt.AddRow(task.Name, task.Processor, res.Mapping.Budgets[task.Name], res.ContinuousBudgets[task.Name])
		}
	}
	fmt.Fprintln(w, bt.String())
	ct := textplot.NewTable("buffer", "memory", "capacity (containers)", "relaxed tokens")
	for _, tg := range cfg.Graphs {
		for _, b := range tg.Buffers {
			ct.AddRow(b.Name, b.Memory, res.Mapping.Capacities[b.Name], res.ContinuousDeltas[b.Name])
		}
	}
	fmt.Fprintln(w, ct.String())
	fmt.Fprintf(w, "objective: %.6g\n", res.Mapping.Objective)
	if v := res.Verification; v != nil {
		fmt.Fprintf(w, "verified: %v\n", v.OK)
		var names []string
		for g := range v.GraphMinPeriods {
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			fmt.Fprintf(w, "  graph %s: model min period %.6g\n", g, v.GraphMinPeriods[g])
		}
	}
}
