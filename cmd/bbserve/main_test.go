package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/serve"
)

func TestRunFlagErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2 for a flag error", code)
	}
	if code := run(context.Background(), []string{"-addr", "definitely:not:an:addr"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1 for an unusable listen address", code)
	}
}

// TestServeAndDrainLifecycle boots the daemon on an ephemeral port, solves
// over real HTTP, then delivers the shutdown signal (a context cancel — the
// same path SIGTERM takes) and checks the daemon drains cleanly with exit
// code 0.
func TestServeAndDrainLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var out, errOut bytes.Buffer
	exit := make(chan int, 1)
	go func() { exit <- serveAndDrain(ctx, ln, srv, time.Minute, &out, &errOut) }()

	base := "http://" + ln.Addr().String()
	cfg, err := json.Marshal(gen.Chain(gen.ChainOptions{Tasks: 4}))
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"config": %s}`, cfg)
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("solve request: %v", err)
	}
	var solved struct {
		Status  string          `json:"status"`
		Mapping json.RawMessage `json:"mapping"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || solved.Status != "optimal" {
		t.Fatalf("solve: HTTP %d status %q", resp.StatusCode, solved.Status)
	}

	if resp, err = http.Get(base + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d before shutdown", resp.StatusCode)
	}

	cancel() // the shutdown signal
	if code := <-exit; code != 0 {
		t.Fatalf("exit %d, want 0 after a clean drain; stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"draining", "drained cleanly"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("stdout %q missing %q", out.String(), want)
		}
	}
}
