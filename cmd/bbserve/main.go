// Command bbserve is the solver daemon: an HTTP/JSON front end over the
// joint budget/buffer solver with admission control, per-request deadlines,
// failure isolation, per-pattern circuit breaking, and graceful drain on
// SIGTERM. See internal/serve for the robustness layer and README.md for
// the wire format.
//
// Usage:
//
//	bbserve -addr 127.0.0.1:8080
//
// SIGTERM (or SIGINT) starts a graceful drain: /readyz flips to 503, new
// requests are rejected, and in-flight solves get up to -drain-timeout to
// finish before their contexts are canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	ctx, stop := cli.SignalContext(os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers      = fs.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "admission queue depth beyond the running solves (0 = 2×workers)")
		maxDeadline  = fs.Duration("max-deadline", 60*time.Second, "upper bound on any request's deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight solves before canceling them (0 = forever)")
		breakerTrip  = fs.Int("breaker-trip", 3, "consecutive ladder recoveries that open a pattern's circuit breaker")
		breakerProbe = fs.Int("breaker-probe", 16, "open-state requests between half-open breaker probes")
		parallel     = fs.Int("parallel", 0, "per-sweep worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		logLevel     = fs.String("log-level", "info", "request log level: debug, info, warn, error, or off")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logger, err := requestLogger(stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "bbserve:", err)
		return 2
	}
	srv := serve.New(serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		MaxDeadline:       *maxDeadline,
		BreakerTrip:       *breakerTrip,
		BreakerProbeEvery: *breakerProbe,
		Solve:             core.Options{Parallelism: *parallel},
		Logger:            logger,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "bbserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "bbserve: listening on http://%s\n", ln.Addr())
	return serveAndDrain(ctx, ln, srv, *drainTimeout, stdout, stderr)
}

// requestLogger builds the JSON request logger for -log-level; "off"
// disables request logging entirely (the serve layer treats nil as off).
func requestLogger(w io.Writer, level string) (*slog.Logger, error) {
	if level == "off" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: want debug, info, warn, error, or off", level)
	}
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lvl})), nil
}

// serveAndDrain serves srv on ln until ctx is canceled (the shutdown
// signal), then drains: admissions stop immediately, in-flight solves get up
// to drainTimeout, stragglers are context-canceled, and the HTTP server
// shuts down last so every response is written. Exit code 0 means every
// accepted request finished; 1 means the drain bound expired and stragglers
// were canceled (their clients received 504s).
func serveAndDrain(ctx context.Context, ln net.Listener, srv *serve.Server, drainTimeout time.Duration, stdout, stderr io.Writer) int {
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "bbserve:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "bbserve: shutdown signal received; draining")
	srv.BeginDrain()
	// The drain deliberately does NOT inherit ctx: ctx is the shutdown
	// signal itself and is already canceled here — deriving from it would
	// turn every graceful drain into an instant force-cancel.
	//bbvet:allow ctxflow ctx is already canceled; the drain needs a fresh bound
	dctx, dcancel := cli.WithTimeout(context.Background(), drainTimeout)
	defer dcancel()
	//bbvet:allow ctxflow ctx is already canceled; the drain needs a fresh bound
	drainErr := srv.Drain(dctx)

	// All solves are done (or canceled); now close the listener and let any
	// remaining response writes and idle keep-alives wind down.
	//bbvet:allow ctxflow ctx is already canceled; shutdown needs a fresh bound
	sctx, scancel := cli.WithTimeout(context.Background(), drainTimeout)
	defer scancel()
	//bbvet:allow ctxflow ctx is already canceled; shutdown needs a fresh bound
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "bbserve: http shutdown:", err)
	}
	<-errc // Serve has returned http.ErrServerClosed

	if drainErr != nil {
		fmt.Fprintln(stderr, "bbserve: drain bound expired; canceled in-flight solves")
		return 1
	}
	fmt.Fprintln(stdout, "bbserve: drained cleanly")
	return 0
}
