// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so CI can archive benchmark runs as machine-readable
// artifacts (e.g. BENCH_sweep.json) and diff them across commits.
//
// Usage:
//
//	go test -run=NONE -bench=Sweep -benchtime=1x . | benchjson [-out file.json]
//
// Input is read from stdin. Benchmark result lines ("BenchmarkX-8  10
// 123 ns/op  45 B/op  6 allocs/op") become entries with the iteration count
// and every (value, unit) metric pair; goos/goarch/pkg/cpu header lines
// become top-level metadata. Unrecognized lines are ignored, so raw `go
// test` output (including -v noise and PASS/ok trailers) pipes straight
// through. Exits nonzero if no benchmark line was found — a silent empty
// artifact would hide a broken bench invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return 1
		}
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	return rep, nil
}

// parseBench parses "BenchmarkName-8  10  123 ns/op  45 B/op ...": the
// iteration count, then (value, unit) pairs until the fields run out.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
