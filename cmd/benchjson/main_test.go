package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.00GHz
BenchmarkSweepWarmVsCold/cold-8   	       1	2048123456 ns/op
BenchmarkSweepWarmVsCold/warm-8   	       1	 316123456 ns/op	     120 B/op	       4 allocs/op
--- BENCH: BenchmarkSweepWarmVsCold/warm-8
    bench_test.go:200: total IPM iterations: 48
BenchmarkDSEBisect-8              	       1	 240000000 ns/op
PASS
ok  	repro	3.1s
`

func TestParseBenchOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Pkg != "repro" || rep.CPU == "" {
		t.Fatalf("metadata: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(rep.Benchmarks))
	}
	warm := rep.Benchmarks[1]
	if warm.Name != "BenchmarkSweepWarmVsCold/warm-8" || warm.Iterations != 1 {
		t.Fatalf("warm entry: %+v", warm)
	}
	if warm.Metrics["ns/op"] != 316123456 || warm.Metrics["B/op"] != 120 || warm.Metrics["allocs/op"] != 4 {
		t.Fatalf("warm metrics: %+v", warm.Metrics)
	}
}

func TestWriteToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-out", path}, strings.NewReader(sample), &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("%d benchmarks, want 3", len(rep.Benchmarks))
	}
}

func TestNoBenchmarksFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\nok\trepro\t0.1s\n"), &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "no benchmark result lines") {
		t.Fatalf("stderr: %s", errb.String())
	}
}

func TestMalformedLinesIgnored(t *testing.T) {
	in := "BenchmarkGood-4 2 100 ns/op\nBenchmarkBadIters-4 x 100 ns/op\nBenchmarkOddFields-4 2 100\n"
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(in), &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkGood-4" {
		t.Fatalf("benchmarks: %+v", rep.Benchmarks)
	}
}
