package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/taskgraph"
)

func TestGenPresetsToStdout(t *testing.T) {
	for _, preset := range []string{"t1", "t2", "chain", "ring", "fanout", "dag", "random"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-preset", preset}, &out, &errb); code != 0 {
			t.Fatalf("%s: exit %d: %s", preset, code, errb.String())
		}
		var cfg taskgraph.Config
		if err := json.Unmarshal(out.Bytes(), &cfg); err != nil {
			t.Fatalf("%s: invalid JSON: %v", preset, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: invalid config: %v", preset, err)
		}
	}
}

func TestGenToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-preset", "t2", "-cap", "3", "-out", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	cfg, err := taskgraph.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Graphs[0].Buffers[0].MaxContainers != 3 {
		t.Fatal("cap not applied")
	}
}

func TestGenChainOptions(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-preset", "chain", "-tasks", "6", "-procs", "2"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	var cfg taskgraph.Config
	if err := json.Unmarshal(out.Bytes(), &cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Processors) != 2 || len(cfg.Graphs[0].Tasks) != 6 {
		t.Fatalf("chain options ignored: %d procs %d tasks", len(cfg.Processors), len(cfg.Graphs[0].Tasks))
	}
}

func TestGenErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-preset", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("unknown preset: exit %d", code)
	}
	if !strings.Contains(errb.String(), "unknown preset") {
		t.Fatal("missing error message")
	}
	if code := run([]string{"-preset", "t1", "-out", "/nonexistent-dir/x.json"}, &out, &errb); code != 1 {
		t.Fatalf("unwritable out: exit %d", code)
	}
}

func TestGenLargeInstances(t *testing.T) {
	for _, tc := range []struct {
		args      []string
		wantTasks int
	}{
		{[]string{"-preset", "chain", "-n", "1500"}, 1500},
		{[]string{"-preset", "fanout", "-n", "1000", "-procs", "8"}, 1002},
		{[]string{"-preset", "dag", "-n", "1200", "-seed", "9"}, 1200},
	} {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != 0 {
			t.Fatalf("%v: exit %d: %s", tc.args, code, errb.String())
		}
		var cfg taskgraph.Config
		if err := json.Unmarshal(out.Bytes(), &cfg); err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if got := len(cfg.Graphs[0].Tasks); got != tc.wantTasks {
			t.Fatalf("%v: %d tasks, want %d", tc.args, got, tc.wantTasks)
		}
	}
}
