// Command bbgen generates task-graph configuration files: the paper's
// experiment instances, parametric chains and rings, and random multi-job
// systems.
//
// Usage:
//
//	bbgen -preset t1|t2|chain|ring|fanout|dag|random [-out cfg.json]
//	      [-cap N] [-n N] [-tasks N] [-procs N] [-jobs N] [-seed N]
//
// The chain, fanout, and dag presets scale to thousands of tasks (-n), the
// large-instance topologies used by the cache and warm-start benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/taskgraph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset = fs.String("preset", "t1", "t1 | t2 | chain | ring | fanout | dag | random")
		out    = fs.String("out", "", "output file (default: stdout)")
		cap    = fs.Int("cap", 0, "buffer capacity cap in containers (0 = uncapped)")
		tasks  = fs.Int("tasks", 4, "tasks per chain/ring (legacy alias of -n)")
		n      = fs.Int("n", 0, "size for chain/ring/fanout/dag: tasks, or fan-out width (overrides -tasks; scales to thousands)")
		procs  = fs.Int("procs", 0, "shared processors for chain/fanout/dag (0 = one per task)")
		jobs   = fs.Int("jobs", 2, "jobs for the random preset")
		seed   = fs.Int64("seed", 1, "seed for the random and dag presets")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	size := *tasks
	if *n > 0 {
		size = *n
	}

	var cfg *taskgraph.Config
	switch *preset {
	case "t1":
		cfg = gen.PaperT1(*cap)
	case "t2":
		cfg = gen.PaperT2(*cap)
	case "chain":
		cfg = gen.Chain(gen.ChainOptions{Tasks: size, SharedProcessors: *procs, MaxContainers: *cap})
	case "ring":
		cfg = gen.Ring(size, 2)
	case "fanout":
		cfg = gen.FanOut(gen.FanOutOptions{Width: size, SharedProcessors: *procs, MaxContainers: *cap})
	case "dag":
		cfg = gen.RandomDAG(gen.DAGOptions{Seed: *seed, Tasks: size, SharedProcessors: *procs, MaxContainers: *cap})
	case "random":
		cfg = gen.RandomJobs(gen.RandomOptions{Seed: *seed, Jobs: *jobs})
	default:
		fmt.Fprintf(stderr, "bbgen: unknown preset %q\n", *preset)
		return 2
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "bbgen:", err)
		return 1
	}
	if *out == "" {
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "bbgen:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}
	if err := cfg.WriteFile(*out); err != nil {
		fmt.Fprintln(stderr, "bbgen:", err)
		return 1
	}
	return 0
}
