package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTradeFig2aCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "fig2a", "-csv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 11 { // header + 10 capacities
		t.Fatalf("expected 11 CSV lines, got %d:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "cap,budget") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,36.1078") {
		t.Fatalf("bad first row: %s", lines[1])
	}
	if !strings.HasPrefix(lines[10], "10,4") {
		t.Fatalf("bad last row: %s", lines[10])
	}
}

func TestTradeFig2bPlot(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "fig2b"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "Figure 2(b)") {
		t.Fatal("missing figure title")
	}
}

func TestTradeFig3CSV(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "fig3", "-csv"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "budget_wb") {
		t.Fatal("missing fig3 CSV header")
	}
}

func TestTradeParetoAndRuntime(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "pareto"}, &out, &errb); code != 0 {
		t.Fatalf("pareto exit %d", code)
	}
	if !strings.Contains(out.String(), "Pareto frontier") {
		t.Fatal("missing pareto output")
	}
	out.Reset()
	if code := run(context.Background(), []string{"-experiment", "runtime"}, &out, &errb); code != 0 {
		t.Fatalf("runtime exit %d", code)
	}
	if !strings.Contains(out.String(), "solve time (ms)") {
		t.Fatal("missing runtime table")
	}
}

func TestTradeCompareAndAblation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "compare"}, &out, &errb); code != 0 {
		t.Fatalf("compare exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "budget-first") || !strings.Contains(out.String(), "infeasible") {
		t.Fatalf("comparison table incomplete:\n%s", out.String())
	}
	out.Reset()
	if code := run(context.Background(), []string{"-experiment", "ablation"}, &out, &errb); code != 0 {
		t.Fatalf("ablation exit %d", code)
	}
	if !strings.Contains(out.String(), "integer optimum") {
		t.Fatal("ablation table incomplete")
	}
}

func TestTradeUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Fatal("missing error")
	}
}

// TestTradeFactorBackends runs the same experiment under every -factor
// backend; all four must succeed and produce the same reproduced figures (the
// backends agree far beyond the 4-digit table precision).
func TestTradeFactorBackends(t *testing.T) {
	var want string
	for _, factor := range []string{"auto", "sparse", "dense", "densekkt"} {
		var out, errb bytes.Buffer
		if code := run(context.Background(), []string{"-experiment", "fig2a", "-csv", "-factor", factor}, &out, &errb); code != 0 {
			t.Fatalf("factor %s: exit %d: %s", factor, code, errb.String())
		}
		if want == "" {
			want = out.String()
		} else if out.String() != want {
			t.Fatalf("factor %s output differs:\n%s\nwant:\n%s", factor, out.String(), want)
		}
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "fig2a", "-factor", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bogus factor: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -factor") {
		t.Fatal("missing -factor error")
	}
}

// TestTradeProfiles exercises the -cpuprofile/-memprofile flags and checks
// that both profile files come out non-empty.
func TestTradeProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-experiment", "runtime", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
