// Command bbtrade regenerates the figures and tables of the paper's
// evaluation section, plus the extension experiments documented in
// DESIGN.md.
//
// Usage:
//
//	bbtrade -experiment fig2a|fig2b|fig3|runtime|scalability|compare|ablation|pareto|latency|dse|all
//	        [-csv] [-parallel N] [-factor auto|sparse|supernodal|dense|densekkt]
//	        [-factorworkers N] [-dse-tasks N] [-dse-cap D] [-dse-bound B]
//	        [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/socp"
	"repro/internal/textplot"
)

func main() {
	ctx, stop := cli.SignalContext()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbtrade", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp = fs.String("experiment", "all",
			"fig2a | fig2b | fig3 | runtime | scalability | compare | ablation | pareto | latency | dse | all")
		csv      = fs.Bool("csv", false, "emit CSV instead of tables/plots")
		parallel = fs.Int("parallel", 0,
			"worker pool size for sweep experiments (0 = GOMAXPROCS, 1 = sequential)")
		factor = fs.String("factor", "auto",
			"KKT backend: auto | sparse (simplicial LDLT) | supernodal (blocked LDLT) | dense (sparse assembly, dense factor) | densekkt (all-dense oracle)")
		factorWorkers = fs.Int("factorworkers", 0,
			"supernodal factorization worker pool size (<=1 = serial; results are bitwise identical at every setting)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file after the experiments finish")
		timeout    = fs.Duration("timeout", 0, "abort the experiments after this duration (0 = no limit)")
		dseTasks   = fs.Int("dse-tasks", 100, "dse: chain length of the explored instance")
		dseCap     = fs.Int("dse-cap", 64, "dse: largest buffer capacity considered (the d of O(log d))")
		dseBound   = fs.Float64("dse-bound", 0, "dse: total budget bound a capacity must meet to count as feasible (0 = any optimal solve)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	opt := core.Options{Parallelism: *parallel}
	switch *factor {
	case "auto", "":
		// default backend selection
	case "sparse":
		opt.Solver.Factorization = socp.FactorSparse
	case "supernodal":
		opt.Solver.Factorization = socp.FactorSupernodal
	case "dense":
		opt.Solver.Factorization = socp.FactorDense
	case "densekkt":
		opt.Solver.DenseKKT = true
	default:
		fmt.Fprintf(stderr, "bbtrade: unknown -factor %q (want auto, sparse, supernodal, dense, or densekkt)\n", *factor)
		return 2
	}
	opt.Solver.FactorWorkers = *factorWorkers
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "bbtrade:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "bbtrade:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Deferred so the profile reflects the heap after the experiments, and
		// is written on every exit path out of run.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
			}
		}()
	}

	runOne := func(name string) int {
		switch name {
		case "fig2a", "fig2b":
			points, err := experiments.Fig2(ctx, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			if *csv {
				tb := textplot.NewTable("cap", "budget", "delta")
				for _, p := range points {
					tb.AddRow(p.Cap, p.Budget, p.DeltaBudget)
				}
				fmt.Fprint(stdout, tb.CSV())
				return 0
			}
			if name == "fig2a" {
				fmt.Fprintln(stdout, experiments.RenderFig2a(points))
			} else {
				fmt.Fprintln(stdout, experiments.RenderFig2b(points))
			}
		case "fig3":
			points, err := experiments.Fig3(ctx, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			if *csv {
				tb := textplot.NewTable("cap", "budget_wb", "budget_wa_wc")
				for _, p := range points {
					tb.AddRow(p.Cap, p.BudgetWB, p.BudgetWAWC)
				}
				fmt.Fprint(stdout, tb.CSV())
				return 0
			}
			fmt.Fprintln(stdout, experiments.RenderFig3(points))
		case "runtime":
			rows, err := experiments.Runtime(ctx, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			fmt.Fprintln(stdout, experiments.RenderRuntime(rows))
		case "scalability":
			points, err := experiments.Scalability(ctx, []int{2, 5, 10, 20, 50, 100}, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			fmt.Fprintln(stdout, experiments.RenderScalability(points))
		case "compare":
			rows, err := experiments.JointVsTwoPhase(ctx, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			fmt.Fprintln(stdout, experiments.RenderJointVsTwoPhase(rows))
		case "ablation":
			rows, err := experiments.AblationRounding(ctx, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			fmt.Fprintln(stdout, experiments.RenderAblation(rows))
		case "latency":
			points, err := experiments.LatencyTradeoff(ctx, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			fmt.Fprintln(stdout, "Latency/budget trade-off on T1 (wa → wb bound):")
			fmt.Fprintln(stdout, experiments.RenderLatencyTradeoff(points))
		case "dse":
			// The PREESM-style dichotomy: smallest buffer capacity that still
			// admits a feasible mapping (optionally under a budget bound), in
			// O(log d) warm-started solves instead of a d-point sweep.
			cfg := gen.Chain(gen.ChainOptions{Tasks: *dseTasks})
			res, err := core.DSEBisect(ctx, cfg, core.DSEOptions{MaxCap: *dseCap, BudgetBound: *dseBound}, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			tb := textplot.NewTable("probe", "cap", "feasible", "total budget")
			for i, p := range res.Probes {
				tb.AddRow(i+1, p.Cap, p.OK, p.BudgetSum)
			}
			if *csv {
				fmt.Fprint(stdout, tb.CSV())
				return 0
			}
			fmt.Fprintf(stdout, "DSE bisection over %s, caps 1..%d (≤ %d solves allowed):\n",
				cfg.Name, *dseCap, 1+bits.Len(uint(*dseCap-1)))
			fmt.Fprintln(stdout, tb.String())
			if res.Cap < 0 {
				fmt.Fprintf(stdout, "no feasible capacity ≤ %d (settled in %d solve)\n", *dseCap, res.Solves)
			} else {
				fmt.Fprintf(stdout, "smallest feasible capacity: %d (found in %d solves)\n", res.Cap, res.Solves)
			}
		case "pareto":
			points, err := core.ParetoFrontier(ctx, gen.PaperT1(0), 13, opt)
			if err != nil {
				fmt.Fprintln(stderr, "bbtrade:", err)
				return 1
			}
			tb := textplot.NewTable("weight ratio", "total budget (Mcycles)", "total memory (units)")
			for _, p := range points {
				tb.AddRow(p.WeightRatio, p.BudgetTotal, p.MemoryTotal)
			}
			if *csv {
				fmt.Fprint(stdout, tb.CSV())
				return 0
			}
			fmt.Fprintln(stdout, "Pareto frontier of T1 (budget total vs. buffer memory):")
			fmt.Fprintln(stdout, tb.String())
		default:
			fmt.Fprintf(stderr, "bbtrade: unknown experiment %q\n", name)
			return 2
		}
		return 0
	}

	if *exp == "all" {
		for _, name := range []string{"fig2a", "fig2b", "fig3", "runtime", "scalability", "compare", "ablation", "pareto", "latency", "dse"} {
			fmt.Fprintf(stdout, "=== %s ===\n", name)
			if code := runOne(name); code != 0 {
				return code
			}
		}
		return 0
	}
	return runOne(*exp)
}
