package main

import (
	"bytes"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The fix-engine fixture module: one floatcmp violation, one dropped-status
// violation (in a func returning error, so the assign-and-check rewrite
// applies), one fixable leaked-keys maprange violation, and one maprange
// finding with no mechanical remedy (key and value both used).
const fixModGoMod = "module fixtest\n\ngo 1.24\n"

const fixModMain = `package fixtest

import "fmt"

func approxEqual(a, b float64) bool {
	return a == b
}

type Status int

func Solve() (Status, error) { return 0, nil }

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func drops() error {
	Solve()
	return nil
}
`

const fixModMaps = `package fixtest

func leakedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

// The golden post-fix contents: math.Abs wrap with the math import added,
// the dropped status rewritten to assign-and-check, the keys loop rewritten
// to the sorted-keys idiom, and the unfixable emit loop untouched.
const fixedMain = `package fixtest

import "math"

import "fmt"

func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9
}

type Status int

func Solve() (Status, error) { return 0, nil }

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func drops() error {
	if _, err := Solve(); err != nil {
		return err
	}
	return nil
}
`

const fixedMaps = `package fixtest

import (
	"maps"
	"slices"
)

func leakedKeys(m map[string]int) []string {
	var out []string
	for _, k := range slices.Sorted(maps.Keys(m)) {
		out = append(out, k)
	}
	return out
}
`

// writeFixModule materializes the pristine fixture module in a fresh dir.
func writeFixModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range map[string]string{
		"go.mod":     fixModGoMod,
		"fixtest.go": fixModMain,
		"maps.go":    fixModMaps,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// checkModule runs the full analyzer suite over the module the way run()
// does: check, relativize, dedupe.
func checkModule(t *testing.T, dir string) []analysis.Diagnostic {
	t.Helper()
	diags, err := Check(dir, []string{"./..."}, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	return dedupe(relativize(dir, diags))
}

func TestDiffRendersFixesWithoutTouchingTree(t *testing.T) {
	dir := writeFixModule(t)
	before := map[string][]byte{}
	for _, name := range []string{"fixtest.go", "maps.go"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		before[name] = data
	}

	var out, errOut bytes.Buffer
	if code := runDiff(&out, &errOut, dir, checkModule(t, dir)); code != 1 {
		t.Fatalf("runDiff = %d, want 1 (fixable diagnostics exist): %s", code, errOut.String())
	}
	for _, want := range []string{
		"--- a/fixtest.go",
		"+++ b/fixtest.go",
		"--- a/maps.go",
		"+\treturn math.Abs(a-b) <= 1e-9",
		"+\tif _, err := Solve(); err != nil {",
		"+\tfor _, k := range slices.Sorted(maps.Keys(m)) {",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}
	// Dry run: the tree is untouched.
	for name, data := range before {
		after, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, after) {
			t.Errorf("-diff modified %s", name)
		}
	}
}

func TestFixAppliesConvergesAndMatchesGolden(t *testing.T) {
	dir := writeFixModule(t)
	var out, errOut bytes.Buffer
	code := runFix(&out, &errOut, dir, []string{"./..."}, analysis.All(), checkModule(t, dir))
	if code != 0 {
		t.Fatalf("runFix = %d, want 0 (no fixable diagnostics survive):\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "applied 3 fixes across 2 files") {
		t.Errorf("unexpected -fix summary:\n%s", out.String())
	}
	// The unfixable finding is re-reported after the rewrite, not silently
	// swallowed.
	if !strings.Contains(out.String(), "maprange: map iteration order reaches fmt.Println output") {
		t.Errorf("-fix output does not re-report the unfixable finding:\n%s", out.String())
	}

	for name, want := range map[string]string{"fixtest.go": fixedMain, "maps.go": fixedMaps} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("%s after -fix does not match golden:\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
		// gofmt fixed point: formatting the result changes nothing.
		formatted, err := format.Source(got)
		if err != nil {
			t.Fatalf("%s after -fix does not parse: %v", name, err)
		}
		if !bytes.Equal(formatted, got) {
			t.Errorf("%s after -fix is not gofmt-clean", name)
		}
	}

	// Convergence: a second -fix pass finds nothing to do and exits 0.
	out.Reset()
	errOut.Reset()
	if code := runFix(&out, &errOut, dir, []string{"./..."}, analysis.All(), checkModule(t, dir)); code != 0 {
		t.Fatalf("second runFix = %d, want 0:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "applied 0 fixes across 0 files") {
		t.Errorf("second -fix pass applied something:\n%s", out.String())
	}
}

func TestFixIsDeterministicAcrossRuns(t *testing.T) {
	read := func(dir string) map[string]string {
		files := map[string]string{}
		for _, name := range []string{"fixtest.go", "maps.go"} {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			files[name] = string(data)
		}
		return files
	}
	var runs []map[string]string
	for i := 0; i < 2; i++ {
		dir := writeFixModule(t)
		var out, errOut bytes.Buffer
		if code := runFix(&out, &errOut, dir, []string{"./..."}, analysis.All(), checkModule(t, dir)); code != 0 {
			t.Fatalf("run %d: runFix = %d:\n%s%s", i, code, out.String(), errOut.String())
		}
		runs = append(runs, read(dir))
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Error("two -fix runs over identical trees produced different bytes")
	}
}

func TestCheckCachedWarmRunMatchesCold(t *testing.T) {
	dir := writeFixModule(t)
	cacheDir := t.TempDir()
	cold, err := CheckCached(dir, []string{"./..."}, analysis.All(), cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := CheckCached(dir, []string{"./..."}, analysis.All(), cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("cache round trip changed diagnostics:\ncold %v\nwarm %v", cold, warm)
	}
	if len(cold) == 0 {
		t.Error("fixture module produced no diagnostics")
	}
}

func TestDedupeCollapsesCrossAnalyzerDuplicates(t *testing.T) {
	pos := func(file string, line, col int) analysis.Diagnostic {
		return analysis.Diagnostic{
			Pos:     token.Position{Filename: file, Line: line, Column: col},
			Message: "same fact",
		}
	}
	a := pos("x.go", 3, 5)
	a.Analyzer = "zeta"
	a.Fixes = []analysis.SuggestedFix{{Message: "mend"}}
	b := pos("x.go", 3, 5)
	b.Analyzer = "alpha"
	c := pos("x.go", 9, 1)
	c.Analyzer = "alpha"

	got := dedupe([]analysis.Diagnostic{a, b, c})
	if len(got) != 2 {
		t.Fatalf("dedupe kept %d diagnostics, want 2: %v", len(got), got)
	}
	// Survivor is the alphabetically first analyzer, with the dropped
	// duplicate's fixes backfilled; order stays positional.
	if got[0].Analyzer != "alpha" || got[0].Pos.Line != 3 {
		t.Errorf("wrong survivor: %+v", got[0])
	}
	if len(got[0].Fixes) != 1 || got[0].Fixes[0].Message != "mend" {
		t.Errorf("fixes not backfilled from duplicate: %+v", got[0])
	}
	if got[1].Pos.Line != 9 {
		t.Errorf("distinct diagnostic lost: %+v", got[1])
	}
}
