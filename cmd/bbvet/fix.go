package main

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// countFixable returns the number of diagnostics carrying suggested fixes.
func countFixable(diags []analysis.Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Fixable() {
			n++
		}
	}
	return n
}

// runDiff renders every suggested fix as a unified diff against the
// current file contents, without writing anything. Header paths are
// relative to dir so the output is stable across checkouts. The exit code
// is the -diff gate: 1 when any fixable diagnostics exist, 0 otherwise.
func runDiff(stdout, stderr io.Writer, dir string, diags []analysis.Diagnostic) int {
	res, err := analysis.ApplyFixes(diags)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	files := make([]string, 0, len(res.Files))
	for f := range res.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		orig, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
		rel := f
		if r, err := filepath.Rel(dir, f); err == nil && !filepath.IsAbs(r) {
			rel = filepath.ToSlash(r)
		}
		fmt.Fprint(stdout, unifiedDiff("a/"+rel, "b/"+rel, orig, res.Files[f]))
	}
	if countFixable(diags) > 0 {
		return 1
	}
	return 0
}

// runFix applies every suggested fix atomically (temp file + rename, so a
// crash never leaves a half-written source file), then re-runs the
// analyzers over the patched tree to verify convergence. Remaining
// diagnostics are printed; the exit code is 0 only when no fixable
// diagnostics survive the rewrite.
func runFix(stdout, stderr io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) int {
	res, err := analysis.ApplyFixes(diags)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	files := make([]string, 0, len(res.Files))
	for f := range res.Files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := writeFileAtomic(f, res.Files[f]); err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
	}
	fmt.Fprintf(stdout, "bbvet: applied %d fixes across %d files", res.Applied, len(files))
	if res.Dropped > 0 {
		fmt.Fprintf(stdout, " (%d conflicting fixes deferred; run -fix again)", res.Dropped)
	}
	fmt.Fprintln(stdout)
	if len(files) == 0 && countFixable(diags) == 0 {
		return 0
	}
	// Convergence check: the patched tree must be loadable and must not
	// report the fixed findings again.
	after, err := Check(dir, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: re-run after fixes failed: %v\n", err)
		return 2
	}
	after = dedupe(relativize(dir, after))
	for _, d := range after {
		fmt.Fprintln(stdout, d)
	}
	if n := countFixable(after); n > 0 {
		fmt.Fprintf(stdout, "bbvet: %d fixable diagnostics remain after -fix\n", n)
		return 1
	}
	return 0
}

// writeFileAtomic replaces path with data via a same-directory temp file
// and rename, preserving the original file mode.
func writeFileAtomic(path string, data []byte) error {
	mode := fs.FileMode(0o644)
	if st, err := os.Stat(path); err == nil {
		mode = st.Mode().Perm()
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bbvet-fix-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
