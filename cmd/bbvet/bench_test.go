package main

import (
	"testing"

	"repro/internal/analysis"
)

// BenchmarkBbvetSelfRun measures whole-repo analysis passes. CI feeds the
// results through cmd/benchjson into BENCH_vet.json so analysis wall-clock
// is tracked as the repo grows.
//
//   - cold: a fresh loader, full type-check of every package, all
//     analyzers including the interprocedural summaries, no cache.
//   - warm: the same run answered from a pre-populated incremental cache —
//     import-clause parsing and content hashing only, no type-checking.
//     The cache layer's contract is warm ≤ 25% of cold; in practice it is
//     under 1%.
func BenchmarkBbvetSelfRun(b *testing.B) {
	analyzers, err := analysis.ByName("")
	if err != nil {
		b.Fatal(err)
	}
	selfRun := func(b *testing.B, cacheDir string) {
		b.Helper()
		diags, err := CheckCached("../..", nil, analyzers, cacheDir)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("self-run is not clean: %d findings", len(diags))
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			selfRun(b, "")
		}
	})
	b.Run("warm", func(b *testing.B) {
		cacheDir := b.TempDir()
		selfRun(b, cacheDir) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			selfRun(b, cacheDir)
		}
	})
}
