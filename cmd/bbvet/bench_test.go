package main

import (
	"testing"

	"repro/internal/analysis"
)

// BenchmarkBbvetSelfRun measures one cold whole-repo analysis pass: a fresh
// loader, full type-check of every package, and all analyzers including the
// interprocedural summaries. CI feeds the result through cmd/benchjson into
// BENCH_vet.json so analysis wall-clock is tracked as the repo grows.
func BenchmarkBbvetSelfRun(b *testing.B) {
	analyzers, err := analysis.ByName("")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		diags, err := Check("../..", nil, analyzers)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("self-run is not clean: %d findings", len(diags))
		}
	}
}
