package main

import (
	"fmt"
	"strings"
)

// A minimal unified-diff renderer for -diff mode. Output is the classic
// format — ---/+++ headers, @@ hunks with three lines of context — and is
// a pure function of the two inputs, so golden tests can compare it
// byte-for-byte.

// diffContext is the number of unchanged lines shown around each change.
const diffContext = 3

type diffOp struct {
	kind byte // ' ' context, '-' delete, '+' insert
	text string
}

// unifiedDiff renders the changes from a to b as a unified diff with the
// given header names, or "" when the contents are identical.
func unifiedDiff(aName, bName string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	ops := diffLines(splitLines(a), splitLines(b))
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)
	writeHunks(&sb, ops)
	return sb.String()
}

// splitLines splits b into lines, each keeping its trailing newline; a
// final line without one is kept as-is and rendered with the standard
// "\ No newline at end of file" marker.
func splitLines(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	var lines []string
	s := string(b)
	for len(s) > 0 {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			lines = append(lines, s)
			break
		}
		lines = append(lines, s[:i+1])
		s = s[i+1:]
	}
	return lines
}

// diffLines computes a line-level edit script from a to b via a
// longest-common-subsequence table, after trimming the common prefix and
// suffix to keep the table small.
func diffLines(a, b []string) []diffOp {
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	s := 0
	for s < len(a)-p && s < len(b)-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	am, bm := a[p:len(a)-s], b[p:len(b)-s]
	n, m := len(am), len(bm)
	// lcs[i][j] is the LCS length of am[i:] and bm[j:].
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if am[i] == bm[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else {
				lcs[i][j] = max(lcs[i+1][j], lcs[i][j+1])
			}
		}
	}
	ops := make([]diffOp, 0, len(a)+len(b))
	for _, l := range a[:p] {
		ops = append(ops, diffOp{' ', l})
	}
	i, j := 0, 0
	for i < n || j < m {
		switch {
		case i < n && j < m && am[i] == bm[j]:
			ops = append(ops, diffOp{' ', am[i]})
			i++
			j++
		case i < n && (j == m || lcs[i+1][j] >= lcs[i][j+1]):
			ops = append(ops, diffOp{'-', am[i]})
			i++
		default:
			ops = append(ops, diffOp{'+', bm[j]})
			j++
		}
	}
	for _, l := range a[len(a)-s:] {
		ops = append(ops, diffOp{' ', l})
	}
	return ops
}

// writeHunks groups the edit script into @@ hunks, merging changes whose
// context regions touch, and writes them in unified format.
func writeHunks(sb *strings.Builder, ops []diffOp) {
	// Locate change runs by op index.
	type run struct{ lo, hi int } // half-open op-index range including context
	var runs []run
	for i := 0; i < len(ops); i++ {
		if ops[i].kind == ' ' {
			continue
		}
		lo := max(0, i-diffContext)
		hi := i
		for hi < len(ops) {
			if ops[hi].kind != ' ' {
				hi++
				continue
			}
			// Extend across a short context gap to the next change.
			k := hi
			for k < len(ops) && ops[k].kind == ' ' && k-hi < 2*diffContext {
				k++
			}
			if k < len(ops) && ops[k].kind != ' ' {
				hi = k
				continue
			}
			break
		}
		tail := min(len(ops), hi+diffContext)
		runs = append(runs, run{lo, tail})
		i = tail
	}
	aLine, bLine := 1, 1
	opIdx := 0
	for _, r := range runs {
		for opIdx < r.lo {
			switch ops[opIdx].kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
			opIdx++
		}
		aCount, bCount := 0, 0
		for k := r.lo; k < r.hi; k++ {
			switch ops[k].kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(sb, "@@ -%s +%s @@\n", hunkRange(aLine, aCount), hunkRange(bLine, bCount))
		for k := r.lo; k < r.hi; k++ {
			writeDiffLine(sb, ops[k])
			switch ops[k].kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		opIdx = r.hi
	}
}

// hunkRange renders a hunk's start,count pair, with the unified-diff quirk
// that a zero-length range points one line earlier.
func hunkRange(start, count int) string {
	if count == 1 {
		return fmt.Sprintf("%d", start)
	}
	if count == 0 {
		start--
	}
	return fmt.Sprintf("%d,%d", start, count)
}

// writeDiffLine writes one diff body line, emitting the no-final-newline
// marker when the underlying line lacks its terminator.
func writeDiffLine(sb *strings.Builder, op diffOp) {
	sb.WriteByte(op.kind)
	sb.WriteString(op.text)
	if !strings.HasSuffix(op.text, "\n") {
		sb.WriteString("\n\\ No newline at end of file\n")
	}
}
