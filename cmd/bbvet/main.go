// Command bbvet runs the repository's static-analysis suite — the
// numeric, determinism, and zero-alloc invariant checks in
// internal/analysis — over the given package patterns.
//
// Usage:
//
//	go run ./cmd/bbvet ./...
//	go run ./cmd/bbvet -analyzers floatcmp,maprange ./internal/core
//
// Patterns are Go-style: plain package directories or trees ending in
// "/...". With no patterns, ./... is assumed. Diagnostics print as
// file:line:col: analyzer: message; the exit status is 1 when any
// diagnostic is reported, 2 on usage or load errors, and 0 on a clean run.
//
// With -json, diagnostics are emitted instead as a JSON array of
// {file, line, col, analyzer, message} objects (an empty array on a clean
// run), for editors and tooling. In text mode, when running under GitHub
// Actions (GITHUB_ACTIONS=true, or forced with -gha), each diagnostic is
// additionally emitted as a ::error workflow command so findings surface as
// inline annotations on the pull request.
//
// With -cache <dir> (or BBVET_CACHE in the environment), per-package
// diagnostics are memoized across runs, keyed by a content hash over the
// package's files and its intra-module import closure: an unchanged
// package is answered from the cache without being type-checked, and
// editing one file re-analyzes exactly that package and its reverse
// dependencies.
//
// Diagnostics with a mechanical remedy carry suggested fixes. -diff
// renders them as unified diffs without touching the tree (and exits 1
// while any remain, so CI can gate on unapplied fixes); -fix applies them
// in place — each file rewritten atomically via temp-file-and-rename,
// gofmt-formatted — then re-runs the analyzers over the patched tree and
// exits 0 only when no fixable diagnostics survive.
//
// A finding can be suppressed by an adjacent directive comment with a
// mandatory reason, on the flagged line or the line above (for a wrapped
// statement, the directive covers the statement's full line extent):
//
//	//bbvet:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	gha := fs.Bool("gha", false, "emit GitHub Actions ::error annotations alongside text output (auto-enabled when GITHUB_ACTIONS=true)")
	fix := fs.Bool("fix", false, "apply suggested fixes in place (atomic per-file writes), then re-run to verify convergence")
	diff := fs.Bool("diff", false, "print suggested fixes as unified diffs without applying; exit 1 while fixable diagnostics exist")
	cacheDir := fs.String("cache", "", "incremental analysis cache directory (default: $BBVET_CACHE; empty disables)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbvet [-analyzers a,b] [-list] [-json] [-gha] [-fix | -diff] [-cache dir] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fix && *diff {
		fmt.Fprintf(stderr, "bbvet: -fix and -diff are mutually exclusive\n")
		return 2
	}
	if *list {
		as := analysis.All()
		sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
		for _, a := range as {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	if *cacheDir == "" {
		*cacheDir = os.Getenv("BBVET_CACHE")
	}
	diags, err := CheckCached(cwd, fs.Args(), analyzers, *cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	diags = dedupe(relativize(cwd, diags))
	if *diff {
		return runDiff(stdout, stderr, cwd, diags)
	}
	if *fix {
		return runFix(stdout, stderr, cwd, fs.Args(), analyzers, diags)
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
	} else {
		annotate := *gha || os.Getenv("GITHUB_ACTIONS") == "true"
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			if annotate {
				fmt.Fprintln(stdout, ghaAnnotation(d))
			}
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites diagnostic filenames relative to dir, for stable
// output across checkouts (edit offsets inside fixes keep absolute paths —
// the applier needs them).
func relativize(dir string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	for i := range diags {
		if rel, err := filepath.Rel(dir, diags[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Pos.Filename = rel
		}
	}
	return diags
}

// dedupe collapses diagnostics that agree on position and message but come
// from different analyzers (the interprocedural checks and their
// intraprocedural siblings can both prove the same fact). The survivor is
// the alphabetically first analyzer; its fix set is backfilled from the
// dropped duplicate when it has none. Output stays in position order.
func dedupe(diags []analysis.Diagnostic) []analysis.Diagnostic {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Analyzer < b.Analyzer
	})
	out := diags[:0]
	for _, d := range diags {
		if n := len(out); n > 0 {
			prev := &out[n-1]
			if prev.Pos.Filename == d.Pos.Filename && prev.Pos.Line == d.Pos.Line &&
				prev.Pos.Column == d.Pos.Column && prev.Message == d.Message {
				if len(prev.Fixes) == 0 {
					prev.Fixes = d.Fixes
				}
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// jsonDiagnostic is the stable machine-readable form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`
}

// writeJSON emits the diagnostics as a JSON array; a clean run is an empty
// array, never null, so consumers can range without a nil check.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Fixable:  d.Fixable(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ghaAnnotation renders one diagnostic as a GitHub Actions workflow command
// that turns into an inline PR annotation.
func ghaAnnotation(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=bbvet %s::%s",
		ghaEscapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
		ghaEscapeProperty(d.Analyzer), ghaEscapeData(d.Message))
}

// ghaEscapeData escapes a workflow-command message per the Actions runner
// rules: %, CR, and LF.
func ghaEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghaEscapeProperty escapes a workflow-command property value, which must
// additionally protect the property delimiters : and , .
func ghaEscapeProperty(s string) string {
	s = ghaEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// Check loads the packages matching the patterns (resolved relative to
// dir) and returns the combined diagnostics of the given analyzers.
func Check(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	return CheckCached(dir, patterns, analyzers, "")
}

// CheckCached is Check with an optional incremental cache directory. A
// package whose cache key is unchanged is answered from the cache without
// being type-checked; everything else is analyzed and stored back. Key
// computation errors degrade to a plain uncached analysis of that package.
func CheckCached(dir string, patterns []string, analyzers []*analysis.Analyzer, cacheDir string) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := analysis.ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var cache *analysis.Cache
	if cacheDir != "" {
		if cache, err = analysis.NewCache(cacheDir, loader, analyzers); err != nil {
			return nil, err
		}
	}
	var diags []analysis.Diagnostic
	for _, pkgDir := range dirs {
		var key string
		if cache != nil {
			if k, err := cache.Key(pkgDir); err == nil {
				key = k
				if cached, ok := cache.Get(key); ok {
					diags = append(diags, cached...)
					continue
				}
			}
		}
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			return nil, err
		}
		pkgDiags := analysis.Run(pkg, analyzers)
		diags = append(diags, pkgDiags...)
		if cache != nil && key != "" {
			if err := cache.Put(key, pkgDiags); err != nil {
				return nil, err
			}
		}
	}
	return diags, nil
}
