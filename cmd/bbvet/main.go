// Command bbvet runs the repository's static-analysis suite — the
// numeric, determinism, and zero-alloc invariant checks in
// internal/analysis — over the given package patterns.
//
// Usage:
//
//	go run ./cmd/bbvet ./...
//	go run ./cmd/bbvet -analyzers floatcmp,maprange ./internal/core
//
// Patterns are Go-style: plain package directories or trees ending in
// "/...". With no patterns, ./... is assumed. Diagnostics print as
// file:line:col: analyzer: message; the exit status is 1 when any
// diagnostic is reported, 2 on usage or load errors, and 0 on a clean run.
//
// A finding can be suppressed by an adjacent directive comment with a
// mandatory reason, on the flagged line or the line above:
//
//	//bbvet:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbvet [-analyzers a,b] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	diags, err := Check(cwd, fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// Check loads the packages matching the patterns (resolved relative to
// dir) and returns the combined diagnostics of the given analyzers.
func Check(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := analysis.ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkgDir := range dirs {
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, analysis.Run(pkg, analyzers)...)
	}
	return diags, nil
}
