// Command bbvet runs the repository's static-analysis suite — the
// numeric, determinism, and zero-alloc invariant checks in
// internal/analysis — over the given package patterns.
//
// Usage:
//
//	go run ./cmd/bbvet ./...
//	go run ./cmd/bbvet -analyzers floatcmp,maprange ./internal/core
//
// Patterns are Go-style: plain package directories or trees ending in
// "/...". With no patterns, ./... is assumed. Diagnostics print as
// file:line:col: analyzer: message; the exit status is 1 when any
// diagnostic is reported, 2 on usage or load errors, and 0 on a clean run.
//
// With -json, diagnostics are emitted instead as a JSON array of
// {file, line, col, analyzer, message} objects (an empty array on a clean
// run), for editors and tooling. In text mode, when running under GitHub
// Actions (GITHUB_ACTIONS=true, or forced with -gha), each diagnostic is
// additionally emitted as a ::error workflow command so findings surface as
// inline annotations on the pull request.
//
// A finding can be suppressed by an adjacent directive comment with a
// mandatory reason, on the flagged line or the line above (for a wrapped
// statement, the directive covers the statement's full line extent):
//
//	//bbvet:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	gha := fs.Bool("gha", false, "emit GitHub Actions ::error annotations alongside text output (auto-enabled when GITHUB_ACTIONS=true)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bbvet [-analyzers a,b] [-list] [-json] [-gha] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		as := analysis.All()
		sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
		for _, a := range as {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	diags, err := Check(cwd, fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			diags[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
	} else {
		annotate := *gha || os.Getenv("GITHUB_ACTIONS") == "true"
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
			if annotate {
				fmt.Fprintln(stdout, ghaAnnotation(d))
			}
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDiagnostic is the stable machine-readable form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as a JSON array; a clean run is an empty
// array, never null, so consumers can range without a nil check.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ghaAnnotation renders one diagnostic as a GitHub Actions workflow command
// that turns into an inline PR annotation.
func ghaAnnotation(d analysis.Diagnostic) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=bbvet %s::%s",
		ghaEscapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
		ghaEscapeProperty(d.Analyzer), ghaEscapeData(d.Message))
}

// ghaEscapeData escapes a workflow-command message per the Actions runner
// rules: %, CR, and LF.
func ghaEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghaEscapeProperty escapes a workflow-command property value, which must
// additionally protect the property delimiters : and , .
func ghaEscapeProperty(s string) string {
	s = ghaEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// Check loads the packages matching the patterns (resolved relative to
// dir) and returns the combined diagnostics of the given analyzers.
func Check(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := analysis.ExpandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkgDir := range dirs {
		pkg, err := loader.LoadDir(pkgDir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, analysis.Run(pkg, analyzers)...)
	}
	return diags, nil
}
