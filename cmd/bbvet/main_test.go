package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("bbvet -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"floatcmp", "maprange", "hotalloc", "statuscheck", "csralias"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "bogus", "."}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

// TestFixtureFindingsExitNonZero drives the real CLI path against a
// fixture package with known findings: exit status 1 and canonical
// file:line:col: analyzer: message lines.
func TestFixtureFindingsExitNonZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"../../testdata/analysis/floatcmp"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("bbvet on the floatcmp fixture exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "floatcmp.go:") || !strings.Contains(text, ": floatcmp: ") {
		t.Errorf("diagnostics not in file:line:col: analyzer: message form:\n%s", text)
	}
	// The fixture has exactly three positives; its two bbvet:allow'd
	// comparisons must not leak into the output.
	if n := strings.Count(text, ": floatcmp: "); n != 3 {
		t.Errorf("got %d diagnostics, want 3 (suppression broken?):\n%s", n, text)
	}
}

// TestRepositoryExitsZero is the driver-level twin of the analysis
// package's self-run test: the shipped tree is clean, so the CLI must exit
// 0 over the whole module.
func TestRepositoryExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../../..."}, &out, &errOut); code != 0 {
		t.Fatalf("bbvet on the repository exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}
