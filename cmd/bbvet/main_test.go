package main

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("bbvet -list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{
		"floatcmp", "maprange", "hotalloc", "statuscheck", "csralias",
		"ctxflow", "leakcheck", "faultsite", "hotloop", "concdiscipline",
		"httpdiscipline", "slogfield",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
	// The listing is sorted by name with a one-line description per row.
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	var names []string
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("-list row has no description: %q", line)
			continue
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output not sorted by analyzer name: %v", names)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-analyzers", "bogus", "."}, &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if msg := errOut.String(); !strings.Contains(msg, "valid: ") {
		t.Errorf("stderr does not list the valid analyzers: %q", msg)
	}
	// A near-miss spelling earns a did-you-mean hint on stderr.
	errOut.Reset()
	if code := run([]string{"-analyzers", "hotaloc", "."}, &out, &errOut); code != 2 {
		t.Fatalf("misspelled analyzer exited %d, want 2", code)
	}
	if msg := errOut.String(); !strings.Contains(msg, `did you mean "hotalloc"?`) {
		t.Errorf("stderr has no suggestion for the near-miss: %q", msg)
	}
}

// TestOutputIsDeterministic runs the same scan twice through the full CLI
// path (text and JSON) and requires byte-identical output: diagnostics are
// sorted, summaries never iterate maps into messages, and the witness
// chains are deterministic functions of the source.
func TestOutputIsDeterministic(t *testing.T) {
	t.Setenv("GITHUB_ACTIONS", "")
	for _, mode := range [][]string{
		{"../../testdata/analysis/maprange", "../../testdata/analysis/concdiscipline"},
		{"-json", "../../testdata/analysis/hotalloc", "../../testdata/analysis/csralias"},
	} {
		var first, second, errOut bytes.Buffer
		c1 := run(mode, &first, &errOut)
		c2 := run(mode, &second, &errOut)
		if c1 != c2 {
			t.Fatalf("%v: exit codes differ across runs: %d then %d", mode, c1, c2)
		}
		if first.String() != second.String() {
			t.Errorf("%v: output differs across identical runs:\n--- first\n%s--- second\n%s",
				mode, first.String(), second.String())
		}
		if first.Len() == 0 {
			t.Errorf("%v: fixture scan produced no output at all", mode)
		}
	}
}

// TestFixtureFindingsExitNonZero drives the real CLI path against a
// fixture package with known findings: exit status 1 and canonical
// file:line:col: analyzer: message lines.
func TestFixtureFindingsExitNonZero(t *testing.T) {
	t.Setenv("GITHUB_ACTIONS", "") // keep the output pure text lines
	var out, errOut bytes.Buffer
	code := run([]string{"../../testdata/analysis/floatcmp"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("bbvet on the floatcmp fixture exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "floatcmp.go:") || !strings.Contains(text, ": floatcmp: ") {
		t.Errorf("diagnostics not in file:line:col: analyzer: message form:\n%s", text)
	}
	// The fixture has exactly three positives; its two bbvet:allow'd
	// comparisons must not leak into the output.
	if n := strings.Count(text, ": floatcmp: "); n != 3 {
		t.Errorf("got %d diagnostics, want 3 (suppression broken?):\n%s", n, text)
	}
}

// TestRepositoryExitsZero is the driver-level twin of the analysis
// package's self-run test: the shipped tree is clean, so the CLI must exit
// 0 over the whole module.
func TestRepositoryExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../../..."}, &out, &errOut); code != 0 {
		t.Fatalf("bbvet on the repository exited %d:\n%s%s", code, out.String(), errOut.String())
	}
}

// TestJSONOutput checks the machine-readable mode: a JSON array with one
// object per finding, fields populated, no text lines mixed in.
func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "../../testdata/analysis/floatcmp"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("bbvet -json on the floatcmp fixture exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 3 {
		t.Fatalf("got %d JSON diagnostics, want 3", len(diags))
	}
	for _, d := range diags {
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer != "floatcmp" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
		if !strings.HasSuffix(d.File, "floatcmp.go") {
			t.Errorf("file %q does not point at the fixture", d.File)
		}
	}
}

// TestJSONCleanRunIsEmptyArray pins the clean-run contract: [] rather than
// null, so consumers can range over the result unconditionally.
func TestJSONCleanRunIsEmptyArray(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-analyzers", "csralias", "../../testdata/analysis/floatcmp"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("clean -json run exited %d: %s%s", code, out.String(), errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean run printed %q, want []", got)
	}
}

// TestGHAAnnotations checks that under GitHub Actions each text diagnostic
// is doubled by a ::error workflow command carrying file/line/col.
func TestGHAAnnotations(t *testing.T) {
	t.Setenv("GITHUB_ACTIONS", "true")
	var out, errOut bytes.Buffer
	code := run([]string{"../../testdata/analysis/floatcmp"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	text := out.String()
	if n := strings.Count(text, "::error file="); n != 3 {
		t.Fatalf("got %d ::error annotations, want 3:\n%s", n, text)
	}
	if !strings.Contains(text, ",line=") || !strings.Contains(text, ",col=") {
		t.Errorf("annotations missing line/col properties:\n%s", text)
	}
	if !strings.Contains(text, "title=bbvet floatcmp::") {
		t.Errorf("annotations missing the analyzer title:\n%s", text)
	}
}

// TestGHAFlagWithoutEnv forces annotations with -gha even outside CI.
func TestGHAFlagWithoutEnv(t *testing.T) {
	t.Setenv("GITHUB_ACTIONS", "")
	var out, errOut bytes.Buffer
	if code := run([]string{"-gha", "../../testdata/analysis/floatcmp"}, &out, &errOut); code != 1 {
		t.Fatalf("exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "::error file=") {
		t.Errorf("-gha did not emit annotations:\n%s", out.String())
	}
}

// TestGHAEscaping pins the workflow-command escaping rules.
func TestGHAEscaping(t *testing.T) {
	if got := ghaEscapeData("50% of a\nline\r"); got != "50%25 of a%0Aline%0D" {
		t.Errorf("ghaEscapeData = %q", got)
	}
	if got := ghaEscapeProperty("a:b,c%d"); got != "a%3Ab%2Cc%25d" {
		t.Errorf("ghaEscapeProperty = %q", got)
	}
}
