package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/taskgraph"
)

func writeConfig(t *testing.T, c *taskgraph.Config) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimSolveAndRun(t *testing.T) {
	path := writeConfig(t, gen.PaperT1(4))
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path, "-firings", "100"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "all tasks meet their throughput requirements") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestSimWithMappingFile(t *testing.T) {
	cfg := gen.PaperT1(0)
	path := writeConfig(t, cfg)
	mpath := filepath.Join(t.TempDir(), "m.json")
	m := &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 36.2, "wb": 36.2},
		Capacities: map[string]int{"bab": 1},
	}
	if err := m.WriteFile(mpath); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path, "-mapping", mpath, "-firings", "100"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s %s", code, errb.String(), out.String())
	}
}

func TestSimRandomizedModes(t *testing.T) {
	path := writeConfig(t, gen.PaperT1(3))
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-config", path, "-firings", "100", "-random-offsets", "-random-exec", "-seed", "7"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
}

func TestSimDetectsMiss(t *testing.T) {
	cfg := gen.PaperT1(0)
	path := writeConfig(t, cfg)
	mpath := filepath.Join(t.TempDir(), "bad.json")
	bad := &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 4, "wb": 4},
		Capacities: map[string]int{"bab": 1}, // needs 10 containers at these budgets
	}
	if err := bad.WriteFile(mpath); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-config", path, "-mapping", mpath, "-firings", "100"}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "missed the throughput requirement") {
		t.Fatalf("missing miss report:\n%s", out.String())
	}
}

func TestSimUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("missing -config: exit %d", code)
	}
	if code := run(context.Background(), []string{"-config", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
	path := writeConfig(t, gen.PaperT1(0))
	if code := run(context.Background(), []string{"-config", path, "-mapping", "/nonexistent.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing mapping: exit %d", code)
	}
	// Infeasible config with joint solve.
	bad := gen.PaperT1(0)
	bad.Graphs[0].Period = 0.5
	bpath := writeConfig(t, bad)
	if code := run(context.Background(), []string{"-config", bpath}, &out, &errb); code != 1 {
		t.Fatalf("infeasible: exit %d", code)
	}
}
