// Command bbsim simulates a mapped configuration on the cycle-accurate TDM
// budget-scheduler model and reports achieved periods against the
// requirement, validating a mapping end to end.
//
// Usage:
//
//	bbsim -config cfg.json [-mapping mapping.json] [-firings N]
//	      [-seed N] [-random-offsets] [-random-exec]
//
// Without -mapping, the configuration is first solved with the joint
// optimizer. -random-offsets places each TDM slice at a random feasible
// offset; -random-exec draws per-firing execution times uniformly below the
// WCET (data-dependent behaviour).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/taskgraph"
	"repro/internal/textplot"
)

func main() {
	ctx, stop := cli.SignalContext()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		configPath  = fs.String("config", "", "configuration JSON file (required)")
		mappingPath = fs.String("mapping", "", "mapping JSON file (default: solve jointly)")
		firings     = fs.Int("firings", 500, "firings to simulate per task")
		seed        = fs.Int64("seed", 1, "seed for randomized options")
		randOffsets = fs.Bool("random-offsets", false, "randomize TDM slice offsets")
		randExec    = fs.Bool("random-exec", false, "randomize execution times below WCET")
		timeout     = fs.Duration("timeout", 0, "abort the joint solve after this duration (0 = no limit)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *configPath == "" {
		fmt.Fprintln(stderr, "bbsim: -config is required")
		fs.Usage()
		return 2
	}
	cfg, err := taskgraph.ReadFile(*configPath)
	if err != nil {
		fmt.Fprintln(stderr, "bbsim:", err)
		return 1
	}

	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	var mapping *taskgraph.Mapping
	if *mappingPath != "" {
		mapping, err = taskgraph.ReadMappingFile(*mappingPath)
		if err != nil {
			fmt.Fprintln(stderr, "bbsim:", err)
			return 1
		}
	} else {
		res, err := core.Solve(ctx, cfg, core.Options{})
		if err != nil {
			fmt.Fprintln(stderr, "bbsim:", err)
			return 1
		}
		if res.Status != core.StatusOptimal {
			fmt.Fprintf(stderr, "bbsim: joint solve: %v\n", res.Status)
			return 1
		}
		mapping = res.Mapping
		fmt.Fprintf(stdout, "solved jointly: objective %.6g\n\n", mapping.Objective)
	}

	rng := rand.New(rand.NewSource(*seed))
	opt := sim.Options{Firings: *firings}
	if *randOffsets {
		offsets := map[string]float64{}
		for i := range cfg.Processors {
			p := &cfg.Processors[i]
			tasks := cfg.TasksOn(p.Name)
			sort.Strings(tasks)
			rng.Shuffle(len(tasks), func(a, b int) { tasks[a], tasks[b] = tasks[b], tasks[a] })
			var used float64
			for _, tn := range tasks {
				used += mapping.Budgets[tn]
			}
			slack := p.Replenishment - p.Overhead - used
			at := p.Overhead + rng.Float64()*maxf(0, slack)
			for _, tn := range tasks {
				offsets[tn] = at
				at += mapping.Budgets[tn]
			}
		}
		opt.Offsets = offsets
	}
	if *randExec {
		wcets := map[string]float64{}
		for _, tg := range cfg.Graphs {
			for _, w := range tg.Tasks {
				wcets[w.Name] = w.WCET
			}
		}
		opt.Exec = func(task string, firing int) float64 {
			return rng.Float64() * wcets[task]
		}
	}

	res, err := sim.Run(cfg, mapping, opt)
	if err != nil {
		fmt.Fprintln(stderr, "bbsim:", err)
		return 1
	}

	tb := textplot.NewTable("task", "graph", "required period", "achieved period", "firings", "ok")
	ok := true
	for _, tg := range cfg.Graphs {
		for _, w := range tg.Tasks {
			st := res.Tasks[w.Name]
			meets := st.SteadyPeriod <= tg.Period*(1+1e-3)
			if !meets {
				ok = false
			}
			tb.AddRow(w.Name, tg.Name, tg.Period, st.SteadyPeriod, st.Firings, meets)
		}
	}
	fmt.Fprintln(stdout, tb.String())
	if res.Deadlocked {
		fmt.Fprintln(stdout, "DEADLOCK: the system stalled before completing the requested firings")
		return 1
	}
	if !ok {
		fmt.Fprintln(stdout, "some tasks missed the throughput requirement")
		return 1
	}
	fmt.Fprintf(stdout, "all tasks meet their throughput requirements (simulated %d firings/task, %.6g Mcycles)\n",
		*firings, res.EndTime)
	return 0
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
