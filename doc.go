// Package repro reproduces "Simultaneous Budget and Buffer Size Computation
// for Throughput-Constrained Task Graphs" (Wiggers, Bekooij, Geilen, Basten;
// DATE 2010).
//
// The library computes, in one convex optimization, the scheduler budgets
// and FIFO buffer capacities that let a set of task graphs meet their
// throughput requirements on a multiprocessor with TDM budget schedulers.
// See README.md for the layout, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmark
// harness in bench_test.go regenerates every figure and table of the
// paper's evaluation.
package repro
