// Benchmark harness: one benchmark per figure/table of the paper's
// evaluation (§V) and per extension experiment from DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the regenerated rows/series once (on the first
// iteration) so a bench run doubles as the experiment log recorded in
// EXPERIMENTS.md.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/binding"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/linalg"
	"repro/internal/mrate"
	"repro/internal/sim"
	"repro/internal/socp"
	"repro/internal/srdf"
	"repro/internal/taskgraph"
)

// printOnce guards the one-time experiment output per benchmark name.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// fig2Sweep memoizes the Figure 2 sweep so one bench run does the ten joint
// solves once: BenchmarkFig2a measures (and seeds) the sweep, and the figures
// built on the same points — Figure 2(b) is just the discrete derivative —
// reuse it instead of re-solving.
var fig2Sweep struct {
	once   sync.Once
	points []experiments.Fig2Point
	err    error
}

func fig2Points() ([]experiments.Fig2Point, error) {
	fig2Sweep.once.Do(func() {
		fig2Sweep.points, fig2Sweep.err = experiments.Fig2(context.Background(), core.Options{})
	})
	return fig2Sweep.points, fig2Sweep.err
}

// BenchmarkFig2a regenerates Figure 2(a): the budget/buffer trade-off sweep
// of the producer-consumer graph T1 (10 joint solves per iteration).
func BenchmarkFig2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig2(context.Background(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		fig2Sweep.once.Do(func() { fig2Sweep.points = points })
		once("fig2a", func() { b.Logf("\n%s", experiments.RenderFig2a(points)) })
	}
}

// BenchmarkFig2b regenerates Figure 2(b) from the shared Figure 2 sweep and
// measures only the rendering; the underlying solves are the same ten as
// Figure 2(a), so they are not repeated (or timed) here.
func BenchmarkFig2b(b *testing.B) {
	points, err := fig2Points()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := experiments.RenderFig2b(points)
		once("fig2b", func() { b.Logf("\n%s", out) })
	}
}

// BenchmarkFig3 regenerates Figure 3: topology dependence of the trade-off
// on the three-task chain T2.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig3(context.Background(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		once("fig3", func() { b.Logf("\n%s", experiments.RenderFig3(points)) })
	}
}

// BenchmarkPaperInstances measures single joint solves of the paper's two
// instances — the "run-time is milliseconds" claim. The per-op time IS the
// reproduced metric.
func BenchmarkPaperInstances(b *testing.B) {
	for _, inst := range []struct {
		name string
		cap  int
		t2   bool
	}{
		{"T1/cap=1", 1, false},
		{"T1/cap=10", 10, false},
		{"T2/cap=1", 1, true},
		{"T2/cap=10", 10, true},
	} {
		b.Run(inst.name, func(b *testing.B) {
			cfg := gen.PaperT1(inst.cap)
			if inst.t2 {
				cfg = gen.PaperT2(inst.cap)
			}
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(context.Background(), cfg, core.Options{})
				if err != nil || r.Status != core.StatusOptimal {
					b.Fatalf("%v %v", r.Status, err)
				}
			}
		})
	}
}

// BenchmarkScalability supports the polynomial-complexity claim: joint solve
// time for pipelines of growing size.
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{5, 10, 20, 50, 100, 200} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			cfg := gen.Chain(gen.ChainOptions{Tasks: n})
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(context.Background(), cfg, core.Options{SkipVerification: true})
				if err != nil || r.Status != core.StatusOptimal {
					b.Fatalf("%v %v", r.Status, err)
				}
			}
		})
	}
	// Beyond the banded chain: wide fan-out (two high-degree KKT rows) and
	// irregular random DAGs, the large-instance topologies from bbgen.
	for _, tc := range []struct {
		name string
		cfg  *taskgraph.Config
	}{
		{"fanout=200", gen.FanOut(gen.FanOutOptions{Width: 200})},
		{"dag=200", gen.RandomDAG(gen.DAGOptions{Seed: 1, Tasks: 200})},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(context.Background(), tc.cfg, core.Options{SkipVerification: true})
				if err != nil || r.Status != core.StatusOptimal {
					b.Fatalf("%v %v", r.Status, err)
				}
			}
		})
	}
}

// sweepWarmCaps is the cap grid of BenchmarkSweepWarmVsCold and
// BenchmarkDSEBisect: a 60-point resolution pass over the knee and plateau
// of chain-100's budget/buffer trade-off curve.
func sweepWarmCaps() []int {
	caps := make([]int, 60)
	for i := range caps {
		caps[i] = i + 8
	}
	return caps
}

// BenchmarkSweepWarmVsCold measures the reuse layer end to end on a
// chain-100 trade-off sweep: "cold" disables both the warm starts and the
// pattern cache (every point pays symbolic analysis, workspace allocation,
// and a from-scratch interior-point run — the pre-reuse behavior), "warm"
// is the default sweep path, where neighboring points share one pattern
// cache and hand their solution forward as the next point's starting
// iterate. Parallelism is pinned to 1 so the comparison is pure per-solve
// work, not scheduling.
func BenchmarkSweepWarmVsCold(b *testing.B) {
	cfg := gen.Chain(gen.ChainOptions{Tasks: 100})
	caps := sweepWarmCaps()
	for _, mode := range []struct {
		name string
		opt  core.Options
	}{
		{"cold", core.Options{SkipVerification: true, Parallelism: 1, NoWarmStart: true, NoPatternCache: true}},
		{"warm", core.Options{SkipVerification: true, Parallelism: 1, WarmChunk: len(caps)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := core.SweepBufferCaps(context.Background(), cfg, nil, caps, mode.opt)
				if err != nil {
					b.Fatal(err)
				}
				iters := 0
				for _, p := range pts {
					if p.Result == nil || p.Result.Status != core.StatusOptimal {
						b.Fatalf("cap %d: not optimal", p.Cap)
					}
					iters += p.Result.SolverIterations
				}
				once("sweepwarm-"+mode.name, func() {
					b.Logf("%s: %d points, %d IPM iterations total", mode.name, len(pts), iters)
				})
			}
		})
	}
}

// BenchmarkDSEBisect measures the O(log d) design-space-exploration mode
// against the linear sweep it replaces: the smallest feasible cap out of
// d = 64 candidates, found in ≤ 1 + ⌈log₂ d⌉ warm-started solves.
func BenchmarkDSEBisect(b *testing.B) {
	cfg := gen.Chain(gen.ChainOptions{Tasks: 100})
	for i := 0; i < b.N; i++ {
		res, err := core.DSEBisect(context.Background(), cfg, core.DSEOptions{MaxCap: 64},
			core.Options{SkipVerification: true, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cap < 1 || res.Solves > 7 {
			b.Fatalf("cap %d in %d solves", res.Cap, res.Solves)
		}
		once("dsebisect", func() {
			b.Logf("smallest feasible cap %d in %d solves", res.Cap, res.Solves)
		})
	}
}

// BenchmarkJointVsTwoPhase regenerates the comparison table (experiment A2):
// false negatives of the classical two-phase flows.
func BenchmarkJointVsTwoPhase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.JointVsTwoPhase(context.Background(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		once("compare", func() { b.Logf("\n%s", experiments.RenderJointVsTwoPhase(rows)) })
	}
}

// BenchmarkAblationRounding regenerates the rounding ablation (experiment
// A1): relaxed vs rounded vs exhaustive integer optimum.
func BenchmarkAblationRounding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRounding(context.Background(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		once("ablation", func() { b.Logf("\n%s", experiments.RenderAblation(rows)) })
	}
}

// BenchmarkSolverRaw measures the bare interior-point method on the paper's
// cap=1 subproblem, isolating solver cost from model construction.
func BenchmarkSolverRaw(b *testing.B) {
	bld := socp.NewBuilder()
	beta := bld.AddVar("beta")
	lam := bld.AddVar("lambda")
	bld.SetObjective(beta, 1)
	bld.AddLE(socp.Expr(80).Plus(-2, beta).Plus(80, lam), socp.Expr(10))
	bld.AddLE(socp.Expr(0).Plus(40, lam), socp.Expr(10))
	bld.AddLE(socp.Expr(0).Plus(1, beta), socp.Expr(40))
	bld.AddProductGE(lam, beta, 1)
	p, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := socp.Solve(p, socp.Options{})
		if err != nil || sol.Status != socp.StatusOptimal {
			b.Fatalf("%v %v", sol.Status, err)
		}
	}
}

// BenchmarkFactorizeSparseVsDense isolates one full factorize-and-solve cycle
// on the normal-equations matrix H = GᵀG of real model instances: the paper's
// T1 program and bbgen chains at 4× and 16× its size. Each op performs what
// the IPM does per solve — allocate the factor storage, assemble H, factorize
// with static regularization, and run one refined solve — so the per-op time
// and allocated bytes compare the dense O(n³)/O(n²) path against the sparse
// symbolic + numeric pipeline end to end.
func BenchmarkFactorizeSparseVsDense(b *testing.B) {
	for _, inst := range []struct {
		name string
		cfg  *taskgraph.Config
	}{
		{"paper", gen.PaperT1(10)},
		{"chain4x", gen.Chain(gen.ChainOptions{Tasks: 8})},
		{"chain16x", gen.Chain(gen.ChainOptions{Tasks: 32})},
	} {
		p, err := core.BuildProblem(inst.cfg)
		if err != nil {
			b.Fatal(err)
		}
		n := p.G.Cols
		gsp := linalg.NewSparseFromDense(p.G)
		rhs := linalg.NewVector(n)
		for i := range rhs {
			rhs[i] = 1 + float64(i%7)
		}
		hd := linalg.NewMatrix(n, n)
		p.G.AtAInto(hd)
		reg := 1e-13 * (1 + hd.NormInf())
		b.Run(fmt.Sprintf("%s/n=%d/dense", inst.name, n), func(b *testing.B) {
			b.ReportAllocs()
			x := linalg.NewVector(n)
			for i := 0; i < b.N; i++ {
				h := linalg.NewMatrix(n, n)
				p.G.AtAInto(h)
				hreg := linalg.NewMatrix(n, n)
				copy(hreg.Data, h.Data)
				for j := 0; j < n; j++ {
					hreg.Add(j, j, reg)
				}
				chol := linalg.NewCholeskyWorkspace(n)
				if err := chol.Factorize(hreg, reg); err != nil {
					b.Fatal(err)
				}
				chol.SolveRefined(h, rhs, x)
			}
		})
		b.Run(fmt.Sprintf("%s/n=%d/sparse", inst.name, n), func(b *testing.B) {
			b.ReportAllocs()
			x := linalg.NewVector(n)
			for i := 0; i < b.N; i++ {
				ata := linalg.NewSparseAtA(gsp)
				ata.Compute(gsp)
				chol := linalg.NewSparseCholesky(ata.Result, nil)
				if err := chol.Factorize(ata.Result, reg, reg); err != nil {
					b.Fatal(err)
				}
				chol.SolveRefined(ata.Result, rhs, x)
			}
		})
		// The numeric-only variant is what the solver pays per IPM iteration
		// once the symbolic analysis is amortized: refill H on its fixed
		// pattern, refactorize into the preallocated workspaces, solve.
		b.Run(fmt.Sprintf("%s/n=%d/sparse-refactor", inst.name, n), func(b *testing.B) {
			ata := linalg.NewSparseAtA(gsp)
			ata.Compute(gsp)
			chol := linalg.NewSparseCholesky(ata.Result, nil)
			x := linalg.NewVector(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ata.Compute(gsp)
				if err := chol.Factorize(ata.Result, reg, reg); err != nil {
					b.Fatal(err)
				}
				chol.SolveRefined(ata.Result, rhs, x)
			}
		})
	}
}

// dagNormalEq builds the normal-equations matrix H = GᵀG of a bbgen
// -preset dag instance (the matrix the IPM refactorizes every iteration)
// together with the CSR constraint matrix it is assembled from.
func dagNormalEq(b *testing.B, tasks int) (gsp *linalg.SparseMatrix, h *linalg.SparseAtA) {
	b.Helper()
	cfg := gen.RandomDAG(gen.DAGOptions{Seed: 1, Tasks: tasks})
	p, err := core.BuildProblem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gsp = p.GSparse
	if gsp == nil {
		gsp = linalg.NewSparseFromDense(p.G)
	}
	h = linalg.NewSparseAtA(gsp)
	h.Compute(gsp)
	return gsp, h
}

// BenchmarkCSRAssembly isolates the normal-equations assembly H = AᵀA on
// bbgen dag instances past 10k constraint rows: the symbolic plan build
// (once per pattern) and the branch-free value refill Compute (every IPM
// iteration). The refill op is the per-iteration assembly cost the sparse
// pipeline pays before each refactorization.
func BenchmarkCSRAssembly(b *testing.B) {
	for _, tasks := range []int{1000, 2000} {
		gsp, _ := dagNormalEq(b, tasks)
		name := fmt.Sprintf("dag%d/rows=%d/nnz=%d", tasks, gsp.Rows, gsp.NNZ())
		b.Run(name+"/plan", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				linalg.NewSparseAtA(gsp)
			}
		})
		b.Run(name+"/compute", func(b *testing.B) {
			ata := linalg.NewSparseAtA(gsp)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ata.Compute(gsp)
			}
		})
	}
}

// BenchmarkFactorization compares the numeric refactorization of the
// normal-equations matrix of large dag/fanout instances across the sparse
// backends: the up-looking simplicial kernel against the blocked supernodal
// one, serially and across worker pools. Symbolic analysis is done outside
// the loop on both sides — the op is exactly the per-IPM-iteration numeric
// work. The parallel variants produce bitwise identical factors; only the
// wall clock changes.
func BenchmarkFactorization(b *testing.B) {
	instances := []struct {
		name string
		cfg  *taskgraph.Config
	}{
		{"dag1000", gen.RandomDAG(gen.DAGOptions{Seed: 1, Tasks: 1000})},
		{"fanout1000", gen.FanOut(gen.FanOutOptions{Width: 1000})},
		{"dag2000", gen.RandomDAG(gen.DAGOptions{Seed: 1, Tasks: 2000})},
	}
	for _, inst := range instances {
		p, err := core.BuildProblem(inst.cfg)
		if err != nil {
			b.Fatal(err)
		}
		gsp := p.GSparse
		if gsp == nil {
			gsp = linalg.NewSparseFromDense(p.G)
		}
		ata := linalg.NewSparseAtA(gsp)
		ata.Compute(gsp)
		h := ata.Result
		reg := 1e-13 * (1 + h.NormInf())
		name := fmt.Sprintf("%s/n=%d", inst.name, h.Rows)
		b.Run(name+"/simplicial", func(b *testing.B) {
			chol := linalg.NewSparseCholesky(h, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := chol.Factorize(h, reg, reg); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/supernodal/w=%d", name, workers), func(b *testing.B) {
				chol := linalg.Analyze(h, nil).NewSupernodal(workers)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := chol.Factorize(h, reg, reg); err != nil {
						b.Fatal(err)
					}
				}
				// The structural ceiling of the striped schedule at this
				// worker count; wall clock approaches it only when the cores
				// exist (a 1-CPU runner reports ns/op ≈ serial, as it must).
				b.ReportMetric(chol.Symbolic().Supernodal().IdealSpeedup(workers), "ideal-speedup-x")
			})
		}
	}
}

// BenchmarkLatencyTradeoff regenerates the latency/budget trade-off table
// (extension: affine latency constraints in the cone program).
func BenchmarkLatencyTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.LatencyTradeoff(context.Background(), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		once("latency", func() { b.Logf("\n%s", experiments.RenderLatencyTradeoff(points)) })
	}
}

// BenchmarkPareto regenerates the weight-sweep Pareto frontier of T1.
func BenchmarkPareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := core.ParetoFrontier(context.Background(), gen.PaperT1(0), 13, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) < 2 {
			b.Fatalf("degenerate frontier: %d points", len(points))
		}
	}
}

// BenchmarkBindingSearch measures the exhaustive binding search (extension:
// the paper's "compute the binding" future work) on the paper's T2.
func BenchmarkBindingSearch(b *testing.B) {
	cfg := gen.PaperT2(6)
	for i := 0; i < b.N; i++ {
		r, err := binding.Exhaustive(context.Background(), cfg, core.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if r.Solve.Status != core.StatusOptimal {
			b.Fatal("binding search failed")
		}
	}
}

// BenchmarkMultiRate measures the hybrid multi-rate solver (extension: the
// paper's "more dynamic applications" future work) on a 2:1 downsampler.
func BenchmarkMultiRate(b *testing.B) {
	cfg := gen.PaperT1(0)
	cfg.Graphs[0].Buffers[0].Prod = 2
	cfg.Graphs[0].Buffers[0].Cons = 1
	for i := 0; i < b.N; i++ {
		r, err := mrate.Solve(context.Background(), cfg, mrate.Options{})
		if err != nil || r.Status != core.StatusOptimal {
			b.Fatalf("%v %v", r.Status, err)
		}
	}
}

// BenchmarkSimulator measures the cycle-accurate TDM simulator on a verified
// T1 mapping (500 firings per task).
func BenchmarkSimulator(b *testing.B) {
	cfg := gen.PaperT1(4)
	r, err := core.Solve(context.Background(), cfg, core.Options{})
	if err != nil || r.Status != core.StatusOptimal {
		b.Fatalf("%v %v", r.Status, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, r.Mapping, sim.Options{Firings: 500})
		if err != nil || res.Deadlocked {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinPeriod measures the SRDF maximum-cycle-mean analysis (the
// verification workhorse) on a 100-actor ring with chords.
func BenchmarkMinPeriod(b *testing.B) {
	g := srdf.NewGraph()
	const n = 100
	ids := make([]srdf.ActorID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddActor("", float64(1+i%7))
	}
	for i := 0; i < n; i++ {
		g.AddEdge("", ids[i], ids[(i+1)%n], 1+i%3)
		g.AddEdge("", ids[i], ids[(i+13)%n], 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MinPeriod(); err != nil {
			b.Fatal(err)
		}
	}
}
