// Package faultinject is the deterministic, test-only fault-injection hook
// behind the resilience layer: production code declares named fault sites at
// the points where the real world can break (factorization breakdown, NaNs
// on the KKT right-hand side, sweep workers that stall or panic), and tests
// activate rules that force those breakages on demand.
//
// Design constraints, in order:
//
//   - Zero cost when idle. With no active plan every site check is a single
//     atomic pointer load and no allocation, so the hooks are safe inside
//     //bbvet:hotpath functions.
//   - Deterministic. A rule fires on exact hit numbers of its site
//     (After/Count), and each site keeps its own counter, so which hits fire
//     does not depend on goroutine interleaving across sites. Probabilistic
//     rules derive their decision from a splitmix64 hash of (seed, site,
//     hit index) — a pure function, reproducible across runs and platforms.
//   - Test-only. Nothing in this package is wired to flags or environment
//     variables; the only way to activate a plan is the Activate call, which
//     only test code makes.
//
// Sites are identified by the exported Site* constants so tests and
// production code cannot drift apart on naming.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
)

// Fault sites declared by the production code. Keeping the registry here
// (rather than in each package) gives tests one place to discover what can
// be broken.
const (
	// SiteDenseCholesky fires inside linalg.Cholesky.Factorize.
	SiteDenseCholesky = "linalg/dense-cholesky"
	// SiteDenseLDLT fires inside linalg.LDLT.Factorize.
	SiteDenseLDLT = "linalg/dense-ldlt"
	// SiteSparseLDLT fires inside linalg.SparseCholesky.Factorize and
	// FactorizeQuasiDef (the sparse simplicial pipeline), and at the entry of
	// the supernodal equivalents, so ladder tests can break either backend
	// with one rule.
	SiteSparseLDLT = "linalg/sparse-ldlt"
	// SiteSupernodalPanel fires inside the supernodal factorization's
	// per-panel loop — once per supernode, on whichever worker owns it — and
	// doubles as a NaN-corruption site for the assembled panel. Error and
	// panic kinds exercise the parallel scheduler's abort and panic-capture
	// paths; stall exercises a worker blocked mid-factorization.
	SiteSupernodalPanel = "linalg/supernodal-panel"
	// SiteKKTRHS is a NaN-injection site on the KKT right-hand side inside
	// the socp solver's factored solve.
	SiteKKTRHS = "socp/kkt-rhs"
	// SiteIPMIteration fires at the top of every interior-point iteration,
	// after the cancellation check (stall/panic sites for deadline tests).
	SiteIPMIteration = "socp/ipm-iteration"
	// SiteServeEnqueue fires in bbserve's admission path, synchronously in
	// the request handler immediately after its job enters the bounded
	// queue and before the handler starts waiting for the result. Stall
	// rules on it are the rendezvous the serve tests use to hold accepted
	// requests in the queue while filling it to the brim; error rules
	// exercise the handler's injected-failure response.
	SiteServeEnqueue = "serve/enqueue"
	// SiteServeJob fires on a serve worker goroutine at the start of job
	// execution, before the solver runs. Error rules exercise the injected
	// internal-failure response, panic rules the per-job panic isolation,
	// and stall rules park a worker mid-job for queue-full and drain tests.
	SiteServeJob = "serve/job"
)

// SiteSweepJob returns the per-index fault site of a core.RunSweep job; the
// index makes injection deterministic under parallel scheduling.
func SiteSweepJob(i int) string {
	return "core/sweep-job/" + strconv.Itoa(i)
}

// Kind classifies what a matched rule does to the calling site.
type Kind int

const (
	// KindError makes Hit return an injected error.
	KindError Kind = iota
	// KindNaN makes CorruptNaN overwrite the site's float data with NaN.
	KindNaN
	// KindPanic makes Hit panic (for exercising panic isolation).
	KindPanic
	// KindStall makes Hit block until the rule's Gate channel is closed
	// (for exercising cancellation without sleeping in tests).
	KindStall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindNaN:
		return "nan"
	case KindPanic:
		return "panic"
	case KindStall:
		return "stall"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the sentinel wrapped by every injected error; tests and the
// recovery ladder can detect synthetic failures with errors.Is.
var ErrInjected = errors.New("injected fault")

// Rule arms one fault site. The zero Count means "fire on every matching
// hit"; After skips the first After hits of the site (hit numbering is
// per-site, starting at 0). When Prob is in (0,1) the rule additionally
// fires only on hits selected by the seeded per-site hash — still
// deterministic for a fixed Seed.
type Rule struct {
	Site  string
	Kind  Kind
	After int // skip the first After hits of this site
	Count int // fire at most Count times; 0 = unlimited

	// Prob, when in (0,1), gates each eligible hit on a pure hash of
	// (Seed, Site, hit index). Outside (0,1) the rule fires on every
	// eligible hit.
	Prob float64
	Seed uint64

	// Gate is required for KindStall: the stalled call blocks until Gate is
	// closed. Closing the gate is the test's way of releasing the victim.
	Gate chan struct{}
	// Stalled, optional for KindStall: closed exactly once when a call
	// first blocks on the gate, so tests can rendezvous without polling.
	Stalled chan struct{}
}

// rule is a compiled Rule with its firing counter.
type rule struct {
	Rule
	fired       atomic.Int64
	stalledOnce sync.Once
	siteHash    uint64
}

// plan is the active rule set plus the per-site hit counters.
type plan struct {
	rules []*rule
	mu    sync.Mutex
	hits  map[string]int
}

// active is the installed plan; nil means fault injection is off.
var active atomic.Pointer[plan]

// Enabled reports whether a fault plan is active. It is the fast path every
// site guards with; when false the site must do no further work.
func Enabled() bool {
	return active.Load() != nil
}

// Activate installs a plan made of the given rules, replacing any previous
// plan, and returns the function that deactivates it. Tests must call the
// returned function (usually via defer or t.Cleanup) before the next
// Activate of an unrelated test; activation is process-wide.
func Activate(rules ...Rule) (deactivate func()) {
	p := &plan{hits: make(map[string]int)}
	for _, r := range rules {
		if r.Kind == KindStall && r.Gate == nil {
			panic("faultinject: KindStall rule needs a Gate channel")
		}
		p.rules = append(p.rules, &rule{Rule: r, siteHash: splitmix64(hashString(r.Site))})
	}
	active.Store(p)
	return func() { active.CompareAndSwap(p, nil) }
}

// match consumes one hit of site and returns the rule that fires on it, or
// nil. Hit numbering and rule counters are updated under the plan lock, so
// the decision for hit N of a site is the same no matter which goroutine
// lands on it.
func match(site string) *rule {
	p := active.Load()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	hit := p.hits[site]
	p.hits[site] = hit + 1
	var winner *rule
	for _, r := range p.rules {
		if r.Site != site || hit < r.After {
			continue
		}
		if r.Count > 0 && int(r.fired.Load()) >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !seededFire(r, hit) {
			continue
		}
		r.fired.Add(1)
		winner = r
		break
	}
	p.mu.Unlock()
	return winner
}

// Hit consumes one hit of the site and applies the matched rule, if any:
// KindError returns the injected error, KindPanic panics, KindStall blocks
// on the rule's gate, and KindNaN (data-less here) is a no-op. Callers on
// hot paths must guard the call with Enabled().
func Hit(site string) error {
	return apply(match(site), site, nil)
}

// HitData consumes one hit of the site and applies the matched rule of any
// kind against the site's float data: KindNaN overwrites v with NaN, the
// other kinds behave as in Hit. A site that can both fail and corrupt must
// use this single call — splitting it into Hit plus CorruptNaN would burn
// two hit numbers (and a Count budget) per visit.
func HitData(site string, v []float64) error {
	return apply(match(site), site, v)
}

// apply executes a matched rule; nil r is the common no-fault fast path.
func apply(r *rule, site string, v []float64) error {
	if r == nil {
		return nil
	}
	switch r.Kind {
	case KindError:
		return fmt.Errorf("faultinject: %s: %w", site, ErrInjected)
	case KindPanic:
		panic(fmt.Sprintf("faultinject: forced panic at %s", site))
	case KindStall:
		if r.Stalled != nil {
			r.stalledOnce.Do(func() { close(r.Stalled) })
		}
		<-r.Gate
	case KindNaN:
		for i := range v {
			v[i] = math.NaN()
		}
	}
	return nil
}

// CorruptNaN consumes one hit of the site and, when a KindNaN rule fires,
// overwrites every element of v with NaN, returning true. Rules of other
// kinds do not match data corruption sites.
func CorruptNaN(site string, v []float64) bool {
	r := match(site)
	if r == nil || r.Kind != KindNaN {
		return false
	}
	for i := range v {
		v[i] = math.NaN()
	}
	return true
}

// seededFire decides a probabilistic rule's hit deterministically: a pure
// hash of (seed, site, hit) mapped to [0,1) and compared against Prob.
func seededFire(r *rule, hit int) bool {
	x := splitmix64(r.Seed ^ r.siteHash ^ splitmix64(uint64(hit)+0x9e3779b97f4a7c15))
	// Take the top 53 bits for an unbiased float in [0,1).
	return float64(x>>11)/float64(1<<53) < r.Prob
}

// splitmix64 is the finalizer of the SplitMix64 generator — a fast, well
// mixed, platform-independent hash step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep this package dependency-free.
func hashString(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
