package faultinject

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestDisabledIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("no plan active, Enabled() = true")
	}
	if err := Hit("some/site"); err != nil {
		t.Fatalf("Hit with no plan: %v", err)
	}
	v := []float64{1, 2}
	if CorruptNaN("some/site", v) || v[0] != 1 {
		t.Fatal("CorruptNaN with no plan modified data")
	}
}

func TestErrorAfterCount(t *testing.T) {
	defer Activate(Rule{Site: "s", Kind: KindError, After: 2, Count: 2})()
	var fired []int
	for i := 0; i < 6; i++ {
		if err := Hit("s"); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error does not wrap ErrInjected: %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("After=2 Count=2 fired on hits %v, want [2 3]", fired)
	}
}

func TestPerSiteCounters(t *testing.T) {
	defer Activate(
		Rule{Site: "a", Kind: KindError, After: 1, Count: 1},
		Rule{Site: "b", Kind: KindError, Count: 1},
	)()
	if err := Hit("b"); err == nil {
		t.Fatal("site b hit 0 should fire")
	}
	if err := Hit("a"); err != nil {
		t.Fatal("site a hit 0 should not fire (After=1)")
	}
	if err := Hit("a"); err == nil {
		t.Fatal("site a hit 1 should fire despite b's earlier hit")
	}
}

func TestCorruptNaN(t *testing.T) {
	defer Activate(Rule{Site: SiteKKTRHS, Kind: KindNaN, Count: 1})()
	v := []float64{1, 2, 3}
	if !CorruptNaN(SiteKKTRHS, v) {
		t.Fatal("first hit should corrupt")
	}
	for i, x := range v {
		if !math.IsNaN(x) {
			t.Fatalf("v[%d] = %v, want NaN", i, x)
		}
	}
	w := []float64{4}
	if CorruptNaN(SiteKKTRHS, w) || math.IsNaN(w[0]) {
		t.Fatal("Count=1 rule fired twice")
	}
}

func TestErrorRuleDoesNotMatchCorrupt(t *testing.T) {
	defer Activate(Rule{Site: "s", Kind: KindError})()
	v := []float64{1}
	if CorruptNaN("s", v) {
		t.Fatal("KindError rule matched a NaN-corruption site")
	}
}

func TestPanic(t *testing.T) {
	defer Activate(Rule{Site: "p", Kind: KindPanic, Count: 1})()
	defer func() {
		if recover() == nil {
			t.Fatal("KindPanic rule did not panic")
		}
	}()
	_ = Hit("p")
}

func TestStallGate(t *testing.T) {
	gate := make(chan struct{})
	stalled := make(chan struct{})
	deactivate := Activate(Rule{Site: "st", Kind: KindStall, Count: 1, Gate: gate, Stalled: stalled})
	defer deactivate()
	done := make(chan struct{})
	go func() {
		_ = Hit("st")
		close(done)
	}()
	<-stalled // the victim is blocked on the gate
	select {
	case <-done:
		t.Fatal("Hit returned before the gate was closed")
	default:
	}
	close(gate)
	<-done
}

func TestSeededProbDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		deactivate := Activate(Rule{Site: "r", Kind: KindError, Prob: 0.5, Seed: seed})
		defer deactivate()
		var fired []int
		for i := 0; i < 64; i++ {
			if Hit("r") != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different firing counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different firing sets: %v vs %v", a, b)
		}
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("Prob=0.5 fired on %d/64 hits; hash looks degenerate", len(a))
	}
	c := run(7)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing sets")
	}
}

func TestConcurrentHitsAreSafe(t *testing.T) {
	defer Activate(Rule{Site: "c", Kind: KindError, Count: 10})()
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 100; i++ {
				if Hit("c") != nil {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 10 {
		t.Fatalf("Count=10 rule fired %d times under concurrency", total)
	}
}

func TestDeactivateRestores(t *testing.T) {
	deactivate := Activate(Rule{Site: "d", Kind: KindError})
	if !Enabled() {
		t.Fatal("Activate did not enable")
	}
	deactivate()
	if Enabled() {
		t.Fatal("deactivate did not disable")
	}
	if err := Hit("d"); err != nil {
		t.Fatal("rule fired after deactivation")
	}
}
