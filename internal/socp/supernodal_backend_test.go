package socp

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/linalg"
)

// TestSupernodalBackendMatchesSparse pins the supernodal backend against the
// simplicial one on randomized feasible instances. Both factor the same
// normal-equations (or reduced-KKT) matrix under the same AMD ordering, but
// the blocked kernel accumulates inner products in a different association
// order, so iterates round differently; the test checks the invariants —
// both certify optimality and the optimal values agree tightly.
func TestSupernodalBackendMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(12)
		p := randomProblem(rng, n, 4+rng.Intn(6), rng.Intn(3), 0.4, trial%3 == 0)
		sp, err := Solve(p, Options{Factorization: FactorSparse})
		if err != nil {
			t.Fatalf("trial %d: sparse solve: %v", trial, err)
		}
		sn, err := Solve(p, Options{Factorization: FactorSupernodal})
		if err != nil {
			t.Fatalf("trial %d: supernodal solve: %v", trial, err)
		}
		if sp.Status != StatusOptimal || sn.Status != StatusOptimal {
			t.Fatalf("trial %d: status sparse=%v supernodal=%v", trial, sp.Status, sn.Status)
		}
		scale := math.Max(1, math.Abs(sp.PrimalObj))
		if d := math.Abs(sp.PrimalObj - sn.PrimalObj); d > 1e-6*scale {
			t.Fatalf("trial %d: objective differs by %g (sparse %v, supernodal %v)",
				trial, d, sp.PrimalObj, sn.PrimalObj)
		}
	}
}

// TestSupernodalSolveParallelBitwise pins the scheduling-only contract at the
// solver level: a supernodal solve at any FactorWorkers setting returns the
// same iterates bit for bit, because parallelism changes which goroutine
// factors a panel but never the deterministic update order within one.
func TestSupernodalSolveParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	p := randomProblem(rng, 90, 70, 5, 0.06, false)
	base, err := Solve(p, Options{Factorization: FactorSupernodal, FactorWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := Solve(p, Options{Factorization: FactorSupernodal, FactorWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Iterations != base.Iterations {
			t.Fatalf("workers=%d: iterations %d, want %d", workers, got.Iterations, base.Iterations)
		}
		for i := range base.X {
			//bbvet:allow floatcmp bitwise reproducibility is the property under test
			if got.X[i] != base.X[i] {
				t.Fatalf("workers=%d: x[%d] = %v, want bitwise %v", workers, i, got.X[i], base.X[i])
			}
		}
	}
}

// TestGSparseMatchesDenseG checks that a problem handed over in CSR form
// solves bit-identically to the same problem with a dense G: the sparse
// carrier changes how the constraint matrix is stored, never a single
// floating-point operation of the solve.
func TestGSparseMatchesDenseG(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 5+rng.Intn(10), 3+rng.Intn(5), rng.Intn(3), 0.4, trial%2 == 0)
		q := *p
		q.GSparse = linalg.NewSparseFromDense(p.G)
		q.G = nil
		for _, backend := range []Factorization{FactorSparse, FactorSupernodal} {
			dense, err := Solve(p, Options{Factorization: backend})
			if err != nil {
				t.Fatalf("trial %d: dense-G solve: %v", trial, err)
			}
			sparse, err := Solve(&q, Options{Factorization: backend})
			if err != nil {
				t.Fatalf("trial %d: CSR-G solve: %v", trial, err)
			}
			if dense.Iterations != sparse.Iterations {
				t.Fatalf("trial %d backend=%v: iterations dense=%d csr=%d",
					trial, backend, dense.Iterations, sparse.Iterations)
			}
			for i := range dense.X {
				//bbvet:allow floatcmp bitwise equivalence of the two carriers is the property under test
				if dense.X[i] != sparse.X[i] {
					t.Fatalf("trial %d backend=%v: x[%d] dense=%v csr=%v",
						trial, backend, i, dense.X[i], sparse.X[i])
				}
			}
		}
	}
}

// TestDenseKKTRejectsGSparse: the all-dense oracle needs the dense G it
// would copy into the big KKT matrix; asking for it on a CSR-only problem
// must fail loudly instead of silently materializing gigabytes.
func TestDenseKKTRejectsGSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := randomProblem(rng, 6, 4, 1, 0.5, false)
	p.GSparse = linalg.NewSparseFromDense(p.G)
	p.G = nil
	_, err := Solve(p, Options{DenseKKT: true})
	if err == nil || !strings.Contains(err.Error(), "DenseKKT") {
		t.Fatalf("DenseKKT on a GSparse problem: got err %v, want a DenseKKT rejection", err)
	}
}

// TestValidateGCarriers: exactly one of G and GSparse must be set.
func TestValidateGCarriers(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	p := randomProblem(rng, 6, 4, 1, 0.5, false)
	gs := linalg.NewSparseFromDense(p.G)

	both := *p
	both.GSparse = gs
	if err := both.Validate(); err == nil {
		t.Fatal("Validate accepted a problem with both G and GSparse")
	}
	neither := *p
	neither.G = nil
	if err := neither.Validate(); err == nil {
		t.Fatal("Validate accepted a problem with neither G nor GSparse")
	}
	csr := *p
	csr.G = nil
	csr.GSparse = gs
	if err := csr.Validate(); err != nil {
		t.Fatalf("Validate rejected a CSR-only problem: %v", err)
	}
}

// TestResolveFactorization pins the auto heuristic: explicit choices pass
// through untouched, auto picks the supernodal backend at and above the
// dimension threshold and the simplicial one below it.
func TestResolveFactorization(t *testing.T) {
	for _, f := range []Factorization{FactorSparse, FactorDense, FactorSupernodal} {
		if got := ResolveFactorization(f, 10); got != f {
			t.Fatalf("ResolveFactorization(%v, 10) = %v, want passthrough", f, got)
		}
		if got := ResolveFactorization(f, 1e6); got != f {
			t.Fatalf("ResolveFactorization(%v, 1e6) = %v, want passthrough", f, got)
		}
	}
	if got := ResolveFactorization(FactorAuto, supernodalAutoDim-1); got != FactorSparse {
		t.Fatalf("auto below threshold = %v, want sparse", got)
	}
	if got := ResolveFactorization(FactorAuto, supernodalAutoDim); got != FactorSupernodal {
		t.Fatalf("auto at threshold = %v, want supernodal", got)
	}
}

// TestPatternCacheBackendKeying: a released simplicial pipeline must never
// satisfy a supernodal acquire of the same pattern (and vice versa) — the
// pooled numeric workspace is built for one factorization layout.
func TestPatternCacheBackendKeying(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	p := randomProblem(rng, 14, 10, 2, 0.3, false)
	sv := p.sparse()
	pc := NewPatternCache()

	fsp := pc.acquire(sv, FactorSparse, 1)
	if _, ok := fsp.chol.(*linalg.SparseCholesky); !ok {
		t.Fatalf("sparse acquire built %T", fsp.chol)
	}
	pc.release(fsp)

	fsn := pc.acquire(sv, FactorSupernodal, 2)
	if _, ok := fsn.chol.(*linalg.SupernodalCholesky); !ok {
		t.Fatalf("supernodal acquire served %T — backend missing from the pool key", fsn.chol)
	}
	if fsn == fsp {
		t.Fatal("supernodal acquire returned the pooled simplicial pipeline")
	}
	pc.release(fsn)
	if hits, misses := pc.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 0 hits / 2 misses across backends", hits, misses)
	}

	again := pc.acquire(sv, FactorSupernodal, 4)
	if again != fsn {
		t.Fatal("supernodal reacquire missed its own pooled pipeline")
	}
	if got := again.chol.(*linalg.SupernodalCholesky).Parallelism(); got != 4 {
		t.Fatalf("pooled hit kept stale parallelism %d, want refresh to 4", got)
	}
}
