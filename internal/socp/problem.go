// Package socp implements a from-scratch primal-dual interior-point solver
// for second-order cone programs in the standard conic form
//
//	minimize    cᵀx
//	subject to  G x + s = h,   s ∈ K
//	            A x = b,
//
// where K = R₊ˡ × Q^{q₁} × … × Q^{qN} is a product of a nonnegative orthant
// and second-order cones. The algorithm is an infeasible-start Mehrotra
// predictor-corrector method with Nesterov-Todd scaling — the same
// polynomial-complexity interior-point family the paper relies on (it used
// the commercial CPLEX solver; this package is the stdlib-only replacement).
//
// The solver detects primal and dual infeasibility through Farkas
// certificates and reports the findings in Solution.Status.
package socp

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// Problem is a conic program in inequality/equality standard form.
// A and b may be nil (no equality constraints). The constraint matrix is
// given either densely in G or in CSR form in GSparse — exactly one of the
// two — and must have Dims.Dim() rows. Large generated instances use GSparse
// (the Builder switches automatically past a size threshold): their dense G
// would be gigabytes while the actual structure is a few entries per row.
// The GSparse path requires a sparse-capable configuration: Options.DenseKKT
// is rejected by Solve when no dense G exists.
type Problem struct {
	C       linalg.Vector
	G       *linalg.Matrix
	GSparse *linalg.SparseMatrix
	H       linalg.Vector
	A       *linalg.Matrix // optional
	B       linalg.Vector  // optional, len = A.Rows
	Dims    cone.Dims

	// sv is the lazily-built sparse view of G and A used by the solver's
	// sparse KKT path. It caches the symbolic sparsity pattern of the scaled
	// constraint matrix, which is fixed across all interior-point iterations.
	// Callers must not mutate G or A after the first Solve.
	sv *sparseView
}

// sparse returns the problem's sparse view, building it on first use.
func (p *Problem) sparse() *sparseView {
	if p.sv == nil {
		p.sv = newSparseView(p)
	}
	return p.sv
}

// Validate checks the problem shapes.
func (p *Problem) Validate() error {
	if err := p.Dims.Validate(); err != nil {
		return err
	}
	n := len(p.C)
	m := p.Dims.Dim()
	switch {
	case p.G == nil && p.GSparse == nil:
		return fmt.Errorf("socp: G is nil")
	case p.G != nil && p.GSparse != nil:
		return fmt.Errorf("socp: both G and GSparse are set; supply exactly one")
	case p.G != nil && (p.G.Rows != m || p.G.Cols != n):
		return fmt.Errorf("socp: G is %dx%d, want %dx%d", p.G.Rows, p.G.Cols, m, n)
	case p.GSparse != nil && (p.GSparse.Rows != m || p.GSparse.Cols != n):
		return fmt.Errorf("socp: GSparse is %dx%d, want %dx%d", p.GSparse.Rows, p.GSparse.Cols, m, n)
	}
	if len(p.H) != m {
		return fmt.Errorf("socp: |h| = %d, want %d", len(p.H), m)
	}
	if p.A != nil {
		if p.A.Cols != n {
			return fmt.Errorf("socp: A has %d columns, want %d", p.A.Cols, n)
		}
		if len(p.B) != p.A.Rows {
			return fmt.Errorf("socp: |b| = %d, want %d", len(p.B), p.A.Rows)
		}
	} else if len(p.B) != 0 {
		return fmt.Errorf("socp: b given without A")
	}
	if m == 0 && p.A == nil {
		return fmt.Errorf("socp: problem has no constraints")
	}
	return nil
}

// NumVars returns the number of decision variables.
func (p *Problem) NumVars() int { return len(p.C) }

// Status describes the outcome of a solve.
type Status int

const (
	// StatusOptimal: converged to the required tolerances.
	StatusOptimal Status = iota
	// StatusPrimalInfeasible: a Farkas certificate of primal infeasibility
	// was found (no x satisfies the constraints).
	StatusPrimalInfeasible
	// StatusDualInfeasible: a certificate of dual infeasibility was found
	// (the primal is unbounded below or ill-posed).
	StatusDualInfeasible
	// StatusMaxIterations: the iteration limit was reached; the best iterate
	// is returned but may be inaccurate.
	StatusMaxIterations
	// StatusNumericalError: the linear algebra broke down before reaching
	// the tolerances.
	StatusNumericalError
	// StatusCanceled: the context passed to SolveContext was canceled or
	// its deadline expired before the solve converged. The solution carries
	// the last iterate's diagnostics but no usable point.
	StatusCanceled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusPrimalInfeasible:
		return "primal infeasible"
	case StatusDualInfeasible:
		return "dual infeasible"
	case StatusMaxIterations:
		return "max iterations"
	case StatusNumericalError:
		return "numerical error"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution holds the result of a solve.
type Solution struct {
	Status     Status
	X          linalg.Vector // primal variables
	S          linalg.Vector // primal slacks, ∈ K
	Z          linalg.Vector // dual variables for Gx + s = h, ∈ K
	Y          linalg.Vector // dual variables for Ax = b
	PrimalObj  float64       // cᵀx
	DualObj    float64       // −hᵀz − bᵀy
	Gap        float64       // sᵀz
	RelGap     float64
	PrimalRes  float64 // relative primal residual
	DualRes    float64 // relative dual residual
	Iterations int
}

// Options configures the solver. The zero value selects the defaults.
type Options struct {
	MaxIter  int     // default 100
	FeasTol  float64 // default 1e-7
	AbsTol   float64 // default 1e-9
	RelTol   float64 // default 1e-9
	StepFrac float64 // fraction of the step to the boundary, default 0.99
	// KKTReg is the static regularization added to the normal-equations
	// diagonal; default 1e-13 (scaled by the matrix norm).
	KKTReg float64
	// DenseKKT disables the sparse normal-equations fast path and assembles
	// Gᵀ W⁻² G from a dense copy of G every iteration, as the solver did
	// before the sparse path existed. The dense path is the correctness
	// oracle the sparse path is tested against; it always factorizes
	// densely, regardless of Factorization.
	DenseKKT bool
	// Factorization selects the factorization backend used with the sparse
	// assembly path. FactorSparse runs the sparse simplicial LDLᵀ pipeline
	// (fill-reducing AMD ordering, elimination tree, and symbolic
	// factorization computed once per problem; numeric refactorization per
	// iteration). FactorSupernodal runs the blocked supernodal LDLᵀ on the
	// same symbolic analysis — dense column panels, register-blocked update
	// kernels, and an optional worker pool (see FactorWorkers) — which wins
	// on large systems where panels grow wide. FactorAuto picks between the
	// two by KKT dimension (ResolveFactorization). FactorDense keeps the
	// sparse assembly but hands the dense normal-equations matrix to the
	// dense Cholesky/LDLᵀ — the configuration before the sparse factor
	// existed, kept for isolating assembly effects from factorization
	// effects.
	Factorization Factorization
	// FactorWorkers bounds the supernodal backend's intra-factorization
	// worker pool. Values ≤ 1 run serially — the default, because sweep
	// drivers already parallelize across solves and oversubscription helps
	// nothing. Results are bitwise identical at every setting: the scheduler
	// assigns each panel to exactly one worker and fixes every reduction
	// order. Ignored by the other backends.
	FactorWorkers int
	// WarmStart optionally supplies an initial primal/dual iterate in the
	// problem's original coordinates, usually a neighboring problem's
	// solution (see WarmStart and Solution.Warm). The solver shifts it
	// safely into the cone interior and iterates from there; an unusable
	// iterate falls back to the cold least-squares start. nil (the default)
	// is the cold start, and a solve with WarmStart == nil is bit-identical
	// to one on a build without warm-start support.
	WarmStart *WarmStart
	// Cache optionally shares the pattern-keyed symbolic work of the sparse
	// KKT pipeline — AᵀA scatter plans, AMD orderings, elimination trees,
	// symbolic factorizations, and their pooled numeric workspaces — across
	// solves whose constraint matrices have the same sparsity pattern (every
	// point of a sweep over one topology). The cache is safe for concurrent
	// solves and only ever changes where buffers come from, never any
	// computed value: solves with and without a cache are bit-identical.
	// nil (the default) rebuilds the symbolic work per solve.
	Cache *PatternCache
	// Trace enables per-iteration progress output (debugging).
	Trace bool
	// TraceOut is the destination of Trace output; nil selects os.Stdout.
	// Parallel sweeps that trace should hand every solve its own writer so
	// the per-iteration lines of concurrent solves do not interleave.
	TraceOut io.Writer
}

// Factorization selects the KKT factorization backend; see
// Options.Factorization.
type Factorization int

const (
	// FactorAuto picks the fastest correct backend by KKT dimension: the
	// blocked supernodal factorization on large systems, the simplicial one
	// below the crossover (see ResolveFactorization).
	FactorAuto Factorization = iota
	// FactorSparse forces the sparse simplicial factorization.
	FactorSparse
	// FactorDense forces the dense Cholesky/LDLᵀ factorization.
	FactorDense
	// FactorSupernodal forces the blocked supernodal factorization.
	FactorSupernodal
)

// String implements fmt.Stringer.
func (f Factorization) String() string {
	switch f {
	case FactorAuto:
		return "auto"
	case FactorSparse:
		return "sparse"
	case FactorDense:
		return "dense"
	case FactorSupernodal:
		return "supernodal"
	default:
		return fmt.Sprintf("Factorization(%d)", int(f))
	}
}

// supernodalAutoDim is the KKT dimension where FactorAuto switches from the
// simplicial to the supernodal backend. Below it the simplicial kernel's
// lower constant wins (panels stay narrow, the blocked kernels cannot
// amortize their setup); above it supernode panels grow wide enough for the
// blocked updates to pay off.
const supernodalAutoDim = 768

// ResolveFactorization maps a Factorization choice to the concrete backend
// the solver will run for a KKT system of the given dimension (the
// normal-equations dimension n, or n+p with equality constraints). Explicit
// choices resolve to themselves; FactorAuto resolves by dimension.
func ResolveFactorization(f Factorization, dim int) Factorization {
	if f != FactorAuto {
		return f
	}
	if dim >= supernodalAutoDim {
		return FactorSupernodal
	}
	return FactorSparse
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.FeasTol == 0 {
		o.FeasTol = 1e-7
	}
	if o.AbsTol == 0 {
		o.AbsTol = 1e-9
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-9
	}
	if o.StepFrac == 0 {
		o.StepFrac = 0.99
	}
	if o.KKTReg == 0 {
		o.KKTReg = 1e-13
	}
	if o.Trace && o.TraceOut == nil {
		o.TraceOut = os.Stdout
	}
	return o
}
