//go:build !race

package socp

const raceEnabled = false
