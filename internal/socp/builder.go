package socp

import (
	"fmt"
	"sort"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// Term is one coefficient·variable entry of an affine expression.
type Term struct {
	Var  int
	Coef float64
}

// Affine is an affine expression Const + Σ Terms[i].Coef · x[Terms[i].Var].
type Affine struct {
	Const float64
	Terms []Term
}

// Expr starts an affine expression with the given constant.
func Expr(c float64) Affine { return Affine{Const: c} }

// Plus returns a + coef·x[v] as a new expression.
func (a Affine) Plus(coef float64, v int) Affine {
	terms := make([]Term, len(a.Terms), len(a.Terms)+1)
	copy(terms, a.Terms)
	return Affine{Const: a.Const, Terms: append(terms, Term{Var: v, Coef: coef})}
}

// PlusConst returns a + c as a new expression.
func (a Affine) PlusConst(c float64) Affine {
	return Affine{Const: a.Const + c, Terms: a.Terms}
}

// Minus returns a − b as a new expression.
func (a Affine) Minus(b Affine) Affine {
	terms := make([]Term, len(a.Terms), len(a.Terms)+len(b.Terms))
	copy(terms, a.Terms)
	for _, t := range b.Terms {
		terms = append(terms, Term{Var: t.Var, Coef: -t.Coef})
	}
	return Affine{Const: a.Const - b.Const, Terms: terms}
}

// Builder incrementally assembles a conic program in the natural
// "affine expression ∈ cone" form and converts it to the solver's
// (c, G, h, dims) representation. Orthant constraints are emitted first (in
// insertion order), followed by the SOC blocks (in insertion order), matching
// the layout required by cone.Dims.
type Builder struct {
	names []string
	obj   []float64

	lin    []Affine   // each must be ≥ 0
	soc    [][]Affine // each block ∈ SOC of its length
	eqRows []Affine   // each must be = 0 (optional)
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// AddVar introduces a new (free) variable and returns its index. The name is
// only used for diagnostics.
func (b *Builder) AddVar(name string) int {
	b.names = append(b.names, name)
	b.obj = append(b.obj, 0)
	return len(b.names) - 1
}

// NumVars returns the number of variables added so far.
func (b *Builder) NumVars() int { return len(b.names) }

// VarName returns the diagnostic name of variable v.
func (b *Builder) VarName(v int) string { return b.names[v] }

// SetObjective adds coef to the objective coefficient of variable v (the
// objective is minimized).
func (b *Builder) SetObjective(v int, coef float64) { b.obj[v] += coef }

// AddNonNeg adds the constraint a ≥ 0 and returns the orthant row index
// (which equals the row index in the final cone vector, since orthant rows
// come first).
func (b *Builder) AddNonNeg(a Affine) int {
	b.lin = append(b.lin, a)
	return len(b.lin) - 1
}

// AddLE adds lhs ≤ rhs for affine expressions, as rhs − lhs ≥ 0, returning
// the orthant row index.
func (b *Builder) AddLE(lhs, rhs Affine) int {
	d := Affine{Const: rhs.Const - lhs.Const}
	d.Terms = append(d.Terms, rhs.Terms...)
	for _, t := range lhs.Terms {
		d.Terms = append(d.Terms, Term{Var: t.Var, Coef: -t.Coef})
	}
	return b.AddNonNeg(d)
}

// AddSOC adds the constraint (f₀, f₁, …) ∈ SOC, i.e. f₀ ≥ ‖(f₁, …)‖₂.
// It returns the block index among SOC constraints.
func (b *Builder) AddSOC(fs ...Affine) int {
	if len(fs) < 2 {
		panic("socp: SOC block needs at least 2 rows")
	}
	block := make([]Affine, len(fs))
	copy(block, fs)
	b.soc = append(b.soc, block)
	return len(b.soc) - 1
}

// AddProductGE adds the hyperbolic constraint x[u]·x[v] ≥ k² (with the
// implied x[u], x[v] ≥ 0) via its exact second-order-cone representation
// ‖(2k, x[u]−x[v])‖ ≤ x[u]+x[v]. This is the paper's Constraint (8) when
// k = 1 (λ·β′ ≥ 1). It returns the SOC block index.
func (b *Builder) AddProductGE(u, v int, k float64) int {
	return b.AddSOC(
		Expr(0).Plus(1, u).Plus(1, v),  // u + v
		Expr(2*k),                      // 2k
		Expr(0).Plus(1, u).Plus(-1, v), // u − v
	)
}

// AddEq adds the equality constraint a = 0.
func (b *Builder) AddEq(a Affine) { b.eqRows = append(b.eqRows, a) }

// fillRow writes the affine expression a as row r of G and entry r of h
// using the convention s_r = h_r − G_r·x = a(x).
func fillRow(g *linalg.Matrix, h linalg.Vector, r int, a Affine, nvars int) error {
	h[r] = a.Const
	for _, t := range a.Terms {
		if t.Var < 0 || t.Var >= nvars {
			return fmt.Errorf("socp: term references unknown variable %d", t.Var)
		}
		g.Add(r, t.Var, -t.Coef)
	}
	return nil
}

// sparseBuildCells is the dense G size (rows·cols) past which Build
// assembles the constraint matrix directly in CSR form. Generated instances
// with thousands of tasks have dense G footprints in the gigabytes while
// each row touches a handful of variables; below the threshold the dense
// form is kept because small-problem callers index p.G directly.
const sparseBuildCells = 1 << 22 // 4M cells = 32 MB of float64

// Build converts the accumulated constraints into a Problem. Past
// sparseBuildCells the constraint matrix is emitted in CSR form
// (Problem.GSparse) with exactly the pattern and values the dense build
// would produce via NewSparseFromDense — duplicate terms accumulated, exact
// zeros dropped — so the two forms solve bit-identically.
func (b *Builder) Build() (*Problem, error) {
	n := len(b.names)
	dims := cone.Dims{NonNeg: len(b.lin)}
	for _, blk := range b.soc {
		dims.SOC = append(dims.SOC, len(blk))
	}
	m := dims.Dim()
	p := &Problem{
		C:    linalg.Vector(b.obj).Clone(),
		H:    linalg.NewVector(m),
		Dims: dims,
	}
	if m*n >= sparseBuildCells {
		gs, err := b.buildSparseG(n, m, p.H)
		if err != nil {
			return nil, err
		}
		p.GSparse = gs
	} else {
		g := linalg.NewMatrix(m, n)
		r := 0
		for _, a := range b.lin {
			if err := fillRow(g, p.H, r, a, n); err != nil {
				return nil, err
			}
			r++
		}
		for _, blk := range b.soc {
			for _, a := range blk {
				if err := fillRow(g, p.H, r, a, n); err != nil {
					return nil, err
				}
				r++
			}
		}
		p.G = g
	}
	if len(b.eqRows) > 0 {
		a := linalg.NewMatrix(len(b.eqRows), n)
		bb := linalg.NewVector(len(b.eqRows))
		for i, row := range b.eqRows {
			// a(x) = 0 means Σ coef·x = −Const.
			bb[i] = -row.Const
			for _, t := range row.Terms {
				if t.Var < 0 || t.Var >= n {
					return nil, fmt.Errorf("socp: equality references unknown variable %d", t.Var)
				}
				a.Add(i, t.Var, t.Coef)
			}
		}
		p.A = a
		p.B = bb
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// buildSparseG assembles the constraint rows straight into CSR form through
// a dense scratch row: terms accumulate into the scratch (duplicates sum,
// like the dense g.Add path), then the touched columns are emitted in
// ascending order with exact zeros dropped — the same normalization
// NewSparseFromDense applies to the dense build, entry for entry.
func (b *Builder) buildSparseG(n, m int, h linalg.Vector) (*linalg.SparseMatrix, error) {
	gs := &linalg.SparseMatrix{Rows: m, Cols: n, RowPtr: make([]int, m+1)}
	scratch := make(linalg.Vector, n)
	touched := make([]int, 0, 16)
	r := 0
	emit := func(a Affine) error {
		h[r] = a.Const
		touched = touched[:0]
		for _, t := range a.Terms {
			if t.Var < 0 || t.Var >= n {
				return fmt.Errorf("socp: term references unknown variable %d", t.Var)
			}
			touched = append(touched, t.Var)
			scratch[t.Var] -= t.Coef
		}
		sort.Ints(touched)
		for k, j := range touched {
			if k > 0 && touched[k-1] == j {
				continue // duplicate term, already emitted with the sum
			}
			if v := scratch[j]; v != 0 {
				gs.ColIdx = append(gs.ColIdx, j)
				gs.Val = append(gs.Val, v)
			}
			scratch[j] = 0
		}
		gs.RowPtr[r+1] = len(gs.ColIdx)
		r++
		return nil
	}
	for _, a := range b.lin {
		if err := emit(a); err != nil {
			return nil, err
		}
	}
	for _, blk := range b.soc {
		for _, a := range blk {
			if err := emit(a); err != nil {
				return nil, err
			}
		}
	}
	return gs, nil
}

// Eval evaluates the affine expression at x.
func (a Affine) Eval(x linalg.Vector) float64 {
	v := a.Const
	for _, t := range a.Terms {
		v += t.Coef * x[t.Var]
	}
	return v
}
