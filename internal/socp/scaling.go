package socp

import (
	"math"

	"repro/internal/linalg"
)

// equilibrate rescales the problem so the interior-point iterations are
// well conditioned regardless of the magnitudes of objective weights,
// constraint coefficients, or resource capacities:
//
//   - every orthant row of (G | h) is divided by its coefficient inf-norm
//     (one uniform factor per second-order-cone block, which preserves the
//     cone), and likewise for rows of (A | b);
//   - the cost vector is divided by max(1, ‖c‖∞).
//
// It returns the scaled problem plus an unscale function that restores the
// solution of the original problem (x is unchanged; slacks, duals, and
// objective values are rescaled).
func equilibrate(p *Problem) (*Problem, func(*Solution)) {
	n := len(p.C)
	m := p.Dims.Dim()

	costScale := math.Max(1, linalg.NormInf(p.C))
	c := p.C.Clone()
	c.Scale(1 / costScale)

	g := p.G.Clone()
	h := p.H.Clone()
	rowScale := make(linalg.Vector, m)
	rowNorm := func(i int) float64 {
		return linalg.NormInf(g.Data[i*n : (i+1)*n])
	}
	// Orthant rows scale independently. Including |h| in the scale keeps
	// loose capacity constraints (tiny coefficients, huge bound) from
	// dominating the least-squares starting point.
	for i := 0; i < p.Dims.NonNeg; i++ {
		r := math.Max(rowNorm(i), math.Abs(h[i]))
		if r == 0 {
			r = 1
		}
		rowScale[i] = r
	}
	// SOC blocks share one factor to stay a cone constraint.
	off := p.Dims.NonNeg
	for _, q := range p.Dims.SOC {
		r := 0.0
		for i := off; i < off+q; i++ {
			if v := math.Max(rowNorm(i), math.Abs(h[i])); v > r {
				r = v
			}
		}
		if r == 0 {
			r = 1
		}
		for i := off; i < off+q; i++ {
			rowScale[i] = r
		}
		off += q
	}
	for i := 0; i < m; i++ {
		inv := 1 / rowScale[i]
		row := g.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] *= inv
		}
		h[i] *= inv
	}

	sp := &Problem{C: c, G: g, H: h, Dims: p.Dims}
	var eqScale linalg.Vector
	if p.A != nil {
		a := p.A.Clone()
		b := p.B.Clone()
		eqScale = make(linalg.Vector, a.Rows)
		for i := 0; i < a.Rows; i++ {
			r := linalg.NormInf(a.Data[i*n : (i+1)*n])
			if r == 0 {
				r = math.Max(1, math.Abs(b[i]))
			}
			eqScale[i] = r
			inv := 1 / r
			row := a.Data[i*n : (i+1)*n]
			for j := range row {
				row[j] *= inv
			}
			b[i] *= inv
		}
		sp.A = a
		sp.B = b
	}

	unscale := func(sol *Solution) {
		if sol == nil {
			return
		}
		// x unchanged. s = D·s̃, z = σc·D⁻¹·z̃, y = σc·DA⁻¹·ỹ.
		for i := 0; i < m; i++ {
			if len(sol.S) == m {
				sol.S[i] *= rowScale[i]
			}
			if len(sol.Z) == m {
				sol.Z[i] *= costScale / rowScale[i]
			}
		}
		for i := range sol.Y {
			sol.Y[i] *= costScale / eqScale[i]
		}
		sol.PrimalObj *= costScale
		sol.DualObj *= costScale
		sol.Gap *= costScale
	}
	return sp, unscale
}
