package socp

import (
	"math"

	"repro/internal/linalg"
)

// eqScales records the diagonal scalings equilibrate applied, so solutions
// can be mapped back to the original coordinates and caller-supplied warm
// starts can be mapped forward into the equilibrated ones.
type eqScales struct {
	costScale float64        // c̃ = c / σc
	rowScale  linalg.Vector  // row i of (G̃ | h̃) = row i of (G | h) / rowScale[i]
	eqScale   linalg.Vector  // row i of (Ã | b̃) = row i of (A | b) / eqScale[i]; nil without equalities
	pooledG   *linalg.Matrix // scaled-G workspace borrowed from a PatternCache; returned after the solve
}

// equilibrate rescales the problem so the interior-point iterations are
// well conditioned regardless of the magnitudes of objective weights,
// constraint coefficients, or resource capacities:
//
//   - every orthant row of (G | h) is divided by its coefficient inf-norm
//     (one uniform factor per second-order-cone block, which preserves the
//     cone), and likewise for rows of (A | b);
//   - the cost vector is divided by max(1, ‖c‖∞).
//
// It returns the scaled problem plus the applied scales; unscale restores
// the solution of the original problem (x is unchanged; slacks, duals, and
// objective values are rescaled).
func equilibrate(p *Problem, pc *PatternCache) (*Problem, *eqScales) {
	if p.GSparse != nil {
		return equilibrateSparse(p)
	}
	n := len(p.C)
	m := p.Dims.Dim()

	costScale := math.Max(1, linalg.NormInf(p.C))
	c := p.C.Clone()
	c.Scale(1 / costScale)

	// The scaled copy of G is the largest per-solve allocation; borrow it
	// from the pattern cache's dimension-keyed pool when one is in play.
	// Every entry is overwritten by the copy below, so the borrowed buffer
	// cannot leak values between solves.
	var g *linalg.Matrix
	var pooled *linalg.Matrix
	if pc != nil {
		pooled = pc.acquireDense(p.G.Rows, p.G.Cols)
		copy(pooled.Data, p.G.Data)
		g = pooled
	} else {
		g = p.G.Clone()
	}
	h := p.H.Clone()
	rowScale := make(linalg.Vector, m)
	rowNorm := func(i int) float64 {
		return linalg.NormInf(g.Data[i*n : (i+1)*n])
	}
	// Orthant rows scale independently. Including |h| in the scale keeps
	// loose capacity constraints (tiny coefficients, huge bound) from
	// dominating the least-squares starting point.
	for i := 0; i < p.Dims.NonNeg; i++ {
		r := math.Max(rowNorm(i), math.Abs(h[i]))
		if r == 0 {
			r = 1
		}
		rowScale[i] = r
	}
	// SOC blocks share one factor to stay a cone constraint.
	off := p.Dims.NonNeg
	for _, q := range p.Dims.SOC {
		r := 0.0
		for i := off; i < off+q; i++ {
			if v := math.Max(rowNorm(i), math.Abs(h[i])); v > r {
				r = v
			}
		}
		if r == 0 {
			r = 1
		}
		for i := off; i < off+q; i++ {
			rowScale[i] = r
		}
		off += q
	}
	for i := 0; i < m; i++ {
		inv := 1 / rowScale[i]
		row := g.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] *= inv
		}
		h[i] *= inv
	}

	sp := &Problem{C: c, G: g, H: h, Dims: p.Dims}
	sc := &eqScales{costScale: costScale, rowScale: rowScale, pooledG: pooled}
	equilibrateEq(p, sp, sc, n)
	return sp, sc
}

// equilibrateSparse is equilibrate for problems carrying the constraint
// matrix in CSR form. The row norms and applied scales are identical to the
// dense path's — a row's inf-norm over stored nonzeros equals its inf-norm
// over the full dense row — so a problem solved through either
// representation produces bit-identical iterates. The scaled copy shares the
// immutable pattern arrays with the caller's matrix and clones only the
// values.
func equilibrateSparse(p *Problem) (*Problem, *eqScales) {
	n := len(p.C)
	m := p.Dims.Dim()

	costScale := math.Max(1, linalg.NormInf(p.C))
	c := p.C.Clone()
	c.Scale(1 / costScale)

	//bbvet:allow csralias the pattern is immutable and shared by design; only Val is private
	g := &linalg.SparseMatrix{
		Rows: p.GSparse.Rows, Cols: p.GSparse.Cols,
		RowPtr: p.GSparse.RowPtr, ColIdx: p.GSparse.ColIdx,
		Val: append([]float64(nil), p.GSparse.Val...),
	}
	h := p.H.Clone()
	rowScale := make(linalg.Vector, m)
	rowNorm := func(i int) float64 {
		return linalg.NormInf(g.Val[g.RowPtr[i]:g.RowPtr[i+1]])
	}
	for i := 0; i < p.Dims.NonNeg; i++ {
		r := math.Max(rowNorm(i), math.Abs(h[i]))
		if r == 0 {
			r = 1
		}
		rowScale[i] = r
	}
	off := p.Dims.NonNeg
	for _, q := range p.Dims.SOC {
		r := 0.0
		for i := off; i < off+q; i++ {
			if v := math.Max(rowNorm(i), math.Abs(h[i])); v > r {
				r = v
			}
		}
		if r == 0 {
			r = 1
		}
		for i := off; i < off+q; i++ {
			rowScale[i] = r
		}
		off += q
	}
	for i := 0; i < m; i++ {
		inv := 1 / rowScale[i]
		row := g.Val[g.RowPtr[i]:g.RowPtr[i+1]]
		for j := range row {
			row[j] *= inv
		}
		h[i] *= inv
	}

	sp := &Problem{C: c, GSparse: g, H: h, Dims: p.Dims}
	sc := &eqScales{costScale: costScale, rowScale: rowScale}
	equilibrateEq(p, sp, sc, n)
	return sp, sc
}

// equilibrateEq scales the equality rows of (A | b) into sp — the shared
// tail of both equilibrate paths. No-op without equalities.
func equilibrateEq(p, sp *Problem, sc *eqScales, n int) {
	if p.A == nil {
		return
	}
	a := p.A.Clone()
	b := p.B.Clone()
	sc.eqScale = make(linalg.Vector, a.Rows)
	for i := 0; i < a.Rows; i++ {
		r := linalg.NormInf(a.Data[i*n : (i+1)*n])
		if r == 0 {
			r = math.Max(1, math.Abs(b[i]))
		}
		sc.eqScale[i] = r
		inv := 1 / r
		row := a.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] *= inv
		}
		b[i] *= inv
	}
	sp.A = a
	sp.B = b
}

// unscale maps a solution of the equilibrated problem back to the original
// coordinates: x unchanged, s = D·s̃, z = σc·D⁻¹·z̃, y = σc·DA⁻¹·ỹ.
func (sc *eqScales) unscale(sol *Solution) {
	if sol == nil {
		return
	}
	m := len(sc.rowScale)
	for i := 0; i < m; i++ {
		if len(sol.S) == m {
			sol.S[i] *= sc.rowScale[i]
		}
		if len(sol.Z) == m {
			sol.Z[i] *= sc.costScale / sc.rowScale[i]
		}
	}
	for i := range sol.Y {
		sol.Y[i] *= sc.costScale / sc.eqScale[i]
	}
	sol.PrimalObj *= sc.costScale
	sol.DualObj *= sc.costScale
	sol.Gap *= sc.costScale
}

// scaleWarm maps a warm start given in the original coordinates into the
// equilibrated ones — the inverse of unscale, applied to a fresh copy (the
// caller's vectors are never written). Iterates with mismatched dimensions
// or non-finite entries return nil, which makes the solver fall back to the
// cold start instead of polluting the iteration.
func (sc *eqScales) scaleWarm(w *WarmStart, n int) *WarmStart {
	if w == nil {
		return nil
	}
	m := len(sc.rowScale)
	pe := len(sc.eqScale)
	if len(w.X) != n || len(w.S) != m || len(w.Z) != m || len(w.Y) != pe {
		return nil
	}
	sw := &WarmStart{X: w.X.Clone(), S: w.S.Clone(), Z: w.Z.Clone(), Y: w.Y.Clone()}
	for i := 0; i < m; i++ {
		sw.S[i] /= sc.rowScale[i]
		sw.Z[i] *= sc.rowScale[i] / sc.costScale
	}
	for i := 0; i < pe; i++ {
		sw.Y[i] *= sc.eqScale[i] / sc.costScale
	}
	for _, v := range [][]float64{sw.X, sw.S, sw.Z, sw.Y} {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil
			}
		}
	}
	return sw
}
