package socp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// perturbedProblem returns a copy of p with h nudged slightly — the shape
// of a neighboring sweep point (same pattern, nearby data).
func perturbedProblem(p *Problem, eps float64) *Problem {
	q := &Problem{C: p.C.Clone(), G: p.G.Clone(), H: p.H.Clone(), Dims: p.Dims}
	for i := range q.H {
		q.H[i] += eps * (1 + math.Abs(q.H[i]))
	}
	if p.A != nil {
		q.A = p.A.Clone()
		q.B = p.B.Clone()
	}
	return q
}

// TestWarmStartMatchesColdSolution: a warm-started solve must converge to
// the same optimum as the cold solve of the same problem, in fewer
// iterations (warm-starting from the problem's own solution is the
// best-case neighbor).
func TestWarmStartMatchesColdSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, eq := range []bool{false, true} {
		p := randomProblem(rng, 16, 12, 2, 0.4, eq)
		cold, err := Solve(p, Options{})
		if err != nil || cold.Status != StatusOptimal {
			t.Fatalf("eq=%v: cold solve failed: %v %v", eq, cold.Status, err)
		}
		warm, err := Solve(p, Options{WarmStart: cold.Warm()})
		if err != nil || warm.Status != StatusOptimal {
			t.Fatalf("eq=%v: warm solve failed: %v %v", eq, warm.Status, err)
		}
		if d := math.Abs(warm.PrimalObj - cold.PrimalObj); d > 1e-6*(1+math.Abs(cold.PrimalObj)) {
			t.Fatalf("eq=%v: warm optimum %g differs from cold %g", eq, warm.PrimalObj, cold.PrimalObj)
		}
		for i := range cold.X {
			if d := math.Abs(warm.X[i] - cold.X[i]); d > 1e-4*(1+math.Abs(cold.X[i])) {
				t.Fatalf("eq=%v: x[%d]: warm %g vs cold %g", eq, i, warm.X[i], cold.X[i])
			}
		}
		if warm.Iterations >= cold.Iterations {
			t.Errorf("eq=%v: warm start took %d iterations, cold %d — no speedup",
				eq, warm.Iterations, cold.Iterations)
		}
	}
}

// TestWarmStartNeighborProblem warm-starts a slightly perturbed problem —
// the actual sweep scenario — and checks correctness plus iteration
// reduction.
func TestWarmStartNeighborProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	p := randomProblem(rng, 20, 16, 2, 0.4, false)
	base, err := Solve(p, Options{})
	if err != nil || base.Status != StatusOptimal {
		t.Fatalf("base solve failed: %v %v", base.Status, err)
	}
	q := perturbedProblem(p, 1e-3)
	cold, err := Solve(q, Options{})
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("cold neighbor solve failed: %v %v", cold.Status, err)
	}
	warm, err := Solve(q, Options{WarmStart: base.Warm()})
	if err != nil || warm.Status != StatusOptimal {
		t.Fatalf("warm neighbor solve failed: %v %v", warm.Status, err)
	}
	if d := math.Abs(warm.PrimalObj - cold.PrimalObj); d > 1e-6*(1+math.Abs(cold.PrimalObj)) {
		t.Fatalf("warm optimum %g differs from cold %g", warm.PrimalObj, cold.PrimalObj)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("neighbor warm start took %d iterations, cold %d — no speedup",
			warm.Iterations, cold.Iterations)
	}
}

// TestWarmStartInvalidFallsBackCold: mismatched dimensions and non-finite
// entries must be ignored, yielding exactly the cold solve.
func TestWarmStartInvalidFallsBackCold(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := randomProblem(rng, 12, 10, 1, 0.5, false)
	cold, err := Solve(p, Options{})
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("cold solve failed: %v %v", cold.Status, err)
	}
	m := p.Dims.Dim()
	bad := []*WarmStart{
		{X: linalg.NewVector(3), S: linalg.NewVector(m), Z: linalg.NewVector(m), Y: linalg.NewVector(0)},
		func() *WarmStart {
			w := cold.Warm()
			w.S[0] = math.NaN()
			return w
		}(),
		func() *WarmStart {
			w := cold.Warm()
			w.Z[1] = math.Inf(1)
			return w
		}(),
	}
	for k, w := range bad {
		got, err := Solve(p, Options{WarmStart: w})
		if err != nil || got.Status != StatusOptimal {
			t.Fatalf("bad warm %d: solve failed: %v %v", k, got.Status, err)
		}
		if got.Iterations != cold.Iterations {
			t.Errorf("bad warm %d: took %d iterations, cold %d — fallback not bit-identical",
				k, got.Iterations, cold.Iterations)
		}
		for i := range cold.X {
			//bbvet:allow floatcmp fallback must reproduce the cold solve bitwise
			if got.X[i] != cold.X[i] {
				t.Fatalf("bad warm %d: x[%d] differs from cold solve", k, i)
			}
		}
	}
}

// TestPatternCacheBitIdentical: solving through a PatternCache — cold pool,
// then pooled reuse across several neighboring problems — must reproduce
// the uncached solves bit for bit, for both the normal-equations and the
// reduced-KKT paths.
func TestPatternCacheBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, eq := range []bool{false, true} {
		p := randomProblem(rng, 16, 12, 2, 0.4, eq)
		pc := NewPatternCache()
		for round := 0; round < 3; round++ {
			q := perturbedProblem(p, float64(round)*1e-3)
			plain, err := Solve(q, Options{})
			if err != nil {
				t.Fatalf("eq=%v round %d: plain solve error: %v", eq, round, err)
			}
			cached, err := Solve(q, Options{Cache: pc})
			if err != nil {
				t.Fatalf("eq=%v round %d: cached solve error: %v", eq, round, err)
			}
			if cached.Status != plain.Status || cached.Iterations != plain.Iterations {
				t.Fatalf("eq=%v round %d: cached solve diverged: %v/%d vs %v/%d",
					eq, round, cached.Status, cached.Iterations, plain.Status, plain.Iterations)
			}
			for i := range plain.X {
				//bbvet:allow floatcmp cached solves must be bit-identical to uncached
				if cached.X[i] != plain.X[i] {
					t.Fatalf("eq=%v round %d: x[%d] differs through cache", eq, round, i)
				}
			}
		}
		// The race detector drops sync.Pool items at random, turning hits
		// into misses; the bit-identity assertions above still hold there.
		if hits, misses := pc.Stats(); !raceEnabled && (misses != 1 || hits != 2) {
			t.Errorf("eq=%v: cache stats hits=%d misses=%d, want 2/1", eq, hits, misses)
		}
	}
}
