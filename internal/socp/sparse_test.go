package socp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// randomProblem builds a random SOCP of the given shape with a known interior
// primal and dual point (same construction as the strong-duality tests):
// h = Gx₀ + s₀ with s₀ interior, c = −Gᵀz₀ with z₀ interior. fill is the
// density of G (each entry is nonzero with that probability, but every column
// gets at least one entry so the problem stays bounded). With eq true it adds
// a consistent equality block A x = A x₀, exercising the LDLᵀ reduced-KKT
// path.
func randomProblem(rng *rand.Rand, n, l, nsoc int, fill float64, eq bool) *Problem {
	dims := cone.Dims{NonNeg: l}
	for b := 0; b < nsoc; b++ {
		dims.SOC = append(dims.SOC, 3)
	}
	m := dims.Dim()
	g := linalg.NewMatrix(m, n)
	for i := range g.Data {
		// Leave structural zeros so the sparse path has pattern to exploit.
		if rng.Float64() < fill {
			g.Data[i] = rng.NormFloat64()
		}
	}
	for j := 0; j < n; j++ {
		g.Data[rng.Intn(m)*n+j] = rng.NormFloat64()
	}
	x0 := linalg.NewVector(n)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	interior := func(v linalg.Vector) {
		for i := 0; i < l; i++ {
			v[i] = 0.1 + rng.Float64()
		}
		off := l
		for range dims.SOC {
			var tail float64
			for i := 1; i < 3; i++ {
				v[off+i] = rng.NormFloat64()
				tail += v[off+i] * v[off+i]
			}
			v[off] = math.Sqrt(tail) + 0.1 + rng.Float64()
			off += 3
		}
	}
	s0 := linalg.NewVector(m)
	interior(s0)
	h := linalg.NewVector(m)
	g.MulVec(h, x0)
	linalg.Add(h, h, s0)
	z0 := linalg.NewVector(m)
	interior(z0)
	c := linalg.NewVector(n)
	g.MulVecT(c, z0)
	c.Scale(-1)
	p := &Problem{C: c, G: g, H: h, Dims: dims}
	if eq {
		pe := 1 + rng.Intn(2)
		if pe >= n {
			pe = n - 1
		}
		a := linalg.NewMatrix(pe, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := linalg.NewVector(pe)
		a.MulVec(b, x0)
		p.A = a
		p.B = b
		// Dual feasibility needs c = −Gᵀz₀ − Aᵀy₀; keep y₀ = 0.
	}
	return p
}

// TestSparseAssemblyMatchesDenseOracle pins the sparse *assembly* path
// (FactorDense: sparse Gᵀ W⁻² G refill handed to the dense factorization)
// against the dense oracle (Options.DenseKKT). The two paths assemble
// Gᵀ W⁻² G in the same summation order and factorize identically, so the
// iterates are bit-identical in practice: the test demands matching
// iteration counts and 1e-6 agreement.
func TestSparseAssemblyMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 2+rng.Intn(5), 1+rng.Intn(4), rng.Intn(3), 0.8, trial%3 == 0)
		sparse, err := Solve(p, Options{Factorization: FactorDense})
		if err != nil {
			t.Fatalf("trial %d: sparse solve: %v", trial, err)
		}
		dense, err := Solve(p, Options{DenseKKT: true})
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		if sparse.Status != dense.Status {
			t.Fatalf("trial %d: status sparse=%v dense=%v", trial, sparse.Status, dense.Status)
		}
		if sparse.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sparse.Status)
		}
		scale := math.Max(1, math.Abs(dense.PrimalObj))
		if d := math.Abs(sparse.PrimalObj - dense.PrimalObj); d > 1e-6*scale {
			t.Fatalf("trial %d: objective differs by %g (sparse %v, dense %v)",
				trial, d, sparse.PrimalObj, dense.PrimalObj)
		}
		for i := range sparse.X {
			if d := math.Abs(sparse.X[i] - dense.X[i]); d > 1e-6*scale {
				t.Fatalf("trial %d: x[%d] differs by %g (sparse %v, dense %v)",
					trial, i, d, sparse.X[i], dense.X[i])
			}
		}
		if sparse.Iterations != dense.Iterations {
			t.Fatalf("trial %d: iteration counts diverge: sparse %d, dense %d",
				trial, sparse.Iterations, dense.Iterations)
		}
	}
}

// TestSparseFactorMatchesDenseOracle is the property test of the full sparse
// factorization pipeline: the default solve (AMD-ordered simplicial LDLᵀ with
// symbolic reuse) must agree with the dense oracle to 1e-6 on randomized
// feasible instances. The elimination order differs from the dense
// factorization, so the iterates round differently and iteration counts may
// diverge by one or two — only the converged answers are compared. Tiny
// random sparse instances are often degenerate (the optimal face is a whole
// segment and any point on it is correct), so the test checks what is
// invariant: both paths certify optimality within the solver's tolerances
// and the optimal values agree tightly. Entrywise solution agreement on
// non-degenerate instances is covered by the paper-instance oracle test in
// internal/core.
func TestSparseFactorMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		p := randomProblem(rng, n, n+rng.Intn(4), rng.Intn(3), 0.8, trial%3 == 0)
		sparse, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: sparse solve: %v", trial, err)
		}
		dense, err := Solve(p, Options{DenseKKT: true})
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		if sparse.Status != StatusOptimal || dense.Status != StatusOptimal {
			t.Fatalf("trial %d: status sparse=%v dense=%v", trial, sparse.Status, dense.Status)
		}
		for _, s := range []*Solution{sparse, dense} {
			if s.PrimalRes > 1e-7 || s.DualRes > 1e-7 {
				t.Fatalf("trial %d: residuals too large: pres=%g dres=%g", trial, s.PrimalRes, s.DualRes)
			}
		}
		scale := math.Max(1, math.Abs(dense.PrimalObj))
		if d := math.Abs(sparse.PrimalObj - dense.PrimalObj); d > 1e-7*scale {
			t.Fatalf("trial %d: objective differs by %g (sparse %v, dense %v)",
				trial, d, sparse.PrimalObj, dense.PrimalObj)
		}
	}
}

// TestSparseViewPattern sanity-checks the lazily built sparse view against
// the dense G it mirrors.
func TestSparseViewPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := randomProblem(rng, 2+rng.Intn(5), 1+rng.Intn(4), rng.Intn(3), 0.8, true)
	sv := p.sparse()
	if p.sparse() != sv {
		t.Fatal("sparse view not cached on the Problem")
	}
	gd := sv.g.ToDense()
	for i := 0; i < p.G.Rows; i++ {
		for j := 0; j < p.G.Cols; j++ {
			if gd.At(i, j) != p.G.At(i, j) {
				t.Fatalf("sparse G (%d,%d) = %v, want %v", i, j, gd.At(i, j), p.G.At(i, j))
			}
		}
	}
	if sv.a == nil || sv.a.Rows != p.A.Rows {
		t.Fatal("sparse A missing")
	}
	// Unscaled fill (w = nil) must reproduce G on the shared pattern.
	sv.fillScaled(nil)
	ata := linalg.NewMatrix(p.G.Cols, p.G.Cols)
	sv.gs.AtAInto(ata)
	want := linalg.NewMatrix(p.G.Cols, p.G.Cols)
	p.G.AtAInto(want)
	for i := range ata.Data {
		if math.Abs(ata.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("unscaled GᵀG entry %d = %v, want %v", i, ata.Data[i], want.Data[i])
		}
	}
}

// BenchmarkSolveSparseVsDense pits the KKT backends against each other on a
// mid-size structured instance — ~6% dense G, like the model matrices the
// builder emits, where skipping structural zeros in Gᵀ W⁻² G is the whole
// point. Sparse is the full pipeline (sparse assembly + simplicial LDLᵀ),
// SparseAssembly isolates the assembly win (sparse refill, dense factor),
// Dense is the all-dense oracle.
func BenchmarkSolveSparseVsDense(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	p := randomProblem(rng, 60, 120, 20, 0.06, true)
	for _, bench := range []struct {
		name string
		opt  Options
	}{
		{"Sparse", Options{}},
		{"SparseAssembly", Options{Factorization: FactorDense}},
		{"Dense", Options{DenseKKT: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Solve(p, bench.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
