package socp

import (
	"sort"

	"repro/internal/linalg"
)

// neFactor is the sparse factorization pipeline of one solve. The symbolic
// work — the AᵀA scatter plan for H = (W⁻¹G)ᵀ(W⁻¹G), the fill-reducing AMD
// ordering, the elimination tree, and the symbolic factorization — is done
// once per problem, because the scaled-G pattern the sparse view fixes makes
// H's pattern iteration-invariant. Each interior-point iteration then only
// refills numeric values and runs the numeric refactorization, dropping the
// per-iteration factor cost from the dense O(n³) to O(nnz(L)·row-width).
type neFactor struct {
	ata  *linalg.SparseAtA // H on its fixed pattern
	chol linalg.SparseLDLT // factor of H (pe == 0) or of the reduced KKT (pe > 0)

	// pe > 0: the quasi-definite reduced KKT matrix [[H+regI, Aᵀ], [A, −regI]]
	// on a fixed pattern. The A blocks are written at construction (and
	// rewritten by setStaticA when a pooled pipeline moves to a new problem);
	// fillKKT refreshes the H block and the regularized diagonal.
	kkt     *linalg.SparseMatrix
	hDst    []int  // kkt.Val position of each H entry
	diag    []int  // kkt.Val position of each diagonal entry, len n+pe
	diagInH []bool // whether diagonal i < n is part of H's pattern
	// aDstU and aDstL are the kkt.Val positions of A entry t in the upper
	// (Aᵀ) and lower (A) block, so setStaticA rewrites without index search.
	aDstU []int
	aDstL []int
	pe    int

	// cacheEntry backlinks a cache-built pipeline to its pattern's pool so
	// PatternCache.release can return it; nil for uncached pipelines.
	cacheEntry *patternEntry
}

// newNEFactor runs the symbolic analysis for the sparse view's fixed
// pattern. a is the problem's equality-constraint matrix in CSR form (nil
// without equalities). A non-nil syms shares the factorization's symbolic
// analysis (ordering, etree, column pattern) across concurrent builds of
// the same pattern; nil analyzes locally. backend must be a resolved
// factorization choice — FactorSparse or FactorSupernodal, never
// FactorAuto — and workers bounds the supernodal worker pool.
func newNEFactor(sv *sparseView, a *linalg.SparseMatrix, syms *linalg.SymbolicCache, backend Factorization, workers int) *neFactor {
	f := &neFactor{ata: linalg.NewSparseAtA(sv.gs)}
	h := f.ata.Result
	if a == nil {
		f.chol = newSparseChol(h, syms, backend, workers)
		return f
	}
	n, pe := h.Rows, a.Rows
	f.pe = pe
	// Fixed pattern of the reduced KKT matrix, with an explicit diagonal
	// everywhere so the ±reg regularization always has a slot.
	atCols := make([][]int, n)
	for e := 0; e < pe; e++ {
		for t := a.RowPtr[e]; t < a.RowPtr[e+1]; t++ {
			j := a.ColIdx[t]
			atCols[j] = append(atCols[j], n+e)
		}
	}
	pattern := make([][]int, n+pe)
	for i := 0; i < n; i++ {
		hrow := h.ColIdx[h.RowPtr[i]:h.RowPtr[i+1]]
		cols := make([]int, 0, len(hrow)+len(atCols[i])+1)
		cols = append(cols, hrow...)
		if h.Index(i, i) < 0 {
			k := sort.SearchInts(cols, i)
			cols = append(cols, 0)
			copy(cols[k+1:], cols[k:])
			cols[k] = i
		}
		cols = append(cols, atCols[i]...) // A-block columns are ≥ n and ascending
		pattern[i] = cols
	}
	for e := 0; e < pe; e++ {
		arow := a.ColIdx[a.RowPtr[e]:a.RowPtr[e+1]]
		cols := make([]int, 0, len(arow)+1)
		cols = append(cols, arow...)
		cols = append(cols, n+e)
		pattern[n+e] = cols
	}
	f.kkt = linalg.NewSparseFromPattern(n+pe, n+pe, pattern)
	// Static A blocks, with the positions recorded for setStaticA.
	f.aDstU = make([]int, a.NNZ())
	f.aDstL = make([]int, a.NNZ())
	for e := 0; e < pe; e++ {
		for t := a.RowPtr[e]; t < a.RowPtr[e+1]; t++ {
			j := a.ColIdx[t]
			f.aDstL[t] = f.kkt.Index(n+e, j)
			f.aDstU[t] = f.kkt.Index(j, n+e)
		}
	}
	f.setStaticA(a)
	// Scatter map for the H block and the diagonal slots.
	f.hDst = make([]int, h.NNZ())
	for i := 0; i < n; i++ {
		for t := h.RowPtr[i]; t < h.RowPtr[i+1]; t++ {
			f.hDst[t] = f.kkt.Index(i, h.ColIdx[t])
		}
	}
	f.diag = make([]int, n+pe)
	for i := 0; i < n+pe; i++ {
		f.diag[i] = f.kkt.Index(i, i)
	}
	f.diagInH = make([]bool, n)
	for i := 0; i < n; i++ {
		f.diagInH[i] = h.Index(i, i) >= 0
	}
	f.chol = newSparseChol(f.kkt, syms, backend, workers)
	return f
}

// newSparseChol builds the numeric factorization workspace for m's pattern
// on the requested backend, sharing the symbolic analysis through syms when
// one is supplied.
func newSparseChol(m *linalg.SparseMatrix, syms *linalg.SymbolicCache, backend Factorization, workers int) linalg.SparseLDLT {
	if backend == FactorSupernodal {
		if syms != nil {
			return syms.AcquireSupernodal(m, workers)
		}
		return linalg.Analyze(m, nil).NewSupernodal(workers)
	}
	if syms != nil {
		return syms.Acquire(m)
	}
	return linalg.NewSparseCholesky(m, nil)
}

// setStaticA rewrites the equality blocks of the reduced KKT matrix with
// the values of a, which must carry the analyzed pattern. No-op without
// equalities.
//
//bbvet:hotpath
func (f *neFactor) setStaticA(a *linalg.SparseMatrix) {
	if f.pe == 0 {
		return
	}
	kv := f.kkt.Val
	av := a.Val
	for t, d := range f.aDstL {
		kv[d] = av[t]
		kv[f.aDstU[t]] = av[t]
	}
}

// fillKKT refreshes the reduced KKT values for the current H and the given
// static regularization: the H block is copied through the scatter map and
// the diagonal becomes H(i,i)+reg on the variable block and −reg on the
// equality block.
//
//bbvet:hotpath
func (f *neFactor) fillKKT(reg float64) {
	hv := f.ata.Result.Val
	kv := f.kkt.Val
	for t, d := range f.hDst {
		kv[d] = hv[t]
	}
	n := f.ata.Result.Rows
	for i := 0; i < n; i++ {
		if !f.diagInH[i] {
			kv[f.diag[i]] = 0
		}
		kv[f.diag[i]] += reg
	}
	for e := 0; e < f.pe; e++ {
		kv[f.diag[n+e]] = -reg
	}
}

// normalEq returns the sparse factorization pipeline of the view, acquiring
// it from the pattern cache (when one is configured) or running the
// symbolic analysis locally on first use. backend must be resolved (never
// FactorAuto); pipelines are cached per (pattern, backend) pair.
//
//bbvet:hotpath
func (sv *sparseView) normalEq(pc *PatternCache, backend Factorization, workers int) *neFactor {
	if sv.ne == nil {
		if pc != nil {
			sv.ne = pc.acquire(sv, backend, workers)
		} else {
			//bbvet:allow hotalloc no cache configured: the pipeline is built once per solve view
			sv.ne = newNEFactor(sv, sv.a, nil, backend, workers)
		}
	}
	return sv.ne
}
