package socp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// Solve minimizes cᵀx subject to Gx + s = h, s ∈ K, Ax = b using an
// infeasible-start Mehrotra predictor-corrector interior-point method with
// Nesterov-Todd scaling.
func Solve(p *Problem, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Dims.Dim() == 0 {
		return nil, errors.New("socp: cone dimension is zero")
	}
	sp, unscale := equilibrate(p)
	s := &state{p: sp, opt: opt.withDefaults()}
	sol, err := s.run()
	unscale(sol)
	return sol, err
}

// state carries the iterates and workspace of one solve.
type state struct {
	p   *Problem
	opt Options

	n, m, pe int // variables, cone dim, equality rows

	x, y  linalg.Vector
	s, z  linalg.Vector
	e     linalg.Vector // cone identity
	bnorm float64
	hnorm float64
	cnorm float64
}

// kktFactor is a factorized KKT system for a fixed NT scaling. It solves
//
//	[ 0   Aᵀ   Gᵀ ] [x]   [bx]
//	[ A   0    0  ] [y] = [by]
//	[ G   0  −W²  ] [z]   [bz]
//
// via the normal equations H = Gᵀ W⁻² G (pe == 0) or an LDLᵀ factorization of
// the reduced KKT matrix [[H, Aᵀ], [A, 0]].
type kktFactor struct {
	st *state
	w  *cone.Scaling // nil means W = I

	gs   *linalg.Matrix // W⁻¹ G
	hmat *linalg.Matrix // Gᵀ W⁻² G (unregularized, for refinement)
	chol *linalg.Cholesky
	kkt  *linalg.Matrix // assembled [[H,Aᵀ],[A,0]] when pe > 0
	ldlt *linalg.LDLT
}

func (st *state) factor(w *cone.Scaling) (*kktFactor, error) {
	f := &kktFactor{st: st, w: w}
	f.gs = st.p.G.Clone()
	if w != nil {
		w.ScaleRows(f.gs)
	}
	f.hmat = linalg.NewMatrix(st.n, st.n)
	f.gs.AtAInto(f.hmat)
	reg := st.opt.KKTReg * (1 + f.hmat.NormInf())
	if st.pe == 0 {
		hreg := f.hmat.Clone()
		for i := 0; i < st.n; i++ {
			hreg.Add(i, i, reg)
		}
		chol, err := linalg.NewCholesky(hreg, reg)
		if err != nil {
			return nil, err
		}
		f.chol = chol
		return f, nil
	}
	// Assemble the quasi-definite reduced KKT matrix.
	nt := st.n + st.pe
	k := linalg.NewMatrix(nt, nt)
	for i := 0; i < st.n; i++ {
		for j := 0; j < st.n; j++ {
			k.Set(i, j, f.hmat.At(i, j))
		}
		k.Add(i, i, reg)
	}
	for i := 0; i < st.pe; i++ {
		for j := 0; j < st.n; j++ {
			v := st.p.A.At(i, j)
			k.Set(st.n+i, j, v)
			k.Set(j, st.n+i, v)
		}
		k.Set(st.n+i, st.n+i, -reg)
	}
	ld, err := linalg.NewLDLT(k, reg)
	if err != nil {
		return nil, err
	}
	f.kkt = k
	f.ldlt = ld
	return f, nil
}

// solve computes (x, y, z) for right-hand sides (bx, by, bz) with full-space
// iterative refinement, which keeps the dual residual accurate even when the
// NT scaling is nearly singular at the end of the solve. Refinement iterates
// until the KKT residual stops improving (at most 4 passes) and returns the
// best iterate seen.
func (f *kktFactor) solve(bx, by, bz linalg.Vector) (dx, dy, dz linalg.Vector) {
	dx, dy, dz = f.solveOnce(bx, by, bz)
	bestX, bestY, bestZ := dx, dy, dz
	bestRes := math.Inf(1)
	for pass := 0; pass < 4; pass++ {
		r1, r2, r3 := f.residual(bx, by, bz, dx, dy, dz)
		res := math.Max(linalg.NormInf(r1), math.Max(linalg.NormInf(r2), linalg.NormInf(r3)))
		if res < bestRes {
			bestRes = res
			bestX, bestY, bestZ = dx.Clone(), dy.Clone(), dz.Clone()
		} else {
			break // refinement stopped converging
		}
		if res == 0 {
			break
		}
		cx, cy, cz := f.solveOnce(r1, r2, r3)
		dx = dx.Clone()
		dy = dy.Clone()
		dz = dz.Clone()
		dx.AddScaled(1, cx)
		dy.AddScaled(1, cy)
		dz.AddScaled(1, cz)
	}
	return bestX, bestY, bestZ
}

// residual computes the residual of the 3x3 block KKT system at (x, y, z).
func (f *kktFactor) residual(bx, by, bz, x, y, z linalg.Vector) (r1, r2, r3 linalg.Vector) {
	st := f.st
	r1 = bx.Clone() // bx − Gᵀz − Aᵀy
	st.p.G.MulVecTAdd(r1, -1, z)
	if st.pe > 0 {
		st.p.A.MulVecTAdd(r1, -1, y)
	}
	r2 = by.Clone() // by − Ax
	if st.pe > 0 {
		st.p.A.MulVecAdd(r2, -1, x)
	}
	r3 = bz.Clone() // bz − (Gx − W²z)
	st.p.G.MulVecAdd(r3, -1, x)
	w2z := z.Clone()
	if f.w != nil {
		f.w.Apply(w2z, w2z)
		f.w.Apply(w2z, w2z)
	}
	linalg.Add(r3, r3, w2z)
	return r1, r2, r3
}

// solveOnce performs the factored solve without refinement.
func (f *kktFactor) solveOnce(bx, by, bz linalg.Vector) (dx, dy, dz linalg.Vector) {
	st := f.st
	// t = W⁻² bz.
	t := bz.Clone()
	if f.w != nil {
		f.w.ApplyInv(t, t)
		f.w.ApplyInv(t, t)
	}
	// rhs = bx + Gᵀ W⁻² bz.
	rhs := bx.Clone()
	st.p.G.MulVecTAdd(rhs, 1, t)
	dx = linalg.NewVector(st.n)
	if st.pe == 0 {
		f.chol.SolveRefined(f.hmat, rhs, dx)
	} else {
		full := linalg.NewVector(st.n + st.pe)
		copy(full[:st.n], rhs)
		copy(full[st.n:], by)
		sol := linalg.NewVector(st.n + st.pe)
		f.ldlt.SolveRefined(f.kkt, full, sol)
		copy(dx, sol[:st.n])
		dy = linalg.NewVector(st.pe)
		copy(dy, sol[st.n:])
	}
	// dz = W⁻² (G dx − bz).
	u := linalg.NewVector(st.m)
	st.p.G.MulVec(u, dx)
	u.AddScaled(-1, bz)
	if f.w != nil {
		f.w.ApplyInv(u, u)
		f.w.ApplyInv(u, u)
	}
	dz = u
	if dy == nil {
		dy = linalg.NewVector(0)
	}
	return dx, dy, dz
}

func (st *state) run() (*Solution, error) {
	p := st.p
	st.n = p.NumVars()
	st.m = p.Dims.Dim()
	if p.A != nil {
		st.pe = p.A.Rows
	}
	st.e = linalg.NewVector(st.m)
	p.Dims.Identity(st.e)
	st.bnorm = linalg.Norm2(p.B)
	st.hnorm = linalg.Norm2(p.H)
	st.cnorm = linalg.Norm2(p.C)

	if err := st.initPoint(); err != nil {
		return st.failed(err)
	}

	nu := float64(p.Dims.Degree())
	sol := &Solution{Status: StatusMaxIterations}
	best := &Solution{Status: StatusMaxIterations}
	bestScore := math.Inf(1)

	for iter := 0; iter <= st.opt.MaxIter; iter++ {
		// Residuals.
		rx := p.C.Clone() // rx = c + Gᵀz + Aᵀy
		p.G.MulVecTAdd(rx, 1, st.z)
		if st.pe > 0 {
			p.A.MulVecTAdd(rx, 1, st.y)
		}
		ry := linalg.NewVector(st.pe) // ry = Ax − b
		if st.pe > 0 {
			p.A.MulVec(ry, st.x)
			ry.AddScaled(-1, p.B)
		}
		rz := linalg.NewVector(st.m) // rz = Gx + s − h
		p.G.MulVec(rz, st.x)
		linalg.Add(rz, rz, st.s)
		rz.AddScaled(-1, p.H)

		pcost := linalg.Dot(p.C, st.x)
		dcost := -linalg.Dot(p.H, st.z) - linalg.Dot(p.B, st.y)
		gap := linalg.Dot(st.s, st.z)
		relgap := gap / math.Max(1, math.Abs(pcost))
		pres := math.Max(linalg.Norm2(ry)/math.Max(1, st.bnorm), linalg.Norm2(rz)/math.Max(1, st.hnorm))
		dres := linalg.Norm2(rx) / math.Max(1, st.cnorm)

		sol.X, sol.S, sol.Z, sol.Y = st.x, st.s, st.z, st.y
		sol.PrimalObj, sol.DualObj = pcost, dcost
		sol.Gap, sol.RelGap, sol.PrimalRes, sol.DualRes = gap, relgap, pres, dres
		sol.Iterations = iter

		if st.opt.Trace {
			fmt.Printf("iter %2d: pcost=%+.6e dcost=%+.6e gap=%.3e pres=%.3e dres=%.3e\n",
				iter, pcost, dcost, gap, pres, dres)
		}

		if pres <= st.opt.FeasTol && dres <= st.opt.FeasTol &&
			(gap <= st.opt.AbsTol || relgap <= st.opt.RelTol) {
			sol.Status = StatusOptimal
			return sol, nil
		}

		// Farkas certificates of infeasibility.
		hzby := linalg.Dot(p.H, st.z) + linalg.Dot(p.B, st.y)
		if hzby < 0 {
			// ‖Gᵀz + Aᵀy‖ relative to the certificate value.
			gz := rx.Clone()
			gz.AddScaled(-1, p.C)
			if linalg.Norm2(gz)/(-hzby) <= st.opt.FeasTol {
				scaleCert(st.z, -1/hzby)
				scaleCert(st.y, -1/hzby)
				sol.Status = StatusPrimalInfeasible
				return sol, nil
			}
		}
		if pcost < 0 {
			gx := linalg.NewVector(st.m)
			p.G.MulVec(gx, st.x)
			linalg.Add(gx, gx, st.s)
			ax := linalg.NewVector(st.pe)
			if st.pe > 0 {
				p.A.MulVec(ax, st.x)
			}
			if math.Max(linalg.Norm2(gx), linalg.Norm2(ax))/(-pcost) <= st.opt.FeasTol {
				scaleCert(st.x, -1/pcost)
				scaleCert(st.s, -1/pcost)
				sol.Status = StatusDualInfeasible
				return sol, nil
			}
		}
		// Track the best iterate seen; near machine precision the iterates
		// can deteriorate after the gap bottoms out, and the best point is
		// then the one to report.
		score := math.Max(math.Max(pres, dres), relgap)
		if score < bestScore {
			bestScore = score
			*best = *sol
			best.X = sol.X.Clone()
			best.S = sol.S.Clone()
			best.Z = sol.Z.Clone()
			best.Y = sol.Y.Clone()
		} else if bestScore < 1e-4 && score > 1e4*bestScore {
			// Endgame breakdown after convergence effectively finished:
			// return the best iterate instead of the deteriorated one.
			*sol = *best
			sol.Status = acceptReduced(best)
			return sol, nil
		}

		if iter == st.opt.MaxIter {
			*sol = *best
			sol.Status = acceptReduced(best)
			return sol, nil
		}

		// NT scaling and KKT factorization.
		w, err := cone.NewScaling(p.Dims, st.s, st.z)
		if err != nil {
			sol.Status = StatusNumericalError
			return sol, nil
		}
		lambda := w.Lambda()
		f, err := st.factor(w)
		if err != nil {
			sol.Status = StatusNumericalError
			return sol, nil
		}

		mu := gap / nu

		// Affine (predictor) direction: dc = −λ∘λ, so u = λ\dc = −λ.
		u := lambda.Clone()
		u.Scale(-1)
		_, _, dza, dsa := st.newton(f, w, rx, ry, rz, u)

		alphaAff := math.Min(1, math.Min(
			p.Dims.StepToBoundary(st.s, dsa),
			p.Dims.StepToBoundary(st.z, dza)))
		gapAff := affGap(st.s, dsa, st.z, dza, alphaAff)
		sigma := math.Pow(math.Max(0, gapAff/gap), 3)
		if sigma > 1 {
			sigma = 1
		}

		// Combined (corrector) direction:
		// dc = σµe − λ∘λ − (W⁻¹ds_a)∘(W dz_a).
		wds := linalg.NewVector(st.m)
		w.ApplyInv(wds, dsa)
		wdz := linalg.NewVector(st.m)
		w.Apply(wdz, dza)
		corr := linalg.NewVector(st.m)
		p.Dims.Product(corr, wds, wdz)
		dc := linalg.NewVector(st.m)
		p.Dims.Product(dc, lambda, lambda)
		dc.Scale(-1)
		dc.AddScaled(-1, corr)
		dc.AddScaled(sigma*mu, st.e)
		p.Dims.Div(u, lambda, dc)
		dx, dy, dz, ds := st.newton(f, w, rx, ry, rz, u)

		alpha := math.Min(1, st.opt.StepFrac*math.Min(
			p.Dims.StepToBoundary(st.s, ds),
			p.Dims.StepToBoundary(st.z, dz)))

		// Take the step, backing off if rounding pushed an iterate onto the
		// boundary.
		for tries := 0; ; tries++ {
			ns := st.s.Clone()
			ns.AddScaled(alpha, ds)
			nz := st.z.Clone()
			nz.AddScaled(alpha, dz)
			if p.Dims.Interior(ns) && p.Dims.Interior(nz) {
				st.s, st.z = ns, nz
				st.x.AddScaled(alpha, dx)
				st.y.AddScaled(alpha, dy)
				break
			}
			if tries >= 30 {
				sol.Status = StatusNumericalError
				return sol, nil
			}
			alpha *= 0.5
		}
	}
	return sol, nil
}

// newton solves one Newton system for the given residuals and scaled
// complementarity term u = λ\dc, returning (dx, dy, dz, ds).
func (st *state) newton(f *kktFactor, w *cone.Scaling, rx, ry, rz, u linalg.Vector) (dx, dy, dz, ds linalg.Vector) {
	bx := rx.Clone()
	bx.Scale(-1)
	by := ry.Clone()
	by.Scale(-1)
	// bz = −rz − W u.
	wu := linalg.NewVector(st.m)
	w.Apply(wu, u)
	bz := rz.Clone()
	bz.Scale(-1)
	bz.AddScaled(-1, wu)
	dx, dy, dz = f.solve(bx, by, bz)
	// ds = W (u − W dz).
	t := linalg.NewVector(st.m)
	w.Apply(t, dz)
	linalg.Sub(t, u, t)
	ds = linalg.NewVector(st.m)
	w.Apply(ds, t)
	return dx, dy, dz, ds
}

// acceptReduced decides the status of a solve that could not reach the full
// tolerances: if the best iterate meets the reduced tolerances (1e-4 on
// feasibility, 5e-5 on the relative gap — the same convention ECOS uses for
// its "close to optimal" acceptance), it is still reported optimal; the
// achieved residuals remain available in the Solution for callers that need
// stricter guarantees.
func acceptReduced(best *Solution) Status {
	const feasInacc, gapInacc = 1e-4, 5e-5
	if best.X != nil && best.PrimalRes <= feasInacc && best.DualRes <= feasInacc &&
		(best.Gap <= gapInacc || best.RelGap <= gapInacc) {
		return StatusOptimal
	}
	return StatusMaxIterations
}

// affGap returns (s+αds)ᵀ(z+αdz).
func affGap(s, ds, z, dz linalg.Vector, alpha float64) float64 {
	var g float64
	for i := range s {
		g += (s[i] + alpha*ds[i]) * (z[i] + alpha*dz[i])
	}
	return g
}

func scaleCert(v linalg.Vector, a float64) {
	for i := range v {
		v[i] *= a
	}
}

// initPoint computes the CVXOPT-style least-squares starting point, shifted
// into the interior of the cone.
func (st *state) initPoint() error {
	p := st.p
	f, err := st.factor(nil) // W = I
	if err != nil {
		return fmt.Errorf("socp: initial factorization failed: %w", err)
	}
	// Primal: minimize ‖Gx − h‖ s.t. Ax = b; s = h − Gx, shifted inward.
	zero := linalg.NewVector(st.n)
	x, _, ztilde := f.solve(zero, p.B, p.H)
	st.x = x
	st.s = ztilde.Clone()
	st.s.Scale(-1) // s = h − Gx = −z̃
	if th := p.Dims.InteriorMargin(st.s); th <= 0 {
		st.s.AddScaled(1-th, st.e)
	}
	// Dual: minimize ‖z‖ s.t. Gᵀz + Aᵀy = −c; shifted inward.
	negc := p.C.Clone()
	negc.Scale(-1)
	_, y, z := f.solve(negc, linalg.NewVector(st.pe), linalg.NewVector(st.m))
	st.y = y
	st.z = z
	if th := p.Dims.InteriorMargin(st.z); th <= 0 {
		st.z.AddScaled(1-th, st.e)
	}
	return nil
}

func (st *state) failed(err error) (*Solution, error) {
	return &Solution{Status: StatusNumericalError}, err
}
