package socp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/cone"
	"repro/internal/faultinject"
	"repro/internal/linalg"
)

// Solve minimizes cᵀx subject to Gx + s = h, s ∈ K, Ax = b using an
// infeasible-start Mehrotra predictor-corrector interior-point method with
// Nesterov-Todd scaling.
func Solve(p *Problem, opt Options) (*Solution, error) {
	return SolveContext(context.Background(), p, opt)
}

// SolveContext is Solve with cancellation: the context is checked once per
// interior-point iteration, and a canceled context or expired deadline makes
// the solve return promptly with StatusCanceled (diagnostics of the last
// iterate filled in, no error). The iterates themselves are unaffected by
// the context — a solve that runs to completion is bit-identical whether or
// not a (non-canceled) context was supplied.
func SolveContext(ctx context.Context, p *Problem, opt Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Dims.Dim() == 0 {
		return nil, errors.New("socp: cone dimension is zero")
	}
	o := opt.withDefaults()
	if o.DenseKKT && p.G == nil {
		return nil, errors.New("socp: DenseKKT needs a dense G, but the problem carries GSparse")
	}
	sp, scales := equilibrate(p, o.Cache)
	s := &state{ctx: ctx, p: sp, opt: o}
	// The warm start arrives in the original coordinates; map it into the
	// equilibrated ones (nil on dimension mismatch or non-finite entries,
	// which silently selects the cold start).
	s.warm = scales.scaleWarm(s.opt.WarmStart, len(p.C))
	sol, err := s.run()
	// Return the borrowed pieces to the pattern cache: the factorization
	// pipeline and the scaled-G workspace. sp (and its sparse view) is
	// per-solve, so nothing references either after this.
	if pc := s.opt.Cache; pc != nil {
		if sp.sv != nil {
			pc.release(sp.sv.ne)
			sp.sv.ne = nil
		}
		if scales.pooledG != nil {
			pc.releaseDense(scales.pooledG)
			sp.G = nil
		}
	}
	scales.unscale(sol)
	return sol, err
}

// state carries the iterates and workspace of one solve.
type state struct {
	ctx context.Context
	p   *Problem
	opt Options

	n, m, pe int // variables, cone dim, equality rows

	// warm is the caller's warm start mapped into the equilibrated
	// coordinates; nil selects the cold least-squares starting point.
	warm *WarmStart
	// warmActive records that the iterate was installed from the warm start
	// without the interior-margin shift: the shift is deferred until the
	// run loop decides it actually has to take a step, so a warm point that
	// already satisfies the stopping tolerances terminates at iteration 0
	// without ever factorizing.
	warmActive bool

	x, y  linalg.Vector
	s, z  linalg.Vector
	e     linalg.Vector // cone identity
	bnorm float64
	hnorm float64
	cnorm float64

	// sv is the sparse view of the (equilibrated) problem's constraint
	// matrices; nil when Options.DenseKKT selects the dense oracle path.
	sv *sparseView
	// factorBackend is the resolved sparse factorization backend
	// (FactorSparse or FactorSupernodal, never FactorAuto); meaningful only
	// when sparseFactor() is true.
	factorBackend Factorization
	ws            workspace
}

// workspace holds every buffer the solver reuses across iterations, so that
// after initWorkspace the hot loop performs no matrix allocations and no
// per-iteration vector allocations.
type workspace struct {
	// KKT assembly and factorization (reused every iteration).
	hmat *linalg.Matrix // Gᵀ W⁻² G (unregularized, for refinement)
	hreg *linalg.Matrix // hmat + reg·I, the factorized matrix (pe == 0)
	chol *linalg.Cholesky
	kkt  *linalg.Matrix // assembled [[H,Aᵀ],[A,0]] (pe > 0)
	ldlt *linalg.LDLT

	// kktFactor.solve: iterative-refinement scratch.
	r1, r2, r3          linalg.Vector // n, pe, m residuals
	w2z                 linalg.Vector // m
	curX, curY, curZ    linalg.Vector // running refined iterate
	bestX, bestY, bestZ linalg.Vector // best iterate seen
	corX, corY, corZ    linalg.Vector // correction step

	// solveOnce scratch.
	t, rhs     linalg.Vector // m, n
	full, fsol linalg.Vector // n+pe (pe > 0)

	// Main-loop scratch.
	rx, ry, rz         linalg.Vector // residuals
	gz, gx, ax         linalg.Vector // Farkas certificate scratch (n, m, pe)
	nbx, nby, nbz, nwu linalg.Vector // newton right-hand sides
	nt, nds            linalg.Vector // newton ds recovery
	uaff               linalg.Vector // m, scaled complementarity term
	wds, wdz, corr, dc linalg.Vector // m, Mehrotra corrector
	ns, nz             linalg.Vector // m, step back-off double buffers
}

// initWorkspace allocates the per-solve buffers once; the iteration loop
// reuses them instead of calling NewMatrix/Clone each pass. With the sparse
// factorization backend the dense factor storage (n² and larger) is never
// allocated: the sparse pipeline owns pattern-sized buffers instead.
func (st *state) initWorkspace() {
	n, m, pe := st.n, st.m, st.pe
	ws := &st.ws
	if !st.opt.DenseKKT {
		st.sv = st.p.sparse()
	}
	if st.sparseFactor() {
		st.factorBackend = ResolveFactorization(st.opt.Factorization, n+pe)
		if pe > 0 {
			ws.full = linalg.NewVector(n + pe)
			ws.fsol = linalg.NewVector(n + pe)
		}
	} else if pe == 0 {
		ws.hmat = linalg.NewMatrix(n, n)
		ws.hreg = linalg.NewMatrix(n, n)
		ws.chol = linalg.NewCholeskyWorkspace(n)
	} else {
		ws.hmat = linalg.NewMatrix(n, n)
		ws.kkt = linalg.NewMatrix(n+pe, n+pe)
		ws.ldlt = linalg.NewLDLTWorkspace(n + pe)
		ws.full = linalg.NewVector(n + pe)
		ws.fsol = linalg.NewVector(n + pe)
	}
	ws.r1 = linalg.NewVector(n)
	ws.r2 = linalg.NewVector(pe)
	ws.r3 = linalg.NewVector(m)
	ws.w2z = linalg.NewVector(m)
	ws.curX, ws.curY, ws.curZ = linalg.NewVector(n), linalg.NewVector(pe), linalg.NewVector(m)
	ws.bestX, ws.bestY, ws.bestZ = linalg.NewVector(n), linalg.NewVector(pe), linalg.NewVector(m)
	ws.corX, ws.corY, ws.corZ = linalg.NewVector(n), linalg.NewVector(pe), linalg.NewVector(m)
	ws.t = linalg.NewVector(m)
	ws.rhs = linalg.NewVector(n)
	ws.rx = linalg.NewVector(n)
	ws.ry = linalg.NewVector(pe)
	ws.rz = linalg.NewVector(m)
	ws.gz = linalg.NewVector(n)
	ws.gx = linalg.NewVector(m)
	ws.ax = linalg.NewVector(pe)
	ws.nbx = linalg.NewVector(n)
	ws.nby = linalg.NewVector(pe)
	ws.nbz = linalg.NewVector(m)
	ws.nwu = linalg.NewVector(m)
	ws.nt = linalg.NewVector(m)
	ws.nds = linalg.NewVector(m)
	ws.uaff = linalg.NewVector(m)
	ws.wds = linalg.NewVector(m)
	ws.wdz = linalg.NewVector(m)
	ws.corr = linalg.NewVector(m)
	ws.dc = linalg.NewVector(m)
	ws.ns = linalg.NewVector(m)
	ws.nz = linalg.NewVector(m)
}

// sparseFactor reports whether the sparse simplicial factorization backend
// is active: sparse assembly must be on (no DenseKKT) and the factorization
// choice must not force the dense factor.
func (st *state) sparseFactor() bool {
	return !st.opt.DenseKKT && st.opt.Factorization != FactorDense
}

// Sparse-aware mat-vec dispatch: the CSR view when the sparse path is
// active, the dense matrices under Options.DenseKKT.

func (st *state) gMulVec(dst, x linalg.Vector) {
	if st.sv != nil {
		st.sv.g.MulVec(dst, x)
	} else {
		st.p.G.MulVec(dst, x)
	}
}

func (st *state) gMulVecAdd(dst linalg.Vector, alpha float64, x linalg.Vector) {
	if st.sv != nil {
		st.sv.g.MulVecAdd(dst, alpha, x)
	} else {
		st.p.G.MulVecAdd(dst, alpha, x)
	}
}

func (st *state) gMulVecTAdd(dst linalg.Vector, alpha float64, x linalg.Vector) {
	if st.sv != nil {
		st.sv.g.MulVecTAdd(dst, alpha, x)
	} else {
		st.p.G.MulVecTAdd(dst, alpha, x)
	}
}

func (st *state) aMulVec(dst, x linalg.Vector) {
	if st.sv != nil && st.sv.a != nil {
		st.sv.a.MulVec(dst, x)
	} else {
		st.p.A.MulVec(dst, x)
	}
}

func (st *state) aMulVecAdd(dst linalg.Vector, alpha float64, x linalg.Vector) {
	if st.sv != nil && st.sv.a != nil {
		st.sv.a.MulVecAdd(dst, alpha, x)
	} else {
		st.p.A.MulVecAdd(dst, alpha, x)
	}
}

func (st *state) aMulVecTAdd(dst linalg.Vector, alpha float64, x linalg.Vector) {
	if st.sv != nil && st.sv.a != nil {
		st.sv.a.MulVecTAdd(dst, alpha, x)
	} else {
		st.p.A.MulVecTAdd(dst, alpha, x)
	}
}

// kktFactor is a factorized KKT system for a fixed NT scaling. It solves
//
//	[ 0   Aᵀ   Gᵀ ] [x]   [bx]
//	[ A   0    0  ] [y] = [by]
//	[ G   0  −W²  ] [z]   [bz]
//
// via the normal equations H = Gᵀ W⁻² G (pe == 0) or an LDLᵀ factorization of
// the reduced KKT matrix [[H, Aᵀ], [A, 0]]. Its storage is owned by the
// state's workspace; only one factor is live at a time.
type kktFactor struct {
	st *state
	w  *cone.Scaling // nil means W = I

	hmat *linalg.Matrix // Gᵀ W⁻² G (unregularized, for refinement)
	chol *linalg.Cholesky
	kkt  *linalg.Matrix // assembled [[H,Aᵀ],[A,0]] when pe > 0
	ldlt *linalg.LDLT

	// Sparse backend: schol is the sparse LDLᵀ (simplicial or supernodal)
	// of hs, which is the sparse H (pe == 0, unregularized — refinement
	// sweeps the shift out) or the sparse reduced KKT matrix (pe > 0).
	// nil on the dense backend.
	schol linalg.SparseLDLT
	hs    *linalg.SparseMatrix
}

func (st *state) factor(w *cone.Scaling) (*kktFactor, error) {
	ws := &st.ws
	f := &kktFactor{st: st, w: w, hmat: ws.hmat}
	if st.opt.DenseKKT {
		// Dense oracle: scale a fresh copy of G and assemble H densely.
		gs := st.p.G.Clone()
		if w != nil {
			w.ScaleRows(gs)
		}
		gs.AtAInto(ws.hmat)
	} else {
		// Sparse fast path: rewrite the values of the fixed W⁻¹G pattern,
		// then either run the fully sparse factorization pipeline or fall
		// back to sparse assembly into the dense factor (FactorDense).
		st.sv.fillScaled(w)
		if st.sparseFactor() {
			return st.factorSparse(f)
		}
		st.sv.gs.AtAInto(ws.hmat)
	}
	reg := st.opt.KKTReg * (1 + ws.hmat.NormInf())
	if st.pe == 0 {
		hreg := ws.hreg
		copy(hreg.Data, ws.hmat.Data)
		for i := 0; i < st.n; i++ {
			hreg.Add(i, i, reg)
		}
		if err := ws.chol.Factorize(hreg, reg); err != nil {
			return nil, err
		}
		f.chol = ws.chol
		return f, nil
	}
	// Assemble the quasi-definite reduced KKT matrix.
	k := ws.kkt
	k.Zero()
	nt := st.n + st.pe
	for i := 0; i < st.n; i++ {
		copy(k.Data[i*nt:i*nt+st.n], ws.hmat.Data[i*st.n:(i+1)*st.n])
		k.Add(i, i, reg)
	}
	for i := 0; i < st.pe; i++ {
		for j := 0; j < st.n; j++ {
			v := st.p.A.At(i, j)
			k.Set(st.n+i, j, v)
			k.Set(j, st.n+i, v)
		}
		k.Set(st.n+i, st.n+i, -reg)
	}
	if err := ws.ldlt.Factorize(k, reg); err != nil {
		return nil, err
	}
	f.kkt = k
	f.ldlt = ws.ldlt
	return f, nil
}

// factorSparse runs the sparse simplicial pipeline: refill H = (W⁻¹G)ᵀ(W⁻¹G)
// on its fixed pattern and refactorize numerically against the symbolic
// structure computed on first use. pe == 0 factorizes H directly with a
// static diagonal shift; pe > 0 factorizes the quasi-definite reduced KKT
// matrix with the ±reg diagonal floor, matching the dense backend's
// regularization semantics.
//
//bbvet:hotpath
func (st *state) factorSparse(f *kktFactor) (*kktFactor, error) {
	ne := st.sv.normalEq(st.opt.Cache, st.factorBackend, st.opt.FactorWorkers)
	ne.ata.Compute(st.sv.gs)
	h := ne.ata.Result
	reg := st.opt.KKTReg * (1 + h.NormInf())
	if st.pe == 0 {
		//bbvet:allow hotalloc both Factorization backends are bbvet:hotpath-checked, only the dispatch is dynamic
		if err := ne.chol.Factorize(h, reg, reg); err != nil {
			return nil, err
		}
		f.schol, f.hs = ne.chol, h
		return f, nil
	}
	ne.fillKKT(reg)
	//bbvet:allow hotalloc both Factorization backends are bbvet:hotpath-checked, only the dispatch is dynamic
	if err := ne.chol.FactorizeQuasiDef(ne.kkt, reg); err != nil {
		return nil, err
	}
	f.schol, f.hs = ne.chol, ne.kkt
	return f, nil
}

// solve computes (x, y, z) for right-hand sides (bx, by, bz) with full-space
// iterative refinement, which keeps the dual residual accurate even when the
// NT scaling is nearly singular at the end of the solve. Refinement iterates
// until the KKT residual stops improving (at most 4 passes) and returns the
// best iterate seen. The returned vectors are workspace-owned and valid only
// until the next solve call; callers that keep them must clone.
func (f *kktFactor) solve(bx, by, bz linalg.Vector) (dx, dy, dz linalg.Vector) {
	ws := &f.st.ws
	cx, cy, cz := ws.curX, ws.curY, ws.curZ
	f.solveOnce(bx, by, bz, cx, cy, cz)
	bestRes := math.Inf(1)
	for pass := 0; pass < 4; pass++ {
		f.residual(bx, by, bz, cx, cy, cz)
		res := math.Max(linalg.NormInf(ws.r1), math.Max(linalg.NormInf(ws.r2), linalg.NormInf(ws.r3)))
		if res < bestRes {
			bestRes = res
			ws.bestX.CopyFrom(cx)
			ws.bestY.CopyFrom(cy)
			ws.bestZ.CopyFrom(cz)
		} else {
			break // refinement stopped converging
		}
		if res == 0 {
			break
		}
		f.solveOnce(ws.r1, ws.r2, ws.r3, ws.corX, ws.corY, ws.corZ)
		cx.AddScaled(1, ws.corX)
		cy.AddScaled(1, ws.corY)
		cz.AddScaled(1, ws.corZ)
	}
	return ws.bestX, ws.bestY, ws.bestZ
}

// residual computes the residual of the 3x3 block KKT system at (x, y, z)
// into the workspace vectors r1, r2, r3.
func (f *kktFactor) residual(bx, by, bz, x, y, z linalg.Vector) {
	st := f.st
	ws := &st.ws
	r1 := ws.r1 // bx − Gᵀz − Aᵀy
	r1.CopyFrom(bx)
	st.gMulVecTAdd(r1, -1, z)
	if st.pe > 0 {
		st.aMulVecTAdd(r1, -1, y)
	}
	r2 := ws.r2 // by − Ax
	r2.CopyFrom(by)
	if st.pe > 0 {
		st.aMulVecAdd(r2, -1, x)
	}
	r3 := ws.r3 // bz − (Gx − W²z)
	r3.CopyFrom(bz)
	st.gMulVecAdd(r3, -1, x)
	w2z := ws.w2z
	w2z.CopyFrom(z)
	if f.w != nil {
		f.w.Apply(w2z, w2z)
		f.w.Apply(w2z, w2z)
	}
	linalg.Add(r3, r3, w2z)
}

// solveOnce performs the factored solve without refinement, writing the
// result into the caller-provided dx, dy, dz buffers.
func (f *kktFactor) solveOnce(bx, by, bz, dx, dy, dz linalg.Vector) {
	st := f.st
	ws := &st.ws
	// t = W⁻² bz.
	t := ws.t
	t.CopyFrom(bz)
	if f.w != nil {
		f.w.ApplyInv(t, t)
		f.w.ApplyInv(t, t)
	}
	// rhs = bx + Gᵀ W⁻² bz.
	rhs := ws.rhs
	rhs.CopyFrom(bx)
	st.gMulVecTAdd(rhs, 1, t)
	if faultinject.Enabled() {
		faultinject.CorruptNaN(faultinject.SiteKKTRHS, rhs)
	}
	if st.pe == 0 {
		if f.schol != nil {
			f.schol.SolveRefined(f.hs, rhs, dx)
		} else {
			f.chol.SolveRefined(f.hmat, rhs, dx)
		}
	} else {
		full := ws.full
		copy(full[:st.n], rhs)
		copy(full[st.n:], by)
		sol := ws.fsol
		if f.schol != nil {
			f.schol.SolveRefined(f.hs, full, sol)
		} else {
			f.ldlt.SolveRefined(f.kkt, full, sol)
		}
		copy(dx, sol[:st.n])
		copy(dy, sol[st.n:])
	}
	// dz = W⁻² (G dx − bz).
	st.gMulVec(dz, dx)
	dz.AddScaled(-1, bz)
	if f.w != nil {
		f.w.ApplyInv(dz, dz)
		f.w.ApplyInv(dz, dz)
	}
}

func (st *state) run() (*Solution, error) {
	p := st.p
	st.n = p.NumVars()
	st.m = p.Dims.Dim()
	if p.A != nil {
		st.pe = p.A.Rows
	}
	st.e = linalg.NewVector(st.m)
	p.Dims.Identity(st.e)
	st.bnorm = linalg.Norm2(p.B)
	st.hnorm = linalg.Norm2(p.H)
	st.cnorm = linalg.Norm2(p.C)
	st.initWorkspace()

	if err := st.initPoint(); err != nil {
		return st.failed(err)
	}

	nu := float64(p.Dims.Degree())
	sol := &Solution{Status: StatusMaxIterations}
	best := &Solution{Status: StatusMaxIterations}
	best.X = linalg.NewVector(st.n)
	best.S = linalg.NewVector(st.m)
	best.Z = linalg.NewVector(st.m)
	best.Y = linalg.NewVector(st.pe)
	bestScore := math.Inf(1)
	ws := &st.ws

	for iter := 0; iter <= st.opt.MaxIter; iter++ {
		// Cancellation is observed once per iteration: deadlines and Ctrl-C
		// surface as a prompt StatusCanceled (never as a misleading
		// StatusMaxIterations), and a completed solve is unaffected.
		if st.ctx != nil && st.ctx.Err() != nil {
			sol.Status = StatusCanceled
			return sol, nil
		}
		if faultinject.Enabled() {
			if ferr := faultinject.Hit(faultinject.SiteIPMIteration); ferr != nil {
				sol.Status = StatusNumericalError
				return sol, nil
			}
		}
		// Residuals.
		rx := ws.rx // rx = c + Gᵀz + Aᵀy
		rx.CopyFrom(p.C)
		st.gMulVecTAdd(rx, 1, st.z)
		if st.pe > 0 {
			st.aMulVecTAdd(rx, 1, st.y)
		}
		ry := ws.ry // ry = Ax − b
		if st.pe > 0 {
			st.aMulVec(ry, st.x)
			ry.AddScaled(-1, p.B)
		}
		rz := ws.rz // rz = Gx + s − h
		st.gMulVec(rz, st.x)
		linalg.Add(rz, rz, st.s)
		rz.AddScaled(-1, p.H)

		pcost := linalg.Dot(p.C, st.x)
		dcost := -linalg.Dot(p.H, st.z) - linalg.Dot(p.B, st.y)
		gap := linalg.Dot(st.s, st.z)
		relgap := gap / math.Max(1, math.Abs(pcost))
		pres := math.Max(linalg.Norm2(ry)/math.Max(1, st.bnorm), linalg.Norm2(rz)/math.Max(1, st.hnorm))
		dres := linalg.Norm2(rx) / math.Max(1, st.cnorm)

		sol.X, sol.S, sol.Z, sol.Y = st.x, st.s, st.z, st.y
		sol.PrimalObj, sol.DualObj = pcost, dcost
		sol.Gap, sol.RelGap, sol.PrimalRes, sol.DualRes = gap, relgap, pres, dres
		sol.Iterations = iter

		if st.opt.Trace {
			fmt.Fprintf(st.opt.TraceOut, "iter %2d: pcost=%+.6e dcost=%+.6e gap=%.3e pres=%.3e dres=%.3e\n",
				iter, pcost, dcost, gap, pres, dres)
		}

		if pres <= st.opt.FeasTol && dres <= st.opt.FeasTol &&
			(gap <= st.opt.AbsTol || relgap <= st.opt.RelTol) {
			sol.Status = StatusOptimal
			return sol, nil
		}

		// Farkas certificates of infeasibility.
		hzby := linalg.Dot(p.H, st.z) + linalg.Dot(p.B, st.y)
		if hzby < 0 {
			// ‖Gᵀz + Aᵀy‖ relative to the certificate value.
			gz := ws.gz
			gz.CopyFrom(rx)
			gz.AddScaled(-1, p.C)
			if linalg.Norm2(gz)/(-hzby) <= st.opt.FeasTol {
				scaleCert(st.z, -1/hzby)
				scaleCert(st.y, -1/hzby)
				sol.Status = StatusPrimalInfeasible
				return sol, nil
			}
		}
		if pcost < 0 {
			gx := ws.gx
			st.gMulVec(gx, st.x)
			linalg.Add(gx, gx, st.s)
			ax := ws.ax
			if st.pe > 0 {
				st.aMulVec(ax, st.x)
			}
			if math.Max(linalg.Norm2(gx), linalg.Norm2(ax))/(-pcost) <= st.opt.FeasTol {
				scaleCert(st.x, -1/pcost)
				scaleCert(st.s, -1/pcost)
				sol.Status = StatusDualInfeasible
				return sol, nil
			}
		}
		// Track the best iterate seen; near machine precision the iterates
		// can deteriorate after the gap bottoms out, and the best point is
		// then the one to report.
		score := math.Max(math.Max(pres, dres), relgap)
		if score < bestScore {
			bestScore = score
			bX, bS, bZ, bY := best.X, best.S, best.Z, best.Y
			*best = *sol
			best.X, best.S, best.Z, best.Y = bX, bS, bZ, bY
			best.X.CopyFrom(sol.X)
			best.S.CopyFrom(sol.S)
			best.Z.CopyFrom(sol.Z)
			best.Y.CopyFrom(sol.Y)
		} else if bestScore < 1e-4 && score > 1e4*bestScore {
			// Endgame breakdown after convergence effectively finished:
			// return the best iterate instead of the deteriorated one.
			*sol = *best
			sol.Status = acceptReduced(best)
			return sol, nil
		}

		if iter == st.opt.MaxIter {
			*sol = *best
			sol.Status = acceptReduced(best)
			return sol, nil
		}

		// An unshifted warm point got its free convergence check above; past
		// it, shift s and z to the interior-margin floor before the first NT
		// scaling, which is singular on the cone boundary a converged
		// neighbor iterate sits on. The shift moves s and z, so the
		// residuals and gap that feed the step are recomputed.
		if st.warmActive && iter == 0 {
			st.shiftWarm(st.s)
			st.shiftWarm(st.z)
			rx.CopyFrom(p.C)
			st.gMulVecTAdd(rx, 1, st.z)
			if st.pe > 0 {
				st.aMulVecTAdd(rx, 1, st.y)
			}
			st.gMulVec(rz, st.x)
			linalg.Add(rz, rz, st.s)
			rz.AddScaled(-1, p.H)
			gap = linalg.Dot(st.s, st.z)
		}

		// NT scaling and KKT factorization.
		w, err := cone.NewScaling(p.Dims, st.s, st.z)
		if err != nil {
			sol.Status = StatusNumericalError
			return sol, nil
		}
		lambda := w.Lambda()
		f, err := st.factor(w)
		if err != nil {
			sol.Status = StatusNumericalError
			return sol, nil
		}

		mu := gap / nu

		// Affine (predictor) direction: dc = −λ∘λ, so u = λ\dc = −λ.
		u := ws.uaff
		u.CopyFrom(lambda)
		u.Scale(-1)
		_, _, dza, dsa := st.newton(f, w, rx, ry, rz, u)

		alphaAff := math.Min(1, math.Min(
			p.Dims.StepToBoundary(st.s, dsa),
			p.Dims.StepToBoundary(st.z, dza)))
		gapAff := affGap(st.s, dsa, st.z, dza, alphaAff)
		sigma := math.Pow(math.Max(0, gapAff/gap), 3)
		if sigma > 1 {
			sigma = 1
		}

		// Combined (corrector) direction:
		// dc = σµe − λ∘λ − (W⁻¹ds_a)∘(W dz_a).
		wds := ws.wds
		w.ApplyInv(wds, dsa)
		wdz := ws.wdz
		w.Apply(wdz, dza)
		corr := ws.corr
		p.Dims.Product(corr, wds, wdz)
		dc := ws.dc
		p.Dims.Product(dc, lambda, lambda)
		dc.Scale(-1)
		dc.AddScaled(-1, corr)
		dc.AddScaled(sigma*mu, st.e)
		p.Dims.Div(u, lambda, dc)
		dx, dy, dz, ds := st.newton(f, w, rx, ry, rz, u)

		alpha := math.Min(1, st.opt.StepFrac*math.Min(
			p.Dims.StepToBoundary(st.s, ds),
			p.Dims.StepToBoundary(st.z, dz)))

		// Take the step, backing off if rounding pushed an iterate onto the
		// boundary. ns/nz double-buffer against st.s/st.z: on acceptance the
		// slices swap roles, so each try rebuilds the candidate from the
		// untouched current iterate.
		ns, nz := ws.ns, ws.nz
		for tries := 0; ; tries++ {
			ns.CopyFrom(st.s)
			ns.AddScaled(alpha, ds)
			nz.CopyFrom(st.z)
			nz.AddScaled(alpha, dz)
			if p.Dims.Interior(ns) && p.Dims.Interior(nz) {
				ws.ns, ws.nz = st.s, st.z
				st.s, st.z = ns, nz
				st.x.AddScaled(alpha, dx)
				st.y.AddScaled(alpha, dy)
				break
			}
			if tries >= 30 {
				sol.Status = StatusNumericalError
				return sol, nil
			}
			alpha *= 0.5
		}
	}
	return sol, nil
}

// newton solves one Newton system for the given residuals and scaled
// complementarity term u = λ\dc, returning (dx, dy, dz, ds). The returned
// vectors are workspace-owned; they stay valid until the next newton or
// kktFactor.solve call.
func (st *state) newton(f *kktFactor, w *cone.Scaling, rx, ry, rz, u linalg.Vector) (dx, dy, dz, ds linalg.Vector) {
	ws := &st.ws
	bx := ws.nbx
	bx.CopyFrom(rx)
	bx.Scale(-1)
	by := ws.nby
	by.CopyFrom(ry)
	by.Scale(-1)
	// bz = −rz − W u.
	wu := ws.nwu
	w.Apply(wu, u)
	bz := ws.nbz
	bz.CopyFrom(rz)
	bz.Scale(-1)
	bz.AddScaled(-1, wu)
	dx, dy, dz = f.solve(bx, by, bz)
	// ds = W (u − W dz).
	t := ws.nt
	w.Apply(t, dz)
	linalg.Sub(t, u, t)
	ds = ws.nds
	w.Apply(ds, t)
	return dx, dy, dz, ds
}

// acceptReduced decides the status of a solve that could not reach the full
// tolerances: if the best iterate meets the reduced tolerances (1e-4 on
// feasibility, 5e-5 on the relative gap — the same convention ECOS uses for
// its "close to optimal" acceptance), it is still reported optimal; the
// achieved residuals remain available in the Solution for callers that need
// stricter guarantees.
func acceptReduced(best *Solution) Status {
	const feasInacc, gapInacc = 1e-4, 5e-5
	if best.X != nil && best.PrimalRes <= feasInacc && best.DualRes <= feasInacc &&
		(best.Gap <= gapInacc || best.RelGap <= gapInacc) {
		return StatusOptimal
	}
	return StatusMaxIterations
}

// affGap returns (s+αds)ᵀ(z+αdz).
func affGap(s, ds, z, dz linalg.Vector, alpha float64) float64 {
	var g float64
	for i := range s {
		g += (s[i] + alpha*ds[i]) * (z[i] + alpha*dz[i])
	}
	return g
}

func scaleCert(v linalg.Vector, a float64) {
	for i := range v {
		v[i] *= a
	}
}

// warmMarginFrac is the relative interior-margin floor warm iterates are
// shifted to. A converged neighbor's s and z sit essentially on the cone
// boundary, where the NT scaling is singular; shifting along the cone
// identity to a small but safe margin (Mehrotra-style centering of the
// initial point) keeps the first scaling well conditioned while staying
// close enough to the neighbor's solution that the predictor-corrector
// needs only a handful of iterations to re-converge.
const warmMarginFrac = 1e-3

// initPoint installs the caller's warm start when one is usable, otherwise
// computes the CVXOPT-style least-squares starting point, shifted into the
// interior of the cone.
func (st *state) initPoint() error {
	if st.warmPoint() {
		return nil
	}
	return st.coldPoint()
}

// warmPoint moves the scaled warm start into the iterate slots. The primal
// slack is recomputed against this problem's h (s = h − Gx) whenever the
// result stays strictly interior, so a sweep step that only moved a bound
// starts with a zero primal residual. When the raw pair (s, z) is strictly
// interior it is installed unshifted and warmActive is set: the run loop
// gives it one free convergence check and only shifts to the margin floor
// if it actually has to iterate. Otherwise the pair is shifted here, and a
// pair that still fails the interior check (e.g. non-finite) reports false,
// leaving the cold start to run.
func (st *state) warmPoint() bool {
	w := st.warm
	if w == nil {
		return false
	}
	s := linalg.NewVector(st.m)
	st.gMulVec(s, w.X)
	s.Scale(-1)
	linalg.Add(s, s, st.p.H)
	if st.p.Dims.Interior(s) {
		w.S = s
	}
	if st.p.Dims.Interior(w.S) && st.p.Dims.Interior(w.Z) {
		st.x, st.y, st.s, st.z = w.X, w.Y, w.S, w.Z
		st.warmActive = true
		return true
	}
	st.shiftWarm(w.S)
	st.shiftWarm(w.Z)
	if !st.p.Dims.Interior(w.S) || !st.p.Dims.Interior(w.Z) {
		return false
	}
	st.x, st.y, st.s, st.z = w.X, w.Y, w.S, w.Z
	return true
}

// shiftWarm raises v's interior margin to the warm floor by moving along
// the cone identity, scaled to the iterate's own magnitude.
func (st *state) shiftWarm(v linalg.Vector) {
	floor := warmMarginFrac * (1 + linalg.NormInf(v))
	if th := st.p.Dims.InteriorMargin(v); th < floor {
		v.AddScaled(floor-th, st.e)
	}
}

// coldPoint computes the CVXOPT-style least-squares starting point, shifted
// into the interior of the cone.
func (st *state) coldPoint() error {
	p := st.p
	f, err := st.factor(nil) // W = I
	if err != nil {
		return fmt.Errorf("socp: initial factorization failed: %w", err)
	}
	// Primal: minimize ‖Gx − h‖ s.t. Ax = b; s = h − Gx, shifted inward.
	zero := linalg.NewVector(st.n)
	x, _, ztilde := f.solve(zero, p.B, p.H)
	st.x = x.Clone() // the solve results are workspace-backed
	st.s = ztilde.Clone()
	st.s.Scale(-1) // s = h − Gx = −z̃
	if th := p.Dims.InteriorMargin(st.s); th <= 0 {
		st.s.AddScaled(1-th, st.e)
	}
	// Dual: minimize ‖z‖ s.t. Gᵀz + Aᵀy = −c; shifted inward.
	negc := p.C.Clone()
	negc.Scale(-1)
	_, y, z := f.solve(negc, linalg.NewVector(st.pe), linalg.NewVector(st.m))
	st.y = y.Clone()
	st.z = z.Clone()
	if th := p.Dims.InteriorMargin(st.z); th <= 0 {
		st.z.AddScaled(1-th, st.e)
	}
	return nil
}

func (st *state) failed(err error) (*Solution, error) {
	return &Solution{Status: StatusNumericalError}, err
}
