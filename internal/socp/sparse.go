package socp

import (
	"sort"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// sparseView caches the iteration-invariant sparse structure of a problem's
// constraint matrices: CSR forms of G and A for the mat-vecs of the main
// loop, and a value template gs for the NT-scaled matrix W⁻¹G. The symbolic
// pattern of gs is fixed across all IPM iterations of a solve — only the
// scaling W changes — so the normal-equations assembly H = (W⁻¹G)ᵀ(W⁻¹G)
// reuses it every iteration and touches structural nonzeros only:
//
//   - orthant rows of W⁻¹G keep G's row pattern (W is diagonal there);
//   - the rows of each second-order-cone block share the union of the
//     block's row patterns, because the block scaling P(v⁻¹) mixes rows only
//     within the block.
//
// SRDF-derived constraint rows touch 2–3 variables each, so per-iteration
// factor setup drops from the dense O(m·n²) to O(nnz·rowwidth).
type sparseView struct {
	g  *linalg.SparseMatrix // exact pattern of G
	a  *linalg.SparseMatrix // exact pattern of A, nil without equalities
	gs *linalg.SparseMatrix // W⁻¹G template; values rewritten by fillScaled

	dims cone.Dims
	socs []socBlockView

	colBuf, outBuf linalg.Vector // gather/scatter scratch, len = max block size

	// ne is the sparse factorization pipeline (normal equations or reduced
	// KKT), built lazily on the first sparse-backend factor call because its
	// symbolic analysis only depends on the fixed gs pattern.
	ne *neFactor
}

// socBlockView is the fixed structural data of one SOC block of G.
type socBlockView struct {
	off  int   // first row of the block in G
	q    int   // block size
	cols []int // sorted union of the block rows' column patterns
	// gv is the q×len(cols) row-major dense copy of G's block entries:
	// gv[r*len(cols)+k] = G[off+r][cols[k]].
	gv []float64
}

// newSparseView builds the sparse structure for a validated problem. A
// problem carrying GSparse uses the caller's CSR matrix directly; a dense G
// is converted. Both give the same pattern and values, so the views solve
// identically.
func newSparseView(p *Problem) *sparseView {
	sv := &sparseView{dims: p.Dims}
	if p.GSparse != nil {
		sv.g = p.GSparse
	} else {
		sv.g = linalg.NewSparseFromDense(p.G)
	}
	if p.A != nil {
		sv.a = linalg.NewSparseFromDense(p.A)
	}
	n := sv.g.Cols
	pattern := make([][]int, sv.g.Rows)
	for i := 0; i < p.Dims.NonNeg; i++ {
		lo, hi := sv.g.RowPtr[i], sv.g.RowPtr[i+1]
		//bbvet:allow csralias transient pattern view; NewSparseFromPattern copies it below
		pattern[i] = sv.g.ColIdx[lo:hi]
	}
	off := p.Dims.NonNeg
	maxQ := 0
	for _, q := range p.Dims.SOC {
		if q > maxQ {
			maxQ = q
		}
		// Union of the block rows' patterns.
		seen := map[int]bool{}
		for r := off; r < off+q; r++ {
			for k := sv.g.RowPtr[r]; k < sv.g.RowPtr[r+1]; k++ {
				seen[sv.g.ColIdx[k]] = true
			}
		}
		cols := make([]int, 0, len(seen))
		for j := range seen {
			cols = append(cols, j)
		}
		sort.Ints(cols)
		blk := socBlockView{off: off, q: q, cols: cols, gv: make([]float64, q*len(cols))}
		for r := 0; r < q; r++ {
			for k, j := range cols {
				blk.gv[r*len(cols)+k] = sv.g.At(off+r, j)
			}
		}
		sv.socs = append(sv.socs, blk)
		for r := off; r < off+q; r++ {
			pattern[r] = cols
		}
		off += q
	}
	sv.gs = linalg.NewSparseFromPattern(sv.g.Rows, n, pattern)
	sv.colBuf = linalg.NewVector(maxQ)
	sv.outBuf = linalg.NewVector(maxQ)
	return sv
}

// fillScaled overwrites the values of gs with W⁻¹G for the given NT scaling
// (W = I when w is nil). The symbolic pattern never changes.
//
//bbvet:hotpath
func (sv *sparseView) fillScaled(w *cone.Scaling) {
	// Orthant rows: gs shares g's pattern there, so the value ranges line up
	// slot for slot.
	for i := 0; i < sv.dims.NonNeg; i++ {
		inv := 1.0
		if w != nil {
			inv = w.OrthantInv(i)
		}
		lo, hi := sv.g.RowPtr[i], sv.g.RowPtr[i+1]
		dst := sv.gs.Val[sv.gs.RowPtr[i]:sv.gs.RowPtr[i+1]]
		for k := lo; k < hi; k++ {
			dst[k-lo] = inv * sv.g.Val[k]
		}
	}
	// SOC blocks: apply P(v⁻¹) column by column over the union pattern.
	for bi := range sv.socs {
		blk := &sv.socs[bi]
		nc := len(blk.cols)
		col := sv.colBuf[:blk.q]
		out := sv.outBuf[:blk.q]
		for k := 0; k < nc; k++ {
			for r := 0; r < blk.q; r++ {
				col[r] = blk.gv[r*nc+k]
			}
			if w != nil {
				w.ApplyInvSOC(bi, out, col)
			} else {
				copy(out, col)
			}
			for r := 0; r < blk.q; r++ {
				sv.gs.Val[sv.gs.RowPtr[blk.off+r]+k] = out[r]
			}
		}
	}
}
