package socp

import (
	"bytes"
	"strings"
	"testing"
)

// TestTraceGoesToInjectedWriter: trace output follows Options.TraceOut, so
// parallel sweeps can hand every solve its own writer instead of interleaving
// on the process's stdout.
func TestTraceGoesToInjectedWriter(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, 1)
	b.AddNonNeg(Expr(-3).Plus(1, x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sol, err := Solve(p, Options{Trace: true, TraceOut: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	out := buf.String()
	if !strings.Contains(out, "iter") {
		t.Fatalf("trace output %q lacks the iteration header", out)
	}
	if lines := strings.Count(out, "\n"); lines < sol.Iterations {
		t.Fatalf("trace has %d lines for %d iterations", lines, sol.Iterations)
	}
}
