package socp

import (
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
)

// PatternCache shares the per-solve symbolic work of the sparse KKT
// pipeline across solves whose constraint matrices carry the same sparsity
// pattern. A sweep solves the same topology dozens of times — only bounds,
// weights, and the NT scaling values change — so the pattern-dependent
// setup (the AᵀA scatter plan for H = (W⁻¹G)ᵀ(W⁻¹G), the fill-reducing AMD
// ordering, the elimination tree, the symbolic factorization, and the
// reduced-KKT scatter maps) is identical at every point. The cache pools
// the whole assembled pipeline (neFactor) per pattern:
//
//   - a pool hit skips every symbolic step and goes straight to numeric
//     refactorization, allocation-free;
//   - a pool miss still shares the factorization's symbolic analysis
//     through an embedded linalg.SymbolicCache, so concurrent first solves
//     of one pattern analyze it once.
//
// Pooled pipelines carry no values from previous solves into new results:
// every numeric buffer a solve reads is fully rewritten before use (AᵀA
// values, KKT values, factor columns), and the equality block is rewritten
// from the acquiring problem on every hit. Solves through a cache are
// bit-identical to solves without one.
//
// Keys are canonical hashes of the scaled-G and A patterns, verified
// entry-for-entry on every lookup, so hash collisions degrade to a miss
// rather than a wrong reuse. The zero value is not usable; call
// NewPatternCache. All methods are safe for concurrent use.
type PatternCache struct {
	syms *linalg.SymbolicCache

	mu      sync.Mutex
	entries map[uint64][]*patternEntry

	// dense pools the equilibration workspace (the scaled copy of the dense
	// G) by matrix dimensions, so cached sweep solves skip the largest
	// per-solve allocation. The workspace is fully overwritten before use,
	// so pooling cannot change results.
	denseMu sync.Mutex
	dense   map[[2]int]*sync.Pool

	hits   atomic.Int64
	misses atomic.Int64
}

// patternEntry pools the factorization pipelines of one (G-pattern,
// A-pattern, backend) triple. The pattern copies rule out hash collisions;
// the backend is part of the identity because a pooled pipeline's numeric
// workspace is built for one factorization layout — a simplicial pipeline
// must never be handed to a solve that asked for the supernodal backend.
type patternEntry struct {
	gsRows, gsCols int
	gsRowPtr       []int
	gsColIdx       []int
	hasA           bool
	aRows, aCols   int
	aRowPtr        []int
	aColIdx        []int
	backend        Factorization

	pool sync.Pool // of *neFactor
}

// NewPatternCache returns an empty cache.
func NewPatternCache() *PatternCache {
	return &PatternCache{
		syms:    linalg.NewSymbolicCache(),
		entries: map[uint64][]*patternEntry{},
		dense:   map[[2]int]*sync.Pool{},
	}
}

// acquireDense returns a rows×cols dense workspace matrix with unspecified
// contents — the caller overwrites every entry. Pooled by dimensions.
//
//bbvet:hotpath
func (pc *PatternCache) acquireDense(rows, cols int) *linalg.Matrix {
	pc.denseMu.Lock()
	p := pc.dense[[2]int{rows, cols}]
	if p == nil {
		//bbvet:allow hotalloc first acquire of a dimension only, measured cold
		p = &sync.Pool{}
		pc.dense[[2]int{rows, cols}] = p
	}
	pc.denseMu.Unlock()
	if m, ok := p.Get().(*linalg.Matrix); ok {
		return m
	}
	//bbvet:allow hotalloc pool empty: first workspace of this dimension, measured cold
	return linalg.NewMatrix(rows, cols)
}

// releaseDense returns a workspace obtained from acquireDense. The caller
// must not use m afterwards.
//
//bbvet:hotpath
func (pc *PatternCache) releaseDense(m *linalg.Matrix) {
	if m == nil {
		return
	}
	pc.denseMu.Lock()
	p := pc.dense[[2]int{m.Rows, m.Cols}]
	pc.denseMu.Unlock()
	if p != nil {
		//bbvet:allow hotalloc pointer stored in interface directly, no allocation; AllocsPerRun guards pin it
		p.Put(m)
	}
}

// Stats reports the cache's lifetime pool hits (symbolic and numeric work
// skipped entirely) and misses (pipeline built, with at most the
// factorization's symbolic analysis shared).
func (pc *PatternCache) Stats() (hits, misses int64) {
	return pc.hits.Load(), pc.misses.Load()
}

// key combines the canonical pattern hashes of the scaled-G template and
// the equality matrix (a fixed sentinel when there is none) with the
// resolved factorization backend.
func key(gs, a *linalg.SparseMatrix, backend Factorization) uint64 {
	const prime64 = 1099511628211
	h := linalg.PatternHash(gs)
	if a != nil {
		h = (h ^ linalg.PatternHash(a)) * prime64
	}
	return (h ^ uint64(backend)) * prime64
}

// matches reports whether the entry serves exactly this pattern pair on
// this backend.
//
//bbvet:hotpath
func (e *patternEntry) matches(gs, a *linalg.SparseMatrix, backend Factorization) bool {
	if e.backend != backend {
		return false
	}
	if a == nil != !e.hasA {
		return false
	}
	if !patternEqual(e.gsRows, e.gsCols, e.gsRowPtr, e.gsColIdx, gs) {
		return false
	}
	return a == nil || patternEqual(e.aRows, e.aCols, e.aRowPtr, e.aColIdx, a)
}

//bbvet:hotpath
func patternEqual(rows, cols int, rowPtr, colIdx []int, m *linalg.SparseMatrix) bool {
	if m.Rows != rows || m.Cols != cols || len(m.ColIdx) != len(colIdx) {
		return false
	}
	for i, p := range m.RowPtr {
		if rowPtr[i] != p {
			return false
		}
	}
	for i, c := range m.ColIdx {
		if colIdx[i] != c {
			return false
		}
	}
	return true
}

// acquire returns a factorization pipeline for the view's pattern pair on
// the resolved backend: a pooled one when available (equality block
// rewritten for this problem, supernodal worker bound refreshed), otherwise
// a freshly built one registered under the pattern. The caller owns the
// pipeline until release.
//
//bbvet:hotpath
func (pc *PatternCache) acquire(sv *sparseView, backend Factorization, workers int) *neFactor {
	e := pc.entry(sv.gs, sv.a, backend)
	if f, ok := e.pool.Get().(*neFactor); ok {
		pc.hits.Add(1)
		// The equality block of the pooled KKT matrix holds the previous
		// problem's A values; rewrite it from this one.
		f.setStaticA(sv.a)
		// The worker bound is a per-solve setting, not part of the pooled
		// identity; refresh it (scheduling only — results never change).
		if sc, ok := f.chol.(*linalg.SupernodalCholesky); ok {
			//bbvet:allow hotalloc grows per-worker scratch only when the bound rises, steady state is a no-op
			sc.SetParallelism(workers)
		}
		return f
	}
	pc.misses.Add(1)
	//bbvet:allow hotalloc cache miss: the pipeline is built once per pattern and backend pair
	f := newNEFactor(sv, sv.a, pc.syms, backend, workers)
	f.cacheEntry = e
	return f
}

// entry finds or creates the pool entry of a pattern pair and backend.
//
//bbvet:hotpath
func (pc *PatternCache) entry(gs, a *linalg.SparseMatrix, backend Factorization) *patternEntry {
	h := key(gs, a, backend)
	pc.mu.Lock()
	for _, e := range pc.entries[h] {
		if e.matches(gs, a, backend) {
			pc.mu.Unlock()
			return e
		}
	}
	pc.mu.Unlock()
	//bbvet:allow hotalloc first sighting of this pattern pair, measured cold
	return pc.insert(h, gs, a, backend)
}

// insert registers a new pattern pair, copying the patterns for collision
// verification; a concurrent insert of the same pair wins the race cleanly.
func (pc *PatternCache) insert(h uint64, gs, a *linalg.SparseMatrix, backend Factorization) *patternEntry {
	e := &patternEntry{
		gsRows: gs.Rows, gsCols: gs.Cols,
		gsRowPtr: append([]int(nil), gs.RowPtr...),
		gsColIdx: append([]int(nil), gs.ColIdx...),
		backend:  backend,
	}
	if a != nil {
		e.hasA = true
		e.aRows, e.aCols = a.Rows, a.Cols
		e.aRowPtr = append([]int(nil), a.RowPtr...)
		e.aColIdx = append([]int(nil), a.ColIdx...)
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, prev := range pc.entries[h] {
		if prev.matches(gs, a, backend) {
			return prev
		}
	}
	pc.entries[h] = append(pc.entries[h], e)
	return e
}

// release returns a pipeline acquired from this cache to its pattern's
// pool. Pipelines built outside any cache (cacheEntry == nil) are ignored.
// The caller must not use f after releasing it.
//
//bbvet:hotpath
func (pc *PatternCache) release(f *neFactor) {
	if f == nil || f.cacheEntry == nil {
		return
	}
	//bbvet:allow hotalloc pointer stored in interface directly, no allocation; AllocsPerRun guards pin it
	f.cacheEntry.pool.Put(f)
}
