package socp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// interiorPoint fills v with a strictly interior point of dims.
func interiorPoint(rng *rand.Rand, dims cone.Dims, v linalg.Vector) {
	for i := 0; i < dims.NonNeg; i++ {
		v[i] = 0.1 + rng.Float64()
	}
	off := dims.NonNeg
	for _, q := range dims.SOC {
		var tail float64
		for i := 1; i < q; i++ {
			v[off+i] = rng.NormFloat64()
			tail += v[off+i] * v[off+i]
		}
		v[off] = math.Sqrt(tail) + 0.1 + rng.Float64()
		off += q
	}
}

// TestPerIterationRefactorizationAllocFree pins the zero-alloc guarantee of
// the sparse per-iteration pipeline end to end: NT rescale of the fixed
// W⁻¹G pattern, AᵀA refill, and numeric refactorization — for both the
// pe == 0 normal-equations path and the quasi-definite reduced-KKT path —
// allocate nothing after the first iteration's symbolic analysis. This is
// the dynamic check backing the //bbvet:hotpath annotations that the
// hotalloc analyzer enforces statically.
// TestPatternCacheReacquireAllocFree pins the steady state of the pattern
// cache: once a pipeline for a pattern has been built and released, the
// acquire → rewrite equality block → refactorize → release cycle a cached
// sweep solve performs is allocation-free. (The first acquire of a pattern
// pays the build; every later one must not.)
func TestPatternCacheReacquireAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items at random; steady state is not alloc-free under -race")
	}
	rng := rand.New(rand.NewSource(12))
	for _, eq := range []bool{false, true} {
		for _, backend := range []Factorization{FactorSparse, FactorSupernodal} {
			p := randomProblem(rng, 14, 10, 2, 0.3, eq)
			sv := p.sparse()
			pc := NewPatternCache()
			m := p.Dims.Dim()
			s, z := linalg.NewVector(m), linalg.NewVector(m)
			interiorPoint(rng, p.Dims, s)
			interiorPoint(rng, p.Dims, z)
			w, err := cone.NewScaling(p.Dims, s, z)
			if err != nil {
				t.Fatal(err)
			}
			const reg = 1e-10
			cycle := func() error {
				ne := pc.acquire(sv, backend, 1)
				defer pc.release(ne)
				sv.fillScaled(w)
				ne.ata.Compute(sv.gs)
				if ne.pe == 0 {
					return ne.chol.Factorize(ne.ata.Result, reg, reg)
				}
				ne.fillKKT(reg)
				return ne.chol.FactorizeQuasiDef(ne.kkt, reg)
			}
			if err := cycle(); err != nil { // build + register the pattern
				t.Fatal(err)
			}
			var ferr error
			allocs := testing.AllocsPerRun(20, func() {
				if err := cycle(); err != nil {
					ferr = err
				}
			})
			if ferr != nil {
				t.Fatal(ferr)
			}
			if allocs != 0 {
				t.Fatalf("eq=%v backend=%v: cached reacquire cycle allocated %.1f times per run, want 0", eq, backend, allocs)
			}
			if hits, misses := pc.Stats(); hits < 20 || misses != 1 {
				t.Fatalf("eq=%v backend=%v: stats hits=%d misses=%d", eq, backend, hits, misses)
			}
		}
	}
}

func TestPerIterationRefactorizationAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, eq := range []bool{false, true} {
		p := randomProblem(rng, 14, 10, 2, 0.3, eq)
		sv := p.sparse()
		ne := sv.normalEq(nil, FactorSparse, 1)
		m := p.Dims.Dim()
		s, z := linalg.NewVector(m), linalg.NewVector(m)
		interiorPoint(rng, p.Dims, s)
		interiorPoint(rng, p.Dims, z)
		w, err := cone.NewScaling(p.Dims, s, z)
		if err != nil {
			t.Fatal(err)
		}
		const reg = 1e-10
		iterate := func() error {
			sv.fillScaled(w)
			ne.ata.Compute(sv.gs)
			if ne.pe == 0 {
				return ne.chol.Factorize(ne.ata.Result, reg, reg)
			}
			ne.fillKKT(reg)
			return ne.chol.FactorizeQuasiDef(ne.kkt, reg)
		}
		if err := iterate(); err != nil { // symbolic analysis + warm-up
			t.Fatal(err)
		}
		var ferr error
		allocs := testing.AllocsPerRun(20, func() {
			if err := iterate(); err != nil {
				ferr = err
			}
		})
		if ferr != nil {
			t.Fatal(ferr)
		}
		if allocs != 0 {
			t.Fatalf("eq=%v: per-iteration refactorization allocated %.1f times per run, want 0", eq, allocs)
		}
	}
}
