package socp

import "repro/internal/linalg"

// WarmStart is an initial primal/dual iterate (x, s, z, y) in the problem's
// original (unequilibrated) coordinates, typically harvested from the
// solution of a neighboring problem — the previous point of a capacity
// sweep, the previous weight ratio of a Pareto scan, or the previous probe
// of a bisection. The solver maps it into its internal scaling, shifts s
// and z safely into the cone interior (a converged neighbor sits on the
// boundary, where the NT scaling is singular), and starts the
// predictor-corrector iteration from there instead of the least-squares
// cold start. A warm start never changes what the solver converges to —
// only how many iterations it takes to get there — and an unusable one
// (wrong dimensions, non-finite entries) is silently replaced by the cold
// start.
type WarmStart struct {
	X linalg.Vector // primal variables
	S linalg.Vector // primal slacks, should be (near) K
	Z linalg.Vector // duals of Gx + s = h, should be (near) K
	Y linalg.Vector // duals of Ax = b (empty without equalities)
}

// Warm extracts a warm start from a solved problem's solution, cloning the
// iterate so the solution and any later solve stay independent. It returns
// nil when the solution carries no usable interior point — nil solution,
// infeasibility certificates, numerical failure, or missing vectors — so
// callers can thread `sol.Warm()` unconditionally.
func (s *Solution) Warm() *WarmStart {
	if s == nil {
		return nil
	}
	switch s.Status {
	case StatusOptimal, StatusMaxIterations:
		// Both end on a strictly interior (if barely) iterate worth reusing.
	default:
		return nil
	}
	if s.X == nil || s.S == nil || s.Z == nil {
		return nil
	}
	return &WarmStart{
		X: s.X.Clone(),
		S: s.S.Clone(),
		Z: s.Z.Clone(),
		Y: s.Y.Clone(),
	}
}
