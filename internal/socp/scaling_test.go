package socp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cone"
	"repro/internal/linalg"
)

// TestEquilibrateSolutionEquivalence: solving a badly scaled problem must
// give the same optimal x and objective as solving a well-scaled equivalent,
// and the returned duals must certify optimality in the ORIGINAL problem.
func TestEquilibrateSolutionEquivalence(t *testing.T) {
	// min x s.t. x ≥ 3, scaled by huge factors:
	// 1e6·x ≥ 3e6 and a loose capacity row 1e-3·x ≤ 1e9.
	g := linalg.NewMatrixFromRows([][]float64{{-1e6}, {1e-3}})
	h := linalg.Vector{-3e6, 1e9}
	p := &Problem{
		C:    linalg.Vector{5e4},
		G:    g,
		H:    h,
		Dims: cone.Dims{NonNeg: 2},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v, want 3", sol.X[0])
	}
	if math.Abs(sol.PrimalObj-1.5e5) > 1e-1 {
		t.Fatalf("obj = %v, want 1.5e5", sol.PrimalObj)
	}
	// The duals must satisfy the ORIGINAL stationarity Gᵀz + c = 0.
	res := p.C.Clone()
	p.G.MulVecTAdd(res, 1, sol.Z)
	if linalg.Norm2(res) > 1e-3*linalg.Norm2(p.C) {
		t.Fatalf("unscaled duals do not certify optimality: residual %v", linalg.Norm2(res))
	}
	// Slacks must satisfy the ORIGINAL Gx + s = h.
	gx := linalg.NewVector(2)
	p.G.MulVec(gx, sol.X)
	linalg.Add(gx, gx, sol.S)
	gx.AddScaled(-1, p.H)
	if linalg.Norm2(gx) > 1e-3*linalg.Norm2(p.H) {
		t.Fatalf("unscaled slacks inconsistent: %v", linalg.Norm2(gx))
	}
}

// TestEquilibrateWithEqualities: the same, with a scaled equality row.
func TestEquilibrateWithEqualities(t *testing.T) {
	// min x+y s.t. 1e5·(x+y) = 2e5, x,y ≥ 0 → obj = 2.
	b := NewBuilder()
	x := b.AddVar("x")
	y := b.AddVar("y")
	b.SetObjective(x, 1)
	b.SetObjective(y, 1)
	b.AddNonNeg(Expr(0).Plus(1, x))
	b.AddNonNeg(Expr(0).Plus(1, y))
	b.AddEq(Expr(-2e5).Plus(1e5, x).Plus(1e5, y))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.PrimalObj-2) > 1e-6 {
		t.Fatalf("status %v obj %v", sol.Status, sol.PrimalObj)
	}
}

// TestRedundantConstraints: duplicated and implied rows must not break the
// solve (they make the dual degenerate).
func TestRedundantConstraints(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, 1)
	for i := 0; i < 5; i++ {
		b.AddNonNeg(Expr(-3).Plus(1, x)) // x ≥ 3, five times
	}
	b.AddNonNeg(Expr(-1).Plus(1, x)) // implied by x ≥ 3
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.X[0]-3) > 1e-5 {
		t.Fatalf("status %v x %v", sol.Status, sol.X)
	}
}

// TestConstantRows: rows with no variables at all (h ≥ 0 holds or fails).
func TestConstantRows(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, 1)
	b.AddNonNeg(Expr(-1).Plus(1, x))
	b.AddNonNeg(Expr(5)) // trivially true constant row
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.X[0]-1) > 1e-5 {
		t.Fatalf("status %v x %v", sol.Status, sol.X)
	}
}

// TestVariableFixedByInequalities: x ≤ 2 and x ≥ 2 pin the variable.
func TestVariableFixedByInequalities(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	y := b.AddVar("y")
	b.SetObjective(y, 1)
	b.AddNonNeg(Expr(-2).Plus(1, x))
	b.AddNonNeg(Expr(2).Plus(-1, x))
	b.AddNonNeg(Expr(0).Plus(1, y).Plus(-1, x)) // y ≥ x
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]-2) > 1e-5 || math.Abs(sol.X[y]-2) > 1e-5 {
		t.Fatalf("status %v x %v", sol.Status, sol.X)
	}
}

// TestRandomScaledLPsRecoverOptimum: random LPs with wild row/cost scalings
// still solve to the same optimum as their well-scaled twins.
func TestRandomScaledLPsRecoverOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(4)
		m := n + 2 + rng.Intn(5)
		g := linalg.NewMatrix(m, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		x0 := linalg.NewVector(n)
		for i := range x0 {
			x0[i] = rng.Float64() * 2
		}
		h := linalg.NewVector(m)
		g.MulVec(h, x0)
		for i := range h {
			h[i] += 0.2 + rng.Float64()
		}
		z0 := linalg.NewVector(m)
		for i := range z0 {
			z0[i] = 0.1 + rng.Float64()
		}
		c := linalg.NewVector(n)
		g.MulVecT(c, z0)
		c.Scale(-1)

		base := &Problem{C: c.Clone(), G: g.Clone(), H: h.Clone(), Dims: cone.Dims{NonNeg: m}}
		solBase, err := Solve(base, Options{})
		if err != nil || solBase.Status != StatusOptimal {
			t.Fatalf("trial %d base: %v %v", trial, solBase.Status, err)
		}

		// Wildly rescale rows and cost.
		g2 := g.Clone()
		h2 := h.Clone()
		for i := 0; i < m; i++ {
			f := math.Pow(10, float64(rng.Intn(13)-6))
			for j := 0; j < n; j++ {
				g2.Set(i, j, g2.At(i, j)*f)
			}
			h2[i] *= f
		}
		c2 := c.Clone()
		cf := math.Pow(10, float64(rng.Intn(9)-4))
		c2.Scale(cf)
		scaled := &Problem{C: c2, G: g2, H: h2, Dims: cone.Dims{NonNeg: m}}
		solScaled, err := Solve(scaled, Options{})
		if err != nil || solScaled.Status != StatusOptimal {
			t.Fatalf("trial %d scaled: %v %v", trial, solScaled.Status, err)
		}
		want := solBase.PrimalObj * cf
		if math.Abs(solScaled.PrimalObj-want) > 1e-4*math.Max(1, math.Abs(want)) {
			t.Fatalf("trial %d: scaled obj %v, want %v", trial, solScaled.PrimalObj, want)
		}
	}
}
