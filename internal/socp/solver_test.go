package socp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cone"
	"repro/internal/linalg"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve error: %v", err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v (gap %v, pres %v, dres %v)", sol.Status, sol.Gap, sol.PrimalRes, sol.DualRes)
	}
	return sol
}

// min x s.t. x >= 3  → x* = 3.
func TestTrivialLP(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, 1)
	b.AddNonNeg(Expr(-3).Plus(1, x)) // x − 3 ≥ 0
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if !almostEqual(sol.X[x], 3, 1e-6) {
		t.Fatalf("x = %v, want 3", sol.X[x])
	}
	if !almostEqual(sol.PrimalObj, 3, 1e-6) {
		t.Fatalf("obj = %v, want 3", sol.PrimalObj)
	}
}

// Classic 2D LP: max x+y s.t. x+2y<=4, 3x+y<=6, x,y>=0.
// Optimum at intersection of the two lines: x=8/5, y=6/5, obj=14/5.
func TestSmallLP(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	y := b.AddVar("y")
	b.SetObjective(x, -1) // maximize x + y
	b.SetObjective(y, -1)
	b.AddNonNeg(Expr(0).Plus(1, x))
	b.AddNonNeg(Expr(0).Plus(1, y))
	b.AddLE(Expr(0).Plus(1, x).Plus(2, y), Expr(4))
	b.AddLE(Expr(0).Plus(3, x).Plus(1, y), Expr(6))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if !almostEqual(sol.X[x], 1.6, 1e-6) || !almostEqual(sol.X[y], 1.2, 1e-6) {
		t.Fatalf("(x,y) = (%v,%v), want (1.6,1.2)", sol.X[x], sol.X[y])
	}
	if !almostEqual(sol.PrimalObj, -2.8, 1e-6) {
		t.Fatalf("obj = %v, want -2.8", sol.PrimalObj)
	}
}

// LP with equality constraints: min x+y s.t. x+y+z = 1, z = 0.4, x,y >= 0.
func TestLPWithEqualities(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	y := b.AddVar("y")
	z := b.AddVar("z")
	b.SetObjective(x, 1)
	b.SetObjective(y, 1)
	b.AddNonNeg(Expr(0).Plus(1, x))
	b.AddNonNeg(Expr(0).Plus(1, y))
	b.AddEq(Expr(-1).Plus(1, x).Plus(1, y).Plus(1, z)) // x+y+z−1 = 0
	b.AddEq(Expr(-0.4).Plus(1, z))                     // z − 0.4 = 0
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if !almostEqual(sol.PrimalObj, 0.6, 1e-6) {
		t.Fatalf("obj = %v, want 0.6", sol.PrimalObj)
	}
	if !almostEqual(sol.X[z], 0.4, 1e-6) {
		t.Fatalf("z = %v, want 0.4", sol.X[z])
	}
}

// min ‖(x,y) − (3,4)‖ via SOC epigraph: min t s.t. t ≥ ‖(x−3, y−4)‖,
// x ≥ 4 → optimum t = 1 at (4,4).
func TestSOCProjection(t *testing.T) {
	b := NewBuilder()
	tv := b.AddVar("t")
	x := b.AddVar("x")
	y := b.AddVar("y")
	b.SetObjective(tv, 1)
	b.AddSOC(
		Expr(0).Plus(1, tv),
		Expr(-3).Plus(1, x),
		Expr(-4).Plus(1, y),
	)
	b.AddNonNeg(Expr(-4).Plus(1, x)) // x ≥ 4
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if !almostEqual(sol.X[tv], 1, 1e-5) {
		t.Fatalf("t = %v, want 1", sol.X[tv])
	}
	if !almostEqual(sol.X[x], 4, 1e-5) || !almostEqual(sol.X[y], 4, 1e-4) {
		t.Fatalf("(x,y) = (%v,%v), want (4,4)", sol.X[x], sol.X[y])
	}
}

// Hyperbolic constraint: min u + v s.t. u·v ≥ 1 → u = v = 1, obj = 2
// (AM-GM: u+v ≥ 2√(uv) ≥ 2).
func TestHyperbolicProduct(t *testing.T) {
	b := NewBuilder()
	u := b.AddVar("u")
	v := b.AddVar("v")
	b.SetObjective(u, 1)
	b.SetObjective(v, 1)
	b.AddProductGE(u, v, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	if !almostEqual(sol.X[u], 1, 1e-5) || !almostEqual(sol.X[v], 1, 1e-5) {
		t.Fatalf("(u,v) = (%v,%v), want (1,1)", sol.X[u], sol.X[v])
	}
}

// Weighted hyperbolic: min 4u + v s.t. u·v ≥ 1. Lagrange: v/u = 4 → u = 1/2,
// v = 2, obj = 4.
func TestHyperbolicWeighted(t *testing.T) {
	b := NewBuilder()
	u := b.AddVar("u")
	v := b.AddVar("v")
	b.SetObjective(u, 4)
	b.SetObjective(v, 1)
	b.AddProductGE(u, v, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, p)
	// The optimizer terminates on the duality gap; the x-error of an
	// interior-point method scales as √gap, so allow 1e-4 on the variables
	// while holding the objective to 1e-7.
	if !almostEqual(sol.X[u], 0.5, 1e-4) || !almostEqual(sol.X[v], 2, 1e-4) {
		t.Fatalf("(u,v) = (%v,%v), want (0.5,2)", sol.X[u], sol.X[v])
	}
	if !almostEqual(sol.PrimalObj, 4, 1e-7) {
		t.Fatalf("obj = %v, want 4", sol.PrimalObj)
	}
}

// The paper's core subproblem in isolation: producer-consumer symmetric
// budget minimization at buffer capacity d. Constraints (see DESIGN.md §3):
// 2(R−β) + 2Rλ ≤ µ·d, λβ ≥ 1, Rλ ≤ µ, β ≤ R with R = 40, µ = 10.
// Analytic optimum: β*(d) = max(4, [(80−10d) + √((80−10d)²+640)]/4).
func TestPaperSubproblemAnalytic(t *testing.T) {
	const R, mu = 40.0, 10.0
	want := func(d float64) float64 {
		b := (2*R - mu*d)
		root := (b + math.Sqrt(b*b+16*R)) / 4
		return math.Max(R/mu, root)
	}
	for d := 1; d <= 10; d++ {
		b := NewBuilder()
		beta := b.AddVar("beta")
		lam := b.AddVar("lambda")
		b.SetObjective(beta, 1)
		// 2(R−β) + 2Rλ ≤ µd
		b.AddLE(Expr(2*R).Plus(-2, beta).Plus(2*R, lam), Expr(mu*float64(d)))
		// Rλ ≤ µ (self-loop rate constraint)
		b.AddLE(Expr(0).Plus(R, lam), Expr(mu))
		// β ≤ R
		b.AddLE(Expr(0).Plus(1, beta), Expr(R))
		b.AddProductGE(lam, beta, 1)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sol := solveOrFail(t, p)
		if w := want(float64(d)); !almostEqual(sol.X[beta], w, 1e-5) {
			t.Fatalf("d=%d: β = %v, want %v", d, sol.X[beta], w)
		}
	}
}

func TestPrimalInfeasible(t *testing.T) {
	// x ≥ 2 and x ≤ 1 simultaneously.
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, 1)
	b.AddNonNeg(Expr(-2).Plus(1, x))
	b.AddNonNeg(Expr(1).Plus(-1, x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusPrimalInfeasible {
		t.Fatalf("status = %v, want primal infeasible", sol.Status)
	}
}

func TestDualInfeasibleUnbounded(t *testing.T) {
	// min −x s.t. x ≥ 0: unbounded below → dual infeasible.
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, -1)
	b.AddNonNeg(Expr(0).Plus(1, x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusDualInfeasible {
		t.Fatalf("status = %v, want dual infeasible", sol.Status)
	}
}

// Strong duality and feasibility on random bounded LPs with a known interior
// point: generate G, pick x₀ and slack s₀ > 0, set h = Gx₀ + s₀; pick z₀ > 0
// and set c = −Gᵀz₀ so the dual is feasible too.
func TestRandomLPStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		m := n + 1 + rng.Intn(8)
		g := linalg.NewMatrix(m, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		x0 := linalg.NewVector(n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		h := linalg.NewVector(m)
		g.MulVec(h, x0)
		for i := range h {
			h[i] += 0.1 + rng.Float64()
		}
		z0 := linalg.NewVector(m)
		for i := range z0 {
			z0[i] = 0.1 + rng.Float64()
		}
		c := linalg.NewVector(n)
		g.MulVecT(c, z0)
		c.Scale(-1)
		c.Scale(-1) // c = Gᵀz0 ... need dual feasible: Gᵀz + c = 0 → c = −Gᵀz0
		g.MulVecT(c, z0)
		c.Scale(-1)

		p := &Problem{C: c, G: g, H: h, Dims: cone.Dims{NonNeg: m}}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Strong duality.
		if math.Abs(sol.PrimalObj-sol.DualObj) > 1e-5*math.Max(1, math.Abs(sol.PrimalObj)) {
			t.Fatalf("trial %d: duality gap %v vs %v", trial, sol.PrimalObj, sol.DualObj)
		}
		// Primal feasibility: Gx + s = h with s ≥ −tol.
		gx := linalg.NewVector(m)
		g.MulVec(gx, sol.X)
		for i := range gx {
			if gx[i]-h[i] > 1e-6 {
				t.Fatalf("trial %d: primal constraint %d violated by %v", trial, i, gx[i]-h[i])
			}
		}
	}
}

// Random feasible SOCPs built the same way, with one SOC block.
func TestRandomSOCPStrongDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		l := 1 + rng.Intn(4)
		q := 3
		dims := cone.Dims{NonNeg: l, SOC: []int{q}}
		m := dims.Dim()
		g := linalg.NewMatrix(m, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		// Interior primal point.
		x0 := linalg.NewVector(n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		s0 := linalg.NewVector(m)
		for i := 0; i < l; i++ {
			s0[i] = 0.1 + rng.Float64()
		}
		var tail float64
		for i := 1; i < q; i++ {
			s0[l+i] = rng.NormFloat64()
			tail += s0[l+i] * s0[l+i]
		}
		s0[l] = math.Sqrt(tail) + 0.1 + rng.Float64()
		h := linalg.NewVector(m)
		g.MulVec(h, x0)
		linalg.Add(h, h, s0)
		// Interior dual point.
		z0 := linalg.NewVector(m)
		for i := 0; i < l; i++ {
			z0[i] = 0.1 + rng.Float64()
		}
		tail = 0
		for i := 1; i < q; i++ {
			z0[l+i] = rng.NormFloat64()
			tail += z0[l+i] * z0[l+i]
		}
		z0[l] = math.Sqrt(tail) + 0.1 + rng.Float64()
		c := linalg.NewVector(n)
		g.MulVecT(c, z0)
		c.Scale(-1)

		p := &Problem{C: c, G: g, H: h, Dims: dims}
		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v (gap %v)", trial, sol.Status, sol.Gap)
		}
		if math.Abs(sol.PrimalObj-sol.DualObj) > 1e-4*math.Max(1, math.Abs(sol.PrimalObj)) {
			t.Fatalf("trial %d: duality gap: %v vs %v", trial, sol.PrimalObj, sol.DualObj)
		}
		if !dims.Interior(sol.S) && dims.InteriorMargin(sol.S) < -1e-7 {
			t.Fatalf("trial %d: returned slack outside cone (margin %v)", trial, dims.InteriorMargin(sol.S))
		}
	}
}

// TestMaxIterReported: an unreachable iteration budget surfaces as
// StatusMaxIterations (unless the best iterate already meets the reduced
// acceptance tolerances).
func TestMaxIterReported(t *testing.T) {
	b := NewBuilder()
	u := b.AddVar("u")
	v := b.AddVar("v")
	b.SetObjective(u, 4)
	b.SetObjective(v, 1)
	b.AddProductGE(u, v, 1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusMaxIterations {
		t.Fatalf("status = %v, want max iterations", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("best iterate not returned")
	}
}

// TestSolveOptionsRespected: explicit tolerances flow through.
func TestSolveOptionsRespected(t *testing.T) {
	b := NewBuilder()
	x := b.AddVar("x")
	b.SetObjective(x, 1)
	b.AddNonNeg(Expr(-3).Plus(1, x))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Very loose tolerances still produce an optimal status quickly.
	sol, err := Solve(p, Options{FeasTol: 1e-3, AbsTol: 1e-3, RelTol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[x]-3) > 0.1 {
		t.Fatalf("x = %v", sol.X[x])
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Problem{C: linalg.Vector{1}, G: linalg.NewMatrix(2, 2), H: linalg.NewVector(2), Dims: cone.Dims{NonNeg: 2}}
	if err := p.Validate(); err == nil {
		t.Fatal("G column mismatch accepted")
	}
	p2 := &Problem{C: linalg.Vector{1}, H: linalg.NewVector(1), Dims: cone.Dims{NonNeg: 1}}
	if err := p2.Validate(); err == nil {
		t.Fatal("nil G accepted")
	}
	p3 := &Problem{C: linalg.Vector{1}, G: linalg.NewMatrix(1, 1), H: linalg.NewVector(2), Dims: cone.Dims{NonNeg: 1}}
	if err := p3.Validate(); err == nil {
		t.Fatal("h length mismatch accepted")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOptimal:          "optimal",
		StatusPrimalInfeasible: "primal infeasible",
		StatusDualInfeasible:   "dual infeasible",
		StatusMaxIterations:    "max iterations",
		StatusNumericalError:   "numerical error",
		Status(99):             "Status(99)",
	} {
		if st.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestBuilderEval(t *testing.T) {
	a := Expr(2).Plus(3, 0).Plus(-1, 1)
	if got := a.Eval(linalg.Vector{1, 4}); got != 1 {
		t.Fatalf("Eval = %v, want 1", got)
	}
}

func TestBuilderRejectsBadVar(t *testing.T) {
	b := NewBuilder()
	b.AddVar("x")
	b.SetObjective(0, 1)
	b.AddNonNeg(Expr(0).Plus(1, 5)) // unknown variable index
	if _, err := b.Build(); err == nil {
		t.Fatal("unknown variable accepted")
	}
}
