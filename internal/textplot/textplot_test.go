package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", 42)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// All rows share the same column start for the second column.
	idx := strings.Index(lines[0], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[3][idx:], "42") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestTableNaN(t *testing.T) {
	tb := NewTable("x")
	tb.AddRow(math.NaN())
	if !strings.Contains(tb.String(), "-") {
		t.Fatal("NaN not rendered as dash")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, 2.5)
	csv := tb.CSV()
	if csv != "a,b\n1,2.5\n" {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestPlotRendering(t *testing.T) {
	p := NewPlot("title", "cap", "budget", []float64{1, 2, 3})
	p.AddSeries("beta", []float64{30, 20, 10})
	out := p.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "beta") {
		t.Fatalf("plot missing labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("plot missing markers")
	}
	// Max label appears.
	if !strings.Contains(out, "30") {
		t.Fatalf("plot missing y max:\n%s", out)
	}
}

func TestPlotTwoSeriesDistinctMarkers(t *testing.T) {
	p := NewPlot("t", "x", "y", []float64{1, 2})
	p.AddSeries("s1", []float64{1, 2})
	p.AddSeries("s2", []float64{2, 1})
	out := p.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestPlotEmptyAndFlat(t *testing.T) {
	p := NewPlot("empty", "x", "y", nil)
	if !strings.Contains(p.String(), "no data") {
		t.Fatal("empty plot not handled")
	}
	p2 := NewPlot("flat", "x", "y", []float64{1})
	p2.AddSeries("s", []float64{5})
	if p2.String() == "" {
		t.Fatal("flat plot not rendered")
	}
	p3 := NewPlot("nan", "x", "y", []float64{1})
	p3.AddSeries("s", []float64{math.NaN()})
	if !strings.Contains(p3.String(), "no finite data") {
		t.Fatal("all-NaN plot not handled")
	}
}

func TestPlotSeriesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	p := NewPlot("t", "x", "y", []float64{1, 2})
	p.AddSeries("bad", []float64{1})
}
