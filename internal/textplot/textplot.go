// Package textplot renders the experiment results as aligned ASCII tables,
// CSV, and simple terminal line plots, so every figure and table of the
// paper can be regenerated on a terminal without plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v, floats with %.6g.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			if math.IsNaN(x) {
				row[i] = "-"
			} else {
				row[i] = fmt.Sprintf("%.6g", x)
			}
		case float32:
			row[i] = fmt.Sprintf("%.6g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; intended for
// numeric experiment output).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteString("\n")
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// Plot renders series of (x, y) points as a fixed-size ASCII chart. All
// series share the x values.
type Plot struct {
	title  string
	xlabel string
	ylabel string
	xs     []float64
	series []series
}

type series struct {
	name   string
	ys     []float64
	marker byte
}

// NewPlot creates a plot with the given axis labels.
func NewPlot(title, xlabel, ylabel string, xs []float64) *Plot {
	return &Plot{title: title, xlabel: xlabel, ylabel: ylabel, xs: xs}
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// AddSeries adds a named series; ys must have the same length as xs.
func (p *Plot) AddSeries(name string, ys []float64) {
	if len(ys) != len(p.xs) {
		panic(fmt.Sprintf("textplot: series %q has %d points, want %d", name, len(ys), len(p.xs)))
	}
	p.series = append(p.series, series{
		name: name, ys: ys, marker: markers[len(p.series)%len(markers)],
	})
}

// String renders the chart (height 16, width tracks the x count).
func (p *Plot) String() string {
	const height = 16
	if len(p.xs) == 0 || len(p.series) == 0 {
		return p.title + " (no data)\n"
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for _, y := range s.ys {
			if math.IsNaN(y) {
				continue
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		return p.title + " (no finite data)\n"
	}
	//bbvet:allow floatcmp degenerate-axis guard: exact collapse check before widening the range
	if ymax == ymin {
		ymax = ymin + 1
	}
	width := len(p.xs)*6 + 1
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		for i, y := range s.ys {
			if math.IsNaN(y) {
				continue
			}
			row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
			col := i * 6
			grid[row][col] = s.marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.title)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", ymin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	// X tick labels.
	var ticks strings.Builder
	for _, x := range p.xs {
		ticks.WriteString(fmt.Sprintf("%-6.3g", x))
	}
	fmt.Fprintf(&b, "%s  %s  (%s)\n", strings.Repeat(" ", 8), ticks.String(), p.xlabel)
	for _, s := range p.series {
		fmt.Fprintf(&b, "%s   %c = %s (%s)\n", strings.Repeat(" ", 8), s.marker, s.name, p.ylabel)
	}
	return b.String()
}
