package dfmodel

import (
	"fmt"
	"sort"

	"repro/internal/sdf"
	"repro/internal/srdf"
	"repro/internal/taskgraph"
)

// Repetitions computes the repetition vector of a (possibly multi-rate) task
// graph: how many times each task fires per graph iteration. Single-rate
// graphs return all ones.
func Repetitions(tg *taskgraph.TaskGraph) (map[string]int, error) {
	g := sdf.NewGraph()
	ids := map[string]sdf.ActorID{}
	for i := range tg.Tasks {
		ids[tg.Tasks[i].Name] = g.AddActor(tg.Tasks[i].Name, 1)
	}
	for i := range tg.Buffers {
		b := &tg.Buffers[i]
		g.AddEdge(b.Name, ids[b.From], ids[b.To], b.EffectiveProd(), b.EffectiveCons(), b.InitialTokens)
	}
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, fmt.Errorf("dfmodel: graph %s: %w", tg.Name, err)
	}
	out := map[string]int{}
	for name, id := range ids {
		out[name] = q[id]
	}
	return out, nil
}

// buildExpandedGraph constructs the SRDF model of a multi-rate task graph:
// each task w becomes q(w) two-actor firing copies (v1_j latency, v2_j rate)
// with a sequencing cycle through the v2 copies (one token — firings of a
// task are serial, exactly like the single-rate self-loop), and each buffer
// becomes the expanded data and space dependencies of its token algebra.
// For unit rates and q ≡ 1 this reduces to the §II-C construction.
func buildExpandedGraph(c *taskgraph.Config, tg *taskgraph.TaskGraph, m *taskgraph.Mapping) (*srdf.Graph, *Index, error) {
	reps, err := Repetitions(tg)
	if err != nil {
		return nil, nil, err
	}
	g := srdf.NewGraph()
	idx := &Index{
		Tasks:       map[string]TaskActors{},
		TaskCopies:  map[string][]TaskActors{},
		Buffers:     map[string]BufferEdges{},
		Repetitions: reps,
	}
	for i := range tg.Tasks {
		w := &tg.Tasks[i]
		p, ok := c.Processor(w.Processor)
		if !ok {
			return nil, nil, fmt.Errorf("dfmodel: task %q on unknown processor %q", w.Name, w.Processor)
		}
		beta, ok := m.Budgets[w.Name]
		if !ok || beta <= 0 || beta > p.Replenishment+1e-9 {
			return nil, nil, fmt.Errorf("dfmodel: task %q has missing or invalid budget", w.Name)
		}
		q := reps[w.Name]
		copies := make([]TaskActors, q)
		for j := 0; j < q; j++ {
			v1 := g.AddActor(fmt.Sprintf("%s#%d.v1", w.Name, j), maxf(0, p.Replenishment-beta))
			v2 := g.AddActor(fmt.Sprintf("%s#%d.v2", w.Name, j), p.Replenishment*w.WCET/beta)
			g.AddEdge(fmt.Sprintf("%s#%d.v1v2", w.Name, j), v1, v2, 0)
			copies[j] = TaskActors{V1: v1, V2: v2}
		}
		for j := 0; j < q; j++ {
			next := (j + 1) % q
			tok := 0
			if next == 0 {
				tok = 1
			}
			g.AddEdge(fmt.Sprintf("%s.seq%d", w.Name, j), copies[j].V2, copies[next].V2, tok)
		}
		idx.Tasks[w.Name] = copies[0]
		idx.TaskCopies[w.Name] = copies
	}
	for i := range tg.Buffers {
		b := &tg.Buffers[i]
		gamma, ok := m.Capacities[b.Name]
		if !ok || gamma < 1 || gamma < b.InitialTokens {
			return nil, nil, fmt.Errorf("dfmodel: buffer %q has missing or invalid capacity", b.Name)
		}
		deps, err := ExpandBuffer(b, reps[b.From], reps[b.To], gamma)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range deps {
			var src, dst srdf.ActorID
			if d.Space {
				src = idx.TaskCopies[b.To][d.SrcCopy].V2
				dst = idx.TaskCopies[b.From][d.DstCopy].V1
			} else {
				src = idx.TaskCopies[b.From][d.SrcCopy].V2
				dst = idx.TaskCopies[b.To][d.DstCopy].V1
			}
			kind := "data"
			if d.Space {
				kind = "space"
			}
			g.AddEdge(fmt.Sprintf("%s.%s[%d->%d]", b.Name, kind, d.SrcCopy, d.DstCopy), src, dst, d.Delta)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, idx, nil
}

// BufferDep is one expanded dependency of a multi-rate buffer: the DstCopy-th
// firing of the destination task waits for tokens produced Delta iterations
// earlier by the SrcCopy-th firing of the source task. Space dependencies
// run from the consumer (which frees containers) back to the producer.
type BufferDep struct {
	SrcCopy, DstCopy int
	Delta            int
	Space            bool
}

// ExpandBuffer computes the expanded data and space dependencies of a buffer
// with production rate p, consumption rate c, ι initial tokens and capacity
// γ, for repetition counts qFrom/qTo of its endpoint tasks. Duplicate
// dependencies (same endpoints, same distance) are merged; dominated ones
// (same endpoints, larger distance) are kept only as the minimum, which is
// the binding constraint.
func ExpandBuffer(b *taskgraph.Buffer, qFrom, qTo, gamma int) ([]BufferDep, error) {
	p, cRate := b.EffectiveProd(), b.EffectiveCons()
	if p*qFrom != cRate*qTo {
		return nil, fmt.Errorf("dfmodel: buffer %q rates are inconsistent with the repetition vector", b.Name)
	}
	iota := b.InitialTokens
	space := gamma - iota
	if space < 0 {
		return nil, fmt.Errorf("dfmodel: buffer %q capacity below initial tokens", b.Name)
	}
	perIter := p * qFrom
	type key struct {
		src, dst int
		space    bool
	}
	min := map[key]int{}
	add := func(src, dst, delta int, isSpace bool) {
		k := key{src, dst, isSpace}
		if cur, ok := min[k]; !ok || delta < cur {
			min[k] = delta
		}
	}
	// Data: consumption index T of firing (nStar, j) maps back to the
	// producing firing ⌊(T−ι)/p⌋.
	nStar := (iota+gamma)/maxi(1, perIter) + 2
	for j := 0; j < qTo; j++ {
		for k := 0; k < cRate; k++ {
			t := (nStar*qTo+j)*cRate + k
			produced := t - iota
			if produced < 0 {
				return nil, fmt.Errorf("dfmodel: buffer %q expansion underflow", b.Name)
			}
			f := produced / p
			add(f%qFrom, j, nStar-f/qFrom, false)
		}
	}
	// Space: the producer consumes p space tokens per firing from a reverse
	// channel that starts with γ−ι tokens and receives c per consumer firing.
	for l := 0; l < qFrom; l++ {
		for k := 0; k < p; k++ {
			t := (nStar*qFrom+l)*p + k
			freed := t - space
			if freed < 0 {
				return nil, fmt.Errorf("dfmodel: buffer %q space expansion underflow", b.Name)
			}
			f := freed / cRate
			add(f%qTo, l, nStar-f/qTo, true)
		}
	}
	// Emit in sorted key order: the map collected minima, but the returned
	// dependency list (and the error text on underflow) must not depend on
	// map iteration order.
	keys := make([]key, 0, len(min))
	for k := range min {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.space != b.space {
			return !a.space
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.dst < b.dst
	})
	out := make([]BufferDep, 0, len(min))
	for _, k := range keys {
		d := min[k]
		if d < 0 {
			return nil, fmt.Errorf("dfmodel: buffer %q produced a negative dependency distance", b.Name)
		}
		out = append(out, BufferDep{SrcCopy: k.src, DstCopy: k.dst, Delta: d, Space: k.space})
	}
	return out, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
