package dfmodel

import (
	"testing"

	"repro/internal/taskgraph"
)

// mrConfig returns a 2:1 multi-rate producer-consumer configuration.
func mrConfig() *taskgraph.Config {
	return &taskgraph.Config{
		Processors: []taskgraph.Processor{
			{Name: "p1", Replenishment: 40},
			{Name: "p2", Replenishment: 40},
		},
		Memories: []taskgraph.Memory{{Name: "m1", Capacity: 1000}},
		Graphs: []*taskgraph.TaskGraph{{
			Name:   "mr",
			Period: 10,
			Tasks: []taskgraph.Task{
				{Name: "wa", Processor: "p1", WCET: 1},
				{Name: "wb", Processor: "p2", WCET: 1},
			},
			Buffers: []taskgraph.Buffer{{
				Name: "bab", From: "wa", To: "wb", Memory: "m1", Prod: 2, Cons: 1,
			}},
		}},
	}
}

func TestRepetitionsSingleRate(t *testing.T) {
	c := t1Config()
	reps, err := Repetitions(c.Graphs[0])
	if err != nil {
		t.Fatal(err)
	}
	if reps["wa"] != 1 || reps["wb"] != 1 {
		t.Fatalf("reps = %v", reps)
	}
}

func TestRepetitionsMultiRate(t *testing.T) {
	c := mrConfig()
	reps, err := Repetitions(c.Graphs[0])
	if err != nil {
		t.Fatal(err)
	}
	if reps["wa"] != 1 || reps["wb"] != 2 {
		t.Fatalf("reps = %v", reps)
	}
}

func TestRepetitionsInconsistent(t *testing.T) {
	c := mrConfig()
	// Add a second buffer with contradictory rates.
	c.Graphs[0].Buffers = append(c.Graphs[0].Buffers, taskgraph.Buffer{
		Name: "b2", From: "wa", To: "wb", Memory: "m1", Prod: 1, Cons: 1,
	})
	if _, err := Repetitions(c.Graphs[0]); err == nil {
		t.Fatal("inconsistent rates accepted")
	}
}

func TestBuildGraphMultiRateStructure(t *testing.T) {
	c := mrConfig()
	m := &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10, "wb": 10},
		Capacities: map[string]int{"bab": 4},
	}
	g, idx, err := BuildGraph(c, c.Graphs[0], m)
	if err != nil {
		t.Fatal(err)
	}
	// wa: 1 copy (2 actors); wb: 2 copies (4 actors) → 6 actors.
	if g.NumActors() != 6 {
		t.Fatalf("actors = %d, want 6", g.NumActors())
	}
	if len(idx.TaskCopies["wa"]) != 1 || len(idx.TaskCopies["wb"]) != 2 {
		t.Fatalf("copies: %v", idx.Repetitions)
	}
	if idx.Repetitions["wb"] != 2 {
		t.Fatalf("repetitions: %v", idx.Repetitions)
	}
	// The model must admit a PAS for a generous period and be deadlock-free.
	if !g.DeadlockFree() {
		t.Fatal("expanded model deadlocks")
	}
	mp, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if mp <= 0 {
		t.Fatalf("min period = %v", mp)
	}
}

func TestVerifyMultiRate(t *testing.T) {
	c := mrConfig()
	// Budgets: wa fires once per 10 Mcycles (β ≥ 4); wb fires twice
	// (sequencing cycle: 2·40/β ≤ 10 → β ≥ 8). Generous capacity.
	good := &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 30, "wb": 30},
		Capacities: map[string]int{"bab": 12},
	}
	v, err := Verify(c, good)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("good multi-rate mapping rejected: %v", v.Problems)
	}
	// Rate-infeasible budget for wb.
	bad := &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 30, "wb": 7},
		Capacities: map[string]int{"bab": 12},
	}
	v2, err := Verify(c, bad)
	if err != nil {
		t.Fatal(err)
	}
	if v2.OK {
		t.Fatal("rate-infeasible multi-rate mapping accepted")
	}
}

func TestExpandBufferMultiRateDeltas(t *testing.T) {
	// p=2, c=1, ι=0, γ=2, qFrom=1, qTo=2: wb's firing j consumes token j;
	// both produced by wa firing 0 of the same iteration (δ=0 data deps).
	b := &taskgraph.Buffer{Name: "b", From: "a", To: "c", Prod: 2, Cons: 1}
	deps, err := ExpandBuffer(b, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nData, nSpace int
	for _, d := range deps {
		if d.Space {
			nSpace++
			// Producer needs 2 free: freed by consumer firings of earlier
			// iterations; distances must be positive.
			if d.Delta < 1 {
				t.Fatalf("space dep with delta %d", d.Delta)
			}
		} else {
			nData++
			if d.SrcCopy != 0 {
				t.Fatalf("data dep from copy %d", d.SrcCopy)
			}
			if d.Delta != 0 {
				t.Fatalf("data delta = %d, want 0 (same iteration)", d.Delta)
			}
		}
	}
	if nData != 2 || nSpace == 0 {
		t.Fatalf("deps: %d data, %d space: %+v", nData, nSpace, deps)
	}
}

func TestExpandBufferCapacityBelowTokens(t *testing.T) {
	b := &taskgraph.Buffer{Name: "b", From: "a", To: "c", InitialTokens: 5}
	if _, err := ExpandBuffer(b, 1, 1, 3); err == nil {
		t.Fatal("capacity below initial tokens accepted")
	}
}

func TestBuildGraphMultiRateErrors(t *testing.T) {
	c := mrConfig()
	// Missing budget.
	if _, _, err := BuildGraph(c, c.Graphs[0], &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10},
		Capacities: map[string]int{"bab": 4},
	}); err == nil {
		t.Fatal("missing budget accepted")
	}
	// Missing capacity.
	if _, _, err := BuildGraph(c, c.Graphs[0], &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10, "wb": 10},
		Capacities: map[string]int{},
	}); err == nil {
		t.Fatal("missing capacity accepted")
	}
	// Inconsistent rates.
	c2 := mrConfig()
	c2.Graphs[0].Buffers = append(c2.Graphs[0].Buffers, taskgraph.Buffer{
		Name: "b2", From: "wa", To: "wb", Memory: "m1",
	})
	if _, _, err := BuildGraph(c2, c2.Graphs[0], &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10, "wb": 10},
		Capacities: map[string]int{"bab": 4, "b2": 4},
	}); err == nil {
		t.Fatal("inconsistent graph accepted")
	}
}
