package dfmodel

import (
	"fmt"
	"math"

	"repro/internal/taskgraph"
)

// LatencyBound returns the smallest end-to-end latency bound, in Mcycles,
// achievable by any periodic admissible schedule of the mapping: the time
// from the k-th activation of task src to the completion of the k-th firing
// of task sink in graph tg, assuming the graph runs against a strictly
// periodic source at the graph's required rate.
//
// In a PAS with period µ, the k-th completion of sink happens no later than
// s(v2_sink) + (k−1)µ + ρ(v2_sink) and the k-th activation of src no
// earlier than s(v1_src) + (k−1)µ, so every PAS certifies the bound
// L = s(v2_sink) + ρ(v2_sink) − s(v1_src). The minimum over schedules is the
// longest path from src's v1 to sink's v2 in the constraint graph, which is
// what this function computes.
func LatencyBound(c *taskgraph.Config, tg *taskgraph.TaskGraph, m *taskgraph.Mapping, src, sink string) (float64, error) {
	g, idx, err := BuildGraph(c, tg, m)
	if err != nil {
		return 0, err
	}
	sa, ok := idx.Tasks[src]
	if !ok {
		return 0, fmt.Errorf("dfmodel: unknown source task %q", src)
	}
	ka, ok := idx.Tasks[sink]
	if !ok {
		return 0, fmt.Errorf("dfmodel: unknown sink task %q", sink)
	}
	d, err := g.LongestPaths(sa.V1, tg.Period)
	if err != nil {
		return 0, fmt.Errorf("dfmodel: mapping admits no PAS with period %v: %w", tg.Period, err)
	}
	if math.IsInf(d[ka.V2], -1) {
		return 0, fmt.Errorf("dfmodel: task %q is not downstream of %q", sink, src)
	}
	return d[ka.V2] + g.Actor(ka.V2).Duration, nil
}
