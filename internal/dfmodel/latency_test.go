package dfmodel

import (
	"math"
	"testing"

	"repro/internal/taskgraph"
)

func TestLatencyBoundT1(t *testing.T) {
	c := t1Config()
	m := mapping(20, 5) // β = 20 → ρ(v1) = 20, ρ(v2) = 2; cycle 44 ≤ 50 feasible
	got, err := LatencyBound(c, c.Graphs[0], m, "wa", "wb")
	if err != nil {
		t.Fatal(err)
	}
	// ASAP PAS with period 10: s(a1)=0, s(a2) = 20, s(b1) = 22, s(b2) = 42;
	// bound = 42 + 2 − 0 = 44.
	want := 44.0
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestLatencyBoundAtLeastProcessing(t *testing.T) {
	c := t1Config()
	for _, beta := range []float64{5, 10, 20, 39} {
		m := mapping(beta, 10)
		got, err := LatencyBound(c, c.Graphs[0], m, "wa", "wb")
		if err != nil {
			t.Fatal(err)
		}
		// The bound covers at least both latency-rate stages:
		// 2(ϱ−β) + 2·ϱχ/β.
		min := 2*(40-beta) + 2*40/beta
		if got < min-1e-9 {
			t.Fatalf("β=%v: latency %v below the physical floor %v", beta, got, min)
		}
	}
}

func TestLatencyBoundMonotoneInBudget(t *testing.T) {
	c := t1Config()
	prev := math.Inf(1)
	for _, beta := range []float64{5, 10, 20, 39} {
		got, err := LatencyBound(c, c.Graphs[0], mapping(beta, 10), "wa", "wb")
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Fatalf("latency increased with budget: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestLatencyBoundErrors(t *testing.T) {
	c := t1Config()
	m := mapping(10, 5)
	if _, err := LatencyBound(c, c.Graphs[0], m, "nope", "wb"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := LatencyBound(c, c.Graphs[0], m, "wa", "nope"); err == nil {
		t.Fatal("unknown sink accepted")
	}
	// Infeasible mapping: no PAS.
	if _, err := LatencyBound(c, c.Graphs[0], mapping(20, 1), "wa", "wb"); err == nil {
		t.Fatal("infeasible mapping accepted")
	}
	// Broken mapping: build error.
	bad := &taskgraph.Mapping{Budgets: map[string]float64{"wa": 10}, Capacities: map[string]int{"bab": 5}}
	if _, err := LatencyBound(c, c.Graphs[0], bad, "wa", "wb"); err == nil {
		t.Fatal("incomplete mapping accepted")
	}
}
