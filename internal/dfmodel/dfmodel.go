// Package dfmodel implements the paper's §II-C translation of a task graph
// running under budget schedulers into a single-rate dataflow (SRDF) graph,
// following Wiggers et al. (EMSOFT'09):
//
//   - each task w becomes two actors: v1 with firing duration
//     ϱ(π(w)) − β(w) (worst-case budget-replenishment latency) and v2 with
//     duration ϱ(π(w))·χ(w)/β(w) (processing at the guaranteed rate), joined
//     by a token-free queue v1→v2 and a self-loop on v2 with one token;
//   - each buffer b from wa to wb becomes a data queue a2→b1 with ι(b)
//     initial tokens and a space queue b2→a1 with γ(b)−ι(b) initial tokens.
//
// If the resulting SRDF graph admits a periodic schedule with period µ(T),
// then by temporal monotonicity the real task graph meets its throughput
// constraint — this is what makes the package the independent verifier for
// every mapping the optimizer produces.
package dfmodel

import (
	"fmt"
	"math"

	"repro/internal/srdf"
	"repro/internal/taskgraph"
)

// TaskActors holds the two SRDF actors modelling one task.
type TaskActors struct {
	V1, V2 srdf.ActorID
}

// BufferEdges holds the two SRDF queues modelling one buffer.
type BufferEdges struct {
	Data, Space srdf.EdgeID
}

// Index maps task-graph entities to their SRDF counterparts.
type Index struct {
	// Tasks maps each task to its (first) two-actor component.
	Tasks map[string]TaskActors
	// Buffers maps each buffer to its data/space queues (single-rate graphs
	// only; multi-rate buffers expand to many edges).
	Buffers map[string]BufferEdges
	// TaskCopies lists all firing copies per task for multi-rate graphs
	// (nil for single-rate; then each task has exactly one copy in Tasks).
	TaskCopies map[string][]TaskActors
	// Repetitions is the repetition vector (nil for single-rate graphs).
	Repetitions map[string]int
}

// BuildGraph constructs the SRDF graph of one task graph under the given
// mapping. Budgets must be positive and at most the replenishment interval;
// capacities must cover the initial tokens and be at least one container.
func BuildGraph(c *taskgraph.Config, tg *taskgraph.TaskGraph, m *taskgraph.Mapping) (*srdf.Graph, *Index, error) {
	for i := range tg.Buffers {
		if tg.Buffers[i].EffectiveProd() != 1 || tg.Buffers[i].EffectiveCons() != 1 {
			// Multi-rate graphs go through the HSDF expansion. The Period of
			// such a graph is interpreted as the iteration period: task w
			// completes q(w) firings per Period.
			return buildExpandedGraph(c, tg, m)
		}
	}
	g := srdf.NewGraph()
	idx := &Index{
		Tasks:   make(map[string]TaskActors, len(tg.Tasks)),
		Buffers: make(map[string]BufferEdges, len(tg.Buffers)),
	}
	for i := range tg.Tasks {
		w := &tg.Tasks[i]
		p, ok := c.Processor(w.Processor)
		if !ok {
			return nil, nil, fmt.Errorf("dfmodel: task %q on unknown processor %q", w.Name, w.Processor)
		}
		beta, ok := m.Budgets[w.Name]
		if !ok {
			return nil, nil, fmt.Errorf("dfmodel: no budget for task %q", w.Name)
		}
		if beta <= 0 {
			return nil, nil, fmt.Errorf("dfmodel: task %q has non-positive budget %v", w.Name, beta)
		}
		if beta > p.Replenishment+1e-9 {
			return nil, nil, fmt.Errorf("dfmodel: task %q budget %v exceeds replenishment interval %v",
				w.Name, beta, p.Replenishment)
		}
		v1 := g.AddActor(w.Name+".v1", math.Max(0, p.Replenishment-beta))
		v2 := g.AddActor(w.Name+".v2", p.Replenishment*w.WCET/beta)
		g.AddEdge(w.Name+".v1v2", v1, v2, 0)
		g.AddEdge(w.Name+".loop", v2, v2, 1)
		idx.Tasks[w.Name] = TaskActors{V1: v1, V2: v2}
	}
	for i := range tg.Buffers {
		b := &tg.Buffers[i]
		gamma, ok := m.Capacities[b.Name]
		if !ok {
			return nil, nil, fmt.Errorf("dfmodel: no capacity for buffer %q", b.Name)
		}
		if gamma < 1 {
			return nil, nil, fmt.Errorf("dfmodel: buffer %q has capacity %d < 1", b.Name, gamma)
		}
		if gamma < b.InitialTokens {
			return nil, nil, fmt.Errorf("dfmodel: buffer %q capacity %d below initial tokens %d",
				b.Name, gamma, b.InitialTokens)
		}
		from := idx.Tasks[b.From]
		to := idx.Tasks[b.To]
		data := g.AddEdge(b.Name+".data", from.V2, to.V1, b.InitialTokens)
		space := g.AddEdge(b.Name+".space", to.V2, from.V1, gamma-b.InitialTokens)
		idx.Buffers[b.Name] = BufferEdges{Data: data, Space: space}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, idx, nil
}

// Verification is the result of independently checking a mapping against a
// configuration.
type Verification struct {
	OK bool
	// Problems lists human-readable constraint violations (empty when OK).
	Problems []string
	// GraphMinPeriods maps task graph name to the minimum feasible period of
	// its SRDF model under the mapping (must be ≤ the graph's Period).
	GraphMinPeriods map[string]float64
	// ProcessorLoads maps processor name to overhead + Σ budgets (must be ≤
	// the replenishment interval).
	ProcessorLoads map[string]float64
	// MemoryUse maps memory name to Σ γ(b)·ζ(b) (must be ≤ capacity).
	MemoryUse map[string]int
}

// VerifyTol is the relative tolerance used by Verify when comparing the
// model's minimum period against the requirement and processor loads against
// the replenishment interval. The optimizer computes real-valued budgets to
// a feasibility tolerance of about 1e-7, so a rounded mapping can sit on a
// binding cycle within that noise; 1e-6 (one part per million of the period)
// absorbs it while still catching every real violation.
const VerifyTol = 1e-6

// Verify checks a mapping end to end: per-graph throughput via SRDF
// analysis, per-processor budget capacity (Constraint 4 with overhead), and
// per-memory storage capacity. It never modifies its inputs.
func Verify(c *taskgraph.Config, m *taskgraph.Mapping) (*Verification, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	v := &Verification{
		OK:              true,
		GraphMinPeriods: map[string]float64{},
		ProcessorLoads:  map[string]float64{},
		MemoryUse:       map[string]int{},
	}
	fail := func(format string, args ...any) {
		v.OK = false
		v.Problems = append(v.Problems, fmt.Sprintf(format, args...))
	}

	for _, tg := range c.Graphs {
		g, _, err := BuildGraph(c, tg, m)
		if err != nil {
			return nil, err
		}
		mp, err := g.MinPeriod()
		if err == srdf.ErrDeadlock {
			fail("graph %s: dataflow model deadlocks", tg.Name)
			continue
		}
		if err != nil {
			return nil, err
		}
		v.GraphMinPeriods[tg.Name] = mp
		if mp > tg.Period*(1+VerifyTol) {
			fail("graph %s: minimum period %.6g exceeds required period %.6g", tg.Name, mp, tg.Period)
		}
	}

	for i := range c.Processors {
		p := &c.Processors[i]
		load := p.Overhead
		for _, tn := range c.TasksOn(p.Name) {
			load += m.Budgets[tn]
		}
		v.ProcessorLoads[p.Name] = load
		if load > p.Replenishment*(1+VerifyTol) {
			fail("processor %s: load %.6g exceeds replenishment interval %.6g", p.Name, load, p.Replenishment)
		}
	}

	for i := range c.Memories {
		mem := &c.Memories[i]
		use := 0
		for _, tg := range c.Graphs {
			for j := range tg.Buffers {
				b := &tg.Buffers[j]
				if b.Memory == mem.Name {
					use += m.Capacities[b.Name] * b.EffectiveContainerSize()
				}
			}
		}
		v.MemoryUse[mem.Name] = use
		if use > mem.Capacity {
			fail("memory %s: use %d exceeds capacity %d", mem.Name, use, mem.Capacity)
		}
	}

	// Per-buffer bounds.
	for _, tg := range c.Graphs {
		for j := range tg.Buffers {
			b := &tg.Buffers[j]
			gamma := m.Capacities[b.Name]
			if b.MaxContainers > 0 && gamma > b.MaxContainers {
				fail("buffer %s: capacity %d exceeds cap %d", b.Name, gamma, b.MaxContainers)
			}
			if b.MinContainers > 0 && gamma < b.MinContainers {
				fail("buffer %s: capacity %d below minimum %d", b.Name, gamma, b.MinContainers)
			}
		}
	}

	// Latency constraints: the best schedule of the rounded mapping must
	// meet each bound.
	for _, tg := range c.Graphs {
		for _, lc := range tg.Latencies {
			lat, err := LatencyBound(c, tg, m, lc.From, lc.To)
			if err != nil {
				fail("latency %s→%s: %v", lc.From, lc.To, err)
				continue
			}
			if lat > lc.Bound*(1+VerifyTol) {
				fail("latency %s→%s: %.6g exceeds bound %.6g", lc.From, lc.To, lat, lc.Bound)
			}
		}
	}
	return v, nil
}
