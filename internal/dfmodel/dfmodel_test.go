package dfmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/taskgraph"
)

// t1Config is the paper's producer-consumer configuration.
func t1Config() *taskgraph.Config {
	return &taskgraph.Config{
		Processors: []taskgraph.Processor{
			{Name: "p1", Replenishment: 40},
			{Name: "p2", Replenishment: 40},
		},
		Memories: []taskgraph.Memory{{Name: "m1", Capacity: 1000}},
		Graphs: []*taskgraph.TaskGraph{{
			Name:   "T1",
			Period: 10,
			Tasks: []taskgraph.Task{
				{Name: "wa", Processor: "p1", WCET: 1},
				{Name: "wb", Processor: "p2", WCET: 1},
			},
			Buffers: []taskgraph.Buffer{
				{Name: "bab", From: "wa", To: "wb", Memory: "m1"},
			},
		}},
	}
}

func mapping(beta float64, gamma int) *taskgraph.Mapping {
	return &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": beta, "wb": beta},
		Capacities: map[string]int{"bab": gamma},
	}
}

func TestBuildGraphStructure(t *testing.T) {
	c := t1Config()
	g, idx, err := BuildGraph(c, c.Graphs[0], mapping(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	// 2 actors per task, 2 intra-task edges per task + 2 per buffer.
	if g.NumActors() != 4 {
		t.Fatalf("actors = %d, want 4", g.NumActors())
	}
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
	wa := idx.Tasks["wa"]
	if got := g.Actor(wa.V1).Duration; got != 30 {
		t.Fatalf("v1 duration = %v, want 40-10 = 30", got)
	}
	if got := g.Actor(wa.V2).Duration; got != 4 {
		t.Fatalf("v2 duration = %v, want 40·1/10 = 4", got)
	}
	be := idx.Buffers["bab"]
	if g.Edge(be.Data).Tokens != 0 {
		t.Fatalf("data tokens = %d, want ι = 0", g.Edge(be.Data).Tokens)
	}
	if g.Edge(be.Space).Tokens != 5 {
		t.Fatalf("space tokens = %d, want γ−ι = 5", g.Edge(be.Space).Tokens)
	}
}

func TestBuildGraphInitialTokens(t *testing.T) {
	c := t1Config()
	c.Graphs[0].Buffers[0].InitialTokens = 2
	g, idx, err := BuildGraph(c, c.Graphs[0], mapping(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	be := idx.Buffers["bab"]
	if g.Edge(be.Data).Tokens != 2 || g.Edge(be.Space).Tokens != 3 {
		t.Fatalf("tokens: data %d space %d, want 2 and 3", g.Edge(be.Data).Tokens, g.Edge(be.Space).Tokens)
	}
}

func TestBuildGraphRejects(t *testing.T) {
	c := t1Config()
	if _, _, err := BuildGraph(c, c.Graphs[0], mapping(0, 5)); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, _, err := BuildGraph(c, c.Graphs[0], mapping(41, 5)); err == nil {
		t.Fatal("budget above replenishment accepted")
	}
	if _, _, err := BuildGraph(c, c.Graphs[0], mapping(10, 0)); err == nil {
		t.Fatal("zero capacity accepted")
	}
	m := mapping(10, 5)
	delete(m.Budgets, "wb")
	if _, _, err := BuildGraph(c, c.Graphs[0], m); err == nil {
		t.Fatal("missing budget accepted")
	}
	m2 := mapping(10, 5)
	delete(m2.Capacities, "bab")
	if _, _, err := BuildGraph(c, c.Graphs[0], m2); err == nil {
		t.Fatal("missing capacity accepted")
	}
	c.Graphs[0].Buffers[0].InitialTokens = 9
	if _, _, err := BuildGraph(c, c.Graphs[0], mapping(10, 5)); err == nil {
		t.Fatal("capacity below initial tokens accepted")
	}
}

// TestMinPeriodMatchesAnalytic: the SRDF model's minimum period must equal
// max(cycle through both tasks, self-loop rate) — the formula from
// DESIGN.md §3.
func TestMinPeriodMatchesAnalytic(t *testing.T) {
	c := t1Config()
	for _, tc := range []struct {
		beta  float64
		gamma int
	}{
		{36.2, 1}, {31.5, 2}, {10, 5}, {4.5, 9}, {4, 10}, {40, 1},
	} {
		g, _, err := BuildGraph(c, c.Graphs[0], mapping(tc.beta, tc.gamma))
		if err != nil {
			t.Fatal(err)
		}
		mp, err := g.MinPeriod()
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(
			(2*(40-tc.beta)+2*40/tc.beta)/float64(tc.gamma),
			40/tc.beta)
		if math.Abs(mp-want) > 1e-8*math.Max(1, want) {
			t.Fatalf("β=%v γ=%d: MinPeriod = %v, want %v", tc.beta, tc.gamma, mp, want)
		}
	}
}

func TestVerifyAcceptsGoodMapping(t *testing.T) {
	c := t1Config()
	// β = 36.2, γ = 1 satisfies the d=1 bound (β* ≈ 36.108).
	v, err := Verify(c, mapping(36.2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("verification failed: %v", v.Problems)
	}
	if v.GraphMinPeriods["T1"] > 10 {
		t.Fatalf("min period %v > 10", v.GraphMinPeriods["T1"])
	}
	if v.ProcessorLoads["p1"] != 36.2 {
		t.Fatalf("processor load %v", v.ProcessorLoads["p1"])
	}
	if v.MemoryUse["m1"] != 1 {
		t.Fatalf("memory use %v", v.MemoryUse["m1"])
	}
}

func TestVerifyRejectsThroughputViolation(t *testing.T) {
	c := t1Config()
	// β = 20, γ = 1: cycle mean = (2·20 + 2·2)/1 = 44 > 10.
	v, err := Verify(c, mapping(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("throughput-violating mapping accepted")
	}
	found := false
	for _, p := range v.Problems {
		if strings.Contains(p, "minimum period") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a period problem, got %v", v.Problems)
	}
}

func TestVerifyRejectsOverload(t *testing.T) {
	c := t1Config()
	// Two tasks on the same processor with budgets summing over 40.
	c.Graphs[0].Tasks[1].Processor = "p1"
	v, err := Verify(c, mapping(25, 10))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("overloaded processor accepted")
	}
}

func TestVerifyRejectsMemoryOverflow(t *testing.T) {
	c := t1Config()
	c.Memories[0].Capacity = 3
	v, err := Verify(c, mapping(36.2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("memory overflow accepted")
	}
}

func TestVerifyRejectsCapViolations(t *testing.T) {
	c := t1Config()
	c.Graphs[0].Buffers[0].MaxContainers = 3
	v, err := Verify(c, mapping(36.2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("capacity above MaxContainers accepted")
	}
	c2 := t1Config()
	c2.Graphs[0].Buffers[0].MinContainers = 5
	v2, err := Verify(c2, mapping(36.2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if v2.OK {
		t.Fatal("capacity below MinContainers accepted")
	}
}

func TestVerifyOverheadCounts(t *testing.T) {
	c := t1Config()
	c.Processors[0].Overhead = 10
	// β = 36.2 + overhead 10 > 40.
	v, err := Verify(c, mapping(36.2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatal("overhead-violating load accepted")
	}
}

func TestVerifyInvalidConfig(t *testing.T) {
	c := t1Config()
	c.Graphs = nil
	if _, err := Verify(c, mapping(10, 5)); err == nil {
		t.Fatal("invalid config accepted")
	}
}
