package lp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cone"
	"repro/internal/linalg"
	"repro/internal/socp"
)

// TestSimplexAgreesWithIPM cross-validates the two independent solvers on
// random feasible bounded LPs: the interior-point method from internal/socp
// restricted to the orthant must find the same optimal value as the simplex.
func TestSimplexAgreesWithIPM(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	agree := 0
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := n + 1 + rng.Intn(7)
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 3
		}
		a := make([][]float64, 0, m+n+1)
		b := make([]float64, 0, m+n+1)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			var dot float64
			for j := range row {
				row[j] = rng.NormFloat64()
				dot += row[j] * x0[j]
			}
			a = append(a, row)
			b = append(b, dot+0.1+rng.Float64())
		}
		// x ≥ 0 rows for the conic form (-x ≤ 0) and a bounding box.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = -1
			a = append(a, row)
			b = append(b, 0)
			row2 := make([]float64, n)
			row2[j] = 1
			a = append(a, row2)
			b = append(b, x0[j]+20)
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}

		// Simplex (x ≥ 0 is implicit; the extra rows are harmless).
		sSol, err := Solve(&Problem{C: c, A: a, B: b})
		if err != nil {
			t.Fatalf("trial %d simplex: %v", trial, err)
		}
		if sSol.Status != StatusOptimal {
			t.Fatalf("trial %d simplex status: %v", trial, sSol.Status)
		}

		// IPM over the orthant cone.
		g := linalg.NewMatrix(len(a), n)
		h := linalg.NewVector(len(a))
		for i, row := range a {
			copy(g.Row(i), row)
			h[i] = b[i]
		}
		ip := &socp.Problem{
			C: linalg.Vector(c).Clone(), G: g, H: h,
			Dims: cone.Dims{NonNeg: len(a)},
		}
		iSol, err := socp.Solve(ip, socp.Options{})
		if err != nil {
			t.Fatalf("trial %d ipm: %v", trial, err)
		}
		if iSol.Status != socp.StatusOptimal {
			t.Fatalf("trial %d ipm status: %v", trial, iSol.Status)
		}
		if math.Abs(iSol.PrimalObj-sSol.Obj) > 1e-5*math.Max(1, math.Abs(sSol.Obj)) {
			t.Fatalf("trial %d: IPM obj %v != simplex obj %v", trial, iSol.PrimalObj, sSol.Obj)
		}
		agree++
	}
	if agree != 60 {
		t.Fatalf("only %d/60 trials agreed", agree)
	}
}
