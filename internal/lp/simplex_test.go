package lp

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestTrivial(t *testing.T) {
	// min -x s.t. x <= 5, x >= 0 → x = 5.
	p := &Problem{C: []float64{-1}, A: [][]float64{{1}}, B: []float64{5}}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !almostEqual(s.X[0], 5, 1e-9) {
		t.Fatalf("got %v x=%v", s.Status, s.X)
	}
}

func TestClassic2D(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6 → (1.6, 1.2), obj 2.8.
	p := &Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 2}, {3, 1}},
		B: []float64{4, 6},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal {
		t.Fatalf("status %v", s.Status)
	}
	if !almostEqual(s.X[0], 1.6, 1e-9) || !almostEqual(s.X[1], 1.2, 1e-9) {
		t.Fatalf("x = %v", s.X)
	}
	if !almostEqual(s.Obj, -2.8, 1e-9) {
		t.Fatalf("obj = %v", s.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -2 (x >= 2).
	p := &Problem{C: []float64{1}, A: [][]float64{{1}, {-1}}, B: []float64{1, -2}}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. -x <= 0 (x >= 0, no upper bound).
	p := &Problem{C: []float64{-1}, A: [][]float64{{-1}}, B: []float64{0}}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -3 (as -x <= 3), x free → x = -3.
	p := &Problem{
		C:    []float64{1},
		A:    [][]float64{{-1}},
		B:    []float64{3},
		Free: []bool{true},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !almostEqual(s.X[0], -3, 1e-9) {
		t.Fatalf("got %v x=%v", s.Status, s.X)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x+y s.t. -x-y <= -4 (x+y >= 4), x,y >= 0 → obj 4.
	p := &Problem{
		C: []float64{1, 1},
		A: [][]float64{{-1, -1}},
		B: []float64{-4},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !almostEqual(s.Obj, 4, 1e-9) {
		t.Fatalf("got %v obj=%v", s.Status, s.Obj)
	}
}

func TestDegenerate(t *testing.T) {
	// Degenerate vertex: several constraints meet at the optimum; Bland's
	// rule must terminate.
	p := &Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{1, 1, 2},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != StatusOptimal || !almostEqual(s.Obj, -2, 1e-9) {
		t.Fatalf("got %v obj=%v", s.Status, s.Obj)
	}
}

func TestValidate(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("empty problem accepted")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Fatal("bounds mismatch accepted")
	}
	if _, err := Solve(&Problem{C: []float64{1}, A: nil, B: nil, Free: []bool{true, false}}); err == nil {
		t.Fatal("Free length mismatch accepted")
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" ||
		StatusUnbounded.String() != "unbounded" || Status(9).String() != "Status(9)" {
		t.Fatal("Status.String broken")
	}
}

// Randomized sanity: generate feasible bounded LPs with known interior point
// and verify the simplex solution is feasible and no worse than that point.
func TestRandomFeasibleBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		m := n + 1 + rng.Intn(6)
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 2
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			var dot float64
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
				dot += a[i][j] * x0[j]
			}
			b[i] = dot + 0.1 + rng.Float64()
		}
		// Bounded: add sum(x) <= big.
		row := make([]float64, n)
		for j := range row {
			row[j] = 1
		}
		a = append(a, row)
		var s0 float64
		for _, v := range x0 {
			s0 += v
		}
		b = append(b, s0+10)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		p := &Problem{C: c, A: a, B: b}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		// Feasibility.
		for i := range a {
			var dot float64
			for j := range a[i] {
				dot += a[i][j] * s.X[j]
			}
			if dot > b[i]+1e-6 {
				t.Fatalf("trial %d: row %d violated: %v > %v", trial, i, dot, b[i])
			}
		}
		for j, v := range s.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v < 0", trial, j, v)
			}
		}
		// Optimality vs. the known feasible x0.
		var obj0 float64
		for j := range c {
			obj0 += c[j] * x0[j]
		}
		if s.Obj > obj0+1e-6 {
			t.Fatalf("trial %d: obj %v worse than feasible point %v", trial, s.Obj, obj0)
		}
	}
}
