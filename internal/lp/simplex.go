// Package lp implements a dense two-phase primal simplex solver for linear
// programs in inequality form
//
//	minimize    cᵀx
//	subject to  A x ≤ b,   x free or x ≥ 0 per variable.
//
// It exists for two reasons: (1) it independently cross-validates the
// interior-point solver in internal/socp on the LP subclass, and (2) it is
// the buffer-sizing engine of the classical two-phase mapping baseline that
// the paper improves upon (budgets fixed first, buffer sizes by LP second).
//
// The implementation converts the program to standard computational form
// (free variables split, slacks added), runs a Phase-I simplex to find a
// basic feasible point, then Phase-II with Bland's anti-cycling rule.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

const (
	// StatusOptimal: an optimal basic solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible: the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded: the objective is unbounded below.
	StatusUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is an LP in inequality form. Rows of A paired with entries of B are
// the constraints Aᵢ·x ≤ Bᵢ. Free[i] marks variable i as unrestricted in
// sign; otherwise xᵢ ≥ 0.
type Problem struct {
	C    []float64
	A    [][]float64
	B    []float64
	Free []bool // optional; nil means all variables ≥ 0
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// Validate checks the problem shapes.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: no variables")
	}
	if len(p.B) != len(p.A) {
		return fmt.Errorf("lp: %d constraint rows but %d bounds", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if p.Free != nil && len(p.Free) != n {
		return fmt.Errorf("lp: Free has length %d, want %d", len(p.Free), n)
	}
	return nil
}

const pivotEps = 1e-9

// Solve runs the two-phase simplex method.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	m := len(p.A)

	// Map to computational variables: x_i = u_i (− v_i when free), u,v ≥ 0.
	// Column layout: for each original variable, one or two columns.
	type colRef struct {
		orig int
		sign float64
	}
	var cols []colRef
	for j := 0; j < n; j++ {
		cols = append(cols, colRef{j, 1})
		if p.Free != nil && p.Free[j] {
			cols = append(cols, colRef{j, -1})
		}
	}
	nc := len(cols)

	// Standard form: A' y + s = b, y ≥ 0, s ≥ 0 (slack per row). Make b ≥ 0
	// by negating rows... rows with b < 0 get an artificial variable in
	// Phase I instead of the slack as the basis column.
	// Tableau columns: [structural (nc) | slacks (m) | artificials (≤m)].
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, nc)
		for k, cr := range cols {
			a[i][k] = p.A[i][cr.orig] * cr.sign
		}
		b[i] = p.B[i]
	}

	// Negate rows with negative rhs so b ≥ 0; slack coefficient becomes −1.
	slackSign := make([]float64, m)
	for i := 0; i < m; i++ {
		slackSign[i] = 1
		if b[i] < 0 {
			for k := range a[i] {
				a[i][k] = -a[i][k]
			}
			b[i] = -b[i]
			slackSign[i] = -1
		}
	}

	// Build the full tableau with slacks and artificials.
	nArt := 0
	artAt := make([]int, m) // artificial column index per row, -1 if none
	for i := 0; i < m; i++ {
		if slackSign[i] < 0 {
			artAt[i] = nArt
			nArt++
		} else {
			artAt[i] = -1
		}
	}
	total := nc + m + nArt
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, total)
		copy(t[i], a[i])
		t[i][nc+i] = slackSign[i]
		if artAt[i] >= 0 {
			t[i][nc+m+artAt[i]] = 1
			basis[i] = nc + m + artAt[i]
		} else {
			basis[i] = nc + i
		}
	}

	iterations := 0

	// pivot performs a pivot on (row, col).
	pivot := func(row, col int) {
		pv := t[row][col]
		inv := 1 / pv
		for k := range t[row] {
			t[row][k] *= inv
		}
		b[row] *= inv
		for i := range t {
			if i == row {
				continue
			}
			f := t[i][col]
			if f == 0 {
				continue
			}
			for k := range t[i] {
				t[i][k] -= f * t[row][k]
			}
			b[i] -= f * b[row]
		}
		basis[row] = col
		iterations++
	}

	// runSimplex minimizes cost over the current tableau. allowed limits the
	// eligible entering columns. Returns false if unbounded.
	runSimplex := func(cost []float64, allowed int) bool {
		for {
			// Reduced costs: r_j = cost_j − cost_B·t_col.
			cb := make([]float64, m)
			for i := 0; i < m; i++ {
				cb[i] = cost[basis[i]]
			}
			enter := -1
			for j := 0; j < allowed; j++ {
				r := cost[j]
				for i := 0; i < m; i++ {
					r -= cb[i] * t[i][j]
				}
				if r < -pivotEps {
					enter = j // Bland: first improving column
					break
				}
			}
			if enter < 0 {
				return true
			}
			// Ratio test with Bland's rule (smallest basis index tie-break).
			leave := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if t[i][enter] > pivotEps {
					ratio := b[i] / t[i][enter]
					if ratio < best-pivotEps || (math.Abs(ratio-best) <= pivotEps &&
						(leave < 0 || basis[i] < basis[leave])) {
						best = ratio
						leave = i
					}
				}
			}
			if leave < 0 {
				return false // unbounded
			}
			pivot(leave, enter)
			if iterations > 50000 {
				// Safety valve; Bland's rule prevents cycling, so this
				// indicates a pathological instance size.
				return true
			}
		}
	}

	// Phase I: minimize the sum of artificials.
	if nArt > 0 {
		cost1 := make([]float64, total)
		for j := nc + m; j < total; j++ {
			cost1[j] = 1
		}
		runSimplex(cost1, total)
		var inf float64
		for i := 0; i < m; i++ {
			if basis[i] >= nc+m {
				inf += b[i]
			}
		}
		if inf > 1e-7 {
			return &Solution{Status: StatusInfeasible, Iterations: iterations}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if basis[i] < nc+m {
				continue
			}
			done := false
			for j := 0; j < nc+m && !done; j++ {
				if math.Abs(t[i][j]) > pivotEps {
					pivot(i, j)
					done = true
				}
			}
			// A fully zero row is redundant; its artificial stays basic at 0.
		}
	}

	// Phase II on the structural + slack columns only.
	cost2 := make([]float64, total)
	for k, cr := range cols {
		cost2[k] = p.C[cr.orig] * cr.sign
	}
	if !runSimplex(cost2, nc+m) {
		return &Solution{Status: StatusUnbounded, Iterations: iterations}, nil
	}

	// Extract the solution.
	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < nc {
			cr := cols[basis[i]]
			x[cr.orig] += cr.sign * b[i]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{Status: StatusOptimal, X: x, Obj: obj, Iterations: iterations}, nil
}
