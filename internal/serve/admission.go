package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Admission control is a bounded worker pool behind a fixed-depth queue.
// The invariant the robustness layer hangs off is simple: the server never
// buffers more than QueueDepth requests beyond the Workers in flight. A
// request that would exceed that is rejected synchronously with 429 and a
// Retry-After computed from the moving p95 solve latency — load is shed at
// the door, in O(1), instead of accumulating into unbounded memory and
// collapsing tail latency for everyone (the classic overload failure).

// errQueueFull is returned by submit when the queue is at depth.
var errQueueFull = errors.New("serve: queue full")

// errDraining is returned by submit once the server stopped admissions.
var errDraining = errors.New("serve: draining")

// job is one admitted unit of work. fn runs on a worker goroutine and must
// store its outcome somewhere the submitter can read after done closes; it
// must not touch the HTTP response writer.
type job struct {
	ctx  context.Context
	fn   func(ctx context.Context)
	done chan struct{}
}

// pool is the bounded worker pool plus the admission gate.
type pool struct {
	queue chan *job

	mu       sync.RWMutex // guards draining against in-progress submits
	draining bool

	inflight sync.WaitGroup // accepted-but-unfinished jobs
	workers  sync.WaitGroup // worker goroutines

	queued  atomic.Int64
	running atomic.Int64
}

// newPool starts workers goroutines serving a queue of the given depth.
func newPool(workers, depth int) *pool {
	p := &pool{queue: make(chan *job, depth)}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		// Joined by p.workers.Wait() in drain, the pool's only shutdown path.
		//bbvet:allow leakcheck workers are joined in drain, not in the constructor
		go p.worker()
	}
	return p
}

// submit admits a job or rejects it synchronously: errQueueFull when the
// queue is at depth, errDraining once admissions stopped. It never blocks.
func (p *pool) submit(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return errDraining
	}
	// inflight.Add must precede the send: a worker may finish the job (and
	// call Done) before this goroutine runs again.
	p.inflight.Add(1)
	select {
	case p.queue <- j:
		p.queued.Add(1)
		return nil
	default:
		p.inflight.Add(-1)
		return errQueueFull
	}
}

// worker drains the queue until it is closed by drain.
func (p *pool) worker() {
	defer p.workers.Done()
	for j := range p.queue {
		p.queued.Add(-1)
		p.running.Add(1)
		p.runJob(j)
		p.running.Add(-1)
		p.inflight.Done()
		close(j.done)
	}
}

// runJob executes one job. The job's own fn already isolates solve-level
// panics into structured responses; this outer recover is the last line of
// defense that keeps a worker goroutine alive no matter what.
func (p *pool) runJob(j *job) {
	defer func() { recover() }()
	j.fn(j.ctx)
}

// beginDrain stops admissions. Safe to call more than once; after it
// returns, no submit can enqueue (in-progress submits hold the read lock,
// so acquiring the write lock serializes against them).
func (p *pool) beginDrain() {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// drain stops admissions, waits for every accepted job to finish, and
// shuts the workers down. If ctx expires first, force is called (the
// server cancels all in-flight job contexts through it) and drain keeps
// waiting for the — now canceled — jobs to come back before returning
// ctx's error. A nil return means every job finished on its own.
func (p *pool) drain(ctx context.Context, force func()) error {
	p.beginDrain()
	idle := make(chan struct{})
	go func() {
		p.inflight.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
		force()
		<-idle
	}
	// No submit can send anymore (beginDrain serialized against them), so
	// closing the queue is safe and stops the workers.
	close(p.queue)
	p.workers.Wait()
	return err
}

// stats snapshots the queue gauges.
func (p *pool) stats() (queued, running int64) {
	return p.queued.Load(), p.running.Load()
}

// latency is a fixed-window moving latency record: the last Window
// completed solves, quantiles by sorting a scratch copy. Small, exact, and
// cheap at serving rates where the solve itself dominates by orders of
// magnitude.
type latency struct {
	mu      sync.Mutex
	buf     []time.Duration // ring
	n       int             // filled entries
	next    int             // ring cursor
	scratch []time.Duration
}

func newLatency(window int) *latency {
	return &latency{
		buf:     make([]time.Duration, window),
		scratch: make([]time.Duration, 0, window),
	}
}

// observe records one completed solve's latency.
func (l *latency) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) of the window, or 0 while
// the window is empty.
func (l *latency) quantile(q float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.n == 0 {
		return 0
	}
	l.scratch = append(l.scratch[:0], l.buf[:l.n]...)
	sort.Slice(l.scratch, func(i, j int) bool { return l.scratch[i] < l.scratch[j] })
	idx := int(q * float64(l.n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= l.n {
		idx = l.n - 1
	}
	return l.scratch[idx]
}

// count returns the number of observations in the window.
func (l *latency) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// retryAfterSec estimates when a shed request should come back: the
// pending work (queued + running), paced through workers lanes at the
// moving p95 solve latency, rounded up to whole seconds and floored at 1
// (Retry-After is integral and "0" would invite an immediate hammer).
// With an empty latency window the p95 defaults to one second.
func retryAfterSec(p95 time.Duration, pending, workers int) int {
	if p95 <= 0 {
		p95 = time.Second
	}
	if workers < 1 {
		workers = 1
	}
	batches := (pending + workers - 1) / workers
	if batches < 1 {
		batches = 1
	}
	wait := time.Duration(batches) * p95
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// hitEnqueue fires the post-admission fault site; see SiteServeEnqueue.
func hitEnqueue() error {
	if !faultinject.Enabled() {
		return nil
	}
	return faultinject.Hit(faultinject.SiteServeEnqueue)
}

// hitJob fires the worker-side fault site, converting an injected panic
// into the same structured form a real solve panic takes; see SiteServeJob.
func hitJob() error {
	if !faultinject.Enabled() {
		return nil
	}
	return faultinject.Hit(faultinject.SiteServeJob)
}

// recoverPanic converts a recovered panic value into the error the
// response layer renders as a structured 500, with the stack captured for
// the server log.
func recoverPanic(r any) error {
	return fmt.Errorf("panic: %v\n%s", r, debug.Stack())
}
