package serve

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/socp"
)

// Synthetic ladder reports for the state-machine unit tests.

func cleanReport() *core.SolveReport {
	return &core.SolveReport{
		Recovered:    false,
		FinalBackend: "supernodal",
		Attempts:     []core.SolveAttempt{{Backend: "supernodal", Status: socp.StatusOptimal}},
	}
}

func recoveredReport(final string) *core.SolveReport {
	return &core.SolveReport{
		Recovered:    true,
		FinalBackend: final,
		Attempts: []core.SolveAttempt{
			{Backend: "supernodal", Status: socp.StatusNumericalError},
			{Backend: final, Status: socp.StatusOptimal},
		},
	}
}

func canceledReport() *core.SolveReport {
	return &core.SolveReport{
		Attempts: []core.SolveAttempt{{Backend: "supernodal", Status: socp.StatusCanceled}},
	}
}

// TestBreakerStateMachine walks the full closed → open → probe → closed
// cycle on the unit level, where every transition is a plain method call.
func TestBreakerStateMachine(t *testing.T) {
	const trip, probeEvery = 3, 2
	p := &pattern{}

	// Three consecutive recoveries open the breaker.
	for i := 0; i < trip; i++ {
		mode, _ := p.plan(probeEvery)
		if mode != modeNormal {
			t.Fatalf("request %d routed %v before trip", i, mode)
		}
		p.record(mode, recoveredReport("dense-factor"), trip)
	}
	if !p.open {
		t.Fatal("breaker closed after trip consecutive recoveries")
	}

	// Open: the first open-state request degrades to the known-good rung...
	mode, backend := p.plan(probeEvery)
	if mode != modeDegraded || backend != "dense-factor" {
		t.Fatalf("open-state routing %v/%q, want degraded/dense-factor", mode, backend)
	}
	p.record(mode, cleanReport(), trip)
	if !p.open {
		t.Fatal("a clean degraded solve must not close the breaker")
	}

	// ...and the probeEvery-th becomes the half-open probe.
	mode, _ = p.plan(probeEvery)
	if mode != modeProbe {
		t.Fatalf("routing %v, want probe on the %d-th open-state request", mode, probeEvery)
	}
	// A probe that still needs the ladder keeps the breaker open and follows
	// the rung that worked.
	p.record(mode, recoveredReport("dense-kkt"), trip)
	if !p.open || p.goodBackend != "dense-kkt" {
		t.Fatalf("after failed probe: open=%v good=%q, want open/dense-kkt", p.open, p.goodBackend)
	}

	// Walk to the next probe; a clean probe closes the breaker.
	if mode, _ = p.plan(probeEvery); mode != modeDegraded {
		t.Fatalf("routing %v, want degraded between probes", mode)
	}
	p.record(modeDegraded, cleanReport(), trip)
	mode, _ = p.plan(probeEvery)
	if mode != modeProbe {
		t.Fatalf("routing %v, want probe", mode)
	}
	p.record(mode, cleanReport(), trip)
	if p.open {
		t.Fatal("clean probe left the breaker open")
	}
	if p.consecutive != 0 {
		t.Fatalf("consecutive %d after close, want 0", p.consecutive)
	}
}

// TestBreakerIgnoresNonSignals pins the transitions that must NOT happen: a
// canceled solve and an exhausted ladder carry no routing signal.
func TestBreakerIgnoresNonSignals(t *testing.T) {
	const trip = 2
	p := &pattern{}

	p.record(modeNormal, recoveredReport("dense-factor"), trip)
	// Cancellations between recoveries neither reset nor advance the streak.
	p.record(modeNormal, canceledReport(), trip)
	if p.consecutive != 1 {
		t.Fatalf("consecutive %d after cancel, want 1 (no signal)", p.consecutive)
	}
	// An exhausted ladder (no recovery, terminal error) names no good rung;
	// the breaker must not open on it even at the trip threshold.
	p.record(modeNormal, &core.SolveReport{
		Recovered:    false,
		FinalBackend: "dense-kkt",
		Attempts:     []core.SolveAttempt{{Backend: "dense-kkt", Status: socp.StatusNumericalError}},
	}, trip)
	if p.open {
		t.Fatal("breaker opened on an exhausted ladder with no good backend")
	}
	// A clean solve resets the streak.
	p.record(modeNormal, cleanReport(), trip)
	if p.consecutive != 0 {
		t.Fatalf("consecutive %d after clean solve, want 0", p.consecutive)
	}
	// nil and empty reports are no-ops.
	p.record(modeNormal, nil, trip)
	p.record(modeNormal, &core.SolveReport{}, trip)
	if p.open || p.consecutive != 0 {
		t.Fatal("empty reports moved the breaker")
	}
}

// TestBreakerIntegration drives the breaker through real solves: an injected
// sparse-factorization fault makes every solve of one topology recover to
// the dense rung; after BreakerTrip of those the server routes the pattern
// straight to dense-factor (one attempt, no ladder tax), and once the fault
// clears, the scheduled probe closes the breaker again.
func TestBreakerIntegration(t *testing.T) {
	const trip, probeEvery = 2, 2
	s := newTestServer(t, Config{Workers: 1, BreakerTrip: trip, BreakerProbeEvery: probeEvery})
	cfg := gen.Chain(gen.ChainOptions{Tasks: 4})

	// Both sparse pipelines fail: the ladder lands on dense-factor.
	deactivate := faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteSparseLDLT, Kind: faultinject.KindError,
	})
	for i := 0; i < trip; i++ {
		res, mode, err := s.Solve(context.Background(), cfg, false)
		if err != nil || res.Status != core.StatusOptimal {
			t.Fatalf("solve %d: status %v err %v", i, res.Status, err)
		}
		if mode != modeNormal {
			t.Fatalf("solve %d routed %v before trip", i, mode)
		}
		if !res.Report.Recovered || res.Report.FinalBackend != "dense-factor" {
			t.Fatalf("solve %d report %+v, want recovery to dense-factor", i, res.Report)
		}
	}

	// Open: the degraded solve starts directly at dense-factor, so the
	// sparse fault site is never reached and the report shows one clean
	// attempt — the ladder tax is gone while the fault persists.
	res, mode, err := s.Solve(context.Background(), cfg, false)
	if err != nil || res.Status != core.StatusOptimal {
		t.Fatalf("degraded solve: status %v err %v", res.Status, err)
	}
	if mode != modeDegraded {
		t.Fatalf("routed %v, want degraded after trip", mode)
	}
	if res.Report.Recovered || len(res.Report.Attempts) != 1 {
		t.Fatalf("degraded report %+v, want a single clean dense attempt", res.Report)
	}
	if got := res.Report.FinalBackend; got != "dense-factor" {
		t.Fatalf("degraded backend %q, want dense-factor", got)
	}

	// The probe retries the full ladder while the fault persists: it pays
	// the tax once and the breaker stays open.
	res, mode, err = s.Solve(context.Background(), cfg, false)
	if err != nil || res.Status != core.StatusOptimal {
		t.Fatalf("probe solve: status %v err %v", res.Status, err)
	}
	if mode != modeProbe {
		t.Fatalf("routed %v, want probe on the %d-th open request", mode, probeEvery)
	}
	if !res.Report.Recovered {
		t.Fatal("probe under persistent fault did not need recovery")
	}

	// Fault clears. The next open-state request is still degraded, then the
	// following probe comes back clean and closes the breaker.
	deactivate()
	if _, mode, err = s.Solve(context.Background(), cfg, false); err != nil || mode != modeDegraded {
		t.Fatalf("post-clear routing %v err %v, want degraded until the probe", mode, err)
	}
	res, mode, err = s.Solve(context.Background(), cfg, false)
	if err != nil || mode != modeProbe {
		t.Fatalf("routing %v err %v, want probe", mode, err)
	}
	if res.Report.Recovered {
		t.Fatal("clean probe reported recovery")
	}
	res, mode, err = s.Solve(context.Background(), cfg, false)
	if err != nil || mode != modeNormal {
		t.Fatalf("routing %v err %v, want normal after the breaker closed", mode, err)
	}
	if res.Status != core.StatusOptimal {
		t.Fatalf("closed-breaker solve status %v", res.Status)
	}
}

// TestBreakerIsPerPattern checks isolation: tripping one topology's breaker
// must not degrade a different topology.
func TestBreakerIsPerPattern(t *testing.T) {
	const trip = 1
	s := newTestServer(t, Config{Workers: 1, BreakerTrip: trip})
	bad := gen.Chain(gen.ChainOptions{Tasks: 4})
	other := gen.FanOut(gen.FanOutOptions{Width: 3})

	deactivate := faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteSparseLDLT, Kind: faultinject.KindError,
	})
	if _, mode, err := s.Solve(context.Background(), bad, false); err != nil || mode != modeNormal {
		t.Fatalf("trip solve: mode %v err %v", mode, err)
	}
	deactivate()

	if _, mode, err := s.Solve(context.Background(), bad, false); err != nil || mode != modeDegraded {
		t.Fatalf("tripped pattern routed %v err %v, want degraded", mode, err)
	}
	if _, mode, err := s.Solve(context.Background(), other, false); err != nil || mode != modeNormal {
		t.Fatalf("unrelated pattern routed %v err %v, want normal", mode, err)
	}
	patterns, openNow, opensTotal := s.patterns.snapshot()
	if patterns != 2 || openNow != 1 || opensTotal != 1 {
		t.Fatalf("snapshot patterns=%d open=%d opens=%d, want 2/1/1", patterns, openNow, opensTotal)
	}
}
