package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/faultinject"
)

// TestDrainGraceful pins the happy shutdown: drain begins while a request
// is mid-solve; readiness flips and new work is rejected immediately, the
// in-flight request finishes normally, and Drain returns nil.
func TestDrainGraceful(t *testing.T) {
	s := New(Config{Workers: 1})
	gate := make(chan struct{})
	stalled := make(chan struct{})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteServeJob, Kind: faultinject.KindStall,
		Count: 1, Gate: gate, Stalled: stalled,
	})()

	body := SolveRequest{Config: testConfigJSON(t, 3)}
	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() { inflight <- do(s, nil, "POST", "/v1/solve", body) }()
	<-stalled // the request is on a worker, parked

	// Stop admissions synchronously, before Drain starts waiting.
	s.BeginDrain()
	if w := do(s, nil, "GET", "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz %d after BeginDrain, want 503", w.Code)
	}
	if w := do(s, nil, "POST", "/v1/solve", body); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("admission status %d after BeginDrain, want 503", w.Code)
	} else if det := errorCode(t, w); det.Code != CodeDraining {
		t.Fatalf("code %q, want %q", det.Code, CodeDraining)
	}
	if n := s.vars.drainRejects.Load(); n != 1 {
		t.Fatalf("drainRejects %d, want 1", n)
	}
	// Health stays 200 throughout: the process is alive, just not admitting.
	if w := do(s, nil, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz %d during drain, want 200", w.Code)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Release the parked solve; it must complete as if no drain happened.
	close(gate)
	if res := <-inflight; res.Code != http.StatusOK {
		t.Fatalf("in-flight request finished %d during graceful drain: %s", res.Code, res.Body)
	}
	if err := <-drained; err != nil {
		t.Fatalf("graceful drain returned %v, want nil", err)
	}
}

// TestDrainForceCancelsStragglers pins the impatient shutdown: when the
// drain context expires, every in-flight job context is force-canceled, the
// straggler surfaces a 504 to its client, and Drain still waits for it to
// unwind before returning the context error. The "expiry" is a plain cancel
// — no timers anywhere.
func TestDrainForceCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1})
	gate := make(chan struct{})
	stalled := make(chan struct{})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteServeJob, Kind: faultinject.KindStall,
		Count: 1, Gate: gate, Stalled: stalled,
	})()

	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() { inflight <- do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 3)}) }()
	<-stalled // the straggler is parked before its context check

	drainCtx, expire := context.WithCancel(context.Background())
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(drainCtx) }()

	expire()            // the drain bound lapses
	<-s.forceCtx.Done() // Drain has force-canceled the in-flight contexts
	close(gate)         // release the straggler into its dead context

	if res := <-inflight; res.Code != http.StatusGatewayTimeout {
		t.Fatalf("straggler finished %d, want 504 from the forced cancel: %s", res.Code, res.Body)
	} else if det := errorCode(t, res); det.Code != CodeDeadline {
		t.Fatalf("straggler code %q, want %q", det.Code, CodeDeadline)
	}
	if err := <-drained; err != context.Canceled {
		t.Fatalf("forced drain returned %v, want context.Canceled", err)
	}
}

// TestDrainWithQueuedJobs checks that jobs still sitting in the queue when
// drain begins are not dropped: the workers run them to completion before
// Drain returns.
func TestDrainWithQueuedJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	jobGate := make(chan struct{})
	jobStalled := make(chan struct{})
	enqGate := make(chan struct{})
	enqSecond := make(chan struct{})
	defer faultinject.Activate(
		faultinject.Rule{
			Site: faultinject.SiteServeJob, Kind: faultinject.KindStall,
			Count: 1, Gate: jobGate, Stalled: jobStalled,
		},
		faultinject.Rule{
			Site: faultinject.SiteServeEnqueue, Kind: faultinject.KindStall,
			After: 1, Count: 1, Gate: enqGate, Stalled: enqSecond,
		},
	)()

	body := SolveRequest{Config: testConfigJSON(t, 3)}
	first := make(chan *httptest.ResponseRecorder, 1)
	second := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- do(s, nil, "POST", "/v1/solve", body) }()
	<-jobStalled // request 1 parked on the only worker
	go func() { second <- do(s, nil, "POST", "/v1/solve", body) }()
	<-enqSecond // request 2 admitted and queued behind it

	drained := make(chan error, 1)
	go func() {
		s.BeginDrain()
		drained <- s.Drain(context.Background())
	}()

	close(jobGate)
	close(enqGate)
	if res := <-first; res.Code != http.StatusOK {
		t.Fatalf("running request finished %d: %s", res.Code, res.Body)
	}
	if res := <-second; res.Code != http.StatusOK {
		t.Fatalf("queued request finished %d: %s — drain dropped queued work", res.Code, res.Body)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain returned %v, want nil", err)
	}
}
