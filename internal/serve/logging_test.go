package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
)

// logLines decodes the JSON log buffer into one map per line.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var lines []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("bad log line %q: %v", ln, err)
		}
		lines = append(lines, m)
	}
	return lines
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{
		Workers: 1,
		Logger:  slog.New(slog.NewJSONHandler(&buf, nil)),
	})

	if w := do(s, nil, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	req := &SolveRequest{Config: testConfigJSON(t, 3)}
	if w := do(s, nil, http.MethodPost, "/v1/solve", req); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body.String())
	}
	if w := do(s, nil, http.MethodPost, "/v1/solve", "{not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad solve: %d", w.Code)
	}

	lines := logLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("want 3 log lines, got %d: %v", len(lines), lines)
	}
	for i, want := range []struct {
		path   string
		status float64
		level  string
	}{
		{"/healthz", 200, "INFO"},
		{"/v1/solve", 200, "INFO"},
		{"/v1/solve", 400, "WARN"},
	} {
		got := lines[i]
		if got["msg"] != "request" || got["path"] != want.path || got["status"] != want.status || got["level"] != want.level {
			t.Errorf("line %d: want path=%s status=%v level=%s, got %v", i, want.path, want.status, want.level, got)
		}
		for _, key := range []string{"method", "bytes", "latency_ms", "queued", "running"} {
			if _, ok := got[key]; !ok {
				t.Errorf("line %d missing %q: %v", i, key, got)
			}
		}
	}

	// The successful solve line carries the solver-side enrichment: the
	// graph pattern hash, the recovery-ladder rung, and the breaker mode.
	solved := lines[1]
	if p, _ := solved["pattern"].(string); p == "" {
		t.Errorf("solve line has no pattern: %v", solved)
	}
	if r, _ := solved["rung"].(string); r == "" {
		t.Errorf("solve line has no ladder rung: %v", solved)
	}
	// A closed breaker stringifies to "" and is omitted; only degraded
	// routing ("open"/"probe") appears on the line.
	if b, ok := solved["breaker"]; ok && b != "open" && b != "probe" {
		t.Errorf("solve line has unexpected breaker mode %v", b)
	}
	// The malformed request never reached the solver: no enrichment.
	if _, ok := lines[2]["pattern"]; ok {
		t.Errorf("bad-request line carries a pattern: %v", lines[2])
	}
}

func TestNilLoggerDisablesRequestLogging(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(s, nil, http.MethodGet, "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	// Nothing to assert beyond not crashing: the discard handler swallows
	// the line. levelFor still must classify correctly.
	if levelFor(204) != slog.LevelInfo || levelFor(404) != slog.LevelWarn || levelFor(500) != slog.LevelError {
		t.Error("levelFor misclassifies statuses")
	}
}
