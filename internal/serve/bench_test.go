package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/gen"
)

// BenchmarkServeSolveChain100 measures the full daemon path — admission,
// breaker routing, shared pattern cache, JSON in and out — on the 100-task
// chain, and reports serving-style metrics (p50/p95 per-request latency and
// throughput) alongside ns/op so CI can track them via benchjson.
func BenchmarkServeSolveChain100(b *testing.B) {
	s := New(Config{Workers: 1})
	defer func() {
		if err := s.Drain(context.Background()); err != nil {
			b.Fatalf("drain: %v", err)
		}
	}()
	cfgJSON, err := json.Marshal(gen.Chain(gen.ChainOptions{Tasks: 100}))
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(SolveRequest{Config: cfgJSON, SkipVerification: true})
	if err != nil {
		b.Fatal(err)
	}
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("request %d: HTTP %d: %s", i, w.Code, w.Body)
		}
		lat = append(lat, time.Since(t0))
	}
	total := time.Since(start)
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Millisecond)
	}
	b.ReportMetric(q(0.50), "p50-ms")
	b.ReportMetric(q(0.95), "p95-ms")
	b.ReportMetric(float64(b.N)/total.Seconds(), "req/s")
}
