package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/socp"
	"repro/internal/taskgraph"
)

// The /v1 wire format. Requests carry the taskgraph configuration verbatim
// (the same JSON document bbmap -config reads, fuzz-hardened in
// taskgraph.Parse); responses carry the rounded mapping plus the full
// recovery-ladder report, so a client can see not just the answer but how
// hard the solver had to fight for it.

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Config is the JSON encoding of taskgraph.Config.
	Config json.RawMessage `json:"config"`
	// DeadlineMS bounds the solve in milliseconds, measured from admission
	// of the request. It is clamped by the server's -max-deadline; 0 (or
	// absent) selects the server maximum. The Request-Timeout header (in
	// seconds) is an alternative spelling; the body field wins when both
	// are present.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// SkipVerification drops the post-rounding SRDF verification pass.
	SkipVerification bool `json:"skip_verification,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: one solve per buffer-capacity
// cap, the paper's trade-off exploration as a service.
type SweepRequest struct {
	Config json.RawMessage `json:"config"`
	// Buffers names the buffers the cap applies to (all when empty).
	Buffers []string `json:"buffers,omitempty"`
	// Caps lists the MaxContainers values to sweep, one solve each.
	Caps       []int `json:"caps"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SolveResponse is the success body of /v1/solve. Status "optimal" carries
// a mapping; "infeasible" is a definitive no-mapping answer (still HTTP
// 200 — infeasibility is a result, not a failure).
type SolveResponse struct {
	Status              string             `json:"status"`
	Mapping             *taskgraph.Mapping `json:"mapping,omitempty"`
	ContinuousObjective float64            `json:"continuousObjective,omitempty"`
	Iterations          int                `json:"iterations"`
	Report              *Report            `json:"report,omitempty"`
	// Pattern is the configuration's topology hash (hex): requests sharing
	// it share the pattern cache's symbolic work and breaker state.
	Pattern string `json:"pattern"`
	// Breaker is "open" when this solve was routed straight to the
	// pattern's known-good backend, "probe" when it was the half-open
	// probe; absent while the breaker is closed.
	Breaker   string  `json:"breaker,omitempty"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// SweepPoint is one cap's outcome inside a SweepResponse. Points a
// deadline cut off report status "skipped" and no mapping.
type SweepPoint struct {
	Cap                 int                `json:"cap"`
	Status              string             `json:"status"`
	Mapping             *taskgraph.Mapping `json:"mapping,omitempty"`
	ContinuousObjective float64            `json:"continuousObjective,omitempty"`
	Iterations          int                `json:"iterations,omitempty"`
}

// SweepResponse is the body of /v1/sweep — also embedded in a 504 error
// body as the partial result when the deadline lands mid-sweep.
type SweepResponse struct {
	Points []SweepPoint `json:"points"`
	// Completed counts the points that reached a definitive status before
	// the sweep ended.
	Completed int     `json:"completed"`
	Pattern   string  `json:"pattern"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// Report is the JSON rendering of core.SolveReport: every rung of the
// recovery ladder the solve needed.
type Report struct {
	Recovered    bool      `json:"recovered"`
	FinalBackend string    `json:"finalBackend"`
	Attempts     []Attempt `json:"attempts"`
}

// Attempt is one recovery-ladder rung.
type Attempt struct {
	Backend    string  `json:"backend"`
	Status     string  `json:"status"`
	Err        string  `json:"err,omitempty"`
	Iterations int     `json:"iterations"`
	Warm       bool    `json:"warm,omitempty"`
	KKTReg     float64 `json:"kktReg,omitempty"`
	DurationMS float64 `json:"durationMs"`
}

// Error codes of the ErrorResponse body. Each maps to exactly one HTTP
// status, so clients can switch on either.
const (
	// CodeInvalidRequest (400): malformed JSON, an unparsable or invalid
	// configuration, or a model the solver rejects (e.g. multi-rate).
	CodeInvalidRequest = "invalid_request"
	// CodeQueueFull (429): admission control shed the request because the
	// bounded queue is full. Retry-After carries the estimated backoff.
	CodeQueueFull = "queue_full"
	// CodeDraining (503): the server is draining after SIGTERM and admits
	// no new work. /readyz reports the same condition.
	CodeDraining = "draining"
	// CodeDeadline (504): the request's deadline (or the client's
	// disconnect) canceled the solve. The body carries the ladder report
	// and, for sweeps, the completed points.
	CodeDeadline = "deadline"
	// CodePanic (500): the solve panicked; the panic was isolated to this
	// request and the worker kept running.
	CodePanic = "panic"
	// CodeInternal (500): an injected or otherwise internal serve-layer
	// failure before the solver produced a status.
	CodeInternal = "internal"
	// CodeSolverError (500): the recovery ladder was exhausted — every
	// rung failed numerically — or verification of the rounded mapping
	// failed. The report names every attempt.
	CodeSolverError = "solver_error"
)

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable failure.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSec mirrors the Retry-After header on 429 responses.
	RetryAfterSec int `json:"retryAfterSec,omitempty"`
	// Report is the recovery-ladder record when the solver ran at all.
	Report *Report `json:"report,omitempty"`
	// Partial carries the completed sweep points of a deadline-cut sweep.
	Partial *SweepResponse `json:"partial,omitempty"`
}

// reportJSON converts a ladder report for the wire; nil stays nil.
func reportJSON(rep *core.SolveReport) *Report {
	if rep == nil {
		return nil
	}
	out := &Report{
		Recovered:    rep.Recovered,
		FinalBackend: rep.FinalBackend,
		Attempts:     make([]Attempt, len(rep.Attempts)),
	}
	for i, a := range rep.Attempts {
		out.Attempts[i] = Attempt{
			Backend:    a.Backend,
			Status:     a.Status.String(),
			Err:        a.Err,
			Iterations: a.Iterations,
			Warm:       a.Warm,
			KKTReg:     a.KKTReg,
			DurationMS: float64(a.Duration.Milliseconds()),
		}
	}
	return out
}

// statusString renders a core status for the wire.
func statusString(s core.Status) string { return s.String() }

// solverStatusString renders a solver status for the wire.
func solverStatusString(s socp.Status) string { return s.String() }

// patternString renders a structure hash for the wire.
func patternString(h uint64) string { return fmt.Sprintf("%016x", h) }
