package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/taskgraph"
)

// routes wires the endpoint table.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /debug/vars", s.handleVars)
}

// deadline resolves a request's effective deadline: the body's deadline_ms
// when positive, else the Request-Timeout header (seconds, fractions
// allowed), both clamped by the server maximum, which also applies when
// the request names nothing.
func (s *Server) deadline(r *http.Request, bodyMS int64) time.Duration {
	d := s.cfg.MaxDeadline
	switch {
	case bodyMS > 0:
		if rd := time.Duration(bodyMS) * time.Millisecond; rd < d {
			d = rd
		}
	default:
		if hdr := r.Header.Get("Request-Timeout"); hdr != "" {
			if secs, err := strconv.ParseFloat(hdr, 64); err == nil && secs > 0 {
				if rd := time.Duration(secs * float64(time.Second)); rd < d {
					d = rd
				}
			}
		}
	}
	return d
}

// decode reads a bounded JSON body into dst.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	return dec.Decode(dst)
}

// admit runs the admission path shared by the solving endpoints: reject
// when draining, shed when the queue is full, otherwise enqueue and fire
// the enqueue fault site. A non-nil return means the response was already
// written.
func (s *Server) admit(w http.ResponseWriter, j *job) error {
	if err := s.pool.submit(j); err != nil {
		if err == errDraining {
			s.vars.drainRejects.Add(1)
			writeError(w, http.StatusServiceUnavailable, ErrorDetail{
				Code:    CodeDraining,
				Message: "server is draining; no new work is admitted",
			})
			return err
		}
		s.vars.shed.Add(1)
		retry := s.retryAfter()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, ErrorDetail{
			Code:          CodeQueueFull,
			Message:       "admission queue is full; retry after the advertised backoff",
			RetryAfterSec: retry,
		})
		return err
	}
	s.vars.accepted.Add(1)
	if err := hitEnqueue(); err != nil {
		s.vars.internal.Add(1)
		writeError(w, http.StatusInternalServerError, ErrorDetail{
			Code:    CodeInternal,
			Message: err.Error(),
		})
		return err
	}
	return nil
}

// solveOutcome is the worker-side result of one /v1/solve job, read by the
// handler after the job's done channel closes.
type solveOutcome struct {
	res      *core.Result
	mode     breakerMode
	err      error
	panicErr error
	injected error
	elapsed  time.Duration
}

// run executes the solve on a worker goroutine. Panics are isolated here:
// a panicking solve fails only this request.
func (o *solveOutcome) run(s *Server, ctx context.Context, cfg *taskgraph.Config, skipVerification bool) {
	defer func() {
		if r := recover(); r != nil {
			o.panicErr = recoverPanic(r)
		}
	}()
	start := time.Now()
	if err := hitJob(); err != nil {
		o.injected = err
		return
	}
	// Checking forceCtx directly (not only via the AfterFunc relay into ctx,
	// which runs asynchronously) makes a drain force-cancel synchronous for
	// jobs that have not started solving: once the drain bound expires, no
	// queued job burns a worker.
	if ctx.Err() != nil || s.forceCtx.Err() != nil {
		o.res = &core.Result{Status: core.StatusCanceled}
		return
	}
	o.res, o.mode, o.err = s.Solve(ctx, cfg, skipVerification)
	o.elapsed = time.Since(start)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	cfg, err := taskgraph.Parse(req.Config)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	rl := requestLog(r.Context())
	if rl != nil {
		rl.pattern = patternString(cfg.StructureHash())
	}
	jctx, cancel := context.WithTimeout(r.Context(), s.deadline(r, req.DeadlineMS))
	defer cancel()
	// A drain that runs out of patience force-cancels in-flight work by
	// canceling forceCtx; AfterFunc relays that into this job's context.
	stop := context.AfterFunc(s.forceCtx, cancel)
	defer stop()

	out := &solveOutcome{}
	j := &job{ctx: jctx, done: make(chan struct{})}
	j.fn = func(ctx context.Context) { out.run(s, ctx, cfg, req.SkipVerification) }
	if s.admit(w, j) != nil {
		return
	}
	<-j.done
	if rl != nil {
		rl.breaker = out.mode.String()
		if out.res != nil && out.res.Report != nil {
			rl.rung = out.res.Report.FinalBackend
		}
	}
	s.writeSolve(w, cfg, out)
}

// writeSolve maps a solve outcome onto the HTTP surface.
func (s *Server) writeSolve(w http.ResponseWriter, cfg *taskgraph.Config, out *solveOutcome) {
	pattern := patternString(cfg.StructureHash())
	switch {
	case out.panicErr != nil:
		s.vars.panics.Add(1)
		writeError(w, http.StatusInternalServerError, ErrorDetail{
			Code:    CodePanic,
			Message: "solve panicked; the failure was isolated to this request",
		})
	case out.injected != nil:
		s.vars.internal.Add(1)
		writeError(w, http.StatusInternalServerError, ErrorDetail{
			Code:    CodeInternal,
			Message: out.injected.Error(),
		})
	case out.res == nil:
		// The solver rejected the model before producing a status (e.g. a
		// multi-rate configuration): the request, not the server, is at
		// fault.
		s.badRequest(w, out.err)
	default:
		rep := reportJSON(out.res.Report)
		switch out.res.Status {
		case core.StatusOptimal, core.StatusInfeasible:
			if out.res.Status == core.StatusOptimal {
				s.vars.optimal.Add(1)
			} else {
				s.vars.infeasible.Add(1)
			}
			s.observe(out.elapsed)
			writeJSON(w, http.StatusOK, &SolveResponse{
				Status:              statusString(out.res.Status),
				Mapping:             out.res.Mapping,
				ContinuousObjective: out.res.ContinuousObjective,
				Iterations:          out.res.SolverIterations,
				Report:              rep,
				Pattern:             pattern,
				Breaker:             out.mode.String(),
				ElapsedMS:           durationMS(out.elapsed),
			})
		case core.StatusCanceled:
			s.vars.deadline.Add(1)
			writeError(w, http.StatusGatewayTimeout, ErrorDetail{
				Code:    CodeDeadline,
				Message: "deadline expired (or client went away) before the solve converged",
				Report:  rep,
			})
		default:
			s.vars.solverErrors.Add(1)
			msg := "solver failed on every recovery-ladder rung"
			if out.err != nil {
				msg = out.err.Error()
			}
			writeError(w, http.StatusInternalServerError, ErrorDetail{
				Code:    CodeSolverError,
				Message: msg,
				Report:  rep,
			})
		}
	}
}

// sweepOutcome is the worker-side result of one /v1/sweep job.
type sweepOutcome struct {
	points   []core.TradeoffPoint
	err      error
	canceled bool
	panicErr error
	injected error
	elapsed  time.Duration
}

func (o *sweepOutcome) run(s *Server, ctx context.Context, cfg *taskgraph.Config, buffers []string, caps []int) {
	defer func() {
		if r := recover(); r != nil {
			o.panicErr = recoverPanic(r)
		}
	}()
	start := time.Now()
	if err := hitJob(); err != nil {
		o.injected = err
		return
	}
	if ctx.Err() != nil || s.forceCtx.Err() != nil {
		o.canceled = true
		return
	}
	o.points, o.err = s.Sweep(ctx, cfg, buffers, caps)
	o.canceled = ctx.Err() != nil
	o.elapsed = time.Since(start)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, fmt.Errorf("decoding request: %w", err))
		return
	}
	cfg, err := taskgraph.Parse(req.Config)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	if len(req.Caps) == 0 {
		s.badRequest(w, fmt.Errorf("sweep request has no caps"))
		return
	}
	if rl := requestLog(r.Context()); rl != nil {
		rl.pattern = patternString(cfg.StructureHash())
	}
	jctx, cancel := context.WithTimeout(r.Context(), s.deadline(r, req.DeadlineMS))
	defer cancel()
	stop := context.AfterFunc(s.forceCtx, cancel)
	defer stop()

	out := &sweepOutcome{}
	j := &job{ctx: jctx, done: make(chan struct{})}
	j.fn = func(ctx context.Context) { out.run(s, ctx, cfg, req.Buffers, req.Caps) }
	if s.admit(w, j) != nil {
		return
	}
	<-j.done
	s.writeSweep(w, cfg, req.Caps, out)
}

// writeSweep maps a sweep outcome onto the HTTP surface; partial results
// always travel with the 504.
func (s *Server) writeSweep(w http.ResponseWriter, cfg *taskgraph.Config, caps []int, out *sweepOutcome) {
	switch {
	case out.panicErr != nil:
		s.vars.panics.Add(1)
		writeError(w, http.StatusInternalServerError, ErrorDetail{
			Code:    CodePanic,
			Message: "sweep panicked; the failure was isolated to this request",
		})
		return
	case out.injected != nil:
		s.vars.internal.Add(1)
		writeError(w, http.StatusInternalServerError, ErrorDetail{
			Code:    CodeInternal,
			Message: out.injected.Error(),
		})
		return
	case out.points == nil && out.err != nil && !out.canceled:
		// SweepBufferCaps validated the request and refused it outright.
		s.badRequest(w, out.err)
		return
	}
	resp := &SweepResponse{
		Points:    make([]SweepPoint, len(caps)),
		Pattern:   patternString(cfg.StructureHash()),
		ElapsedMS: durationMS(out.elapsed),
	}
	for i, c := range caps {
		pt := SweepPoint{Cap: c, Status: "skipped"}
		if i < len(out.points) && out.points[i].Result != nil {
			res := out.points[i].Result
			pt.Status = statusString(res.Status)
			pt.Mapping = res.Mapping
			pt.ContinuousObjective = res.ContinuousObjective
			pt.Iterations = res.SolverIterations
			if res.Status != core.StatusCanceled {
				resp.Completed++
			}
		}
		resp.Points[i] = pt
	}
	switch {
	case out.canceled:
		s.vars.deadline.Add(1)
		writeError(w, http.StatusGatewayTimeout, ErrorDetail{
			Code:    CodeDeadline,
			Message: fmt.Sprintf("deadline expired with %d/%d points solved; partial results attached", resp.Completed, len(caps)),
			Partial: resp,
		})
	case out.err != nil:
		s.vars.solverErrors.Add(1)
		writeError(w, http.StatusInternalServerError, ErrorDetail{
			Code:    CodeSolverError,
			Message: out.err.Error(),
			Partial: resp,
		})
	default:
		s.vars.sweeps.Add(1)
		s.observe(out.elapsed)
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	queued, running := s.pool.stats()
	hits, misses := s.cache.Stats()
	patterns, openNow, opensTotal := s.patterns.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSec": time.Since(s.start).Seconds(),
		"ready":     s.Ready(),
		"requests": map[string]int64{
			"accepted":      s.vars.accepted.Load(),
			"shed":          s.vars.shed.Load(),
			"drainRejects":  s.vars.drainRejects.Load(),
			"badRequests":   s.vars.badRequests.Load(),
			"deadline504":   s.vars.deadline.Load(),
			"panics":        s.vars.panics.Load(),
			"internal":      s.vars.internal.Load(),
			"solverErrors":  s.vars.solverErrors.Load(),
			"solvedOptimal": s.vars.optimal.Load(),
			"infeasible":    s.vars.infeasible.Load(),
			"sweeps":        s.vars.sweeps.Load(),
		},
		"queue": map[string]int64{
			"workers": int64(s.cfg.Workers),
			"depth":   int64(s.cfg.QueueDepth),
			"queued":  queued,
			"running": running,
		},
		"latencyMs": map[string]float64{
			"p50":   durationMS(s.lat.quantile(0.50)),
			"p95":   durationMS(s.lat.quantile(0.95)),
			"count": float64(s.lat.count()),
		},
		"cache": map[string]int64{
			"hits":   hits,
			"misses": misses,
		},
		"breaker": map[string]int64{
			"patterns":   int64(patterns),
			"openNow":    int64(openNow),
			"opensTotal": opensTotal,
		},
	})
}

// badRequest writes a 400 with the client-side failure.
func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.vars.badRequests.Add(1)
	writeError(w, http.StatusBadRequest, ErrorDetail{
		Code:    CodeInvalidRequest,
		Message: err.Error(),
	})
}

// writeError writes a structured error body.
func writeError(w http.ResponseWriter, status int, det ErrorDetail) {
	writeJSON(w, status, &ErrorResponse{Error: det})
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors past WriteHeader cannot be reported to the client;
	// the types marshaled here cannot fail.
	//bbvet:allow httpdiscipline status already committed, nothing to tell the client; the wire types marshal infallibly
	_ = json.NewEncoder(w).Encode(v)
}

// durationMS renders a duration in (fractional) milliseconds.
func durationMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
