// Package serve is the solver daemon behind cmd/bbserve: a fault-tolerant
// HTTP/JSON front end over the budget/buffer solver in internal/core,
// built for the workload the ROADMAP's north star describes — many clients
// repeatedly solving same-topology instances under latency budgets.
//
// The robustness layer, in the order a request meets it:
//
//   - Admission control: a bounded worker pool behind a fixed-depth queue.
//     Overload is shed at the door with 429 and a Retry-After derived from
//     the moving p95 solve latency — never buffered unboundedly.
//   - Deadlines: every request runs under a context derived from its
//     deadline_ms field (or Request-Timeout header), clamped by the server
//     maximum. Expiry surfaces as a structured 504 carrying the recovery
//     ladder's report and any partial sweep results, through the same
//     StatusCanceled plumbing the CLI tools use.
//   - Failure isolation and degradation: panics are contained to the
//     request that caused them; numerical breakdown runs the PR 4 recovery
//     ladder, whose every attempt is reported in the response; and a
//     per-pattern circuit breaker routes topologies that repeatedly
//     needed recovery straight to the rung that rescued them until a
//     half-open probe succeeds.
//   - Graceful drain: SIGTERM flips /readyz to 503, stops admissions,
//     lets in-flight solves finish up to a drain bound, then cancels
//     stragglers through their contexts.
//   - Shared-pattern fast path: all solves share one socp.PatternCache,
//     and serving state is keyed by taskgraph.StructureHash, so
//     identical-topology requests skip symbolic analysis and reuse pooled
//     numeric workspaces.
//
// Every failure path is reachable deterministically through
// internal/faultinject sites; nothing in the tests depends on timing.
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/socp"
	"repro/internal/taskgraph"
)

// Config parameterizes a Server. The zero value selects sensible defaults
// throughout.
type Config struct {
	// Workers bounds concurrently running solves; ≤ 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting beyond the running ones; ≤ 0
	// selects 2×Workers. Admission control rejects beyond it.
	QueueDepth int
	// MaxDeadline clamps every request's deadline and applies when a
	// request names none; ≤ 0 selects 60s.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies; ≤ 0 selects 32 MiB.
	MaxBodyBytes int64
	// BreakerTrip is the consecutive-recovery count that opens a pattern's
	// breaker; ≤ 0 selects 3.
	BreakerTrip int
	// BreakerProbeEvery is the open-state request period between half-open
	// probes; ≤ 0 selects 16.
	BreakerProbeEvery int
	// LatencyWindow is the moving-latency sample count behind Retry-After
	// and /debug/vars quantiles; ≤ 0 selects 256.
	LatencyWindow int
	// Solve is the base solver configuration applied to every request
	// (factorization backend, tolerances, sweep parallelism). The pattern
	// cache field is overridden by the server's shared cache.
	Solve core.Options
	// Logger receives one structured line per completed request (route,
	// status, latency, queue pressure, graph pattern, ladder rung). Nil
	// disables request logging.
	Logger *slog.Logger
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.BreakerTrip <= 0 {
		c.BreakerTrip = 3
	}
	if c.BreakerProbeEvery <= 0 {
		c.BreakerProbeEvery = 16
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 256
	}
	return c
}

// Server is the daemon state. Create with New; serve via Handler; shut
// down via Drain.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	handler  http.Handler
	log      *slog.Logger
	pool     *pool
	cache    *socp.PatternCache
	patterns *patternTable
	lat      *latency
	start    time.Time

	// forceCtx is canceled to force-cancel every in-flight job context
	// when a drain deadline expires.
	forceCtx    context.Context
	forceCancel context.CancelFunc

	// notReady flips once drain begins; /readyz and admission key off it.
	notReady atomic.Bool

	vars counters
}

// counters are the /debug/vars tallies.
type counters struct {
	accepted     atomic.Int64 // admitted into the queue
	shed         atomic.Int64 // 429 queue-full rejections
	drainRejects atomic.Int64 // 503 rejections while draining
	deadline     atomic.Int64 // 504 responses
	panics       atomic.Int64 // isolated request panics
	internal     atomic.Int64 // injected/internal 500s
	solverErrors atomic.Int64 // ladder exhaustion / verification failures
	badRequests  atomic.Int64 // 400s
	optimal      atomic.Int64
	infeasible   atomic.Int64
	sweeps       atomic.Int64
}

// New builds a Server and starts its worker pool. The caller owns the
// lifecycle: serve s.Handler() on any net/http server and call Drain to
// shut down.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		cache:    socp.NewPatternCache(),
		patterns: newPatternTable(),
		lat:      newLatency(cfg.LatencyWindow),
		start:    time.Now(),
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = s.logRequests(s.mux)
	return s
}

// Handler returns the daemon's HTTP handler: the route table wrapped in
// the per-request structured-logging middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// Ready reports whether the server is admitting work (false once drain
// begins); /readyz renders it.
func (s *Server) Ready() bool { return !s.notReady.Load() }

// BeginDrain synchronously stops admissions and flips /readyz to 503
// without waiting for in-flight work. Drain calls it; it is exported so a
// signal handler can make the readiness flip atomic with the signal while
// deciding the drain bound separately.
func (s *Server) BeginDrain() {
	s.notReady.Store(true)
	s.pool.beginDrain()
}

// Drain gracefully shuts the server down: admissions stop, /readyz turns
// 503, and every accepted request is allowed to finish. If ctx expires
// first, the in-flight solves are canceled through their contexts (they
// surface 504s to their clients) and Drain still waits for them to unwind
// before returning ctx's error. A nil return means every request finished
// on its own. Drain must be called at most once.
func (s *Server) Drain(ctx context.Context) error {
	s.notReady.Store(true)
	return s.pool.drain(ctx, s.forceCancel)
}

// Solve runs one configuration through the pattern-keyed serving path:
// the shared pattern cache, the per-pattern breaker, and the recovery
// ladder. It is the programmatic equivalent of POST /v1/solve minus HTTP
// and admission (the handler layers those); the returned mode reports how
// the breaker routed the solve.
func (s *Server) Solve(ctx context.Context, cfg *taskgraph.Config, skipVerification bool) (*core.Result, breakerMode, error) {
	pat := s.patterns.get(cfg.StructureHash())
	mode, backend := pat.plan(s.cfg.BreakerProbeEvery)
	opt := s.cfg.Solve
	opt.SkipVerification = opt.SkipVerification || skipVerification
	opt.Solver.Cache = s.cache
	if mode == modeDegraded {
		if forced, ok := core.OptionsForBackend(opt.Solver, backend); ok {
			opt.Solver = forced
		}
	}
	res, err := core.Solve(ctx, cfg, opt)
	if res != nil {
		pat.record(mode, res.Report, s.cfg.BreakerTrip)
	}
	return res, mode, err
}

// Sweep runs a buffer-cap sweep through the shared pattern cache. Sweeps
// bypass the breaker (each point already shares warm starts and pooled
// pipelines; the ladder report of each point is returned per point), but
// their pattern still shares cache entries with /v1/solve requests.
func (s *Server) Sweep(ctx context.Context, cfg *taskgraph.Config, buffers []string, caps []int) ([]core.TradeoffPoint, error) {
	opt := s.cfg.Solve
	opt.Solver.Cache = s.cache
	return core.SweepBufferCaps(ctx, cfg, buffers, caps, opt)
}

// observe records a completed solve's latency for Retry-After estimation.
// Only definitive outcomes count: a canceled or shed request would drag
// the p95 toward the deadline instead of the solve cost.
func (s *Server) observe(d time.Duration) { s.lat.observe(d) }

// retryAfter estimates the backoff advertised on shed requests.
func (s *Server) retryAfter() int {
	queued, running := s.pool.stats()
	return retryAfterSec(s.lat.quantile(0.95), int(queued+running), s.cfg.Workers)
}
