package serve

import (
	"sync"

	"repro/internal/core"
	"repro/internal/socp"
)

// Per-pattern circuit breaker over the recovery ladder. The ladder (PR 4)
// rescues a numerically degenerate solve by escalating through backends —
// but it pays for every failed rung first. When one graph topology is
// degenerate, every request for it pays that tax: under the
// shared-template workload, that is every request. The breaker remembers,
// per structure hash, that a pattern keeps tripping the ladder and routes
// subsequent requests straight to the rung that rescued it
// (core.OptionsForBackend), restoring one-attempt latency. Periodic
// half-open probes retry the full ladder so a transient degeneracy (bad
// parameter regime a client has since tuned away) closes the breaker
// again.
//
// All transitions are request-count-driven, never clock-driven, so every
// breaker state is reachable deterministically in tests.

// breakerMode labels how one request is routed.
type breakerMode int

const (
	// modeNormal: breaker closed, full ladder from the caller's options.
	modeNormal breakerMode = iota
	// modeDegraded: breaker open, solve starts at the known-good rung.
	modeDegraded
	// modeProbe: breaker open, but this request runs the full ladder as a
	// half-open probe; its outcome decides whether the breaker closes.
	modeProbe
)

// String implements fmt.Stringer ("" for modeNormal: the response field is
// omitted while the breaker is closed).
func (m breakerMode) String() string {
	switch m {
	case modeDegraded:
		return "open"
	case modeProbe:
		return "probe"
	default:
		return ""
	}
}

// pattern is the per-structure-hash serving state: breaker plus counters.
type pattern struct {
	mu sync.Mutex

	// consecutive counts back-to-back ladder recoveries while closed.
	consecutive int
	// open reports the breaker state; goodBackend is the rung that rescued
	// the pattern last (always set while open).
	open        bool
	goodBackend string
	// sinceProbe counts open-state requests since the last half-open probe.
	sinceProbe int

	// Lifetime counters for /debug/vars.
	solves   int64
	degraded int64
	opens    int64
}

// plan routes the next request for this pattern and returns the backend to
// force when the mode is modeDegraded. probeEvery is the open-state request
// period between half-open probes.
func (p *pattern) plan(probeEvery int) (breakerMode, string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.solves++
	if !p.open {
		return modeNormal, ""
	}
	p.sinceProbe++
	if p.sinceProbe >= probeEvery {
		p.sinceProbe = 0
		return modeProbe, ""
	}
	p.degraded++
	return modeDegraded, p.goodBackend
}

// record folds a finished solve's ladder report back into the breaker.
// Only a report that actually recovered counts as a failure event: a
// canceled solve says nothing about the pattern's numerics, an exhausted
// ladder names no good rung to degrade to, and a clean first-attempt solve
// is the success that resets the failure streak (or closes the breaker
// after a successful probe). trip is the consecutive-recovery count that
// opens the breaker.
func (p *pattern) record(mode breakerMode, rep *core.SolveReport, trip int) {
	if rep == nil || len(rep.Attempts) == 0 {
		return
	}
	last := rep.Attempts[len(rep.Attempts)-1]
	if last.Status == socp.StatusCanceled {
		return // no numerical signal either way
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case rep.Recovered:
		p.goodBackend = rep.FinalBackend
		switch mode {
		case modeNormal:
			p.consecutive++
			if p.consecutive >= trip && !p.open {
				p.open = true
				p.sinceProbe = 0
				p.opens++
			}
		case modeProbe:
			// The probe still needed the ladder: stay open, but follow the
			// rung that works now.
		case modeDegraded:
			// Even the known-good rung needed further recovery: follow it
			// down.
		}
	case mode == modeProbe:
		// Clean probe: the degeneracy cleared; close and forget the streak.
		p.open = false
		p.consecutive = 0
	case mode == modeNormal:
		p.consecutive = 0
	}
}

// snapshot returns the counters for /debug/vars.
func (p *pattern) snapshot() (open bool, solves, degraded, opens int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.open, p.solves, p.degraded, p.opens
}

// patternTable maps structure hashes to their serving state.
type patternTable struct {
	mu sync.Mutex
	m  map[uint64]*pattern
}

func newPatternTable() *patternTable {
	return &patternTable{m: map[uint64]*pattern{}}
}

// get returns the pattern state for a hash, creating it on first sight.
func (t *patternTable) get(h uint64) *pattern {
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.m[h]
	if p == nil {
		p = &pattern{}
		t.m[h] = p
	}
	return p
}

// snapshot aggregates the table for /debug/vars. The aggregation is
// commutative, so map iteration order cannot leak into the result. Pattern
// locks nest inside the table lock here; nothing acquires them in the other
// order.
func (t *patternTable) snapshot() (patterns, openNow int, opensTotal int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.m {
		open, _, _, opens := p.snapshot()
		if open {
			openNow++
		}
		opensTotal += opens
	}
	return len(t.m), openNow, opensTotal
}
