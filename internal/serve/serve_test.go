package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/taskgraph"
)

// testConfigJSON renders a small chain configuration as request JSON.
func testConfigJSON(t *testing.T, tasks int) json.RawMessage {
	t.Helper()
	cfg := gen.Chain(gen.ChainOptions{Tasks: tasks})
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal config: %v", err)
	}
	return data
}

// newTestServer builds a server and registers a drain-on-cleanup. Tests that
// drain themselves must not use it.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s
}

// do sends one request through the full handler stack.
func do(s *Server, ctx context.Context, method, path string, body any) *httptest.ResponseRecorder {
	var rd *strings.Reader
	switch b := body.(type) {
	case nil:
		rd = strings.NewReader("")
	case string:
		rd = strings.NewReader(b)
	default:
		data, err := json.Marshal(b)
		if err != nil {
			panic(err)
		}
		rd = strings.NewReader(string(data))
	}
	req := httptest.NewRequest(method, path, rd)
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// decodeBody unmarshals a recorded JSON body.
func decodeBody[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return v
}

// errorCode extracts the structured error code of a non-2xx body.
func errorCode(t *testing.T, w *httptest.ResponseRecorder) ErrorDetail {
	t.Helper()
	return decodeBody[ErrorResponse](t, w).Error
}

func TestSolveOptimal(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 4)})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	resp := decodeBody[SolveResponse](t, w)
	if resp.Status != "optimal" {
		t.Fatalf("status %q, want optimal", resp.Status)
	}
	if resp.Mapping == nil {
		t.Fatal("no mapping in optimal response")
	}
	if len(resp.Pattern) != 16 {
		t.Fatalf("pattern %q is not a 16-hex-digit hash", resp.Pattern)
	}
	if resp.Report == nil || len(resp.Report.Attempts) == 0 {
		t.Fatal("missing ladder report")
	}
	if resp.Breaker != "" {
		t.Fatalf("breaker %q on a healthy pattern, want closed (empty)", resp.Breaker)
	}
}

func TestSolveSharedPatternHitsCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	body := SolveRequest{Config: testConfigJSON(t, 4)}
	var pattern string
	for i := 0; i < 3; i++ {
		w := do(s, nil, "POST", "/v1/solve", body)
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, w.Code, w.Body)
		}
		resp := decodeBody[SolveResponse](t, w)
		if pattern == "" {
			pattern = resp.Pattern
		} else if resp.Pattern != pattern {
			t.Fatalf("pattern changed across identical requests: %q vs %q", resp.Pattern, pattern)
		}
	}
	hits, misses := s.cache.Stats()
	if misses == 0 || hits == 0 {
		t.Fatalf("cache hits=%d misses=%d; want the first request to miss and repeats to hit", hits, misses)
	}
}

func TestSolveRejectsMalformedBody(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(s, nil, "POST", "/v1/solve", `{"config": not json`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if det := errorCode(t, w); det.Code != CodeInvalidRequest {
		t.Fatalf("code %q, want %q", det.Code, CodeInvalidRequest)
	}
}

func TestSolveRejectsInvalidConfig(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	// Structurally valid JSON, semantically empty configuration.
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: json.RawMessage(`{"graphs":[{"name":""}]}`)})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, body %s, want 400", w.Code, w.Body)
	}
	if det := errorCode(t, w); det.Code != CodeInvalidRequest {
		t.Fatalf("code %q, want %q", det.Code, CodeInvalidRequest)
	}
}

func TestSolveRejectsMultiRateAsClientError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	cfg := gen.RandomMultiRateChain(7, 4, 0.5)
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: data})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, body %s, want 400 (model rejected before solving)", w.Code, w.Body)
	}
	det := errorCode(t, w)
	if det.Code != CodeInvalidRequest {
		t.Fatalf("code %q, want %q", det.Code, CodeInvalidRequest)
	}
	if !strings.Contains(det.Message, "multi-rate") {
		t.Fatalf("message %q does not name the rejection", det.Message)
	}
}

func TestSolveBodyLimit(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxBodyBytes: 64})
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 8)})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for an oversized body", w.Code)
	}
}

// TestSolveDeadlineMidSolve drives the 504 path deterministically: the
// solver is parked inside an interior-point iteration, the client goes away,
// and releasing the solver must surface StatusCanceled as a structured 504.
// No sleeps: the stall rendezvous orders every step.
func TestSolveDeadlineMidSolve(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	stalled := make(chan struct{})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteIPMIteration, Kind: faultinject.KindStall,
		After: 1, Count: 1, Gate: gate, Stalled: stalled,
	})()

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct{ w *httptest.ResponseRecorder }
	done := make(chan outcome, 1)
	go func() {
		done <- outcome{do(s, ctx, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 4)})}
	}()

	<-stalled   // the solve is mid-iteration
	cancel()    // the client hangs up
	close(gate) // release the solver; its next iteration check sees the cancel

	res := (<-done).w
	if res.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s, want 504", res.Code, res.Body)
	}
	det := errorCode(t, res)
	if det.Code != CodeDeadline {
		t.Fatalf("code %q, want %q", det.Code, CodeDeadline)
	}
	if det.Report == nil || len(det.Report.Attempts) == 0 {
		t.Fatal("504 body must carry the ladder report of the canceled attempt")
	}
	if got := det.Report.Attempts[len(det.Report.Attempts)-1].Status; got != "canceled" {
		t.Fatalf("last attempt status %q, want canceled", got)
	}
	if n := s.vars.deadline.Load(); n != 1 {
		t.Fatalf("deadline counter %d, want 1", n)
	}
}

func TestSweepOK(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	w := do(s, nil, "POST", "/v1/sweep", SweepRequest{Config: testConfigJSON(t, 4), Caps: []int{2, 4}})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body)
	}
	resp := decodeBody[SweepResponse](t, w)
	if len(resp.Points) != 2 || resp.Completed != 2 {
		t.Fatalf("points=%d completed=%d, want 2/2", len(resp.Points), resp.Completed)
	}
	for i, pt := range resp.Points {
		if pt.Status != "optimal" {
			t.Fatalf("point %d status %q", i, pt.Status)
		}
		if pt.Mapping == nil {
			t.Fatalf("point %d has no mapping", i)
		}
	}
}

func TestSweepRejectsEmptyCaps(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(s, nil, "POST", "/v1/sweep", SweepRequest{Config: testConfigJSON(t, 3)})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
}

func TestSweepRejectsUnknownBuffer(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	w := do(s, nil, "POST", "/v1/sweep", SweepRequest{
		Config: testConfigJSON(t, 3), Buffers: []string{"no-such-buffer"}, Caps: []int{2},
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, body %s, want 400", w.Code, w.Body)
	}
}

// TestSweepPartialOn504 pins the degradation contract: a deadline that lands
// mid-sweep returns the completed points inside the 504 body instead of
// discarding them.
func TestSweepPartialOn504(t *testing.T) {
	// WarmChunk 1 + Parallelism 1: sweep job i is exactly cap i, in order.
	s := newTestServer(t, Config{Workers: 1, Solve: core.Options{Parallelism: 1, WarmChunk: 1}})
	gate := make(chan struct{})
	stalled := make(chan struct{})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteSweepJob(1), Kind: faultinject.KindStall,
		Count: 1, Gate: gate, Stalled: stalled,
	})()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- do(s, ctx, "POST", "/v1/sweep", SweepRequest{Config: testConfigJSON(t, 4), Caps: []int{2, 3, 4}})
	}()

	<-stalled   // point 0 solved; point 1 parked
	cancel()    // deadline lands
	close(gate) // release point 1 into the canceled context

	res := <-done
	if res.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s, want 504", res.Code, res.Body)
	}
	det := errorCode(t, res)
	if det.Code != CodeDeadline {
		t.Fatalf("code %q, want %q", det.Code, CodeDeadline)
	}
	if det.Partial == nil {
		t.Fatal("504 body must carry the partial sweep")
	}
	if det.Partial.Completed != 1 {
		t.Fatalf("completed %d, want exactly the pre-deadline point", det.Partial.Completed)
	}
	if got := det.Partial.Points[0].Status; got != "optimal" {
		t.Fatalf("point 0 status %q, want optimal", got)
	}
	for _, pt := range det.Partial.Points[1:] {
		if pt.Status == "optimal" {
			t.Fatalf("post-deadline cap %d reported optimal", pt.Cap)
		}
	}
}

func TestHealthAndReady(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(s, nil, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz %d", w.Code)
	}
	if w := do(s, nil, "GET", "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("readyz %d before drain", w.Code)
	}
}

func TestDebugVars(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 3)}); w.Code != http.StatusOK {
		t.Fatalf("solve %d: %s", w.Code, w.Body)
	}
	w := do(s, nil, "GET", "/debug/vars", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("vars %d", w.Code)
	}
	vars := decodeBody[map[string]json.RawMessage](t, w)
	for _, key := range []string{"requests", "queue", "latencyMs", "cache", "breaker", "ready", "uptimeSec"} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("vars missing %q: %s", key, w.Body)
		}
	}
	var reqs map[string]int64
	if err := json.Unmarshal(vars["requests"], &reqs); err != nil {
		t.Fatal(err)
	}
	if reqs["accepted"] != 1 || reqs["solvedOptimal"] != 1 {
		t.Fatalf("requests counters %v, want accepted=1 solvedOptimal=1", reqs)
	}
}

func TestDeadlineResolution(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, MaxDeadline: 10 * time.Second})
	req := func(hdr string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/solve", nil)
		if hdr != "" {
			r.Header.Set("Request-Timeout", hdr)
		}
		return r
	}
	cases := []struct {
		name   string
		bodyMS int64
		header string
		want   time.Duration
	}{
		{"default is server max", 0, "", 10 * time.Second},
		{"body clamps down", 1500, "", 1500 * time.Millisecond},
		{"body clamped by max", 60_000, "", 10 * time.Second},
		{"header seconds", 0, "2", 2 * time.Second},
		{"header fractional", 0, "0.25", 250 * time.Millisecond},
		{"body wins over header", 1000, "9", time.Second},
		{"garbage header ignored", 0, "soon", 10 * time.Second},
		{"negative header ignored", 0, "-3", 10 * time.Second},
	}
	for _, tc := range cases {
		if got := s.deadline(req(tc.header), tc.bodyMS); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestStructureHashMatchesServerKey pins that the HTTP pattern field is the
// hex rendering of taskgraph's structure hash, so clients can precompute
// which requests will share serving state.
func TestStructureHashMatchesServerKey(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	raw := testConfigJSON(t, 4)
	cfg, err := taskgraph.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: raw})
	if w.Code != http.StatusOK {
		t.Fatalf("solve %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[SolveResponse](t, w)
	if want := patternString(cfg.StructureHash()); resp.Pattern != want {
		t.Fatalf("pattern %q, want %q", resp.Pattern, want)
	}
}
