package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestQueueFullShedsDeterministically fills the pool to its exact capacity —
// every worker parked mid-job, every queue slot occupied — and checks the
// next request is shed with 429, a Retry-After, and the queue_full code. The
// choreography is rendezvous-driven: stall rules park the workers, per-hit
// stall rules on the enqueue site confirm each admission before the next
// request is sent. Nothing sleeps, nothing polls.
func TestQueueFullShedsDeterministically(t *testing.T) {
	const workers, depth = 2, 3
	s := newTestServer(t, Config{Workers: workers, QueueDepth: depth})

	jobGate := make(chan struct{})
	enqGate := make(chan struct{})
	var rules []faultinject.Rule
	jobStalled := make([]chan struct{}, workers)
	for i := range jobStalled {
		jobStalled[i] = make(chan struct{})
		rules = append(rules, faultinject.Rule{
			Site: faultinject.SiteServeJob, Kind: faultinject.KindStall,
			After: i, Count: 1, Gate: jobGate, Stalled: jobStalled[i],
		})
	}
	enqStalled := make([]chan struct{}, workers+depth)
	for i := range enqStalled {
		enqStalled[i] = make(chan struct{})
		rules = append(rules, faultinject.Rule{
			Site: faultinject.SiteServeEnqueue, Kind: faultinject.KindStall,
			After: i, Count: 1, Gate: enqGate, Stalled: enqStalled[i],
		})
	}
	defer faultinject.Activate(rules...)()

	body := SolveRequest{Config: testConfigJSON(t, 3)}
	results := make([]chan *httptest.ResponseRecorder, workers+depth)
	for i := range results {
		results[i] = make(chan *httptest.ResponseRecorder, 1)
		i := i
		go func() { results[i] <- do(s, nil, "POST", "/v1/solve", body) }()
		<-enqStalled[i] // request i admitted
		if i < workers {
			<-jobStalled[i] // its worker picked it up and parked
		}
	}
	// workers running + depth queued: the pool is at exact capacity.
	if queued, running := s.pool.stats(); queued != depth || running != workers {
		t.Fatalf("gauges queued=%d running=%d, want %d/%d", queued, running, depth, workers)
	}

	w := do(s, nil, "POST", "/v1/solve", body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, body %s, want 429", w.Code, w.Body)
	}
	det := errorCode(t, w)
	if det.Code != CodeQueueFull {
		t.Fatalf("code %q, want %q", det.Code, CodeQueueFull)
	}
	retry, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q, want an integer ≥ 1", w.Header().Get("Retry-After"))
	}
	if det.RetryAfterSec != retry {
		t.Fatalf("body retryAfterSec %d != header %d", det.RetryAfterSec, retry)
	}
	if n := s.vars.shed.Load(); n != 1 {
		t.Fatalf("shed counter %d, want 1", n)
	}

	// Release everything: the parked and queued requests must all finish
	// cleanly — shedding the overflow lost no admitted work.
	close(jobGate)
	close(enqGate)
	for i, ch := range results {
		if res := <-ch; res.Code != http.StatusOK {
			t.Fatalf("admitted request %d finished %d: %s", i, res.Code, res.Body)
		}
	}
}

// TestPanicIsolation checks that a panicking job produces a structured 500
// for its own request and nothing else: the worker survives and the next
// request on the same server succeeds.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	deactivate := faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteServeJob, Kind: faultinject.KindPanic, Count: 1,
	})
	defer deactivate()

	body := SolveRequest{Config: testConfigJSON(t, 3)}
	w := do(s, nil, "POST", "/v1/solve", body)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if det := errorCode(t, w); det.Code != CodePanic {
		t.Fatalf("code %q, want %q", det.Code, CodePanic)
	}
	if n := s.vars.panics.Load(); n != 1 {
		t.Fatalf("panic counter %d, want 1", n)
	}

	deactivate()
	if w := do(s, nil, "POST", "/v1/solve", body); w.Code != http.StatusOK {
		t.Fatalf("post-panic request %d: %s — the worker did not survive", w.Code, w.Body)
	}
}

// TestSweepPanicIsolation covers the same contract on the sweep endpoint.
func TestSweepPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteServeJob, Kind: faultinject.KindPanic, Count: 1,
	})()
	w := do(s, nil, "POST", "/v1/sweep", SweepRequest{Config: testConfigJSON(t, 3), Caps: []int{2}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if det := errorCode(t, w); det.Code != CodePanic {
		t.Fatalf("code %q, want %q", det.Code, CodePanic)
	}
}

// TestInjectedJobError drives the internal-failure path on a worker.
func TestInjectedJobError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteServeJob, Kind: faultinject.KindError, Count: 1,
	})()
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 3)})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if det := errorCode(t, w); det.Code != CodeInternal {
		t.Fatalf("code %q, want %q", det.Code, CodeInternal)
	}
}

// TestInjectedEnqueueError drives the handler-side internal failure after
// admission.
func TestInjectedEnqueueError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteServeEnqueue, Kind: faultinject.KindError, Count: 1,
	})()
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 3)})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if det := errorCode(t, w); det.Code != CodeInternal {
		t.Fatalf("code %q, want %q", det.Code, CodeInternal)
	}
}

// TestLadderExhaustionIsSolverError breaks every factorization backend so
// the recovery ladder runs dry, and checks the failure surfaces as a 500
// with the full per-rung report rather than a panic or an empty body.
func TestLadderExhaustionIsSolverError(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	defer faultinject.Activate(
		faultinject.Rule{Site: faultinject.SiteSparseLDLT, Kind: faultinject.KindError},
		faultinject.Rule{Site: faultinject.SiteDenseCholesky, Kind: faultinject.KindError},
		faultinject.Rule{Site: faultinject.SiteDenseLDLT, Kind: faultinject.KindError},
	)()
	w := do(s, nil, "POST", "/v1/solve", SolveRequest{Config: testConfigJSON(t, 3)})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, body %s, want 500", w.Code, w.Body)
	}
	det := errorCode(t, w)
	if det.Code != CodeSolverError {
		t.Fatalf("code %q, want %q", det.Code, CodeSolverError)
	}
	if det.Report == nil || len(det.Report.Attempts) < 2 {
		t.Fatalf("exhaustion report %+v, want every failed rung listed", det.Report)
	}
	if det.Report.Recovered {
		t.Fatal("exhausted ladder reported recovered")
	}
	if n := s.vars.solverErrors.Load(); n != 1 {
		t.Fatalf("solverErrors counter %d, want 1", n)
	}
}

func TestLatencyQuantiles(t *testing.T) {
	l := newLatency(8)
	if got := l.quantile(0.95); got != 0 {
		t.Fatalf("empty window p95 = %v, want 0", got)
	}
	for i := 1; i <= 8; i++ {
		l.observe(time.Duration(i) * time.Millisecond)
	}
	if got := l.quantile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := l.quantile(1); got != 8*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := l.quantile(0.5); got != 4*time.Millisecond {
		t.Fatalf("p50 = %v, want 4ms (index ⌊0.5·7⌋)", got)
	}
}

func TestLatencyRingEvictsOldest(t *testing.T) {
	l := newLatency(4)
	for i := 1; i <= 4; i++ {
		l.observe(time.Duration(i) * time.Second)
	}
	// Four more observations push the first four out entirely.
	for i := 0; i < 4; i++ {
		l.observe(time.Millisecond)
	}
	if got := l.quantile(1); got != time.Millisecond {
		t.Fatalf("max after wraparound = %v, want the window to hold only fresh samples", got)
	}
	if l.count() != 4 {
		t.Fatalf("count %d, want window size", l.count())
	}
}

func TestRetryAfterSec(t *testing.T) {
	cases := []struct {
		p95              time.Duration
		pending, workers int
		want             int
	}{
		{0, 0, 4, 1},                       // empty window, idle: the 1s floor
		{100 * time.Millisecond, 4, 4, 1},  // one batch of fast solves
		{100 * time.Millisecond, 12, 4, 1}, // 3 batches × 100ms rounds up to 1
		{2 * time.Second, 12, 4, 6},        // 3 batches × 2s
		{1500 * time.Millisecond, 5, 4, 3}, // 2 batches × 1.5s
		{30 * time.Second, 1, 0, 30},       // degenerate workers clamp to 1
		{time.Nanosecond, 1000000, 1, 1},   // sub-second total still rounds up to 1
	}
	for _, tc := range cases {
		if got := retryAfterSec(tc.p95, tc.pending, tc.workers); got != tc.want {
			t.Errorf("retryAfterSec(%v, %d, %d) = %d, want %d", tc.p95, tc.pending, tc.workers, got, tc.want)
		}
	}
}

func TestRecoverPanicFormatsValueAndStack(t *testing.T) {
	err := func() (err error) {
		defer func() { err = recoverPanic(recover()) }()
		panic(fmt.Errorf("boom %d", 7))
	}()
	if err == nil {
		t.Fatal("nil error")
	}
	for _, want := range []string{"boom 7", "goroutine"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("recovered error %q missing %q", err.Error(), want)
		}
	}
}
