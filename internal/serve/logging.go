package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// reqLog is the per-request record: the middleware allocates it, the
// handlers enrich it with solver-side facts (graph pattern, recovery-ladder
// rung, breaker routing), and the middleware emits it as one structured
// line when the response completes.
type reqLog struct {
	pattern string // taskgraph.StructureHash of the solved configuration
	rung    string // recovery-ladder rung (final backend) of the solve
	breaker string // breaker routing mode for the pattern
}

// reqLogKey carries the *reqLog through the request context.
type reqLogKey struct{}

// requestLog returns the request's log record, or nil when the request did
// not pass through the logging middleware (e.g. direct handler tests).
func requestLog(ctx context.Context) *reqLog {
	rl, _ := ctx.Value(reqLogKey{}).(*reqLog)
	return rl
}

// statusRecorder observes the response stream: the final status code and
// the body byte count, with the implicit 200 of a header-less write made
// explicit.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// logRequests wraps next to emit one structured log line per completed
// request: route, status, body bytes, wall latency, queue pressure at
// completion, and — when the handlers filled them in — the graph pattern
// hash, the recovery-ladder rung, and the breaker routing. Server errors
// log at ERROR, client errors at WARN, everything else at INFO.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rl := &reqLog{}
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), reqLogKey{}, rl)))
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		queued, running := s.pool.stats()
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", rec.bytes),
			slog.Float64("latency_ms", durationMS(time.Since(start))),
			slog.Int64("queued", queued),
			slog.Int64("running", running),
		}
		if rl.pattern != "" {
			attrs = append(attrs, slog.String("pattern", rl.pattern))
		}
		if rl.rung != "" {
			attrs = append(attrs, slog.String("rung", rl.rung))
		}
		if rl.breaker != "" {
			attrs = append(attrs, slog.String("breaker", rl.breaker))
		}
		// The request context may already be canceled (client gone); the
		// log line must still be emitted.
		s.log.LogAttrs(context.Background(), levelFor(status), "request", attrs...)
	})
}

// levelFor maps a response status onto a log level.
func levelFor(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}
