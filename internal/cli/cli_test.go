package cli

import (
	"context"
	"testing"
	"time"
)

func TestWithTimeoutUnbounded(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatalf("WithTimeout(0) set a deadline; want none")
	}
	if ctx.Err() != nil {
		t.Fatalf("ctx.Err() = %v, want nil", ctx.Err())
	}
	cancel()
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() after cancel = %v, want Canceled", ctx.Err())
	}
}

func TestWithTimeoutBounded(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), time.Hour)
	defer cancel()
	d, ok := ctx.Deadline()
	if !ok {
		t.Fatalf("WithTimeout(1h) set no deadline")
	}
	if until := time.Until(d); until <= 0 || until > time.Hour {
		t.Fatalf("deadline %v from now, want within (0, 1h]", until)
	}
}

func TestWithTimeoutInheritsCancellation(t *testing.T) {
	parent, parentCancel := context.WithCancel(context.Background())
	ctx, cancel := WithTimeout(parent, time.Hour)
	defer cancel()
	parentCancel()
	<-ctx.Done()
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want Canceled from parent", ctx.Err())
	}
}

func TestSignalContextDefault(t *testing.T) {
	ctx, stop := SignalContext()
	defer stop()
	if ctx.Err() != nil {
		t.Fatalf("fresh signal context already done: %v", ctx.Err())
	}
	stop()
	// After stop the context is released; a second stop must be safe.
	stop()
}
