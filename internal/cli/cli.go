// Package cli holds the command-line plumbing every bb* binary was
// repeating by hand: a root context canceled by shutdown signals and the
// -timeout bound layered on top of it. bbmap, bbsim, and bbtrade use it for
// SIGINT + -timeout; bbserve additionally listens for SIGTERM, which is its
// graceful-drain trigger.
package cli

import (
	"context"
	"os"
	"os/signal"
	"time"
)

// SignalContext returns a context canceled when any of the given signals
// arrives (os.Interrupt when none are named) and the stop function that
// releases the signal registration. After the first signal the registration
// is kept, so a second signal falls through to the default handler and
// kills a process that is slow to wind down — the conventional escape hatch
// during a graceful drain.
func SignalContext(signals ...os.Signal) (context.Context, context.CancelFunc) {
	if len(signals) == 0 {
		signals = []os.Signal{os.Interrupt}
	}
	return signal.NotifyContext(context.Background(), signals...)
}

// WithTimeout bounds ctx by d when d is positive and leaves it unbounded
// otherwise, mirroring the bb* binaries' "-timeout 0 means no limit"
// convention. The returned cancel function is non-nil in both cases and
// must be called to release the context's resources.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}
