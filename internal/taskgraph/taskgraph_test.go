package taskgraph

import (
	"os"
	"path/filepath"
	"testing"
)

// validConfig returns a well-formed two-task producer-consumer configuration
// (the paper's T1).
func validConfig() *Config {
	return &Config{
		Name: "t1",
		Processors: []Processor{
			{Name: "p1", Replenishment: 40},
			{Name: "p2", Replenishment: 40},
		},
		Memories:    []Memory{{Name: "m1", Capacity: 100}},
		Granularity: 0.001,
		Graphs: []*TaskGraph{{
			Name:   "T1",
			Period: 10,
			Tasks: []Task{
				{Name: "wa", Processor: "p1", WCET: 1},
				{Name: "wb", Processor: "p2", WCET: 1},
			},
			Buffers: []Buffer{
				{Name: "bab", From: "wa", To: "wb", Memory: "m1"},
			},
		}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no graphs", func(c *Config) { c.Graphs = nil }},
		{"negative granularity", func(c *Config) { c.Granularity = -1 }},
		{"empty processor name", func(c *Config) { c.Processors[0].Name = "" }},
		{"duplicate processor", func(c *Config) { c.Processors[1].Name = "p1" }},
		{"bad replenishment", func(c *Config) { c.Processors[0].Replenishment = 0 }},
		{"overhead too large", func(c *Config) { c.Processors[0].Overhead = 40 }},
		{"negative overhead", func(c *Config) { c.Processors[0].Overhead = -1 }},
		{"empty memory name", func(c *Config) { c.Memories[0].Name = "" }},
		{"duplicate memory", func(c *Config) { c.Memories = append(c.Memories, Memory{Name: "m1", Capacity: 5}) }},
		{"negative memory capacity", func(c *Config) { c.Memories[0].Capacity = -1 }},
		{"empty graph name", func(c *Config) { c.Graphs[0].Name = "" }},
		{"duplicate graph", func(c *Config) { c.Graphs = append(c.Graphs, c.Graphs[0]) }},
		{"bad period", func(c *Config) { c.Graphs[0].Period = 0 }},
		{"no tasks", func(c *Config) { c.Graphs[0].Tasks = nil }},
		{"empty task name", func(c *Config) { c.Graphs[0].Tasks[0].Name = "" }},
		{"duplicate task", func(c *Config) { c.Graphs[0].Tasks[1].Name = "wa" }},
		{"unknown processor", func(c *Config) { c.Graphs[0].Tasks[0].Processor = "nope" }},
		{"bad wcet", func(c *Config) { c.Graphs[0].Tasks[0].WCET = 0 }},
		{"negative budget weight", func(c *Config) { c.Graphs[0].Tasks[0].BudgetWeight = -2 }},
		{"empty buffer name", func(c *Config) { c.Graphs[0].Buffers[0].Name = "" }},
		{"unknown producer", func(c *Config) { c.Graphs[0].Buffers[0].From = "nope" }},
		{"unknown consumer", func(c *Config) { c.Graphs[0].Buffers[0].To = "nope" }},
		{"unknown memory", func(c *Config) { c.Graphs[0].Buffers[0].Memory = "nope" }},
		{"negative container size", func(c *Config) { c.Graphs[0].Buffers[0].ContainerSize = -1 }},
		{"negative initial tokens", func(c *Config) { c.Graphs[0].Buffers[0].InitialTokens = -1 }},
		{"negative size weight", func(c *Config) { c.Graphs[0].Buffers[0].SizeWeight = -1 }},
		{"negative max containers", func(c *Config) { c.Graphs[0].Buffers[0].MaxContainers = -1 }},
		{"min above max", func(c *Config) {
			c.Graphs[0].Buffers[0].MaxContainers = 2
			c.Graphs[0].Buffers[0].MinContainers = 3
		}},
		{"initial tokens above max", func(c *Config) {
			c.Graphs[0].Buffers[0].MaxContainers = 2
			c.Graphs[0].Buffers[0].InitialTokens = 3
		}},
		{"duplicate buffer", func(c *Config) {
			c.Graphs[0].Buffers = append(c.Graphs[0].Buffers, c.Graphs[0].Buffers[0])
		}},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestLookups(t *testing.T) {
	c := validConfig()
	if p, ok := c.Processor("p2"); !ok || p.Replenishment != 40 {
		t.Fatal("Processor lookup failed")
	}
	if _, ok := c.Processor("zz"); ok {
		t.Fatal("phantom processor found")
	}
	if m, ok := c.Memory("m1"); !ok || m.Capacity != 100 {
		t.Fatal("Memory lookup failed")
	}
	if _, ok := c.Memory("zz"); ok {
		t.Fatal("phantom memory found")
	}
	if task, ok := c.Graphs[0].Task("wb"); !ok || task.Processor != "p2" {
		t.Fatal("Task lookup failed")
	}
	if _, ok := c.Graphs[0].Task("zz"); ok {
		t.Fatal("phantom task found")
	}
}

func TestTasksOnAndBuffersIn(t *testing.T) {
	c := validConfig()
	if got := c.TasksOn("p1"); len(got) != 1 || got[0] != "wa" {
		t.Fatalf("TasksOn(p1) = %v", got)
	}
	if got := c.TasksOn("zz"); len(got) != 0 {
		t.Fatalf("TasksOn(zz) = %v", got)
	}
	if got := c.BuffersIn("m1"); len(got) != 1 || got[0] != "bab" {
		t.Fatalf("BuffersIn(m1) = %v", got)
	}
}

func TestEffectiveDefaults(t *testing.T) {
	b := &Buffer{}
	if b.EffectiveContainerSize() != 1 {
		t.Fatal("default container size != 1")
	}
	b.ContainerSize = 3
	if b.EffectiveContainerSize() != 3 {
		t.Fatal("explicit container size ignored")
	}
	task := &Task{}
	if task.EffectiveBudgetWeight() != 1 {
		t.Fatal("default budget weight != 1")
	}
	task.BudgetWeight = 0.5
	if task.EffectiveBudgetWeight() != 0.5 {
		t.Fatal("explicit budget weight ignored")
	}
	if b.EffectiveSizeWeight() != 1 {
		t.Fatal("default size weight != 1")
	}
	c := &Config{}
	if c.EffectiveGranularity() != DefaultGranularity {
		t.Fatal("default granularity wrong")
	}
	c.Granularity = 0.5
	if c.EffectiveGranularity() != 0.5 {
		t.Fatal("explicit granularity ignored")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	c := validConfig()
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != c.Name || len(back.Graphs) != 1 || back.Graphs[0].Period != 10 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Graphs[0].Tasks[1].Name != "wb" || back.Graphs[0].Buffers[0].From != "wa" {
		t.Fatal("round trip lost graph structure")
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile("/nonexistent/path.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"graphs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(invalid); err == nil {
		t.Fatal("semantically invalid config accepted")
	}
}

func TestRateHelpers(t *testing.T) {
	b := &Buffer{}
	if b.EffectiveProd() != 1 || b.EffectiveCons() != 1 {
		t.Fatal("default rates should be 1")
	}
	b.Prod, b.Cons = 3, 2
	if b.EffectiveProd() != 3 || b.EffectiveCons() != 2 {
		t.Fatal("explicit rates ignored")
	}
}

func TestMultiRateDetection(t *testing.T) {
	c := validConfig()
	if c.MultiRate() {
		t.Fatal("single-rate config reported multi-rate")
	}
	c.Graphs[0].Buffers[0].Cons = 4
	if !c.MultiRate() {
		t.Fatal("multi-rate config not detected")
	}
}

func TestValidateRejectsNegativeRates(t *testing.T) {
	c := validConfig()
	c.Graphs[0].Buffers[0].Prod = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative production rate accepted")
	}
}

func TestConfigClone(t *testing.T) {
	c := validConfig()
	cl := c.Clone()
	cl.Graphs[0].Tasks[0].WCET = 99
	cl.Processors[0].Replenishment = 1
	if c.Graphs[0].Tasks[0].WCET == 99 || c.Processors[0].Replenishment == 1 {
		t.Fatal("Clone shares state")
	}
}

func TestMappingFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	m := &Mapping{
		Budgets:    map[string]float64{"wa": 4.25},
		Capacities: map[string]int{"bab": 7},
		Objective:  11.5,
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMappingFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Budgets["wa"] != 4.25 || back.Capacities["bab"] != 7 || back.Objective != 11.5 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if _, err := ReadMappingFile("/nonexistent.json"); err == nil {
		t.Fatal("missing mapping file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMappingFile(bad); err == nil {
		t.Fatal("malformed mapping accepted")
	}
}

func TestMappingClone(t *testing.T) {
	m := &Mapping{
		Budgets:    map[string]float64{"wa": 4},
		Capacities: map[string]int{"bab": 10},
		Objective:  14,
	}
	c := m.Clone()
	c.Budgets["wa"] = 9
	c.Capacities["bab"] = 1
	if m.Budgets["wa"] != 4 || m.Capacities["bab"] != 10 {
		t.Fatal("Clone shares maps")
	}
}
