package taskgraph

import "testing"

func hashCfg() *Config {
	return &Config{
		Processors: []Processor{{Name: "p1", Replenishment: 10}, {Name: "p2", Replenishment: 12}},
		Memories:   []Memory{{Name: "m1", Capacity: 64}},
		Graphs: []*TaskGraph{{
			Name:   "g",
			Period: 10,
			Tasks: []Task{
				{Name: "a", Processor: "p1", WCET: 2},
				{Name: "b", Processor: "p2", WCET: 3},
			},
			Buffers: []Buffer{{Name: "ab", From: "a", To: "b", Memory: "m1"}},
		}},
	}
}

func TestStructureHashIgnoresNumericValues(t *testing.T) {
	base := hashCfg()
	want := base.StructureHash()

	tuned := hashCfg()
	tuned.Graphs[0].Period = 20
	tuned.Graphs[0].Tasks[0].WCET = 7
	tuned.Graphs[0].Tasks[1].BudgetWeight = 3
	tuned.Graphs[0].Buffers[0].SizeWeight = 2
	tuned.Graphs[0].Buffers[0].ContainerSize = 9
	tuned.Processors[0].Replenishment = 99
	tuned.Processors[1].Overhead = 0.5
	tuned.Memories[0].Capacity = 4096
	tuned.Granularity = 0.25
	if got := tuned.StructureHash(); got != want {
		t.Fatalf("hash changed with numeric tuning: %#x != %#x", got, want)
	}

	// InitialTokens shifts constants in h, not the pattern — as long as the
	// min-containers bound stays inactive.
	tok := hashCfg()
	tok.Graphs[0].Buffers[0].InitialTokens = 2
	if got := tok.StructureHash(); got != want {
		t.Fatalf("hash changed with initial tokens only: %#x != %#x", got, want)
	}
}

func TestStructureHashSeesTopology(t *testing.T) {
	want := hashCfg().StructureHash()
	mutate := map[string]func(*Config){
		"renamed task": func(c *Config) { c.Graphs[0].Tasks[0].Name = "a2" },
		"rebound task": func(c *Config) { c.Graphs[0].Tasks[1].Processor = "p1" },
		"extra buffer": func(c *Config) {
			c.Graphs[0].Buffers = append(c.Graphs[0].Buffers,
				Buffer{Name: "ba", From: "b", To: "a", Memory: "m1", InitialTokens: 1})
		},
		"capacity cap":    func(c *Config) { c.Graphs[0].Buffers[0].MaxContainers = 4 },
		"forced minimum":  func(c *Config) { c.Graphs[0].Buffers[0].MinContainers = 2 },
		"moved memory":    func(c *Config) { c.Graphs[0].Buffers[0].Memory = "m2" },
		"multi-rate":      func(c *Config) { c.Graphs[0].Buffers[0].Prod = 2 },
		"latency bound":   func(c *Config) { c.Graphs[0].Latencies = []LatencyConstraint{{From: "a", To: "b", Bound: 50}} },
		"extra processor": func(c *Config) { c.Processors = append(c.Processors, Processor{Name: "p3", Replenishment: 5}) },
	}
	for name, fn := range mutate {
		c := hashCfg()
		fn(c)
		if got := c.StructureHash(); got == want {
			t.Errorf("%s: hash unchanged (%#x); topology edits must move it", name, got)
		}
	}
}

func TestStructureHashMinContainersBelowFillIsValueOnly(t *testing.T) {
	// A minimum at or below the initial fill emits no constraint row, so it
	// must not move the hash; raising it above the fill must.
	base := hashCfg()
	base.Graphs[0].Buffers[0].InitialTokens = 3
	want := base.StructureHash()

	inactive := hashCfg()
	inactive.Graphs[0].Buffers[0].InitialTokens = 3
	inactive.Graphs[0].Buffers[0].MinContainers = 2
	if got := inactive.StructureHash(); got != want {
		t.Fatalf("inactive minimum moved the hash: %#x != %#x", got, want)
	}
	active := hashCfg()
	active.Graphs[0].Buffers[0].InitialTokens = 3
	active.Graphs[0].Buffers[0].MinContainers = 5
	if got := active.StructureHash(); got == want {
		t.Fatalf("active minimum did not move the hash (%#x)", got)
	}
}
