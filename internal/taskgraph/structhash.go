package taskgraph

// StructureHash digests the configuration's topology: everything that
// shapes the cone program's sparsity pattern — graph, task, and buffer
// identities and wiring, processor and memory membership, multi-rate
// factors, and which optional constraint rows exist (capacity caps, forced
// minima, latency bounds) — and nothing that only scales the program's
// numeric values (WCETs, periods, replenishments, weights, memory sizes,
// granularity). Configurations that differ only in those numbers hash
// identically, which is exactly the serving fast path: requests for a
// shared app template with tuned parameters all land on one pattern key
// and share symbolic analysis, pooled workspaces, and breaker state.
//
// The hash is advisory. The solver-level socp.PatternCache verifies
// sparsity patterns entry for entry on every lookup, so a collision (or a
// structural detail this digest abstracts away) can never corrupt a
// result — it only groups serving statistics more coarsely.
func (c *Config) StructureHash() uint64 {
	h := newStructHasher()
	h.str('P', "")
	for i := range c.Processors {
		h.str('p', c.Processors[i].Name)
	}
	h.str('M', "")
	for i := range c.Memories {
		h.str('m', c.Memories[i].Name)
	}
	for _, tg := range c.Graphs {
		h.str('G', tg.Name)
		for i := range tg.Tasks {
			w := &tg.Tasks[i]
			h.str('t', w.Name)
			h.str('@', w.Processor)
		}
		for i := range tg.Buffers {
			b := &tg.Buffers[i]
			h.str('b', b.Name)
			h.str('<', b.From)
			h.str('>', b.To)
			h.str('v', b.Memory)
			// The capacity bounds add constraint rows only when active
			// (MaxContainers > 0; MinContainers above the initial fill), so
			// only their presence is structural, not their values.
			h.flag('X', b.MaxContainers > 0)
			h.flag('N', b.MinContainers-b.InitialTokens > 0)
			// Multi-rate factors route the whole configuration through the
			// HSDF expansion, changing the program's shape entirely.
			h.num('x', uint64(b.EffectiveProd()))
			h.num('y', uint64(b.EffectiveCons()))
		}
		for i := range tg.Latencies {
			lc := &tg.Latencies[i]
			h.str('L', lc.From)
			h.str('l', lc.To)
		}
	}
	return h.sum
}

// structHasher is FNV-1a over a tag-and-length-prefixed byte stream, so
// adjacent fields cannot alias ("ab","c" vs "a","bc") and absent sections
// hash differently from empty ones.
type structHasher struct{ sum uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func newStructHasher() *structHasher { return &structHasher{sum: fnvOffset} }

func (h *structHasher) byte(b byte) {
	h.sum ^= uint64(b)
	h.sum *= fnvPrime
}

func (h *structHasher) num(tag byte, v uint64) {
	h.byte(tag)
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

func (h *structHasher) str(tag byte, s string) {
	h.num(tag, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

func (h *structHasher) flag(tag byte, v bool) {
	if v {
		h.num(tag, 1)
	} else {
		h.num(tag, 0)
	}
}
