// Package taskgraph defines the paper's application model (§II-A): a
// configuration C = (Q, P, M, µ, ϱ, o, ς, g) of task graphs mapped onto a
// multiprocessor with budget schedulers, and the mapped configuration that a
// solve produces (budgets β and buffer capacities γ).
//
// Conventions:
//   - all times (replenishment intervals, WCETs, budgets, periods) are in
//     Mcycles as float64, matching the paper's experiments;
//   - the throughput requirement µ of a task graph is expressed as the
//     required period in Mcycles (the paper's "throughput requirement is a
//     period of 10 Mcycles");
//   - buffer capacities are in containers (integers), container sizes ζ in
//     abstract memory units.
package taskgraph

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Processor is a processing element running a budget scheduler (e.g. TDM).
type Processor struct {
	Name string `json:"name"`
	// Replenishment is the interval ϱ(p) within which every task's budget is
	// guaranteed, in Mcycles.
	Replenishment float64 `json:"replenishment"`
	// Overhead is the worst-case scheduling overhead o(p) per replenishment
	// interval, in Mcycles (pre-allocated budget).
	Overhead float64 `json:"overhead,omitempty"`
}

// Memory is a storage resource holding FIFO buffers.
type Memory struct {
	Name string `json:"name"`
	// Capacity is the storage capacity ς(m) in memory units.
	Capacity int `json:"capacity"`
}

// Task is a vertex of a task graph, bound to a processor.
type Task struct {
	Name string `json:"name"`
	// Processor is the name of the processor π(w) the task executes on.
	Processor string `json:"processor"`
	// WCET is the worst-case execution time χ(w) of one task execution, in
	// Mcycles of the processor it is bound to.
	WCET float64 `json:"wcet"`
	// BudgetWeight is the objective weight a(w) for the task's budget; 0
	// means the default weight of 1.
	BudgetWeight float64 `json:"budgetWeight,omitempty"`
}

// Buffer is a FIFO channel between two tasks of the same task graph.
type Buffer struct {
	Name string `json:"name"`
	From string `json:"from"`
	To   string `json:"to"`
	// ContainerSize is ζ(b), the size of one container in memory units
	// (default 1).
	ContainerSize int `json:"containerSize,omitempty"`
	// InitialTokens is ι(b), the number of initially filled containers.
	InitialTokens int `json:"initialTokens,omitempty"`
	// Memory names the memory ν(b) the buffer is placed in.
	Memory string `json:"memory"`
	// SizeWeight is the objective weight b(b) for the buffer's capacity; 0
	// means the default weight of 1.
	SizeWeight float64 `json:"sizeWeight,omitempty"`
	// MaxContainers optionally caps the capacity γ(b) (0 = uncapped). Used
	// to explore the budget/buffer trade-off, as in the paper's experiments.
	MaxContainers int `json:"maxContainers,omitempty"`
	// MinContainers optionally forces a minimum capacity (0 = none).
	MinContainers int `json:"minContainers,omitempty"`
	// Prod and Cons are the multi-rate extension: every execution of the
	// producer fills Prod containers and every execution of the consumer
	// drains Cons containers (0 means 1, the paper's single-rate case).
	// Multi-rate graphs are analyzed through their HSDF expansion and mapped
	// with the hybrid solver in internal/mrate.
	Prod int `json:"prod,omitempty"`
	Cons int `json:"cons,omitempty"`
}

// EffectiveProd returns the production rate with the default of 1 applied.
func (b *Buffer) EffectiveProd() int {
	if b.Prod <= 0 {
		return 1
	}
	return b.Prod
}

// EffectiveCons returns the consumption rate with the default of 1 applied.
func (b *Buffer) EffectiveCons() int {
	if b.Cons <= 0 {
		return 1
	}
	return b.Cons
}

// MultiRate reports whether any buffer in the configuration has non-unit
// production or consumption rates.
func (c *Config) MultiRate() bool {
	for _, g := range c.Graphs {
		for i := range g.Buffers {
			if g.Buffers[i].EffectiveProd() != 1 || g.Buffers[i].EffectiveCons() != 1 {
				return true
			}
		}
	}
	return false
}

// LatencyConstraint bounds the end-to-end latency from a source task's
// activation to a sink task's completion within one graph (extension: these
// constraints are affine in the cone program's schedule variables, so the
// joint solve honours them directly).
type LatencyConstraint struct {
	From  string  `json:"from"`
	To    string  `json:"to"`
	Bound float64 `json:"bound"` // Mcycles
}

// TaskGraph is one job: a directed multigraph of tasks and buffers with a
// throughput requirement.
type TaskGraph struct {
	Name string `json:"name"`
	// Period is the throughput requirement µ(T): the task graph must sustain
	// one execution of every task per Period Mcycles.
	Period  float64  `json:"period"`
	Tasks   []Task   `json:"tasks"`
	Buffers []Buffer `json:"buffers"`
	// Latencies optionally bound end-to-end latencies (see
	// LatencyConstraint).
	Latencies []LatencyConstraint `json:"latencies,omitempty"`
}

// Config is the full mapping input C = (Q, P, M, µ, ϱ, o, ς, g).
type Config struct {
	Name       string      `json:"name,omitempty"`
	Processors []Processor `json:"processors"`
	Memories   []Memory    `json:"memories"`
	// Granularity is the budget allocation granularity g (in Mcycles);
	// budgets are rounded up to multiples of it. 0 selects 1e-6 Mcycles
	// (one cycle).
	Granularity float64      `json:"granularity,omitempty"`
	Graphs      []*TaskGraph `json:"graphs"`
}

// DefaultGranularity is one cycle expressed in Mcycles.
const DefaultGranularity = 1e-6

// EffectiveGranularity returns the granularity with the default applied.
func (c *Config) EffectiveGranularity() float64 {
	if c.Granularity <= 0 {
		return DefaultGranularity
	}
	return c.Granularity
}

// Task looks up a task by name across all graphs; the bool reports presence.
func (tg *TaskGraph) Task(name string) (*Task, bool) {
	for i := range tg.Tasks {
		if tg.Tasks[i].Name == name {
			return &tg.Tasks[i], true
		}
	}
	return nil, false
}

// Processor looks up a processor by name.
func (c *Config) Processor(name string) (*Processor, bool) {
	for i := range c.Processors {
		if c.Processors[i].Name == name {
			return &c.Processors[i], true
		}
	}
	return nil, false
}

// Memory looks up a memory by name.
func (c *Config) Memory(name string) (*Memory, bool) {
	for i := range c.Memories {
		if c.Memories[i].Name == name {
			return &c.Memories[i], true
		}
	}
	return nil, false
}

// TasksOn returns the names of all tasks bound to processor p across all
// graphs (the paper's τ(p)).
func (c *Config) TasksOn(p string) []string {
	var out []string
	for _, g := range c.Graphs {
		for _, t := range g.Tasks {
			if t.Processor == p {
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// BuffersIn returns the (graph, buffer) names of all buffers placed in
// memory m (the paper's ψ(m)).
func (c *Config) BuffersIn(m string) []string {
	var out []string
	for _, g := range c.Graphs {
		for _, b := range g.Buffers {
			if b.Memory == m {
				out = append(out, b.Name)
			}
		}
	}
	return out
}

// maxIntField bounds every integer field read from external input
// (capacities, container sizes, token counts, rates). Products of two such
// fields stay well inside int64, so downstream arithmetic cannot overflow.
const maxIntField = 1 << 31

// finite reports whether x is a usable float input (not NaN, not ±Inf).
// Plain sign comparisons silently accept NaN — every float read from
// external input must pass through this first.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Validate checks the configuration for structural and semantic errors.
func (c *Config) Validate() error {
	if len(c.Graphs) == 0 {
		return fmt.Errorf("taskgraph: configuration has no task graphs")
	}
	for i, g := range c.Graphs {
		if g == nil {
			return fmt.Errorf("taskgraph: graph %d is null", i)
		}
	}
	if !finite(c.Granularity) || c.Granularity < 0 {
		return fmt.Errorf("taskgraph: invalid granularity %v", c.Granularity)
	}
	procs := map[string]bool{}
	for _, p := range c.Processors {
		if p.Name == "" {
			return fmt.Errorf("taskgraph: processor with empty name")
		}
		if procs[p.Name] {
			return fmt.Errorf("taskgraph: duplicate processor %q", p.Name)
		}
		procs[p.Name] = true
		if !finite(p.Replenishment) || p.Replenishment <= 0 {
			return fmt.Errorf("taskgraph: processor %q has invalid replenishment interval %v", p.Name, p.Replenishment)
		}
		if !finite(p.Overhead) || p.Overhead < 0 || p.Overhead >= p.Replenishment {
			return fmt.Errorf("taskgraph: processor %q overhead %v outside [0, %v)", p.Name, p.Overhead, p.Replenishment)
		}
	}
	mems := map[string]bool{}
	for _, m := range c.Memories {
		if m.Name == "" {
			return fmt.Errorf("taskgraph: memory with empty name")
		}
		if mems[m.Name] {
			return fmt.Errorf("taskgraph: duplicate memory %q", m.Name)
		}
		mems[m.Name] = true
		if m.Capacity < 0 || m.Capacity > maxIntField {
			return fmt.Errorf("taskgraph: memory %q has capacity %d outside [0, 2^31]", m.Name, m.Capacity)
		}
	}
	graphNames := map[string]bool{}
	taskNames := map[string]bool{} // task names are global (WQ is a union)
	for _, g := range c.Graphs {
		if g.Name == "" {
			return fmt.Errorf("taskgraph: task graph with empty name")
		}
		if graphNames[g.Name] {
			return fmt.Errorf("taskgraph: duplicate task graph %q", g.Name)
		}
		graphNames[g.Name] = true
		if !finite(g.Period) || g.Period <= 0 {
			return fmt.Errorf("taskgraph: graph %q has invalid period %v", g.Name, g.Period)
		}
		if len(g.Tasks) == 0 {
			return fmt.Errorf("taskgraph: graph %q has no tasks", g.Name)
		}
		local := map[string]bool{}
		for _, t := range g.Tasks {
			if t.Name == "" {
				return fmt.Errorf("taskgraph: graph %q has a task with empty name", g.Name)
			}
			if taskNames[t.Name] {
				return fmt.Errorf("taskgraph: duplicate task name %q", t.Name)
			}
			taskNames[t.Name] = true
			local[t.Name] = true
			if !procs[t.Processor] {
				return fmt.Errorf("taskgraph: task %q references unknown processor %q", t.Name, t.Processor)
			}
			if !finite(t.WCET) || t.WCET <= 0 {
				return fmt.Errorf("taskgraph: task %q has invalid WCET %v", t.Name, t.WCET)
			}
			if !finite(t.BudgetWeight) || t.BudgetWeight < 0 {
				return fmt.Errorf("taskgraph: task %q has invalid budget weight %v", t.Name, t.BudgetWeight)
			}
			if p, _ := c.Processor(t.Processor); t.WCET > 0 && p != nil {
				// A task whose WCET exceeds the replenishment interval can
				// still be scheduled (its execution spans intervals), so no
				// constraint here beyond positivity.
				_ = p
			}
		}
		bufNames := map[string]bool{}
		for _, b := range g.Buffers {
			if b.Name == "" {
				return fmt.Errorf("taskgraph: graph %q has a buffer with empty name", g.Name)
			}
			if bufNames[b.Name] {
				return fmt.Errorf("taskgraph: duplicate buffer %q in graph %q", b.Name, g.Name)
			}
			bufNames[b.Name] = true
			if !local[b.From] {
				return fmt.Errorf("taskgraph: buffer %q references unknown producer %q", b.Name, b.From)
			}
			if !local[b.To] {
				return fmt.Errorf("taskgraph: buffer %q references unknown consumer %q", b.Name, b.To)
			}
			if !mems[b.Memory] {
				return fmt.Errorf("taskgraph: buffer %q references unknown memory %q", b.Name, b.Memory)
			}
			if b.ContainerSize < 0 || b.ContainerSize > maxIntField {
				return fmt.Errorf("taskgraph: buffer %q has container size %d outside [0, 2^31]", b.Name, b.ContainerSize)
			}
			if b.InitialTokens < 0 || b.InitialTokens > maxIntField {
				return fmt.Errorf("taskgraph: buffer %q has initial tokens %d outside [0, 2^31]", b.Name, b.InitialTokens)
			}
			if !finite(b.SizeWeight) || b.SizeWeight < 0 {
				return fmt.Errorf("taskgraph: buffer %q has invalid size weight %v", b.Name, b.SizeWeight)
			}
			if b.MaxContainers < 0 || b.MinContainers < 0 ||
				b.MaxContainers > maxIntField || b.MinContainers > maxIntField {
				return fmt.Errorf("taskgraph: buffer %q has capacity bound outside [0, 2^31]", b.Name)
			}
			if b.MaxContainers > 0 && b.MinContainers > b.MaxContainers {
				return fmt.Errorf("taskgraph: buffer %q has min containers %d above max %d",
					b.Name, b.MinContainers, b.MaxContainers)
			}
			if b.MaxContainers > 0 && b.InitialTokens > b.MaxContainers {
				return fmt.Errorf("taskgraph: buffer %q has more initial tokens than max capacity", b.Name)
			}
			if b.Prod < 0 || b.Cons < 0 || b.Prod > maxIntField || b.Cons > maxIntField {
				return fmt.Errorf("taskgraph: buffer %q has rates outside [0, 2^31]", b.Name)
			}
		}
		for _, lc := range g.Latencies {
			if !local[lc.From] {
				return fmt.Errorf("taskgraph: latency constraint references unknown task %q", lc.From)
			}
			if !local[lc.To] {
				return fmt.Errorf("taskgraph: latency constraint references unknown task %q", lc.To)
			}
			if !finite(lc.Bound) || lc.Bound <= 0 {
				return fmt.Errorf("taskgraph: latency constraint %s→%s has invalid bound %v", lc.From, lc.To, lc.Bound)
			}
		}
	}
	return nil
}

// EffectiveContainerSize returns ζ(b) with the default of 1 applied.
func (b *Buffer) EffectiveContainerSize() int {
	if b.ContainerSize <= 0 {
		return 1
	}
	return b.ContainerSize
}

// EffectiveBudgetWeight returns a(w) with the default of 1 applied.
func (t *Task) EffectiveBudgetWeight() float64 {
	if t.BudgetWeight <= 0 {
		return 1
	}
	return t.BudgetWeight
}

// EffectiveSizeWeight returns b(b) with the default of 1 applied.
func (b *Buffer) EffectiveSizeWeight() float64 {
	if b.SizeWeight <= 0 {
		return 1
	}
	return b.SizeWeight
}

// Mapping is the output of a budget/buffer computation: the mapped
// configuration of §II-A2.
type Mapping struct {
	// Budgets maps task name to the allocated budget β(w) in Mcycles per
	// replenishment interval of its processor.
	Budgets map[string]float64 `json:"budgets"`
	// Capacities maps buffer name to the allocated capacity γ(b) in
	// containers.
	Capacities map[string]int `json:"capacities"`
	// Objective is the achieved weighted objective value (after rounding).
	Objective float64 `json:"objective"`
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	c := &Mapping{
		Budgets:    make(map[string]float64, len(m.Budgets)),
		Capacities: make(map[string]int, len(m.Capacities)),
		Objective:  m.Objective,
	}
	for k, v := range m.Budgets {
		c.Budgets[k] = v
	}
	for k, v := range m.Capacities {
		c.Capacities[k] = v
	}
	return c
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	data, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("taskgraph: clone marshal: %v", err)) // cannot happen
	}
	var out Config
	if err := json.Unmarshal(data, &out); err != nil {
		panic(fmt.Sprintf("taskgraph: clone unmarshal: %v", err))
	}
	return &out
}

// WriteFile writes the configuration as indented JSON.
func (c *Config) WriteFile(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("taskgraph: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteFile writes the mapping as indented JSON.
func (m *Mapping) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("taskgraph: marshal mapping: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Validate rejects mappings whose numbers would poison downstream analysis
// or simulation: budgets must be finite and non-negative, capacities within
// [0, 2^31], and the objective finite.
func (m *Mapping) Validate() error {
	// Report in sorted-key order so the same bad mapping always names the
	// same offender.
	names := make([]string, 0, len(m.Budgets))
	for name := range m.Budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if b := m.Budgets[name]; !finite(b) || b < 0 {
			return fmt.Errorf("taskgraph: mapping budget for %q is invalid: %v", name, b)
		}
	}
	names = names[:0]
	for name := range m.Capacities {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if cap := m.Capacities[name]; cap < 0 || cap > maxIntField {
			return fmt.Errorf("taskgraph: mapping capacity for %q outside [0, 2^31]: %d", name, cap)
		}
	}
	if !finite(m.Objective) {
		return fmt.Errorf("taskgraph: mapping objective is not finite: %v", m.Objective)
	}
	return nil
}

// ParseMapping parses and validates a mapping from JSON bytes. It never
// panics, whatever the input.
func ParseMapping(data []byte) (*Mapping, error) {
	var m Mapping
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("taskgraph: parse mapping: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ReadMappingFile parses and validates a mapping from a JSON file.
func ReadMappingFile(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseMapping(data)
	if err != nil {
		return nil, fmt.Errorf("taskgraph: %s: %w", path, err)
	}
	return m, nil
}

// Parse parses and validates a configuration from JSON bytes. It never
// panics, whatever the input.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("taskgraph: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ReadFile parses a configuration from a JSON file and validates it.
func ReadFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("taskgraph: %s: %w", path, err)
	}
	return c, nil
}
