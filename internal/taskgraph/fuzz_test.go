package taskgraph

import (
	"encoding/json"
	"testing"
)

// FuzzReadConfig asserts the parser's contract: arbitrary bytes either
// produce a configuration that passes Validate or an error — never a panic.
// The seed corpus covers the historical failure classes: null graph entries,
// NaN/Inf floats smuggled as JSON strings are rejected by encoding/json, but
// huge integer fields and dangling references decode fine and must be caught
// by validation.
func FuzzReadConfig(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`{"graphs": [null]}`,
		`{"graphs": [{"name": "g", "period": 10,
		  "tasks": [{"name": "a", "processor": "p", "wcet": 1}]}],
		  "processors": [{"name": "p", "replenishment": 5}]}`,
		`{"graphs": [{"name": "g", "period": 1e999,
		  "tasks": [{"name": "a", "processor": "p", "wcet": 1}]}],
		  "processors": [{"name": "p", "replenishment": 5}]}`,
		`{"graphs": [{"name": "g", "period": 10,
		  "tasks": [{"name": "a", "processor": "p", "wcet": 1}],
		  "buffers": [{"name": "b", "from": "a", "to": "missing", "memory": "m"}]}],
		  "processors": [{"name": "p", "replenishment": 5}],
		  "memories": [{"name": "m", "capacity": 100}]}`,
		`{"graphs": [{"name": "g", "period": 10,
		  "tasks": [{"name": "a", "processor": "p", "wcet": 1}],
		  "buffers": [{"name": "b", "from": "a", "to": "a", "memory": "m",
		    "containerSize": 4294967296, "initialTokens": 9999999999}]}],
		  "processors": [{"name": "p", "replenishment": 5}],
		  "memories": [{"name": "m", "capacity": 100}]}`,
		`{"graphs": [{"name": "g", "name": "g"}, {"name": "g"}]}`,
		`{"granularity": -1, "graphs": [{"name": "g", "period": 10, "tasks": []}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("Parse returned nil config and nil error")
		}
		// A parsed configuration must survive the operations the pipeline
		// performs unconditionally.
		if err := c.Validate(); err != nil {
			t.Fatalf("Parse accepted a config Validate rejects: %v", err)
		}
		c.Clone()
		c.MultiRate()
		c.EffectiveGranularity()
		if _, err := json.Marshal(c); err != nil {
			t.Fatalf("accepted config does not round-trip: %v", err)
		}
	})
}

// FuzzReadMapping asserts the same contract for mapping files: parse +
// validate or error, never a panic, and accepted mappings have finite
// non-negative budgets and bounded capacities.
func FuzzReadMapping(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`{"budgets": {"a": 1.5}, "capacities": {"b": 2}, "objective": 3.5}`,
		`{"budgets": {"a": -1}}`,
		`{"budgets": {"a": 1e999}}`,
		`{"capacities": {"b": -3}}`,
		`{"capacities": {"b": 4294967296}}`,
		`{"budgets": null, "capacities": null}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseMapping(data)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("ParseMapping returned nil mapping and nil error")
		}
		for name, b := range m.Budgets {
			if !finite(b) || b < 0 {
				t.Fatalf("accepted mapping has invalid budget %q = %v", name, b)
			}
		}
		for name, cap := range m.Capacities {
			if cap < 0 || cap > maxIntField {
				t.Fatalf("accepted mapping has invalid capacity %q = %d", name, cap)
			}
		}
		m.Clone()
	})
}
