package sdf

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestRepetitionVectorClassic(t *testing.T) {
	// a --(2,3)--> b: q = (3, 2).
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 2, 3, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[a] != 3 || q[b] != 2 {
		t.Fatalf("q = %v, want [3 2]", q)
	}
}

func TestRepetitionVectorChain(t *testing.T) {
	// a --(1,2)--> b --(3,1)--> c: q(b) = q(a)/2, q(c) = 3q(b) → (2,1,3).
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	c := g.AddActor("c", 1)
	g.AddEdge("ab", a, b, 1, 2, 0)
	g.AddEdge("bc", b, c, 3, 1, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[a] != 2 || q[b] != 1 || q[c] != 3 {
		t.Fatalf("q = %v, want [2 1 3]", q)
	}
}

func TestInconsistentDetected(t *testing.T) {
	// a→b with (1,1) and a second edge (2,1): q(b) = q(a) and q(b) = 2q(a).
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("e1", a, b, 1, 1, 0)
	g.AddEdge("e2", a, b, 2, 1, 0)
	if _, err := g.RepetitionVector(); err != ErrInconsistent {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
	if g.Consistent() {
		t.Fatal("inconsistent graph reported consistent")
	}
}

func TestRepetitionVectorComponents(t *testing.T) {
	// Two disconnected single-rate actors: q = (1, 1), independently.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 2)
	g.AddEdge("aa", a, a, 1, 1, 1)
	g.AddEdge("bb", b, b, 1, 1, 1)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[a] != 1 || q[b] != 1 {
		t.Fatalf("q = %v, want [1 1]", q)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := NewGraph().Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := NewGraph()
	a := g.AddActor("a", -1)
	if err := g.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
	g2 := NewGraph()
	x := g2.AddActor("x", 1)
	g2.AddEdge("bad", x, x, 0, 1, 0)
	if err := g2.Validate(); err == nil {
		t.Fatal("zero production rate accepted")
	}
	g3 := NewGraph()
	y := g3.AddActor("y", 1)
	g3.AddEdge("bad", y, y, 1, 1, -1)
	if err := g3.Validate(); err == nil {
		t.Fatal("negative tokens accepted")
	}
	_ = a
}

func TestExpansionSingleRateIdentity(t *testing.T) {
	// A single-rate ring expands to itself (plus sequencing self-loops).
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 4)
	g.AddEdge("ab", a, b, 1, 1, 1)
	g.AddEdge("ba", b, a, 1, 1, 2)
	ex, err := g.ToSRDF()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Copies[a]) != 1 || len(ex.Copies[b]) != 1 {
		t.Fatalf("copies: %v", ex.Repetitions)
	}
	mp, err := ex.Graph.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// Ring MCM = (2+4)/(1+2) = 2; self-loops give 2 and 4. Max = 4.
	if !almostEqual(mp, 4, 1e-9) {
		t.Fatalf("iteration period = %v, want 4", mp)
	}
}

func TestExpansionDownsampler(t *testing.T) {
	// a --(2,3)--> b, no tokens; serial actors (auto-concurrency off).
	// One iteration = 3 firings of a (1 each) and 2 of b (1 each).
	// The critical chain: a-sequence cycle 3·1 = 3; b cycle 2; dependency
	// a0,a1 → b0 and a1,a2 → b1 within the iteration.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 2, 3, 0)
	ex, err := g.ToSRDF()
	if err != nil {
		t.Fatal(err)
	}
	if ex.Repetitions[a] != 3 || ex.Repetitions[b] != 2 {
		t.Fatalf("repetitions %v", ex.Repetitions)
	}
	period, err := g.IterationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// The a-sequence cycle dominates: 3 time units per iteration.
	if !almostEqual(period, 3, 1e-9) {
		t.Fatalf("iteration period = %v, want 3", period)
	}
	// Self-timed latency sanity: b0 needs a0 and a1 (tokens 0..2 produced by
	// firings 0..1), so with durations 1, b0 can start at 2 at the earliest.
	starts, err := ex.Graph.SelfTimed(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := starts[ex.Copies[b][0]][0]; !almostEqual(got, 2, 1e-9) {
		t.Fatalf("b#0 first start = %v, want 2", got)
	}
}

func TestExpansionWithInitialTokens(t *testing.T) {
	// Ring a→b (1,1,2 tokens), b→a (1,1,0): classic two-stage pipeline.
	g := NewGraph()
	a := g.AddActor("a", 3)
	b := g.AddActor("b", 5)
	g.AddEdge("ab", a, b, 1, 1, 2)
	g.AddEdge("ba", b, a, 1, 1, 0)
	period, err := g.IterationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// Cycle a→b→a: (3+5)/(2+0) = 4; self-loops 3 and 5 → MCM = 5.
	if !almostEqual(period, 5, 1e-9) {
		t.Fatalf("period = %v, want 5", period)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Token-free cycle deadlocks.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 1, 1, 0)
	g.AddEdge("ba", b, a, 1, 1, 0)
	free, err := g.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("deadlock not detected")
	}
	// One token frees it.
	g2 := NewGraph()
	a2 := g2.AddActor("a", 1)
	b2 := g2.AddActor("b", 1)
	g2.AddEdge("ab", a2, b2, 1, 1, 1)
	g2.AddEdge("ba", b2, a2, 1, 1, 0)
	free2, err := g2.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if !free2 {
		t.Fatal("live graph reported deadlocked")
	}
}

func TestMultiRateDeadlockNeedsFullBatch(t *testing.T) {
	// b consumes 3 per firing from a cycle holding only 2 tokens: deadlock
	// even though tokens are present.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 3, 3, 2)
	g.AddEdge("ba", b, a, 1, 1, 0)
	free, err := g.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("insufficient-batch deadlock not detected")
	}
}

func TestIterationPeriodMultiRatePipeline(t *testing.T) {
	// Upsampler: a --(3,1)--> b with a slow a: q = (1, 3).
	// Iteration: 1 firing of a (duration 4), 3 of b (duration 1 each,
	// serial). b's firings all depend on a's single firing.
	g := NewGraph()
	a := g.AddActor("a", 4)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 3, 1, 0)
	period, err := g.IterationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// Cycles: a self-sequence 4/1 = 4; b sequence 3/1 = 3 → 4.
	if !almostEqual(period, 4, 1e-9) {
		t.Fatalf("period = %v, want 4", period)
	}
	// Throughput interpretation: b fires 3 times per 4 time units.
	ex, _ := g.ToSRDF()
	if ex.Repetitions[b] != 3 {
		t.Fatalf("q(b) = %d", ex.Repetitions[b])
	}
}

func TestAccessors(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 2.5)
	if g.NumActors() != 1 || g.Actor(a).Duration != 2.5 || g.Actor(a).Name != "a" {
		t.Fatal("accessors broken")
	}
}
