package sdf

import (
	"testing"
)

func TestCSDFValidate(t *testing.T) {
	if err := NewCSDFGraph().Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := NewCSDFGraph()
	a := g.AddActor("a") // no phases
	if err := g.Validate(); err == nil {
		t.Fatal("phaseless actor accepted")
	}
	_ = a
	g2 := NewCSDFGraph()
	x := g2.AddActor("x", -1)
	_ = x
	if err := g2.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
	g3 := NewCSDFGraph()
	p := g3.AddActor("p", 1, 1)
	c := g3.AddActor("c", 1)
	g3.AddEdge("e", p, c, []int{1}, []int{1}, 0) // prod seq too short
	if err := g3.Validate(); err == nil {
		t.Fatal("sequence length mismatch accepted")
	}
	g4 := NewCSDFGraph()
	p4 := g4.AddActor("p", 1)
	c4 := g4.AddActor("c", 1)
	g4.AddEdge("e", p4, c4, []int{0}, []int{1}, 0) // zero-sum production
	if err := g4.Validate(); err == nil {
		t.Fatal("zero-sum sequence accepted")
	}
}

// TestCSDFEquivalentToSDF: constant-rate CSDF must match the plain SDF
// analysis exactly.
func TestCSDFEquivalentToSDF(t *testing.T) {
	// SDF version: a --(2,3)--> b, ring back with tokens.
	s := NewGraph()
	sa := s.AddActor("a", 2)
	sb := s.AddActor("b", 5)
	s.AddEdge("ab", sa, sb, 2, 3, 0)
	s.AddEdge("ba", sb, sa, 3, 2, 12)
	wantPeriod, err := s.IterationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	// CSDF version with single-phase actors and the same rates.
	c := NewCSDFGraph()
	ca := c.AddActor("a", 2)
	cb := c.AddActor("b", 5)
	c.AddEdge("ab", ca, cb, []int{2}, []int{3}, 0)
	c.AddEdge("ba", cb, ca, []int{3}, []int{2}, 12)
	got, err := c.IterationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, wantPeriod, 1e-9) {
		t.Fatalf("CSDF period %v != SDF period %v", got, wantPeriod)
	}
}

// TestCSDFPhasedProducer: a two-phase producer that emits only in its second
// phase delays the consumer accordingly.
func TestCSDFPhasedProducer(t *testing.T) {
	g := NewCSDFGraph()
	// a: phases (compute: 3, emit: 1); emits 1 token in phase 2 only.
	a := g.AddActor("a", 3, 1)
	// b: single phase consuming the token.
	b := g.AddActor("b", 2)
	g.AddEdge("ab", a, b, []int{0, 1}, []int{1}, 0)
	ex, err := g.ToSRDF()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Copies[a]) != 2 || len(ex.Copies[b]) != 1 {
		t.Fatalf("copies: a=%d b=%d", len(ex.Copies[a]), len(ex.Copies[b]))
	}
	// Self-timed: b's first firing waits for BOTH phases of a (token emitted
	// by phase 2, which follows phase 1): start at 3 + 1 = 4.
	starts, err := ex.Graph.SelfTimed(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := starts[ex.Copies[b][0]][0]; !almostEqual(got, 4, 1e-9) {
		t.Fatalf("b first start = %v, want 4", got)
	}
	// Iteration period: a's cycle = 3+1 = 4; b's = 2 → 4.
	period, err := g.IterationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(period, 4, 1e-9) {
		t.Fatalf("period = %v, want 4", period)
	}
}

// TestCSDFEarlyEmission: emitting in phase 1 instead of phase 2 lets the
// consumer start earlier — the phase structure matters.
func TestCSDFEarlyEmission(t *testing.T) {
	g := NewCSDFGraph()
	a := g.AddActor("a", 3, 1)
	b := g.AddActor("b", 2)
	g.AddEdge("ab", a, b, []int{1, 0}, []int{1}, 0) // emit in phase 1
	ex, err := g.ToSRDF()
	if err != nil {
		t.Fatal(err)
	}
	starts, err := ex.Graph.SelfTimed(2)
	if err != nil {
		t.Fatal(err)
	}
	// b starts after phase 1 only: t = 3.
	if got := starts[ex.Copies[b][0]][0]; !almostEqual(got, 3, 1e-9) {
		t.Fatalf("b first start = %v, want 3", got)
	}
}

// TestCSDFMultiPhaseRates: mixed per-phase rates with a repetition vector.
func TestCSDFMultiPhaseRates(t *testing.T) {
	g := NewCSDFGraph()
	// a emits (1,2) per phase pair → 3 per cycle; b consumes 1 per firing
	// (single phase) → q(b) = 3·q(a).
	a := g.AddActor("a", 1, 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, []int{1, 2}, []int{1}, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if q[a] != 1 || q[b] != 3 {
		t.Fatalf("q = %v, want [1 3]", q)
	}
	ex, err := g.ToSRDF()
	if err != nil {
		t.Fatal(err)
	}
	// a: 1 cycle × 2 phases = 2 copies; b: 3 copies.
	if len(ex.Copies[a]) != 2 || len(ex.Copies[b]) != 3 {
		t.Fatalf("copies: a=%d b=%d", len(ex.Copies[a]), len(ex.Copies[b]))
	}
	starts, err := ex.Graph.SelfTimed(2)
	if err != nil {
		t.Fatal(err)
	}
	// b#0 consumes token 0, produced by a's phase 1 → start 1.
	// b#1 consumes token 1, produced by a's phase 2 → start 2.
	// b#2 consumes token 2, also phase 2 → but b is serial: start ≥ 3? No:
	// b#2 waits for b#1 (serial) and token 2 (at t=2): b#1 runs [2,3) →
	// b#2 at 3.
	if got := starts[ex.Copies[b][0]][0]; !almostEqual(got, 1, 1e-9) {
		t.Fatalf("b#0 start = %v, want 1", got)
	}
	if got := starts[ex.Copies[b][1]][0]; !almostEqual(got, 2, 1e-9) {
		t.Fatalf("b#1 start = %v, want 2", got)
	}
	if got := starts[ex.Copies[b][2]][0]; !almostEqual(got, 3, 1e-9) {
		t.Fatalf("b#2 start = %v, want 3", got)
	}
}

// TestCSDFDeadlock: a token-free cycle deadlocks; tokens free it.
func TestCSDFDeadlock(t *testing.T) {
	g := NewCSDFGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, []int{1}, []int{1}, 0)
	g.AddEdge("ba", b, a, []int{1}, []int{1}, 0)
	free, err := g.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if free {
		t.Fatal("deadlock not detected")
	}
	g2 := NewCSDFGraph()
	a2 := g2.AddActor("a", 1)
	b2 := g2.AddActor("b", 1)
	g2.AddEdge("ab", a2, b2, []int{1}, []int{1}, 1)
	g2.AddEdge("ba", b2, a2, []int{1}, []int{1}, 0)
	free2, err := g2.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if !free2 {
		t.Fatal("live graph reported deadlocked")
	}
}

// TestCSDFInconsistent: unbalanced totals are rejected.
func TestCSDFInconsistent(t *testing.T) {
	g := NewCSDFGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("e1", a, b, []int{1}, []int{1}, 0)
	g.AddEdge("e2", a, b, []int{2}, []int{1}, 0)
	if _, err := g.RepetitionVector(); err == nil {
		t.Fatal("inconsistent CSDF accepted")
	}
}

func TestCSDFPhasesAccessor(t *testing.T) {
	g := NewCSDFGraph()
	a := g.AddActor("a", 1, 2, 3)
	if g.Phases(a) != 3 {
		t.Fatalf("Phases = %d", g.Phases(a))
	}
}
