package sdf

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/srdf"
)

// CSDF (cyclo-static dataflow) generalizes SDF: an actor cycles through a
// fixed sequence of phases, each with its own duration and per-edge
// production/consumption amounts (which may be zero). CSDF is the standard
// "more dynamic" model class beyond SDF (used, e.g., by the SDF3 tool suite)
// and another step toward the dynamic applications the paper's conclusion
// calls for. Analysis works by expansion: every phase firing becomes one
// actor of an equivalent single-rate graph.

// CSDFActor is an actor with cyclically repeating phases.
type CSDFActor struct {
	Name string
	// Durations holds one firing duration per phase (len = number of
	// phases, ≥ 1).
	Durations []float64
}

// CSDFEdge is a channel with per-phase rate sequences.
type CSDFEdge struct {
	Name     string
	From, To ActorID
	// ProdSeq[p] tokens are produced by phase p of From (len = phases of
	// From); ConsSeq[p] tokens are consumed by phase p of To. Entries may be
	// zero but each sequence must sum to at least 1.
	ProdSeq, ConsSeq []int
	Tokens           int
}

// CSDFGraph is a cyclo-static dataflow graph.
type CSDFGraph struct {
	actors []CSDFActor
	edges  []CSDFEdge
}

// NewCSDFGraph returns an empty graph.
func NewCSDFGraph() *CSDFGraph { return &CSDFGraph{} }

// AddActor adds an actor with the given per-phase durations.
func (g *CSDFGraph) AddActor(name string, durations ...float64) ActorID {
	g.actors = append(g.actors, CSDFActor{Name: name, Durations: durations})
	return ActorID(len(g.actors) - 1)
}

// AddEdge adds a channel with per-phase rate sequences.
func (g *CSDFGraph) AddEdge(name string, from, to ActorID, prodSeq, consSeq []int, tokens int) {
	g.edges = append(g.edges, CSDFEdge{
		Name: name, From: from, To: to,
		ProdSeq: append([]int(nil), prodSeq...),
		ConsSeq: append([]int(nil), consSeq...),
		Tokens:  tokens,
	})
}

// Phases returns the number of phases of actor a.
func (g *CSDFGraph) Phases(a ActorID) int { return len(g.actors[a].Durations) }

// Validate checks the graph's structural invariants.
func (g *CSDFGraph) Validate() error {
	if len(g.actors) == 0 {
		return errors.New("sdf: CSDF graph has no actors")
	}
	for i, a := range g.actors {
		if len(a.Durations) == 0 {
			return fmt.Errorf("sdf: CSDF actor %q (%d) has no phases", a.Name, i)
		}
		for _, d := range a.Durations {
			if d < 0 {
				return fmt.Errorf("sdf: CSDF actor %q has a negative phase duration", a.Name)
			}
		}
	}
	n := ActorID(len(g.actors))
	for i, e := range g.edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("sdf: CSDF edge %q (%d) has invalid endpoints", e.Name, i)
		}
		if len(e.ProdSeq) != g.Phases(e.From) {
			return fmt.Errorf("sdf: CSDF edge %q production sequence length %d != %d phases",
				e.Name, len(e.ProdSeq), g.Phases(e.From))
		}
		if len(e.ConsSeq) != g.Phases(e.To) {
			return fmt.Errorf("sdf: CSDF edge %q consumption sequence length %d != %d phases",
				e.Name, len(e.ConsSeq), g.Phases(e.To))
		}
		if e.Tokens < 0 {
			return fmt.Errorf("sdf: CSDF edge %q has negative tokens", e.Name)
		}
		if sum(e.ProdSeq) < 1 || sum(e.ConsSeq) < 1 {
			return fmt.Errorf("sdf: CSDF edge %q has a zero-sum rate sequence", e.Name)
		}
		for _, v := range append(append([]int(nil), e.ProdSeq...), e.ConsSeq...) {
			if v < 0 {
				return fmt.Errorf("sdf: CSDF edge %q has a negative rate", e.Name)
			}
		}
	}
	return nil
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// RepetitionVector returns the number of complete phase CYCLES each actor
// runs per iteration (the CSDF balance equations over per-cycle totals).
func (g *CSDFGraph) RepetitionVector() ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Delegate to the SDF balance solver on the per-cycle totals.
	s := NewGraph()
	for _, a := range g.actors {
		s.AddActor(a.Name, 0)
	}
	for _, e := range g.edges {
		s.AddEdge(e.Name, e.From, e.To, sum(e.ProdSeq), sum(e.ConsSeq), e.Tokens)
	}
	return s.RepetitionVector()
}

// ToSRDF expands the CSDF graph: each phase firing of each actor per
// iteration becomes one SRDF actor (q(a)·phases(a) copies), sequenced
// cyclically, with token dependencies derived from the cumulative
// production/consumption counting functions.
func (g *CSDFGraph) ToSRDF() (*Expansion, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	out := srdf.NewGraph()
	copies := make([][]srdf.ActorID, len(g.actors))
	for ai, a := range g.actors {
		per := q[ai] * len(a.Durations)
		copies[ai] = make([]srdf.ActorID, per)
		for j := 0; j < per; j++ {
			copies[ai][j] = out.AddActor(
				fmt.Sprintf("%s#%d.%d", a.Name, j/len(a.Durations), j%len(a.Durations)),
				a.Durations[j%len(a.Durations)])
		}
		for j := 0; j < per; j++ {
			next := (j + 1) % per
			tok := 0
			if next == 0 {
				tok = 1
			}
			out.AddEdge(fmt.Sprintf("%s.seq%d", a.Name, j), copies[ai][j], copies[ai][next], tok)
		}
	}
	for _, e := range g.edges {
		perFrom := q[e.From] * len(e.ProdSeq)
		perTo := q[e.To] * len(e.ConsSeq)
		// Per-iteration cumulative prefix arrays over phase firings.
		prodPrefix := prefix(e.ProdSeq, q[e.From])
		consPrefix := prefix(e.ConsSeq, q[e.To])
		perIterTokens := prodPrefix[perFrom] // = consPrefix[perTo] by balance
		if perIterTokens != consPrefix[perTo] {
			return nil, fmt.Errorf("sdf: CSDF edge %q is unbalanced after repetition", e.Name)
		}
		nStar := e.Tokens/perIterTokens + 2
		type key struct{ src, dst int }
		min := map[key]int{}
		for j := 0; j < perTo; j++ {
			lo := consPrefix[j]
			hi := consPrefix[j+1]
			for k := lo; k < hi; k++ {
				t := nStar*perIterTokens + k // global consumption index
				produced := t - e.Tokens
				if produced < 0 {
					return nil, fmt.Errorf("sdf: CSDF expansion underflow on edge %q", e.Name)
				}
				// Producing global phase firing: smallest f with
				// cumProd(f+1) > produced.
				m := produced / perIterTokens
				r := produced % perIterTokens
				idx := 0
				for prodPrefix[idx+1] <= r {
					idx++
				}
				f := m*perFrom + idx
				kk := key{f % perFrom, j}
				delta := nStar - f/perFrom
				if cur, ok := min[kk]; !ok || delta < cur {
					min[kk] = delta
				}
			}
		}
		// Add edges in sorted key order so edge IDs (and any failure text)
		// do not depend on map iteration order.
		keys := make([]key, 0, len(min))
		for kk := range min {
			keys = append(keys, kk)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].src != keys[j].src {
				return keys[i].src < keys[j].src
			}
			return keys[i].dst < keys[j].dst
		})
		for _, kk := range keys {
			delta := min[kk]
			if delta < 0 {
				return nil, fmt.Errorf("sdf: CSDF edge %q produced a negative distance", e.Name)
			}
			out.AddEdge(fmt.Sprintf("%s[%d->%d]", e.Name, kk.src, kk.dst),
				copies[e.From][kk.src], copies[e.To][kk.dst], delta)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &Expansion{Graph: out, Copies: copies, Repetitions: q}, nil
}

// prefix returns the cumulative totals of seq repeated reps times:
// prefix[i] = tokens transferred by the first i phase firings of one
// iteration (len = reps·len(seq) + 1).
func prefix(seq []int, reps int) []int {
	out := make([]int, reps*len(seq)+1)
	for i := 0; i < reps*len(seq); i++ {
		out[i+1] = out[i] + seq[i%len(seq)]
	}
	return out
}

// IterationPeriod returns the minimum time per CSDF iteration (maximum
// cycle mean of the expansion).
func (g *CSDFGraph) IterationPeriod() (float64, error) {
	ex, err := g.ToSRDF()
	if err != nil {
		return 0, err
	}
	return ex.Graph.MinPeriod()
}

// DeadlockFree reports whether the expanded graph is deadlock-free.
func (g *CSDFGraph) DeadlockFree() (bool, error) {
	ex, err := g.ToSRDF()
	if err != nil {
		return false, err
	}
	return ex.Graph.DeadlockFree(), nil
}
