// Package sdf implements multi-rate synchronous dataflow (SDF) graphs (Lee &
// Messerschmitt, 1987) on top of the single-rate machinery in internal/srdf:
// repetition vectors via the balance equations, consistency and deadlock
// analysis, and the classical HSDF expansion that turns an SDF graph into an
// equivalent single-rate graph for throughput analysis.
//
// The paper restricts itself to task graphs expressible as single-rate
// dataflow and names "more dynamic applications" as the essential next step;
// this package provides the multi-rate analysis substrate for that
// direction: an SDF-modelled job can be expanded and fed through the same
// MinPeriod/PAS analyses used everywhere else in this repository.
package sdf

import (
	"errors"
	"fmt"
	"math/big"

	"repro/internal/srdf"
)

// ActorID identifies an actor.
type ActorID int

// Actor is an SDF actor with a firing duration.
type Actor struct {
	Name     string
	Duration float64
}

// Edge is an SDF channel: each firing of From produces Prod tokens, each
// firing of To consumes Cons tokens; Tokens are initially present.
type Edge struct {
	Name       string
	From, To   ActorID
	Prod, Cons int
	Tokens     int
}

// Graph is a multi-rate SDF graph.
type Graph struct {
	actors []Actor
	edges  []Edge
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddActor adds an actor and returns its id.
func (g *Graph) AddActor(name string, duration float64) ActorID {
	g.actors = append(g.actors, Actor{Name: name, Duration: duration})
	return ActorID(len(g.actors) - 1)
}

// AddEdge adds a channel with the given rates and initial tokens.
func (g *Graph) AddEdge(name string, from, to ActorID, prod, cons, tokens int) {
	g.edges = append(g.edges, Edge{Name: name, From: from, To: to, Prod: prod, Cons: cons, Tokens: tokens})
}

// NumActors returns the number of actors.
func (g *Graph) NumActors() int { return len(g.actors) }

// Actor returns actor a.
func (g *Graph) Actor(a ActorID) Actor { return g.actors[a] }

// Validate checks rates, durations, and endpoints.
func (g *Graph) Validate() error {
	if len(g.actors) == 0 {
		return errors.New("sdf: graph has no actors")
	}
	for i, a := range g.actors {
		if a.Duration < 0 {
			return fmt.Errorf("sdf: actor %q (%d) has negative duration", a.Name, i)
		}
	}
	n := ActorID(len(g.actors))
	for i, e := range g.edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("sdf: edge %q (%d) has invalid endpoints", e.Name, i)
		}
		if e.Prod < 1 || e.Cons < 1 {
			return fmt.Errorf("sdf: edge %q (%d) has non-positive rates", e.Name, i)
		}
		if e.Tokens < 0 {
			return fmt.Errorf("sdf: edge %q (%d) has negative tokens", e.Name, i)
		}
	}
	return nil
}

// ErrInconsistent is returned when the balance equations have no positive
// solution (sample-rate inconsistency: unbounded token accumulation).
var ErrInconsistent = errors.New("sdf: graph is sample-rate inconsistent")

// RepetitionVector solves the balance equations q(from)·prod = q(to)·cons
// for every edge and returns the smallest positive integer solution per
// weakly connected component. Returns ErrInconsistent when none exists.
func (g *Graph) RepetitionVector() ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := len(g.actors)
	ratio := make([]*big.Rat, n) // q(a) relative to its component root
	adj := make([][]int, n)      // edge indices touching each actor
	for ei, e := range g.edges {
		adj[e.From] = append(adj[e.From], ei)
		adj[e.To] = append(adj[e.To], ei)
	}
	for root := 0; root < n; root++ {
		if ratio[root] != nil {
			continue
		}
		ratio[root] = big.NewRat(1, 1)
		stack := []int{root}
		for len(stack) > 0 {
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range adj[a] {
				e := g.edges[ei]
				// q(to) = q(from)·prod/cons.
				var other int
				var want *big.Rat
				if int(e.From) == a {
					other = int(e.To)
					want = new(big.Rat).Mul(ratio[a], big.NewRat(int64(e.Prod), int64(e.Cons)))
				} else {
					other = int(e.From)
					want = new(big.Rat).Mul(ratio[a], big.NewRat(int64(e.Cons), int64(e.Prod)))
				}
				if ratio[other] == nil {
					ratio[other] = want
					stack = append(stack, other)
				} else if ratio[other].Cmp(want) != 0 {
					return nil, ErrInconsistent
				}
			}
		}
	}
	// Scale each component to the smallest positive integers: multiply by
	// the lcm of denominators, divide by the gcd of numerators (per
	// component; components are independent, so a global scaling per
	// component keeps the vector minimal).
	comp := make([]int, n) // component id per actor (root index)
	for i := range comp {
		comp[i] = -1
	}
	for root := 0; root < n; root++ {
		if comp[root] != -1 {
			continue
		}
		// BFS again to mark the component.
		comp[root] = root
		stack := []int{root}
		for len(stack) > 0 {
			a := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range adj[a] {
				e := g.edges[ei]
				for _, o := range []int{int(e.From), int(e.To)} {
					if comp[o] == -1 {
						comp[o] = root
						stack = append(stack, o)
					}
				}
			}
		}
	}
	q := make([]int, n)
	for root := 0; root < n; root++ {
		var members []int
		for a := 0; a < n; a++ {
			if comp[a] == root {
				members = append(members, a)
			}
		}
		if len(members) == 0 {
			continue
		}
		lcmDen := big.NewInt(1)
		for _, a := range members {
			lcmDen = lcm(lcmDen, ratio[a].Denom())
		}
		gcdNum := big.NewInt(0)
		scaled := map[int]*big.Int{}
		for _, a := range members {
			v := new(big.Int).Mul(ratio[a].Num(), new(big.Int).Div(lcmDen, ratio[a].Denom()))
			scaled[a] = v
			gcdNum = new(big.Int).GCD(nil, nil, gcdNum, v)
		}
		for _, a := range members {
			v := new(big.Int).Div(scaled[a], gcdNum)
			if !v.IsInt64() || v.Int64() <= 0 {
				return nil, fmt.Errorf("sdf: repetition count of actor %q overflows", g.actors[a].Name)
			}
			q[a] = int(v.Int64())
		}
	}
	return q, nil
}

func lcm(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	return new(big.Int).Mul(new(big.Int).Div(a, g), b)
}

// Consistent reports whether the graph has a valid repetition vector.
func (g *Graph) Consistent() bool {
	_, err := g.RepetitionVector()
	return err == nil
}

// Expansion is the result of the HSDF expansion: an equivalent single-rate
// graph plus the mapping from SDF actors to their firing copies.
type Expansion struct {
	Graph *srdf.Graph
	// Copies[a] lists the SRDF actors for firings 0..q(a)-1 of SDF actor a.
	Copies [][]srdf.ActorID
	// Repetitions is the repetition vector used.
	Repetitions []int
}

// ToSRDF expands the SDF graph into an equivalent homogeneous (single-rate)
// graph: actor a becomes q(a) copies fired round-robin (auto-concurrency is
// disabled by a sequencing cycle through the copies), and every
// token-consumption dependency becomes an SRDF edge with the appropriate
// iteration distance.
func (g *Graph) ToSRDF() (*Expansion, error) {
	q, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	out := srdf.NewGraph()
	copies := make([][]srdf.ActorID, len(g.actors))
	for a, act := range g.actors {
		copies[a] = make([]srdf.ActorID, q[a])
		for j := 0; j < q[a]; j++ {
			copies[a][j] = out.AddActor(fmt.Sprintf("%s#%d", act.Name, j), act.Duration)
		}
		// Sequencing cycle: firing j precedes firing j+1; the last firing of
		// one iteration precedes the first of the next (1 token).
		for j := 0; j < q[a]; j++ {
			next := (j + 1) % q[a]
			tok := 0
			if next == 0 {
				tok = 1
			}
			out.AddEdge(fmt.Sprintf("%s.seq%d", act.Name, j), copies[a][j], copies[a][next], tok)
		}
	}
	for _, e := range g.edges {
		qa, qb := q[e.From], q[e.To]
		// Choose an iteration n* large enough that every consumed token in
		// that iteration was produced (not initial).
		nStar := (e.Tokens/(e.Prod*qa) + 2)
		for j := 0; j < qb; j++ {
			for k := 0; k < e.Cons; k++ {
				tokenIdx := (nStar*qb+j)*e.Cons + k // global consumption index
				produced := tokenIdx - e.Tokens
				if produced < 0 {
					continue // consumed from initial tokens forever? no: only shifts; nStar prevents this
				}
				f := produced / e.Prod // global producing firing
				l := f % qa            // producer copy
				m := f / qa            // producer iteration
				delta := nStar - m     // iteration distance
				if delta < 0 {
					return nil, fmt.Errorf("sdf: negative iteration distance on edge %q", e.Name)
				}
				out.AddEdge(fmt.Sprintf("%s[%d.%d]", e.Name, j, k),
					copies[e.From][l], copies[e.To][j], delta)
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &Expansion{Graph: out, Copies: copies, Repetitions: q}, nil
}

// DeadlockFree reports whether the expanded graph is deadlock-free.
func (g *Graph) DeadlockFree() (bool, error) {
	ex, err := g.ToSRDF()
	if err != nil {
		return false, err
	}
	return ex.Graph.DeadlockFree(), nil
}

// IterationPeriod returns the minimum time per SDF iteration (one iteration
// = q(a) firings of every actor a): the maximum cycle mean of the HSDF
// expansion. An actor a therefore fires at most q(a)/IterationPeriod times
// per time unit in the long run.
func (g *Graph) IterationPeriod() (float64, error) {
	ex, err := g.ToSRDF()
	if err != nil {
		return 0, err
	}
	return ex.Graph.MinPeriod()
}
