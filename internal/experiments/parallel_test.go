package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
)

// The experiments must produce byte-identical outputs whether the sweep runs
// sequentially or on a worker pool.

func TestFig2ParallelDeterminism(t *testing.T) {
	seq, err := Fig2(context.Background(), core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig2(context.Background(), core.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Fig2 differs:\nseq %+v\npar %+v", seq, par)
	}
	if RenderFig2a(seq) != RenderFig2a(par) || RenderFig2b(seq) != RenderFig2b(par) {
		t.Fatal("rendered figures differ between sequential and parallel sweeps")
	}
}

func TestFig3ParallelDeterminism(t *testing.T) {
	seq, err := Fig3(context.Background(), core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig3(context.Background(), core.Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel Fig3 differs:\nseq %+v\npar %+v", seq, par)
	}
}

func TestRuntimeParallelDeterminism(t *testing.T) {
	seq, err := Runtime(context.Background(), core.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Runtime(context.Background(), core.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		a.Millis, b.Millis = 0, 0 // wall clock is the only nondeterministic column
		if a != b {
			t.Fatalf("row %d differs: %+v vs %+v", i, seq[i], par[i])
		}
	}
}
