package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/dfmodel"
	"repro/internal/gen"
	"repro/internal/taskgraph"
	"repro/internal/textplot"
)

// ScalabilityPoint is one size of the scalability sweep (experiment E5 in
// DESIGN.md): a pipeline of n tasks solved jointly.
type ScalabilityPoint struct {
	Tasks      int
	Variables  int // decision variables of the cone program
	Iterations int
	Millis     float64
}

// Scalability solves chains of increasing length and reports solve time and
// interior-point iteration counts, supporting the paper's
// polynomial-complexity claim.
func Scalability(ctx context.Context, sizes []int, opt core.Options) ([]ScalabilityPoint, error) {
	var out []ScalabilityPoint
	for _, n := range sizes {
		cfg := gen.Chain(gen.ChainOptions{Tasks: n})
		start := time.Now()
		r, err := core.Solve(ctx, cfg, opt)
		elapsed := time.Since(start)
		if err != nil {
			return nil, err
		}
		if r.Status != core.StatusOptimal {
			return nil, fmt.Errorf("experiments: chain of %d tasks: %v", n, r.Status)
		}
		// Variables: 2 start times per task (minus 1 pinned) + β′ + λ per
		// task + δ′ per buffer.
		vars := 2*n - 1 + 2*n + (n - 1)
		out = append(out, ScalabilityPoint{
			Tasks:      n,
			Variables:  vars,
			Iterations: r.SolverIterations,
			Millis:     float64(elapsed.Microseconds()) / 1000,
		})
	}
	return out, nil
}

// RenderScalability renders the scalability table.
func RenderScalability(points []ScalabilityPoint) string {
	tb := textplot.NewTable("tasks", "variables", "IPM iterations", "solve time (ms)")
	for _, p := range points {
		tb.AddRow(p.Tasks, p.Variables, p.Iterations, p.Millis)
	}
	return tb.String()
}

// CompareRow is one instance of the joint-versus-two-phase comparison
// (experiment A2): the paper's motivation that separate budget and buffer
// phases produce false negatives.
type CompareRow struct {
	Instance string
	// Statuses of the three flows.
	Joint, BudgetFirst, BufferFirst core.Status
	// Objectives (weighted cost; NaN when not optimal).
	JointObj, BudgetFirstObj, BufferFirstObj float64
}

// JointVsTwoPhase runs the three flows on instances designed to expose the
// phase-ordering problem plus random multi-job systems.
func JointVsTwoPhase(ctx context.Context, opt core.Options) ([]CompareRow, error) {
	type instance struct {
		name string
		cfg  *taskgraph.Config
	}
	capped := gen.PaperT1(4)
	memTight := gen.PaperT2(10)
	memTight.Memories[0].Capacity = 12
	instances := []instance{
		{"T1 (buffer cap 4)", capped},
		{"T2 (memory cap 12)", memTight},
		{"T1 (uncapped)", gen.PaperT1(0)},
	}
	for seed := int64(0); seed < 3; seed++ {
		instances = append(instances, instance{
			fmt.Sprintf("random multi-job #%d", seed),
			gen.RandomJobs(gen.RandomOptions{Seed: seed}),
		})
	}
	var rows []CompareRow
	for _, inst := range instances {
		row := CompareRow{Instance: inst.name,
			JointObj: math.NaN(), BudgetFirstObj: math.NaN(), BufferFirstObj: math.NaN()}
		j, err := core.Solve(ctx, inst.cfg, opt)
		if err != nil {
			return nil, err
		}
		row.Joint = j.Status
		if j.Mapping != nil {
			row.JointObj = j.Mapping.Objective
		}
		bf, err := core.TwoPhaseBudgetFirst(ctx, inst.cfg, core.BudgetMinimalRate, opt)
		if err != nil {
			return nil, err
		}
		row.BudgetFirst = bf.Status
		if bf.Mapping != nil {
			row.BudgetFirstObj = bf.Mapping.Objective
		}
		// Buffer-first needs capacities: use each buffer's cap when present,
		// otherwise the capacity the budget-first flow would have chosen (a
		// realistic phase-1 heuristic); fall back to 16 containers.
		caps := map[string]int{}
		for _, tg := range inst.cfg.Graphs {
			for i := range tg.Buffers {
				b := &tg.Buffers[i]
				switch {
				case b.MaxContainers > 0:
					caps[b.Name] = b.MaxContainers
				case bf.Mapping != nil:
					caps[b.Name] = bf.Mapping.Capacities[b.Name]
				default:
					caps[b.Name] = 16
				}
			}
		}
		bff, err := core.TwoPhaseBufferFirst(ctx, inst.cfg, caps, opt)
		if err != nil {
			return nil, err
		}
		row.BufferFirst = bff.Status
		if bff.Mapping != nil {
			row.BufferFirstObj = bff.Mapping.Objective
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderJointVsTwoPhase renders the comparison table.
func RenderJointVsTwoPhase(rows []CompareRow) string {
	tb := textplot.NewTable("instance", "joint", "obj", "budget-first", "obj", "buffer-first", "obj")
	for _, r := range rows {
		tb.AddRow(r.Instance, r.Joint.String(), r.JointObj,
			r.BudgetFirst.String(), r.BudgetFirstObj,
			r.BufferFirst.String(), r.BufferFirstObj)
	}
	return tb.String()
}

// AblationRow is one capacity of the rounding-ablation experiment (A1): the
// relaxed optimum, the rounded mapping, and the true integer optimum found
// by exhaustive search (granularity 1 Mcycle to keep the lattice small).
type AblationRow struct {
	Cap int
	// ContinuousObj is the relaxed SOCP optimum of Algorithm 1.
	ContinuousObj float64
	// RoundedObj is the objective after conservative rounding.
	RoundedObj float64
	// IntegerObj is the exhaustive integer optimum.
	IntegerObj float64
}

// AblationRounding quantifies the paper's "cost of potential sub-optimality"
// from the non-integral approximations, on T1 with granularity 1 Mcycle.
func AblationRounding(ctx context.Context, opt core.Options) ([]AblationRow, error) {
	var rows []AblationRow
	for _, cap := range []int{1, 2, 4, 6, 8, 10} {
		cfg := gen.PaperT1(cap)
		cfg.Granularity = 1 // 1 Mcycle lattice
		r, err := core.Solve(ctx, cfg, opt)
		if err != nil {
			return nil, err
		}
		if r.Status != core.StatusOptimal {
			return nil, fmt.Errorf("experiments: ablation at cap %d: %v", cap, r.Status)
		}
		intObj, err := integerOptimumT1(cfg, cap)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Cap:           cap,
			ContinuousObj: r.ContinuousObjective,
			RoundedObj:    r.Mapping.Objective,
			IntegerObj:    intObj,
		})
	}
	return rows, nil
}

// integerOptimumT1 exhaustively searches integer budgets (1..40 Mcycles) and
// capacities (1..cap) of the T1 instance for the minimum weighted objective
// among mappings that pass full SRDF verification.
func integerOptimumT1(cfg *taskgraph.Config, cap int) (float64, error) {
	best := math.Inf(1)
	for gamma := 1; gamma <= cap; gamma++ {
		for ba := 1; ba <= 40; ba++ {
			for bb := 1; bb <= 40; bb++ {
				m := &taskgraph.Mapping{
					Budgets:    map[string]float64{"wa": float64(ba), "wb": float64(bb)},
					Capacities: map[string]int{"bab": gamma},
				}
				obj := 1000*float64(ba+bb) + float64(gamma)
				if obj >= best {
					continue
				}
				v, err := dfmodel.Verify(cfg, m)
				if err != nil {
					return 0, err
				}
				if v.OK {
					best = obj
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("experiments: no feasible integer mapping at cap %d", cap)
	}
	return best, nil
}

// LatencyPoint is one bound of the latency/budget trade-off sweep
// (extension: latency constraints are affine in the cone program, §IV-style).
type LatencyPoint struct {
	// Bound is the end-to-end latency bound (Mcycles) imposed on T1's
	// wa → wb path.
	Bound float64
	// Budget is the resulting (mean) task budget.
	Budget float64
	// Capacity is the chosen buffer capacity.
	Capacity int
	// Achieved is the best latency of the rounded mapping.
	Achieved float64
	// Feasible reports whether a mapping exists under the bound.
	Feasible bool
}

// LatencyTradeoff sweeps an end-to-end latency bound on the paper's T1 and
// records how budgets must grow as the bound tightens: the latency/budget
// analogue of Figure 2's throughput/buffer trade-off.
func LatencyTradeoff(ctx context.Context, opt core.Options) ([]LatencyPoint, error) {
	// The physical floor is two processing stages at full budget,
	// 2·ϱχ/ϱ = 2 Mcycles; bounds below it are infeasible.
	bounds := []float64{120, 100, 80, 60, 40, 30, 20, 10, 5, 3, 1.5}
	var out []LatencyPoint
	for _, bound := range bounds {
		cfg := gen.PaperT1(0)
		cfg.Graphs[0].Latencies = []taskgraph.LatencyConstraint{
			{From: "wa", To: "wb", Bound: bound},
		}
		r, err := core.Solve(ctx, cfg, opt)
		if err != nil {
			return nil, err
		}
		pt := LatencyPoint{Bound: bound}
		if r.Status == core.StatusOptimal {
			pt.Feasible = true
			pt.Budget = (r.Mapping.Budgets["wa"] + r.Mapping.Budgets["wb"]) / 2
			pt.Capacity = r.Mapping.Capacities["bab"]
			lat, err := dfmodel.LatencyBound(cfg, cfg.Graphs[0], r.Mapping, "wa", "wb")
			if err != nil {
				return nil, err
			}
			pt.Achieved = lat
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderLatencyTradeoff renders the latency sweep table.
func RenderLatencyTradeoff(points []LatencyPoint) string {
	tb := textplot.NewTable("latency bound (Mcycles)", "mean budget (Mcycles)",
		"capacity", "achieved latency", "feasible")
	for _, p := range points {
		if p.Feasible {
			tb.AddRow(p.Bound, p.Budget, p.Capacity, p.Achieved, true)
		} else {
			tb.AddRow(p.Bound, math.NaN(), "-", math.NaN(), false)
		}
	}
	return tb.String()
}

// RenderAblation renders the rounding-ablation table.
func RenderAblation(rows []AblationRow) string {
	tb := textplot.NewTable("capacity", "relaxed obj", "rounded obj", "integer optimum", "overhead %")
	for _, r := range rows {
		over := (r.RoundedObj - r.IntegerObj) / r.IntegerObj * 100
		tb.AddRow(r.Cap, r.ContinuousObj, r.RoundedObj, r.IntegerObj, over)
	}
	return tb.String()
}
