package experiments

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// paperFig2a are the analytic values behind Figure 2(a) (DESIGN.md §3).
func paperFig2a(d int) float64 {
	b := 80 - 10*float64(d)
	return math.Max(4, (b+math.Sqrt(b*b+640))/4)
}

func TestFig2MatchesPaperCurve(t *testing.T) {
	points, err := Fig2(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("expected 10 points, got %d", len(points))
	}
	for _, p := range points {
		want := paperFig2a(p.Cap)
		if math.Abs(p.Budget-want) > 1e-3 {
			t.Fatalf("cap %d: budget %v, paper value %v", p.Cap, p.Budget, want)
		}
		if p.Capacity != p.Cap {
			t.Fatalf("cap %d: capacity %d", p.Cap, p.Capacity)
		}
	}
	// Fig 2(b): deltas are positive and decreasing; capacity 10 minimises.
	for i := 2; i < len(points); i++ {
		if points[i].DeltaBudget < -1e-6 {
			t.Fatalf("negative delta at cap %d", points[i].Cap)
		}
		if points[i].DeltaBudget > points[i-1].DeltaBudget+1e-6 {
			t.Fatalf("delta increased at cap %d", points[i].Cap)
		}
	}
	if last := points[9]; math.Abs(last.Budget-4) > 1e-3 {
		t.Fatalf("budget at capacity 10 = %v, want 4 (the rate bound)", last.Budget)
	}
}

func TestFig2Render(t *testing.T) {
	points, err := Fig2(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := RenderFig2a(points)
	if !strings.Contains(a, "Figure 2(a)") || !strings.Contains(a, "budget") {
		t.Fatalf("Fig2a render incomplete:\n%s", a)
	}
	b := RenderFig2b(points)
	if !strings.Contains(b, "Figure 2(b)") || !strings.Contains(b, "delta") {
		t.Fatalf("Fig2b render incomplete:\n%s", b)
	}
}

func TestFig3ShapeMatchesPaper(t *testing.T) {
	points, err := Fig3(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("expected 10 points, got %d", len(points))
	}
	sawStrictGap := false
	for i, p := range points {
		// wb interacts with two buffers: it is never reduced below wa/wc.
		if p.BudgetWB < p.BudgetWAWC-1e-6 {
			t.Fatalf("cap %d: wb (%v) below wa/wc (%v)", p.Cap, p.BudgetWB, p.BudgetWAWC)
		}
		if p.BudgetWB > p.BudgetWAWC+1 {
			sawStrictGap = true
		}
		// Budgets are non-increasing in the capacity.
		if i > 0 {
			if p.BudgetWAWC > points[i-1].BudgetWAWC+1e-6 ||
				p.BudgetWB > points[i-1].BudgetWB+1e-6 {
				t.Fatalf("cap %d: budgets increased", p.Cap)
			}
		}
	}
	if !sawStrictGap {
		t.Fatal("expected wb's budget to stay strictly above wa/wc somewhere in the sweep")
	}
	// At capacity 10 everything reaches the rate bound 4.
	if last := points[9]; math.Abs(last.BudgetWB-4) > 1e-3 || math.Abs(last.BudgetWAWC-4) > 1e-3 {
		t.Fatalf("cap 10 budgets: wb=%v wa/wc=%v, want 4", last.BudgetWB, last.BudgetWAWC)
	}
}

func TestFig3Render(t *testing.T) {
	points, err := Fig3(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFig3(points)
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "task wb") {
		t.Fatalf("Fig3 render incomplete:\n%s", out)
	}
}

func TestRuntimeMilliseconds(t *testing.T) {
	rows, err := Runtime(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// The paper reports milliseconds on 2010 hardware; anything beyond a
		// second would falsify the reproduction.
		if r.Millis > 1000 {
			t.Fatalf("%s took %v ms", r.Instance, r.Millis)
		}
		if r.Iterations <= 0 {
			t.Fatalf("%s reported no iterations", r.Instance)
		}
	}
	if out := RenderRuntime(rows); !strings.Contains(out, "solve time (ms)") {
		t.Fatal("runtime render incomplete")
	}
}

func TestScalability(t *testing.T) {
	points, err := Scalability(context.Background(), []int{2, 4, 8}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("expected 3 points, got %d", len(points))
	}
	for _, p := range points {
		if p.Iterations <= 0 || p.Variables <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// Iteration counts must stay bounded (interior-point methods converge in
	// tens of iterations regardless of size).
	for _, p := range points {
		if p.Iterations > 100 {
			t.Fatalf("%d tasks needed %d iterations", p.Tasks, p.Iterations)
		}
	}
	if out := RenderScalability(points); !strings.Contains(out, "tasks") {
		t.Fatal("scalability render incomplete")
	}
}

func TestJointVsTwoPhase(t *testing.T) {
	rows, err := JointVsTwoPhase(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CompareRow{}
	for _, r := range rows {
		byName[r.Instance] = r
	}
	// The capped T1 is the paper's false negative: joint solves it,
	// budget-first does not.
	fn := byName["T1 (buffer cap 4)"]
	if fn.Joint != core.StatusOptimal {
		t.Fatalf("joint failed on capped T1: %v", fn.Joint)
	}
	if fn.BudgetFirst != core.StatusInfeasible {
		t.Fatalf("budget-first should be a false negative on capped T1, got %v", fn.BudgetFirst)
	}
	// The memory-tight T2 defeats both two-phase flows.
	mt := byName["T2 (memory cap 12)"]
	if mt.Joint != core.StatusOptimal || mt.BudgetFirst != core.StatusInfeasible ||
		mt.BufferFirst != core.StatusInfeasible {
		t.Fatalf("memory-tight T2: joint=%v budget-first=%v buffer-first=%v",
			mt.Joint, mt.BudgetFirst, mt.BufferFirst)
	}
	// On the uncapped T1 all flows succeed and the joint objective is best.
	un := byName["T1 (uncapped)"]
	if un.Joint != core.StatusOptimal || un.BudgetFirst != core.StatusOptimal {
		t.Fatalf("uncapped T1 failed: %v %v", un.Joint, un.BudgetFirst)
	}
	if un.JointObj > un.BudgetFirstObj+1e-3 {
		t.Fatalf("joint (%v) worse than budget-first (%v) on uncapped T1", un.JointObj, un.BudgetFirstObj)
	}
	if out := RenderJointVsTwoPhase(rows); !strings.Contains(out, "budget-first") {
		t.Fatal("comparison render incomplete")
	}
}

func TestLatencyTradeoff(t *testing.T) {
	points, err := LatencyTradeoff(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prevBudget float64
	sawInfeasible := false
	for i, p := range points {
		if !p.Feasible {
			sawInfeasible = true
			continue
		}
		if sawInfeasible {
			t.Fatalf("feasible point after an infeasible one (bound %v)", p.Bound)
		}
		if p.Achieved > p.Bound*(1+1e-6) {
			t.Fatalf("bound %v: achieved %v exceeds it", p.Bound, p.Achieved)
		}
		if i > 0 && p.Budget < prevBudget-1e-6 {
			t.Fatalf("tighter bound %v decreased the budget (%v after %v)", p.Bound, p.Budget, prevBudget)
		}
		prevBudget = p.Budget
	}
	if !sawInfeasible {
		t.Fatal("expected the tightest bounds to be infeasible")
	}
	if out := RenderLatencyTradeoff(points); !strings.Contains(out, "latency bound") {
		t.Fatal("latency render incomplete")
	}
}

func TestAblationRounding(t *testing.T) {
	rows, err := AblationRounding(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Ordering: relaxed ≤ integer ≤ rounded.
		if r.ContinuousObj > r.IntegerObj+1e-3 {
			t.Fatalf("cap %d: relaxed obj %v above integer optimum %v", r.Cap, r.ContinuousObj, r.IntegerObj)
		}
		if r.RoundedObj < r.IntegerObj-1e-9 {
			t.Fatalf("cap %d: rounded obj %v beats the integer optimum %v (impossible)",
				r.Cap, r.RoundedObj, r.IntegerObj)
		}
		// The rounding overhead is bounded by one granule per task (2×1000)
		// plus one container.
		if r.RoundedObj > r.IntegerObj+2*1000+1 {
			t.Fatalf("cap %d: rounding overhead too large: %v vs %v", r.Cap, r.RoundedObj, r.IntegerObj)
		}
	}
	if out := RenderAblation(rows); !strings.Contains(out, "integer optimum") {
		t.Fatal("ablation render incomplete")
	}
}
