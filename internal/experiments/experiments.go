// Package experiments regenerates every figure and table of the paper's
// evaluation (§V), plus the extension experiments called out in DESIGN.md:
//
//	Fig2    — the budget/buffer trade-off of the producer-consumer graph T1
//	          (Figure 2(a)) and its per-container budget reduction
//	          (Figure 2(b));
//	Fig3    — the topology dependence of the trade-off on the three-task
//	          chain T2 (Figure 3);
//	Runtime — the "run-time is milliseconds" claim on the paper instances;
//	Scalability — solve time and interior-point iterations versus task count
//	          (the polynomial-complexity claim);
//	JointVsTwoPhase — the false-negative motivation: two-phase flows fail on
//	          instances the joint formulation solves;
//	AblationRounding — the cost of the non-integral relaxation, measured
//	          against brute-force integer optima on small instances.
//
// Each experiment returns structured rows (consumed by the tests and the
// benchmarks) and has a Render function producing the terminal table/plot
// (consumed by cmd/bbtrade).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/textplot"
)

// Fig2Point is one x-position of Figure 2: the optimum at a buffer capacity
// cap.
type Fig2Point struct {
	Cap int
	// Budget is the mean budget of wa and wb in Mcycles. (The optimum is
	// symmetric, but the objective valley is almost flat along βa−βb, so
	// individual budgets carry solver noise of ~1e-3 while their mean is
	// determined to ~1e-6.)
	Budget float64
	// DeltaBudget is the reduction relative to the previous capacity
	// (Figure 2(b)); 0 for the first point.
	DeltaBudget float64
	// Capacity is the buffer capacity the optimizer chose (= Cap here).
	Capacity int
}

// Fig2 sweeps the buffer capacity of the paper's producer-consumer graph T1
// from 1 to 10 containers and returns the budget trade-off curve. The ten
// solves are independent and run on the worker pool selected by
// opt.Parallelism (via core.SweepBufferCaps).
func Fig2(ctx context.Context, opt core.Options) ([]Fig2Point, error) {
	caps := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	points, err := core.SweepBufferCaps(ctx, gen.PaperT1(0), nil, caps, opt)
	if err != nil {
		return nil, err
	}
	out := make([]Fig2Point, 0, len(points))
	prev := 0.0
	for i, pt := range points {
		if pt.Result.Status != core.StatusOptimal {
			return nil, fmt.Errorf("experiments: T1 at cap %d: %v", pt.Cap, pt.Result.Status)
		}
		p := Fig2Point{
			Cap:      pt.Cap,
			Budget:   (pt.Result.Mapping.Budgets["wa"] + pt.Result.Mapping.Budgets["wb"]) / 2,
			Capacity: pt.Result.Mapping.Capacities["bab"],
		}
		if i > 0 {
			p.DeltaBudget = prev - p.Budget
		}
		prev = p.Budget
		out = append(out, p)
	}
	return out, nil
}

// RenderFig2a renders the Figure 2(a) table and plot.
func RenderFig2a(points []Fig2Point) string {
	tb := textplot.NewTable("capacity (containers)", "budget (Mcycles)")
	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		tb.AddRow(p.Cap, p.Budget)
		xs[i] = float64(p.Cap)
		ys[i] = p.Budget
	}
	plot := textplot.NewPlot("Figure 2(a): budget-buffer size trade-off (T1)",
		"buffer capacity (containers)", "budget (Mcycles)", xs)
	plot.AddSeries("budget", ys)
	return tb.String() + "\n" + plot.String()
}

// RenderFig2b renders the Figure 2(b) table and plot (budget reduction per
// added container, for capacities 2..10).
func RenderFig2b(points []Fig2Point) string {
	tb := textplot.NewTable("capacity (containers)", "delta budget (Mcycles)")
	var xs, ys []float64
	for _, p := range points[1:] {
		tb.AddRow(p.Cap, p.DeltaBudget)
		xs = append(xs, float64(p.Cap))
		ys = append(ys, p.DeltaBudget)
	}
	plot := textplot.NewPlot("Figure 2(b): derivative of budget reduction (T1)",
		"buffer capacity (containers)", "delta budget (Mcycles)", xs)
	plot.AddSeries("delta", ys)
	return tb.String() + "\n" + plot.String()
}

// Fig3Point is one x-position of Figure 3: the optimum of the three-task
// chain T2 when both buffer capacities are capped.
type Fig3Point struct {
	Cap int
	// BudgetWB is the middle task's budget; BudgetWAWC the mean budget of
	// the two (symmetric) outer tasks.
	BudgetWB, BudgetWAWC float64
}

// Fig3 sweeps both buffer capacities of T2 from 1 to 10 and records how the
// optimizer distributes the budget reduction: wb interacts with two buffers,
// so wa and wc are reduced first. Like Fig2, the sweep runs on the
// opt.Parallelism worker pool.
func Fig3(ctx context.Context, opt core.Options) ([]Fig3Point, error) {
	caps := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	points, err := core.SweepBufferCaps(ctx, gen.PaperT2(0), nil, caps, opt)
	if err != nil {
		return nil, err
	}
	out := make([]Fig3Point, 0, len(points))
	for _, pt := range points {
		if pt.Result.Status != core.StatusOptimal {
			return nil, fmt.Errorf("experiments: T2 at cap %d: %v", pt.Cap, pt.Result.Status)
		}
		out = append(out, Fig3Point{
			Cap:        pt.Cap,
			BudgetWB:   pt.Result.Mapping.Budgets["wb"],
			BudgetWAWC: (pt.Result.Mapping.Budgets["wa"] + pt.Result.Mapping.Budgets["wc"]) / 2,
		})
	}
	return out, nil
}

// RenderFig3 renders the Figure 3 table and plot.
func RenderFig3(points []Fig3Point) string {
	tb := textplot.NewTable("capacity (containers)", "budget wb (Mcycles)", "budget wa, wc (Mcycles)")
	xs := make([]float64, len(points))
	wb := make([]float64, len(points))
	wawc := make([]float64, len(points))
	for i, p := range points {
		tb.AddRow(p.Cap, p.BudgetWB, p.BudgetWAWC)
		xs[i] = float64(p.Cap)
		wb[i] = p.BudgetWB
		wawc[i] = p.BudgetWAWC
	}
	plot := textplot.NewPlot("Figure 3: topology dependence of the trade-off (T2)",
		"both buffer capacities (containers)", "budget (Mcycles)", xs)
	plot.AddSeries("task wb", wb)
	plot.AddSeries("tasks wa, wc", wawc)
	return tb.String() + "\n" + plot.String()
}

// RuntimeRow is one row of the solver run-time table (§V: "The run-time is
// milliseconds").
type RuntimeRow struct {
	Instance   string
	Tasks      int
	Buffers    int
	Iterations int
	Millis     float64
}

// Runtime solves the paper's two experiment instances (T1 across its sweep
// and T2 across its sweep) and reports wall-clock solve times. The instances
// run on the worker pool selected by opt.Parallelism; each row's time is the
// wall clock of its own solve, so on a contended machine set Parallelism to
// 1 for the cleanest per-instance numbers.
func Runtime(ctx context.Context, opt core.Options) ([]RuntimeRow, error) {
	instances := []struct {
		name string
		cap  int
		t2   bool
	}{
		{"T1 cap=1", 1, false},
		{"T1 cap=5", 5, false},
		{"T1 cap=10", 10, false},
		{"T2 cap=1", 1, true},
		{"T2 cap=5", 5, true},
		{"T2 cap=10", 10, true},
	}
	return core.RunSweep(ctx, len(instances), opt.Parallelism, func(ctx context.Context, i int) (RuntimeRow, error) {
		inst := instances[i]
		cfg := gen.PaperT1(inst.cap)
		if inst.t2 {
			cfg = gen.PaperT2(inst.cap)
		}
		start := time.Now()
		r, err := core.Solve(ctx, cfg, opt)
		elapsed := time.Since(start)
		if err != nil {
			return RuntimeRow{}, err
		}
		if r.Status != core.StatusOptimal {
			return RuntimeRow{}, fmt.Errorf("experiments: %s: %v", inst.name, r.Status)
		}
		return RuntimeRow{
			Instance:   inst.name,
			Tasks:      len(cfg.Graphs[0].Tasks),
			Buffers:    len(cfg.Graphs[0].Buffers),
			Iterations: r.SolverIterations,
			Millis:     float64(elapsed.Microseconds()) / 1000,
		}, nil
	})
}

// RenderRuntime renders the run-time table.
func RenderRuntime(rows []RuntimeRow) string {
	tb := textplot.NewTable("instance", "tasks", "buffers", "IPM iterations", "solve time (ms)")
	for _, r := range rows {
		tb.AddRow(r.Instance, r.Tasks, r.Buffers, r.Iterations, r.Millis)
	}
	return tb.String()
}
