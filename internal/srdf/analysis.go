package srdf

import (
	"errors"
	"fmt"
	"math"
)

// feasTol is the absolute slack tolerance used when checking PAS constraints
// and positive-cycle detection on float durations.
const feasTol = 1e-7

// StartTimes computes periodic-admissible-schedule start times s(v) for the
// given period, satisfying the paper's Constraint (1):
//
//	s(vj) ≥ s(vi) + ρ(vi) − δ(eij)·period   for every edge eij.
//
// It returns an error when no PAS with this period exists (a positive cycle
// in the constraint graph). Start times are normalized so the earliest is 0.
func (g *Graph) StartTimes(period float64) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("srdf: period must be positive, got %v", period)
	}
	n := len(g.actors)
	s := make([]float64, n) // implicit virtual source: all start at 0
	// Bellman-Ford longest path with edge weight ρ(from) − δ·period.
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range g.edges {
			w := g.actors[e.From].Duration - float64(e.Tokens)*period
			if cand := s[e.From] + w; cand > s[e.To]+feasTol {
				s[e.To] = cand
				changed = true
			}
		}
		if !changed {
			normalize(s)
			return s, nil
		}
	}
	return nil, fmt.Errorf("srdf: no PAS with period %v exists (positive cycle)", period)
}

func normalize(s []float64) {
	if len(s) == 0 {
		return
	}
	min := s[0]
	for _, v := range s[1:] {
		if v < min {
			min = v
		}
	}
	for i := range s {
		s[i] -= min
	}
}

// LongestPaths returns, for every actor v, the minimum feasible value of
// s(v) − s(source) over all periodic admissible schedules with the given
// period: the longest path from source in the constraint graph with edge
// weights ρ(from) − δ·period. Actors unreachable from source get -Inf.
// An error is returned when no PAS with this period exists.
func (g *Graph) LongestPaths(source ActorID, period float64) ([]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("srdf: period must be positive, got %v", period)
	}
	if !g.feasibleExact(period) {
		return nil, fmt.Errorf("srdf: no PAS with period %v exists (positive cycle)", period)
	}
	n := len(g.actors)
	d := make([]float64, n)
	for i := range d {
		d[i] = math.Inf(-1)
	}
	d[source] = 0
	for round := 0; round < n; round++ {
		changed := false
		for _, e := range g.edges {
			if math.IsInf(d[e.From], -1) {
				continue
			}
			w := g.actors[e.From].Duration - float64(e.Tokens)*period
			if cand := d[e.From] + w; cand > d[e.To]+feasTol {
				d[e.To] = cand
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return d, nil
}

// CheckPAS verifies that the start times s satisfy Constraint (1) for the
// given period, returning the most violated edge if any.
func (g *Graph) CheckPAS(s []float64, period float64) error {
	if len(s) != len(g.actors) {
		return fmt.Errorf("srdf: %d start times for %d actors", len(s), len(g.actors))
	}
	worst := 0.0
	worstEdge := -1
	for i, e := range g.edges {
		lhs := s[e.From] + g.actors[e.From].Duration - float64(e.Tokens)*period
		if v := lhs - s[e.To]; v > worst {
			worst = v
			worstEdge = i
		}
	}
	if worst > feasTol*(1+period) {
		e := g.edges[worstEdge]
		return fmt.Errorf("srdf: edge %q (%d) violates Constraint (1) by %v", e.Name, worstEdge, worst)
	}
	return nil
}

// FeasiblePeriod reports whether a PAS with the given period exists.
func (g *Graph) FeasiblePeriod(period float64) bool {
	_, err := g.StartTimes(period)
	return err == nil
}

// ErrDeadlock is returned by period computations on graphs that contain a
// token-free cycle.
var ErrDeadlock = errors.New("srdf: graph deadlocks (cycle without tokens)")

// MinPeriod returns the smallest feasible period, i.e. the maximum cycle
// mean max_C (Σ_{v∈C} ρ(v)) / (Σ_{e∈C} δ(e)), computed by Lawler's binary
// search with Bellman-Ford feasibility tests. The result is accurate to a
// relative tolerance of about 1e-12. Returns 0 for acyclic graphs (any
// positive period is feasible) and ErrDeadlock for deadlocked graphs.
func (g *Graph) MinPeriod() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if !g.DeadlockFree() {
		return 0, ErrDeadlock
	}
	// Upper bound: sum of all durations (a simple cycle visits each actor at
	// most once and carries at least one token).
	var hi float64
	for _, a := range g.actors {
		hi += a.Duration
	}
	if hi == 0 {
		return 0, nil
	}
	if g.feasibleExact(0) {
		return 0, nil // acyclic (or all cycles have zero duration)
	}
	lo := 0.0
	// hi must be feasible.
	for !g.feasibleExact(hi) {
		hi *= 2 // defensive; should not trigger
		if math.IsInf(hi, 1) {
			return 0, errors.New("srdf: failed to bracket the minimum period")
		}
	}
	for iter := 0; iter < 100 && hi-lo > 1e-12*hi; iter++ {
		mid := (lo + hi) / 2
		if g.feasibleExact(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// feasibleExact is the strict Bellman-Ford feasibility test used by the
// binary search (no tolerance slack, unlike StartTimes, so the bisection
// brackets the true MCM).
func (g *Graph) feasibleExact(period float64) bool {
	n := len(g.actors)
	s := make([]float64, n)
	for round := 0; round <= n; round++ {
		changed := false
		for _, e := range g.edges {
			w := g.actors[e.From].Duration - float64(e.Tokens)*period
			if cand := s[e.From] + w; cand > s[e.To]+1e-15*(1+math.Abs(s[e.To])) {
				s[e.To] = cand
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// MinPeriodHoward computes the maximum cycle ratio by Howard's multi-chain
// policy iteration, an independent algorithm used to cross-check MinPeriod.
// Semantics match MinPeriod: 0 for acyclic graphs, ErrDeadlock on token-free
// cycles.
func (g *Graph) MinPeriodHoward() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if !g.DeadlockFree() {
		return 0, ErrDeadlock
	}
	n := len(g.actors)
	// Strip actors that cannot lie on or reach a cycle: repeatedly remove
	// nodes without out-edges into the remaining set.
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for {
		changed := false
		for a := 0; a < n; a++ {
			if !alive[a] {
				continue
			}
			has := false
			for _, eid := range g.out[a] {
				if alive[g.edges[eid].To] {
					has = true
					break
				}
			}
			if !has {
				alive[a] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	anyAlive := false
	for _, v := range alive {
		if v {
			anyAlive = true
		}
	}
	if !anyAlive {
		return 0, nil // acyclic
	}

	cost := func(eid EdgeID) float64 { return g.actors[g.edges[eid].From].Duration }
	tTime := func(eid EdgeID) float64 { return float64(g.edges[eid].Tokens) }

	// Initial policy: first alive out-edge.
	policy := make([]EdgeID, n)
	for a := 0; a < n; a++ {
		if !alive[a] {
			continue
		}
		for _, eid := range g.out[a] {
			if alive[g.edges[eid].To] {
				policy[a] = eid
				break
			}
		}
	}

	lam := make([]float64, n) // per-node cycle ratio under the policy
	d := make([]float64, n)   // relative values
	const maxIters = 100000
	for iter := 0; iter < maxIters; iter++ {
		// ---- Value determination for the functional policy graph ----
		state := make([]int, n) // 0 new, 1 on current walk, 2 resolved
		order := make([]int, 0, n)
		for a0 := 0; a0 < n; a0++ {
			if !alive[a0] || state[a0] != 0 {
				continue
			}
			// Walk until reaching a resolved node or closing a cycle.
			order = order[:0]
			cur := a0
			for state[cur] == 0 {
				state[cur] = 1
				order = append(order, cur)
				cur = int(g.edges[policy[cur]].To)
			}
			if state[cur] == 1 {
				// order[...] contains a tail then the cycle starting at cur.
				ci := 0
				for order[ci] != cur {
					ci++
				}
				cycle := order[ci:]
				var cSum, tSum float64
				for _, v := range cycle {
					cSum += cost(policy[v])
					tSum += tTime(policy[v])
				}
				if tSum <= 0 {
					return 0, ErrDeadlock
				}
				r := cSum / tSum
				// Anchor the cycle head at 0 and propagate backwards so
				// d[v] = cost − r·time + d[next] holds around the cycle.
				d[cycle[0]] = 0
				lam[cycle[0]] = r
				for i := len(cycle) - 1; i >= 1; i-- {
					v := cycle[i]
					next := int(g.edges[policy[v]].To)
					lam[v] = r
					d[v] = cost(policy[v]) - r*tTime(policy[v]) + d[next]
					state[v] = 2
				}
				state[cycle[0]] = 2
				// Resolve the tail into the cycle.
				for i := ci - 1; i >= 0; i-- {
					v := order[i]
					next := int(g.edges[policy[v]].To)
					lam[v] = lam[next]
					d[v] = cost(policy[v]) - lam[v]*tTime(policy[v]) + d[next]
					state[v] = 2
				}
			} else {
				// Tail into an already-resolved region.
				for i := len(order) - 1; i >= 0; i-- {
					v := order[i]
					next := int(g.edges[policy[v]].To)
					lam[v] = lam[next]
					d[v] = cost(policy[v]) - lam[v]*tTime(policy[v]) + d[next]
					state[v] = 2
				}
			}
		}
		// ---- Policy improvement (lexicographic: ratio, then value) ----
		improved := false
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			for _, eid := range g.out[v] {
				u := int(g.edges[eid].To)
				if !alive[u] {
					continue
				}
				if lam[u] > lam[v]+1e-12*(1+math.Abs(lam[v])) {
					policy[v] = eid
					improved = true
				} else if math.Abs(lam[u]-lam[v]) <= 1e-12*(1+math.Abs(lam[v])) {
					val := cost(eid) - lam[v]*tTime(eid) + d[u]
					if val > d[v]+1e-9*(1+math.Abs(d[v])) {
						policy[v] = eid
						d[v] = val
						improved = true
					}
				}
			}
		}
		if !improved {
			best := 0.0
			for v := 0; v < n; v++ {
				if alive[v] && lam[v] > best {
					best = lam[v]
				}
			}
			return best, nil
		}
	}
	return 0, errors.New("srdf: Howard iteration did not converge")
}

// SelfTimed simulates self-timed (ASAP) execution for k firings of every
// actor and returns the start time of each firing: start[a][i] is the start
// of firing i+1 of actor a. SRDF theory guarantees the steady-state rate
// equals 1/MCM, which makes this an independent oracle for MinPeriod.
func (g *Graph) SelfTimed(k int) ([][]float64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if !g.DeadlockFree() {
		return nil, ErrDeadlock
	}
	n := len(g.actors)
	start := make([][]float64, n)
	for a := range start {
		start[a] = make([]float64, k)
	}
	// Fixed-point iteration in topological-ish sweeps: σ(v, j) =
	// max over in-edges e=(u→v) with j − δ(e) ≥ 1 of σ(u, j−δ(e)) + ρ(u).
	// Because dependencies can span firing indices, iterate until stable.
	for sweep := 0; sweep < n*k+2; sweep++ {
		changed := false
		for a := 0; a < n; a++ {
			for j := 0; j < k; j++ {
				v := 0.0
				for _, eid := range g.in[a] {
					e := g.edges[eid]
					dep := j - e.Tokens
					if dep >= 0 {
						if cand := start[e.From][dep] + g.actors[e.From].Duration; cand > v {
							v = cand
						}
					}
				}
				if v > start[a][j] {
					start[a][j] = v
					changed = true
				}
			}
		}
		if !changed {
			return start, nil
		}
	}
	return nil, errors.New("srdf: self-timed simulation did not stabilize")
}

// SelfTimedRate estimates the steady-state period from a self-timed run of k
// firings by averaging the per-firing increment over the second half of the
// run (the transient phase decays geometrically).
func (g *Graph) SelfTimedRate(k int) (float64, error) {
	if k < 4 {
		return 0, errors.New("srdf: need at least 4 firings to estimate the rate")
	}
	start, err := g.SelfTimed(k)
	if err != nil {
		return 0, err
	}
	// Use the actor with the largest spread to estimate the rate.
	best := 0.0
	for a := range start {
		half := k / 2
		rate := (start[a][k-1] - start[a][half]) / float64(k-1-half)
		if rate > best {
			best = rate
		}
	}
	return best, nil
}
