package srdf

import (
	"math"
	"math/rand"
	"testing"
)

// randLiveGraph generates a random strongly-connected-ish live SRDF graph:
// a ring backbone (guaranteeing liveness and a cycle) plus random chords.
func randLiveGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph()
	ids := make([]ActorID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddActor("", 0.1+rng.Float64()*5)
	}
	for i := 0; i < n; i++ {
		g.AddEdge("", ids[i], ids[(i+1)%n], 1+rng.Intn(3))
	}
	extra := rng.Intn(2 * n)
	for k := 0; k < extra; k++ {
		from := rng.Intn(n)
		to := rng.Intn(n)
		g.AddEdge("", ids[from], ids[to], 1+rng.Intn(4))
	}
	return g
}

// bruteForceMCM enumerates all simple cycles (small graphs only) and returns
// the maximum of Σρ/Σδ.
func bruteForceMCM(g *Graph) float64 {
	n := g.NumActors()
	best := 0.0
	var dfs func(start, cur int, visited []bool, dur float64, tok int)
	dfs = func(start, cur int, visited []bool, dur float64, tok int) {
		for _, eid := range g.OutEdges(ActorID(cur)) {
			e := g.Edge(eid)
			to := int(e.To)
			nd := dur + g.Actor(ActorID(cur)).Duration
			nt := tok + e.Tokens
			if to == start {
				if nt > 0 && nd/float64(nt) > best {
					best = nd / float64(nt)
				}
				continue
			}
			if to > start && !visited[to] { // canonical: cycle's smallest node is start
				visited[to] = true
				dfs(start, to, visited, nd, nt)
				visited[to] = false
			}
		}
	}
	for s := 0; s < n; s++ {
		visited := make([]bool, n)
		visited[s] = true
		dfs(s, s, visited, 0, 0)
	}
	return best
}

// TestMCMAgainstBruteForce compares the binary search against explicit cycle
// enumeration on small random graphs.
func TestMCMAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		g := randLiveGraph(rng, 2+rng.Intn(5))
		want := bruteForceMCM(g)
		got, err := g.MinPeriod()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !almostEqual(got, want, 1e-8) {
			t.Fatalf("trial %d: MinPeriod = %v, brute force = %v", trial, got, want)
		}
	}
}

// TestHowardAgreesWithLawler cross-checks the two MCM algorithms on larger
// random graphs.
func TestHowardAgreesWithLawler(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 60; trial++ {
		g := randLiveGraph(rng, 2+rng.Intn(20))
		lawler, err := g.MinPeriod()
		if err != nil {
			t.Fatalf("trial %d lawler: %v", trial, err)
		}
		howard, err := g.MinPeriodHoward()
		if err != nil {
			t.Fatalf("trial %d howard: %v", trial, err)
		}
		if !almostEqual(lawler, howard, 1e-7) {
			t.Fatalf("trial %d: lawler %v != howard %v", trial, lawler, howard)
		}
	}
}

func TestHowardSimpleCases(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 6)
	g.AddEdge("aa", a, a, 2)
	got, err := g.MinPeriodHoward()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, 1e-9) {
		t.Fatalf("Howard self-loop = %v, want 3", got)
	}
	// Acyclic.
	g2 := NewGraph()
	x := g2.AddActor("x", 5)
	y := g2.AddActor("y", 2)
	g2.AddEdge("xy", x, y, 1)
	got2, err := g2.MinPeriodHoward()
	if err != nil {
		t.Fatal(err)
	}
	if got2 != 0 {
		t.Fatalf("Howard acyclic = %v, want 0", got2)
	}
}

// TestSelfTimedRateMatchesMCM: the steady-state self-timed rate equals the
// maximum cycle mean (fundamental SRDF theorem).
func TestSelfTimedRateMatchesMCM(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 25; trial++ {
		g := randLiveGraph(rng, 2+rng.Intn(6))
		mcm, err := g.MinPeriod()
		if err != nil {
			t.Fatal(err)
		}
		rate, err := g.SelfTimedRate(1000)
		if err != nil {
			t.Fatal(err)
		}
		// The estimate carries an O(1/k) transient bias.
		if !almostEqual(rate, mcm, 2e-2) {
			t.Fatalf("trial %d: self-timed rate %v vs MCM %v", trial, rate, mcm)
		}
	}
}

// TestSelfTimedMonotonicity: adding tokens can never delay any firing
// (temporal monotonicity, §II-B2 of the paper).
func TestSelfTimedMonotonicityTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 30; trial++ {
		g := randLiveGraph(rng, 2+rng.Intn(5))
		base, err := g.SelfTimed(50)
		if err != nil {
			t.Fatal(err)
		}
		g2 := g.Clone()
		// Add a token to a random edge.
		eid := EdgeID(rng.Intn(g2.NumEdges()))
		g2.SetTokens(eid, g2.Edge(eid).Tokens+1)
		more, err := g2.SelfTimed(50)
		if err != nil {
			t.Fatal(err)
		}
		for a := range base {
			for j := range base[a] {
				if more[a][j] > base[a][j]+1e-9 {
					t.Fatalf("trial %d: adding tokens delayed firing (%d,%d): %v > %v",
						trial, a, j, more[a][j], base[a][j])
				}
			}
		}
	}
}

// TestSelfTimedMonotonicityDurations: reducing a firing duration can never
// delay any firing.
func TestSelfTimedMonotonicityDurations(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 30; trial++ {
		g := randLiveGraph(rng, 2+rng.Intn(5))
		base, err := g.SelfTimed(50)
		if err != nil {
			t.Fatal(err)
		}
		g2 := g.Clone()
		aid := ActorID(rng.Intn(g2.NumActors()))
		g2.SetDuration(aid, g2.Actor(aid).Duration*0.5)
		faster, err := g2.SelfTimed(50)
		if err != nil {
			t.Fatal(err)
		}
		for a := range base {
			for j := range base[a] {
				if faster[a][j] > base[a][j]+1e-9 {
					t.Fatalf("trial %d: faster actor delayed firing (%d,%d)", trial, a, j)
				}
			}
		}
	}
}

// TestStartTimesGivePAS: for random graphs and periods above MCM, start
// times exist and satisfy Constraint (1); below MCM they must not exist.
func TestStartTimesGivePAS(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 40; trial++ {
		g := randLiveGraph(rng, 2+rng.Intn(8))
		mcm, err := g.MinPeriod()
		if err != nil {
			t.Fatal(err)
		}
		if mcm == 0 {
			continue
		}
		above := mcm * 1.05
		s, err := g.StartTimes(above)
		if err != nil {
			t.Fatalf("trial %d: period above MCM rejected: %v", trial, err)
		}
		if err := g.CheckPAS(s, above); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		below := mcm * 0.95
		if g.FeasiblePeriod(below) {
			t.Fatalf("trial %d: period below MCM accepted", trial)
		}
	}
}

func TestLongestPaths(t *testing.T) {
	// a(2) → b(4) → c(1) chain plus a back edge c→a with 3 tokens.
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 4)
	c := g.AddActor("c", 1)
	g.AddEdge("ab", a, b, 0)
	g.AddEdge("bc", b, c, 0)
	g.AddEdge("ca", c, a, 3)
	const period = 4.0 // MCM = (2+4+1)/3 = 7/3 < 4
	d, err := g.LongestPaths(a, period)
	if err != nil {
		t.Fatal(err)
	}
	if d[a] != 0 {
		t.Fatalf("d[a] = %v", d[a])
	}
	if !almostEqual(d[b], 2, 1e-9) { // ρ(a)
		t.Fatalf("d[b] = %v, want 2", d[b])
	}
	if !almostEqual(d[c], 6, 1e-9) { // ρ(a)+ρ(b)
		t.Fatalf("d[c] = %v, want 6", d[c])
	}
	// Minimality: d is itself a feasible schedule offset assignment.
	if err := g.CheckPAS(d, period); err != nil {
		t.Fatalf("longest paths not PAS-feasible: %v", err)
	}
	// Unreachable actor: isolated node gets -Inf.
	g2 := NewGraph()
	x := g2.AddActor("x", 1)
	y := g2.AddActor("y", 1) // no edges
	d2, err := g2.LongestPaths(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d2[y], -1) {
		t.Fatalf("unreachable actor distance = %v, want -Inf", d2[y])
	}
	// Infeasible period is rejected.
	if _, err := g.LongestPaths(a, 1); err == nil {
		t.Fatal("period below MCM accepted")
	}
	if _, err := g.LongestPaths(a, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestSelfTimedRateValidation(t *testing.T) {
	g := NewGraph()
	g.AddActor("a", 1)
	if _, err := g.SelfTimedRate(2); err == nil {
		t.Fatal("k < 4 accepted")
	}
}

func TestSelfTimedChainLatency(t *testing.T) {
	// a → b → c chain with no tokens: firing j of c starts at
	// j·0 offsets... with all tokens 0, every firing j of b starts after
	// firing j of a finishes.
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	c := g.AddActor("c", 1)
	g.AddEdge("ab", a, b, 0)
	g.AddEdge("bc", b, c, 0)
	st, err := g.SelfTimed(3)
	if err != nil {
		t.Fatal(err)
	}
	// Without self-loops, a fires all its firings at t=0 (no constraints).
	if st[a][0] != 0 || st[a][2] != 0 {
		t.Fatalf("a start times: %v", st[a])
	}
	if st[b][0] != 2 || st[c][0] != 5 {
		t.Fatalf("pipeline latency wrong: b=%v c=%v", st[b][0], st[c][0])
	}
	_ = math.Pi
}
