package srdf

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 3)
	e := g.AddEdge("ab", a, b, 1)
	if g.NumActors() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts: %d actors, %d edges", g.NumActors(), g.NumEdges())
	}
	if g.Actor(a).Duration != 2 || g.Actor(b).Name != "b" {
		t.Fatal("actor accessors broken")
	}
	if g.Edge(e).From != a || g.Edge(e).To != b || g.Edge(e).Tokens != 1 {
		t.Fatal("edge accessors broken")
	}
	if len(g.OutEdges(a)) != 1 || len(g.InEdges(b)) != 1 || len(g.InEdges(a)) != 0 {
		t.Fatal("adjacency broken")
	}
	g.SetDuration(a, 5)
	if g.Actor(a).Duration != 5 {
		t.Fatal("SetDuration broken")
	}
	g.SetTokens(e, 7)
	if g.Edge(e).Tokens != 7 {
		t.Fatal("SetTokens broken")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	empty := NewGraph()
	if err := empty.Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := NewGraph()
	a := g.AddActor("a", -1)
	if err := g.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
	g.SetDuration(a, 1)
	e := g.AddEdge("self", a, a, 1)
	g.SetTokens(e, -1)
	if err := g.Validate(); err == nil {
		t.Fatal("negative tokens accepted")
	}
}

func TestDeadlockDetection(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 0)
	g.AddEdge("ba", b, a, 0)
	if g.DeadlockFree() {
		t.Fatal("token-free cycle not detected")
	}
	// One token on the cycle fixes it.
	g2 := NewGraph()
	a2 := g2.AddActor("a", 1)
	b2 := g2.AddActor("b", 1)
	g2.AddEdge("ab", a2, b2, 0)
	g2.AddEdge("ba", b2, a2, 1)
	if !g2.DeadlockFree() {
		t.Fatal("live cycle reported as deadlocked")
	}
	// Acyclic is always deadlock-free.
	g3 := NewGraph()
	x := g3.AddActor("x", 1)
	y := g3.AddActor("y", 1)
	g3.AddEdge("xy", x, y, 0)
	if !g3.DeadlockFree() {
		t.Fatal("acyclic graph reported as deadlocked")
	}
}

func TestClone(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	g.AddEdge("aa", a, a, 1)
	c := g.Clone()
	c.SetDuration(a, 9)
	c.SetTokens(EdgeID(0), 5)
	if g.Actor(a).Duration != 1 || g.Edge(0).Tokens != 1 {
		t.Fatal("Clone shares state")
	}
}

// Single self-loop actor: MCM = ρ/δ.
func TestMinPeriodSelfLoop(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 6)
	g.AddEdge("aa", a, a, 2)
	got, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, 1e-9) {
		t.Fatalf("MinPeriod = %v, want 3", got)
	}
}

// Two-actor ring: MCM = (ρa + ρb) / (δab + δba).
func TestMinPeriodRing(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 4)
	g.AddEdge("ab", a, b, 1)
	g.AddEdge("ba", b, a, 2)
	got, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-9) {
		t.Fatalf("MinPeriod = %v, want 2", got)
	}
}

// Two cycles; the slower one dominates.
func TestMinPeriodTwoCycles(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	c := g.AddActor("c", 10)
	g.AddEdge("ab", a, b, 1)
	g.AddEdge("ba", b, a, 1) // cycle mean (1+1)/2 = 1
	g.AddEdge("ac", a, c, 1)
	g.AddEdge("ca", c, a, 1) // cycle mean (1+10)/2 = 5.5
	got, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 5.5, 1e-9) {
		t.Fatalf("MinPeriod = %v, want 5.5", got)
	}
}

func TestMinPeriodAcyclic(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 5)
	b := g.AddActor("b", 7)
	g.AddEdge("ab", a, b, 0)
	got, err := g.MinPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("MinPeriod of acyclic graph = %v, want 0", got)
	}
}

func TestMinPeriodDeadlock(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge("ab", a, b, 0)
	g.AddEdge("ba", b, a, 0)
	if _, err := g.MinPeriod(); err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if _, err := g.MinPeriodHoward(); err != ErrDeadlock {
		t.Fatalf("Howard err = %v, want ErrDeadlock", err)
	}
	if _, err := g.SelfTimed(4); err != ErrDeadlock {
		t.Fatalf("SelfTimed err = %v, want ErrDeadlock", err)
	}
}

// The paper's two-actor task model: v1 (ρ−β) → v2 (ρχ/β) with a self-loop on
// v2; data/space queues to the consumer. MinPeriod must match the binding
// cycle computed analytically (DESIGN.md §3).
func TestMinPeriodPaperModel(t *testing.T) {
	const r, chi, mu = 40.0, 1.0, 10.0
	for d := 1; d <= 10; d++ {
		beta := 36.107794065928395 // β*(1); vary d with a fixed β: feasibility flips
		g := NewGraph()
		a1 := g.AddActor("a1", r-beta)
		a2 := g.AddActor("a2", r*chi/beta)
		b1 := g.AddActor("b1", r-beta)
		b2 := g.AddActor("b2", r*chi/beta)
		g.AddEdge("a1a2", a1, a2, 0)
		g.AddEdge("a2a2", a2, a2, 1)
		g.AddEdge("b1b2", b1, b2, 0)
		g.AddEdge("b2b2", b2, b2, 1)
		g.AddEdge("data", a2, b1, 0)
		g.AddEdge("space", b2, a1, d)
		mcm, err := g.MinPeriod()
		if err != nil {
			t.Fatal(err)
		}
		// Cycle through both components: mean = (2(r−β)+2r/β)/d;
		// self-loops: r/β.
		want := math.Max((2*(r-beta)+2*r/beta)/float64(d), r/beta)
		if !almostEqual(mcm, want, 1e-9) {
			t.Fatalf("d=%d: MinPeriod = %v, want %v", d, mcm, want)
		}
		if d == 1 {
			// β was chosen to make d=1 exactly meet µ = 10.
			if !almostEqual(mcm, mu, 1e-6) {
				t.Fatalf("calibrated instance: MCM = %v, want 10", mcm)
			}
		}
	}
}

func TestStartTimesSatisfyConstraint(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 2)
	b := g.AddActor("b", 4)
	g.AddEdge("ab", a, b, 1)
	g.AddEdge("ba", b, a, 2)
	s, err := g.StartTimes(2.5) // feasible: MCM = 2
	if err != nil {
		t.Fatal(err)
	}
	if err := g.CheckPAS(s, 2.5); err != nil {
		t.Fatal(err)
	}
	// Normalized: min is 0.
	if min := math.Min(s[0], s[1]); min != 0 {
		t.Fatalf("start times not normalized: %v", s)
	}
	// Infeasible period must fail.
	if _, err := g.StartTimes(1.5); err == nil {
		t.Fatal("period below MCM accepted")
	}
	if g.FeasiblePeriod(1.5) || !g.FeasiblePeriod(2.5) {
		t.Fatal("FeasiblePeriod inconsistent")
	}
}

func TestStartTimesRejectsBadPeriod(t *testing.T) {
	g := NewGraph()
	g.AddActor("a", 1)
	if _, err := g.StartTimes(0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := g.StartTimes(-1); err == nil {
		t.Fatal("negative period accepted")
	}
}

func TestCheckPASLengthMismatch(t *testing.T) {
	g := NewGraph()
	g.AddActor("a", 1)
	if err := g.CheckPAS([]float64{0, 0}, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
