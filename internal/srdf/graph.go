// Package srdf implements single-rate dataflow (SRDF) graphs — also known as
// homogeneous synchronous dataflow graphs, computation graphs, or marked
// graphs — and the temporal analyses the paper builds on:
//
//   - existence of a periodic admissible schedule (PAS) with a given period
//     (the paper's Constraint (1)),
//   - the minimum feasible period, i.e. the maximum cycle mean
//     max over cycles of (Σ firing durations)/(Σ tokens), computed both by
//     Lawler's binary search and by Howard's policy iteration,
//   - PAS start times via Bellman-Ford longest paths,
//   - self-timed (ASAP) execution, whose steady-state rate equals 1/MCM by
//     SRDF theory and which provides an independent check on the analyses.
//
// Actors fire as soon as every input queue holds a token; each firing of
// actor v takes ρ(v) time, consumes one token per input queue and produces
// one token per output queue.
package srdf

import (
	"errors"
	"fmt"
)

// ActorID identifies an actor within a Graph.
type ActorID int

// EdgeID identifies an edge (token queue) within a Graph.
type EdgeID int

// Actor is a dataflow actor with a fixed firing duration.
type Actor struct {
	Name     string
	Duration float64 // ρ(v) ≥ 0
}

// Edge is a token queue from actor From to actor To carrying an initial
// number of tokens.
type Edge struct {
	Name     string
	From, To ActorID
	Tokens   int // δ(e) ≥ 0
}

// Graph is a directed multigraph of actors and token queues.
type Graph struct {
	actors []Actor
	edges  []Edge
	out    [][]EdgeID // adjacency: out[a] lists edges with From == a
	in     [][]EdgeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// AddActor adds an actor and returns its id.
func (g *Graph) AddActor(name string, duration float64) ActorID {
	g.actors = append(g.actors, Actor{Name: name, Duration: duration})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return ActorID(len(g.actors) - 1)
}

// AddEdge adds a queue with the given initial tokens and returns its id.
func (g *Graph) AddEdge(name string, from, to ActorID, tokens int) EdgeID {
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{Name: name, From: from, To: to, Tokens: tokens})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id
}

// NumActors returns the number of actors.
func (g *Graph) NumActors() int { return len(g.actors) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Actor returns the actor with the given id.
func (g *Graph) Actor(id ActorID) Actor { return g.actors[id] }

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// SetDuration updates an actor's firing duration.
func (g *Graph) SetDuration(id ActorID, d float64) { g.actors[id].Duration = d }

// SetTokens updates an edge's initial token count.
func (g *Graph) SetTokens(id EdgeID, tokens int) { g.edges[id].Tokens = tokens }

// OutEdges returns the ids of edges leaving a (shared slice; do not modify).
func (g *Graph) OutEdges(a ActorID) []EdgeID { return g.out[a] }

// InEdges returns the ids of edges entering a (shared slice; do not modify).
func (g *Graph) InEdges(a ActorID) []EdgeID { return g.in[a] }

// Validate checks internal consistency: durations and token counts must be
// nonnegative and edge endpoints valid.
func (g *Graph) Validate() error {
	if len(g.actors) == 0 {
		return errors.New("srdf: graph has no actors")
	}
	for i, a := range g.actors {
		if a.Duration < 0 {
			return fmt.Errorf("srdf: actor %q (%d) has negative duration %v", a.Name, i, a.Duration)
		}
	}
	n := ActorID(len(g.actors))
	for i, e := range g.edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("srdf: edge %q (%d) has invalid endpoints", e.Name, i)
		}
		if e.Tokens < 0 {
			return fmt.Errorf("srdf: edge %q (%d) has negative tokens %d", e.Name, i, e.Tokens)
		}
	}
	return nil
}

// DeadlockFree reports whether every cycle carries at least one token.
// A cycle with zero tokens can never fire and deadlocks the graph. The check
// looks for a cycle in the subgraph of token-free edges.
func (g *Graph) DeadlockFree() bool {
	// Colors: 0 = unvisited, 1 = on stack, 2 = done.
	color := make([]byte, len(g.actors))
	var visit func(a ActorID) bool // returns true if a zero-token cycle found
	visit = func(a ActorID) bool {
		color[a] = 1
		for _, eid := range g.out[a] {
			e := g.edges[eid]
			if e.Tokens > 0 {
				continue
			}
			switch color[e.To] {
			case 1:
				return true
			case 0:
				if visit(e.To) {
					return true
				}
			}
		}
		color[a] = 2
		return false
	}
	for a := range g.actors {
		if color[a] == 0 && visit(ActorID(a)) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for _, a := range g.actors {
		c.AddActor(a.Name, a.Duration)
	}
	for _, e := range g.edges {
		c.AddEdge(e.Name, e.From, e.To, e.Tokens)
	}
	return c
}
