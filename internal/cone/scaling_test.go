package cone

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// TestScalingDefiningIdentity checks the NT property W z = W⁻¹ s = λ.
func TestScalingDefiningIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range testDims() {
		for trial := 0; trial < 30; trial++ {
			s := randInterior(rng, d)
			z := randInterior(rng, d)
			w, err := NewScaling(d, s, z)
			if err != nil {
				t.Fatalf("%+v: %v", d, err)
			}
			wz := linalg.NewVector(d.Dim())
			w.Apply(wz, z)
			winvS := linalg.NewVector(d.Dim())
			w.ApplyInv(winvS, s)
			lambda := w.Lambda()
			for i := range wz {
				if !almostEqual(wz[i], winvS[i], 1e-8) {
					t.Fatalf("%+v trial %d: Wz != W⁻¹s at %d: %v vs %v", d, trial, i, wz[i], winvS[i])
				}
				if !almostEqual(wz[i], lambda[i], 1e-8) {
					t.Fatalf("%+v: λ mismatch at %d: %v vs %v", d, i, wz[i], lambda[i])
				}
			}
			if !d.Interior(lambda) {
				t.Fatalf("%+v: λ not interior", d)
			}
		}
	}
}

// TestScalingInverseRoundTrip checks W⁻¹(W x) = x for arbitrary x.
func TestScalingInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, d := range testDims() {
		s := randInterior(rng, d)
		z := randInterior(rng, d)
		w, err := NewScaling(d, s, z)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			x := linalg.NewVector(d.Dim())
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y := linalg.NewVector(d.Dim())
			w.Apply(y, x)
			back := linalg.NewVector(d.Dim())
			w.ApplyInv(back, y)
			for i := range x {
				if !almostEqual(back[i], x[i], 1e-9) {
					t.Fatalf("%+v: W⁻¹Wx != x at %d: %v vs %v", d, i, back[i], x[i])
				}
			}
		}
	}
}

// TestScalingSymmetric verifies xᵀ(Wy) = (Wx)ᵀy, i.e. W is symmetric.
func TestScalingSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, d := range testDims() {
		s := randInterior(rng, d)
		z := randInterior(rng, d)
		w, err := NewScaling(d, s, z)
		if err != nil {
			t.Fatal(err)
		}
		x := linalg.NewVector(d.Dim())
		y := linalg.NewVector(d.Dim())
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		wx := linalg.NewVector(d.Dim())
		wy := linalg.NewVector(d.Dim())
		w.Apply(wx, x)
		w.Apply(wy, y)
		if !almostEqual(linalg.Dot(x, wy), linalg.Dot(wx, y), 1e-9) {
			t.Fatalf("%+v: W not symmetric: %v vs %v", d, linalg.Dot(x, wy), linalg.Dot(wx, y))
		}
	}
}

// TestScalingGapInvariant verifies λᵀλ = sᵀz, which follows from
// λ = Wz = W⁻¹s.
func TestScalingGapInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, d := range testDims() {
		for trial := 0; trial < 20; trial++ {
			s := randInterior(rng, d)
			z := randInterior(rng, d)
			w, err := NewScaling(d, s, z)
			if err != nil {
				t.Fatal(err)
			}
			l := w.Lambda()
			if !almostEqual(linalg.Dot(l, l), linalg.Dot(s, z), 1e-8) {
				t.Fatalf("%+v: λᵀλ = %v but sᵀz = %v", d, linalg.Dot(l, l), linalg.Dot(s, z))
			}
		}
	}
}

// TestScalingRejectsBoundary verifies NewScaling fails for boundary points.
func TestScalingRejectsBoundary(t *testing.T) {
	d := Dims{NonNeg: 1, SOC: []int{3}}
	in := linalg.Vector{1, 2, 0, 0}
	boundary := linalg.Vector{0, 2, 0, 0}
	if _, err := NewScaling(d, boundary, in); err == nil {
		t.Fatal("boundary s accepted")
	}
	if _, err := NewScaling(d, in, boundary); err == nil {
		t.Fatal("boundary z accepted")
	}
}

// TestScaleRowsMatchesApplyInv verifies that ScaleRows(G) multiplies every
// column by W⁻¹.
func TestScaleRowsMatchesApplyInv(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for _, d := range testDims() {
		s := randInterior(rng, d)
		z := randInterior(rng, d)
		w, err := NewScaling(d, s, z)
		if err != nil {
			t.Fatal(err)
		}
		m, n := d.Dim(), 4
		g := linalg.NewMatrix(m, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		want := linalg.NewMatrix(m, n)
		col := linalg.NewVector(m)
		out := linalg.NewVector(m)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				col[i] = g.At(i, j)
			}
			w.ApplyInv(out, col)
			for i := 0; i < m; i++ {
				want.Set(i, j, out[i])
			}
		}
		w.ScaleRows(g)
		for k := range g.Data {
			if !almostEqual(g.Data[k], want.Data[k], 1e-9) {
				t.Fatalf("%+v: ScaleRows mismatch at %d: %v vs %v", d, k, g.Data[k], want.Data[k])
			}
		}
	}
}

// TestScalingCentralPoint: when s = z, W must be the identity map.
func TestScalingCentralPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, d := range testDims() {
		s := randInterior(rng, d)
		w, err := NewScaling(d, s, s)
		if err != nil {
			t.Fatal(err)
		}
		x := linalg.NewVector(d.Dim())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := linalg.NewVector(d.Dim())
		w.Apply(y, x)
		for i := range x {
			if !almostEqual(y[i], x[i], 1e-9) {
				t.Fatalf("%+v: W != I at central point (index %d: %v vs %v)", d, i, y[i], x[i])
			}
		}
	}
}

// TestJnorm sanity.
func TestJnorm(t *testing.T) {
	if got := jnorm(linalg.Vector{5, 3, 0}); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("jnorm = %v, want 4", got)
	}
	if got := jnorm(linalg.Vector{1, 2, 0}); got != 0 {
		t.Fatalf("jnorm of exterior point = %v, want 0", got)
	}
	_ = math.Pi
}
