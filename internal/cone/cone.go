// Package cone implements the symmetric-cone calculus needed by a
// primal-dual interior-point method over the cone
//
//	K = R₊ˡ × Q^{q₁} × … × Q^{qN},
//
// the Cartesian product of a nonnegative orthant and second-order (Lorentz)
// cones Q^q = { (x₀, x₁) ∈ R × R^{q-1} : x₀ ≥ ‖x₁‖₂ }.
//
// It provides the Euclidean-Jordan-algebra operations (product, division,
// identity), interior tests, exact step-to-boundary computations, and the
// Nesterov-Todd scaling W with W z = W⁻ᵀ s used to symmetrize the KKT system.
package cone

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Dims describes the cone K as an ordered product: first NonNeg scalar
// coordinates forming the nonnegative orthant, then one block of size SOC[i]
// for each second-order cone. Every SOC size must be at least 2.
type Dims struct {
	NonNeg int
	SOC    []int
}

// Validate reports whether the dimensions are well formed.
func (d Dims) Validate() error {
	if d.NonNeg < 0 {
		return fmt.Errorf("cone: negative orthant size %d", d.NonNeg)
	}
	for i, q := range d.SOC {
		if q < 2 {
			return fmt.Errorf("cone: SOC block %d has size %d (< 2)", i, q)
		}
	}
	return nil
}

// Dim returns the total vector length of a point in K.
func (d Dims) Dim() int {
	n := d.NonNeg
	for _, q := range d.SOC {
		n += q
	}
	return n
}

// Degree returns the barrier degree ν of K under the normalization in which
// the central path satisfies s∘z = µ·e: each orthant coordinate contributes
// 1 and each second-order cone block contributes 1.
func (d Dims) Degree() int { return d.NonNeg + len(d.SOC) }

// visit calls f for every block: kind is 'l' for the (single) orthant slice
// and 'q' for each SOC block, with [lo, hi) the index range.
func (d Dims) visit(f func(kind byte, lo, hi int)) {
	if d.NonNeg > 0 {
		f('l', 0, d.NonNeg)
	}
	off := d.NonNeg
	for _, q := range d.SOC {
		f('q', off, off+q)
		off += q
	}
}

// Identity writes the cone identity element e into dst: ones in the orthant,
// (1, 0, …, 0) in each SOC block.
func (d Dims) Identity(dst linalg.Vector) {
	d.checkLen(dst)
	dst.Zero()
	for i := 0; i < d.NonNeg; i++ {
		dst[i] = 1
	}
	off := d.NonNeg
	for _, q := range d.SOC {
		dst[off] = 1
		off += q
	}
}

func (d Dims) checkLen(v linalg.Vector) {
	if len(v) != d.Dim() {
		panic(fmt.Sprintf("cone: vector length %d does not match cone dimension %d", len(v), d.Dim()))
	}
}

// socResidual returns x₀ − ‖x₁‖ for the SOC block x; positive means strictly
// interior.
func socResidual(x linalg.Vector) float64 {
	return x[0] - linalg.Norm2(x[1:])
}

// Interior reports whether x is strictly in the interior of K.
func (d Dims) Interior(x linalg.Vector) bool {
	d.checkLen(x)
	ok := true
	d.visit(func(kind byte, lo, hi int) {
		switch kind {
		case 'l':
			for i := lo; i < hi; i++ {
				if x[i] <= 0 {
					ok = false
					return
				}
			}
		case 'q':
			if socResidual(x[lo:hi]) <= 0 {
				ok = false
			}
		}
	})
	return ok
}

// InteriorMargin returns the largest θ such that x − θ·e … more precisely it
// returns min over blocks of the "slack": for the orthant min(xᵢ) and for a
// SOC block x₀ − ‖x₁‖. A positive margin means strictly interior; callers use
// −margin as the shift needed to push x inside.
func (d Dims) InteriorMargin(x linalg.Vector) float64 {
	d.checkLen(x)
	margin := math.Inf(1)
	d.visit(func(kind byte, lo, hi int) {
		switch kind {
		case 'l':
			for i := lo; i < hi; i++ {
				if x[i] < margin {
					margin = x[i]
				}
			}
		case 'q':
			if r := socResidual(x[lo:hi]); r < margin {
				margin = r
			}
		}
	})
	if math.IsInf(margin, 1) { // zero-dimensional cone
		return 0
	}
	return margin
}

// Product writes the Jordan product x∘y into dst. For the orthant this is the
// elementwise product; for a SOC block, x∘y = (xᵀy, x₀y₁ + y₀x₁).
func (d Dims) Product(dst, x, y linalg.Vector) {
	d.checkLen(dst)
	d.checkLen(x)
	d.checkLen(y)
	d.visit(func(kind byte, lo, hi int) {
		switch kind {
		case 'l':
			for i := lo; i < hi; i++ {
				dst[i] = x[i] * y[i]
			}
		case 'q':
			xb, yb := x[lo:hi], y[lo:hi]
			dot := linalg.Dot(xb, yb)
			x0, y0 := xb[0], yb[0]
			// Write the tail first so aliasing with dst==x or dst==y is safe
			// for everything except the head, which we saved.
			db := dst[lo:hi]
			for i := 1; i < len(db); i++ {
				db[i] = x0*yb[i] + y0*xb[i]
			}
			db[0] = dot
		}
	})
}

// Div writes into dst the solution u of λ∘u = b (Jordan division). λ must be
// strictly interior; otherwise the result contains Inf/NaN.
func (d Dims) Div(dst, lambda, b linalg.Vector) {
	d.checkLen(dst)
	d.checkLen(lambda)
	d.checkLen(b)
	d.visit(func(kind byte, lo, hi int) {
		switch kind {
		case 'l':
			for i := lo; i < hi; i++ {
				dst[i] = b[i] / lambda[i]
			}
		case 'q':
			lb, bb, db := lambda[lo:hi], b[lo:hi], dst[lo:hi]
			l0 := lb[0]
			det := l0*l0 - sq(linalg.Norm2(lb[1:]))
			// u₀ = (λ₀b₀ − λ₁ᵀb₁)/det(λ); u₁ = (b₁ − u₀λ₁)/λ₀.
			dot1 := linalg.Dot(lb[1:], bb[1:])
			u0 := (l0*bb[0] - dot1) / det
			for i := 1; i < len(db); i++ {
				db[i] = (bb[i] - u0*lb[i]) / l0
			}
			db[0] = u0
		}
	})
}

func sq(x float64) float64 { return x * x }

// StepToBoundary returns the largest t ≥ 0 such that x + α·dx ∈ K for all
// α ∈ [0, t]. x must be strictly interior. Returns +Inf when the whole ray
// stays inside K.
func (d Dims) StepToBoundary(x, dx linalg.Vector) float64 {
	d.checkLen(x)
	d.checkLen(dx)
	t := math.Inf(1)
	d.visit(func(kind byte, lo, hi int) {
		switch kind {
		case 'l':
			for i := lo; i < hi; i++ {
				if dx[i] < 0 {
					if cand := -x[i] / dx[i]; cand < t {
						t = cand
					}
				}
			}
		case 'q':
			if cand := socStep(x[lo:hi], dx[lo:hi]); cand < t {
				t = cand
			}
		}
	})
	return t
}

// socStep returns the exit step for a single SOC block. The function
// f(α) = (x₀+αd₀) − ‖x₁+αd₁‖ is concave with f(0) > 0, so the positive root,
// when it exists, is unique. If the asymptotic slope d₀ − ‖d₁‖ is
// nonnegative, f never returns to zero and the step is unbounded.
func socStep(x, dx linalg.Vector) float64 {
	dres := socResidual(dx)
	if dres >= 0 {
		return math.Inf(1)
	}
	// Solve det(x + α dx) = 0:  a α² + 2b α + c = 0 with
	// a = det(dx) (< 0 here), b = xᵀJ dx, c = det(x) (> 0).
	x0, d0 := x[0], dx[0]
	a := d0*d0 - sq(linalg.Norm2(dx[1:]))
	b := x0*d0 - linalg.Dot(x[1:], dx[1:])
	c := x0*x0 - sq(linalg.Norm2(x[1:]))
	if c <= 0 {
		return 0 // x already on or outside the boundary
	}
	if a == 0 {
		if b >= 0 {
			return math.Inf(1)
		}
		return -c / (2 * b)
	}
	disc := b*b - a*c
	if disc < 0 {
		disc = 0
	}
	sqrtDisc := math.Sqrt(disc)
	// Stable quadratic roots.
	var q float64
	if b >= 0 {
		q = -(b + sqrtDisc)
	} else {
		q = -(b - sqrtDisc)
	}
	r1, r2 := q/a, c/q
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	// The exit point is the smallest positive root at which the head stays
	// nonnegative.
	const eps = 1e-14
	for _, r := range []float64{r1, r2} {
		if r > 0 && x0+r*d0 >= -eps*(math.Abs(x0)+1) {
			return r
		}
	}
	// Numerical corner case: fall back to bisection on the concave f.
	return socStepBisect(x, dx)
}

func socStepBisect(x, dx linalg.Vector) float64 {
	f := func(alpha float64) float64 {
		head := x[0] + alpha*dx[0]
		var ssq float64
		for i := 1; i < len(x); i++ {
			v := x[i] + alpha*dx[i]
			ssq += v * v
		}
		return head - math.Sqrt(ssq)
	}
	lo, hi := 0.0, 1.0
	for f(hi) > 0 {
		hi *= 2
		if hi > 1e18 {
			return math.Inf(1)
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-15*hi; iter++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
