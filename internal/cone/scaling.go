package cone

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// ErrNotInterior is returned when a scaling is requested for points that are
// not strictly inside the cone.
var ErrNotInterior = errors.New("cone: point is not strictly interior")

// Scaling is the Nesterov-Todd scaling for a primal-dual pair (s, z) of
// strictly interior points: a symmetric positive-definite linear map W with
//
//	W z = W⁻¹ s  (=: λ, the scaled point).
//
// For the orthant, W is diagonal with entries √(sᵢ/zᵢ). For a second-order
// cone block, W = P(v) is the quadratic representation of the Jordan square
// root v = w^{1/2} of the scaling point w (the unique interior point with
// P(w) z = s):
//
//	P(v) u = 2 v (vᵀu) − det(v)·J u,   J u = (u₀, −u₁).
type Scaling struct {
	dims Dims
	// Orthant diagonal: d[i] = sqrt(s_i / z_i), indexed from 0..NonNeg-1.
	d linalg.Vector
	// One entry per SOC block.
	blocks []socScaling
	lambda linalg.Vector // λ = W z = W⁻¹ s
}

type socScaling struct {
	v    linalg.Vector // Jordan square root of the scaling point w
	detV float64       // det(v) = √det(w) = √(‖s‖_J / ‖z‖_J)
	vinv linalg.Vector // v⁻¹ = J v / det(v), so P(v)⁻¹ = P(v⁻¹)
}

// NewScaling computes the NT scaling for the pair (s, z). Both points must be
// strictly interior to K.
func NewScaling(dims Dims, s, z linalg.Vector) (*Scaling, error) {
	dims.checkLen(s)
	dims.checkLen(z)
	if !dims.Interior(s) || !dims.Interior(z) {
		return nil, ErrNotInterior
	}
	w := &Scaling{dims: dims, d: linalg.NewVector(dims.NonNeg), lambda: linalg.NewVector(dims.Dim())}
	for i := 0; i < dims.NonNeg; i++ {
		w.d[i] = math.Sqrt(s[i] / z[i])
		w.lambda[i] = math.Sqrt(s[i] * z[i])
	}
	off := dims.NonNeg
	for _, q := range dims.SOC {
		sb, zb := s[off:off+q], z[off:off+q]
		blk, err := newSOCScaling(sb, zb)
		if err != nil {
			return nil, err
		}
		w.blocks = append(w.blocks, blk)
		// λ block = W z.
		applyP(blk.v, blk.detV, w.lambda[off:off+q], zb)
		off += q
	}
	return w, nil
}

// newSOCScaling computes the NT scaling for one SOC block.
func newSOCScaling(s, z linalg.Vector) (socScaling, error) {
	ns := jnorm(s)
	nz := jnorm(z)
	if ns <= 0 || nz <= 0 {
		return socScaling{}, ErrNotInterior
	}
	q := len(s)
	// Normalized points and γ = sqrt((1 + s̄ᵀz̄)/2).
	sbar := make(linalg.Vector, q)
	zbar := make(linalg.Vector, q)
	for i := range s {
		sbar[i] = s[i] / ns
		zbar[i] = z[i] / nz
	}
	gamma := math.Sqrt((1 + linalg.Dot(sbar, zbar)) / 2)
	// Scaling point w = √η · w̄ with w̄ = (s̄ + J z̄)/(2γ), η = ns/nz.
	eta := ns / nz
	sqrtEta := math.Sqrt(eta)
	w := make(linalg.Vector, q)
	w[0] = sqrtEta * (sbar[0] + zbar[0]) / (2 * gamma)
	for i := 1; i < q; i++ {
		w[i] = sqrtEta * (sbar[i] - zbar[i]) / (2 * gamma)
	}
	// det(w) = η (since det(w̄) = 1); Jordan square root v of w.
	detW := eta
	v := make(linalg.Vector, q)
	v0 := math.Sqrt((w[0] + math.Sqrt(detW)) / 2)
	v[0] = v0
	for i := 1; i < q; i++ {
		v[i] = w[i] / (2 * v0)
	}
	detV := math.Sqrt(detW)
	vinv := make(linalg.Vector, q)
	vinv[0] = v[0] / detV
	for i := 1; i < q; i++ {
		vinv[i] = -v[i] / detV
	}
	return socScaling{v: v, detV: detV, vinv: vinv}, nil
}

// jnorm returns √(x₀² − ‖x₁‖²) for an interior SOC point (NaN guarded to 0).
func jnorm(x linalg.Vector) float64 {
	d := x[0]*x[0] - sq(linalg.Norm2(x[1:]))
	if d <= 0 {
		return 0
	}
	return math.Sqrt(d)
}

// applyP writes P(v) u into dst for a SOC block: 2 v (vᵀu) − det(v)·J u.
// dst may not alias u.
//
//bbvet:hotpath
func applyP(v linalg.Vector, detV float64, dst, u linalg.Vector) {
	dot := linalg.Dot(v, u)
	dst[0] = 2*v[0]*dot - detV*u[0]
	for i := 1; i < len(u); i++ {
		dst[i] = 2*v[i]*dot + detV*u[i]
	}
}

// Lambda returns the scaled point λ = W z = W⁻¹ s (shared storage; callers
// must not modify it).
func (w *Scaling) Lambda() linalg.Vector { return w.lambda }

// Apply writes W x into dst. dst may alias x.
func (w *Scaling) Apply(dst, x linalg.Vector) {
	w.dims.checkLen(dst)
	w.dims.checkLen(x)
	for i := 0; i < w.dims.NonNeg; i++ {
		dst[i] = w.d[i] * x[i]
	}
	off := w.dims.NonNeg
	for bi, q := range w.dims.SOC {
		blk := w.blocks[bi]
		tmp := make(linalg.Vector, q)
		applyP(blk.v, blk.detV, tmp, x[off:off+q])
		copy(dst[off:off+q], tmp)
		off += q
	}
}

// ApplyInv writes W⁻¹ x into dst. dst may alias x. Uses P(v)⁻¹ = P(v⁻¹) with
// v⁻¹ = J v / det(v).
func (w *Scaling) ApplyInv(dst, x linalg.Vector) {
	w.dims.checkLen(dst)
	w.dims.checkLen(x)
	for i := 0; i < w.dims.NonNeg; i++ {
		dst[i] = x[i] / w.d[i]
	}
	off := w.dims.NonNeg
	for bi, q := range w.dims.SOC {
		blk := w.blocks[bi]
		tmp := make(linalg.Vector, q)
		applyP(blk.vinv, 1/blk.detV, tmp, x[off:off+q])
		copy(dst[off:off+q], tmp)
		off += q
	}
}

// OrthantInv returns the inverse diagonal entry 1/dᵢ of W for orthant row i
// (0 ≤ i < Dims.NonNeg): the factor that row i of G picks up in W⁻¹G.
//
//bbvet:hotpath
func (w *Scaling) OrthantInv(i int) float64 { return 1 / w.d[i] }

// ApplyInvSOC writes P(v⁻¹) x into dst for SOC block bi; both vectors must
// have the block's length and must not alias. Together with OrthantInv this
// lets callers apply W⁻¹ blockwise to matrix columns without materializing
// dense cone-dimension vectors — the building block of the sparse
// normal-equations assembly.
//
//bbvet:hotpath
func (w *Scaling) ApplyInvSOC(bi int, dst, x linalg.Vector) {
	blk := w.blocks[bi]
	if len(dst) != len(blk.v) || len(x) != len(blk.v) {
		panic("cone: ApplyInvSOC block length mismatch")
	}
	applyP(blk.vinv, 1/blk.detV, dst, x)
}

// ScaleRows overwrites each column slice of the m×n matrix g (given as the
// raw row-major data) with W⁻¹ applied to it; i.e. it replaces G by W⁻¹G.
// This is the building block for the IPM normal equations
// H = Gᵀ W⁻² G = (W⁻¹G)ᵀ (W⁻¹G).
func (w *Scaling) ScaleRows(g *linalg.Matrix) {
	if g.Rows != w.dims.Dim() {
		panic("cone: ScaleRows row count does not match cone dimension")
	}
	n := g.Cols
	// Orthant rows: scale row i by 1/d_i.
	for i := 0; i < w.dims.NonNeg; i++ {
		inv := 1 / w.d[i]
		row := g.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] *= inv
		}
	}
	off := w.dims.NonNeg
	col := make(linalg.Vector, 0, 16)
	out := make(linalg.Vector, 0, 16)
	for bi, q := range w.dims.SOC {
		blk := w.blocks[bi]
		col = col[:0]
		out = out[:0]
		if cap(col) < q {
			col = make(linalg.Vector, q)
			out = make(linalg.Vector, q)
		} else {
			col = col[:q]
			out = out[:q]
		}
		for j := 0; j < n; j++ {
			for r := 0; r < q; r++ {
				col[r] = g.Data[(off+r)*n+j]
			}
			applyP(blk.vinv, 1/blk.detV, out, col)
			for r := 0; r < q; r++ {
				g.Data[(off+r)*n+j] = out[r]
			}
		}
		off += q
	}
}
