package cone

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// randInterior returns a random strictly interior point of K.
func randInterior(rng *rand.Rand, d Dims) linalg.Vector {
	x := linalg.NewVector(d.Dim())
	for i := 0; i < d.NonNeg; i++ {
		x[i] = 0.1 + rng.Float64()*3
	}
	off := d.NonNeg
	for _, q := range d.SOC {
		var ssq float64
		for i := 1; i < q; i++ {
			x[off+i] = rng.NormFloat64()
			ssq += x[off+i] * x[off+i]
		}
		x[off] = math.Sqrt(ssq) + 0.1 + rng.Float64()*2
		off += q
	}
	return x
}

func testDims() []Dims {
	return []Dims{
		{NonNeg: 5},
		{SOC: []int{3}},
		{SOC: []int{2, 4, 3}},
		{NonNeg: 3, SOC: []int{3, 5}},
		{NonNeg: 1, SOC: []int{2}},
	}
}

func TestDimsValidate(t *testing.T) {
	if err := (Dims{NonNeg: 2, SOC: []int{3}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Dims{NonNeg: -1}).Validate(); err == nil {
		t.Fatal("negative orthant accepted")
	}
	if err := (Dims{SOC: []int{1}}).Validate(); err == nil {
		t.Fatal("SOC of size 1 accepted")
	}
}

func TestDimAndDegree(t *testing.T) {
	d := Dims{NonNeg: 4, SOC: []int{3, 2}}
	if d.Dim() != 9 {
		t.Fatalf("Dim = %d, want 9", d.Dim())
	}
	if d.Degree() != 6 {
		t.Fatalf("Degree = %d, want 6", d.Degree())
	}
}

func TestIdentityIsInterior(t *testing.T) {
	for _, d := range testDims() {
		e := linalg.NewVector(d.Dim())
		d.Identity(e)
		if !d.Interior(e) {
			t.Fatalf("identity not interior for %+v", d)
		}
		// e ∘ x = x for all x.
		rng := rand.New(rand.NewSource(42))
		x := randInterior(rng, d)
		prod := linalg.NewVector(d.Dim())
		d.Product(prod, e, x)
		for i := range x {
			if !almostEqual(prod[i], x[i], 1e-12) {
				t.Fatalf("e∘x != x at %d for %+v", i, d)
			}
		}
	}
}

func TestInteriorDetection(t *testing.T) {
	d := Dims{NonNeg: 2, SOC: []int{3}}
	in := linalg.Vector{1, 1, 2, 1, 1} // SOC: 2 > sqrt(2)
	if !d.Interior(in) {
		t.Fatal("interior point rejected")
	}
	out := linalg.Vector{1, -0.1, 2, 1, 1}
	if d.Interior(out) {
		t.Fatal("negative orthant coordinate accepted")
	}
	boundary := linalg.Vector{1, 1, math.Sqrt2, 1, 1}
	if d.Interior(boundary) {
		t.Fatal("SOC boundary point accepted as interior")
	}
}

func TestInteriorMargin(t *testing.T) {
	d := Dims{NonNeg: 2, SOC: []int{3}}
	x := linalg.Vector{0.5, 2, 3, 0, 4} // orthant min 0.5, SOC residual 3-4 = -1
	if got := d.InteriorMargin(x); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("InteriorMargin = %v, want -1", got)
	}
	// Shifting by (1 - margin)·e must produce an interior point.
	e := linalg.NewVector(d.Dim())
	d.Identity(e)
	shifted := x.Clone()
	shifted.AddScaled(1-d.InteriorMargin(x), e)
	if !d.Interior(shifted) {
		t.Fatal("margin-based shift did not reach the interior")
	}
}

func TestProductDivRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range testDims() {
		for trial := 0; trial < 20; trial++ {
			lambda := randInterior(rng, d)
			b := linalg.NewVector(d.Dim())
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			u := linalg.NewVector(d.Dim())
			d.Div(u, lambda, b)
			back := linalg.NewVector(d.Dim())
			d.Product(back, lambda, u)
			for i := range b {
				if !almostEqual(back[i], b[i], 1e-9) {
					t.Fatalf("λ∘(λ\\b) != b at %d for %+v: %v vs %v", i, d, back[i], b[i])
				}
			}
		}
	}
}

func TestProductCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := Dims{NonNeg: 2, SOC: []int{4}}
	x := randInterior(rng, d)
	y := randInterior(rng, d)
	xy := linalg.NewVector(d.Dim())
	yx := linalg.NewVector(d.Dim())
	d.Product(xy, x, y)
	d.Product(yx, y, x)
	for i := range xy {
		if xy[i] != yx[i] {
			t.Fatalf("Jordan product not commutative at %d", i)
		}
	}
}

func TestProductAliasSafe(t *testing.T) {
	d := Dims{SOC: []int{3}}
	x := linalg.Vector{3, 1, 1}
	y := linalg.Vector{2, 0.5, -0.5}
	want := linalg.NewVector(3)
	d.Product(want, x, y)
	got := x.Clone()
	d.Product(got, got, y) // dst aliases x
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-14) {
			t.Fatalf("aliased product differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestStepToBoundaryOrthant(t *testing.T) {
	d := Dims{NonNeg: 3}
	x := linalg.Vector{1, 2, 3}
	dx := linalg.Vector{-1, -4, 1}
	// Exit at min(1/1, 2/4) = 0.5.
	if got := d.StepToBoundary(x, dx); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("step = %v, want 0.5", got)
	}
	if got := d.StepToBoundary(x, linalg.Vector{1, 0, 2}); !math.IsInf(got, 1) {
		t.Fatalf("nonnegative direction should give +Inf, got %v", got)
	}
}

func TestStepToBoundarySOCExact(t *testing.T) {
	d := Dims{SOC: []int{3}}
	x := linalg.Vector{2, 0, 0}
	dx := linalg.Vector{0, 1, 0}
	// Exit when ‖(α,0)‖ = 2 → α = 2.
	if got := d.StepToBoundary(x, dx); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("step = %v, want 2", got)
	}
	// Direction inside the cone: unbounded.
	if got := d.StepToBoundary(x, linalg.Vector{1, 0.5, 0}); !math.IsInf(got, 1) {
		t.Fatalf("in-cone direction should give +Inf, got %v", got)
	}
	// Head shrinking: exit when 2 - α = 0 → α = 2 with zero tail.
	if got := d.StepToBoundary(x, linalg.Vector{-1, 0, 0}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("head-shrink step = %v, want 2", got)
	}
}

// Property: at the returned step the point is on the boundary (margin ≈ 0),
// and slightly before it the point is interior.
func TestStepToBoundaryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, d := range testDims() {
		for trial := 0; trial < 50; trial++ {
			x := randInterior(rng, d)
			dx := linalg.NewVector(d.Dim())
			for i := range dx {
				dx[i] = rng.NormFloat64()
			}
			tmax := d.StepToBoundary(x, dx)
			if math.IsInf(tmax, 1) {
				// Ray stays in the cone: spot check a large step.
				y := x.Clone()
				y.AddScaled(1e6, dx)
				if d.InteriorMargin(y) < -1e-6*linalg.NormInf(y) {
					t.Fatalf("claimed unbounded but exits cone (%+v)", d)
				}
				continue
			}
			if tmax < 0 {
				t.Fatalf("negative step %v", tmax)
			}
			before := x.Clone()
			before.AddScaled(0.999999*tmax, dx)
			if d.InteriorMargin(before) < -1e-7*(1+linalg.NormInf(before)) {
				t.Fatalf("point just before the boundary is outside (%+v, margin %v)",
					d, d.InteriorMargin(before))
			}
			at := x.Clone()
			at.AddScaled(tmax, dx)
			if m := d.InteriorMargin(at); math.Abs(m) > 1e-6*(1+linalg.NormInf(at)) {
				t.Fatalf("boundary margin not ~0: %v (%+v)", m, d)
			}
		}
	}
}

func TestSOCStepBisectFallback(t *testing.T) {
	// Exercise the bisection helper directly.
	x := linalg.Vector{1, 0.5, 0}
	dx := linalg.Vector{-0.1, 0.3, 0.1}
	got := socStepBisect(x, dx)
	// Verify against direct evaluation.
	y := x.Clone()
	y.AddScaled(got, dx)
	if r := socResidual(y); math.Abs(r) > 1e-9 {
		t.Fatalf("bisection boundary residual %v", r)
	}
}

func TestDivQuickProperty(t *testing.T) {
	d := Dims{NonNeg: 2, SOC: []int{3}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lambda := randInterior(rng, d)
		b := linalg.NewVector(d.Dim())
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		u := linalg.NewVector(d.Dim())
		d.Div(u, lambda, b)
		back := linalg.NewVector(d.Dim())
		d.Product(back, lambda, u)
		for i := range b {
			if !almostEqual(back[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
