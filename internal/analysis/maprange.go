package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` loops over maps whose iteration order can leak
// into observable output: slice appends that are never sorted afterwards,
// channel sends, printing/formatting calls, and order-dependent
// accumulation (floating-point or string, where the reduction is not
// associative-commutative in the bits). Go randomizes map iteration order
// per run, so any of these makes sweep and experiment results
// nondeterministic — the property core.RunSweep's in-order result contract
// exists to protect.
//
// The canonical fix is to sort: collect the keys, sort them, and iterate
// the sorted slice. A key-collection loop (append of the range key into a
// slice that a later sort.X/slices.X call receives) is recognized and not
// flagged.
//
// The check sees through helper functions (summary.go): a call inside a
// map-range body to a function that transitively writes output or sends on
// a channel is flagged with the path to the sink — wrapping fmt.Println in
// a logging helper does not launder iteration order. Conversely, passing
// the unsorted result of a function whose summary says its return order is
// map-iteration dependent straight into an output call is flagged at the
// consuming site.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flags map iteration whose order can reach output, returns, or sends, including through helper calls",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		v := &mapRangeVisitor{pass: pass, file: f}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv := pass.Pkg.Info.Types[n.X]
				if tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				v.checkRange(n)
			case *ast.CallExpr:
				v.checkOrderedArgs(n)
			}
			return true
		})
	}
}

// checkOrderedArgs flags map-order-dependent call results consumed
// directly by an output call: fmt.Println(unsortedKeys(m)) is
// nondeterministic no matter where the map walk happened.
func (v *mapRangeVisitor) checkOrderedArgs(call *ast.CallExpr) {
	info := v.pass.Pkg.Info
	sink, isEmit := emitCall(info, call)
	if !isEmit {
		return
	}
	ip := v.pass.Pkg.Interp()
	if ip == nil {
		return
	}
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		t := ResolveCall(info, inner)
		if t.Static == nil || !ip.intraModule(t.Static) {
			continue
		}
		if s := ip.SummaryOf(t.Static); s != nil && s.OrderedReturn {
			v.pass.Reportf(inner.Pos(), "result of %s is map-iteration-order dependent and reaches %s output; sort it first", ip.displayName(t.Static), sink)
		}
	}
}

type mapRangeVisitor struct {
	pass *Pass
	file *ast.File
	// fix, when non-nil, is the sorted-keys rewrite of the map-range loop
	// currently being checked; every diagnostic inside that loop carries it.
	fix *SuggestedFix
}

// report emits a diagnostic, attaching the loop's sorted-keys fix when one
// applies.
func (v *mapRangeVisitor) report(pos token.Pos, format string, args ...any) {
	if v.fix != nil {
		v.pass.ReportfFix(pos, *v.fix, format, args...)
		return
	}
	v.pass.Reportf(pos, format, args...)
}

func (v *mapRangeVisitor) checkRange(rng *ast.RangeStmt) {
	info := v.pass.Pkg.Info
	keyObj := v.rangeKeyObj(rng)
	v.fix = v.sortedKeysFix(rng)
	defer func() { v.fix = nil }()
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			v.report(n.Arrow, "map iteration order reaches a channel send; iterate sorted keys")
		case *ast.CallExpr:
			if name, ok := emitCall(info, n); ok {
				v.report(n.Lparen, "map iteration order reaches %s output; iterate sorted keys", name)
			} else {
				v.checkHelperCall(n)
			}
			if isBuiltin(info, n.Fun, "append") {
				if tgt := appendTarget(info, n); tgt == nil || !v.sortedAfter(rng, tgt) {
					v.report(n.Lparen, "append under map iteration builds an order-dependent slice; sort it afterwards or iterate sorted keys")
				}
			}
		case *ast.AssignStmt:
			v.checkAccumulation(n, keyObj)
		}
		return true
	})
}

// sortedKeysFix builds the mechanical sorted-keys rewrite of a map-range
// header:
//
//	for k := range m {          →  for _, k := range slices.Sorted(maps.Keys(m)) {
//
// It applies only to the key-only := form over an ordered key type; loops
// that also bind the value would need a body rewrite (v := m[k]) the
// mechanical fix should not invent. Several diagnostics inside one loop
// all carry this same fix; the applier deduplicates the identical edits.
func (v *mapRangeVisitor) sortedKeysFix(rng *ast.RangeStmt) *SuggestedFix {
	info := v.pass.Pkg.Info
	if rng.Tok != token.DEFINE || rng.Value != nil {
		return nil
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	mt, ok := info.Types[rng.X].Type.Underlying().(*types.Map)
	if !ok || !isOrderedBasic(mt.Key()) {
		return nil
	}
	text := fmt.Sprintf("_, %s := range slices.Sorted(maps.Keys(%s))",
		key.Name, exprText(v.pass.Pkg.Fset, rng.X))
	fix := &SuggestedFix{
		Message: "iterate the keys in sorted order via slices.Sorted(maps.Keys(...))",
		Edits:   []TextEdit{v.pass.Edit(rng.Key.Pos(), rng.X.End(), text)},
	}
	if imp, ok := importEdit(v.pass.Pkg.Fset, v.file, "maps", "slices"); ok {
		fix.Edits = append(fix.Edits, imp)
	}
	return fix
}

// isOrderedBasic reports whether t satisfies cmp.Ordered (the constraint
// slices.Sorted needs): an integer, float, or string basic type.
func isOrderedBasic(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat|types.IsString) != 0
}

// checkHelperCall flags calls, inside a map-range body, to intra-module
// helpers whose summaries say they write output or send on a channel —
// the helper launders nothing, so the diagnostic carries the path down to
// the sink.
func (v *mapRangeVisitor) checkHelperCall(call *ast.CallExpr) {
	ip := v.pass.Pkg.Interp()
	if ip == nil {
		return
	}
	t := ResolveCall(v.pass.Pkg.Info, call)
	if t.Static == nil || !ip.intraModule(t.Static) {
		return
	}
	s := ip.SummaryOf(t.Static)
	if s == nil {
		return
	}
	if s.Emits {
		v.report(call.Lparen, "map iteration order reaches output via %s; iterate sorted keys", ip.EmitPath(t.Static))
	} else if s.Sends {
		v.report(call.Lparen, "map iteration order reaches a channel send via call to %s; iterate sorted keys", ip.displayName(t.Static))
	}
}

// rangeKeyObj returns the object of the range key variable, if named.
func (v *mapRangeVisitor) rangeKeyObj(rng *ast.RangeStmt) types.Object {
	id, ok := rng.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := v.pass.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return v.pass.Pkg.Info.Uses[id]
}

// checkAccumulation flags order-dependent compound assignments: += and its
// friends on floating-point or string lvalues. Per-key updates — an index
// expression keyed by the range variable, like hist[k] += v — are
// order-independent and stay legal, as do integer/boolean reductions.
func (v *mapRangeVisitor) checkAccumulation(as *ast.AssignStmt, keyObj types.Object) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	info := v.pass.Pkg.Info
	lhs := as.Lhs[0]
	lt := info.Types[lhs].Type
	if lt == nil {
		return
	}
	b, ok := lt.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsFloat|types.IsComplex|types.IsString) == 0 {
		return
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil && usesObject(info, idx.Index, keyObj) {
		return
	}
	v.report(as.TokPos, "%s accumulation of %s under map iteration is order-dependent; iterate sorted keys", as.Tok, b.Name())
}

// sortedAfter reports whether tgt is passed to a sort.X or slices.X call
// lexically after the range loop in the same file (the collect-then-sort
// idiom). Object identity scopes the match to the right declaration.
func (v *mapRangeVisitor) sortedAfter(rng *ast.RangeStmt, tgt types.Object) bool {
	info := v.pass.Pkg.Info
	found := false
	ast.Inspect(v.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Lparen < rng.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkg].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(info, arg, tgt) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// appendTarget resolves the variable that receives the grown slice: the
// destination of `x = append(x, ...)` or, failing that, the object behind
// append's first argument.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		return info.Uses[id]
	}
	return nil
}

// emitCall reports whether the call writes formatted output: the fmt print
// family, fmt.Errorf (error text should be deterministic), the log
// package, or the builtin print/println.
func emitCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if isBuiltin(info, call.Fun, "print") || isBuiltin(info, call.Fun, "println") {
		return "builtin print", true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[pkg].(*types.PkgName)
	if !ok {
		return "", false
	}
	switch pn.Imported().Path() {
	case "fmt":
		// Only the output-writing family and Errorf: Sprint/Sprintf results
		// are values whose order-sensitivity the accumulation and append
		// checks already cover.
		switch sel.Sel.Name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln", "Errorf":
			return "fmt." + sel.Sel.Name, true
		}
	case "log":
		return "log." + sel.Sel.Name, true
	}
	return "", false
}

// isBuiltin reports whether fun denotes the named Go builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// usesObject reports whether the expression mentions obj.
func usesObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
