package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckFile parses and type-checks one import-free source file.
func typecheckFile(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

// funcNamed returns the declaration of the named function.
func funcNamed(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// varNamed returns the unique defined variable with the given name.
func varNamed(t *testing.T, info *types.Info, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for _, obj := range info.Defs {
		if v, ok := obj.(*types.Var); ok && v.Name() == name {
			if found != nil && found != v {
				t.Fatalf("variable name %q is ambiguous in this test source", name)
			}
			found = v
		}
	}
	if found == nil {
		t.Fatalf("no variable %q", name)
	}
	return found
}

// returnBlock locates the block carrying the function's (single) return.
func returnBlock(t *testing.T, g *CFG, fn *ast.FuncDecl) *Block {
	t.Helper()
	var ret *ast.ReturnStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			ret = r
		}
		return true
	})
	blk := g.BlockOf(ret)
	if blk == nil {
		t.Fatal("return statement not found in any block")
	}
	return blk
}

func TestReachingDefs(t *testing.T) {
	f, info := typecheckFile(t, `package p
func f(a int, c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x + a
}`)
	fn := funcNamed(t, f, "f")
	g := BuildCFG(fn.Body)
	params := []*types.Var{varNamed(t, info, "a"), varNamed(t, info, "c")}
	facts := ReachingDefs(g, info, fn, params)
	in := facts.In[returnBlock(t, g, fn).Index]

	if sites := in[varNamed(t, info, "x")]; len(sites) != 2 {
		t.Fatalf("x has %d reaching definitions at the return, want 2 (init and branch write)", len(sites))
	}
	aSites := in[varNamed(t, info, "a")]
	if len(aSites) != 1 || !aSites[fn] {
		t.Fatalf("parameter a must reach the return with the function as its sole site, got %v", aSites)
	}
}

// identDerived is the simplest Derived hook: an identifier currently in the
// set, or a call receiving a derived argument.
func identDerived(info *types.Info) func(ast.Expr, TaintSet) bool {
	var derived func(ast.Expr, TaintSet) bool
	derived = func(e ast.Expr, set TaintSet) bool {
		switch e := e.(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && set[obj]
		case *ast.CallExpr:
			for _, a := range e.Args {
				if derived(a, set) {
					return true
				}
			}
		}
		return false
	}
	return derived
}

// TestTaintMayVsMust pins the semantics split on the branch-overwrite
// shape: under may/union the merged value still counts as tainted (it is on
// one path), under must/intersection it does not (it is clean on the other).
func TestTaintMayVsMust(t *testing.T) {
	const src = `package p
func g(s string, c bool) string {
	v := s
	if c {
		v = "fresh"
	}
	return v
}`
	f, info := typecheckFile(t, src)
	fn := funcNamed(t, f, "g")
	s := varNamed(t, info, "s")
	v := varNamed(t, info, "v")
	g := BuildCFG(fn.Body)

	may := &TaintProblem{Info: info, Seeds: []types.Object{s}, Derived: identDerived(info)}
	mayIn := SolveTaint(g, may).In[returnBlock(t, g, fn).Index]
	if !mayIn[s] || !mayIn[v] {
		t.Fatalf("may-analysis at return: got s=%v v=%v, want both tainted", mayIn[s], mayIn[v])
	}

	must := &TaintProblem{
		Info: info, Seeds: []types.Object{s}, Derived: identDerived(info),
		Must: true, Universe: []types.Object{s, v},
	}
	facts := SolveTaint(g, must)
	mustIn := facts.In[returnBlock(t, g, fn).Index]
	if !mustIn[s] || mustIn[v] {
		t.Fatalf("must-analysis at return: got s=%v v=%v, want s tainted and v not", mustIn[s], mustIn[v])
	}
	// The strong update itself: inside the then-branch v is overwritten with
	// an underived value, so its out-fact drops v on both semantics.
	var then *Block
	for _, b := range g.Blocks {
		if b.Kind == "if-then" {
			then = b
		}
	}
	if out := facts.Out[then.Index]; out[v] {
		t.Fatal("reassignment from an underived value must kill the taint in-block")
	}
}

// TestTaintLoopMustKeepsSeed guards the optimistic-initialization choice:
// a must analysis seeded at entry must not lose a fact at a loop head just
// because the back edge has not stabilized yet.
func TestTaintLoopMustKeepsSeed(t *testing.T) {
	const src = `package p
func wrap(x string) string { return x }
func h(s string, n int) string {
	out := s
	for i := 0; i < n; i++ {
		out = wrap(out)
	}
	return out
}`
	f, info := typecheckFile(t, src)
	fn := funcNamed(t, f, "h")
	s := varNamed(t, info, "s")
	out := varNamed(t, info, "out")
	g := BuildCFG(fn.Body)

	prob := &TaintProblem{
		Info: info, Seeds: []types.Object{s}, Derived: identDerived(info),
		Must: true, Universe: []types.Object{s, out},
	}
	facts := SolveTaint(g, prob)
	var body *Block
	for _, b := range g.Blocks {
		if b.Kind == "for-body" {
			body = b
		}
	}
	if in := facts.In[body.Index]; !in[out] {
		t.Fatal("out must stay derived at the loop body under must semantics")
	}
	if in := facts.In[returnBlock(t, g, fn).Index]; !in[out] {
		t.Fatal("out must stay derived after the loop")
	}
}

// TestTaintTracksFilter checks that untracked objects never enter the set.
func TestTaintTracksFilter(t *testing.T) {
	const src = `package p
func k(s string) string {
	a := s
	b := s
	return a + b
}`
	f, info := typecheckFile(t, src)
	fn := funcNamed(t, f, "k")
	s := varNamed(t, info, "s")
	a := varNamed(t, info, "a")
	b := varNamed(t, info, "b")
	g := BuildCFG(fn.Body)

	prob := &TaintProblem{
		Info:  info,
		Seeds: []types.Object{s},
		Tracks: func(o types.Object) bool {
			return o.Name() != "b"
		},
		Derived: identDerived(info),
	}
	// The whole body is one straight-line block, so the writes show up in
	// the entry block's out-fact.
	facts := SolveTaint(g, prob)
	got := facts.Out[g.Entry.Index]
	if !got[a] || got[b] {
		t.Fatalf("tracks filter: got a=%v b=%v, want a tainted and b excluded", got[a], got[b])
	}
}
