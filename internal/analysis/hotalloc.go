package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc statically pins the zero-alloc guarantee of functions annotated
// with //bbvet:hotpath — the per-iteration interior-point refactorization
// path (sparse AᵀA refill, numeric LDLᵀ, triangular solves). Inside an
// annotated function it flags every construct that can hit the allocator:
// make, new, append growth, map/slice composite literals, taking the
// address of a composite literal, closure creation, and interface boxing
// at call, conversion, assignment, and return sites. panic arguments are
// exempt — a terminating error path may allocate.
//
// The check is interprocedural: a call from an annotated function to any
// function whose summary (summary.go) says it may allocate is flagged with
// the full call path down to the allocation site, so a helper two frames
// removed cannot silently reintroduce an allocation. Calls to functions
// that are themselves //bbvet:hotpath-annotated are trusted — they carry
// their own directly checked contract. Calls through function values or
// interface methods cannot be proven allocation-free and are flagged
// conservatively; calls into the standard library are flagged only for the
// known-allocating packages listed in summary.go.
//
// The annotation is a contract, not an inference: hotalloc checks exactly
// the functions the author marked, and the testing.AllocsPerRun guards in
// the annotated packages keep the static and dynamic views honest.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation sites, and calls that transitively allocate, inside //bbvet:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHotpath(fn) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

// checkHotCall applies the interprocedural layer at one call site inside a
// hotpath function. Direct builtin/conversion/boxing shapes are already
// handled by checkHotFunc; this covers what only a summary can see.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	ip := pass.Pkg.Interp()
	if ip == nil {
		return
	}
	info := pass.Pkg.Info
	t := ResolveCall(info, call)
	switch {
	case t.Static != nil && ip.intraModule(t.Static):
		if ip.Hotpath(t.Static) {
			return // audited contract of its own, checked directly
		}
		s := ip.SummaryOf(t.Static)
		if s != nil && s.Allocates {
			pass.Reportf(call.Lparen, "call to %s allocates in a hotpath function (path: %s)",
				ip.displayName(t.Static), ip.AllocPath(t.Static))
		}
	case t.Static != nil:
		if stdAllocPkgs[stdPkgPath(t.Static)] {
			pass.Reportf(call.Lparen, "call to %s allocates in a hotpath function", stdQualifiedName(t.Static))
		}
	case t.Dynamic != "":
		pass.Reportf(call.Lparen, "call through %s cannot be proven allocation-free in a hotpath function", t.Dynamic)
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	var results *types.Tuple
	if sig, ok := info.Defs[fn.Name].Type().(*types.Signature); ok {
		results = sig.Results()
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "make"):
				pass.Reportf(n.Lparen, "make allocates in a hotpath function")
			case isBuiltin(info, n.Fun, "new"):
				pass.Reportf(n.Lparen, "new allocates in a hotpath function")
			case isBuiltin(info, n.Fun, "append"):
				pass.Reportf(n.Lparen, "append may grow its backing array in a hotpath function")
			case isBuiltin(info, n.Fun, "panic"):
				// Terminating error path; allowed to allocate.
				return false
			case info.Types[n.Fun].IsType():
				// Conversion: T(x) boxes when T is an interface.
				to := info.Types[n.Fun].Type
				if len(n.Args) == 1 && isInterface(to) && boxes(info, n.Args[0]) {
					pass.Reportf(n.Lparen, "conversion to %s boxes in a hotpath function", types.TypeString(to, types.RelativeTo(pass.Pkg.Types)))
				}
			default:
				checkCallBoxing(pass, n)
				checkHotCall(pass, n)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in a hotpath function")
			return false // the closure body is not the annotated hot path
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "composite literal allocates in a hotpath function")
				}
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.OpPos, "address of composite literal allocates in a hotpath function")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				lt := info.Types[lhs].Type
				if lt != nil && isInterface(lt) && boxes(info, n.Rhs[i]) {
					pass.Reportf(n.Rhs[i].Pos(), "assignment boxes into an interface in a hotpath function")
				}
			}
		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				return true
			}
			for i, res := range n.Results {
				rt := results.At(i).Type()
				if isInterface(rt) && boxes(info, res) {
					pass.Reportf(res.Pos(), "return boxes into an interface in a hotpath function")
				}
			}
		case *ast.GoStmt:
			pass.Reportf(n.Go, "go statement allocates a goroutine in a hotpath function")
		}
		return true
	})
}

// checkCallBoxing flags concrete arguments passed in interface-typed
// parameter slots (including variadic ...interface{} slots).
func checkCallBoxing(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt != nil && isInterface(pt) && boxes(info, arg) {
			pass.Reportf(arg.Pos(), "argument boxes into an interface in a hotpath function")
		}
	}
}

// boxes reports whether passing e into an interface-typed slot performs an
// interface conversion that may allocate: e has a concrete type (not an
// interface, not untyped nil).
func boxes(info *types.Info, e ast.Expr) bool {
	tv := info.Types[e]
	if tv.Type == nil || tv.IsNil() {
		return false
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
		return false
	}
	return true
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
