package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow half of the engine: a generic forward worklist
// solver over the CFG of cfg.go, plus the two concrete lattices the
// analyzer suite needs — reaching definitions (which assignments can reach
// a use) and a taint set (which variables hold values derived from a set
// of seed objects). Both lattices are finite powersets joined by union, so
// the fixpoint iteration terminates.

// A FlowProblem defines one forward dataflow analysis over fact type F.
// Facts must be treated as immutable by Transfer and Join: return fresh
// values instead of mutating inputs, so block facts never alias.
type FlowProblem[F any] interface {
	// Boundary is the fact at function entry.
	Boundary() F
	// Initial is the optimistic starting fact of every non-entry block
	// before iteration: bottom (empty) for a may/union analysis, top (the
	// full universe) for a must/intersection analysis. Pessimistic
	// initialization would freeze loop heads of a must analysis below
	// their fixpoint, so the distinction is load-bearing.
	Initial() F
	// Transfer pushes a fact through one block.
	Transfer(b *Block, in F) F
	// Join merges facts at control-flow confluences.
	Join(a, b F) F
	// Equal detects the fixpoint.
	Equal(a, b F) bool
}

// FlowFacts holds the solved per-block facts of one analysis.
type FlowFacts[F any] struct {
	// In[i] is the fact at entry of Blocks[i]; Out[i] at its exit.
	In, Out []F
}

// SolveForward runs the classic iterative worklist algorithm to a fixpoint
// and returns the per-block facts. Blocks are processed in construction
// order (close to source order), which for the reducible CFGs a Go
// function produces converges in a handful of passes.
func SolveForward[F any](g *CFG, p FlowProblem[F]) *FlowFacts[F] {
	n := len(g.Blocks)
	facts := &FlowFacts[F]{In: make([]F, n), Out: make([]F, n)}
	for i, blk := range g.Blocks {
		if blk == g.Entry {
			facts.In[i] = p.Boundary()
		} else {
			facts.In[i] = p.Initial()
		}
		facts.Out[i] = p.Transfer(blk, facts.In[i])
	}
	onList := make([]bool, n)
	var work []*Block
	push := func(blk *Block) {
		// The entry fact is the boundary by definition; a backward goto
		// into the first statement does not revise it.
		if blk != g.Entry && !onList[blk.Index] {
			onList[blk.Index] = true
			work = append(work, blk)
		}
	}
	for _, blk := range g.Blocks {
		push(blk)
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		onList[blk.Index] = false
		in := p.Initial()
		if len(blk.Preds) > 0 {
			in = facts.Out[blk.Preds[0].Index]
			for _, pr := range blk.Preds[1:] {
				in = p.Join(in, facts.Out[pr.Index])
			}
		}
		facts.In[blk.Index] = in
		out := p.Transfer(blk, in)
		if !p.Equal(out, facts.Out[blk.Index]) {
			facts.Out[blk.Index] = out
			for _, s := range blk.Succs {
				push(s)
			}
		}
	}
	return facts
}

// ---------------------------------------------------------------------------
// Reaching definitions.

// A Def is one definition site of a variable: the assignment, declaration,
// or range clause that wrote it.
type Def struct {
	Var  *types.Var
	Site ast.Node
}

// DefSet is a reaching-definitions fact: the set of definitions that may
// reach a program point, keyed per variable.
type DefSet map[*types.Var]map[ast.Node]bool

// reachingDefs is the FlowProblem behind ReachingDefs.
type reachingDefs struct {
	info   *types.Info
	params []*types.Var // treated as defined at entry
	fn     ast.Node     // entry definition site for params
}

// ReachingDefs solves reaching definitions over the CFG: for every block,
// which definition sites of each local variable can reach its entry.
// params are treated as defined at function entry with fn as their site.
func ReachingDefs(g *CFG, info *types.Info, fn ast.Node, params []*types.Var) *FlowFacts[DefSet] {
	return SolveForward[DefSet](g, &reachingDefs{info: info, params: params, fn: fn})
}

func (r *reachingDefs) Boundary() DefSet {
	in := DefSet{}
	for _, p := range r.params {
		in[p] = map[ast.Node]bool{r.fn: true}
	}
	return in
}

// Initial is bottom: reaching definitions is a may/union analysis.
func (r *reachingDefs) Initial() DefSet { return DefSet{} }

func (r *reachingDefs) Transfer(b *Block, in DefSet) DefSet {
	out := copyDefSet(in)
	for _, n := range b.Nodes {
		forEachWrite(r.info, n, func(v *types.Var, site ast.Node) {
			out[v] = map[ast.Node]bool{site: true} // strong update: kill + gen
		})
	}
	return out
}

func (r *reachingDefs) Join(a, b DefSet) DefSet {
	out := copyDefSet(a)
	for v, sites := range b {
		if out[v] == nil {
			out[v] = map[ast.Node]bool{}
		}
		for s := range sites {
			out[v][s] = true
		}
	}
	return out
}

func (r *reachingDefs) Equal(a, b DefSet) bool {
	if len(a) != len(b) {
		return false
	}
	for v, as := range a {
		bs, ok := b[v]
		if !ok || len(as) != len(bs) {
			return false
		}
		for s := range as {
			if !bs[s] {
				return false
			}
		}
	}
	return true
}

func copyDefSet(in DefSet) DefSet {
	out := make(DefSet, len(in))
	for v, sites := range in {
		cp := make(map[ast.Node]bool, len(sites))
		for s := range sites {
			cp[s] = true
		}
		out[v] = cp
	}
	return out
}

// forEachWrite invokes fn for every local-variable write performed
// directly by node n (assignments, short declarations, var declarations,
// inc/dec, and range clause variables). Nested function literals are not
// descended into: their writes happen on a different control flow.
func forEachWrite(info *types.Info, n ast.Node, fn func(*types.Var, ast.Node)) {
	report := func(e ast.Expr, site ast.Node) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		var obj types.Object
		if obj = info.Defs[id]; obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			fn(v, site)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			report(lhs, n)
		}
	case *ast.IncDecStmt:
		report(n.X, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						report(name, n)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			report(n.Key, n)
		}
		if n.Value != nil {
			report(n.Value, n)
		}
	}
}

// ---------------------------------------------------------------------------
// Taint.

// TaintSet is the lattice element of the taint analysis: the set of
// objects currently holding a value derived from the seeds.
type TaintSet map[types.Object]bool

// A TaintProblem propagates "derived-from-seed" through assignments. It is
// deliberately simple — an intraprocedural, object-granular lattice — but
// flow-sensitive: reassigning a variable from an underived value removes
// it from the set on that path.
type TaintProblem struct {
	Info *types.Info
	// Seeds are tainted at function entry (typically parameter objects).
	Seeds []types.Object
	// Tracks limits the objects the analysis follows (e.g. only
	// context.Context-typed variables). Nil tracks everything.
	Tracks func(types.Object) bool
	// Derived reports whether evaluating e yields a tainted value under
	// the given set. It must handle the analyzer's propagation rules
	// (identifier lookup, wrapping calls, conversions).
	Derived func(e ast.Expr, set TaintSet) bool
	// Must selects all-paths semantics: confluences intersect instead of
	// union, so a value counts as derived only when it is derived on every
	// incoming path. Must requires Universe.
	Must bool
	// Universe lists every trackable object of the function; it is the
	// top element a must analysis starts non-entry blocks from.
	Universe []types.Object
}

// SolveTaint runs the taint analysis over the CFG.
func SolveTaint(g *CFG, p *TaintProblem) *FlowFacts[TaintSet] {
	return SolveForward[TaintSet](g, p)
}

func (p *TaintProblem) Boundary() TaintSet {
	set := TaintSet{}
	for _, s := range p.Seeds {
		set[s] = true
	}
	return set
}

func (p *TaintProblem) Initial() TaintSet {
	set := TaintSet{}
	if p.Must {
		for _, o := range p.Universe {
			set[o] = true
		}
	}
	return set
}

func (p *TaintProblem) Transfer(b *Block, in TaintSet) TaintSet {
	out := copyTaint(in)
	for _, n := range b.Nodes {
		p.Apply(n, out)
	}
	return out
}

// Apply updates the set in place for one statement's writes. It is exposed
// so analyzers can replay a block statement-by-statement and know the
// exact set at each call site inside the block.
func (p *TaintProblem) Apply(n ast.Node, set TaintSet) {
	forEachWrite(p.Info, n, func(v *types.Var, site ast.Node) {
		if p.Tracks != nil && !p.Tracks(v) {
			return
		}
		rhs := rhsFor(site, v, p.Info)
		if rhs != nil && p.Derived(rhs, set) {
			set[v] = true
		} else {
			delete(set, v) // strong update on reassignment
		}
	})
}

func (p *TaintProblem) Join(a, b TaintSet) TaintSet {
	if p.Must {
		out := TaintSet{}
		for o := range a {
			if b[o] {
				out[o] = true
			}
		}
		return out
	}
	out := copyTaint(a)
	for o := range b {
		out[o] = true
	}
	return out
}

func (p *TaintProblem) Equal(a, b TaintSet) bool {
	if len(a) != len(b) {
		return false
	}
	for o := range a {
		if !b[o] {
			return false
		}
	}
	return true
}

func copyTaint(in TaintSet) TaintSet {
	out := make(TaintSet, len(in))
	for o := range in {
		out[o] = true
	}
	return out
}

// rhsFor finds the expression assigned to v by definition site n: the
// matching right-hand side of an assignment, the initializer of a var
// declaration, or the whole call for a multi-value assignment (the caller's
// Derived hook decides what a call produces). Range clauses and inc/dec
// return nil (never taint-producing for the lattices used here).
func rhsFor(n ast.Node, v *types.Var, info *types.Info) ast.Expr {
	switch n := n.(type) {
	case *ast.AssignStmt:
		idx := -1
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == v {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil
		}
		if len(n.Rhs) == len(n.Lhs) {
			return n.Rhs[idx]
		}
		if len(n.Rhs) == 1 {
			return n.Rhs[0] // multi-value: x, y := f(...)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if info.Defs[name] == v {
						if len(vs.Values) == len(vs.Names) {
							return vs.Values[i]
						}
						if len(vs.Values) == 1 {
							return vs.Values[0]
						}
					}
				}
			}
		}
	}
	return nil
}
