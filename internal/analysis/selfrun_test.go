package analysis

import (
	"strings"
	"testing"
)

// TestRepositoryIsClean is the tier-1 gate: the full analyzer suite over
// every package of this module must produce zero diagnostics. Any new
// exact float comparison, order-leaking map iteration, hot-path
// allocation, dropped solver status, or escaping CSR backing slice fails
// this test (and the bbvet CI job) until it is fixed or explicitly
// suppressed with a reasoned bbvet:allow.
func TestRepositoryIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(loader.ModDir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 15 {
		t.Fatalf("pattern expansion found only %d package dirs; the walk is broken", len(dirs))
	}
	var msgs []string
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, d := range Run(pkg, All()) {
			msgs = append(msgs, d.String())
		}
	}
	if len(msgs) > 0 {
		t.Errorf("bbvet is not clean on the repository:\n%s", strings.Join(msgs, "\n"))
	}
}
