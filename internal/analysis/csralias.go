package analysis

import (
	"go/ast"
	"go/types"
)

// csrTypes lists the fixed-pattern types whose backing slices must not
// escape, with the fields that hold them. The whole sparse pipeline — the
// AᵀA scatter plan, the symbolic factorization, the per-iteration numeric
// refill — assumes these slices are mutated only through their owner on an
// immutable pattern; a retained alias lets distant code invalidate a
// symbolic analysis without any local evidence.
var csrFields = map[string]map[string]bool{
	"SparseMatrix":   {"RowPtr": true, "ColIdx": true, "Val": true},
	"SparseCholesky": nil, // nil: every slice-typed field is protected
}

// CSRAlias flags expressions that create a long-lived alias of a
// linalg.SparseMatrix or linalg.SparseCholesky backing slice: returning
// the slice (or a subslice of it) from a function, storing it into a
// struct field, a package-level variable, or a composite literal.
// Transient local views — `row := m.ColIdx[lo:hi]` used within a function
// — stay legal; it is the escape that is flagged, not the read.
//
// The check is interprocedural: passing a backing slice to a function
// whose summary (summary.go) says it retains the corresponding parameter
// is flagged at the call site, and a call whose callee returns an alias of
// a backing-slice argument is itself treated as a backing slice, so
// `return identity(m.RowPtr)` is caught exactly like `return m.RowPtr`.
// Passing a backing slice through a function value or interface call is
// flagged conservatively (the callee's retention cannot be proven); calls
// into the standard library are trusted not to retain their arguments.
var CSRAlias = &Analyzer{
	Name: "csralias",
	Doc:  "flags escaping aliases of SparseMatrix/SparseCholesky backing slices, through call chains too",
	Run:  runCSRAlias,
}

func runCSRAlias(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if name, ok := backingSlice(pass, res); ok {
						pass.Reportf(res.Pos(), "returning %s aliases a fixed-pattern backing slice; clone it", name)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					name, ok := backingSlice(pass, rhs)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if escapingLHS(pass, n.Lhs[i]) {
						pass.Reportf(rhs.Pos(), "storing %s aliases a fixed-pattern backing slice; clone it", name)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					val := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					if name, ok := backingSlice(pass, val); ok {
						pass.Reportf(val.Pos(), "composite literal captures %s, aliasing a fixed-pattern backing slice; clone it", name)
					}
				}
			case *ast.CallExpr:
				checkCSRCall(pass, n)
			}
			return true
		})
	}
}

// checkCSRCall flags backing slices handed to callees that retain them.
// Returned aliases are not reported here: backingSlice recognizes such
// call results, so the return/store/composite checks fire where the alias
// actually escapes.
func checkCSRCall(pass *Pass, call *ast.CallExpr) {
	ip := pass.Pkg.Interp()
	if ip == nil {
		return
	}
	info := pass.Pkg.Info
	t := ResolveCall(info, call)
	for i, arg := range call.Args {
		name, ok := backingSlice(pass, arg)
		if !ok {
			continue
		}
		switch {
		case t.Static != nil && ip.intraModule(t.Static):
			s := ip.SummaryOf(t.Static)
			if s != nil && s.RetainsParam&paramBit(t.Static, i) != 0 {
				pass.Reportf(arg.Pos(), "passing %s to %s, which retains it past the call; clone it", name, ip.displayName(t.Static))
			}
		case t.Dynamic != "":
			pass.Reportf(arg.Pos(), "passing %s through %s; retention cannot be ruled out, clone it", name, t.Dynamic)
		}
	}
}

// backingSlice reports whether e denotes a protected backing slice: a
// field selector on one of the csrFields types, possibly re-sliced — or
// the result of a call whose statically known callee returns an alias of a
// backing-slice argument (`identity(m.RowPtr)` is as live an alias as
// `m.RowPtr` itself).
func backingSlice(pass *Pass, e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.SliceExpr:
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		}
		break
	}
	if call, ok := e.(*ast.CallExpr); ok {
		ip := pass.Pkg.Interp()
		if ip == nil {
			return "", false
		}
		t := ResolveCall(pass.Pkg.Info, call)
		if t.Static == nil || !ip.intraModule(t.Static) {
			return "", false
		}
		s := ip.SummaryOf(t.Static)
		if s == nil || s.ReturnsParam == 0 {
			return "", false
		}
		for i, arg := range call.Args {
			if s.ReturnsParam&paramBit(t.Static, i) == 0 {
				continue
			}
			if name, ok := backingSlice(pass, arg); ok {
				return name + " (via " + ip.displayName(t.Static) + ")", true
			}
		}
		return "", false
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	field := selection.Obj().(*types.Var)
	if _, isSlice := field.Type().Underlying().(*types.Slice); !isSlice {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "repro/internal/linalg" {
		return "", false
	}
	fields, watched := csrFields[named.Obj().Name()]
	if !watched {
		return "", false
	}
	if fields != nil && !fields[field.Name()] {
		return "", false
	}
	return named.Obj().Name() + "." + field.Name(), true
}

// escapingLHS reports whether assigning to the target gives the value a
// home that outlives the enclosing call: a struct field, a dereference, an
// index into non-local storage, or a package-level variable. Plain local
// variables are transient and legal.
func escapingLHS(pass *Pass, lhs ast.Expr) bool {
	switch x := lhs.(type) {
	case *ast.SelectorExpr:
		return true // field store (or package-var via selector)
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return true // storing into a slice/map cell
	case *ast.Ident:
		obj := pass.Pkg.Info.Defs[x]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[x]
		}
		if obj == nil {
			return false
		}
		// Package-level variable: its scope is the package scope.
		return obj.Parent() == pass.Pkg.Types.Scope()
	}
	return false
}
