package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ConcDiscipline enforces the module's concurrency discipline around
// goroutine creation, using the call-graph summaries of summary.go to see
// through helpers. Four rules:
//
//  1. No goroutine may be launched while a sync.Mutex/RWMutex is held. The
//     spawned work runs concurrently with the critical section; if it (or
//     anything it calls) touches the same structure, the lock protects
//     nothing, and if it tries to take the same lock the program deadlocks
//     depending on scheduling. The check is path-sensitive: a forward
//     may-held dataflow over the CFG tracks which lock receivers are held
//     at each go statement — and at each call whose summary says the
//     callee spawns, so hiding the `go` in a helper does not help.
//     A deferred Unlock keeps the lock held to function exit, as it does
//     dynamically.
//  2. A spawned closure must not capture an enclosing loop variable; it
//     must receive it as an argument. Per-iteration loop variables
//     (go ≥ 1.22) make the aliasing benign, but the explicit parameter
//     keeps the hand-off auditable and the code correct under older
//     toolchains that may still build this module.
//  3. A go statement inside a loop must belong to an approved worker-pool
//     shape: either the innermost enclosing loop is a fixed-bound counter
//     loop (`for i := 0; i < parallelism; i++` — the bound a variable or
//     constant, not a data-dependent expression), or the loop body
//     acquires a semaphore (a channel send or receive) before spawning.
//     Anything else spawns a number of goroutines proportional to data
//     size, which is exactly the unbounded-concurrency shape RunSweep's
//     bounded pool exists to prevent.
//  4. A goroutine must not terminate the process: os.Exit, log.Fatal*,
//     log.Panic*, runtime.Goexit — directly in the spawned literal or
//     transitively through any statically resolved callee — kill the whole
//     program from a worker, skipping deferred cleanup in every other
//     goroutine. Errors flow back on channels or error slots instead.
//
// Function literals are separate spawn contexts: a go statement inside a
// closure that is itself defined in a loop counts against the closure's
// own loops only (the spawn multiplicity is the closure's invocation
// count, which rule 3 cannot see; the conservatism is documented in
// DESIGN.md §8). Lock tracking likewise stays within one function body —
// a literal's body gets its own CFG and its own held-set.
var ConcDiscipline = &Analyzer{
	Name: "concdiscipline",
	Doc:  "flags goroutines spawned under a held lock, loop-variable capture, unbounded spawns, and process-killing goroutines",
	Run:  runConcDiscipline,
}

func runConcDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLocksHeld(pass, fn.Body)
			checkSpawnShapes(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLocksHeld(pass, lit.Body)
				}
				return true
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Rule 1: go under a held lock (CFG dataflow).

// lockSet is the may-held fact: the canonical receiver strings of locks
// that may be held at a program point on some path.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// heldNames renders a held-set for a diagnostic: sorted, comma-joined.
func (s lockSet) heldNames() string {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// lockProblem is the forward may-held analysis. Transfer is shared with
// the reporting pass through step, so the two agree exactly on semantics.
type lockProblem struct {
	pass *Pass
}

func (p *lockProblem) Boundary() lockSet { return lockSet{} }
func (p *lockProblem) Initial() lockSet  { return lockSet{} }

func (p *lockProblem) Join(a, b lockSet) lockSet {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

func (p *lockProblem) Equal(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (p *lockProblem) Transfer(b *Block, in lockSet) lockSet {
	held := in.clone()
	for _, n := range b.Nodes {
		p.step(held, n, nil)
	}
	return held
}

// step advances the held-set over one CFG node and, when report is
// non-nil, emits rule-1 diagnostics for spawns under a held lock. Nested
// function literals are opaque: their bodies run later, under their own
// CFG and held-set.
func (p *lockProblem) step(held lockSet, n ast.Node, report func(pos token.Pos, what string)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		// Deferred calls run at function exit: a deferred Unlock releases
		// nothing before then, a deferred Lock is not acquired yet.
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			if report != nil && len(held) > 0 {
				report(m.Go, "go statement")
			}
			return false // the spawned call runs later, not here
		case *ast.CallExpr:
			p.stepCall(held, m, report)
		}
		return true
	})
}

// stepCall folds one call into the held-set and reports spawning callees.
func (p *lockProblem) stepCall(held lockSet, call *ast.CallExpr, report func(pos token.Pos, what string)) {
	info := p.pass.Pkg.Info
	if recv, name, ok := lockMethod(info, call); ok {
		switch name {
		case "Lock", "RLock":
			held[recv] = true
		case "Unlock", "RUnlock":
			delete(held, recv)
		}
		return
	}
	if report == nil || len(held) == 0 {
		return
	}
	ip := p.pass.Pkg.Interp()
	if ip == nil {
		return
	}
	t := ResolveCall(info, call)
	if t.Static == nil || !ip.intraModule(t.Static) {
		return
	}
	if s := ip.SummaryOf(t.Static); s != nil && s.Spawns {
		report(call.Lparen, "call to "+ip.displayName(t.Static)+", which spawns a goroutine,")
	}
}

// lockMethod recognizes a call to sync.(RW)Mutex.Lock/RLock/Unlock/RUnlock
// and returns the canonical receiver string plus the method name. The key
// is textual (types.ExprString of the receiver), so two spellings of the
// same lvalue match and distinct locks with identical spellings in one
// function — which cannot happen for a meaningful critical section —
// would merge conservatively.
func lockMethod(info *types.Info, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkLocksHeld runs the rule-1 dataflow over one body and reports every
// spawn point whose entry fact can hold a lock.
func checkLocksHeld(pass *Pass, body *ast.BlockStmt) {
	// Fast pre-screen: bodies with no lock method calls at all — the vast
	// majority — skip CFG construction entirely.
	any := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := lockMethod(pass.Pkg.Info, call); ok {
				any = true
			}
		}
		return !any
	})
	if !any {
		return
	}
	g := BuildCFG(body)
	p := &lockProblem{pass: pass}
	facts := SolveForward[lockSet](g, p)
	for _, blk := range g.Blocks {
		held := facts.In[blk.Index].clone()
		for _, n := range blk.Nodes {
			p.step(held, n, func(pos token.Pos, what string) {
				pass.Reportf(pos, "%s while %s is held; spawn after unlocking", what, held.heldNames())
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Rules 2–4: spawn shapes (syntactic walk with a loop stack).

// checkSpawnShapes walks one function body tracking the stack of enclosing
// loops; each go statement is checked for loop-variable capture (rule 2),
// worker-pool shape (rule 3), and process-killing callees (rule 4).
// Entering a function literal resets the loop stack: its body spawns once
// per invocation, not once per iteration of the lexically enclosing loop.
func checkSpawnShapes(pass *Pass, body *ast.BlockStmt) {
	var walk func(n ast.Node, loops []ast.Stmt)
	walk = func(n ast.Node, loops []ast.Stmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, nil)
				return false
			case *ast.ForStmt:
				if m.Init != nil {
					walk(m.Init, loops)
				}
				if m.Cond != nil {
					walk(m.Cond, loops)
				}
				if m.Post != nil {
					walk(m.Post, loops)
				}
				walk(m.Body, append(loops, m))
				return false
			case *ast.RangeStmt:
				walk(m.X, loops)
				walk(m.Body, append(loops, m))
				return false
			case *ast.GoStmt:
				checkSpawn(pass, m, loops)
				// Descend normally: the call's arguments are evaluated at
				// the spawn site, and a nested literal restarts the walk.
			}
			return true
		})
	}
	walk(body, nil)
}

func checkSpawn(pass *Pass, g *ast.GoStmt, loops []ast.Stmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		checkLoopCapture(pass, lit, loops)
	}
	if len(loops) > 0 && !approvedPool(pass, g, loops[len(loops)-1]) {
		pass.Reportf(g.Go, "go statement in a loop spawns an unbounded number of goroutines; use a fixed-size worker pool or acquire a semaphore before spawning")
	}
	checkFatalSpawn(pass, g)
}

// checkLoopCapture reports uses, inside a spawned literal's body, of
// variables declared by any enclosing loop header (rule 2).
func checkLoopCapture(pass *Pass, lit *ast.FuncLit, loops []ast.Stmt) {
	if len(loops) == 0 {
		return
	}
	info := pass.Pkg.Info
	loopVars := map[types.Object]bool{}
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.RangeStmt:
			if l.Tok == token.DEFINE {
				addIdent(l.Key)
				if l.Value != nil {
					addIdent(l.Value)
				}
			}
		case *ast.ForStmt:
			if as, ok := l.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					addIdent(lhs)
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil && loopVars[obj] {
			pass.Reportf(id.Pos(), "spawned closure captures loop variable %s; pass it as an argument", id.Name)
		}
		return true
	})
}

// approvedPool reports whether the innermost loop around a go statement is
// one of the two sanctioned bounded-spawn shapes (rule 3).
func approvedPool(pass *Pass, g *ast.GoStmt, loop ast.Stmt) bool {
	if f, ok := loop.(*ast.ForStmt); ok && fixedBoundLoop(f) {
		return true
	}
	return semaphoreBefore(pass, g, loop)
}

// fixedBoundLoop recognizes `for i := ...; i < B; ...` (or <=) where the
// bound B is a plain variable, selector, or literal — a worker count fixed
// before the loop. A call or len() in the bound makes the trip count
// data-dependent and does not qualify.
func fixedBoundLoop(f *ast.ForStmt) bool {
	cond, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if cond.Op != token.LSS && cond.Op != token.LEQ {
		return false
	}
	switch ast.Unparen(cond.Y).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.BasicLit:
		return true
	}
	return false
}

// semaphoreBefore reports whether the loop body performs a channel
// operation (send or receive) before the go statement in source order —
// the acquire half of a semaphore-bounded spawn loop.
func semaphoreBefore(pass *Pass, g *ast.GoStmt, loop ast.Stmt) bool {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if body == nil {
		return false
	}
	info := pass.Pkg.Info
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= g.Go {
			return !found
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if t := info.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// checkFatalSpawn reports process-killing sinks reachable from a go
// statement (rule 4): direct calls in a spawned literal, and statically
// resolved callees whose summary carries the Fatal fact.
func checkFatalSpawn(pass *Pass, g *ast.GoStmt) {
	info := pass.Pkg.Info
	ip := pass.Pkg.Interp()
	reportCall := func(call *ast.CallExpr) {
		t := ResolveCall(info, call)
		switch {
		case t.Static != nil && ip != nil && ip.intraModule(t.Static):
			if s := ip.SummaryOf(t.Static); s != nil && s.Fatal {
				pass.Reportf(call.Lparen, "goroutine can terminate the process via %s (%s); return the error instead", ip.displayName(t.Static), s.FatalWhat)
			}
		case t.Static != nil:
			if fatalCalls[stdQualifiedName(t.Static)] {
				pass.Reportf(call.Lparen, "goroutine terminates the process via %s; return the error instead", stdQualifiedName(t.Static))
			}
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				reportCall(call)
			}
			return true
		})
		return
	}
	reportCall(g.Call)
}
