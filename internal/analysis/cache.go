package analysis

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The incremental cache keys each package's diagnostics by an FNV-1a hash
// chain over everything that can change them: the package's own file
// contents (test files included — the suppression scanner and faultsite
// read them), the contents of every intra-module package in its transitive
// import closure, and the analyzer-suite version. A package whose key is
// unchanged is a pure cache hit: the warm path parses import clauses and
// hashes bytes but never type-checks, which is where almost all of a cold
// run's time goes. Editing one file changes the content hash of exactly
// one directory, and therefore the keys of exactly that package and its
// reverse-dependency closure — nothing else re-analyzes.
//
// External (stdlib) imports need no separate versioning: the toolchain is
// pinned by go.mod, and the import clauses that select stdlib packages are
// part of the hashed file bytes. The cache directory is relocatable —
// persisted diagnostics store module-relative paths and are resolved
// against the module root on load — so CI can restore it into a different
// checkout path.

// cacheSchemaVersion invalidates every entry when the persisted format or
// the analyzers' semantics change. Bump it when analyzer logic changes in
// a way the source hash chain cannot see.
const cacheSchemaVersion = "bbvet-cache-v1"

// A Cache memoizes per-package diagnostics across bbvet runs.
type Cache struct {
	dir     string
	loader  *Loader
	version string

	contentHashes map[string]uint64   // pkg dir -> hash of its file contents
	deps          map[string][]string // pkg dir -> direct intra-module dep dirs
	closures      map[string][]string // pkg dir -> sorted transitive dep dirs

	// Hits and Misses count Get outcomes, for tests and benchmarks.
	Hits, Misses int
}

// NewCache opens (creating if needed) the cache rooted at dir for the
// loader's module and the given analyzer suite.
func NewCache(dir string, loader *Loader, analyzers []*Analyzer) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	return &Cache{
		dir:           dir,
		loader:        loader,
		version:       cacheSchemaVersion + ":" + strings.Join(names, ","),
		contentHashes: map[string]uint64{},
		deps:          map[string][]string{},
		closures:      map[string][]string{},
	}, nil
}

// Key computes the cache key of the package in dir (absolute path).
func (c *Cache) Key(dir string) (string, error) {
	self, err := c.contentHash(dir)
	if err != nil {
		return "", err
	}
	closure, err := c.closure(dir)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s\x00%016x\x00", c.version, c.relDir(dir), self)
	for _, dep := range closure {
		dh, err := c.contentHash(dep)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%016x\x00", c.relDir(dep), dh)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Get returns the cached diagnostics for key. Missing or unreadable
// entries are misses; filenames come back absolute, resolved against the
// module root.
func (c *Cache) Get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(c.entryPath(key))
	if err != nil {
		c.Misses++
		return nil, false
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		c.Misses++
		return nil, false
	}
	for i := range diags {
		diags[i].Pos.Filename = c.absPath(diags[i].Pos.Filename)
		for fi := range diags[i].Fixes {
			for ei := range diags[i].Fixes[fi].Edits {
				e := &diags[i].Fixes[fi].Edits[ei]
				e.File = c.absPath(e.File)
			}
		}
	}
	c.Hits++
	return diags, true
}

// Put persists the diagnostics under key, with all paths rewritten
// relative to the module root so the cache survives checkout moves. The
// write is atomic (temp + rename): concurrent bbvet runs sharing a cache
// directory never observe torn entries.
func (c *Cache) Put(key string, diags []Diagnostic) error {
	stored := make([]Diagnostic, len(diags))
	copy(stored, diags)
	for i := range stored {
		stored[i].Pos.Filename = c.relPath(stored[i].Pos.Filename)
		if len(stored[i].Fixes) > 0 {
			fixes := make([]SuggestedFix, len(stored[i].Fixes))
			copy(fixes, stored[i].Fixes)
			for fi := range fixes {
				edits := make([]TextEdit, len(fixes[fi].Edits))
				copy(edits, fixes[fi].Edits)
				for ei := range edits {
					edits[ei].File = c.relPath(edits[ei].File)
				}
				fixes[fi].Edits = edits
			}
			stored[i].Fixes = fixes
		}
	}
	data, err := json.Marshal(stored)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, c.entryPath(key))
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func (c *Cache) relDir(dir string) string {
	return filepath.ToSlash(c.relPath(dir))
}

func (c *Cache) relPath(path string) string {
	if rel, err := filepath.Rel(c.loader.ModDir, path); err == nil && !filepath.IsAbs(rel) && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

func (c *Cache) absPath(path string) string {
	if filepath.IsAbs(path) {
		return path
	}
	return filepath.Join(c.loader.ModDir, filepath.FromSlash(path))
}

// contentHash hashes the names and bytes of every .go file in dir,
// _test.go files included.
func (c *Cache) contentHash(dir string) (uint64, error) {
	if h, ok := c.contentHashes[dir]; ok {
		return h, nil
	}
	names, err := goSourceFiles(dir)
	if err != nil {
		return 0, err
	}
	testNames, err := goTestFiles(dir)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	for _, name := range append(names, testNames...) {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
	}
	sum := h.Sum64()
	c.contentHashes[dir] = sum
	return sum, nil
}

// directDeps parses dir's files (ImportsOnly — no type-checking) and
// returns the directories of its direct intra-module imports. Test files
// participate: an external foo_test package legally imports other module
// packages whose declarations feed the test-aware analyzers.
func (c *Cache) directDeps(dir string) ([]string, error) {
	if d, ok := c.deps[dir]; ok {
		return d, nil
	}
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	testNames, err := goTestFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var deps []string
	for _, name := range append(names, testNames...) {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != c.loader.ModPath && !strings.HasPrefix(path, c.loader.ModPath+"/") {
				continue
			}
			depDir := c.loader.dirOf(path)
			if depDir == dir || seen[depDir] {
				continue
			}
			seen[depDir] = true
			deps = append(deps, depDir)
		}
	}
	sort.Strings(deps)
	c.deps[dir] = deps
	return deps, nil
}

// closure returns the sorted transitive intra-module dependency
// directories of dir (dir itself excluded). Cycles introduced by test-file
// imports are tolerated: the walk visits each directory once.
func (c *Cache) closure(dir string) ([]string, error) {
	if cl, ok := c.closures[dir]; ok {
		return cl, nil
	}
	visited := map[string]bool{dir: true}
	var out []string
	var walk func(string) error
	walk = func(d string) error {
		deps, err := c.directDeps(d)
		if err != nil {
			return err
		}
		for _, dep := range deps {
			if visited[dep] {
				continue
			}
			visited[dep] = true
			out = append(out, dep)
			if err := walk(dep); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(dir); err != nil {
		return nil, err
	}
	sort.Strings(out)
	c.closures[dir] = out
	return out, nil
}
