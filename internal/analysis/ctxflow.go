package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the context-threading discipline PR 4 established by
// hand: cancellation only works end-to-end if every cancellable call
// reachable from a CLI entry receives the context that entry threaded in.
// For every function (or function literal) that accepts a context.Context
// parameter, the analyzer runs a flow-sensitive taint analysis over the
// function's CFG, seeding the parameter (and, for nested literals, any
// context visible from the enclosing function), and reports:
//
//   - a call argument in a context.Context parameter slot whose value is
//     context.Background() or context.TODO() — a fresh root context
//     smuggled into library code severs the caller's cancellation;
//   - a context argument not derived from the function's own context —
//     e.g. a context built from Background via WithTimeout, or a stale
//     variable overwritten on some path;
//   - a context parameter that is never used at all while the body calls
//     at least one context-accepting function — accepted but not threaded,
//     so the signature promises a cancellability the body does not deliver.
//
// Derivation follows assignments and calls: any call that returns a
// context and receives a tainted argument (context.WithCancel/WithTimeout/
// WithValue, or a helper doing the same) produces a tainted context.
// main-package root functions without a ctx parameter (where
// context.Background is the correct root) are naturally out of scope.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Context parameters that are not threaded into every context-accepting call",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			seeds := ctxParams(info, fn.Type)
			checkCtxFunc(pass, fn.Body, fn.Type, seeds)
		}
	}
}

// checkCtxFunc analyzes one function body whose visible context seeds are
// given, then recurses into nested function literals: a literal sees the
// enclosing contexts (closure capture) plus its own parameters.
func checkCtxFunc(pass *Pass, body *ast.BlockStmt, ftyp *ast.FuncType, seeds []types.Object) {
	info := pass.Pkg.Info
	if len(seeds) > 0 {
		g := BuildCFG(body)
		prob := &TaintProblem{
			Info:  info,
			Seeds: seeds,
			Tracks: func(o types.Object) bool {
				return isContextType(o.Type())
			},
			Derived: func(e ast.Expr, set TaintSet) bool {
				return ctxDerived(info, e, set)
			},
			// All-paths semantics: a context overwritten with Background()
			// on one branch is a severed cancellation on that branch, so
			// derivation must hold on every path into the call.
			Must:     true,
			Universe: ctxUniverse(info, body, seeds),
		}
		facts := SolveTaint(g, prob)
		for _, blk := range g.Blocks {
			set := copyTaint(facts.In[blk.Index])
			for _, n := range blk.Nodes {
				checkCtxCalls(pass, n, set)
				prob.Apply(n, set)
			}
		}
		checkCtxUnused(pass, body, ftyp, seeds)
	}
	// Nested literals: analyzed with the outer seeds still visible.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		inner := append(ctxParams(info, lit.Type), seeds...)
		checkCtxFunc(pass, lit.Body, lit.Type, inner)
		return false // checkCtxFunc recursed already
	})
}

// checkCtxCalls inspects one CFG node for calls with context-typed
// parameter slots and validates each context argument against the current
// taint set. Function literals are skipped — they are separate flows — and
// composite loop/select nodes contribute only their header expressions,
// because their bodies live in other blocks.
func checkCtxCalls(pass *Pass, n ast.Node, set TaintSet) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		checkCtxCallsIn(pass, n.X, set)
		return
	case *ast.SelectStmt:
		return // comm clauses are carried by their own blocks
	}
	checkCtxCallsIn(pass, n, set)
}

func checkCtxCallsIn(pass *Pass, n ast.Node, set TaintSet) {
	info := pass.Pkg.Info
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig, ok := info.Types[call.Fun].Type.(*types.Signature)
		if !ok {
			return true
		}
		params := sig.Params()
		for i, arg := range call.Args {
			if i >= params.Len() && !sig.Variadic() {
				break
			}
			var pt types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				pt = params.At(params.Len() - 1).Type()
				if sl, ok := pt.(*types.Slice); ok && !call.Ellipsis.IsValid() {
					pt = sl.Elem()
				}
			} else {
				pt = params.At(i).Type()
			}
			if !isContextType(pt) {
				continue
			}
			if name, ok := contextRootCall(info, arg); ok {
				pass.Reportf(arg.Pos(), "context.%s passed to %s inside a function that has its own ctx parameter; thread the parameter instead", name, calleeName(call))
				continue
			}
			if !ctxDerived(info, arg, set) {
				pass.Reportf(arg.Pos(), "context passed to %s is not derived from this function's ctx parameter on this path", calleeName(call))
			}
		}
		return true
	})
}

// checkCtxUnused reports a context parameter with zero uses in a body that
// calls at least one context-accepting function: the context could have
// been threaded and was not. A parameter used in any way (threaded,
// ctx.Err() polling, select on ctx.Done()) is accepted; so is an unused
// parameter in a body with nothing to thread it into (interface
// conformance).
func checkCtxUnused(pass *Pass, body *ast.BlockStmt, ftyp *ast.FuncType, seeds []types.Object) {
	info := pass.Pkg.Info
	own := ctxParams(info, ftyp) // only this function's own parameters
	if len(own) == 0 {
		return
	}
	used := map[types.Object]bool{}
	hasCtxCallee := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				used[obj] = true
			}
		case *ast.CallExpr:
			if sig, ok := info.Types[n.Fun].Type.(*types.Signature); ok && acceptsContext(sig) {
				hasCtxCallee = true
			}
		}
		return true
	})
	if !hasCtxCallee {
		return
	}
	for _, p := range own {
		if !used[p] {
			pass.Reportf(p.Pos(), "ctx parameter %s is never used, but the body calls context-accepting functions; thread it", p.Name())
		}
	}
}

// ctxUniverse collects every context-typed object mentioned in the body
// plus the seeds — the top element of the must-taint lattice.
func ctxUniverse(info *types.Info, body *ast.BlockStmt, seeds []types.Object) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	add := func(o types.Object) {
		if o != nil && !seen[o] && isContextType(o.Type()) {
			seen[o] = true
			out = append(out, o)
		}
	}
	for _, s := range seeds {
		add(s)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				add(obj)
			} else {
				add(info.Uses[id])
			}
		}
		return true
	})
	return out
}

// ctxParams returns the objects of the context.Context-typed parameters of
// a function type (blank parameters excluded).
func ctxParams(info *types.Info, ftyp *ast.FuncType) []types.Object {
	var out []types.Object
	if ftyp == nil || ftyp.Params == nil {
		return nil
	}
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// ctxDerived reports whether e evaluates to a context derived from the
// tainted set: a tainted identifier, a parenthesized/asserted/converted
// derived value, or a call returning a context that receives a derived
// context argument (context.With* and user helpers alike).
func ctxDerived(info *types.Info, e ast.Expr, set TaintSet) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && set[obj]
	case *ast.ParenExpr:
		return ctxDerived(info, e.X, set)
	case *ast.TypeAssertExpr:
		return ctxDerived(info, e.X, set)
	case *ast.CallExpr:
		if info.Types[e.Fun].IsType() { // conversion
			if len(e.Args) == 1 {
				return ctxDerived(info, e.Args[0], set)
			}
			return false
		}
		sig, ok := info.Types[e.Fun].Type.(*types.Signature)
		if !ok || !returnsContext(sig) {
			return false
		}
		for _, arg := range e.Args {
			if isContextType(info.Types[arg].Type) && ctxDerived(info, arg, set) {
				return true
			}
		}
		return false
	}
	return false
}

// contextRootCall recognizes context.Background() / context.TODO().
func contextRootCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[pkg].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name, true
	}
	return "", false
}

// calleeName renders a call's function for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// acceptsContext reports whether a signature has a context.Context
// parameter slot.
func acceptsContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// returnsContext reports whether a signature has a context.Context result.
func returnsContext(sig *types.Signature) bool {
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isContextType(results.At(i).Type()) {
			return true
		}
	}
	return false
}
