package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// FaultSite keeps the fault-injection layer honest. Fault sites are named
// by string constants in internal/faultinject; a site name that drifts —
// a typo'd literal fired in library code, or a test arming a rule for a
// site that no production code ever fires — fails silently: the library
// hook becomes dead, or the fault test becomes vacuous (it "passes" while
// injecting nothing). The analyzer cross-checks both directions:
//
//   - every site passed to faultinject.Hit/CorruptNaN in library code must
//     be a declared Site* constant (or a Site* helper call like
//     SiteSweepJob); a raw string that matches no declared site value is
//     an undeclared site, and a non-constant name defeats the registry;
//   - every site referenced in a package's test files — Rule{Site: ...}
//     literals and direct Hit/CorruptNaN calls — must name a declared
//     Site* constant or match a declared site's string value.
//
// Test files are scanned without type information (they are parsed, not
// type-checked), so the test-side checks are syntactic: they apply to any
// test file importing a package named faultinject. The faultinject
// package's own unit tests exercise the machinery with synthetic site
// names and do not import themselves, so they are naturally out of scope.
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc:  "cross-checks faultinject site names: fired sites must be declared, tested sites must exist",
	Run:  runFaultSite,
}

func runFaultSite(pass *Pass) {
	decls := findSiteDecls(pass.Pkg)
	if decls != nil {
		checkLibrarySites(pass, decls)
	}
	checkTestSites(pass, decls)
}

// siteDecls is the declared fault-site registry of a faultinject package:
// the exported Site* string constants (by name and by value) and the Site*
// generator functions (by name; their values are dynamic).
type siteDecls struct {
	values map[string]bool // constant site strings
	consts map[string]bool // Site* constant names
	funcs  map[string]bool // Site* function names
}

// findSiteDecls locates the faultinject package visible to the analyzed
// package — itself, a direct import, or (when only test files use it) a
// loader-resolved intra-module import — and indexes its Site* declarations.
// Returns nil when no faultinject package is in scope.
func findSiteDecls(pkg *Package) *siteDecls {
	var scope *types.Scope
	if pkg.Types != nil && pkg.Types.Name() == "faultinject" {
		scope = pkg.Types.Scope()
	}
	if scope == nil && pkg.Types != nil {
		for _, imp := range pkg.Types.Imports() {
			if imp.Name() == "faultinject" {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		// Perhaps only the test files import it.
		for _, f := range pkg.TestFiles {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil || !isFaultinjectPath(path) {
					continue
				}
				if dep, err := pkg.LoadImport(path); err == nil && dep.Types != nil {
					scope = dep.Types.Scope()
					break
				}
			}
			if scope != nil {
				break
			}
		}
	}
	if scope == nil {
		return nil
	}
	d := &siteDecls{values: map[string]bool{}, consts: map[string]bool{}, funcs: map[string]bool{}}
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Site") {
			continue
		}
		switch obj := scope.Lookup(name).(type) {
		case *types.Const:
			if obj.Val().Kind() == constant.String {
				d.consts[name] = true
				d.values[constant.StringVal(obj.Val())] = true
			}
		case *types.Func:
			d.funcs[name] = true
		}
	}
	return d
}

func isFaultinjectPath(path string) bool {
	return path == "faultinject" || strings.HasSuffix(path, "/faultinject")
}

// checkLibrarySites validates the site argument of every Hit/CorruptNaN
// call and every Rule{Site: ...} literal in the type-checked library files.
func checkLibrarySites(pass *Pass, decls *siteDecls) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isFaultinjectCall(info, n, "Hit") && !isFaultinjectCall(info, n, "CorruptNaN") {
					return true
				}
				if len(n.Args) == 0 {
					return true
				}
				checkSiteExpr(pass, info, n.Args[0], decls)
			case *ast.CompositeLit:
				if !isFaultinjectRuleType(info.Types[n].Type) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Site" {
						checkSiteExpr(pass, info, kv.Value, decls)
					}
				}
			}
			return true
		})
	}
}

// checkSiteExpr validates one typed site-name expression: a constant whose
// value is a declared site, or a call to a Site* generator.
func checkSiteExpr(pass *Pass, info *types.Info, e ast.Expr, decls *siteDecls) {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if name, ok := siteCalleeName(call); ok && decls.funcs[name] {
			return // dynamic site from a declared generator
		}
		pass.Reportf(e.Pos(), "fault site produced by a call that is not a declared faultinject Site* helper")
		return
	}
	tv := info.Types[e]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(e.Pos(), "fault site name is not a constant; use a declared faultinject.Site* constant so tests can target it")
		return
	}
	if v := constant.StringVal(tv.Value); !decls.values[v] {
		pass.Reportf(e.Pos(), "fault site %q is not declared in package faultinject; a typo here makes the fault hook dead", v)
	}
}

// siteCalleeName extracts the Site*-shaped callee name of a call
// (faultinject.SiteSweepJob(i) or, package-internally, SiteSweepJob(i)).
func siteCalleeName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, strings.HasPrefix(fun.Name, "Site")
	case *ast.SelectorExpr:
		return fun.Sel.Name, strings.HasPrefix(fun.Sel.Name, "Site")
	}
	return "", false
}

// isFaultinjectCall reports whether the call is <faultinject pkg>.<name>
// or, inside the faultinject package itself, a plain <name> call.
func isFaultinjectCall(info *types.Info, call *ast.CallExpr, name string) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if id == nil || id.Name != name {
		return false
	}
	obj := info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == "faultinject"
}

// isFaultinjectRuleType reports whether t is the Rule struct of a
// faultinject package.
func isFaultinjectRuleType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rule" && obj.Pkg() != nil && obj.Pkg().Name() == "faultinject"
}

// checkTestSites scans the parse-only test files: in any test file that
// imports a faultinject package, Site: field values and Hit/CorruptNaN
// arguments must reference declared sites. When the registry could not be
// resolved (decls == nil) but a test file does import faultinject, that is
// itself reported — a silently unresolvable registry would make the check
// vacuous, which is the failure mode this analyzer exists to prevent.
func checkTestSites(pass *Pass, decls *siteDecls) {
	for _, f := range pass.Pkg.TestFiles {
		localName := faultinjectLocalName(f)
		if localName == "" {
			continue // this test file does not use fault injection
		}
		if decls == nil {
			pass.Reportf(f.Name.Pos(), "test file imports faultinject but the site registry could not be resolved; faultsite cannot verify its site names")
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Site" {
					checkTestSiteExpr(pass, n.Value, localName, decls)
				}
			case *ast.CallExpr:
				if name, qualified := testCallee(n, localName); name == "Hit" || name == "CorruptNaN" {
					if qualified && len(n.Args) > 0 {
						checkTestSiteExpr(pass, n.Args[0], localName, decls)
					}
				}
			}
			return true
		})
	}
}

// faultinjectLocalName returns the name a test file refers to the
// faultinject package by ("faultinject", an alias, or "" when the file
// does not import one). Dot-imports are reported as unusable rather than
// guessed at.
func faultinjectLocalName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || !isFaultinjectPath(path) {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				continue
			}
			return imp.Name.Name
		}
		return "faultinject"
	}
	return ""
}

// testCallee resolves a call in a parse-only test file to (name,
// qualifiedByFaultinject).
func testCallee(call *ast.CallExpr, localName string) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok && x.Name == localName {
			return fun.Sel.Name, true
		}
		return fun.Sel.Name, false
	case *ast.Ident:
		return fun.Name, false
	}
	return "", false
}

// checkTestSiteExpr validates a site reference in a parse-only test file:
// a string literal must match a declared site's value; a selector
// localName.SiteX must name a declared constant or generator; a call
// localName.SiteFn(...) must name a declared generator.
func checkTestSiteExpr(pass *Pass, e ast.Expr, localName string, decls *siteDecls) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		v, err := strconv.Unquote(e.Value)
		if err != nil {
			return
		}
		if !decls.values[v] {
			pass.Reportf(e.Pos(), "test references fault site %q, which no production code declares; the fault test is vacuous", v)
		}
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok && x.Name == localName {
			if !decls.consts[e.Sel.Name] && !decls.funcs[e.Sel.Name] {
				pass.Reportf(e.Pos(), "test references faultinject.%s, which is not declared", e.Sel.Name)
			}
		}
	case *ast.CallExpr:
		if name, ok := siteCalleeName(e); ok && !decls.funcs[name] && !decls.consts[name] {
			pass.Reportf(e.Pos(), "test builds a fault site with %s, which is not a declared Site* helper", name)
		}
	}
}
