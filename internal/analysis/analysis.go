// Package analysis is a small, stdlib-only static-analysis framework plus
// the repository's analyzer suite. It exists because three properties of
// this codebase are load-bearing and easy to regress silently:
//
//   - numeric discipline: the SRDF/SOCP pipeline is only sound under
//     conservative floating-point comparison (tolerance helpers, never raw
//     ==/!= except against exact-zero sentinels);
//   - determinism: sweep and experiment results must not depend on Go's
//     randomized map iteration order;
//   - zero-alloc hot paths: the per-iteration interior-point
//     refactorization must not allocate.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis (Analyzer, Pass, Diagnostic) but is built only on go/parser,
// go/types and the source go/importer, so the module gains no dependencies.
// The cmd/bbvet driver runs every registered analyzer over the repository
// and CI requires a clean run.
//
// Findings can be suppressed per line with a directive comment, either on
// the flagged line or on the line directly above it; a directive annotating
// a statement wrapped across several lines covers the statement's full
// extent (composite statements contribute only their header lines):
//
//	x := a.Val // bbvet:allow csralias transient view, released below
//	//bbvet:allow floatcmp sort tie-break needs exact ordering
//	if p.BudgetTotal != q.BudgetTotal {
//
// A reason is mandatory: a bare allow without justification is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in bbvet:allow directives.
	Name string
	// Doc is a short description shown by `bbvet -help`.
	Doc string
	// Run inspects a package and reports findings through the pass.
	Run func(*Pass)
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
// Fixes, when present, are mechanical remedies a driver may apply (see
// fix.go); a diagnostic without fixes still names the manual remedy in its
// message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []SuggestedFix
}

// Fixable reports whether the diagnostic carries at least one suggested
// fix.
func (d Diagnostic) Fixable() bool { return len(d.Fixes) > 0 }

// String formats the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in reporting order: the AST-pattern
// analyzers of the original suite first, then the CFG/dataflow analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		MapRange,
		HotAlloc,
		StatusCheck,
		CSRAlias,
		CtxFlow,
		LeakCheck,
		FaultSite,
		HotLoop,
		ConcDiscipline,
		HTTPDiscipline,
		SlogField,
	}
}

// Names returns the analyzer names of the suite, sorted.
func Names() []string {
	names := make([]string, 0, len(All()))
	for _, a := range All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a comma-separated analyzer list against the suite. An
// unknown name yields an error that lists the valid names and, when a
// close misspelling exists, suggests it.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("%s", unknownAnalyzerText(n))
		}
		out = append(out, a)
	}
	return out, nil
}

// unknownAnalyzerText renders the shared unknown-analyzer-name message:
// the rejected name, the sorted valid names, and a did-you-mean hint when
// one is close enough to be a plausible typo.
func unknownAnalyzerText(n string) string {
	msg := fmt.Sprintf("unknown analyzer %q (valid: %s)", n, strings.Join(Names(), ", "))
	if near := nearestName(n); near != "" {
		msg += fmt.Sprintf("; did you mean %q?", near)
	}
	return msg
}

// nearestName returns the suite name with the smallest edit distance to n,
// or "" when even the best candidate differs in more than half its
// letters (a threshold that keeps garbage input from producing a random
// suggestion). Ties break toward the alphabetically first name, so the
// hint is deterministic.
func nearestName(n string) string {
	best, bestDist := "", -1
	for _, cand := range Names() {
		d := editDistance(n, cand)
		if bestDist < 0 || d < bestDist {
			best, bestDist = cand, d
		}
	}
	if best == "" || bestDist > len(best)/2 {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance between two short names.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			cur[j] = min(sub, min(prev[j]+1, cur[j-1]+1))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Run applies the analyzers to the package and returns the surviving
// diagnostics: suppressed findings are dropped, malformed suppression
// directives are themselves reported, and the result is sorted by position
// so output order never depends on analyzer internals.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	sup := collectAllows(pkg)
	diags = append(diags, sup.malformed...)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.allows(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// allowDirective is the parsed form of one bbvet:allow comment.
const allowPrefix = "bbvet:allow"

// HotpathDirective marks a function whose body must not allocate; the
// hotalloc analyzer checks every function so annotated.
const HotpathDirective = "bbvet:hotpath"

type suppressions struct {
	// byFileLine maps filename -> line -> set of allowed analyzer names.
	byFileLine map[string]map[int]map[string]bool
	// spans extends a directive over the full line range of the statement
	// it annotates, so an allow above (or trailing) a multi-line statement
	// suppresses diagnostics anchored on any of its wrapped lines.
	spans     map[string][]allowSpan
	malformed []Diagnostic
}

// allowSpan is one analyzer's suppression over an inclusive line range.
type allowSpan struct {
	from, to int
	analyzer string
}

// collectAllows scans the package's comments — test files included, since
// some analyzers (faultsite) report into them — for bbvet:allow directives.
func collectAllows(pkg *Package) *suppressions {
	s := &suppressions{
		byFileLine: map[string]map[int]map[string]bool{},
		spans:      map[string][]allowSpan{},
	}
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		var extents []lineExtent // built lazily, only when a directive needs it
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := directiveText(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "bbvet",
						Message:  "malformed bbvet:allow directive: want \"bbvet:allow <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				known := false
				for _, a := range All() {
					if a.Name == name {
						known = true
						break
					}
				}
				if !known {
					d := Diagnostic{
						Pos:      pos,
						Analyzer: "bbvet",
						Message:  "bbvet:allow names " + unknownAnalyzerText(name),
					}
					// A close misspelling earns a mechanical repair: the same
					// Levenshtein machinery behind did-you-mean rewrites the
					// directive's analyzer name in place.
					if near := nearestName(name); near != "" {
						if from, to, ok := directiveNameRange(pkg.Fset, c, name); ok {
							d.Fixes = []SuggestedFix{{
								Message: fmt.Sprintf("replace %q with %q", name, near),
								Edits:   []TextEdit{editAt(pkg.Fset, from, to, near)},
							}}
						}
					}
					s.malformed = append(s.malformed, d)
					continue
				}
				lines := s.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byFileLine[pos.Filename] = lines
				}
				if lines[pos.Line] == nil {
					lines[pos.Line] = map[string]bool{}
				}
				lines[pos.Line][name] = true
				if extents == nil {
					extents = stmtExtents(pkg.Fset, f)
				}
				if from, to, ok := directiveExtent(extents, pos.Line); ok {
					s.spans[pos.Filename] = append(s.spans[pos.Filename],
						allowSpan{from: from, to: to, analyzer: name})
				}
			}
		}
	}
	return s
}

// lineExtent is the line range of one simple statement (or of a composite
// statement's header), used to give allow directives statement extent.
type lineExtent struct {
	from, to int
}

// stmtExtents collects the line extents of the file's statements. Simple
// statements span their full source range; composite statements (if, for,
// range, switch, select, case bodies, blocks) contribute only their header
// lines, so a directive never silently suppresses a whole block. Top-level
// non-function declarations (a wrapped var/const initializer) count too.
func stmtExtents(fset *token.FileSet, f *ast.File) []lineExtent {
	var out []lineExtent
	add := func(from, to token.Pos) {
		out = append(out, lineExtent{
			from: fset.Position(from).Line,
			to:   fset.Position(to).Line,
		})
	}
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				add(spec.Pos(), spec.End())
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			add(n.Pos(), n.Body.Lbrace)
		case *ast.ForStmt:
			add(n.Pos(), n.Body.Lbrace)
		case *ast.RangeStmt:
			add(n.Pos(), n.Body.Lbrace)
		case *ast.SwitchStmt:
			add(n.Pos(), n.Body.Lbrace)
		case *ast.TypeSwitchStmt:
			add(n.Pos(), n.Body.Lbrace)
		case *ast.SelectStmt:
			add(n.Pos(), n.Body.Lbrace)
		case *ast.CaseClause:
			add(n.Pos(), n.Colon)
		case *ast.CommClause:
			add(n.Pos(), n.Colon)
		case *ast.BlockStmt, *ast.LabeledStmt:
			// Containers: their inner statements carry their own extents.
		case ast.Stmt:
			add(n.Pos(), n.End())
		}
		return true
	})
	return out
}

// directiveExtent resolves the statement extent a directive on line L
// annotates: the narrowest statement starting on L+1 (directive-above
// form) or, failing that, the narrowest statement whose lines contain L
// (trailing form on a wrapped statement). Reported extents always include
// the legacy {L, L+1} lines via the byFileLine fallback, so this only ever
// widens suppression.
func directiveExtent(extents []lineExtent, line int) (from, to int, ok bool) {
	best := -1
	for i, e := range extents {
		if e.from == line+1 || (e.from <= line && line <= e.to) {
			if best < 0 || e.to-e.from < extents[best].to-extents[best].from {
				best = i
			}
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return extents[best].from, extents[best].to, true
}

// directiveNameRange locates the analyzer-name token of an allow directive
// inside its comment, as a source position range suitable for a TextEdit.
func directiveNameRange(fset *token.FileSet, c *ast.Comment, name string) (from, to token.Pos, ok bool) {
	pi := strings.Index(c.Text, allowPrefix)
	if pi < 0 {
		return 0, 0, false
	}
	ni := strings.Index(c.Text[pi:], name)
	if ni < 0 {
		return 0, 0, false
	}
	start := c.Pos() + token.Pos(pi+ni)
	return start, start + token.Pos(len(name)), true
}

// directiveText extracts the payload after bbvet:allow from a comment, in
// either the strict directive form //bbvet:allow or the prose form
// "// bbvet:allow" usable at the end of a code line.
func directiveText(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, allowPrefix)), true
}

// allows reports whether a directive suppresses the diagnostic: one on the
// diagnostic's line or the line directly above it, or one whose annotated
// statement's full extent covers the diagnostic's line (the multi-line
// wrapped-statement case).
func (s *suppressions) allows(d Diagnostic) bool {
	if lines := s.byFileLine[d.Pos.Filename]; lines != nil {
		if lines[d.Pos.Line][d.Analyzer] || lines[d.Pos.Line-1][d.Analyzer] {
			return true
		}
	}
	for _, sp := range s.spans[d.Pos.Filename] {
		if sp.analyzer == d.Analyzer && sp.from <= d.Pos.Line && d.Pos.Line <= sp.to {
			return true
		}
	}
	return false
}

// funcHotpath reports whether the function declaration's doc comment
// carries the hotpath directive. (The directive name is spelled via the
// constant here: a doc-comment line that *starts* with the directive text
// would annotate its own function.)
func funcHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == HotpathDirective || strings.HasPrefix(text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}
