package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseOnly builds a Package with parsed (not type-checked) files — enough
// for the comment-driven machinery under test here.
func parseOnly(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

func TestAllowDirectiveParsing(t *testing.T) {
	pkg := parseOnly(t, `package p

//bbvet:allow floatcmp exact guard with a reason
var a int

//bbvet:allow floatcmp
var b int

//bbvet:allow nosuchanalyzer some reason
var c int

var d int // bbvet:allow maprange trailing directive with reason
`)
	sup := collectAllows(pkg)
	if n := len(sup.malformed); n != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", n, sup.malformed)
	}
	if !strings.Contains(sup.malformed[0].Message, "malformed") {
		t.Errorf("missing-reason directive not reported as malformed: %v", sup.malformed[0])
	}
	if !strings.Contains(sup.malformed[1].Message, "unknown analyzer") {
		t.Errorf("unknown-analyzer directive not reported: %v", sup.malformed[1])
	}
	// The well-formed directive suppresses floatcmp on its own line and on
	// the line below, but not other analyzers and not other lines.
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "floatcmp", true},
		{4, "floatcmp", true},
		{5, "floatcmp", false},
		{3, "maprange", false},
		{12, "maprange", true},
		{13, "maprange", true},
	}
	for _, c := range cases {
		d := Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: c.line}, Analyzer: c.analyzer}
		if got := sup.allows(d); got != c.want {
			t.Errorf("allows(line %d, %s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}

// TestAllowDirectiveStatementExtent pins the multi-line behavior: a
// directive covers every line of the simple statement it annotates, but for
// composite statements only the header, never the body.
func TestAllowDirectiveStatementExtent(t *testing.T) {
	pkg := parseOnly(t, `package p

func f(a, b float64) bool {
	//bbvet:allow floatcmp wrapped call: tolerance checked by callee
	return eq(
		a,
		b,
	)
}

func h(a, b float64) bool {
	//bbvet:allow floatcmp header comparison is a sort tie-break
	if a == b ||
		a != b {
		return b == a
	}
	return false
}

func k(a, b float64) bool {
	return eq(a, // bbvet:allow floatcmp trailing form on a wrapped statement
		b)
}
`)
	sup := collectAllows(pkg)
	if len(sup.malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", sup.malformed)
	}
	cases := []struct {
		line int
		want bool
	}{
		{5, true},   // return eq( — legacy line-below rule
		{6, true},   // a, — wrapped argument line, extent rule
		{8, true},   // ) — last line of the statement
		{9, false},  // closing brace of f
		{13, true},  // if a == b || — header line
		{14, true},  // a != b { — still the header
		{15, false}, // body of the if: header-only extent must not cover it
		{17, false}, // return false after the if
		{21, true},  // trailing directive's own line
		{22, true},  // second line of the wrapped return
	}
	for _, c := range cases {
		d := Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: c.line}, Analyzer: "floatcmp"}
		if got := sup.allows(d); got != c.want {
			t.Errorf("allows(line %d) = %v, want %v", c.line, got, c.want)
		}
	}
	// A different analyzer is never suppressed by these directives.
	d := Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: 6}, Analyzer: "maprange"}
	if sup.allows(d) {
		t.Error("extent suppression leaked across analyzers")
	}
}

func TestHotpathDirectiveDetection(t *testing.T) {
	pkg := parseOnly(t, `package p

// doc text.
//
//bbvet:hotpath
func hot() {}

// plain doc.
func cold() {}

// mentions bbvet:hotpath mid-sentence only.
func prose() {}
`)
	got := map[string]bool{}
	for _, decl := range pkg.Files[0].Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			got[fn.Name.Name] = funcHotpath(fn)
		}
	}
	want := map[string]bool{"hot": true, "cold": false, "prose": false}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("funcHotpath(%s) = %v, want %v", name, got[name], w)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite", len(all), err)
	}
	two, err := ByName("floatcmp, csralias")
	if err != nil || len(two) != 2 || two[0].Name != "floatcmp" || two[1].Name != "csralias" {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("floatcmp,bogus"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestByNameUnknownError pins the error text: the valid names (sorted, so
// the listing is stable) and, for a near-miss, a did-you-mean hint.
func TestByNameUnknownError(t *testing.T) {
	_, err := ByName("hotaloc")
	if err == nil {
		t.Fatal("ByName accepted a misspelled analyzer")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown analyzer "hotaloc"`) {
		t.Errorf("error does not name the bad input: %q", msg)
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if !strings.Contains(msg, "valid: "+strings.Join(names, ", ")) {
		t.Errorf("error does not list the valid names: %q", msg)
	}
	if !strings.Contains(msg, `did you mean "hotalloc"?`) {
		t.Errorf("near-miss did not produce a suggestion: %q", msg)
	}
	// Garbage far from every name gets the list but no bogus suggestion.
	_, err = ByName("zzzzqqqq")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Errorf("implausible input still got a suggestion: %v", err)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(loader.ModDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("pattern expansion descended into %s", d)
		}
	}
	// An explicit testdata path must still load (that is how fixtures run).
	fx, err := ExpandPatterns(loader.ModDir, []string{"testdata/analysis/floatcmp"})
	if err != nil || len(fx) != 1 {
		t.Fatalf("explicit fixture dir: %v, err %v", fx, err)
	}
}
