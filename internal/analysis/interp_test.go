package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// interpModule loads a one-package throwaway module and returns the package
// plus its interprocedural index. The source deliberately imports nothing,
// so the tests exercise the call graph and summaries, not the importer.
func interpModule(t *testing.T, src string) (*Package, *Interp) {
	t.Helper()
	loader := writeModule(t, map[string]string{"p/p.go": src})
	pkg, err := loader.load("example.com/m/p")
	if err != nil {
		t.Fatal(err)
	}
	return pkg, pkg.Interp()
}

// funcOf resolves a package-level function by name.
func funcOf(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	f, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q in %s", name, pkg.Path)
	}
	return f
}

const summarySrc = `package p

func leaf() []int { return make([]int, 4) }

func mid() []int { return leaf() }

func top() []int { return mid() }

func pure(x int) int { return x + 1 }

// bbvet:hotpath audited zero-alloc contract
func trusted() []int { return make([]int, 4) }

func callsTrusted() []int { return trusted() }

func evenAlloc(n int) []int {
	if n == 0 {
		return make([]int, 1)
	}
	return oddAlloc(n - 1)
}

func oddAlloc(n int) []int { return evenAlloc(n) }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func identity(xs []int) []int { return xs }

var sink []int

func stash(xs []int) { sink = xs }

func stashSecond(a, b []int) { sink = b }

func reads(xs []int) int { return len(xs) }

func stashViaHelper(xs []int) { stash(xs) }

func returnsViaHelper(xs []int) []int { return identity(xs) }

func unsortedKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func wrapsUnsorted(m map[int]int) []int { return unsortedKeys(m) }
`

func TestSummaryTransitiveAlloc(t *testing.T) {
	pkg, ip := interpModule(t, summarySrc)
	s := ip.SummaryOf(funcOf(t, pkg, "top"))
	if s == nil || !s.Allocates {
		t.Fatalf("top: Allocates = false, want true (summary %+v)", s)
	}
	if s.AllocVia == nil || s.AllocVia.Name() != "mid" {
		t.Errorf("top: AllocVia = %v, want mid", s.AllocVia)
	}
	path := ip.AllocPath(funcOf(t, pkg, "top"))
	if !strings.Contains(path, "top → mid → leaf: make at p.go:") {
		t.Errorf("AllocPath(top) = %q, want the full witness chain down to the make", path)
	}
}

func TestSummaryPureFunction(t *testing.T) {
	pkg, ip := interpModule(t, summarySrc)
	s := ip.SummaryOf(funcOf(t, pkg, "pure"))
	if s == nil || s.Allocates || s.RetainsParam != 0 || s.ReturnsParam != 0 || s.OrderedReturn {
		t.Errorf("pure: want an all-clear summary, got %+v", s)
	}
}

// TestSummaryHotpathBoundary: a callee annotated bbvet:hotpath is a trusted
// zero-alloc contract, so its (directly checked) allocations do not taint
// callers. The annotated function's own summary still records the fact.
func TestSummaryHotpathBoundary(t *testing.T) {
	pkg, ip := interpModule(t, summarySrc)
	if s := ip.SummaryOf(funcOf(t, pkg, "trusted")); s == nil || !s.Allocates {
		t.Errorf("trusted: own summary should record the make, got %+v", s)
	}
	if s := ip.SummaryOf(funcOf(t, pkg, "callsTrusted")); s == nil || s.Allocates {
		t.Errorf("callsTrusted: hotpath callee should not taint the caller, got %+v", s)
	}
	if !ip.Hotpath(funcOf(t, pkg, "trusted")) || ip.Hotpath(funcOf(t, pkg, "leaf")) {
		t.Error("Hotpath classification wrong for trusted/leaf")
	}
}

// TestSummaryRecursionFixpoint: mutually recursive functions converge — the
// allocating pair both end up Allocates, the clean pair both end up clean,
// and the results are final (stable on re-query).
func TestSummaryRecursionFixpoint(t *testing.T) {
	pkg, ip := interpModule(t, summarySrc)
	for _, name := range []string{"evenAlloc", "oddAlloc"} {
		if s := ip.SummaryOf(funcOf(t, pkg, name)); s == nil || !s.Allocates {
			t.Errorf("%s: Allocates = false, want true through the cycle", name)
		}
	}
	for _, name := range []string{"even", "odd"} {
		if s := ip.SummaryOf(funcOf(t, pkg, name)); s == nil || s.Allocates {
			t.Errorf("%s: Allocates = true, want false (no alloc anywhere in the cycle)", name)
		}
	}
	first := ip.SummaryOf(funcOf(t, pkg, "evenAlloc"))
	if again := ip.SummaryOf(funcOf(t, pkg, "evenAlloc")); again != first {
		t.Error("re-query after convergence returned a different summary object")
	}
}

func TestSummaryParamFacts(t *testing.T) {
	pkg, ip := interpModule(t, summarySrc)
	cases := []struct {
		fn      string
		retains uint64
		returns uint64
	}{
		{"identity", 0, 1 << 0},
		{"stash", 1 << 0, 0},
		{"stashSecond", 1 << 1, 0},
		{"reads", 0, 0},
		{"stashViaHelper", 1 << 0, 0},   // retention propagates through stash
		{"returnsViaHelper", 0, 1 << 0}, // aliasing propagates through identity
	}
	for _, c := range cases {
		s := ip.SummaryOf(funcOf(t, pkg, c.fn))
		if s == nil {
			t.Fatalf("%s: nil summary", c.fn)
		}
		if s.RetainsParam != c.retains || s.ReturnsParam != c.returns {
			t.Errorf("%s: Retains/Returns = %b/%b, want %b/%b",
				c.fn, s.RetainsParam, s.ReturnsParam, c.retains, c.returns)
		}
	}
}

func TestSummaryOrderedReturn(t *testing.T) {
	pkg, ip := interpModule(t, summarySrc)
	for _, name := range []string{"unsortedKeys", "wrapsUnsorted"} {
		if s := ip.SummaryOf(funcOf(t, pkg, name)); s == nil || !s.OrderedReturn {
			t.Errorf("%s: OrderedReturn = false, want true", name)
		}
	}
	if s := ip.SummaryOf(funcOf(t, pkg, "identity")); s.OrderedReturn {
		t.Error("identity: OrderedReturn = true, want false")
	}
}

// TestResolveCallClassification pins the CallTarget taxonomy on one body
// containing every shape: direct call, concrete method, interface method,
// function value, and a conversion (which is not a call at all).
func TestResolveCallClassification(t *testing.T) {
	pkg, _ := interpModule(t, `package p

func f() {}

type T struct{}

func (T) M() {}

type I interface{ M() }

func calls(t T, i I, fn func(), n int) int {
	f()
	t.M()
	i.M()
	fn()
	return int(n)
}
`)
	var decl *ast.FuncDecl
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "calls" {
				decl = fd
			}
		}
	}
	if decl == nil {
		t.Fatal("function calls not found")
	}
	var got []CallTarget
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			got = append(got, ResolveCall(pkg.Info, call))
		}
		return true
	})
	if len(got) != 5 {
		t.Fatalf("found %d call expressions, want 5", len(got))
	}
	if got[0].Static == nil || got[0].Static.Name() != "f" {
		t.Errorf("f(): %+v, want static callee f", got[0])
	}
	if got[1].Static == nil || got[1].Static.Name() != "M" {
		t.Errorf("t.M(): %+v, want static concrete method", got[1])
	}
	if got[2].Static != nil || got[2].Dynamic != "an interface method" || got[2].Name != "M" {
		t.Errorf("i.M(): %+v, want dynamic interface method named M", got[2])
	}
	if got[3].Static != nil || got[3].Dynamic != "a function value" {
		t.Errorf("fn(): %+v, want dynamic function value", got[3])
	}
	if got[4] != (CallTarget{}) {
		t.Errorf("int(n): %+v, want the zero CallTarget for a conversion", got[4])
	}
}
