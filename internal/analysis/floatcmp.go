package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions. Exact
// floating-point equality is almost never what the SRDF/SOCP pipeline
// means: the paper's Constraint 1 and the λβ ≥ 1 relaxation survive
// rounding only because every feasibility decision goes through a
// tolerance. The one legal exception is comparison against an exact-zero
// sentinel — the zero Options value selecting a default, or skipping a
// structurally zero matrix entry — because those zeros are assigned, never
// computed.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floats except against exact zero-value sentinels",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, cmp.X) || !isFloat(info, cmp.Y) {
				return true
			}
			// Both sides constant: the comparison is compile-time exact.
			if isConst(info, cmp.X) && isConst(info, cmp.Y) {
				return true
			}
			// Exact-zero sentinel comparisons stay legal.
			if isZeroConst(info, cmp.X) || isZeroConst(info, cmp.Y) {
				return true
			}
			msg := fmt.Sprintf("floating-point %s comparison; use a tolerance helper (or bbvet:allow with a reason for a deliberate exact guard)", cmp.Op)
			if fix, ok := floatCmpFix(pass, f, cmp); ok {
				pass.ReportfFix(cmp.OpPos, fix, "%s", msg)
			} else {
				pass.Reportf(cmp.OpPos, "%s", msg)
			}
			return true
		})
	}
}

// floatCmpTolerance is the epsilon the mechanical fix compares against. It
// matches the default feasibility tolerance of the solve pipeline; a site
// needing a different bound edits the constant after applying.
const floatCmpTolerance = "1e-9"

// floatCmpFix builds the tolerance-comparison rewrite for a flagged
// comparison: a == b becomes math.Abs(a-b) <= 1e-9 (and != becomes >).
// Only float64 operands qualify — math.Abs on narrower floats would need
// conversions the mechanical rewrite should not invent.
func floatCmpFix(pass *Pass, f *ast.File, cmp *ast.BinaryExpr) (SuggestedFix, bool) {
	info := pass.Pkg.Info
	if !isFloat64(info, cmp.X) || !isFloat64(info, cmp.Y) {
		return SuggestedFix{}, false
	}
	op := "<="
	if cmp.Op == token.NEQ {
		op = ">"
	}
	text := fmt.Sprintf("math.Abs(%s-%s) %s %s",
		parenthesized(pass.Pkg.Fset, cmp.X), parenthesized(pass.Pkg.Fset, cmp.Y), op, floatCmpTolerance)
	fix := SuggestedFix{
		Message: fmt.Sprintf("compare within %s via math.Abs", floatCmpTolerance),
		Edits:   []TextEdit{pass.Edit(cmp.Pos(), cmp.End(), text)},
	}
	if imp, ok := importEdit(pass.Pkg.Fset, f, "math"); ok {
		fix.Edits = append(fix.Edits, imp)
	}
	return fix, true
}

// parenthesized renders an operand, wrapping binary subexpressions so the
// subtraction in the rewrite cannot change their grouping.
func parenthesized(fset *token.FileSet, e ast.Expr) string {
	text := exprText(fset, e)
	if _, ok := e.(*ast.BinaryExpr); ok {
		return "(" + text + ")"
	}
	return text
}

// isFloat64 reports whether the expression's type is exactly float64.
func isFloat64(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

// isFloat reports whether the expression's type has a floating-point
// underlying type (including untyped float constants).
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

// isZeroConst reports whether e is a constant whose value is exactly zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	v := info.Types[e].Value
	return v != nil && (v.Kind() == constant.Int || v.Kind() == constant.Float) && constant.Sign(v) == 0
}
