package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions. Exact
// floating-point equality is almost never what the SRDF/SOCP pipeline
// means: the paper's Constraint 1 and the λβ ≥ 1 relaxation survive
// rounding only because every feasibility decision goes through a
// tolerance. The one legal exception is comparison against an exact-zero
// sentinel — the zero Options value selecting a default, or skipping a
// structurally zero matrix entry — because those zeros are assigned, never
// computed.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floats except against exact zero-value sentinels",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, cmp.X) || !isFloat(info, cmp.Y) {
				return true
			}
			// Both sides constant: the comparison is compile-time exact.
			if isConst(info, cmp.X) && isConst(info, cmp.Y) {
				return true
			}
			// Exact-zero sentinel comparisons stay legal.
			if isZeroConst(info, cmp.X) || isZeroConst(info, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.OpPos, "floating-point %s comparison; use a tolerance helper (or bbvet:allow with a reason for a deliberate exact guard)", cmp.Op)
			return true
		})
	}
}

// isFloat reports whether the expression's type has a floating-point
// underlying type (including untyped float constants).
func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	return info.Types[e].Value != nil
}

// isZeroConst reports whether e is a constant whose value is exactly zero.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	v := info.Types[e].Value
	return v != nil && (v.Kind() == constant.Int || v.Kind() == constant.Float) && constant.Sign(v) == 0
}
