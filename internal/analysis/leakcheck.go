package analysis

import (
	"go/ast"
	"go/types"
)

// LeakCheck guards the two goroutine invariants the parallel sweep engine
// depends on:
//
//   - No leaked workers: a `go` statement must be paired with a join on
//     every CFG path from the launch to the function's exit — a
//     sync.WaitGroup Wait, a channel receive, a range over a channel, or a
//     select. A function that can return while its goroutines still run
//     leaks them past the caller's synchronization (and past the test's
//     race window). Joins performed in a defer count for all paths, since
//     deferred calls run on every exit.
//   - No process-killing workers: a pooled worker — a `go` statement with
//     a function-literal body launched from inside a loop — must recover
//     panics, either with a deferred recover in the literal itself or by
//     routing its work through a local function that does (the
//     runJob-style wrapper core.RunSweep uses). One panicking sweep job
//     must fail its own index, not the process.
//
// Deliberately long-lived goroutines (a signal listener, a trace drainer)
// are legitimate; suppress them with a reasoned //bbvet:allow leakcheck.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "flags go statements without a join on every path to exit, and pooled workers without panic recovery",
	Run:  runLeakCheck,
}

func runLeakCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLeakFunc(pass, fn.Body)
		}
	}
}

// checkLeakFunc analyzes one function body, then recurses into nested
// literals (a goroutine launched inside a closure must still be joined on
// the closure's own paths).
func checkLeakFunc(pass *Pass, body *ast.BlockStmt) {
	gos := collectGoStmts(body)
	if len(gos) > 0 {
		g := BuildCFG(body)
		recovering := recoveringFuncs(pass.Pkg)
		deferJoin := false
		for _, d := range g.Defers {
			if isJoinNode(pass.Pkg.Info, d.Call) {
				deferJoin = true
			}
		}
		for _, gs := range gos {
			checkGoStmt(pass, g, gs, deferJoin, recovering)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkLeakFunc(pass, lit.Body)
			return false
		}
		return true
	})
}

// collectGoStmts returns the go statements of the body, excluding those
// inside nested function literals.
func collectGoStmts(body *ast.BlockStmt) []*ast.GoStmt {
	var out []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

func checkGoStmt(pass *Pass, g *CFG, gs *ast.GoStmt, deferJoin bool, recovering map[types.Object]bool) {
	blk := g.BlockOf(gs)
	if blk == nil {
		return
	}
	if !deferJoin && leaksToExit(pass.Pkg.Info, g, blk, gs) {
		pass.Reportf(gs.Go, "goroutine is not joined on every path to the function's exit (want a WaitGroup Wait, channel receive, or select past the launch)")
	}
	// Pooled-worker recover rule: launched in a loop with an inline body.
	if blk.LoopDepth > 0 {
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			if !workerRecovers(pass.Pkg.Info, lit, recovering) {
				pass.Reportf(gs.Go, "pooled worker goroutine has no panic recovery; one panicking job would kill the process (defer a recover, or call a recovering wrapper)")
			}
		}
	}
}

// leaksToExit reports whether the function can reach its exit from the go
// statement without passing a join. Within the launching block only joins
// after the go statement count; in every other block any join counts.
func leaksToExit(info *types.Info, g *CFG, blk *Block, gs *ast.GoStmt) bool {
	// A join later in the same block dominates every path out of it.
	for _, n := range blk.Nodes {
		if n.Pos() > gs.End() && isJoinNode(info, n) {
			return false
		}
	}
	blocked := func(b *Block) bool {
		for _, n := range b.Nodes {
			if isJoinNode(info, n) {
				return true
			}
		}
		return false
	}
	return g.Reaches(blk, g.Exit, blocked)
}

// isJoinNode reports whether the node performs (or contains, outside
// nested literals) a goroutine join: a Wait method call, a channel
// receive, a range over a channel, or a select statement.
func isJoinNode(info *types.Info, root ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
			// The ranged expression may still contain a receive; keep walking.
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}

// workerRecovers reports whether a worker literal's body defers a recover
// itself, or calls a function/closure known to (one level of indirection:
// the wrapper pattern where each job runs inside a recovering callee).
func workerRecovers(info *types.Info, lit *ast.FuncLit, recovering map[types.Object]bool) bool {
	ok := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if deferredRecover(info, n) {
				ok = true
			}
		case *ast.CallExpr:
			if id, isIdent := ast.Unparen(n.Fun).(*ast.Ident); isIdent {
				if obj := info.Uses[id]; obj != nil && recovering[obj] {
					ok = true
				}
			}
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
				if obj := info.Uses[sel.Sel]; obj != nil && recovering[obj] {
					ok = true
				}
			}
		}
		return !ok
	})
	return ok
}

// recoveringFuncs indexes the package's functions and local closures whose
// body contains a deferred recover: declared functions and methods by
// their object, plus closures assigned to a variable (runJob := func(...)
// { defer func() { recover() ... }(); ... }) by the variable's object.
func recoveringFuncs(pkg *Package) map[types.Object]bool {
	info := pkg.Info
	out := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && bodyDefersRecover(info, n.Body) {
					if obj := info.Defs[n.Name]; obj != nil {
						out[obj] = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) || !bodyDefersRecover(info, lit.Body) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							out[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// bodyDefersRecover reports whether the body (not nested literals, except
// the deferred ones themselves) contains a deferred recover.
func bodyDefersRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok && deferredRecover(info, d) {
			found = true
		}
		return !found
	})
	return found
}

// deferredRecover reports whether a defer statement runs recover: either
// `defer func() { ... recover() ... }()` or a direct `defer recover()`
// (legal but useless; still counted as intent).
func deferredRecover(info *types.Info, d *ast.DeferStmt) bool {
	if isBuiltin(info, d.Call.Fun, "recover") {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call.Fun, "recover") {
			found = true
		}
		return !found
	})
	return found
}
