package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// HTTPDiscipline enforces the response-writing discipline of the serve
// layer on every function that touches an http.ResponseWriter:
//
//   - the response status must be committed at most once: a WriteHeader
//     (or an http.Error-class helper, which commits and writes) reachable
//     after an earlier commit or body write is reported — net/http drops
//     the second status and logs "superfluous WriteHeader" at runtime,
//     where this check catches it at vet time;
//   - no body bytes may follow a completed http.Error/NotFound/Redirect
//     response — the classic missing-return-on-the-error-path bug, which
//     appends payload junk to an error response;
//   - a json.NewEncoder(w).Encode result must be checked on the response
//     path: a dropped encode error leaves the client with a truncated
//     body and the server none the wiser.
//
// The check is CFG-powered: commits in mutually exclusive branches are
// legal, and only events that can actually precede one another on some
// path are paired. It sees through intra-module helpers via the summary
// layer's must-write/must-commit facts — calling a helper that commits on
// every path counts as a commit at the call site, while a helper that
// merely may write (an admission guard that writes only on rejection)
// contributes nothing, so the guard-then-write handler shape stays clean.
var HTTPDiscipline = &Analyzer{
	Name: "httpdiscipline",
	Doc:  "flags double WriteHeader, body writes after a completed error response, and dropped response-path JSON encode errors",
	Run:  runHTTPDiscipline,
}

// httpEventKind classifies what a statement does to the response stream.
type httpEventKind int

const (
	httpNone     httpEventKind = iota
	httpCommit                 // sets the status line (WriteHeader)
	httpWrite                  // writes body bytes (implicitly commits 200 if first)
	httpTerminal               // commits and writes a complete response (http.Error class)
)

// httpEvent is one response-stream event located in a function body.
type httpEvent struct {
	kind httpEventKind
	pos  token.Pos
	what string // display name for pairing diagnostics
	call *ast.CallExpr
}

func runHTTPDiscipline(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkHTTPBody(pass, fn.Body)
		}
	}
}

// checkHTTPBody analyzes one function body (function literals nested in it
// are their own control flows and are analyzed separately).
func checkHTTPBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	writers := responseWriters(info, body)
	if len(writers) > 0 {
		ip := pass.Pkg.Interp()
		// Outside the summary fixpoint it is safe (and necessary) to demand
		// full summaries for helper callees.
		summaryOf := func(f *types.Func) *Summary { return ip.SummaryOf(f) }
		if ip == nil {
			summaryOf = func(*types.Func) *Summary { return nil }
		}
		events := collectHTTPEvents(ip, summaryOf, info, body, func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			if !ok {
				return false
			}
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			return obj != nil && writers[obj]
		})
		reportHTTPEvents(pass, body, events)
		checkDroppedEncode(pass, info, body, writers)
	}
	// Nested literals: each gets its own pass with its own writer set.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			checkHTTPBody(pass, lit.Body)
			return false
		}
		return true
	})
}

// responseWriters collects every object of interface type
// net/http.ResponseWriter referenced in the body — parameters and locals
// alike, so simple aliases track without flow analysis. All of them are
// treated as one response stream: a handler holds one writer, however it
// is spelled.
func responseWriters(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	writers := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil && isResponseWriter(obj.Type()) {
			writers[obj] = true
		}
		return true
	})
	return writers
}

// isResponseWriter reports whether t is the net/http.ResponseWriter
// interface.
func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter"
}

// collectHTTPEvents walks the body (nested literals excluded) and
// classifies every call that touches a tracked writer. summaryOf resolves
// helper callees: the analyzer passes full SummaryOf, while the summary
// fixpoint passes a partial-table lookup so event collection never starts
// a nested SCC walk mid-fixpoint.
func collectHTTPEvents(ip *Interp, summaryOf func(*types.Func) *Summary, info *types.Info, body *ast.BlockStmt, isW func(ast.Expr) bool) []httpEvent {
	var events []httpEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, what := classifyHTTPCall(ip, summaryOf, info, call, isW); kind != httpNone {
			events = append(events, httpEvent{kind: kind, pos: call.Lparen, what: what, call: call})
		}
		return true
	})
	return events
}

// classifyHTTPCall decides whether one call is a response-stream event.
// The stdlib surface is an explicit list — no guessing about unlisted
// functions — and intra-module helpers contribute through their summary's
// must-facts.
func classifyHTTPCall(ip *Interp, summaryOf func(*types.Func) *Summary, info *types.Info, call *ast.CallExpr, isW func(ast.Expr) bool) (httpEventKind, string) {
	// Method calls on the writer itself.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isW(sel.X) {
		switch sel.Sel.Name {
		case "WriteHeader":
			return httpCommit, "WriteHeader"
		case "Write":
			return httpWrite, "Write"
		}
	}
	// json.NewEncoder(w).Encode(v): a body write through an encoder built
	// on the writer.
	if _, ok := encoderOnWriter(info, call, isW); ok {
		return httpWrite, "json.NewEncoder(w).Encode"
	}
	// Stdlib helpers that take the writer as an argument.
	if name, kind, ok := stdHTTPHelper(info, call); ok {
		argIdx := 0 // every listed helper takes the writer first
		if len(call.Args) > argIdx && isW(call.Args[argIdx]) {
			return kind, name
		}
		return httpNone, ""
	}
	// Intra-module helpers: must-facts from the summary layer.
	if ip != nil {
		t := ResolveCall(info, call)
		if t.Static != nil && ip.intraModule(t.Static) {
			if cs := summaryOf(t.Static); cs != nil {
				for i, arg := range call.Args {
					if !isW(arg) {
						continue
					}
					bit := paramBit(t.Static, i)
					commit := cs.HTTPMustCommit&bit != 0
					write := cs.HTTPMustWrite&bit != 0
					name := "call to " + ip.displayName(t.Static)
					switch {
					case commit && write:
						return httpTerminal, name
					case commit:
						return httpCommit, name
					case write:
						return httpWrite, name
					}
				}
			}
		}
	}
	return httpNone, ""
}

// encoderOnWriter matches json.NewEncoder(w).Encode(v) for a tracked w and
// returns the Encode call.
func encoderOnWriter(info *types.Info, call *ast.CallExpr, isW func(ast.Expr) bool) (*ast.CallExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Encode" {
		return nil, false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok || len(inner.Args) == 0 || !isW(inner.Args[0]) {
		return nil, false
	}
	t := ResolveCall(info, inner)
	if t.Static == nil || t.Static.Pkg() == nil {
		return nil, false
	}
	if t.Static.Pkg().Path() != "encoding/json" || t.Static.Name() != "NewEncoder" {
		return nil, false
	}
	return call, true
}

// stdHTTPHelper classifies the explicit stdlib list of writer-first
// response helpers.
func stdHTTPHelper(info *types.Info, call *ast.CallExpr) (string, httpEventKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", httpNone, false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", httpNone, false
	}
	pn, ok := info.Uses[pkg].(*types.PkgName)
	if !ok {
		return "", httpNone, false
	}
	name := sel.Sel.Name
	switch pn.Imported().Path() {
	case "net/http":
		switch name {
		case "Error", "NotFound", "Redirect", "ServeFile", "ServeContent":
			return "http." + name, httpTerminal, true
		}
	case "fmt":
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, httpWrite, true
		}
	case "io":
		switch name {
		case "WriteString", "Copy":
			return "io." + name, httpWrite, true
		}
	}
	return "", httpNone, false
}

// reportHTTPEvents pairs the collected events over the body's CFG and
// reports the illegal orderings: any event before a commit, and a body
// write after a terminal (complete) response. A body write after a plain
// WriteHeader is the normal status-then-body order and stays silent.
func reportHTTPEvents(pass *Pass, body *ast.BlockStmt, events []httpEvent) {
	if len(events) < 2 {
		return
	}
	g := BuildCFG(body)
	blocks := make([]*Block, len(events))
	for i, e := range events {
		blocks[i] = g.BlockOf(e.call)
	}
	precedes := func(a, b int) bool {
		if blocks[a] == nil || blocks[b] == nil {
			return false
		}
		if blocks[a] == blocks[b] {
			return events[a].pos < events[b].pos
		}
		return g.Reaches(blocks[a], blocks[b], nil)
	}
	eventLine := func(i int) (string, int) {
		p := pass.Pkg.Fset.Position(events[i].pos)
		return filepath.Base(p.Filename), p.Line
	}
	for i, e := range events {
		switch e.kind {
		case httpCommit, httpTerminal:
			for j, prior := range events {
				if j == i || !precedes(j, i) {
					continue
				}
				file, line := eventLine(j)
				pass.Reportf(e.pos, "%s commits the response status after %s already %s it (%s:%d); net/http drops the second status",
					e.what, prior.what, commitVerb(prior.kind), file, line)
				break
			}
		case httpWrite:
			for j, prior := range events {
				if j == i || prior.kind != httpTerminal || !precedes(j, i) {
					continue
				}
				file, line := eventLine(j)
				pass.Reportf(e.pos, "%s writes body bytes after %s completed the response (%s:%d); missing return on the error path?",
					e.what, prior.what, file, line)
				break
			}
		}
	}
}

// commitVerb phrases how the earlier event claimed the status line.
func commitVerb(k httpEventKind) string {
	if k == httpWrite {
		return "implicitly committed"
	}
	return "committed"
}

// checkDroppedEncode flags json.NewEncoder(w).Encode(v) calls whose error
// result is discarded — a bare expression statement or an all-blank
// assignment.
func checkDroppedEncode(pass *Pass, info *types.Info, body *ast.BlockStmt, writers map[types.Object]bool) {
	isW := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		return obj != nil && writers[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var call *ast.CallExpr
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, _ = stmt.X.(*ast.CallExpr)
		case *ast.AssignStmt:
			if len(stmt.Rhs) == 1 && allBlank(stmt.Lhs) {
				call, _ = stmt.Rhs[0].(*ast.CallExpr)
			}
		}
		if call == nil {
			return true
		}
		if enc, ok := encoderOnWriter(info, call, isW); ok {
			pass.Reportf(enc.Lparen, "json encode error dropped on the response path; check it (the client may receive a truncated body)")
		}
		return true
	})
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// computeHTTPFacts fills the summary's per-parameter must-write and
// must-commit bits for http.ResponseWriter parameters: a bit is set when
// every path from entry to exit passes through a response event on that
// parameter. Events in the entry block trivially dominate; otherwise the
// check is CFG reachability with event blocks removed.
func (ip *Interp) computeHTTPFacts(s *Summary, info *types.Info, decl *ast.FuncDecl) {
	params := paramObjects(info, decl)
	for i, p := range params {
		if p == nil || i >= 64 || !isResponseWriter(p.Type()) {
			continue
		}
		events := collectHTTPEvents(ip, func(f *types.Func) *Summary { return ip.summaries[f] },
			info, decl.Body, func(e ast.Expr) bool {
				id, ok := ast.Unparen(e).(*ast.Ident)
				if !ok {
					return false
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				return obj == p
			})
		if len(events) == 0 {
			continue
		}
		g := BuildCFG(decl.Body)
		if mustPass(g, events, func(k httpEventKind) bool { return k == httpCommit || k == httpTerminal }) {
			s.HTTPMustCommit |= 1 << uint(i)
		}
		if mustPass(g, events, func(k httpEventKind) bool { return k == httpWrite || k == httpTerminal }) {
			s.HTTPMustWrite |= 1 << uint(i)
		}
	}
}

// mustPass reports whether every entry→exit path hits a block holding an
// event of the selected kinds.
func mustPass(g *CFG, events []httpEvent, want func(httpEventKind) bool) bool {
	eventBlocks := map[*Block]bool{}
	any := false
	for _, e := range events {
		if !want(e.kind) {
			continue
		}
		any = true
		if blk := g.BlockOf(e.call); blk != nil {
			if blk == g.Entry {
				// Entry-block statements run on every execution.
				return true
			}
			eventBlocks[blk] = true
		}
	}
	if !any {
		return false
	}
	return !g.Reaches(g.Entry, g.Exit, func(b *Block) bool { return eventBlocks[b] })
}
