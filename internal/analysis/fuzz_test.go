package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// FuzzDirectiveText drives the bbvet:allow comment parser with arbitrary
// comment text: it must never panic, must only accept comments that really
// carry the directive, and its payload must be stable under the
// reconstruct-and-reparse round trip.
func FuzzDirectiveText(f *testing.F) {
	for _, seed := range []string{
		"//bbvet:allow floatcmp deliberate exact tie-break",
		"// bbvet:allow maprange order does not reach output",
		"//bbvet:allow",
		"//bbvet:allow  floatcmp \t tabs and  runs",
		"// not a directive",
		"//bbvet:allowfloatcmp smashed prefix",
		"/* bbvet:allow floatcmp block form */",
		"//bbvet:allow httpdiscipline reason with trailing space ",
		"//", "", "bbvet:allow bare", "//\x00bbvet:allow nul",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, comment string) {
		text, ok := directiveText(comment)
		if !ok {
			if text != "" {
				t.Errorf("directiveText(%q) rejected but returned payload %q", comment, text)
			}
			return
		}
		if text != strings.TrimSpace(text) {
			t.Errorf("directiveText(%q) payload %q is not trimmed", comment, text)
		}
		// Round trip: re-spelling the directive around the extracted
		// payload parses back to the same payload.
		re, ok2 := directiveText("//bbvet:allow " + text)
		if !ok2 || re != text {
			t.Errorf("round trip of payload %q: got %q, ok=%v", text, re, ok2)
		}
	})
}

// FuzzCollectAllows injects arbitrary single-line directive payloads into a
// real parsed file and runs the suppression collector over it: no payload
// may panic it, a well-formed known-analyzer directive must register a
// suppression, and a payload without a reason must surface as malformed.
func FuzzCollectAllows(f *testing.F) {
	for _, seed := range []string{
		"floatcmp deliberate exact compare",
		"nosuchanalyzer some reason",
		"floatcnp typo repair candidate",
		"",
		"floatcmp",
		"slogfield reason with  interior   runs",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload string) {
		if strings.ContainsAny(payload, "\r\n\x00") {
			t.Skip("not a single-line comment payload")
		}
		src := "package p\n\nfunc f() int {\n\treturn 1 //bbvet:allow " + payload + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip("payload broke the comment lexically")
		}
		s := collectAllows(&Package{Fset: fset, Files: []*ast.File{file}})
		fields := strings.Fields(payload)
		known := false
		if len(fields) > 0 {
			for _, a := range All() {
				if a.Name == fields[0] {
					known = true
					break
				}
			}
		}
		switch {
		case len(fields) >= 2 && known:
			if len(s.byFileLine["fuzz.go"]) == 0 {
				t.Errorf("well-formed directive %q registered no suppression", payload)
			}
			if len(s.malformed) != 0 {
				t.Errorf("well-formed directive %q reported malformed: %v", payload, s.malformed)
			}
		case len(fields) < 2:
			if len(s.malformed) == 0 {
				t.Errorf("reasonless directive %q not reported as malformed", payload)
			}
		default:
			// Unknown analyzer with a reason: reported, never suppressing.
			if len(s.malformed) == 0 {
				t.Errorf("unknown-analyzer directive %q not reported", payload)
			}
			if len(s.byFileLine["fuzz.go"]) != 0 {
				t.Errorf("unknown-analyzer directive %q registered a suppression", payload)
			}
		}
	})
}
