package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the dataflow engine: it lowers one
// function body (never crossing into nested function literals — those are
// separate control flows) into basic blocks with explicit branch, loop,
// defer, and abnormal-exit edges. The analyzers that need to reason about
// *paths* — ctxflow, leakcheck, hotloop — are built on it, where the older
// AST-pattern analyzers only reason about expression shapes.
//
// The builder is syntax-directed, so loop membership is known exactly at
// construction time: every block records how many for/range loops enclose
// it (LoopDepth). Backward gotos can form loops the depth does not count;
// they are rare enough in this codebase (zero occurrences) that the
// conservative choice — treating them as plain edges — is acceptable and
// documented here.

// A Block is one basic block: a maximal run of statements with a single
// entry at the top, plus the control expression of any branch that ends it.
type Block struct {
	// Index is the block's position in CFG.Blocks, usable as a dense key.
	Index int
	// Kind describes why the block exists, for debugging and tests.
	Kind string
	// Nodes holds the statements and control expressions of the block in
	// execution order. Control headers (an if/switch condition, a range
	// expression) appear in the block that evaluates them.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks (the reverse of Succs).
	Preds []*Block
	// LoopDepth is the number of for/range statements enclosing the block;
	// a block with LoopDepth > 0 executes once per iteration of some loop.
	LoopDepth int
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the unique entry block; Exit is the unique exit block that
	// every return and normal fall-off-the-end path reaches.
	Entry, Exit *Block
	// Blocks lists every block, Entry first and Exit last.
	Blocks []*Block
	// Defers collects the function's defer statements in source order.
	// Deferred calls run on every path that reaches Exit (and on panics),
	// so a path property established by a defer holds function-wide.
	Defers []*ast.DeferStmt
}

// BuildCFG lowers a function body into a control-flow graph. body may be
// nil (a declared function without a body), yielding a trivial Entry→Exit
// graph. Function literals inside the body are treated as opaque values:
// their bodies get their own CFG when the caller asks for one.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelInfo{},
	}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = &Block{Kind: "exit"}
	b.cur = b.cfg.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit)
	b.resolveGotos()
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// labelInfo tracks one label's targets while the builder is in scope.
type labelInfo struct {
	// block is the labeled statement's block (the goto target).
	block *Block
	// breakTo / continueTo are set while the labeled loop/switch is being
	// built, for `break L` / `continue L`.
	breakTo, continueTo *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, break, panic) until a new block starts.
	cur       *Block
	loopDepth int
	// breakTo / continueTo are the innermost unlabeled break/continue
	// targets (nil outside loops and switches).
	breakTo, continueTo *Block
	labels              map[string]*labelInfo
	gotos               []pendingGoto
	// curLabel is the label attached to the statement about to be built,
	// so `for`/`switch` register their labeled break/continue targets.
	curLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind, LoopDepth: b.loopDepth}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// link records an edge a→b.
func link(a, c *Block) {
	a.Succs = append(a.Succs, c)
	c.Preds = append(c.Preds, a)
}

// jump ends the current block with an edge to target (no-op when the
// current path already terminated).
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		link(b.cur, target)
	}
	b.cur = nil
}

// startBlock begins a new current block, linking it from the previous one
// when the previous path falls through.
func (b *cfgBuilder) startBlock(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		link(b.cur, blk)
	}
	b.cur = blk
	return blk
}

// add appends a node to the current block, starting one if the previous
// statement terminated (such code is unreachable, but it still gets blocks
// so positions remain addressable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than the one a label is attached to clears the
	// pending label.
	label := b.curLabel
	b.curLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		// The labeled statement starts its own block so gotos can target it.
		blk := b.startBlock("label " + s.Label.Name)
		li := &labelInfo{block: blk}
		b.labels[s.Label.Name] = li
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminatingCall(s.X) {
			b.jump(b.cfg.Exit)
		}
	default:
		// Assignments, declarations, sends, inc/dec, go, empty: straight-line.
		b.add(s)
	}
}

// branch lowers break/continue/goto/fallthrough. fallthrough is handled by
// switchBody (it needs the next case's block), so it is skipped here.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		target := b.breakTo
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.breakTo
			}
		}
		if target != nil {
			b.jump(target)
		} else {
			b.cur = nil // malformed code; terminate the path
		}
	case token.CONTINUE:
		target := b.continueTo
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li.continueTo
			}
		}
		if target != nil {
			b.jump(target)
		} else {
			b.cur = nil
		}
	case token.GOTO:
		if s.Label != nil && b.cur != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// switchBody links the edge; keep the path open so it can.
	}
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if li := b.labels[g.label]; li != nil {
			link(g.from, li.block)
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond) // add guarantees a current block
	cond := b.cur
	after := b.newBlock("if-after")

	b.cur = b.newBlock("if-then")
	link(cond, b.cur)
	b.stmtList(s.Body.List)
	b.jump(after)

	if s.Else != nil {
		b.cur = b.newBlock("if-else")
		link(cond, b.cur)
		b.stmt(s.Else)
		b.jump(after)
	} else {
		link(cond, after)
	}
	b.cur = after
}

// loopTargets installs break/continue targets (and the label's, when the
// loop is labeled) and returns a restore function.
func (b *cfgBuilder) loopTargets(label string, breakTo, continueTo *Block) func() {
	prevB, prevC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	if label != "" {
		if li := b.labels[label]; li != nil {
			li.breakTo, li.continueTo = breakTo, continueTo
		}
	}
	return func() { b.breakTo, b.continueTo = prevB, prevC }
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	entry := b.cur

	b.loopDepth++
	head := b.newBlock("for-head")
	if entry != nil {
		link(entry, head)
	}
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for-post")
		post.Nodes = append(post.Nodes, s.Post)
		link(post, head)
	}
	continueTo := head
	if post != nil {
		continueTo = post
	}

	body := b.newBlock("for-body")
	link(head, body)
	b.loopDepth--
	after := b.newBlock("for-after")
	b.loopDepth++
	if s.Cond != nil {
		link(head, after) // condition false exits the loop
	}

	restore := b.loopTargets(label, after, continueTo)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(continueTo)
	restore()
	b.loopDepth--
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	entry := b.cur

	b.loopDepth++
	head := b.newBlock("range-head")
	if entry != nil {
		link(entry, head)
	}
	// The RangeStmt node itself sits in the head so analyzers can find the
	// ranged expression with the head's loop depth.
	head.Nodes = append(head.Nodes, s)

	body := b.newBlock("range-body")
	link(head, body)
	b.loopDepth--
	after := b.newBlock("range-after")
	b.loopDepth++
	link(head, after) // every range loop can be exhausted

	restore := b.loopTargets(label, after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	restore()
	b.loopDepth--
	b.cur = after
}

// switchBody lowers the clause list shared by switch and type switch.
// allowFallthrough distinguishes expression switches (type switches cannot
// fall through).
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, allowFallthrough bool) {
	head := b.cur
	if head == nil {
		head = b.startBlock("switch-head")
	}
	after := b.newBlock("switch-after")

	// A switch is a break target but not a continue target; passing the
	// enclosing continueTo through keeps `continue` inside a case legal.
	restore := b.loopTargets(label, after, b.continueTo)

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock("case")
		link(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
	}
	if !hasDefault {
		link(head, after) // no case matched
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if allowFallthrough && endsInFallthrough(cc.Body) && i+1 < len(clauses) {
			b.jump(blocks[i+1])
		} else {
			b.jump(after)
		}
	}
	restore()
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.startBlock("select-head")
	}
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock("select-after")

	restore := b.loopTargets(label, after, b.continueTo)
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock("comm")
		link(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.jump(after)
	}
	restore()
	b.cur = after
}

// endsInFallthrough reports whether a case body's last statement is
// fallthrough.
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// isTerminatingCall recognizes calls that never return, syntactically:
// panic(...) and os.Exit(...). The check is name-based because the builder
// runs without type information in tests; shadowing `panic` would be
// perverse enough to ignore.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// Reaches reports whether to is reachable from from along CFG edges,
// without passing through any block for which blocked returns true (the
// blocked test is not applied to from and to themselves). It is the path
// primitive behind leakcheck's "a join must lie on every path to exit".
func (g *CFG) Reaches(from, to *Block, blocked func(*Block) bool) bool {
	seen := make([]bool, len(g.Blocks))
	var dfs func(*Block) bool
	dfs = func(blk *Block) bool {
		if blk == to {
			return true
		}
		if seen[blk.Index] {
			return false
		}
		seen[blk.Index] = true
		if blk != from && blocked != nil && blocked(blk) {
			return false
		}
		for _, s := range blk.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// BlockOf returns the block carrying n: the block whose Nodes contain n
// directly, or failing that the block whose smallest recorded node spans
// n's position (so an expression inside a recorded statement resolves to
// that statement's block, not to an enclosing composite header).
func (g *CFG) BlockOf(n ast.Node) *Block {
	var best *Block
	var bestSpan token.Pos = -1
	for _, blk := range g.Blocks {
		for _, m := range blk.Nodes {
			if m == n {
				return blk
			}
			if m.Pos() <= n.Pos() && n.End() <= m.End() {
				if span := m.End() - m.Pos(); bestSpan < 0 || span < bestSpan {
					best, bestSpan = blk, span
				}
			}
		}
	}
	return best
}
