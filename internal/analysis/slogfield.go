package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SlogField enforces structured-logging discipline on log/slog call sites:
//
//   - the message must be a constant string — dynamic data belongs in
//     key/value fields, where it stays machine-parseable and the message
//     stays greppable;
//   - the trailing arguments must form well-paired fields: slog.Attr
//     values consume one slot, everything else is a string key followed by
//     a value, and a dangling key silently logs as !BADKEY at runtime;
//   - a key-position argument must be a string (or an Attr).
//
// The check is interprocedural through logging helpers: a module function
// that forwards a parameter as the slog message (or its variadic
// parameter as the field list) inherits the same obligations at its own
// call sites — wrapping slog.Info in a helper does not launder a dynamic
// message, and inside the helper the forwarded parameter itself is not
// flagged.
var SlogField = &Analyzer{
	Name: "slogfield",
	Doc:  "flags non-constant slog messages, unpaired key/value fields, and non-string keys, through logging helpers",
	Run:  runSlogField,
}

func runSlogField(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkSlogCall(pass, call, enclosingFuncParams(pass, f, call.Pos()))
			return true
		})
	}
}

// slogCallShape describes where a call's message and field arguments sit.
type slogCallShape struct {
	msgIdx int // index of the message argument, -1 if none
	kvIdx  int // index where key/value fields start, -1 if none
	name   string
}

// slogDirectShape classifies direct log/slog calls: the package-level
// leveled functions, their *Context variants, Log, and the same methods on
// slog.Logger.
func slogDirectShape(info *types.Info, call *ast.CallExpr) (slogCallShape, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return slogCallShape{}, false
	}
	var fn *types.Func
	if obj, ok := info.Uses[sel.Sel].(*types.Func); ok {
		fn = obj
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "log/slog" {
		return slogCallShape{}, false
	}
	name := fn.Name()
	switch name {
	case "Info", "Debug", "Warn", "Error":
		return slogCallShape{msgIdx: 0, kvIdx: 1, name: "slog." + name}, true
	case "InfoContext", "DebugContext", "WarnContext", "ErrorContext":
		return slogCallShape{msgIdx: 1, kvIdx: 2, name: "slog." + name}, true
	case "Log":
		return slogCallShape{msgIdx: 2, kvIdx: 3, name: "slog.Log"}, true
	case "With":
		return slogCallShape{msgIdx: -1, kvIdx: 0, name: "slog.With"}, true
	}
	return slogCallShape{}, false
}

// checkSlogCall applies the message and pairing checks to one call —
// direct slog calls and calls to module logging helpers alike. params are
// the enclosing function's parameter objects, used to recognize forwarded
// parameters (the helper's own obligation lives at its call sites).
func checkSlogCall(pass *Pass, call *ast.CallExpr, params []types.Object) {
	info := pass.Pkg.Info
	shape, ok := slogDirectShape(info, call)
	if !ok {
		shape, ok = slogHelperShape(pass, call)
	}
	if !ok {
		return
	}
	if shape.msgIdx >= 0 && shape.msgIdx < len(call.Args) {
		msg := call.Args[shape.msgIdx]
		if !isConstString(info, msg) && !isParamForward(info, msg, params) {
			pass.Reportf(msg.Pos(), "non-constant message in %s call; use a constant message and carry the data in key/value fields", shape.name)
		}
	}
	if shape.kvIdx >= 0 && shape.kvIdx < len(call.Args) {
		fields := call.Args[shape.kvIdx:]
		if call.Ellipsis.IsValid() {
			// kvs... forwarding: pairing is the callee's obligation when the
			// slice is built here, and this site's obligation only for
			// literal fields — a spread slice has unknown shape.
			return
		}
		checkSlogFields(pass, shape.name, fields, params)
	}
}

// checkSlogFields validates the key/value tail of a slog call.
func checkSlogFields(pass *Pass, name string, fields []ast.Expr, params []types.Object) {
	info := pass.Pkg.Info
	for i := 0; i < len(fields); {
		f := fields[i]
		if isSlogAttr(info, f) {
			i++
			continue
		}
		if isParamForward(info, f, params) && i == len(fields)-1 {
			// A forwarded variadic parameter in the last slot: the shape is
			// the call sites' obligation (slogHelperShape records the fact).
			return
		}
		if !isStringExpr(info, f) {
			pass.Reportf(f.Pos(), "%s key is not a string (type %s); keys must be string constants or slog.Attr values", name, typeName(info, f))
			i++
			continue
		}
		if i == len(fields)-1 {
			pass.Reportf(f.Pos(), "odd number of field arguments to %s: key %s has no value and logs as !BADKEY", name, exprText(pass.Pkg.Fset, f))
			return
		}
		i += 2
	}
}

// slogHelperShape classifies calls to intra-module logging helpers via the
// summary layer's forwarded-parameter facts.
func slogHelperShape(pass *Pass, call *ast.CallExpr) (slogCallShape, bool) {
	ip := pass.Pkg.Interp()
	if ip == nil {
		return slogCallShape{}, false
	}
	t := ResolveCall(pass.Pkg.Info, call)
	if t.Static == nil || !ip.intraModule(t.Static) {
		return slogCallShape{}, false
	}
	s := ip.SummaryOf(t.Static)
	if s == nil || (s.SlogMsgParam == 0 && s.SlogKVParam == 0) {
		return slogCallShape{}, false
	}
	return slogCallShape{
		msgIdx: s.SlogMsgParam - 1,
		kvIdx:  s.SlogKVParam - 1,
		name:   "logging helper " + ip.displayName(t.Static),
	}, true
}

// computeSlogFacts records which of decl's parameters flow into slog
// message or field positions — directly or through another helper whose
// facts are already in the (possibly partial) summary table. The facts
// only ever move from 0 to a fixed index, so the SCC fixpoint converges.
func (ip *Interp) computeSlogFacts(s *Summary, info *types.Info, decl *ast.FuncDecl) {
	params := paramObjects(info, decl)
	if len(params) == 0 {
		return
	}
	paramIndex := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		for i, p := range params {
			if p != nil && p == obj {
				return i
			}
		}
		return -1
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		shape, ok := slogDirectShape(info, call)
		if !ok {
			// Helper-to-helper forwarding through the partial table.
			t := ResolveCall(info, call)
			if t.Static == nil || !ip.intraModule(t.Static) {
				return true
			}
			cs := ip.summaries[t.Static]
			if cs == nil || (cs.SlogMsgParam == 0 && cs.SlogKVParam == 0) {
				return true
			}
			shape = slogCallShape{msgIdx: cs.SlogMsgParam - 1, kvIdx: cs.SlogKVParam - 1}
		}
		if shape.msgIdx >= 0 && shape.msgIdx < len(call.Args) && s.SlogMsgParam == 0 {
			if i := paramIndex(call.Args[shape.msgIdx]); i >= 0 {
				s.SlogMsgParam = i + 1
			}
		}
		if shape.kvIdx >= 0 && shape.kvIdx < len(call.Args) && s.SlogKVParam == 0 {
			last := call.Args[len(call.Args)-1]
			if call.Ellipsis.IsValid() || len(call.Args)-1 == shape.kvIdx {
				if i := paramIndex(last); i >= 0 && isVariadicAnyParam(params[i]) {
					s.SlogKVParam = i + 1
				}
			}
		}
		return true
	})
}

// isVariadicAnyParam reports whether the parameter is a ...any slot (its
// declared type is []any / []interface{}).
func isVariadicAnyParam(p types.Object) bool {
	if p == nil {
		return false
	}
	sl, ok := p.Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := sl.Elem().Underlying().(*types.Interface)
	return ok && iface.NumMethods() == 0
}

// enclosingFuncParams resolves the parameter objects of the innermost
// function declaration containing pos (function literals are treated as
// having no forwardable parameters — helper facts are declaration-level).
func enclosingFuncParams(pass *Pass, f *ast.File, pos token.Pos) []types.Object {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if fn.Body.Pos() <= pos && pos < fn.Body.End() {
			return paramObjects(pass.Pkg.Info, fn)
		}
	}
	return nil
}

// isConstString reports whether e is a compile-time constant string.
func isConstString(info *types.Info, e ast.Expr) bool {
	v := info.Types[e].Value
	return v != nil && v.Kind() == constant.String
}

// isParamForward reports whether e is one of the enclosing function's
// parameters.
func isParamForward(info *types.Info, e ast.Expr, params []types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	for _, p := range params {
		if p != nil && p == obj {
			return true
		}
	}
	return false
}

// isSlogAttr reports whether the expression's type is log/slog.Attr.
func isSlogAttr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "log/slog" && obj.Name() == "Attr"
}

// isStringExpr reports whether the expression has a string type.
func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// typeName renders an expression's type for diagnostics.
func typeName(info *types.Info, e ast.Expr) string {
	t := info.Types[e].Type
	if t == nil {
		return "unknown"
	}
	return t.String()
}
