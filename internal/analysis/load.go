package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
// Test files (_test.go) are excluded from type-checking: the invariants
// bbvet enforces are about production behavior, and tests legitimately use
// exact comparisons and discard results. They are still parsed — without
// type information — into TestFiles, for the analyzers that cross-check
// what tests reference against what production code declares (faultsite).
type Package struct {
	Path  string // import path ("repro/internal/linalg")
	Dir   string // absolute directory
	Name  string // package name from the package clauses
	Fset  *token.FileSet
	Files []*ast.File
	// TestFiles are the package's _test.go files, parsed but not
	// type-checked (external foo_test packages included).
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info

	loader *Loader
}

// LoadImport loads another intra-module package through the same loader,
// so an analyzer can consult declarations outside the package under
// analysis (faultsite resolving the fault-site registry).
func (p *Package) LoadImport(path string) (*Package, error) {
	if p.loader == nil {
		return nil, fmt.Errorf("analysis: package %s has no loader", p.Path)
	}
	return p.loader.load(path)
}

// A Loader parses and type-checks packages of one module using only the
// standard library: intra-module imports are resolved against the module
// directory tree and everything else goes through the source go/importer
// (which type-checks the standard library from GOROOT source). Loaded
// packages are cached, so a whole-repo run type-checks each package once.
type Loader struct {
	ModPath string // module path from go.mod
	ModDir  string // absolute module root
	Fset    *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import cycle guard
	interp  *Interp             // lazily built interprocedural index
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func findModule(dir string) (string, string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
		dir = parent
	}
}

// importPath maps a directory inside the module to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// dirOf maps an intra-module import path back to its directory.
func (l *Loader) dirOf(path string) string {
	if path == l.ModPath {
		return l.ModDir
	}
	rel := strings.TrimPrefix(path, l.ModPath+"/")
	return filepath.Join(l.ModDir, filepath.FromSlash(rel))
}

// LoadDir parses and type-checks the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// load returns the cached package for an intra-module import path, parsing
// and type-checking it on first use.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
		return nil, fmt.Errorf("analysis: package %s is outside module %s", path, l.ModPath)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirOf(path)
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	testNames, err := goTestFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 && len(testNames) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, loader: l}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if f.Name.Name != pkg.Name {
			return nil, fmt.Errorf("analysis: %s contains packages %s and %s", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range testNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}
	if len(names) == 0 {
		// Test-only package: there is nothing to type-check, but the parsed
		// test files still feed the analyzers that read them (faultsite) and
		// the suppression scanner. The synthetic types.Package keeps every
		// Package field non-nil so analyzers need no special casing.
		pkg.Name = strings.TrimSuffix(pkg.TestFiles[0].Name.Name, "_test")
		pkg.Types = types.NewPackage(path, pkg.Name)
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter routes intra-module imports to the loader and everything
// else to the stdlib source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(im)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// goSourceFiles lists the non-test .go files of dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// goTestFiles lists the _test.go files of dir, sorted.
func goTestFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves bbvet's package patterns relative to dir into
// package directories. Supported forms are Go-style: a plain directory
// ("./internal/linalg"), or a tree pattern ending in "/..." that expands to
// every package directory beneath it, skipping testdata, hidden, and
// underscore-prefixed directories exactly as the go tool does.
func ExpandPatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(dir, filepath.FromSlash(rest))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				files, err := goSourceFiles(path)
				if err != nil {
					return err
				}
				if len(files) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(dir, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}
