package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// This file is the suggested-fix half of the diagnostic surface. A
// diagnostic may carry one or more SuggestedFixes: a human-readable label
// plus textual edits precise enough for a driver to apply mechanically.
// Only analyzers whose remedy is genuinely mechanical emit fixes —
// floatcmp (tolerance comparison), maprange (sorted-keys loop),
// statuscheck (assign-and-check), and the bbvet:allow directive scanner
// (typo repair via the same Levenshtein machinery that powers
// did-you-mean). cmd/bbvet's -fix mode applies non-overlapping edits
// atomically and re-runs the analyzers to verify convergence; -diff
// renders them as unified diffs without writing.

// A TextEdit replaces the half-open byte range [Start, End) of File with
// NewText. Offsets are file offsets (token.Position.Offset), so a driver
// can apply edits without a FileSet; Start == End inserts.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	// NewText is the replacement text. It need not be pretty: the applier
	// runs the whole file through gofmt after splicing, so edits only have
	// to be syntactically correct.
	NewText string `json:"newText"`
}

// A SuggestedFix is one mechanical remedy for a diagnostic. All of its
// edits are applied together or not at all (a fix whose edit conflicts
// with an already-accepted one is dropped whole).
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Edit builds a TextEdit replacing the source range [from, to) with text,
// resolving positions through the package's FileSet.
func (p *Pass) Edit(from, to token.Pos, text string) TextEdit {
	return editAt(p.Pkg.Fset, from, to, text)
}

// editAt is Edit for callers that hold a FileSet but no Pass (the
// directive scanner).
func editAt(fset *token.FileSet, from, to token.Pos, text string) TextEdit {
	f := fset.Position(from)
	t := fset.Position(to)
	return TextEdit{File: f.Filename, Start: f.Offset, End: t.Offset, NewText: text}
}

// ReportfFix records a finding that carries a mechanical remedy.
func (p *Pass) ReportfFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    []SuggestedFix{fix},
	})
}

// exprText renders an expression exactly as the printer would, for
// splicing into replacement text. The rendering is a pure function of the
// AST, so fixes are bit-identical across runs.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// importsPackage reports whether the file already imports path.
func importsPackage(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// importEdit builds the insertion that adds the missing packages of paths
// to the file's imports, or a zero TextEdit when nothing is missing. The
// insertion goes directly after the package clause as a standalone import
// declaration — gofmt keeps separate import declarations separate, so the
// result is format-stable. Identical insertions from several fixes in the
// same file deduplicate in the applier.
func importEdit(fset *token.FileSet, f *ast.File, paths ...string) (TextEdit, bool) {
	var missing []string
	for _, p := range paths {
		if !importsPackage(f, p) {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return TextEdit{}, false
	}
	sort.Strings(missing)
	var b strings.Builder
	b.WriteString("\n")
	if len(missing) == 1 {
		fmt.Fprintf(&b, "\nimport %q", missing[0])
	} else {
		b.WriteString("\nimport (")
		for _, p := range missing {
			fmt.Fprintf(&b, "\n\t%q", p)
		}
		b.WriteString("\n)")
	}
	return editAt(fset, f.Name.End(), f.Name.End(), b.String()), true
}

// enclosingFile finds the file of the package containing pos.
func enclosingFile(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	for _, f := range pkg.TestFiles {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
