package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// statusFuncs are the result-bearing entry points whose outcome must never
// be dropped: the SOCP/LP/core solvers report infeasibility and numerical
// breakdown through Status values and errors, and a factorization that
// failed leaves its workspace unusable.
var statusFuncs = map[string]bool{
	"Solve":             true,
	"SolveContext":      true,
	"Factorize":         true,
	"FactorizeQuasiDef": true,
	"RunSweep":          true,
	"SweepBufferCaps":   true,
	"ParetoFrontier":    true,
	"BuildProblem":      true,
	"Verify":            true,
	// bbserve entry points: a dropped Sweep loses per-point failures, and a
	// dropped Drain hides that the drain bound expired and solves were
	// force-canceled.
	"Sweep": true,
	"Drain": true,
}

// StatusCheck flags call sites that discard the Status or error results of
// the solver entry points — a bare call statement, or an assignment that
// sends every Status/error result to the blank identifier. Only calls into
// this module are checked: stdlib functions that happen to share a name
// (e.g. flag.FlagSet's parse helpers) are not the solver's contract.
var StatusCheck = &Analyzer{
	Name: "statuscheck",
	Doc:  "flags dropped Status/error results of Solve, Factorize, and the core entry points",
	Run:  runStatusCheck,
}

func runStatusCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, sig := statusCallee(pass, call); sig != nil && hasStatusResult(sig) {
						pass.Reportf(call.Lparen, "result of %s dropped; check its Status/error", name)
					}
				}
			case *ast.AssignStmt:
				checkStatusAssign(pass, n)
			}
			return true
		})
	}
}

// checkStatusAssign flags `a, _ := Solve(...)`-style assignments where all
// of the call's Status/error results land in blank identifiers.
func checkStatusAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, sig := statusCallee(pass, call)
	if sig == nil {
		return
	}
	results := sig.Results()
	if len(as.Lhs) != results.Len() {
		return
	}
	dropped := false
	for i := 0; i < results.Len(); i++ {
		if !isStatusOrError(results.At(i).Type()) {
			continue
		}
		id, blank := as.Lhs[i].(*ast.Ident)
		if blank && id.Name == "_" {
			dropped = true
		} else {
			return // at least one Status/error result is kept
		}
	}
	if dropped {
		pass.Reportf(call.Lparen, "Status/error result of %s assigned to _; check it", name)
	}
}

// statusCallee resolves a call to one of the watched entry points declared
// inside this module, returning its display name and signature.
func statusCallee(pass *Pass, call *ast.CallExpr) (string, *types.Signature) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation, e.g. RunSweep[T](...)
		if sub, ok := fun.X.(*ast.Ident); ok {
			id = sub
		} else if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil || !statusFuncs[id.Name] {
		return "", nil
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", nil
	}
	modPath := moduleOf(pass.Pkg.Path)
	if moduleOf(obj.Pkg().Path()) != modPath {
		return "", nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	return id.Name, sig
}

// moduleOf returns the first path element — enough to scope the check to
// this module, whose packages all share the "repro" root (fixture packages
// included).
func moduleOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// hasStatusResult reports whether the signature returns an error or a
// Status-typed value (directly or inside a returned struct pointer is out
// of scope — the flagged entry points all return them directly).
func hasStatusResult(sig *types.Signature) bool {
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isStatusOrError(results.At(i).Type()) {
			return true
		}
	}
	return false
}

func isStatusOrError(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Status" {
		return true
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
