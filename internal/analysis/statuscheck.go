package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// statusFuncs are the result-bearing entry points whose outcome must never
// be dropped: the SOCP/LP/core solvers report infeasibility and numerical
// breakdown through Status values and errors, and a factorization that
// failed leaves its workspace unusable.
var statusFuncs = map[string]bool{
	"Solve":             true,
	"SolveContext":      true,
	"Factorize":         true,
	"FactorizeQuasiDef": true,
	"RunSweep":          true,
	"SweepBufferCaps":   true,
	"ParetoFrontier":    true,
	"BuildProblem":      true,
	"Verify":            true,
	// bbserve entry points: a dropped Sweep loses per-point failures, and a
	// dropped Drain hides that the drain bound expired and solves were
	// force-canceled.
	"Sweep": true,
	"Drain": true,
}

// StatusCheck flags call sites that discard the Status or error results of
// the solver entry points — a bare call statement, or an assignment that
// sends every Status/error result to the blank identifier. Only calls into
// this module are checked: stdlib functions that happen to share a name
// (e.g. flag.FlagSet's parse helpers) are not the solver's contract.
var StatusCheck = &Analyzer{
	Name: "statuscheck",
	Doc:  "flags dropped Status/error results of Solve, Factorize, and the core entry points",
	Run:  runStatusCheck,
}

func runStatusCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, sig := statusCallee(pass, call); sig != nil && hasStatusResult(sig) {
						if fix, ok := assignAndCheckFix(pass, f, n, call, sig); ok {
							pass.ReportfFix(call.Lparen, fix, "result of %s dropped; check its Status/error", name)
						} else {
							pass.Reportf(call.Lparen, "result of %s dropped; check its Status/error", name)
						}
					}
				}
			case *ast.AssignStmt:
				checkStatusAssign(pass, n)
			}
			return true
		})
	}
}

// assignAndCheckFix builds the mechanical assign-and-check rewrite of a
// bare dropped-result call:
//
//	Solve(cfg)   →   if _, err := Solve(cfg); err != nil {
//	                     return err
//	                 }
//
// It applies only when the rewrite provably compiles: the callee's last
// result is an error, and the enclosing function returns exactly one
// result of type error (so `return err` type-checks). The splice is not
// pretty-printed — the -fix applier gofmts the whole file afterwards.
func assignAndCheckFix(pass *Pass, f *ast.File, stmt *ast.ExprStmt, call *ast.CallExpr, sig *types.Signature) (SuggestedFix, bool) {
	results := sig.Results()
	if results.Len() == 0 || !types.Identical(results.At(results.Len()-1).Type(), types.Universe.Lookup("error").Type()) {
		return SuggestedFix{}, false
	}
	enc := enclosingFuncResults(pass, f, stmt.Pos())
	if enc == nil || enc.Len() != 1 || !types.Identical(enc.At(0).Type(), types.Universe.Lookup("error").Type()) {
		return SuggestedFix{}, false
	}
	lhs := make([]string, results.Len())
	for i := range lhs {
		lhs[i] = "_"
	}
	lhs[len(lhs)-1] = "err"
	text := fmt.Sprintf("if %s := %s; err != nil {\nreturn err\n}",
		strings.Join(lhs, ", "), exprText(pass.Pkg.Fset, call))
	return SuggestedFix{
		Message: "assign the results and check the error",
		Edits:   []TextEdit{pass.Edit(stmt.Pos(), stmt.End(), text)},
	}, true
}

// enclosingFuncResults returns the result tuple of the innermost function
// declaration or literal containing pos, or nil when there is none (or it
// has no declared results).
func enclosingFuncResults(pass *Pass, f *ast.File, pos token.Pos) *types.Tuple {
	info := pass.Pkg.Info
	var best *types.Tuple
	var bestSpan token.Pos = -1
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || n.End() <= pos {
			return n == f // keep walking only from the root's children inward
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
				if span := fn.End() - fn.Pos(); bestSpan < 0 || span < bestSpan {
					best, bestSpan = obj.Type().(*types.Signature).Results(), span
				}
			}
		case *ast.FuncLit:
			if sig, ok := info.Types[fn].Type.(*types.Signature); ok {
				if span := fn.End() - fn.Pos(); bestSpan < 0 || span < bestSpan {
					best, bestSpan = sig.Results(), span
				}
			}
		}
		return true
	})
	return best
}

// checkStatusAssign flags `a, _ := Solve(...)`-style assignments where all
// of the call's Status/error results land in blank identifiers.
func checkStatusAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, sig := statusCallee(pass, call)
	if sig == nil {
		return
	}
	results := sig.Results()
	if len(as.Lhs) != results.Len() {
		return
	}
	dropped := false
	for i := 0; i < results.Len(); i++ {
		if !isStatusOrError(results.At(i).Type()) {
			continue
		}
		id, blank := as.Lhs[i].(*ast.Ident)
		if blank && id.Name == "_" {
			dropped = true
		} else {
			return // at least one Status/error result is kept
		}
	}
	if dropped {
		pass.Reportf(call.Lparen, "Status/error result of %s assigned to _; check it", name)
	}
}

// statusCallee resolves a call to one of the watched entry points declared
// inside this module, returning its display name and signature.
func statusCallee(pass *Pass, call *ast.CallExpr) (string, *types.Signature) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation, e.g. RunSweep[T](...)
		if sub, ok := fun.X.(*ast.Ident); ok {
			id = sub
		} else if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil || !statusFuncs[id.Name] {
		return "", nil
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return "", nil
	}
	modPath := moduleOf(pass.Pkg.Path)
	if moduleOf(obj.Pkg().Path()) != modPath {
		return "", nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	return id.Name, sig
}

// moduleOf returns the first path element — enough to scope the check to
// this module, whose packages all share the "repro" root (fixture packages
// included).
func moduleOf(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// hasStatusResult reports whether the signature returns an error or a
// Status-typed value (directly or inside a returned struct pointer is out
// of scope — the flagged entry points all return them directly).
func hasStatusResult(sig *types.Signature) bool {
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isStatusOrError(results.At(i).Type()) {
			return true
		}
	}
	return false
}

func isStatusOrError(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Status" {
		return true
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
