package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeCacheModule lays out a small module with a linear dependency chain
// plus one independent package:
//
//	a   (leaf)
//	b   imports a
//	c   imports b
//	d   (independent)
func writeCacheModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cachetest\n\ngo 1.24\n")
	write("a/a.go", "package a\n\nfunc A() int { return 1 }\n")
	write("b/b.go", "package b\n\nimport \"cachetest/a\"\n\nfunc B() int { return a.A() + 1 }\n")
	write("c/c.go", "package c\n\nimport \"cachetest/b\"\n\nfunc C() int { return b.B() + 1 }\n")
	write("d/d.go", "package d\n\nfunc D() int { return 4 }\n")
	return root
}

func cacheKeys(t *testing.T, root string) map[string]string {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache(t.TempDir(), loader, All())
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{}
	for _, pkg := range []string{"a", "b", "c", "d"} {
		key, err := cache.Key(filepath.Join(root, pkg))
		if err != nil {
			t.Fatalf("Key(%s): %v", pkg, err)
		}
		keys[pkg] = key
	}
	return keys
}

// TestCacheInvalidatesReverseDependencyClosure edits the leaf package and
// checks that exactly its reverse-dependency closure — itself and every
// package that transitively imports it — changes key, while the unrelated
// package keeps its key (and therefore its cache entry).
func TestCacheInvalidatesReverseDependencyClosure(t *testing.T) {
	root := writeCacheModule(t)
	before := cacheKeys(t, root)

	leaf := filepath.Join(root, "a", "a.go")
	if err := os.WriteFile(leaf, []byte("package a\n\nfunc A() int { return 2 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	after := cacheKeys(t, root)

	for _, pkg := range []string{"a", "b", "c"} {
		if before[pkg] == after[pkg] {
			t.Errorf("package %s: key unchanged after editing leaf dependency a", pkg)
		}
	}
	if before["d"] != after["d"] {
		t.Errorf("package d: key changed although it does not depend on a (before %s, after %s)", before["d"], after["d"])
	}
}

// TestCacheKeyChangesWithAnalyzerSet ensures runs with different analyzer
// subsets never share entries.
func TestCacheKeyChangesWithAnalyzerSet(t *testing.T) {
	root := writeCacheModule(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewCache(t.TempDir(), loader, All())
	if err != nil {
		t.Fatal(err)
	}
	subset, err := NewCache(t.TempDir(), loader, []*Analyzer{FloatCmp})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "a")
	fullKey, err := full.Key(dir)
	if err != nil {
		t.Fatal(err)
	}
	subsetKey, err := subset.Key(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fullKey == subsetKey {
		t.Fatalf("full-suite and subset runs share cache key %s", fullKey)
	}
}

// TestCacheRoundTrip persists diagnostics — fixes included — and reads
// them back, checking that absolute paths survive the module-relative
// storage encoding and that the hit/miss counters move.
func TestCacheRoundTrip(t *testing.T) {
	root := writeCacheModule(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewCache(t.TempDir(), loader, All())
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(root, "a", "a.go")
	diags := []Diagnostic{{
		Pos:      token.Position{Filename: file, Offset: 12, Line: 3, Column: 6},
		Analyzer: "floatcmp",
		Message:  "synthetic finding",
		Fixes: []SuggestedFix{{
			Message: "synthetic fix",
			Edits:   []TextEdit{{File: file, Start: 12, End: 14, NewText: "xx"}},
		}},
	}}

	if _, ok := cache.Get("feedfacefeedface"); ok {
		t.Fatal("Get on an empty cache reported a hit")
	}
	if cache.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", cache.Misses)
	}
	if err := cache.Put("feedfacefeedface", diags); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Get("feedfacefeedface")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if cache.Hits != 1 {
		t.Fatalf("Hits = %d, want 1", cache.Hits)
	}
	if !reflect.DeepEqual(got, diags) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, diags)
	}
}
