package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"testing"
)

// wantRx extracts the quoted or backquoted expectation patterns from a
// `// want "rx"` comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// expectation is one // want pattern with its match state.
type expectation struct {
	line int
	rx   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/analysis/<name>, runs the analyzer, and checks
// the diagnostics against the fixture's // want comments: every diagnostic
// must match a want pattern on its line and every want pattern must be hit
// exactly where it is written. Suppressed findings (bbvet:allow negative
// cases) simply produce no diagnostic, so an unexpected survivor fails.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.ModDir, "testdata", "analysis", name)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	for _, d := range Run(pkg, []*Analyzer{a}) {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, w.line, w.rx)
			}
		}
	}
}

// collectWants parses the fixture's // want comments into expectations
// keyed by filename.
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
	files = append(files, pkg.Files...)
	files = append(files, pkg.TestFiles...)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := indexWant(text)
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				groups := wantRx.FindAllStringSubmatch(text[i:], -1)
				if len(groups) == 0 {
					t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
				}
				for _, g := range groups {
					pat := g[1]
					if pat == "" {
						pat = g[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[pos.Filename] = append(wants[pos.Filename], &expectation{line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// indexWant returns the offset of the expectation payload in a comment, or
// -1 if the comment is not a want comment.
func indexWant(comment string) int {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(comment); i++ {
		if comment[i:i+len(marker)] == marker {
			return i + len(marker)
		}
	}
	return -1
}

func TestFloatCmpFixture(t *testing.T)    { runFixture(t, FloatCmp, "floatcmp") }
func TestMapRangeFixture(t *testing.T)    { runFixture(t, MapRange, "maprange") }
func TestHotAllocFixture(t *testing.T)    { runFixture(t, HotAlloc, "hotalloc") }
func TestStatusCheckFixture(t *testing.T) { runFixture(t, StatusCheck, "statuscheck") }
func TestCSRAliasFixture(t *testing.T)    { runFixture(t, CSRAlias, "csralias") }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, CtxFlow, "ctxflow") }
func TestLeakCheckFixture(t *testing.T)   { runFixture(t, LeakCheck, "leakcheck") }
func TestFaultSiteFixture(t *testing.T)   { runFixture(t, FaultSite, "faultsite") }
func TestHotLoopFixture(t *testing.T)     { runFixture(t, HotLoop, "hotloop") }

func TestConcDisciplineFixture(t *testing.T) { runFixture(t, ConcDiscipline, "concdiscipline") }

func TestHTTPDisciplineFixture(t *testing.T) { runFixture(t, HTTPDiscipline, "httpdiscipline") }
func TestSlogFieldFixture(t *testing.T)      { runFixture(t, SlogField, "slogfield") }

// TestFixturesAreExercised guards against a silently skipped fixture: every
// fixture package must produce at least one positive and contain at least
// one suppression directive, so both directions of each analyzer stay
// covered.
func TestFixturesAreExercised(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range All() {
		pkg, err := loader.LoadDir(filepath.Join(loader.ModDir, "testdata", "analysis", a.Name))
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if n := len(Run(pkg, []*Analyzer{a})); n == 0 {
			t.Errorf("%s fixture produced no diagnostics", a.Name)
		}
		if len(collectAllows(pkg).byFileLine) == 0 {
			t.Errorf("%s fixture has no bbvet:allow negative case", a.Name)
		}
	}
}
