package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFuncBody parses `src` as the body of a function inside a scratch
// package and returns the body. CFG construction needs no type information.
func parseFuncBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\nfunc f() {\n"+src+"\n}", parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// kinds returns the Kind of every block in order.
func kinds(g *CFG) []string {
	out := make([]string, len(g.Blocks))
	for i, b := range g.Blocks {
		out[i] = b.Kind
	}
	return out
}

// blockOfKind returns the single block of the given kind, failing on zero
// or several.
func blockOfKind(t *testing.T, g *CFG, kind string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			if found != nil {
				t.Fatalf("multiple %q blocks", kind)
			}
			found = b
		}
	}
	if found == nil {
		t.Fatalf("no %q block in %v", kind, kinds(g))
	}
	return found
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGStraightLine(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `x := 1; y := x + 1; _ = y`))
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if !hasEdge(g.Entry, g.Exit) {
		t.Fatal("entry does not reach exit directly")
	}
	if g.Blocks[0] != g.Entry || g.Blocks[len(g.Blocks)-1] != g.Exit {
		t.Fatal("Blocks must list Entry first and Exit last")
	}
}

func TestCFGNilBody(t *testing.T) {
	g := BuildCFG(nil)
	if !hasEdge(g.Entry, g.Exit) {
		t.Fatal("nil body must still yield entry→exit")
	}
}

func TestCFGIfElse(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x`))
	then := blockOfKind(t, g, "if-then")
	els := blockOfKind(t, g, "if-else")
	after := blockOfKind(t, g, "if-after")
	if !hasEdge(g.Entry, then) || !hasEdge(g.Entry, els) {
		t.Fatal("condition block must branch to then and else")
	}
	if hasEdge(g.Entry, after) {
		t.Fatal("with an else, the condition must not fall through to after")
	}
	if !hasEdge(then, after) || !hasEdge(els, after) {
		t.Fatal("both arms must rejoin at after")
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		x := 1
		if x > 0 {
			x = 2
		}
		_ = x`))
	after := blockOfKind(t, g, "if-after")
	if !hasEdge(g.Entry, after) {
		t.Fatal("without an else, the false branch must go straight to after")
	}
}

func TestCFGForLoop(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		s := 0
		for i := 0; i < 10; i++ {
			s += i
		}
		_ = s`))
	head := blockOfKind(t, g, "for-head")
	body := blockOfKind(t, g, "for-body")
	post := blockOfKind(t, g, "for-post")
	after := blockOfKind(t, g, "for-after")
	if head.LoopDepth != 1 || body.LoopDepth != 1 || post.LoopDepth != 1 {
		t.Fatalf("loop blocks at depth head=%d body=%d post=%d, want 1",
			head.LoopDepth, body.LoopDepth, post.LoopDepth)
	}
	if g.Entry.LoopDepth != 0 || after.LoopDepth != 0 {
		t.Fatal("entry and after must be outside the loop")
	}
	if !hasEdge(head, body) || !hasEdge(body, post) || !hasEdge(post, head) {
		t.Fatal("head→body→post→head cycle missing")
	}
	if !hasEdge(head, after) {
		t.Fatal("conditional loop must exit via head→after")
	}
}

func TestCFGForWithoutCondNoExitEdge(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		for {
			if done() {
				break
			}
		}`))
	head := blockOfKind(t, g, "for-head")
	after := blockOfKind(t, g, "for-after")
	if hasEdge(head, after) {
		t.Fatal("for{} has no false-condition exit; only break leaves it")
	}
	ifAfter := blockOfKind(t, g, "if-after")
	then := blockOfKind(t, g, "if-then")
	if !hasEdge(then, after) {
		t.Fatal("break must jump to for-after")
	}
	if !hasEdge(ifAfter, head) {
		t.Fatal("loop body must cycle back to head")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		for i := 0; i < 10; i++ {
			if i == 3 {
				continue
			}
			if i == 7 {
				break
			}
		}`))
	post := blockOfKind(t, g, "for-post")
	after := blockOfKind(t, g, "for-after")
	var continues, breaks int
	for _, b := range post.Preds {
		if b.Kind == "if-then" {
			continues++
		}
	}
	for _, b := range after.Preds {
		if b.Kind == "if-then" {
			breaks++
		}
	}
	if continues != 1 {
		t.Fatalf("continue edges into post: %d, want 1", continues)
	}
	if breaks != 1 {
		t.Fatalf("break edges into after: %d, want 1", breaks)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i+j > 3 {
					break outer
				}
			}
		}`))
	then := blockOfKind(t, g, "if-then")
	// break outer must target the *outer* loop's after block (depth 0).
	if len(then.Succs) != 1 {
		t.Fatalf("break block has %d succs, want 1", len(then.Succs))
	}
	target := then.Succs[0]
	if target.Kind != "for-after" || target.LoopDepth != 0 {
		t.Fatalf("break outer lands on %q at depth %d, want for-after at 0",
			target.Kind, target.LoopDepth)
	}
}

func TestCFGRange(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		xs := []int{1, 2}
		s := 0
		for _, x := range xs {
			s += x
		}
		_ = s`))
	head := blockOfKind(t, g, "range-head")
	body := blockOfKind(t, g, "range-body")
	after := blockOfKind(t, g, "range-after")
	if len(head.Nodes) != 1 {
		t.Fatalf("range head carries %d nodes, want the RangeStmt only", len(head.Nodes))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range head carries %T, want *ast.RangeStmt", head.Nodes[0])
	}
	if head.LoopDepth != 1 || body.LoopDepth != 1 || after.LoopDepth != 0 {
		t.Fatal("range head/body must be inside the loop, after outside")
	}
	if !hasEdge(head, body) || !hasEdge(body, head) || !hasEdge(head, after) {
		t.Fatal("range must cycle head↔body and exit head→after")
	}
}

func TestCFGNestedLoopDepth(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		m := map[int]int{}
		for i := 0; i < 3; i++ {
			for k := range m {
				_ = k
			}
		}`))
	inner := blockOfKind(t, g, "range-head")
	if inner.LoopDepth != 2 {
		t.Fatalf("nested range head at depth %d, want 2", inner.LoopDepth)
	}
	body := blockOfKind(t, g, "range-body")
	if body.LoopDepth != 2 {
		t.Fatalf("nested range body at depth %d, want 2", body.LoopDepth)
	}
}

func TestCFGSwitch(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		x := 1
		switch x {
		case 1:
			x = 10
		case 2:
			x = 20
		}
		_ = x`))
	after := blockOfKind(t, g, "switch-after")
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("%d case blocks, want 2", len(cases))
	}
	for _, c := range cases {
		if !hasEdge(g.Entry, c) || !hasEdge(c, after) {
			t.Fatal("each case must be entered from the head and rejoin after")
		}
	}
	if !hasEdge(g.Entry, after) {
		t.Fatal("switch without default must have a no-match edge to after")
	}
}

func TestCFGSwitchDefaultAndFallthrough(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		x := 1
		switch x {
		case 1:
			x = 10
			fallthrough
		case 2:
			x = 20
		default:
			x = 30
		}
		_ = x`))
	after := blockOfKind(t, g, "switch-after")
	if hasEdge(g.Entry, after) {
		t.Fatal("switch with default has no no-match edge to after")
	}
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("%d case blocks, want 3", len(cases))
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Fatal("fallthrough must link case 1 to case 2")
	}
	if hasEdge(cases[0], after) {
		t.Fatal("a case ending in fallthrough does not reach after directly")
	}
}

func TestCFGSelect(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		a := make(chan int)
		b := make(chan int)
		select {
		case v := <-a:
			_ = v
		case b <- 1:
		default:
		}`))
	after := blockOfKind(t, g, "select-after")
	var comms []*Block
	for _, b := range g.Blocks {
		if b.Kind == "comm" {
			comms = append(comms, b)
		}
	}
	if len(comms) != 3 {
		t.Fatalf("%d comm blocks, want 3", len(comms))
	}
	for _, c := range comms {
		if !hasEdge(g.Entry, c) || !hasEdge(c, after) {
			t.Fatal("each comm clause must be entered from the head and rejoin after")
		}
	}
	if _, ok := g.Entry.Nodes[len(g.Entry.Nodes)-1].(*ast.SelectStmt); !ok {
		t.Fatal("the SelectStmt itself must sit in the head block")
	}
}

func TestCFGReturnAndDefer(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		defer cleanup()
		x := 1
		if x > 0 {
			return
		}
		_ = x`))
	if len(g.Defers) != 1 {
		t.Fatalf("%d defers recorded, want 1", len(g.Defers))
	}
	then := blockOfKind(t, g, "if-then")
	if !hasEdge(then, g.Exit) {
		t.Fatal("return must edge to Exit")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		x := 1
		if x > 0 {
			panic("boom")
		}
		_ = x`))
	then := blockOfKind(t, g, "if-then")
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Fatal("panic must terminate the path straight to Exit")
	}
	after := blockOfKind(t, g, "if-after")
	if hasEdge(then, after) {
		t.Fatal("the panicking arm must not rejoin after")
	}
}

func TestCFGGoto(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		i := 0
	again:
		i++
		if i < 3 {
			goto again
		}`))
	label := blockOfKind(t, g, "label again")
	then := blockOfKind(t, g, "if-then")
	if !hasEdge(then, label) {
		t.Fatal("goto must edge back to the labeled block")
	}
}

func TestCFGFuncLitOpaque(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		f := func() {
			for {
			}
		}
		f()`))
	for _, b := range g.Blocks {
		if b.Kind == "for-head" {
			t.Fatal("a nested literal's loop must not contribute blocks to the outer CFG")
		}
	}
}

func TestCFGReaches(t *testing.T) {
	g := BuildCFG(parseFuncBody(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x`))
	then := blockOfKind(t, g, "if-then")
	after := blockOfKind(t, g, "if-after")
	if !g.Reaches(g.Entry, g.Exit, nil) {
		t.Fatal("exit must be reachable from entry")
	}
	// Blocking the after block cuts every path from entry to exit.
	if g.Reaches(g.Entry, g.Exit, func(b *Block) bool { return b == after }) {
		t.Fatal("blocking the join must disconnect entry from exit")
	}
	// The blocked test is not applied to the endpoints themselves.
	if !g.Reaches(then, after, func(b *Block) bool { return b == then || b == after }) {
		t.Fatal("endpoints must be exempt from the blocked test")
	}
}

func TestCFGBlockOf(t *testing.T) {
	body := parseFuncBody(t, `
		x := 1
		for i := 0; i < 3; i++ {
			x += i
		}
		_ = x`)
	g := BuildCFG(body)
	var inc *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
			inc = as
		}
		return true
	})
	blk := g.BlockOf(inc)
	if blk == nil || blk.Kind != "for-body" {
		t.Fatalf("x += i resolved to %v, want the for-body block", blk)
	}
	if g.BlockOf(inc.Rhs[0]) != blk {
		t.Fatal("an expression inside a recorded statement must resolve to its block")
	}
}
