package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the call-graph half of the interprocedural layer: it
// resolves call expressions to their static callees, indexes the module's
// function declarations across packages, and drives the bottom-up SCC
// traversal over which summary.go computes per-function summaries. The
// companion conservatism rules live with the resolution code:
//
//   - A call through a function value or an interface method has no
//     statically known body. ResolveCall classifies it as Dynamic and every
//     client treats it according to its own soundness needs (hotalloc flags
//     it inside annotated functions, csralias treats a backing slice passed
//     through it as escaping, the summaries do not invent facts for it).
//   - A call into another module (in practice: the standard library, since
//     this module has no dependencies) has no loadable declaration either;
//     summaries consult small explicit lists (stdAllocPkgs, fatalCalls)
//     instead of guessing.
//
// Everything here is deterministic: callee lists are collected in source
// order, the SCC traversal is a textbook Tarjan whose order depends only on
// those lists, and summaries never iterate a map into an output.

// A CallTarget classifies one call expression.
type CallTarget struct {
	// Static is the statically known callee: a package-level function or a
	// method invoked on a concrete receiver. Nil for dynamic calls,
	// builtins, and type conversions.
	Static *types.Func
	// Dynamic is non-empty when the callee cannot be resolved statically:
	// "a function value" or "an interface method" (article included, so
	// diagnostics can splice it directly).
	Dynamic string
	// Name is a display name for diagnostics; set for interface methods
	// (the method's name) even though Static is nil.
	Name string
}

// ResolveCall classifies a call expression against the type information of
// its package. Builtins, conversions, and immediately invoked function
// literals yield the zero CallTarget (the direct analyzers handle those
// shapes themselves).
func ResolveCall(info *types.Info, call *ast.CallExpr) CallTarget {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) resolves through the inner operand.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, isFunc := info.Types[idx.X].Type.(*types.Signature); isFunc {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		if _, isFunc := info.Types[idx.X].Type.(*types.Signature); isFunc {
			fun = ast.Unparen(idx.X)
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return CallTarget{} // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return CallTarget{Static: obj, Name: obj.Name()}
		case *types.Var:
			return CallTarget{Dynamic: "a function value", Name: fun.Name}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				f := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return CallTarget{Dynamic: "an interface method", Name: f.Name()}
				}
				return CallTarget{Static: f, Name: f.Name()}
			case types.FieldVal:
				return CallTarget{Dynamic: "a function value", Name: fun.Sel.Name}
			}
			return CallTarget{}
		}
		// Qualified identifier pkg.F, or a method expression T.M. Method
		// expressions shift the receiver into the first argument, which
		// would misalign the per-parameter summaries; they do not occur in
		// this codebase, so they are left unresolved.
		if tv, ok := info.Types[fun.X]; ok && tv.IsType() {
			return CallTarget{}
		}
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return CallTarget{Static: obj, Name: obj.Name()}
		case *types.Var:
			return CallTarget{Dynamic: "a function value", Name: fun.Sel.Name}
		}
	}
	return CallTarget{}
}

// declSite locates one function declaration together with its package.
type declSite struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// An Interp is the module-wide interprocedural index shared by every
// package of one Loader: declaration lookup across packages, memoized call
// edges, and the summary table. Analyzers reach it through Package.Interp.
type Interp struct {
	loader    *Loader
	decls     map[*types.Func]declSite
	indexed   map[string]bool // package paths whose decls are indexed
	edges     map[*types.Func][]*types.Func
	summaries map[*types.Func]*Summary
	final     map[*types.Func]bool
	hotpath   map[*types.Func]bool
}

// Interp returns the interprocedural index shared by every package loaded
// through this package's loader, or nil for a Package constructed without
// one (analyzers then skip their interprocedural checks).
func (p *Package) Interp() *Interp {
	if p.loader == nil {
		return nil
	}
	if p.loader.interp == nil {
		p.loader.interp = &Interp{
			loader:    p.loader,
			decls:     map[*types.Func]declSite{},
			indexed:   map[string]bool{},
			edges:     map[*types.Func][]*types.Func{},
			summaries: map[*types.Func]*Summary{},
			final:     map[*types.Func]bool{},
			hotpath:   map[*types.Func]bool{},
		}
	}
	return p.loader.interp
}

// intraModule reports whether the function belongs to this module.
func (ip *Interp) intraModule(f *types.Func) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	path := f.Pkg().Path()
	return path == ip.loader.ModPath || strings.HasPrefix(path, ip.loader.ModPath+"/")
}

// DeclOf returns the declaration of an intra-module function and the
// package it lives in, or (nil, nil) for functions outside the module or
// without a body we can load. The owning package is indexed once.
func (ip *Interp) DeclOf(f *types.Func) (*ast.FuncDecl, *Package) {
	if !ip.intraModule(f) {
		return nil, nil
	}
	path := f.Pkg().Path()
	if !ip.indexed[path] {
		ip.indexed[path] = true
		// The package is already in the loader's cache whenever f came from
		// type-checking an importer of it; a load failure here (a function
		// object from a package the loader cannot see) just leaves the
		// function opaque, which is the conservative outcome.
		if pkg, err := ip.loader.load(path); err == nil {
			for _, file := range pkg.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						ip.decls[obj] = declSite{Decl: fd, Pkg: pkg}
						if funcHotpath(fd) {
							ip.hotpath[obj] = true
						}
					}
				}
			}
		}
	}
	ds := ip.decls[f]
	return ds.Decl, ds.Pkg
}

// Hotpath reports whether the function's declaration carries the
// //bbvet:hotpath directive. Annotated functions are a trusted boundary for
// the allocation summaries: their zero-alloc contract is checked directly
// (and any exception inside them carries a reasoned bbvet:allow), so
// transitive analyses do not chase through them.
func (ip *Interp) Hotpath(f *types.Func) bool {
	ip.DeclOf(f) // ensure the owning package is indexed
	return ip.hotpath[f]
}

// callees returns f's statically resolved intra-module callees that have a
// loadable body, deduplicated, in source order of the first call.
func (ip *Interp) callees(f *types.Func) []*types.Func {
	if out, ok := ip.edges[f]; ok {
		return out
	}
	decl, pkg := ip.DeclOf(f)
	var out []*types.Func
	if decl != nil && decl.Body != nil {
		seen := map[*types.Func]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			t := ResolveCall(pkg.Info, call)
			if t.Static == nil || seen[t.Static] {
				return true
			}
			if d, _ := ip.DeclOf(t.Static); d != nil && d.Body != nil {
				seen[t.Static] = true
				out = append(out, t.Static)
			}
			return true
		})
	}
	ip.edges[f] = out
	return out
}

// SummaryOf returns the interprocedural summary of f, computing the
// summaries of its strongly connected component — and of every component
// below it — on first use. Functions without a loadable intra-module body
// yield nil.
func (ip *Interp) SummaryOf(f *types.Func) *Summary {
	if ip == nil || f == nil {
		return nil
	}
	if ip.final[f] {
		return ip.summaries[f]
	}
	decl, _ := ip.DeclOf(f)
	if decl == nil || decl.Body == nil {
		return nil
	}
	t := &tarjan{
		ip:    ip,
		index: map[*types.Func]int{},
		low:   map[*types.Func]int{},
		on:    map[*types.Func]bool{},
	}
	t.connect(f)
	return ip.summaries[f]
}

// tarjan is the classic strongly-connected-components walk over the static
// call graph; each popped component is summarized to fixpoint bottom-up, so
// by the time a component is processed every callee outside it is final.
type tarjan struct {
	ip    *Interp
	index map[*types.Func]int
	low   map[*types.Func]int
	on    map[*types.Func]bool
	stack []*types.Func
	next  int
}

func (t *tarjan) connect(v *types.Func) {
	t.index[v] = t.next
	t.low[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.on[v] = true
	if t.ip.summaries[v] == nil {
		// Optimistic (all-false) partial summary: cycle members read each
		// other's partials during the fixpoint below.
		t.ip.summaries[v] = &Summary{}
	}
	for _, w := range t.ip.callees(v) {
		if t.ip.final[w] {
			continue
		}
		if _, seen := t.index[w]; !seen {
			t.connect(w)
			t.low[v] = min(t.low[v], t.low[w])
		} else if t.on[w] {
			t.low[v] = min(t.low[v], t.index[w])
		}
	}
	if t.low[v] != t.index[v] {
		return
	}
	// v is the root of a component: pop it and iterate to fixpoint. Every
	// summary fact is monotone (booleans and bitmasks that only grow), so
	// the iteration converges; the witness fields are deterministic
	// functions of the body and the converged facts.
	var members []*types.Func
	for {
		m := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.on[m] = false
		members = append(members, m)
		if m == v {
			break
		}
	}
	for round := 0; round < 4*len(members)+4; round++ {
		changed := false
		for _, m := range members {
			ns := t.ip.compute(m)
			if !ns.equal(t.ip.summaries[m]) {
				t.ip.summaries[m] = ns
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, m := range members {
		t.ip.final[m] = true
	}
}
