package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// A Summary is the interprocedural fact sheet of one function, computed
// bottom-up over the strongly connected components of the call graph (see
// callgraph.go). Every field is a may-fact: true means the behavior can
// happen on some path, false means it provably cannot through any
// statically resolved call. Witness fields (*What/*Pos/*Via) record one
// deterministic explanation — the first cause in source order — so
// diagnostics can print the full call path to the offending site.
type Summary struct {
	// Allocates: the body can hit the allocator — make, new, append,
	// slice/map composite literals, address-of-composite, closure creation,
	// map writes, go statements, interface boxing, or a call to a function
	// that does. Calls to //bbvet:hotpath-annotated functions do not
	// contribute: the annotation is an audited zero-alloc contract checked
	// directly, and any exception inside one carries a reasoned allow.
	Allocates bool
	AllocWhat string      // witness: "make", "map write", "call to fmt.Sprintf", …
	AllocPos  token.Pos   // witness position
	AllocVia  *types.Func // next hop when the witness is an intra-module call

	// RetainsParam / ReturnsParam: per-parameter escape facts for
	// slice-typed parameters (bit i ↔ parameter i, variadic folded onto the
	// last bit). Retains: the parameter's backing memory outlives the call
	// (stored into a field, global, element, channel, composite literal, or
	// retained by a callee). Returns: some return value aliases it.
	RetainsParam uint64
	ReturnsParam uint64

	// OrderedReturn: some return value's element order depends on map
	// iteration order (an append under a map range, never sorted before the
	// return, or the unsorted result of a callee with this fact).
	OrderedReturn bool

	// Emits: the body can write formatted output (fmt print family, log,
	// builtin print) directly or through a callee.
	Emits    bool
	EmitWhat string
	EmitPos  token.Pos
	EmitVia  *types.Func

	// Sends: the body can send on a channel, directly or through a callee.
	Sends   bool
	SendPos token.Pos
	SendVia *types.Func

	// Spawns: the body can launch a goroutine (a go statement anywhere in
	// the body, nested literals included — a stored closure may run later).
	Spawns   bool
	SpawnPos token.Pos
	SpawnVia *types.Func

	// BlocksChan / BlocksLock: the body can block on channel operations
	// (send, receive, select, range over a channel) or on a sync primitive
	// (Mutex/RWMutex Lock/RLock, WaitGroup.Wait), directly or transitively.
	BlocksChan bool
	BlocksLock bool

	// Fatal: the body can terminate the process — os.Exit, log.Fatal*,
	// runtime.Goexit — directly or through a callee. (t.Fatal lives in test
	// files, which are not type-checked; the concdiscipline fixture covers
	// the production-side sinks.)
	Fatal     bool
	FatalWhat string
	FatalPos  token.Pos
	FatalVia  *types.Func

	// HTTPMustWrite / HTTPMustCommit: per-parameter response-discipline
	// facts for http.ResponseWriter parameters (bit i ↔ parameter i).
	// MustCommit: every path through the body commits the response status
	// via that parameter (WriteHeader or an http.Error-class helper).
	// MustWrite: every path writes response bytes through it. These are
	// must-facts, not may-facts, but they are still monotone under the
	// optimistic all-false seed: discovering more events only makes "every
	// path hits one" easier, so the SCC fixpoint converges upward like the
	// booleans above. A helper that merely MAY write (serve's admit, which
	// rejects-and-writes or declines silently) keeps zero bits, which is
	// what keeps httpdiscipline from flagging guarded helper-then-write
	// call sequences.
	HTTPMustWrite  uint64
	HTTPMustCommit uint64

	// SlogMsgParam / SlogKVParam: 1-based parameter indices (0 = none —
	// the encoding matters because Tarjan seeds cycles with zero
	// Summaries, and parameter 0 must not look forwarded by default).
	// MsgParam: the function forwards that parameter as a slog message,
	// so call sites owe it a constant string. KVParam: the function
	// forwards that variadic parameter as slog key/value arguments, so
	// call sites owe it well-formed pairs.
	SlogMsgParam int
	SlogKVParam  int
}

func (s *Summary) equal(o *Summary) bool {
	if o == nil {
		return false
	}
	return *s == *o
}

// stdAllocPkgs lists standard-library packages whose exported functions are
// treated as allocating. The rest of the stdlib surface the module touches
// (math, sync, sync/atomic, runtime, unsafe helpers) is trusted not to
// allocate; the trust boundary is deliberate and documented in DESIGN.md §8
// — a conservative "everything allocates" default would drown the
// transitive hotalloc signal in error-path noise.
var stdAllocPkgs = map[string]bool{
	"bufio": true, "bytes": true, "encoding/json": true, "errors": true,
	"fmt": true, "io": true, "log": true, "os": true, "regexp": true,
	"sort": true, "strconv": true, "strings": true, "slices": true,
}

// fatalCalls maps qualified stdlib names to their process-killing verdict.
var fatalCalls = map[string]bool{
	"os.Exit": true, "runtime.Goexit": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true,
}

// compute builds f's summary from its body and the current summary table
// (partial for members of f's own SCC, final below it). It is pure with
// respect to the table: the fixpoint driver compares and installs results.
func (ip *Interp) compute(f *types.Func) *Summary {
	s := &Summary{}
	decl, pkg := ip.DeclOf(f)
	if decl == nil || decl.Body == nil {
		return s
	}
	info := pkg.Info

	params := paramObjects(info, decl)
	masks := ip.aliasMasks(info, decl.Body, params)
	exprMask := func(e ast.Expr) uint64 { return ip.exprMask(info, masks, e) }

	// orderedVars collects locals whose element order is map-iteration
	// dependent; sortedVars collects locals later passed to a sort call.
	orderedVars := map[types.Object]bool{}
	sortedVars := map[types.Object]bool{}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n.Fun, "panic") {
				// Terminating error path: its arguments (typically a
				// fmt.Sprintf) are exempt, matching direct hotalloc.
				return false
			}
			ip.computeCall(s, info, n, exprMask, orderedVars, sortedVars)
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					s.noteAlloc("composite literal", n.Pos(), nil)
				}
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				s.RetainsParam |= exprMask(val)
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				s.noteAlloc("address of composite literal", n.OpPos, nil)
			}
			if n.Op == token.ARROW {
				s.BlocksChan = true
			}
		case *ast.FuncLit:
			s.noteAlloc("closure", n.Pos(), nil)
			// Keep walking: effects inside a literal (a go statement, a
			// retained parameter) may run when the closure does, so they
			// count conservatively.
		case *ast.GoStmt:
			s.noteAlloc("go statement", n.Go, nil)
			if !s.Spawns {
				s.Spawns = true
				s.SpawnPos = n.Go
			}
		case *ast.SendStmt:
			if !s.Sends {
				s.Sends = true
				s.SendPos = n.Arrow
			}
			s.BlocksChan = true
			s.RetainsParam |= exprMask(n.Value)
		case *ast.SelectStmt:
			s.BlocksChan = true
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.BlocksChan = true
				}
				if _, ok := t.Underlying().(*types.Map); ok {
					collectOrderedAppends(info, n, orderedVars)
				}
			}
		case *ast.AssignStmt:
			ip.computeAssign(s, info, pkg, n, exprMask, orderedVars)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				s.ReturnsParam |= exprMask(res)
				if returnIsOrdered(ip, info, res, orderedVars, sortedVars) {
					s.OrderedReturn = true
				}
			}
			if boxesIntoResult(info, decl, n) {
				s.noteAlloc("interface boxing at return", n.Pos(), nil)
			}
		}
		return true
	})
	// A local that was sorted anywhere in the body is order-clean; the
	// flow-insensitive approximation can only under-report OrderedReturn
	// for sort-then-append-again shapes, which do not occur here.
	ip.computeHTTPFacts(s, info, decl)
	ip.computeSlogFacts(s, info, decl)
	return s
}

// computeCall folds one call expression into the summary.
func (ip *Interp) computeCall(s *Summary, info *types.Info, call *ast.CallExpr,
	exprMask func(ast.Expr) uint64, orderedVars, sortedVars map[types.Object]bool) {

	// Builtins first: allocation intrinsics per the issue's list.
	switch {
	case isBuiltin(info, call.Fun, "make"):
		s.noteAlloc("make", call.Lparen, nil)
		return
	case isBuiltin(info, call.Fun, "new"):
		s.noteAlloc("new", call.Lparen, nil)
		return
	case isBuiltin(info, call.Fun, "append"):
		s.noteAlloc("append", call.Lparen, nil)
		return
	case isBuiltin(info, call.Fun, "panic"):
		return // terminating error path, same exemption as direct hotalloc
	}
	if name, ok := emitCall(info, call); ok {
		if !s.Emits {
			s.Emits = true
			s.EmitWhat = name
			s.EmitPos = call.Lparen
		}
	}
	// Sort calls launder order-dependence; record which locals they touch.
	if isSortCall(info, call) {
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					sortedVars[obj] = true
				}
			}
		}
	}
	tv := info.Types[call.Fun]
	if tv.IsType() {
		// Conversion: boxing when the target is an interface.
		if len(call.Args) == 1 && isInterface(tv.Type) && boxes(info, call.Args[0]) {
			s.noteAlloc("interface boxing at conversion", call.Lparen, nil)
		}
		return
	}

	t := ResolveCall(info, call)
	switch {
	case t.Static != nil && ip.intraModule(t.Static):
		if decl, _ := ip.DeclOf(t.Static); decl != nil && decl.Body != nil {
			cs := ip.summaries[t.Static]
			if cs != nil {
				if cs.Allocates && !ip.Hotpath(t.Static) {
					s.noteAlloc("call to "+ip.displayName(t.Static), call.Lparen, t.Static)
				}
				if cs.Emits && !s.Emits {
					s.Emits = true
					s.EmitWhat = "call to " + ip.displayName(t.Static)
					s.EmitPos = call.Lparen
					s.EmitVia = t.Static
				}
				if cs.Sends && !s.Sends {
					s.Sends = true
					s.SendPos = call.Lparen
					s.SendVia = t.Static
				}
				if cs.Spawns && !s.Spawns {
					s.Spawns = true
					s.SpawnPos = call.Lparen
					s.SpawnVia = t.Static
				}
				s.BlocksChan = s.BlocksChan || cs.BlocksChan
				s.BlocksLock = s.BlocksLock || cs.BlocksLock
				if cs.Fatal && !s.Fatal {
					s.Fatal = true
					s.FatalWhat = "call to " + ip.displayName(t.Static)
					s.FatalPos = call.Lparen
					s.FatalVia = t.Static
				}
				// Escape propagation: a masked argument handed to a callee
				// that retains (or returns, with the result itself escaping
				// through the surrounding expression) its parameter.
				for i, arg := range call.Args {
					m := exprMask(arg)
					if m == 0 {
						continue
					}
					if cs.RetainsParam&paramBit(t.Static, i) != 0 {
						s.RetainsParam |= m
					}
				}
			}
			return
		}
		// Intra-module object without a loadable body: leave it opaque.
		return
	case t.Static != nil:
		// Out-of-module (stdlib) callee: explicit lists, no guessing.
		qual := stdQualifiedName(t.Static)
		if pkgPath := stdPkgPath(t.Static); stdAllocPkgs[pkgPath] {
			s.noteAlloc("call to "+qual, call.Lparen, nil)
		}
		if stdPkgPath(t.Static) == "sync" {
			switch t.Static.Name() {
			case "Lock", "RLock":
				s.BlocksLock = true
			case "Wait":
				s.BlocksLock = true
			}
		}
		if fatalCalls[qual] && !s.Fatal {
			s.Fatal = true
			s.FatalWhat = qual
			s.FatalPos = call.Lparen
		}
		return
	case t.Dynamic != "":
		// Dynamic call: the summaries record no invented facts; each
		// analyzer applies its own conservatism at the annotated boundary
		// (see hotalloc and csralias). A masked argument passed through a
		// dynamic call is treated as escaping by csralias directly.
		return
	}
}

// computeAssign folds one assignment into the summary: map-write
// allocation, interface boxing, escaping stores of masked values, and
// order-taint propagation through call results.
func (ip *Interp) computeAssign(s *Summary, info *types.Info, pkg *Package, as *ast.AssignStmt,
	exprMask func(ast.Expr) uint64, orderedVars map[types.Object]bool) {

	for _, lhs := range as.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.Types[idx.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					s.noteAlloc("map write", as.TokPos, nil)
				}
			}
		}
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		rhs := as.Rhs[i]
		if lt := info.Types[lhs].Type; lt != nil && isInterface(lt) && boxes(info, rhs) {
			s.noteAlloc("interface boxing at assignment", rhs.Pos(), nil)
		}
		if m := exprMask(rhs); m != 0 && escapingTarget(info, pkg.Types, lhs) {
			s.RetainsParam |= m
		}
		// x := orderedCallee(...) taints x.
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if t := ResolveCall(info, call); t.Static != nil {
				if cs := ip.summaries[t.Static]; cs != nil && cs.OrderedReturn {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Defs[id]; obj != nil {
							orderedVars[obj] = true
						} else if obj := info.Uses[id]; obj != nil {
							orderedVars[obj] = true
						}
					}
				}
			}
		}
	}
}

// noteAlloc records the first allocation witness in source order. Facts
// are monotone: once Allocates is set, an earlier-position witness still
// wins, so the fixpoint converges on the first cause in the body.
func (s *Summary) noteAlloc(what string, pos token.Pos, via *types.Func) {
	if s.Allocates && s.AllocPos <= pos {
		return
	}
	s.Allocates = true
	s.AllocWhat = what
	s.AllocPos = pos
	s.AllocVia = via
}

// paramObjects returns the declared parameter objects of a function in
// signature order (receiver excluded; it carries no per-parameter bit).
func paramObjects(info *types.Info, decl *ast.FuncDecl) []types.Object {
	var out []types.Object
	if decl.Type.Params == nil {
		return out
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter still occupies a slot
		}
	}
	return out
}

// paramBit maps argument index i of a call to f onto the summary bitmask,
// folding variadic arguments onto the last parameter's bit and saturating
// at 64 parameters.
func paramBit(f *types.Func, i int) uint64 {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return 0
	}
	if i >= sig.Params().Len() {
		i = sig.Params().Len() - 1
	}
	if i >= 64 {
		return 0
	}
	return 1 << uint(i)
}

// aliasMasks computes, flow-insensitively, which locals may alias which
// slice-typed parameters: parameters seed their own bit; `q := p`,
// re-slicing, and the results of callees that return a parameter alias
// propagate bits. The iteration runs to fixpoint (bounded by the number of
// assignments, since masks only grow).
func (ip *Interp) aliasMasks(info *types.Info, body *ast.BlockStmt, params []types.Object) map[types.Object]uint64 {
	masks := map[types.Object]uint64{}
	for i, p := range params {
		if p == nil || i >= 64 {
			continue
		}
		if _, isSlice := p.Type().Underlying().(*types.Slice); isSlice {
			masks[p] = 1 << uint(i)
		}
	}
	var assigns []*ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			assigns = append(assigns, as)
		}
		return true
	})
	for round := 0; round <= len(assigns); round++ {
		changed := false
		for _, as := range assigns {
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				m := ip.exprMask(info, masks, as.Rhs[i])
				if m&^masks[obj] != 0 {
					masks[obj] |= m
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return masks
}

// exprMask resolves the parameter-alias mask of an expression: identifiers
// through the mask table, re-slices and parens transparently, builtin
// append through its first argument, and calls through the callee's
// ReturnsParam fact.
func (ip *Interp) exprMask(info *types.Info, masks map[types.Object]uint64, e ast.Expr) uint64 {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.SliceExpr:
			e = x.X
			continue
		}
		break
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return 0
		}
		return masks[obj]
	case *ast.CallExpr:
		if isBuiltin(info, x.Fun, "append") && len(x.Args) > 0 {
			m := ip.exprMask(info, masks, x.Args[0])
			// append(dst, src...) copies src's elements but may return
			// dst's backing array unchanged; only dst's mask survives.
			return m
		}
		t := ResolveCall(info, x)
		if t.Static == nil {
			return 0
		}
		cs := ip.summaries[t.Static]
		if cs == nil || cs.ReturnsParam == 0 {
			return 0
		}
		var m uint64
		for i, arg := range x.Args {
			if cs.ReturnsParam&paramBit(t.Static, i) != 0 {
				m |= ip.exprMask(info, masks, arg)
			}
		}
		return m
	}
	return 0
}

// collectOrderedAppends records, for one range-over-map loop, the local
// slice variables grown by append inside its body.
func collectOrderedAppends(info *types.Info, rng *ast.RangeStmt, orderedVars map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call.Fun, "append") {
			return true
		}
		if tgt := appendTarget(info, call); tgt != nil {
			orderedVars[tgt] = true
		}
		return true
	})
}

// returnIsOrdered reports whether a returned expression carries
// map-iteration order: a tainted local that was never sorted, or the
// direct result of a callee with OrderedReturn.
func returnIsOrdered(ip *Interp, info *types.Info, res ast.Expr, orderedVars, sortedVars map[types.Object]bool) bool {
	switch x := ast.Unparen(res).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		return obj != nil && orderedVars[obj] && !sortedVars[obj]
	case *ast.CallExpr:
		if t := ResolveCall(info, x); t.Static != nil {
			if cs := ip.summaries[t.Static]; cs != nil {
				return cs.OrderedReturn
			}
		}
	}
	return false
}

// boxesIntoResult reports whether a return statement boxes a concrete
// value into an interface-typed result.
func boxesIntoResult(info *types.Info, decl *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	obj := info.Defs[decl.Name]
	if obj == nil {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return false
	}
	for i, res := range ret.Results {
		if isInterface(sig.Results().At(i).Type()) && boxes(info, res) {
			return true
		}
	}
	return false
}

// isSortCall reports whether the call is into package sort or slices (the
// order-laundering family the maprange analyzer already recognizes).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	return p == "sort" || p == "slices"
}

// escapingTarget reports whether assigning to lhs gives the value a home
// that outlives the enclosing call: a struct field, a dereference, an
// element of non-local storage, or a package-level variable.
func escapingTarget(info *types.Info, scope *types.Package, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return true // field store (or package var via selector)
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		return true // storing into a slice/map cell
	case *ast.Ident:
		obj := info.Defs[x]
		if obj == nil {
			obj = info.Uses[x]
		}
		if obj == nil || scope == nil {
			return false
		}
		return obj.Parent() == scope.Scope()
	}
	return false
}

// stdPkgPath returns the package path of an out-of-module function, or ""
// when it has no package (builtins).
func stdPkgPath(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// stdQualifiedName renders pkg.Func for diagnostics.
func stdQualifiedName(f *types.Func) string {
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Name() + "." + f.Name()
}

// displayName renders an intra-module function for diagnostics: the bare
// name, receiver-qualified for methods. Call paths stay readable without
// import-path noise; the terminal site carries file:line for precision.
func (ip *Interp) displayName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return name
}

// AllocPath renders the witness call chain from f down to the allocation
// site: "a → b → c: make at file.go:12". Cycles in the witness chain (an
// allocating recursion) are cut with an ellipsis.
func (ip *Interp) AllocPath(f *types.Func) string {
	var b strings.Builder
	b.WriteString(ip.displayName(f))
	seen := map[*types.Func]bool{f: true}
	cur := ip.summaries[f]
	for cur != nil && cur.AllocVia != nil {
		next := cur.AllocVia
		if seen[next] {
			b.WriteString(" → …")
			break
		}
		seen[next] = true
		b.WriteString(" → ")
		b.WriteString(ip.displayName(next))
		cur = ip.summaries[next]
	}
	if cur != nil && cur.AllocVia == nil && cur.Allocates {
		pos := ip.loader.Fset.Position(cur.AllocPos)
		fmt.Fprintf(&b, ": %s at %s:%d", cur.AllocWhat, filepath.Base(pos.Filename), pos.Line)
	}
	return b.String()
}

// EmitPath renders the witness call chain from f to its output site, in
// the same style as AllocPath.
func (ip *Interp) EmitPath(f *types.Func) string {
	var b strings.Builder
	b.WriteString(ip.displayName(f))
	seen := map[*types.Func]bool{f: true}
	cur := ip.summaries[f]
	for cur != nil && cur.EmitVia != nil {
		next := cur.EmitVia
		if seen[next] {
			b.WriteString(" → …")
			break
		}
		seen[next] = true
		b.WriteString(" → ")
		b.WriteString(ip.displayName(next))
		cur = ip.summaries[next]
	}
	if cur != nil && cur.EmitVia == nil && cur.Emits {
		pos := ip.loader.Fset.Position(cur.EmitPos)
		fmt.Fprintf(&b, ": %s at %s:%d", cur.EmitWhat, filepath.Base(pos.Filename), pos.Line)
	}
	return b.String()
}
