package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir and returns a
// loader rooted in it. files maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) *Loader {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	return loader
}

// TestLoadTestOnlyPackage pins the _test.go-only package path: no
// type-checking happens, but the files parse into TestFiles and every
// Package field is non-nil so analyzers need no special casing.
func TestLoadTestOnlyPackage(t *testing.T) {
	loader := writeModule(t, map[string]string{
		"only/x_test.go": "package only_test\n\nfunc helper() int { return 1 }\n",
	})
	pkg, err := loader.load("example.com/m/only")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Name != "only" {
		t.Errorf("package name = %q, want %q (the _test suffix stripped)", pkg.Name, "only")
	}
	if len(pkg.Files) != 0 || len(pkg.TestFiles) != 1 {
		t.Errorf("got %d production / %d test files, want 0 / 1", len(pkg.Files), len(pkg.TestFiles))
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Error("test-only package has nil Types or Info")
	}
	// The cached entry must be returned on the second load.
	again, err := loader.load("example.com/m/only")
	if err != nil || again != pkg {
		t.Errorf("second load returned a different package (err %v)", err)
	}
}

// TestLoadCycleThroughTestFiles: a dependency cycle that exists only
// through _test.go files is legal (the go tool allows it for external test
// packages, and the loader never type-checks test files), while the same
// cycle through production files is an error, not a hang.
func TestLoadCycleThroughTestFiles(t *testing.T) {
	loader := writeModule(t, map[string]string{
		"a/a.go":      "package a\n\nfunc A() int { return 1 }\n",
		"a/a_test.go": "package a_test\n\nimport \"example.com/m/b\"\n\nvar _ = b.B\n",
		"b/b.go":      "package b\n\nimport \"example.com/m/a\"\n\nfunc B() int { return a.A() }\n",
	})
	if _, err := loader.load("example.com/m/a"); err != nil {
		t.Errorf("test-file cycle rejected: %v", err)
	}
	if _, err := loader.load("example.com/m/b"); err != nil {
		t.Errorf("loading the importer side failed: %v", err)
	}
}

func TestLoadProductionCycleIsError(t *testing.T) {
	loader := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nfunc B() int { return a.A() }\n",
	})
	_, err := loader.load("example.com/m/a")
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("production import cycle not reported: %v", err)
	}
}

// TestLoadImportOutsideModule pins the error path: the loader only
// resolves intra-module paths, and says so instead of guessing.
func TestLoadImportOutsideModule(t *testing.T) {
	loader := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc A() int { return 1 }\n",
	})
	pkg, err := loader.load("example.com/m/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pkg.LoadImport("example.com/other/pkg"); err == nil ||
		!strings.Contains(err.Error(), "outside module") {
		t.Errorf("out-of-module import not rejected: %v", err)
	}
	// A Package constructed without a loader reports that, not a panic.
	orphan := &Package{Path: "example.com/m/orphan"}
	if _, err := orphan.LoadImport("example.com/m/a"); err == nil ||
		!strings.Contains(err.Error(), "no loader") {
		t.Errorf("loaderless import not rejected: %v", err)
	}
}

// TestLoadMissingPackage: a directory with no Go files at all is an error.
func TestLoadMissingPackage(t *testing.T) {
	loader := writeModule(t, map[string]string{
		"a/a.go": "package a\n",
	})
	if _, err := loader.load("example.com/m/empty"); err == nil {
		t.Error("loading a nonexistent package succeeded")
	}
}
