package analysis

import (
	"go/ast"
	"go/types"
)

// HotLoop refines hotalloc with the CFG's loop structure: inside a
// //bbvet:hotpath function it flags only the constructs that are
// *loop-carried* — executed once per iteration, where the cost actually
// accrues — instead of flagging the whole body uniformly:
//
//   - allocations in a block with LoopDepth > 0 (make, new, append,
//     slice/map composite literals, address-of-literal, closures): one
//     allocation per iteration is what turns a zero-alloc solve into a
//     GC-bound one;
//   - map iteration nested inside another loop: re-walking a map's
//     buckets every outer iteration is both slow and order-randomized;
//   - defer inside a loop: deferred calls accumulate until function exit,
//     an allocation and a latency cliff per iteration.
//
// hotalloc remains the whole-body contract (the annotated IPM hot paths
// are zero-alloc everywhere); hotloop is the precision layer that stays
// meaningful for hot functions with a legitimate setup phase, and its
// diagnostics point at the iteration cost rather than the function.
var HotLoop = &Analyzer{
	Name: "hotloop",
	Doc:  "flags loop-carried allocations, nested map iteration, and defers in //bbvet:hotpath functions",
	Run:  runHotLoop,
}

func runHotLoop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHotpath(fn) {
				continue
			}
			checkHotLoops(pass, fn)
		}
	}
}

func checkHotLoops(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	g := BuildCFG(fn.Body)
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			// A range head carries its RangeStmt: flag map iteration when
			// the head itself sits inside another loop (depth includes the
			// range's own loop, so nested means depth ≥ 2).
			if rng, ok := n.(*ast.RangeStmt); ok {
				if t := info.Types[rng.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && blk.LoopDepth >= 2 {
						pass.Reportf(rng.For, "map iteration is loop-carried in a hotpath function: the map is re-walked every outer iteration")
					}
				}
				continue // body statements have their own blocks
			}
			if blk.LoopDepth == 0 {
				continue
			}
			switch n := n.(type) {
			case *ast.DeferStmt:
				pass.Reportf(n.Defer, "defer in a loop of a hotpath function accumulates until exit (one allocation per iteration)")
				continue // the defer is the finding; don't also flag its closure
			case *ast.SelectStmt:
				continue // comm clauses live in their own blocks
			}
			reportLoopAllocs(pass, n)
		}
	}
}

// reportLoopAllocs flags the allocating constructs inside one loop-carried
// CFG node. Nested function literals are flagged as allocations themselves
// and not descended into.
func reportLoopAllocs(pass *Pass, root ast.Node) {
	info := pass.Pkg.Info
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "make"):
				pass.Reportf(n.Lparen, "make is loop-carried in a hotpath function: allocates every iteration")
			case isBuiltin(info, n.Fun, "new"):
				pass.Reportf(n.Lparen, "new is loop-carried in a hotpath function: allocates every iteration")
			case isBuiltin(info, n.Fun, "append"):
				pass.Reportf(n.Lparen, "append is loop-carried in a hotpath function: may grow its backing array every iteration")
			case isBuiltin(info, n.Fun, "panic"):
				return false // terminating error path
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure is loop-carried in a hotpath function: allocates every iteration")
			return false
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "composite literal is loop-carried in a hotpath function: allocates every iteration")
				}
			}
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.OpPos, "address of composite literal is loop-carried in a hotpath function: allocates every iteration")
			}
		}
		return true
	})
}
