package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// This file applies suggested fixes to source bytes. The driver (cmd/bbvet
// -fix and -diff) decides what to do with the result — write atomically or
// render diffs — while the selection and splicing rules live here so they
// can be tested at the library level and shared by future drivers.

// A FixResult is the outcome of applying every applicable fix of a
// diagnostic batch.
type FixResult struct {
	// Files maps each modified file to its new, gofmt-formatted contents.
	Files map[string][]byte
	// Applied counts fixes whose edits were accepted (fixes that were pure
	// duplicates of already-accepted edits are not counted).
	Applied int
	// Dropped counts fixes rejected because an edit overlapped an
	// already-accepted one; a second -fix run picks them up after the first
	// round's edits land.
	Dropped int
}

// ApplyFixes selects a maximal non-conflicting set of suggested fixes from
// the diagnostics — greedily, in diagnostic order, so the choice is
// deterministic — splices their edits, and formats each patched file with
// gofmt. A fix is all-or-nothing: if any of its edits overlaps an
// already-accepted edit the whole fix is dropped. Identical edits from
// different fixes (several diagnostics proposing the same import insertion
// or the same loop-header rewrite) deduplicate instead of conflicting.
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	res := &FixResult{Files: make(map[string][]byte)}
	accepted := make(map[string][]TextEdit)
	var touched []string
	for _, d := range diags {
		for _, fix := range d.Fixes {
			if fixConflicts(accepted, fix.Edits) {
				res.Dropped++
				continue
			}
			fresh := 0
			for _, e := range fix.Edits {
				if containsEdit(accepted[e.File], e) {
					continue
				}
				if len(accepted[e.File]) == 0 {
					touched = append(touched, e.File)
				}
				accepted[e.File] = append(accepted[e.File], e)
				fresh++
			}
			if fresh > 0 {
				res.Applied++
			}
		}
	}
	sort.Strings(touched)
	for _, file := range touched {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		patched, err := spliceEdits(src, accepted[file])
		if err != nil {
			return nil, fmt.Errorf("%s: %v", file, err)
		}
		formatted, err := format.Source(patched)
		if err != nil {
			return nil, fmt.Errorf("fixes for %s produced unparsable code: %v", file, err)
		}
		res.Files[file] = formatted
	}
	return res, nil
}

// fixConflicts reports whether any edit of a candidate fix overlaps an
// already-accepted edit in the same file.
func fixConflicts(accepted map[string][]TextEdit, edits []TextEdit) bool {
	for _, e := range edits {
		for _, a := range accepted[e.File] {
			if editsConflict(a, e) {
				return true
			}
		}
	}
	return false
}

// editsConflict decides whether two edits in the same file can coexist.
// Identical edits deduplicate; two insertions never conflict (same-point
// insertions are spliced in a deterministic order); otherwise edits
// conflict when their ranges overlap, with an insertion point strictly
// inside a replaced range counting as overlap.
func editsConflict(a, b TextEdit) bool {
	if a == b {
		return false
	}
	aIns, bIns := a.Start == a.End, b.Start == b.End
	switch {
	case aIns && bIns:
		return false
	case aIns:
		return b.Start < a.Start && a.Start < b.End
	case bIns:
		return a.Start < b.Start && b.Start < a.End
	default:
		return a.Start < b.End && b.Start < a.End
	}
}

// containsEdit reports whether the slice already holds an identical edit.
func containsEdit(edits []TextEdit, e TextEdit) bool {
	for _, a := range edits {
		if a == e {
			return true
		}
	}
	return false
}

// spliceEdits applies the edits to src. Edits are spliced back-to-front so
// earlier offsets stay valid; the order is fully deterministic (descending
// Start, then descending End, then descending NewText for same-point
// insertions, which therefore land in ascending NewText order in the
// output).
func spliceEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := make([]TextEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start > b.Start
		}
		if a.End != b.End {
			return a.End > b.End
		}
		return a.NewText > b.NewText
	})
	out := src
	for _, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit range [%d,%d) out of bounds (file is %d bytes)", e.Start, e.End, len(src))
		}
		var buf []byte
		buf = append(buf, out[:e.Start]...)
		buf = append(buf, e.NewText...)
		buf = append(buf, out[e.End:]...)
		out = buf
	}
	return out, nil
}
