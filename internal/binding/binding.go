// Package binding implements the extension the paper names as its most
// important next step: computing the binding of tasks to processors and of
// buffers to memories, on top of the joint budget/buffer solve.
//
// The joint cone program of internal/core evaluates a *given* binding; this
// package searches the binding space using that solve as the oracle:
//
//   - Exhaustive enumerates every (task→processor, buffer→memory)
//     assignment — exact, for small instances and for validating heuristics;
//   - Greedy builds a binding by balanced first-fit on rate-minimal budget
//     load and memory pressure, then improves it by steepest-descent task
//     moves and swaps, re-solving the cone program for each candidate.
//
// Both return the bound configuration together with its solved mapping, so
// the result slots directly into the rest of the flow (verification,
// simulation, …).
package binding

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/taskgraph"
)

// Result is the outcome of a binding search.
type Result struct {
	// Config is the input configuration with task/buffer bindings replaced
	// by the chosen assignment.
	Config *taskgraph.Config
	// Solve is the joint budget/buffer solution for that binding.
	Solve *core.Result
	// Evaluated counts the candidate bindings that were solved.
	Evaluated int
}

// Objective returns the weighted mapping objective of the result.
func (r *Result) Objective() float64 {
	if r.Solve == nil || r.Solve.Mapping == nil {
		return math.Inf(1)
	}
	return r.Solve.Mapping.Objective
}

// Exhaustive tries every assignment of tasks to processors and buffers to
// memories and returns the feasible binding with the smallest objective.
// The search space is |P|^|W| · |M|^|B|; it refuses instances beyond
// maxCandidates (default 20000) to keep run times sane.
func Exhaustive(ctx context.Context, c *taskgraph.Config, opt core.Options, maxCandidates int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if maxCandidates <= 0 {
		maxCandidates = 20000
	}
	tasks, buffers := entityLists(c)
	nCand := 1.0
	for range tasks {
		nCand *= float64(len(c.Processors))
	}
	for range buffers {
		nCand *= float64(len(c.Memories))
	}
	if nCand > float64(maxCandidates) {
		return nil, fmt.Errorf("binding: %.0f candidates exceed the cap of %d; use Greedy", nCand, maxCandidates)
	}

	best := &Result{}
	bestObj := math.Inf(1)
	evaluated := 0
	assignTask := make([]int, len(tasks))
	assignBuf := make([]int, len(buffers))
	var rec func(i int)
	var recBuf func(i int)
	recBuf = func(i int) {
		if i == len(buffers) {
			if ctx.Err() != nil {
				return
			}
			cand := apply(c, tasks, assignTask, buffers, assignBuf)
			r, err := core.Solve(ctx, cand, opt)
			evaluated++
			if err == nil && r.Status == core.StatusOptimal && r.Mapping.Objective < bestObj {
				bestObj = r.Mapping.Objective
				best.Config = cand
				best.Solve = r
			}
			return
		}
		for m := range c.Memories {
			assignBuf[i] = m
			recBuf(i + 1)
		}
	}
	rec = func(i int) {
		if i == len(tasks) {
			recBuf(0)
			return
		}
		for p := range c.Processors {
			assignTask[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	best.Evaluated = evaluated
	if err := ctx.Err(); err != nil {
		// The search was cut short; surface the best binding found so far
		// (possibly none) together with the cancellation.
		return best, err
	}
	if best.Config == nil {
		return best, fmt.Errorf("binding: no feasible binding among %d candidates", evaluated)
	}
	return best, nil
}

// Greedy builds an initial balanced binding and improves it by
// steepest-descent moves (rebind one task or one buffer) until no move
// lowers the objective. maxRounds bounds the improvement loop (default 10).
func Greedy(ctx context.Context, c *taskgraph.Config, opt core.Options, maxRounds int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = 10
	}
	tasks, buffers := entityLists(c)

	// ---- Initial assignment: balanced first-fit ----
	// Tasks in decreasing rate-minimal budget, onto the least-loaded
	// processor; buffers in decreasing footprint, onto the least-used memory.
	type taskLoad struct {
		idx  int
		load float64
	}
	tl := make([]taskLoad, len(tasks))
	for i, ref := range tasks {
		w := taskByName(c, ref)
		// Rate-minimal budget is ϱχ/µ; ϱ varies per processor, so use χ/µ
		// as the processor-independent load proxy.
		tl[i] = taskLoad{i, w.WCET / graphOf(c, ref).Period}
	}
	sort.Slice(tl, func(a, b int) bool { return tl[a].load > tl[b].load })
	assignTask := make([]int, len(tasks))
	procLoad := make([]float64, len(c.Processors))
	for _, t := range tl {
		bestP, bestV := 0, math.Inf(1)
		for p := range c.Processors {
			// Normalize by the replenishment interval so heterogeneous
			// processors balance fractionally.
			v := (procLoad[p] + t.load*c.Processors[p].Replenishment) / c.Processors[p].Replenishment
			if v < bestV {
				bestV, bestP = v, p
			}
		}
		assignTask[t.idx] = bestP
		procLoad[bestP] += t.load * c.Processors[bestP].Replenishment
	}
	assignBuf := make([]int, len(buffers))
	memUse := make([]int, len(c.Memories))
	for i, ref := range buffers {
		b := bufferByName(c, ref)
		bestM, bestV := 0, math.Inf(1)
		for m := range c.Memories {
			v := float64(memUse[m]+b.EffectiveContainerSize()) / math.Max(1, float64(c.Memories[m].Capacity))
			if v < bestV {
				bestV, bestM = v, m
			}
		}
		assignBuf[i] = bestM
		memUse[bestM] += b.EffectiveContainerSize()
	}

	evaluate := func() (*taskgraph.Config, *core.Result, float64) {
		cand := apply(c, tasks, assignTask, buffers, assignBuf)
		r, err := core.Solve(ctx, cand, opt)
		if err != nil || r.Status != core.StatusOptimal {
			return cand, r, math.Inf(1)
		}
		return cand, r, r.Mapping.Objective
	}

	evaluated := 0
	curCfg, curRes, curObj := evaluate()
	evaluated++

	// ---- Steepest-descent improvement ----
	for round := 0; round < maxRounds && ctx.Err() == nil; round++ {
		improved := false
		// Task moves.
		for i := range tasks {
			orig := assignTask[i]
			for p := range c.Processors {
				if p == orig {
					continue
				}
				assignTask[i] = p
				cfg2, r2, obj2 := evaluate()
				evaluated++
				if obj2 < curObj-1e-9 {
					curCfg, curRes, curObj = cfg2, r2, obj2
					orig = p
					improved = true
				} else {
					assignTask[i] = orig
				}
			}
			assignTask[i] = orig
		}
		// Buffer moves.
		for i := range buffers {
			orig := assignBuf[i]
			for m := range c.Memories {
				if m == orig {
					continue
				}
				assignBuf[i] = m
				cfg2, r2, obj2 := evaluate()
				evaluated++
				if obj2 < curObj-1e-9 {
					curCfg, curRes, curObj = cfg2, r2, obj2
					orig = m
					improved = true
				} else {
					assignBuf[i] = orig
				}
			}
			assignBuf[i] = orig
		}
		if !improved {
			break
		}
	}
	res := &Result{Config: curCfg, Solve: curRes, Evaluated: evaluated}
	if math.IsInf(curObj, 1) {
		return res, fmt.Errorf("binding: greedy search found no feasible binding (%d candidates tried)", evaluated)
	}
	return res, nil
}

// entityRef identifies a task or buffer by graph index and name.
type entityRef struct {
	graph int
	name  string
}

func entityLists(c *taskgraph.Config) (tasks, buffers []entityRef) {
	for gi, tg := range c.Graphs {
		for _, w := range tg.Tasks {
			tasks = append(tasks, entityRef{gi, w.Name})
		}
		for _, b := range tg.Buffers {
			buffers = append(buffers, entityRef{gi, b.Name})
		}
	}
	return tasks, buffers
}

func taskByName(c *taskgraph.Config, ref entityRef) *taskgraph.Task {
	tg := c.Graphs[ref.graph]
	for i := range tg.Tasks {
		if tg.Tasks[i].Name == ref.name {
			return &tg.Tasks[i]
		}
	}
	panic("binding: unknown task " + ref.name)
}

func bufferByName(c *taskgraph.Config, ref entityRef) *taskgraph.Buffer {
	tg := c.Graphs[ref.graph]
	for i := range tg.Buffers {
		if tg.Buffers[i].Name == ref.name {
			return &tg.Buffers[i]
		}
	}
	panic("binding: unknown buffer " + ref.name)
}

func graphOf(c *taskgraph.Config, ref entityRef) *taskgraph.TaskGraph {
	return c.Graphs[ref.graph]
}

// apply clones the configuration and rebinds tasks/buffers per the
// assignments.
func apply(c *taskgraph.Config, tasks []entityRef, assignTask []int, buffers []entityRef, assignBuf []int) *taskgraph.Config {
	cand := c.Clone()
	for i, ref := range tasks {
		tg := cand.Graphs[ref.graph]
		for j := range tg.Tasks {
			if tg.Tasks[j].Name == ref.name {
				tg.Tasks[j].Processor = cand.Processors[assignTask[i]].Name
			}
		}
	}
	for i, ref := range buffers {
		tg := cand.Graphs[ref.graph]
		for j := range tg.Buffers {
			if tg.Buffers[j].Name == ref.name {
				tg.Buffers[j].Memory = cand.Memories[assignBuf[i]].Name
			}
		}
	}
	return cand
}
