package binding

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/taskgraph"
)

// unbalanced returns a two-task configuration initially bound to ONE
// processor where no feasible mapping exists, while splitting across the
// two processors is feasible — binding search must find the split.
func unbalanced() *taskgraph.Config {
	c := gen.PaperT1(1)
	c.Graphs[0].Period = 4.2
	// Both tasks on p1: infeasible (see core.TestSolveInfeasibleCap).
	c.Graphs[0].Tasks[0].Processor = "p1"
	c.Graphs[0].Tasks[1].Processor = "p1"
	return c
}

func TestExhaustiveFindsFeasibleSplit(t *testing.T) {
	c := unbalanced()
	// Sanity: the given binding really is infeasible.
	r, err := core.Solve(context.Background(), c, core.Options{})
	if err != nil || r.Status != core.StatusInfeasible {
		t.Fatalf("precondition: expected infeasible, got %v %v", r.Status, err)
	}
	res, err := Exhaustive(context.Background(), c, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solve.Status != core.StatusOptimal {
		t.Fatalf("status %v", res.Solve.Status)
	}
	// The two tasks must land on different processors.
	p0 := res.Config.Graphs[0].Tasks[0].Processor
	p1 := res.Config.Graphs[0].Tasks[1].Processor
	if p0 == p1 {
		t.Fatalf("tasks still share processor %s", p0)
	}
	if res.Evaluated != 4 { // 2 processors ^ 2 tasks × 1 memory
		t.Fatalf("evaluated %d candidates, want 4", res.Evaluated)
	}
}

func TestGreedyFindsFeasibleSplit(t *testing.T) {
	c := unbalanced()
	res, err := Greedy(context.Background(), c, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solve.Status != core.StatusOptimal {
		t.Fatalf("status %v", res.Solve.Status)
	}
	p0 := res.Config.Graphs[0].Tasks[0].Processor
	p1 := res.Config.Graphs[0].Tasks[1].Processor
	if p0 == p1 {
		t.Fatalf("greedy left tasks on the same processor %s", p0)
	}
}

// TestGreedyMatchesExhaustiveSmall: on small instances the heuristic should
// reach the exhaustive optimum (or at least a feasible solution within a
// small factor).
func TestGreedyMatchesExhaustiveSmall(t *testing.T) {
	for _, build := range []func() *taskgraph.Config{
		func() *taskgraph.Config { return gen.PaperT1(4) },
		func() *taskgraph.Config { return gen.PaperT2(6) },
		unbalanced,
	} {
		c := build()
		ex, err := Exhaustive(context.Background(), c, core.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := Greedy(context.Background(), c, core.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Objective() > ex.Objective()*1.05+1e-6 {
			t.Fatalf("%s: greedy %v vs exhaustive %v", c.Name, gr.Objective(), ex.Objective())
		}
	}
}

// TestBindingImprovesMemoryPlacement: two memories, one big and one tiny;
// a buffer initially bound to the tiny memory must be moved.
func TestBindingImprovesMemoryPlacement(t *testing.T) {
	c := gen.PaperT1(0)
	c.Memories = []taskgraph.Memory{
		{Name: "tiny", Capacity: 2},
		{Name: "big", Capacity: 1000},
	}
	c.Graphs[0].Buffers[0].Memory = "tiny"
	// With γ ≤ 1 (constraint 10 leaves room for 1 container in "tiny"),
	// budgets must be huge; the binding search should prefer "big".
	res, err := Exhaustive(context.Background(), c, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Config.Graphs[0].Buffers[0].Memory; got != "big" {
		t.Fatalf("buffer stayed in %q", got)
	}
	gr, err := Greedy(context.Background(), c, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := gr.Config.Graphs[0].Buffers[0].Memory; got != "big" {
		t.Fatalf("greedy left buffer in %q", got)
	}
}

func TestExhaustiveCandidateCap(t *testing.T) {
	c := gen.Chain(gen.ChainOptions{Tasks: 10})
	if _, err := Exhaustive(context.Background(), c, core.Options{}, 100); err == nil {
		t.Fatal("candidate explosion not rejected")
	}
}

func TestExhaustiveInfeasibleEverywhere(t *testing.T) {
	c := gen.PaperT1(0)
	c.Graphs[0].Period = 0.5 // infeasible regardless of binding
	if _, err := Exhaustive(context.Background(), c, core.Options{}, 0); err == nil {
		t.Fatal("expected no-feasible-binding error")
	}
	if _, err := Greedy(context.Background(), c, core.Options{}, 0); err == nil {
		t.Fatal("greedy: expected no-feasible-binding error")
	}
}

func TestResultObjectiveInfeasible(t *testing.T) {
	r := &Result{}
	if !math.IsInf(r.Objective(), 1) {
		t.Fatal("empty result should have infinite objective")
	}
}

func TestBindingInvalidConfig(t *testing.T) {
	c := gen.PaperT1(0)
	c.Graphs = nil
	if _, err := Exhaustive(context.Background(), c, core.Options{}, 0); err == nil {
		t.Fatal("invalid config accepted by Exhaustive")
	}
	if _, err := Greedy(context.Background(), c, core.Options{}, 0); err == nil {
		t.Fatal("invalid config accepted by Greedy")
	}
}

// TestGreedyMultiJob: greedy binding works on a larger multi-job system
// (exhaustive would explode) and produces a verified mapping.
func TestGreedyMultiJob(t *testing.T) {
	c := gen.RandomJobs(gen.RandomOptions{Seed: 5, Jobs: 3})
	res, err := Greedy(context.Background(), c, core.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solve.Status != core.StatusOptimal {
		t.Fatalf("status %v", res.Solve.Status)
	}
	if res.Solve.Verification == nil || !res.Solve.Verification.OK {
		t.Fatal("greedy result not verified")
	}
}
