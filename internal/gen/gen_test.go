package gen

import (
	"encoding/json"
	"testing"
)

func TestPaperT1Valid(t *testing.T) {
	for _, cap := range []int{0, 1, 10} {
		c := PaperT1(cap)
		if err := c.Validate(); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if len(c.Graphs[0].Tasks) != 2 || len(c.Graphs[0].Buffers) != 1 {
			t.Fatalf("cap %d: wrong shape", cap)
		}
		if c.Graphs[0].Buffers[0].MaxContainers != cap {
			t.Fatalf("cap %d not applied", cap)
		}
		if c.Graphs[0].Period != 10 {
			t.Fatal("period wrong")
		}
	}
}

func TestPaperT2Valid(t *testing.T) {
	c := PaperT2(5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Graphs[0].Tasks) != 3 || len(c.Graphs[0].Buffers) != 2 {
		t.Fatal("wrong shape")
	}
	for _, b := range c.Graphs[0].Buffers {
		if b.MaxContainers != 5 {
			t.Fatal("cap not applied to both buffers")
		}
	}
	// wb is in the middle: both buffers touch it.
	if c.Graphs[0].Buffers[0].To != "wb" || c.Graphs[0].Buffers[1].From != "wb" {
		t.Fatal("chain order wrong")
	}
}

func TestChainShapes(t *testing.T) {
	c := Chain(ChainOptions{Tasks: 5})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Processors) != 5 || len(c.Graphs[0].Tasks) != 5 || len(c.Graphs[0].Buffers) != 4 {
		t.Fatalf("chain shape wrong: %d procs %d tasks %d buffers",
			len(c.Processors), len(c.Graphs[0].Tasks), len(c.Graphs[0].Buffers))
	}
	shared := Chain(ChainOptions{Tasks: 6, SharedProcessors: 2})
	if err := shared.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(shared.Processors) != 2 {
		t.Fatal("shared processors not applied")
	}
	if got := shared.TasksOn("p0"); len(got) != 3 {
		t.Fatalf("round-robin binding wrong: %v", got)
	}
}

func TestChainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chain(0) did not panic")
		}
	}()
	Chain(ChainOptions{Tasks: 0})
}

func TestRingValid(t *testing.T) {
	c := Ring(4, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	tg := c.Graphs[0]
	if len(tg.Buffers) != 4 {
		t.Fatalf("ring buffers = %d, want 4", len(tg.Buffers))
	}
	last := tg.Buffers[len(tg.Buffers)-1]
	if last.From != "w3" || last.To != "w0" || last.InitialTokens != 2 {
		t.Fatalf("closing buffer wrong: %+v", last)
	}
}

func TestRandomJobsValidAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := RandomJobs(RandomOptions{Seed: seed})
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	a := RandomJobs(RandomOptions{Seed: 7, Jobs: 3})
	b := RandomJobs(RandomOptions{Seed: 7, Jobs: 3})
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("RandomJobs is not deterministic for equal seeds")
	}
	c2 := RandomJobs(RandomOptions{Seed: 8, Jobs: 3})
	jc, _ := json.Marshal(c2)
	if string(ja) == string(jc) {
		t.Fatal("different seeds produced identical configurations")
	}
}

func TestRandomMultiRateChain(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := RandomMultiRateChain(seed, 4, 0.4)
		if err := c.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(c.Graphs[0].Tasks) != 4 || len(c.Graphs[0].Buffers) != 3 {
			t.Fatalf("seed %d: wrong shape", seed)
		}
	}
	a, _ := json.Marshal(RandomMultiRateChain(3, 3, 0))
	b, _ := json.Marshal(RandomMultiRateChain(3, 3, 0))
	if string(a) != string(b) {
		t.Fatal("RandomMultiRateChain not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n < 2 did not panic")
		}
	}()
	RandomMultiRateChain(0, 1, 0)
}

func TestRandomJobsRespectsShape(t *testing.T) {
	c := RandomJobs(RandomOptions{Seed: 3, Jobs: 4, Processors: 6, Memories: 3, MinTasks: 3, MaxTasks: 3})
	if len(c.Graphs) != 4 || len(c.Processors) != 6 || len(c.Memories) != 3 {
		t.Fatal("shape options ignored")
	}
	for _, g := range c.Graphs {
		if len(g.Tasks) != 3 {
			t.Fatalf("task count %d, want 3", len(g.Tasks))
		}
	}
}

func TestFanOutShapes(t *testing.T) {
	for _, w := range []int{1, 4, 1000} {
		c := FanOut(FanOutOptions{Width: w})
		if err := c.Validate(); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		tg := c.Graphs[0]
		if len(tg.Tasks) != w+2 || len(tg.Buffers) != 2*w {
			t.Fatalf("width %d: %d tasks, %d buffers", w, len(tg.Tasks), len(tg.Buffers))
		}
	}
	c := FanOut(FanOutOptions{Width: 8, SharedProcessors: 3, MaxContainers: 5})
	if len(c.Processors) != 3 {
		t.Fatal("shared processors ignored")
	}
	for _, b := range c.Graphs[0].Buffers {
		if b.MaxContainers != 5 {
			t.Fatal("cap not applied")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width < 1 did not panic")
		}
	}()
	FanOut(FanOutOptions{})
}

func TestRandomDAGValidAndDeterministic(t *testing.T) {
	for _, n := range []int{2, 10, 500} {
		c := RandomDAG(DAGOptions{Seed: 7, Tasks: n})
		if err := c.Validate(); err != nil {
			t.Fatalf("n %d: %v", n, err)
		}
		tg := c.Graphs[0]
		if len(tg.Tasks) != n {
			t.Fatalf("n %d: %d tasks", n, len(tg.Tasks))
		}
		// Connected: the spanning construction gives every task but the
		// first an incoming buffer.
		if len(tg.Buffers) < n-1 {
			t.Fatalf("n %d: only %d buffers", n, len(tg.Buffers))
		}
	}
	a, _ := json.Marshal(RandomDAG(DAGOptions{Seed: 11, Tasks: 40}))
	b, _ := json.Marshal(RandomDAG(DAGOptions{Seed: 11, Tasks: 40}))
	if string(a) != string(b) {
		t.Fatal("RandomDAG not deterministic")
	}
	if string(a) == func() string {
		d, _ := json.Marshal(RandomDAG(DAGOptions{Seed: 12, Tasks: 40}))
		return string(d)
	}() {
		t.Fatal("seed has no effect")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("n < 2 did not panic")
		}
	}()
	RandomDAG(DAGOptions{Tasks: 1})
}
