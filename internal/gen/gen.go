// Package gen constructs task-graph configurations: the two instances from
// the paper's evaluation (§V) and parametric/random workloads used by the
// scalability experiments, the stress tests, and the examples.
//
// All generators are deterministic: random variants take an explicit seed.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/taskgraph"
)

// PaperT1 returns the producer-consumer configuration of the paper's first
// experiment: two tasks on private processors, ϱ = 40 Mcycles, χ = 1 Mcycle,
// µ = 10 Mcycles, unit containers, weights preferring budget minimization.
// maxContainers caps the buffer (0 = uncapped), which is how the paper
// explores the trade-off of Figure 2.
func PaperT1(maxContainers int) *taskgraph.Config {
	return &taskgraph.Config{
		Name: "paper-T1",
		Processors: []taskgraph.Processor{
			{Name: "p1", Replenishment: 40},
			{Name: "p2", Replenishment: 40},
		},
		Memories:    []taskgraph.Memory{{Name: "m1", Capacity: 1 << 20}},
		Granularity: taskgraph.DefaultGranularity,
		Graphs: []*taskgraph.TaskGraph{{
			Name:   "T1",
			Period: 10,
			Tasks: []taskgraph.Task{
				// Budget weights ≫ buffer weights: "prefer minimisation of
				// the budgets over minimisation of the buffer sizes".
				{Name: "wa", Processor: "p1", WCET: 1, BudgetWeight: 1000},
				{Name: "wb", Processor: "p2", WCET: 1, BudgetWeight: 1000},
			},
			Buffers: []taskgraph.Buffer{{
				Name: "bab", From: "wa", To: "wb", Memory: "m1",
				MaxContainers: maxContainers,
			}},
		}},
	}
}

// PaperT2 returns the three-task chain of the paper's second experiment: T1
// extended with task wc on processor p3 and buffer bbc, same parameters.
// maxContainers caps both buffers (the paper constrains "both buffer
// capacities"). The objective minimizes the sum of budgets.
func PaperT2(maxContainers int) *taskgraph.Config {
	return &taskgraph.Config{
		Name: "paper-T2",
		Processors: []taskgraph.Processor{
			{Name: "p1", Replenishment: 40},
			{Name: "p2", Replenishment: 40},
			{Name: "p3", Replenishment: 40},
		},
		Memories:    []taskgraph.Memory{{Name: "m1", Capacity: 1 << 20}},
		Granularity: taskgraph.DefaultGranularity,
		Graphs: []*taskgraph.TaskGraph{{
			Name:   "T2",
			Period: 10,
			Tasks: []taskgraph.Task{
				{Name: "wa", Processor: "p1", WCET: 1, BudgetWeight: 1000},
				{Name: "wb", Processor: "p2", WCET: 1, BudgetWeight: 1000},
				{Name: "wc", Processor: "p3", WCET: 1, BudgetWeight: 1000},
			},
			Buffers: []taskgraph.Buffer{
				{Name: "bab", From: "wa", To: "wb", Memory: "m1", MaxContainers: maxContainers},
				{Name: "bbc", From: "wb", To: "wc", Memory: "m1", MaxContainers: maxContainers},
			},
		}},
	}
}

// ChainOptions parameterizes Chain.
type ChainOptions struct {
	// Tasks is the chain length (≥ 1).
	Tasks int
	// Replenishment is ϱ for every processor (default 40).
	Replenishment float64
	// WCET is χ for every task (default 1).
	WCET float64
	// Period is µ (default 10).
	Period float64
	// SharedProcessors, when positive, binds the tasks round-robin onto this
	// many processors instead of one private processor per task.
	SharedProcessors int
	// MaxContainers caps every buffer (0 = uncapped).
	MaxContainers int
}

func (o ChainOptions) withDefaults() ChainOptions {
	if o.Replenishment == 0 {
		o.Replenishment = 40
	}
	if o.WCET == 0 {
		o.WCET = 1
	}
	if o.Period == 0 {
		o.Period = 10
	}
	return o
}

// Chain builds a pipeline of n tasks w0 → w1 → … → w(n−1), generalizing the
// paper's T1 (n = 2) and T2 (n = 3).
func Chain(opt ChainOptions) *taskgraph.Config {
	opt = opt.withDefaults()
	n := opt.Tasks
	if n < 1 {
		panic("gen: chain needs at least one task")
	}
	nProcs := n
	if opt.SharedProcessors > 0 {
		nProcs = opt.SharedProcessors
	}
	c := &taskgraph.Config{
		Name:        fmt.Sprintf("chain-%d", n),
		Memories:    []taskgraph.Memory{{Name: "m1", Capacity: 1 << 30}},
		Granularity: taskgraph.DefaultGranularity,
	}
	for i := 0; i < nProcs; i++ {
		c.Processors = append(c.Processors, taskgraph.Processor{
			Name: fmt.Sprintf("p%d", i), Replenishment: opt.Replenishment,
		})
	}
	tg := &taskgraph.TaskGraph{Name: fmt.Sprintf("chain%d", n), Period: opt.Period}
	for i := 0; i < n; i++ {
		tg.Tasks = append(tg.Tasks, taskgraph.Task{
			Name:      fmt.Sprintf("w%d", i),
			Processor: fmt.Sprintf("p%d", i%nProcs),
			WCET:      opt.WCET,
		})
	}
	for i := 0; i+1 < n; i++ {
		tg.Buffers = append(tg.Buffers, taskgraph.Buffer{
			Name:          fmt.Sprintf("b%d", i),
			From:          fmt.Sprintf("w%d", i),
			To:            fmt.Sprintf("w%d", i+1),
			Memory:        "m1",
			MaxContainers: opt.MaxContainers,
		})
	}
	c.Graphs = []*taskgraph.TaskGraph{tg}
	return c
}

// FanOutOptions parameterizes FanOut.
type FanOutOptions struct {
	// Width is the number of parallel workers (≥ 1); the graph has
	// Width + 2 tasks (source → workers → sink).
	Width int
	// Replenishment is ϱ for every processor (default 40).
	Replenishment float64
	// WCET is χ for every task (default 1).
	WCET float64
	// Period is µ (default 10).
	Period float64
	// SharedProcessors, when positive, binds the tasks round-robin onto this
	// many processors instead of one private processor per task.
	SharedProcessors int
	// MaxContainers caps every buffer (0 = uncapped).
	MaxContainers int
}

// FanOut builds a wide scatter/gather graph: a source task feeding Width
// parallel workers that merge into a sink (2·Width buffers). With Width in
// the thousands it exercises sparsity patterns a deep chain never shows:
// two high-degree rows instead of a banded diagonal.
func FanOut(opt FanOutOptions) *taskgraph.Config {
	if opt.Width < 1 {
		panic("gen: fan-out needs at least one worker")
	}
	co := ChainOptions{
		Replenishment: opt.Replenishment, WCET: opt.WCET, Period: opt.Period,
	}.withDefaults()
	n := opt.Width + 2
	nProcs := n
	if opt.SharedProcessors > 0 {
		nProcs = opt.SharedProcessors
	}
	c := &taskgraph.Config{
		Name:        fmt.Sprintf("fanout-%d", opt.Width),
		Memories:    []taskgraph.Memory{{Name: "m1", Capacity: 1 << 30}},
		Granularity: taskgraph.DefaultGranularity,
	}
	for i := 0; i < nProcs; i++ {
		c.Processors = append(c.Processors, taskgraph.Processor{
			Name: fmt.Sprintf("p%d", i), Replenishment: co.Replenishment,
		})
	}
	tg := &taskgraph.TaskGraph{Name: fmt.Sprintf("fanout%d", opt.Width), Period: co.Period}
	task := func(i int) string { return fmt.Sprintf("w%d", i) }
	for i := 0; i < n; i++ {
		tg.Tasks = append(tg.Tasks, taskgraph.Task{
			Name:      task(i),
			Processor: fmt.Sprintf("p%d", i%nProcs),
			WCET:      co.WCET,
		})
	}
	for k := 0; k < opt.Width; k++ {
		w := task(k + 1)
		tg.Buffers = append(tg.Buffers,
			taskgraph.Buffer{
				Name: fmt.Sprintf("bs%d", k), From: task(0), To: w,
				Memory: "m1", MaxContainers: opt.MaxContainers,
			},
			taskgraph.Buffer{
				Name: fmt.Sprintf("bt%d", k), From: w, To: task(n - 1),
				Memory: "m1", MaxContainers: opt.MaxContainers,
			})
	}
	c.Graphs = []*taskgraph.TaskGraph{tg}
	return c
}

// DAGOptions parameterizes RandomDAG.
type DAGOptions struct {
	Seed int64
	// Tasks is the number of tasks (≥ 2).
	Tasks int
	// ExtraEdges adds this many random forward skip edges on top of the
	// spanning edges that keep the DAG connected (default Tasks/2).
	ExtraEdges int
	// Replenishment is ϱ for every processor (default 40).
	Replenishment float64
	// WCET is χ for every task (default 1).
	WCET float64
	// Period is µ (default 10).
	Period float64
	// SharedProcessors, when positive, binds the tasks round-robin onto this
	// many processors instead of one private processor per task.
	SharedProcessors int
	// MaxContainers caps every buffer (0 = uncapped).
	MaxContainers int
}

// RandomDAG builds a random connected single-rate DAG over Tasks tasks in a
// fixed topological order: every task (but the first) consumes from one
// uniformly chosen earlier task, and ExtraEdges additional forward edges are
// sprinkled on top (duplicates between the same pair are skipped). The
// result is deterministic in the seed and scales to thousands of tasks,
// giving the cache and warm-start benchmarks irregular sparsity patterns
// between the chain and fan-out extremes.
func RandomDAG(opt DAGOptions) *taskgraph.Config {
	if opt.Tasks < 2 {
		panic("gen: random DAG needs at least two tasks")
	}
	co := ChainOptions{
		Replenishment: opt.Replenishment, WCET: opt.WCET, Period: opt.Period,
	}.withDefaults()
	n := opt.Tasks
	extra := opt.ExtraEdges
	if extra == 0 {
		extra = n / 2
	}
	nProcs := n
	if opt.SharedProcessors > 0 {
		nProcs = opt.SharedProcessors
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c := &taskgraph.Config{
		Name:        fmt.Sprintf("dag-%d-%d", n, opt.Seed),
		Memories:    []taskgraph.Memory{{Name: "m1", Capacity: 1 << 30}},
		Granularity: taskgraph.DefaultGranularity,
	}
	for i := 0; i < nProcs; i++ {
		c.Processors = append(c.Processors, taskgraph.Processor{
			Name: fmt.Sprintf("p%d", i), Replenishment: co.Replenishment,
		})
	}
	tg := &taskgraph.TaskGraph{Name: fmt.Sprintf("dag%d", n), Period: co.Period}
	for i := 0; i < n; i++ {
		tg.Tasks = append(tg.Tasks, taskgraph.Task{
			Name:      fmt.Sprintf("w%d", i),
			Processor: fmt.Sprintf("p%d", i%nProcs),
			WCET:      co.WCET,
		})
	}
	seen := map[[2]int]bool{}
	addBuf := func(from, to int) {
		if seen[[2]int{from, to}] {
			return
		}
		seen[[2]int{from, to}] = true
		tg.Buffers = append(tg.Buffers, taskgraph.Buffer{
			Name:          fmt.Sprintf("b%d", len(tg.Buffers)),
			From:          fmt.Sprintf("w%d", from),
			To:            fmt.Sprintf("w%d", to),
			Memory:        "m1",
			MaxContainers: opt.MaxContainers,
		})
	}
	for i := 1; i < n; i++ {
		addBuf(rng.Intn(i), i)
	}
	for k := 0; k < extra; k++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from < to {
			addBuf(from, to)
		}
	}
	c.Graphs = []*taskgraph.TaskGraph{tg}
	return c
}

// Ring builds a cyclic task graph w0 → w1 → … → w(n−1) → w0 where the
// closing buffer starts with initialTokens filled containers (it must be
// ≥ 1 or the graph deadlocks).
func Ring(n int, initialTokens int) *taskgraph.Config {
	c := Chain(ChainOptions{Tasks: n})
	c.Name = fmt.Sprintf("ring-%d", n)
	tg := c.Graphs[0]
	tg.Name = fmt.Sprintf("ring%d", n)
	tg.Buffers = append(tg.Buffers, taskgraph.Buffer{
		Name:          "bclose",
		From:          fmt.Sprintf("w%d", n-1),
		To:            "w0",
		Memory:        "m1",
		InitialTokens: initialTokens,
	})
	return c
}

// RandomMultiRateChain generates a random consistent multi-rate pipeline of
// n tasks: each buffer gets random production/consumption rates in [1, 3],
// and WCETs are scaled so that rate-minimal budgets stay below loadFactor of
// each (private) processor. Deterministic in the seed.
func RandomMultiRateChain(seed int64, n int, loadFactor float64) *taskgraph.Config {
	if n < 2 {
		panic("gen: multi-rate chain needs at least two tasks")
	}
	if loadFactor == 0 {
		loadFactor = 0.5
	}
	rng := rand.New(rand.NewSource(seed))
	const rho, period = 40.0, 20.0
	c := &taskgraph.Config{
		Name:        fmt.Sprintf("mrchain-%d", seed),
		Memories:    []taskgraph.Memory{{Name: "m0", Capacity: 1 << 20}},
		Granularity: taskgraph.DefaultGranularity,
	}
	tg := &taskgraph.TaskGraph{Name: "mr", Period: period}
	// Random rates per buffer; repetition counts follow along the chain.
	// q(0) starts at 1 and q(i+1) = q(i)·prod/cons must stay integral: pick
	// cons dividing q(i)·prod.
	q := 1
	qs := []int{1}
	type rates struct{ p, c int }
	var rs []rates
	for i := 0; i+1 < n; i++ {
		p := 1 + rng.Intn(3)
		// Divisors of q·p.
		qp := q * p
		var divs []int
		for d := 1; d <= 3 && d <= qp; d++ {
			if qp%d == 0 {
				divs = append(divs, d)
			}
		}
		cRate := divs[rng.Intn(len(divs))]
		rs = append(rs, rates{p, cRate})
		q = qp / cRate
		qs = append(qs, q)
	}
	for i := 0; i < n; i++ {
		c.Processors = append(c.Processors, taskgraph.Processor{
			Name: fmt.Sprintf("p%d", i), Replenishment: rho,
		})
		// Rate-minimal budget = q·ϱχ/µ ≤ loadFactor·ϱ ⟹ χ ≤ loadFactor·µ/q.
		chi := loadFactor * period / float64(qs[i]) * (0.3 + 0.7*rng.Float64())
		tg.Tasks = append(tg.Tasks, taskgraph.Task{
			Name:      fmt.Sprintf("w%d", i),
			Processor: fmt.Sprintf("p%d", i),
			WCET:      chi,
		})
	}
	for i, r := range rs {
		tg.Buffers = append(tg.Buffers, taskgraph.Buffer{
			Name:   fmt.Sprintf("b%d", i),
			From:   fmt.Sprintf("w%d", i),
			To:     fmt.Sprintf("w%d", i+1),
			Memory: "m0",
			Prod:   r.p,
			Cons:   r.c,
		})
	}
	c.Graphs = []*taskgraph.TaskGraph{tg}
	return c
}

// RandomOptions parameterizes RandomJobs.
type RandomOptions struct {
	Seed int64
	// Jobs is the number of independent task graphs (default 2).
	Jobs int
	// TasksPerJob bounds the tasks of each graph (default [2, 6]).
	MinTasks, MaxTasks int
	// Processors is the processor pool shared by all jobs (default 4).
	Processors int
	// Memories is the number of memories (default 2).
	Memories int
	// LoadFactor scales how much processor capacity the rate-minimal budgets
	// of all tasks consume (default 0.35; keep below ~0.6 for feasible
	// instances).
	LoadFactor float64
}

func (o RandomOptions) withDefaults() RandomOptions {
	if o.Jobs == 0 {
		o.Jobs = 2
	}
	if o.MinTasks == 0 {
		o.MinTasks = 2
	}
	if o.MaxTasks == 0 {
		o.MaxTasks = 6
	}
	if o.Processors == 0 {
		o.Processors = 4
	}
	if o.Memories == 0 {
		o.Memories = 2
	}
	if o.LoadFactor == 0 {
		o.LoadFactor = 0.35
	}
	return o
}

// RandomJobs generates a multi-job configuration: each job is a random
// forward DAG (series-parallel-ish pipeline with skip edges), tasks bound to
// random shared processors. Workloads are scaled so that rate-minimal
// budgets consume about LoadFactor of each processor, which keeps instances
// feasible when buffer capacities are unconstrained.
func RandomJobs(opt RandomOptions) *taskgraph.Config {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	const rho = 40.0
	c := &taskgraph.Config{
		Name:        fmt.Sprintf("random-%d", opt.Seed),
		Granularity: taskgraph.DefaultGranularity,
	}
	for i := 0; i < opt.Processors; i++ {
		c.Processors = append(c.Processors, taskgraph.Processor{
			Name: fmt.Sprintf("p%d", i), Replenishment: rho,
			Overhead: float64(rng.Intn(3)),
		})
	}
	for i := 0; i < opt.Memories; i++ {
		c.Memories = append(c.Memories, taskgraph.Memory{
			Name: fmt.Sprintf("m%d", i), Capacity: 1 << 20,
		})
	}
	// Total tasks to distribute load over.
	counts := make([]int, opt.Jobs)
	total := 0
	for j := range counts {
		counts[j] = opt.MinTasks + rng.Intn(opt.MaxTasks-opt.MinTasks+1)
		total += counts[j]
	}
	// Average tasks per processor determines the per-task budget share.
	perTask := opt.LoadFactor * rho * float64(opt.Processors) / float64(total)
	for j := 0; j < opt.Jobs; j++ {
		n := counts[j]
		period := 8 + rng.Float64()*8 // 8-16 Mcycles
		tg := &taskgraph.TaskGraph{
			Name:   fmt.Sprintf("job%d", j),
			Period: period,
		}
		for i := 0; i < n; i++ {
			// χ chosen so the rate-minimal budget ϱχ/µ ≈ perTask·U(0.5,1).
			chi := perTask * (0.5 + rng.Float64()*0.5) * period / rho
			tg.Tasks = append(tg.Tasks, taskgraph.Task{
				Name:      fmt.Sprintf("j%dw%d", j, i),
				Processor: fmt.Sprintf("p%d", rng.Intn(opt.Processors)),
				WCET:      chi,
			})
		}
		// Backbone pipeline plus random forward skip edges.
		bid := 0
		addBuf := func(from, to int) {
			tg.Buffers = append(tg.Buffers, taskgraph.Buffer{
				Name:          fmt.Sprintf("j%db%d", j, bid),
				From:          fmt.Sprintf("j%dw%d", j, from),
				To:            fmt.Sprintf("j%dw%d", j, to),
				Memory:        fmt.Sprintf("m%d", rng.Intn(opt.Memories)),
				ContainerSize: 1 + rng.Intn(4),
			})
			bid++
		}
		for i := 0; i+1 < n; i++ {
			addBuf(i, i+1)
		}
		for k := 0; k < n/2; k++ {
			from := rng.Intn(n)
			to := rng.Intn(n)
			if from < to {
				addBuf(from, to)
			}
		}
		c.Graphs = append(c.Graphs, tg)
	}
	return c
}
