// Package sim is a discrete-event simulator of the real multiprocessor
// system the paper targets: tasks running under TDM budget schedulers,
// synchronizing on containers in fixed-capacity FIFO buffers.
//
// The dataflow model used by the optimizer (internal/dfmodel) abstracts the
// TDM scheduler by a worst-case latency-rate curve; this simulator
// implements the concrete semantics that curve must bound:
//
//   - each task owns a contiguous slice of β(w) Mcycles at a fixed offset in
//     its processor's ϱ(p) wheel, and makes progress only inside its slice;
//   - a task starts a firing when every input buffer holds a filled
//     container and every output buffer an empty one; at the start it claims
//     them, at completion it frees the input containers and fills the output
//     containers;
//   - execution times may vary per firing (data-dependent), bounded by the
//     task's WCET.
//
// Running a verified mapping here for arbitrary slice offsets and execution
// times checks the paper's conservativeness claim end to end: the achieved
// steady-state period never exceeds the required period µ.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/dfmodel"
	"repro/internal/taskgraph"
)

// ExecModel returns the execution time (in Mcycles) of the given firing of a
// task. Implementations must never exceed the task's WCET; Run checks this.
type ExecModel func(task string, firing int) float64

// Options configures a simulation run.
type Options struct {
	// Offsets fixes each task's TDM slice offset within its processor's
	// wheel. nil packs tasks back to back after the scheduling overhead
	// (AutoOffsets).
	Offsets map[string]float64
	// Exec supplies per-firing execution times; nil means WCET always.
	Exec ExecModel
	// Firings is the number of graph iterations to simulate (default 200,
	// minimum 8): every task fires Firings·q(task) times, where q is the
	// repetition vector (all ones for single-rate graphs).
	Firings int
	// Horizon aborts the run at this simulated time (default: unlimited).
	Horizon float64
}

// TaskStats summarizes one task's simulated behaviour.
type TaskStats struct {
	Firings int
	// First and Last are the completion times of the first and last firing.
	First, Last float64
	// SteadyPeriod estimates the steady-state inter-completion time from the
	// second half of the run. The estimate carries a transient bias of up to
	// roughly one replenishment interval divided by the number of firings;
	// use Done for exact per-firing guarantees.
	SteadyPeriod float64
	// Done lists the completion time of every simulated firing.
	Done []float64
}

// Result is the outcome of a simulation.
type Result struct {
	Tasks map[string]TaskStats
	// Deadlocked reports that the system stopped before every task finished
	// its firings (this would falsify the model's conservativeness and
	// cannot happen for verified mappings).
	Deadlocked bool
	// EndTime is the simulated time at which the run ended.
	EndTime float64
}

// AutoOffsets packs each processor's tasks back to back, starting after the
// scheduling overhead. It fails if the budgets do not fit the wheel.
func AutoOffsets(c *taskgraph.Config, m *taskgraph.Mapping) (map[string]float64, error) {
	offsets := map[string]float64{}
	for i := range c.Processors {
		p := &c.Processors[i]
		at := p.Overhead
		tasks := c.TasksOn(p.Name)
		sort.Strings(tasks)
		for _, tn := range tasks {
			b, ok := m.Budgets[tn]
			if !ok {
				return nil, fmt.Errorf("sim: no budget for task %q", tn)
			}
			offsets[tn] = at
			at += b
		}
		if at > p.Replenishment*(1+1e-9) {
			return nil, fmt.Errorf("sim: budgets on processor %q exceed the wheel: %v > %v",
				p.Name, at, p.Replenishment)
		}
	}
	return offsets, nil
}

// serviceCompletion returns the earliest time a task with slice
// [off, off+beta) in a wheel of length rho finishes `work` Mcycles of
// execution when it becomes ready at time `start`.
func serviceCompletion(rho, off, beta, start, work float64) float64 {
	if work <= 0 {
		return start
	}
	t := start
	for {
		// Window of the wheel containing (or preceding) t; when t is at or
		// past the end of that window, move to the next wheel's window. The
		// explicit t >= winEnd re-check also guards against floor() rounding
		// at exact wheel boundaries, which would otherwise stall the loop.
		n := math.Floor((t - off) / rho)
		winStart := n*rho + off
		winEnd := winStart + beta
		if t >= winEnd {
			winStart = (n+1)*rho + off
			winEnd = winStart + beta
		}
		if t < winStart {
			t = winStart
		}
		avail := winEnd - t
		if work <= avail {
			return t + work
		}
		work -= avail
		t = winEnd
	}
}

// bufState tracks a FIFO buffer's containers during simulation.
type bufState struct {
	tokens int // filled containers available to the consumer
	space  int // empty containers available to the producer
}

// taskState tracks one task during simulation.
type taskState struct {
	name     string
	target   int // firings to simulate (iterations × repetition count)
	rho      float64
	off      float64
	beta     float64
	wcet     float64
	inputs   []int // buffer indices consumed
	inRates  []int // containers consumed per firing, parallel to inputs
	outputs  []int // buffer indices produced
	outRates []int // containers produced per firing, parallel to outputs
	running  bool
	fired    int
	done     []float64 // completion times
}

// event is a firing completion.
type event struct {
	time float64
	task int
	seq  int // tie-break for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//bbvet:allow floatcmp heap comparator needs an exact, self-consistent ordering; seq breaks ties
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }
func (h *eventHeap) empty() bool    { return len(*h) == 0 }
func (h *eventHeap) push(e event)   { heap.Push(h, e) }
func (h *eventHeap) pop() (e event) { return heap.Pop(h).(event) }

// Run simulates the mapped configuration. The mapping must assign a budget
// to every task and a capacity to every buffer.
func Run(c *taskgraph.Config, m *taskgraph.Mapping, opt Options) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if opt.Firings == 0 {
		opt.Firings = 200
	}
	if opt.Firings < 8 {
		opt.Firings = 8
	}
	offsets := opt.Offsets
	if offsets == nil {
		var err error
		offsets, err = AutoOffsets(c, m)
		if err != nil {
			return nil, err
		}
	}

	// Build the flat simulation state.
	var tasks []*taskState
	taskIdx := map[string]int{}
	var bufs []*bufState
	var producerOf, consumerOf []int // per buffer index
	for _, tg := range c.Graphs {
		reps, err := dfmodel.Repetitions(tg)
		if err != nil {
			return nil, err
		}
		for i := range tg.Tasks {
			w := &tg.Tasks[i]
			p, _ := c.Processor(w.Processor)
			beta, ok := m.Budgets[w.Name]
			if !ok || beta <= 0 {
				return nil, fmt.Errorf("sim: missing or non-positive budget for task %q", w.Name)
			}
			off, ok := offsets[w.Name]
			if !ok {
				return nil, fmt.Errorf("sim: no slice offset for task %q", w.Name)
			}
			if off < 0 || off+beta > p.Replenishment*(1+1e-9) {
				return nil, fmt.Errorf("sim: slice of task %q does not fit the wheel", w.Name)
			}
			taskIdx[w.Name] = len(tasks)
			tasks = append(tasks, &taskState{
				name: w.Name, target: opt.Firings * reps[w.Name],
				rho: p.Replenishment, off: off, beta: beta, wcet: w.WCET,
			})
		}
		for i := range tg.Buffers {
			bf := &tg.Buffers[i]
			gamma, ok := m.Capacities[bf.Name]
			if !ok || gamma < 1 {
				return nil, fmt.Errorf("sim: missing or invalid capacity for buffer %q", bf.Name)
			}
			if gamma < bf.InitialTokens {
				return nil, fmt.Errorf("sim: buffer %q capacity below initial tokens", bf.Name)
			}
			bi := len(bufs)
			bufs = append(bufs, &bufState{tokens: bf.InitialTokens, space: gamma - bf.InitialTokens})
			prod := tasks[taskIdx[bf.From]]
			prod.outputs = append(prod.outputs, bi)
			prod.outRates = append(prod.outRates, bf.EffectiveProd())
			cons := tasks[taskIdx[bf.To]]
			cons.inputs = append(cons.inputs, bi)
			cons.inRates = append(cons.inRates, bf.EffectiveCons())
			producerOf = append(producerOf, taskIdx[bf.From])
			consumerOf = append(consumerOf, taskIdx[bf.To])
		}
	}
	// Validate slice disjointness per processor.
	if err := checkSlices(c, m, offsets); err != nil {
		return nil, err
	}

	exec := opt.Exec
	if exec == nil {
		exec = func(string, int) float64 { return math.NaN() } // sentinel: use WCET
	}

	var pq eventHeap
	seq := 0
	tryStart := func(ti int, now float64) {
		ts := tasks[ti]
		if ts.running || ts.fired >= ts.target {
			return
		}
		for i, bi := range ts.inputs {
			if bufs[bi].tokens < ts.inRates[i] {
				return
			}
		}
		for i, bi := range ts.outputs {
			if bufs[bi].space < ts.outRates[i] {
				return
			}
		}
		// Claim containers.
		for i, bi := range ts.inputs {
			bufs[bi].tokens -= ts.inRates[i]
		}
		for i, bi := range ts.outputs {
			bufs[bi].space -= ts.outRates[i]
		}
		work := exec(ts.name, ts.fired)
		if math.IsNaN(work) {
			work = ts.wcet
		}
		if work < 0 || work > ts.wcet*(1+1e-12) {
			panic(fmt.Sprintf("sim: exec model returned %v for task %s (WCET %v)", work, ts.name, ts.wcet))
		}
		ts.running = true
		done := serviceCompletion(ts.rho, ts.off, ts.beta, now, work)
		seq++
		pq.push(event{time: done, task: ti, seq: seq})
	}

	for ti := range tasks {
		tryStart(ti, 0)
	}
	endTime := 0.0
	for !pq.empty() {
		e := pq.pop()
		if opt.Horizon > 0 && e.time > opt.Horizon {
			endTime = opt.Horizon
			break
		}
		endTime = e.time
		ts := tasks[e.task]
		ts.running = false
		ts.fired++
		ts.done = append(ts.done, e.time)
		// Release input containers, fill output containers.
		for i, bi := range ts.inputs {
			bufs[bi].space += ts.inRates[i]
		}
		for i, bi := range ts.outputs {
			bufs[bi].tokens += ts.outRates[i]
		}
		// The completion may unblock this task, the producers feeding its
		// inputs (space freed), and the consumers of its outputs (tokens).
		tryStart(e.task, e.time)
		for _, bi := range ts.inputs {
			tryStart(producerOf[bi], e.time)
		}
		for _, bi := range ts.outputs {
			tryStart(consumerOf[bi], e.time)
		}
	}

	res := &Result{Tasks: map[string]TaskStats{}, EndTime: endTime}
	for _, ts := range tasks {
		st := TaskStats{Firings: ts.fired}
		if ts.fired > 0 {
			st.First = ts.done[0]
			st.Last = ts.done[len(ts.done)-1]
		}
		st.Done = ts.done
		if ts.fired >= 4 {
			half := ts.fired / 2
			st.SteadyPeriod = (ts.done[ts.fired-1] - ts.done[half]) / float64(ts.fired-1-half)
		}
		if ts.fired < ts.target && (opt.Horizon == 0 || endTime < opt.Horizon) {
			res.Deadlocked = true
		}
		res.Tasks[ts.name] = st
	}
	return res, nil
}

// checkSlices verifies that the TDM slices on each processor are disjoint
// within the wheel.
func checkSlices(c *taskgraph.Config, m *taskgraph.Mapping, offsets map[string]float64) error {
	type slice struct {
		name     string
		from, to float64
	}
	for i := range c.Processors {
		p := &c.Processors[i]
		var ss []slice
		for _, tn := range c.TasksOn(p.Name) {
			ss = append(ss, slice{tn, offsets[tn], offsets[tn] + m.Budgets[tn]})
		}
		sort.Slice(ss, func(a, b int) bool { return ss[a].from < ss[b].from })
		for k := 1; k < len(ss); k++ {
			if ss[k].from < ss[k-1].to-1e-9 {
				return fmt.Errorf("sim: slices of %q and %q overlap on processor %q",
					ss[k-1].name, ss[k].name, p.Name)
			}
		}
		if n := len(ss); n > 0 {
			if ss[0].from < p.Overhead-1e-9 {
				return fmt.Errorf("sim: slice of %q overlaps the scheduling overhead on %q",
					ss[0].name, p.Name)
			}
			if ss[n-1].to > p.Replenishment*(1+1e-9) {
				return fmt.Errorf("sim: slice of %q exceeds the wheel on %q", ss[n-1].name, p.Name)
			}
		}
	}
	return nil
}
