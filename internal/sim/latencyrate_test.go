package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/taskgraph"
)

// TestLatencyRateBoundsService directly validates the lemma the whole paper
// rests on (from Wiggers et al., EMSOFT'09): the two-actor dataflow model
// with firing durations ϱ−β (latency) and w·ϱ/β (rate) conservatively
// bounds a TDM slice of β cycles per ϱ. Concretely, for every slice
// placement, ready time, and work amount:
//
//	serviceCompletion(ϱ, off, β, t, w) ≤ t + (ϱ−β) + w·ϱ/β.
func TestLatencyRateBoundsService(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := 5 + rng.Float64()*100
		beta := rho * (0.02 + 0.96*rng.Float64())
		off := rng.Float64() * (rho - beta)
		start := rng.Float64() * 500
		work := rng.Float64() * 50
		got := serviceCompletion(rho, off, beta, start, work)
		bound := start + (rho - beta) + work*rho/beta
		return got <= bound+1e-7*(1+bound)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyRateBoundTight: the bound is achieved (to first order) when the
// task becomes ready immediately after its slice closes and the work is a
// multiple of the budget.
func TestLatencyRateBoundTight(t *testing.T) {
	const rho, beta = 40.0, 10.0
	// Slice [0, 10); ready just after it closes, work = 2 full budgets.
	start := beta + 1e-9
	work := 2 * beta
	got := serviceCompletion(rho, 0, beta, start, work)
	bound := start + (rho - beta) + work*rho/beta
	// got = 40 (wait) .. +10 work in [40,50), +10 in [80,90) → 90.
	if got != 90 {
		t.Fatalf("completion = %v, want 90", got)
	}
	if bound < got {
		t.Fatalf("bound %v below actual %v", bound, got)
	}
	// The bound 10 + 30 + 80 = 120 has slack 30 here because the model pays
	// the rate penalty ϱ/β on the LAST fragment too; the worst case over all
	// work values approaches equality as work → β⁺:
	got2 := serviceCompletion(rho, 0, beta, start, beta+1e-6)
	bound2 := start + (rho - beta) + (beta+1e-6)*rho/beta
	if bound2-got2 > 1e-3 {
		t.Fatalf("bound not tight: actual %v vs bound %v", got2, bound2)
	}
}

// TestHeterogeneousProcessors: different replenishment intervals per
// processor flow through the whole pipeline (model, solve, simulate).
func TestHeterogeneousProcessors(t *testing.T) {
	c := &taskgraph.Config{
		Processors: []taskgraph.Processor{
			{Name: "fast", Replenishment: 20},
			{Name: "slow", Replenishment: 80, Overhead: 4},
		},
		Memories: []taskgraph.Memory{{Name: "m", Capacity: 1 << 16}},
		Graphs: []*taskgraph.TaskGraph{{
			Name:   "hetero",
			Period: 10,
			Tasks: []taskgraph.Task{
				{Name: "src", Processor: "fast", WCET: 1},
				{Name: "dst", Processor: "slow", WCET: 2},
			},
			Buffers: []taskgraph.Buffer{
				{Name: "q", From: "src", To: "dst", Memory: "m"},
			},
		}},
	}
	cfg, m := solveConfig(t, c)
	res, err := Run(cfg, m, Options{Firings: 200})
	if err != nil {
		t.Fatal(err)
	}
	assertThroughputGuarantee(t, cfg, m, res)
	// The slow processor's rate constraint: 80·2/β ≤ 10 → β ≥ 16.
	if m.Budgets["dst"] < 16-1e-6 {
		t.Fatalf("dst budget %v below the rate minimum 16", m.Budgets["dst"])
	}
}
