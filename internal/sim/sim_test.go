package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfmodel"
	"repro/internal/gen"
	"repro/internal/taskgraph"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// assertThroughputGuarantee checks the paper's conservativeness claim in its
// exact per-firing form: every simulated completion of firing k of task w
// must happen no later than the periodic schedule of the SRDF model,
// s(v2) + (k−1)·µ + ρ(v2). This certifies a sustained rate of one firing per
// µ with a bounded initial offset, without the transient bias that a
// finite-window period estimate carries.
func assertThroughputGuarantee(t *testing.T, c *taskgraph.Config, m *taskgraph.Mapping, res *Result) {
	t.Helper()
	if res.Deadlocked {
		t.Fatal("simulation deadlocked")
	}
	for _, tg := range c.Graphs {
		g, idx, err := dfmodel.BuildGraph(c, tg, m)
		if err != nil {
			t.Fatal(err)
		}
		starts, err := g.StartTimes(tg.Period)
		if err != nil {
			t.Fatalf("graph %s: model admits no PAS: %v", tg.Name, err)
		}
		for _, w := range tg.Tasks {
			v2 := idx.Tasks[w.Name].V2
			bound0 := starts[v2] + g.Actor(v2).Duration
			for k, done := range res.Tasks[w.Name].Done {
				bound := bound0 + float64(k)*tg.Period
				if done > bound*(1+1e-6)+1e-6 {
					t.Fatalf("task %s firing %d completed at %v, model bound %v",
						w.Name, k+1, done, bound)
				}
			}
		}
	}
}

func TestServiceCompletion(t *testing.T) {
	// Wheel 40, slice [0, 10).
	cases := []struct {
		start, work, want float64
	}{
		{0, 5, 5},    // inside the first window
		{0, 10, 10},  // exactly the window
		{0, 12, 42},  // spills into the second window
		{5, 5, 10},   // finishes at the window edge
		{5, 6, 41},   // one cycle into the next wheel
		{15, 3, 43},  // ready after the window: waits for the next wheel
		{39, 10, 50}, // ready just before the next window
		{0, 25, 85},  // three windows
		{-0.5, 1, 1}, // ready before time zero: waits for the window at 0
		{10, 0, 10},  // zero work completes immediately
	}
	for _, tc := range cases {
		got := serviceCompletion(40, 0, 10, tc.start, tc.work)
		if !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("serviceCompletion(start=%v, work=%v) = %v, want %v", tc.start, tc.work, got, tc.want)
		}
	}
	// Offset slice [30, 40).
	if got := serviceCompletion(40, 30, 10, 0, 5); !almostEqual(got, 35, 1e-12) {
		t.Errorf("offset slice: got %v, want 35", got)
	}
	// Ready at 41, window [30,40) already passed: full work fits the next
	// window [70,80).
	if got := serviceCompletion(40, 30, 10, 41, 10); !almostEqual(got, 80, 1e-12) {
		t.Errorf("offset slice late start: got %v, want 80", got)
	}
}

// serviceCompletion must be monotone in start time and work.
func TestServiceCompletionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		rho := 10 + rng.Float64()*50
		beta := 1 + rng.Float64()*(rho-1)
		off := rng.Float64() * (rho - beta)
		s1 := rng.Float64() * 100
		s2 := s1 + rng.Float64()*10
		w1 := rng.Float64() * 20
		w2 := w1 + rng.Float64()*5
		c11 := serviceCompletion(rho, off, beta, s1, w1)
		c21 := serviceCompletion(rho, off, beta, s2, w1)
		c12 := serviceCompletion(rho, off, beta, s1, w2)
		if c21 < c11-1e-9 {
			t.Fatalf("later start finished earlier: %v < %v", c21, c11)
		}
		if c12 < c11-1e-9 {
			t.Fatalf("more work finished earlier: %v < %v", c12, c11)
		}
		if c11 < s1+w1-1e-9 {
			t.Fatalf("completion %v before start+work %v", c11, s1+w1)
		}
	}
}

func TestAutoOffsetsPacking(t *testing.T) {
	c := gen.Chain(gen.ChainOptions{Tasks: 4, SharedProcessors: 2})
	m := &taskgraph.Mapping{
		Budgets:    map[string]float64{"w0": 10, "w1": 8, "w2": 12, "w3": 6},
		Capacities: map[string]int{"b0": 5, "b1": 5, "b2": 5},
	}
	off, err := AutoOffsets(c, m)
	if err != nil {
		t.Fatal(err)
	}
	// p0 hosts w0, w2; p1 hosts w1, w3 (round-robin), packed in name order.
	if off["w0"] != 0 || off["w2"] != 10 {
		t.Fatalf("p0 offsets: %v", off)
	}
	if off["w1"] != 0 || off["w3"] != 8 {
		t.Fatalf("p1 offsets: %v", off)
	}
	// Overflow detection.
	m.Budgets["w2"] = 35
	if _, err := AutoOffsets(c, m); err == nil {
		t.Fatal("overfull wheel accepted")
	}
}

// solveT1 returns the paper's T1 solved at the given buffer cap.
func solveT1(t *testing.T, cap int) (*taskgraph.Config, *taskgraph.Mapping) {
	t.Helper()
	return solveConfig(t, gen.PaperT1(cap))
}

// solveConfig solves an arbitrary configuration jointly, failing the test on
// any non-optimal outcome.
func solveConfig(t *testing.T, c *taskgraph.Config) (*taskgraph.Config, *taskgraph.Mapping) {
	t.Helper()
	r, err := core.Solve(context.Background(), c, core.Options{})
	if err != nil || r.Status != core.StatusOptimal {
		t.Fatalf("solve failed: %v %v", r.Status, err)
	}
	return c, r.Mapping
}

// TestSimulatedPeriodMeetsRequirement: the paper's conservativeness claim,
// end to end, for every buffer cap of the Figure 2 sweep.
func TestSimulatedPeriodMeetsRequirement(t *testing.T) {
	for _, cap := range []int{1, 3, 5, 10} {
		c, m := solveT1(t, cap)
		res, err := Run(c, m, Options{Firings: 300})
		if err != nil {
			t.Fatal(err)
		}
		assertThroughputGuarantee(t, c, m, res)
	}
}

// TestSimulatedAdversarialOffsets: conservativeness must hold for any slice
// placement, not just the packed one.
func TestSimulatedAdversarialOffsets(t *testing.T) {
	c, m := solveT1(t, 2)
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		off := map[string]float64{}
		for task, b := range m.Budgets {
			off[task] = rng.Float64() * (40 - b)
		}
		res, err := Run(c, m, Options{Offsets: off, Firings: 300})
		if err != nil {
			t.Fatal(err)
		}
		assertThroughputGuarantee(t, c, m, res)
	}
}

// TestSimulatedDataDependentTimes: execution times below WCET (data
// dependence) can only speed things up.
func TestSimulatedDataDependentTimes(t *testing.T) {
	c, m := solveT1(t, 1)
	rng := rand.New(rand.NewSource(73))
	exec := func(task string, firing int) float64 {
		return rng.Float64() // anywhere in [0, WCET = 1)
	}
	res, err := Run(c, m, Options{Exec: exec, Firings: 300})
	if err != nil {
		t.Fatal(err)
	}
	assertThroughputGuarantee(t, c, m, res)
}

// TestSimulationMatchesModelBound: with WCET execution and worst-case-like
// packed offsets, the achieved period must also not beat the physics: it is
// at least the pure processing bound ϱχ/β.
func TestSimulationMatchesModelBound(t *testing.T) {
	c, m := solveT1(t, 1)
	res, err := Run(c, m, Options{Firings: 400})
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range res.Tasks {
		beta := m.Budgets[name]
		procBound := 40 * 1 / beta // ϱ·χ/β
		if st.SteadyPeriod < procBound-1e-6 {
			t.Fatalf("task %s period %v beats the processing bound %v", name, st.SteadyPeriod, procBound)
		}
	}
}

// TestSimulationChain: a longer verified pipeline sustains its throughput.
func TestSimulationChain(t *testing.T) {
	c := gen.Chain(gen.ChainOptions{Tasks: 5})
	r, err := core.Solve(context.Background(), c, core.Options{})
	if err != nil || r.Status != core.StatusOptimal {
		t.Fatalf("solve: %v %v", err, r.Status)
	}
	res, err := Run(c, r.Mapping, Options{Firings: 200})
	if err != nil {
		t.Fatal(err)
	}
	assertThroughputGuarantee(t, c, r.Mapping, res)
}

// TestSimulationMultiJob: random multi-job configurations simulate cleanly.
func TestSimulationMultiJob(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		c := gen.RandomJobs(gen.RandomOptions{Seed: seed})
		r, err := core.Solve(context.Background(), c, core.Options{})
		if err != nil || r.Status != core.StatusOptimal {
			t.Fatalf("seed %d solve: %v %v", seed, err, r.Status)
		}
		res, err := Run(c, r.Mapping, Options{Firings: 100})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertThroughputGuarantee(t, c, r.Mapping, res)
	}
}

// TestUndersizedMappingMissesThroughput: the simulator is a real check — a
// mapping with a too-small buffer must visibly miss the throughput target.
func TestUndersizedMappingMissesThroughput(t *testing.T) {
	c := gen.PaperT1(0)
	bad := &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 4, "wb": 4}, // rate-minimal budgets...
		Capacities: map[string]int{"bab": 1},             // ...but a 1-container buffer
	}
	res, err := Run(c, bad, Options{Firings: 300})
	if err != nil {
		t.Fatal(err)
	}
	// Analysis says this needs period (2·36+2·10)/1 = 92; the simulated
	// period must clearly exceed 10.
	if st := res.Tasks["wa"]; st.SteadyPeriod <= 10 {
		t.Fatalf("undersized mapping achieved period %v — simulator is not discriminating", st.SteadyPeriod)
	}
}

func TestRunValidation(t *testing.T) {
	c := gen.PaperT1(0)
	if _, err := Run(c, &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10}, // wb missing
		Capacities: map[string]int{"bab": 2},
	}, Options{}); err == nil {
		t.Fatal("missing budget accepted")
	}
	if _, err := Run(c, &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10, "wb": 10},
		Capacities: map[string]int{}, // capacity missing
	}, Options{}); err == nil {
		t.Fatal("missing capacity accepted")
	}
	// Overlapping explicit offsets on a shared processor.
	c2 := gen.PaperT1(0)
	c2.Graphs[0].Tasks[1].Processor = "p1"
	if _, err := Run(c2, &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10, "wb": 10},
		Capacities: map[string]int{"bab": 10},
	}, Options{Offsets: map[string]float64{"wa": 0, "wb": 5}}); err == nil {
		t.Fatal("overlapping slices accepted")
	}
	// Slice beyond the wheel.
	if _, err := Run(c, &taskgraph.Mapping{
		Budgets:    map[string]float64{"wa": 10, "wb": 10},
		Capacities: map[string]int{"bab": 10},
	}, Options{Offsets: map[string]float64{"wa": 35, "wb": 0}}); err == nil {
		t.Fatal("slice beyond wheel accepted")
	}
}

func TestHorizonStopsRun(t *testing.T) {
	c, m := solveT1(t, 5)
	res, err := Run(c, m, Options{Firings: 10000, Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTime > 500 {
		t.Fatalf("run exceeded horizon: %v", res.EndTime)
	}
	if res.Deadlocked {
		t.Fatal("horizon-stopped run misreported as deadlock")
	}
}
