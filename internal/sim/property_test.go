package sim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/taskgraph"
)

// TestBufferMonotonicity: enlarging any buffer can never delay any firing of
// any task — the implementation-level analogue of SRDF temporal
// monotonicity, checked on the simulator.
func TestBufferMonotonicity(t *testing.T) {
	c, m := solveT1(t, 3)
	base, err := Run(c, m, Options{Firings: 150})
	if err != nil {
		t.Fatal(err)
	}
	bigger := m.Clone()
	bigger.Capacities["bab"] = m.Capacities["bab"] + 2
	more, err := Run(c, bigger, Options{Firings: 150})
	if err != nil {
		t.Fatal(err)
	}
	for task, st := range base.Tasks {
		for k, done := range more.Tasks[task].Done {
			if done > st.Done[k]+1e-9 {
				t.Fatalf("task %s firing %d delayed by a larger buffer: %v > %v",
					task, k+1, done, st.Done[k])
			}
		}
	}
}

// TestBudgetMonotonicity: enlarging a task's budget (keeping the slice
// placement at offset 0) can never delay that task's service completion.
func TestBudgetMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := 20 + rng.Float64()*40
		beta := 1 + rng.Float64()*(rho/2)
		start := rng.Float64() * 100
		work := rng.Float64() * 20
		c1 := serviceCompletion(rho, 0, beta, start, work)
		c2 := serviceCompletion(rho, 0, beta*1.5, start, work)
		return c2 <= c1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestExecTimeMonotonicity: a run where every firing is faster can never
// finish any firing later.
func TestExecTimeMonotonicity(t *testing.T) {
	c, m := solveT1(t, 2)
	slow, err := Run(c, m, Options{Firings: 150})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(c, m, Options{
		Firings: 150,
		Exec:    func(task string, firing int) float64 { return 0.5 }, // half the WCET
	})
	if err != nil {
		t.Fatal(err)
	}
	for task, st := range slow.Tasks {
		for k, done := range fast.Tasks[task].Done {
			if done > st.Done[k]+1e-9 {
				t.Fatalf("task %s firing %d delayed by faster execution", task, k+1)
			}
		}
	}
}

// TestSimulationDeterministic: identical runs produce identical traces.
func TestSimulationDeterministic(t *testing.T) {
	c, m := solveT1(t, 4)
	a, err := Run(c, m, Options{Firings: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, m, Options{Firings: 100})
	if err != nil {
		t.Fatal(err)
	}
	for task, st := range a.Tasks {
		for k, done := range st.Done {
			if b.Tasks[task].Done[k] != done {
				t.Fatalf("nondeterministic trace at %s firing %d", task, k+1)
			}
		}
	}
}

// TestInitialTokensPipeline: a buffer pre-filled with tokens lets the
// consumer start before the producer's first completion.
func TestInitialTokensPipeline(t *testing.T) {
	c := gen.PaperT1(0)
	c.Graphs[0].Buffers[0].InitialTokens = 2
	r, err := core.Solve(context.Background(), c, core.Options{})
	if err != nil || r.Status != core.StatusOptimal {
		t.Fatalf("%v %v", r.Status, err)
	}
	res, err := Run(c, r.Mapping, Options{Firings: 50})
	if err != nil {
		t.Fatal(err)
	}
	// The consumer's first completion does not need to wait for the
	// producer: it can be no later than its own isolated service time for
	// one firing from t = 0 upper-bounded by (ϱ−β) + ϱχ/β.
	beta := r.Mapping.Budgets["wb"]
	bound := (40 - beta) + 40*1/beta
	if first := res.Tasks["wb"].Done[0]; first > bound+1e-9 {
		t.Fatalf("consumer first completion %v despite pre-filled tokens (bound %v)", first, bound)
	}
	_ = taskgraph.DefaultGranularity
}
