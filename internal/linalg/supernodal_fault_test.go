package linalg

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
)

// supernodalFaultFixture builds a matrix large enough to cross the
// parallel-scheduling threshold, so panel faults land on pool workers.
func supernodalFaultFixture(t *testing.T) (*SparseMatrix, *SymbolicFactor) {
	t.Helper()
	rng := rand.New(rand.NewSource(53))
	_, as := randomSparseSPD(rng, 400, 0.01)
	sym := Analyze(as, nil)
	if ns := sym.Supernodal().NumSupernodes(); ns < minParallelSupernodes {
		t.Fatalf("fixture too small: %d supernodes", ns)
	}
	return as, sym
}

// TestSupernodalPanelInjectedError: an injected error inside the panel loop
// must surface as ErrInjected from Factorize without consuming shift
// retries, on both the serial and the parallel path.
func TestSupernodalPanelInjectedError(t *testing.T) {
	as, sym := supernodalFaultFixture(t)
	for _, workers := range []int{1, 4} {
		defer faultinject.Activate(faultinject.Rule{
			Site: faultinject.SiteSupernodalPanel, Kind: faultinject.KindError, Count: 1,
		})()
		sc := sym.NewSupernodal(workers)
		err := sc.Factorize(as, 0, 1e-10)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("workers=%d: want injected error, got %v", workers, err)
		}
		// The injected failure must not be misread as a numeric breakdown:
		// the retry budget is untouched and the next attempt succeeds.
		if err := sc.Factorize(as, 0, 1e-10); err != nil {
			t.Fatalf("workers=%d: recovery factorization failed: %v", workers, err)
		}
		if sc.Shift() != 0 {
			t.Fatalf("workers=%d: clean refactorization picked up a shift %g", workers, sc.Shift())
		}
	}
}

// TestSupernodalPanelNaN: NaN corruption of one assembled panel must read as
// a numeric breakdown — the attempt fails, the shift-escalation retry kicks
// in, and the rerun (rule exhausted) succeeds with a recorded shift.
func TestSupernodalPanelNaN(t *testing.T) {
	as, sym := supernodalFaultFixture(t)
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteSupernodalPanel, Kind: faultinject.KindNaN, Count: 1,
	})()
	sc := sym.NewSupernodal(4)
	if err := sc.Factorize(as, 0, 1e-10); err != nil {
		t.Fatalf("NaN attempt should be absorbed by the retry: %v", err)
	}
	if sc.Shift() <= 0 {
		t.Fatalf("retry after NaN breakdown should record a shift, got %g", sc.Shift())
	}
}

// TestSupernodalPanelNaNExhausted: persistent NaN corruption must exhaust
// the retries and fail, and must fail the quasi-definite path outright (NaN
// is its only failure mode).
func TestSupernodalPanelNaNExhausted(t *testing.T) {
	as, sym := supernodalFaultFixture(t)
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteSupernodalPanel, Kind: faultinject.KindNaN,
	})()
	sc := sym.NewSupernodal(4)
	if err := sc.Factorize(as, 0, 1e-10); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite after retry exhaustion, got %v", err)
	}
	if err := sc.FactorizeQuasiDef(as, 1e-10); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("quasi-definite NaN breakdown: want ErrNotPositiveDefinite, got %v", err)
	}
}

// TestSupernodalPanelPanic: a panic on a pool worker must be captured, the
// pool drained, and the panic re-raised on the caller's goroutine.
func TestSupernodalPanelPanic(t *testing.T) {
	as, sym := supernodalFaultFixture(t)
	for _, workers := range []int{1, 4} {
		defer faultinject.Activate(faultinject.Rule{
			Site: faultinject.SiteSupernodalPanel, Kind: faultinject.KindPanic, Count: 1,
		})()
		sc := sym.NewSupernodal(workers)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: panel panic did not propagate", workers)
				}
			}()
			_ = sc.Factorize(as, 0, 1e-10)
		}()
		// The workspace must stay usable after the panic.
		if err := sc.Factorize(as, 0, 1e-10); err != nil {
			t.Fatalf("workers=%d: factorization after panic failed: %v", workers, err)
		}
	}
}

// TestSupernodalPanelStall: a stalled worker blocks the factorization until
// the test releases the gate; the result afterwards is still correct.
func TestSupernodalPanelStall(t *testing.T) {
	as, sym := supernodalFaultFixture(t)
	gate := make(chan struct{})
	stalled := make(chan struct{})
	defer faultinject.Activate(faultinject.Rule{
		Site: faultinject.SiteSupernodalPanel, Kind: faultinject.KindStall, Count: 1,
		Gate: gate, Stalled: stalled,
	})()
	sc := sym.NewSupernodal(4)
	done := make(chan error, 1)
	go func() { done <- sc.Factorize(as, 0, 1e-10) }()
	<-stalled
	select {
	case err := <-done:
		t.Fatalf("factorization finished despite a stalled worker: %v", err)
	default:
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("factorization after release failed: %v", err)
	}
}
