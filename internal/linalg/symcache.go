package linalg

import (
	"sync"
	"sync/atomic"
)

// PatternHash returns a canonical 64-bit hash of a matrix's sparsity
// pattern — shape, row pointers, and column indices; never the values. Two
// matrices with equal patterns hash equally on any platform and across
// process runs (the hash is a pure FNV-1a fold, no per-process seed), which
// makes it a stable cache key for symbolic analyses and, later, for the
// serving layer's problem cache.
//
//bbvet:hotpath
func PatternHash(a *SparseMatrix) uint64 {
	const offset64 = 14695981039346656037
	h := uint64(offset64)
	h = fnvMix(h, uint64(a.Rows))
	h = fnvMix(h, uint64(a.Cols))
	for _, p := range a.RowPtr {
		h = fnvMix(h, uint64(p))
	}
	for _, c := range a.ColIdx {
		h = fnvMix(h, uint64(c))
	}
	return h
}

// fnvMix folds one value into an FNV-1a state, byte-wise.
//
//bbvet:hotpath
func fnvMix(h, v uint64) uint64 {
	const prime64 = 1099511628211
	h ^= v & 0xff
	h *= prime64
	h ^= (v >> 8) & 0xff
	h *= prime64
	h ^= (v >> 16) & 0xff
	h *= prime64
	h ^= (v >> 24) & 0xffff // rows/cols/indices fit well below 2⁴⁰
	h *= prime64
	return h
}

// SymbolicCache shares sparse-LDLᵀ symbolic analyses across solves whose
// matrices have the same sparsity pattern, and pools the numeric
// workspaces bound to each pattern:
//
//   - the SymbolicFactor (AMD ordering + elimination tree + column
//     pointers) is computed once per distinct pattern and shared read-only;
//   - numeric workspaces are recycled through a per-pattern sync.Pool, so a
//     steady state of acquire → Factorize → Solve → release performs no
//     allocations at all.
//
// This is the reuse layer behind warm-started sweeps (every sweep point of
// one topology shares a pattern) and the problem cache a solver service
// keys requests on. The zero value is not usable; call NewSymbolicCache.
// All methods are safe for concurrent use.
type SymbolicCache struct {
	mu      sync.RWMutex
	entries map[uint64][]*symCacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// symCacheEntry binds one analyzed pattern to its shared symbolic factor
// and the pools of numeric workspaces built on it — simplicial and
// supernodal workspaces pool separately because their storage layouts
// differ, but they share the one symbolic analysis.
type symCacheEntry struct {
	sym    *SymbolicFactor
	pool   sync.Pool // of *SparseCholesky bound to sym
	snPool sync.Pool // of *SupernodalCholesky bound to sym
}

// NewSymbolicCache returns an empty cache.
func NewSymbolicCache() *SymbolicCache {
	return &SymbolicCache{entries: map[uint64][]*symCacheEntry{}}
}

// Acquire returns a numeric factorization workspace for a's pattern,
// running the symbolic analysis only if the pattern has never been seen.
// Hash collisions are ruled out by an exact pattern comparison, so a hit is
// guaranteed to carry a's symbolic structure. The caller owns the returned
// workspace until it hands it back with Release; the hit path performs no
// allocations when the pool has a pooled workspace.
//
//bbvet:hotpath
func (sc *SymbolicCache) Acquire(a *SparseMatrix) *SparseCholesky {
	h := PatternHash(a)
	sc.mu.RLock()
	e := lookupEntry(sc.entries[h], a)
	sc.mu.RUnlock()
	if e == nil {
		//bbvet:allow hotalloc symbolic analysis runs once per never-seen pattern, measured cold
		e = sc.insert(h, a)
	} else {
		sc.hits.Add(1)
	}
	if f, ok := e.pool.Get().(*SparseCholesky); ok {
		return f
	}
	//bbvet:allow hotalloc pool empty: first workspace for the pattern, steady state reuses pooled ones
	return e.sym.NewNumeric()
}

// AcquireSupernodal is Acquire for the blocked supernodal backend: it
// returns a supernodal workspace for a's pattern, pooled per pattern like
// the simplicial ones, with its worker bound set to workers. The supernodal
// layout is computed once per pattern (cached on the shared SymbolicFactor),
// so a steady state of acquire → Factorize → ReleaseSupernodal performs no
// allocations beyond the first acquisition at each parallelism level.
//
//bbvet:hotpath
func (sc *SymbolicCache) AcquireSupernodal(a *SparseMatrix, workers int) *SupernodalCholesky {
	h := PatternHash(a)
	sc.mu.RLock()
	e := lookupEntry(sc.entries[h], a)
	sc.mu.RUnlock()
	if e == nil {
		//bbvet:allow hotalloc symbolic analysis runs once per never-seen pattern, measured cold
		e = sc.insert(h, a)
	} else {
		sc.hits.Add(1)
	}
	if f, ok := e.snPool.Get().(*SupernodalCholesky); ok {
		//bbvet:allow hotalloc grows per-worker scratch only when the bound rises, steady state is a no-op
		f.SetParallelism(workers)
		return f
	}
	//bbvet:allow hotalloc pool empty: first workspace for the pattern, steady state reuses pooled ones
	return e.sym.NewSupernodal(workers)
}

// lookupEntry scans a hash bucket for the entry whose pattern exactly
// matches a.
//
//bbvet:hotpath
func lookupEntry(bucket []*symCacheEntry, a *SparseMatrix) *symCacheEntry {
	for _, e := range bucket {
		if e.sym.Matches(a) {
			return e
		}
	}
	return nil
}

// insert analyzes a's pattern and stores the entry, racing politely: if
// another goroutine analyzed the same pattern first, its entry wins and the
// local analysis is dropped.
func (sc *SymbolicCache) insert(h uint64, a *SparseMatrix) *symCacheEntry {
	sym := Analyze(a, nil) // outside the lock: analysis is the expensive part
	sc.mu.Lock()
	if e := lookupEntry(sc.entries[h], a); e != nil {
		sc.mu.Unlock()
		sc.hits.Add(1)
		return e
	}
	e := &symCacheEntry{sym: sym}
	sc.entries[h] = append(sc.entries[h], e)
	sc.mu.Unlock()
	sc.misses.Add(1)
	return e
}

// Release returns a workspace obtained from Acquire to its pattern's pool.
// Workspaces whose symbolic factor is unknown to the cache are adopted
// under their pattern, so releasing a NewSparseCholesky-built workspace
// seeds the cache instead of erroring. The caller must not use f after
// releasing it.
//
//bbvet:hotpath
func (sc *SymbolicCache) Release(f *SparseCholesky) {
	if f == nil {
		return
	}
	h := f.sym.hash
	sc.mu.RLock()
	e := entryForSym(sc.entries[h], f.sym)
	sc.mu.RUnlock()
	if e == nil {
		//bbvet:allow hotalloc adopting a foreign symbolic factor happens once per pattern
		e = sc.adopt(h, f.sym)
	}
	//bbvet:allow hotalloc pointer stored in interface directly, no allocation; AllocsPerRun guards pin it
	e.pool.Put(f)
}

// ReleaseSupernodal returns a workspace obtained from AcquireSupernodal to
// its pattern's supernodal pool, adopting unknown symbolic factors like
// Release does. The caller must not use f after releasing it.
//
//bbvet:hotpath
func (sc *SymbolicCache) ReleaseSupernodal(f *SupernodalCholesky) {
	if f == nil {
		return
	}
	h := f.sym.hash
	sc.mu.RLock()
	e := entryForSym(sc.entries[h], f.sym)
	sc.mu.RUnlock()
	if e == nil {
		//bbvet:allow hotalloc adopting a foreign symbolic factor happens once per pattern
		e = sc.adopt(h, f.sym)
	}
	//bbvet:allow hotalloc pointer stored in interface directly, no allocation; AllocsPerRun guards pin it
	e.snPool.Put(f)
}

// entryForSym scans a hash bucket for the entry holding exactly this
// symbolic factor (pointer identity: pooled numerics must go back to the
// factor they index into).
//
//bbvet:hotpath
func entryForSym(bucket []*symCacheEntry, sym *SymbolicFactor) *symCacheEntry {
	for _, e := range bucket {
		if e.sym == sym {
			return e
		}
	}
	return nil
}

// adopt registers an externally analyzed symbolic factor.
func (sc *SymbolicCache) adopt(h uint64, sym *SymbolicFactor) *symCacheEntry {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if e := entryForSym(sc.entries[h], sym); e != nil {
		return e
	}
	e := &symCacheEntry{sym: sym}
	sc.entries[h] = append(sc.entries[h], e)
	return e
}

// Stats reports the cache's lifetime hit/miss counts and the number of
// distinct patterns analyzed.
func (sc *SymbolicCache) Stats() (hits, misses, patterns int64) {
	sc.mu.RLock()
	for _, bucket := range sc.entries {
		patterns += int64(len(bucket))
	}
	sc.mu.RUnlock()
	return sc.hits.Load(), sc.misses.Load(), patterns
}
