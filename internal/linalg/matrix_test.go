package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	m.Add(1, 2, 2)
	if m.At(1, 2) != 7 {
		t.Fatalf("Add: At(1,2) = %v", m.At(1, 2))
	}
	if got := len(m.Row(1)); got != 3 {
		t.Fatalf("Row length = %d", got)
	}
	m.Zero()
	if m.NormInf() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong: %v", m)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows should panic")
		}
	}()
	NewMatrixFromRows([][]float64{{1}, {2, 3}})
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 4, 4)
	i4 := Identity(4)
	ai := a.Mul(i4)
	for k := range a.Data {
		if !almostEqual(ai.Data[k], a.Data[k], 1e-15) {
			t.Fatalf("A·I != A at %d", k)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T values wrong: %v", tr)
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMatrix(rng, r, c)
		x := NewVector(c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Compute via MulVec.
		y1 := NewVector(r)
		a.MulVec(y1, x)
		// Compute via explicit loops.
		y2 := NewVector(r)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				y2[i] += a.At(i, j) * x[j]
			}
		}
		for i := range y1 {
			if !almostEqual(y1[i], y2[i], 1e-12) {
				t.Fatalf("MulVec mismatch at %d: %v vs %v", i, y1[i], y2[i])
			}
		}
	}
}

func TestMulVecTMatchesTransposeMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMatrix(rng, r, c)
		x := NewVector(r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := NewVector(c)
		a.MulVecT(y1, x)
		y2 := NewVector(c)
		a.T().MulVec(y2, x)
		for i := range y1 {
			if !almostEqual(y1[i], y2[i], 1e-12) {
				t.Fatalf("MulVecT mismatch at %d: %v vs %v", i, y1[i], y2[i])
			}
		}
	}
}

func TestMulVecAddAccumulates(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0}, {0, 1}})
	dst := Vector{10, 20}
	a.MulVecAdd(dst, 2, Vector{1, 1})
	if dst[0] != 12 || dst[1] != 22 {
		t.Fatalf("MulVecAdd: got %v", dst)
	}
	dstT := Vector{1, 1}
	a.MulVecTAdd(dstT, -1, Vector{1, 1})
	if dstT[0] != 0 || dstT[1] != 0 {
		t.Fatalf("MulVecTAdd: got %v", dstT)
	}
}

func TestAtAInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randMatrix(rng, r, c)
		got := NewMatrix(c, c)
		a.AtAInto(got)
		want := a.T().Mul(a)
		for k := range got.Data {
			if !almostEqual(got.Data[k], want.Data[k], 1e-11) {
				t.Fatalf("AtAInto mismatch at %d: %v vs %v", k, got.Data[k], want.Data[k])
			}
		}
		// Symmetry.
		for i := 0; i < c; i++ {
			for j := 0; j < c; j++ {
				if got.At(i, j) != got.At(j, i) {
					t.Fatalf("AtAInto not symmetric at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestMatrixCloneIndependent(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestIsFinite(t *testing.T) {
	a := Identity(2)
	if !a.IsFinite() {
		t.Fatal("identity should be finite")
	}
	a.Set(0, 1, math.NaN())
	if a.IsFinite() {
		t.Fatal("NaN not detected")
	}
	a.Set(0, 1, math.Inf(1))
	if a.IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestMatrixString(t *testing.T) {
	a := Identity(2)
	s := a.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
