//go:build race

package linalg

// raceEnabled gates allocation-count assertions: the race detector's
// sync.Pool randomly drops Put items to shake out races, so pool-backed
// steady states legitimately allocate under -race.
const raceEnabled = true
