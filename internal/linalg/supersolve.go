package linalg

// SparseLDLT is the interface shared by the sparse LDLᵀ backends — the
// simplicial SparseCholesky and the blocked SupernodalCholesky — so the
// solver's KKT pipeline can select a backend per problem size without
// duplicating the factor-then-solve plumbing. Both implementations carry
// identical shift-retry and quasi-definite-floor semantics.
type SparseLDLT interface {
	// Factorize numerically refactorizes P (A + shift·I) Pᵀ = L D Lᵀ,
	// escalating the extra shift by powers of ten up to 1e8·reg on
	// non-positive pivots before returning ErrNotPositiveDefinite.
	Factorize(a *SparseMatrix, shift, reg float64) error
	// FactorizeQuasiDef refactorizes a symmetric quasi-definite matrix,
	// flooring small diagonal pivots at ±eps preserving sign.
	FactorizeQuasiDef(a *SparseMatrix, eps float64) error
	// Solve solves A x = b in place against the current factorization.
	Solve(b Vector)
	// SolveRefined solves A x = b into x with one step of iterative
	// refinement against a (normally the unshifted original).
	SolveRefined(a *SparseMatrix, b, x Vector)
	// Shift returns the extra regularization the last Factorize applied.
	Shift() float64
	// Symbolic returns the shared symbolic phase.
	Symbolic() *SymbolicFactor
}

var (
	_ SparseLDLT = (*SparseCholesky)(nil)
	_ SparseLDLT = (*SupernodalCholesky)(nil)
)

// Solve solves A x = b in place against the current numeric factorization:
// permute, blocked unit-lower forward solve, diagonal scaling, blocked
// transposed backward solve, permute back. Panels are visited in ascending
// (forward) / descending (backward) order; within a panel the dense
// diagonal-block triangular solve and a panel-row mat-vec replace the
// per-column scatter of the simplicial solve.
//
//bbvet:hotpath
func (c *SupernodalCholesky) Solve(b Vector) {
	sym, ss := c.sym, c.ss
	if len(b) != sym.n {
		panic("linalg: SupernodalCholesky.Solve dimension mismatch")
	}
	n, w := sym.n, c.w
	perm := sym.perm
	rows := ss.rows
	for k := 0; k < n; k++ {
		w[k] = b[perm[k]]
	}
	for s := 0; s < ss.ns; s++ {
		c0 := int(ss.colPtr[s])
		ws := int(ss.colPtr[s+1]) - c0
		rlo := int(ss.rowPtr[s])
		nr := int(ss.rowPtr[s+1]) - rlo
		P := c.px[ss.valPtr[s]:ss.valPtr[s+1]]
		// Unit-lower triangular solve on the diagonal block.
		for cc := 0; cc < ws; cc++ {
			xc := w[c0+cc]
			prow := P[cc*ws : cc*ws+cc]
			for q, l := range prow {
				xc -= l * w[c0+q]
			}
			w[c0+cc] = xc
		}
		// Below-block rows: one dense dot per row, scattered to the row's
		// global index.
		for r := ws; r < nr; r++ {
			prow := P[r*ws : r*ws+ws]
			var acc float64
			for q, l := range prow {
				acc += l * w[c0+q]
			}
			w[rows[rlo+r]] -= acc
		}
	}
	for k := 0; k < n; k++ {
		w[k] /= c.d[k]
	}
	for s := ss.ns - 1; s >= 0; s-- {
		c0 := int(ss.colPtr[s])
		ws := int(ss.colPtr[s+1]) - c0
		rlo := int(ss.rowPtr[s])
		nr := int(ss.rowPtr[s+1]) - rlo
		P := c.px[ss.valPtr[s]:ss.valPtr[s+1]]
		// Gather the below-block contributions: acc = L_belowᵀ · w[rows].
		acc := c.acc[:ws]
		for q := range acc {
			acc[q] = 0
		}
		for r := ws; r < nr; r++ {
			t := w[rows[rlo+r]]
			if t == 0 {
				continue
			}
			prow := P[r*ws : r*ws+ws]
			for q, l := range prow {
				acc[q] += l * t
			}
		}
		// Transposed unit-lower solve on the diagonal block, bottom up.
		for cc := ws - 1; cc >= 0; cc-- {
			v := w[c0+cc] - acc[cc]
			for r := cc + 1; r < ws; r++ {
				v -= P[r*ws+cc] * w[c0+r]
			}
			w[c0+cc] = v
		}
	}
	for k := 0; k < n; k++ {
		b[perm[k]] = w[k]
	}
}

// SolveRefined solves A x = b with one step of iterative refinement against
// the matrix a — normally the unshifted original, so the refinement also
// sweeps out the error introduced by diagonal regularization. The solution
// is written into x; b is not modified. The residual scratch is owned by
// the workspace, so steady-state refined solves allocate nothing.
//
//bbvet:hotpath
func (c *SupernodalCholesky) SolveRefined(a *SparseMatrix, b, x Vector) {
	if len(x) != c.sym.n || len(b) != c.sym.n {
		panic("linalg: SupernodalCholesky.SolveRefined dimension mismatch")
	}
	x.CopyFrom(b)
	c.Solve(x)
	r := c.scratch
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	c.Solve(r)
	x.AddScaled(1, r)
}
