package linalg

// Solve solves A x = b in place against the current numeric factorization:
// the right-hand side is permuted, run through the unit-lower forward solve,
// the diagonal scaling, and the transposed backward solve, then permuted
// back. Only the stored nonzeros of L are visited, so a solve costs
// O(n + nnz(L)).
//
//bbvet:hotpath
func (c *SparseCholesky) Solve(b Vector) {
	sym := c.sym
	if len(b) != sym.n {
		panic("linalg: SparseCholesky.Solve dimension mismatch")
	}
	n, w := sym.n, c.w
	perm, lp := sym.perm, sym.lp
	for k := 0; k < n; k++ {
		w[k] = b[perm[k]]
	}
	// L w = w: column-oriented forward substitution. When column k is
	// reached every update from columns < k has been applied, so w[k] is
	// final and scatters into the rows below.
	for k := 0; k < n; k++ {
		if wk := w[k]; wk != 0 {
			for p := lp[k]; p < lp[k+1]; p++ {
				w[c.li[p]] -= c.lx[p] * wk
			}
		}
	}
	// D w = w.
	for k := 0; k < n; k++ {
		w[k] /= c.d[k]
	}
	// Lᵀ w = w: the transposed solve gathers from the rows below, walking
	// the columns backwards.
	for k := n - 1; k >= 0; k-- {
		wk := w[k]
		for p := lp[k]; p < lp[k+1]; p++ {
			wk -= c.lx[p] * w[c.li[p]]
		}
		w[k] = wk
	}
	for k := 0; k < n; k++ {
		b[perm[k]] = w[k]
	}
}

// SolveRefined solves A x = b with one step of iterative refinement against
// the matrix a — normally the unshifted original, so the refinement also
// sweeps out the error introduced by diagonal regularization. The solution
// is written into x; b is not modified.
//
//bbvet:hotpath
func (c *SparseCholesky) SolveRefined(a *SparseMatrix, b, x Vector) {
	if len(x) != c.sym.n || len(b) != c.sym.n {
		panic("linalg: SparseCholesky.SolveRefined dimension mismatch")
	}
	x.CopyFrom(b)
	c.Solve(x)
	r := c.scratch
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	c.Solve(r)
	x.AddScaled(1, r)
}
