package linalg

import (
	"math/rand"
	"testing"
)

// TestHotpathRefactorizationAllocFree is the dynamic twin of the static
// hotalloc analyzer: every function annotated //bbvet:hotpath in this
// package — the AᵀA refill, the numeric LDLᵀ refactorization (both the SPD
// and the quasi-definite kernels), and the triangular solves — must not
// allocate once the symbolic analysis has been done.
func TestHotpathRefactorizationAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, as := randomSparseSPD(rng, 60, 0.1)
	ata := NewSparseAtA(as)
	ata.Compute(as)
	h := ata.Result
	sc := NewSparseCholesky(h, nil)
	if err := sc.Factorize(h, 0, 1e-12); err != nil {
		t.Fatal(err)
	}
	b := NewVector(h.Rows)
	x := NewVector(h.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ferr error
	allocs := testing.AllocsPerRun(20, func() {
		ata.Compute(as)
		if err := sc.Factorize(h, 0, 1e-12); err != nil {
			ferr = err
			return
		}
		sc.Solve(b)
		sc.SolveRefined(h, b, x)
		if err := sc.FactorizeQuasiDef(h, 1e-10); err != nil {
			ferr = err
		}
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if allocs != 0 {
		t.Fatalf("hotpath refactorization allocated %.1f times per run, want 0", allocs)
	}
}
