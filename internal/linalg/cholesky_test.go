package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD returns a random symmetric positive-definite n×n matrix.
func randSPD(rng *rand.Rand, n int) *Matrix {
	b := randMatrix(rng, n+2, n) // tall => full column rank almost surely
	a := NewMatrix(n, n)
	b.AtAInto(a)
	for i := 0; i < n; i++ {
		a.Add(i, i, 0.1) // ensure strict positive definiteness
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ch.Shift() != 0 {
			t.Fatalf("unexpected shift %v", ch.Shift())
		}
		// L·Lᵀ must reconstruct A.
		llt := ch.l.Mul(ch.l.T())
		for k := range a.Data {
			if !almostEqual(llt.Data[k], a.Data[k], 1e-9) {
				t.Fatalf("trial %d: LLᵀ != A at %d: %v vs %v", trial, k, llt.Data[k], a.Data[k])
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		xTrue := NewVector(n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := NewVector(n)
		a.MulVec(b, xTrue)
		ch, err := NewCholesky(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		x := b.Clone()
		ch.Solve(x)
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-7) {
				t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := NewCholesky(a, 0); err == nil {
		t.Fatal("expected failure on indefinite matrix with no regularization")
	}
}

func TestCholeskyRegularizationRecovers(t *testing.T) {
	// Singular PSD matrix: regularization should let factorization succeed.
	a := NewMatrixFromRows([][]float64{{1, 1}, {1, 1}})
	ch, err := NewCholesky(a, 1e-10)
	if err != nil {
		t.Fatalf("regularized factorization failed: %v", err)
	}
	if ch.Shift() <= 0 {
		t.Fatalf("expected positive shift, got %v", ch.Shift())
	}
}

func TestCholeskySolveRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Moderately ill-conditioned matrix.
	n := 8
	a := randSPD(rng, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)*math.Pow(10, float64(i)/2))
	}
	// Re-symmetrize after diagonal scaling (still SPD since only diagonal grew).
	xTrue := NewVector(n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := NewVector(n)
	a.MulVec(b, xTrue)
	ch, err := NewCholesky(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	x := NewVector(n)
	ch.SolveRefined(a, b, x)
	r := NewVector(n)
	a.MulVec(r, x)
	Sub(r, b, r)
	if rel := Norm2(r) / math.Max(1, Norm2(b)); rel > 1e-9 {
		t.Fatalf("refined residual too large: %v", rel)
	}
}

func TestLDLTSolveSymmetricIndefinite(t *testing.T) {
	// KKT-style quasi-definite matrix: [[H, Aᵀ],[A, -εI]].
	a := NewMatrixFromRows([][]float64{
		{2, 0, 1},
		{0, 3, 1},
		{1, 1, -1e-8},
	})
	f, err := NewLDLT(a, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := Vector{1, -2, 3}
	b := NewVector(3)
	a.MulVec(b, xTrue)
	x := b.Clone()
	f.Solve(x)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-6) {
			t.Fatalf("LDLT solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestLDLTSolveRefined(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 10
	a := randSPD(rng, n)
	xTrue := NewVector(n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := NewVector(n)
	a.MulVec(b, xTrue)
	f, err := NewLDLT(a, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	x := NewVector(n)
	f.SolveRefined(a, b, x)
	for i := range x {
		if !almostEqual(x[i], xTrue[i], 1e-8) {
			t.Fatalf("refined LDLT mismatch at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestLDLTZeroPivotClamped(t *testing.T) {
	// Diagonal contains an exact zero; eps-clamping must keep it solvable.
	a := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	f, err := NewLDLT(a, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	b := Vector{1, 1}
	f.Solve(b) // must not NaN/panic
	for _, v := range b {
		if math.IsNaN(v) {
			t.Fatal("NaN after zero-pivot clamp")
		}
	}
}

// Property: for random SPD matrices, the Cholesky solve residual is tiny.
func TestCholeskySolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randSPD(r, n)
		b := NewVector(n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		ch, err := NewCholesky(a, 0)
		if err != nil {
			return false
		}
		x := b.Clone()
		ch.Solve(x)
		res := NewVector(n)
		a.MulVec(res, x)
		Sub(res, b, res)
		return Norm2(res)/math.Max(1, Norm2(b)) < 1e-8
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
