// Package linalg provides the dense linear-algebra kernels used by the
// interior-point and simplex solvers in this repository: vectors, matrices,
// Cholesky and LDLᵀ factorizations with static regularization, triangular
// solves, and iterative refinement.
//
// The package is deliberately small and dependency-free (stdlib only). All
// matrices are dense and row-major; the problem sizes produced by the
// budget/buffer mapping flow are modest (tens to a few thousand variables),
// where dense factorizations are both simplest and fastest.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// CopyFrom copies src into v. The lengths must match.
func (v Vector) CopyFrom(src Vector) {
	if len(v) != len(src) {
		panic(fmt.Sprintf("linalg: CopyFrom length mismatch %d != %d", len(v), len(src)))
	}
	copy(v, src)
}

// Zero sets all entries of v to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Fill sets all entries of v to a.
func (v Vector) Fill(a float64) {
	for i := range v {
		v[i] = a
	}
}

// Scale multiplies every entry of v by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AddScaled sets v = v + a*w.
func (v Vector) AddScaled(a float64, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d != %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Dot returns vᵀw.
func Dot(v, w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(v), len(w)))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow.
func Norm2(v Vector) float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of v (0 for an empty vector).
func NormInf(v Vector) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpby sets dst = a*x + b*y. All three vectors must have equal length.
func Axpby(dst Vector, a float64, x Vector, b float64, y Vector) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("linalg: Axpby length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + b*y[i]
	}
}

// Sub sets dst = x - y.
func Sub(dst, x, y Vector) { Axpby(dst, 1, x, -1, y) }

// Add sets dst = x + y.
func Add(dst, x, y Vector) { Axpby(dst, 1, x, 1, y) }

// MaxElem returns the maximum entry of v; it panics on an empty vector.
func MaxElem(v Vector) float64 {
	if len(v) == 0 {
		panic("linalg: MaxElem of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinElem returns the minimum entry of v; it panics on an empty vector.
func MinElem(v Vector) float64 {
	if len(v) == 0 {
		panic("linalg: MinElem of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
