package linalg

import "sync"

// SparseCholesky is a sparse simplicial LDLᵀ factorization
//
//	P A Pᵀ = L D Lᵀ
//
// with a fill-reducing permutation P, unit lower-triangular L, and diagonal
// D, specialized for the interior-point hot loop where the sparsity pattern
// of A is fixed across iterations while its values change every step:
//
//   - Analyze runs the *symbolic* phase once — the AMD ordering, the
//     elimination tree, the per-column nonzero counts of L, and a permuted
//     upper-triangular view of A's pattern with precomputed value sources —
//     and returns an immutable SymbolicFactor shareable across any number of
//     factorizations of matrices with the same pattern;
//   - NewNumeric binds a SymbolicFactor to freshly allocated numeric
//     workspaces; Factorize / FactorizeQuasiDef then perform the *numeric*
//     refactorization only, in O(nnz(L) · row-width) with zero allocations;
//   - Solve / SolveRefined are sparse triangular solves against the factor.
//
// For a symmetric positive-definite A the factorization is the Cholesky
// factorization in LDLᵀ form (L·diag(√D) is the classical factor); the LDLᵀ
// form avoids square roots and extends to the symmetric quasi-definite
// KKT matrices of the equality-constrained path, which are strongly
// factorizable under any symmetric permutation.
type SparseCholesky struct {
	sym *SymbolicFactor

	li []int // row indices of L, len sym.lp[n]
	lx []float64
	d  Vector // diagonal of D

	shift float64 // extra diagonal regularization applied by the last Factorize

	// Workspaces preallocated when the numeric side is bound.
	y       Vector // sparse accumulator of the current row
	pat     []int  // topologically ordered row pattern (etree paths)
	flag    []int  // visitation stamps
	lnz     []int  // per-column fill counters of the running factorization
	w       Vector // permuted right-hand side in Solve
	scratch Vector // refinement residual
}

// SymbolicFactor is the immutable symbolic phase of a sparse LDLᵀ
// factorization: the fill-reducing ordering, the elimination tree, the
// column pointers of L, and the permuted upper-triangular access plan into
// the analyzed pattern. It depends only on the sparsity pattern of the
// analyzed matrix — never on its values — so solves of different matrices
// sharing a pattern (the sweep and serving workloads) can share one
// SymbolicFactor across goroutines: all fields are written once by Analyze
// and only read afterwards.
type SymbolicFactor struct {
	n    int
	perm []int // perm[k] = original index of the k-th pivot
	pinv []int // inverse permutation

	parent []int // elimination tree of the permuted matrix

	// Permuted upper-triangular view of the analyzed pattern: column k of
	// P A Pᵀ restricted to rows i ≤ k is the pairs (ui[p], Val[usrc[p]])
	// for p ∈ [up[k], up[k+1]). usrc indexes straight into the value array
	// of the matrix handed to Factorize, so refactorization needs no
	// re-permutation pass.
	up   []int
	ui   []int
	usrc []int
	nnzA int // pattern stamp checked by Factorize

	lp []int // column pointers of L, len n+1

	// The analyzed CSR pattern and its canonical hash, kept so a
	// SymbolicCache can verify candidate matrices entry-for-entry instead of
	// trusting the hash alone.
	rowPtr []int
	colIdx []int
	hash   uint64

	// Supernodal layout, computed lazily by Supernodal() because only the
	// blocked backend needs it. The once is the only mutable state of the
	// factor; it synchronizes concurrent first uses.
	snOnce sync.Once
	sn     *SupernodalSymbolic
}

// Analyze runs the symbolic phase on the pattern of the square, structurally
// symmetric matrix a: AMD ordering (or the caller's perm override, mostly
// for tests), elimination tree, per-column counts of L, and the permuted
// upper-triangular access plan. The result is immutable and safe to share.
func Analyze(a *SparseMatrix, perm []int) *SymbolicFactor {
	if a.Rows != a.Cols {
		panic("linalg: sparse Cholesky of non-square matrix")
	}
	n := a.Rows
	if perm == nil {
		perm = AMDOrder(a)
	}
	if len(perm) != n {
		panic("linalg: SparseCholesky ordering length mismatch")
	}
	s := &SymbolicFactor{n: n, perm: perm, nnzA: a.NNZ()}
	s.rowPtr = append([]int(nil), a.RowPtr...)
	s.colIdx = append([]int(nil), a.ColIdx...)
	s.hash = PatternHash(a)
	s.pinv = make([]int, n)
	for k, r := range perm {
		s.pinv[r] = k
	}
	// Permuted upper-triangular pattern with value sources: row perm[k] of
	// the (symmetric) input supplies column k of the permuted matrix.
	s.up = make([]int, n+1)
	for k := 0; k < n; k++ {
		r := perm[k]
		cnt := 0
		for t := a.RowPtr[r]; t < a.RowPtr[r+1]; t++ {
			if s.pinv[a.ColIdx[t]] <= k {
				cnt++
			}
		}
		s.up[k+1] = s.up[k] + cnt
	}
	s.ui = make([]int, s.up[n])
	s.usrc = make([]int, s.up[n])
	pos := 0
	for k := 0; k < n; k++ {
		r := perm[k]
		for t := a.RowPtr[r]; t < a.RowPtr[r+1]; t++ {
			if i := s.pinv[a.ColIdx[t]]; i <= k {
				s.ui[pos] = i
				s.usrc[pos] = t
				pos++
			}
		}
	}
	// Elimination tree and column counts of L: one elimination-tree path
	// walk per stored entry (Liu's algorithm). Row k's subtree, cut off at
	// already-visited nodes, is exactly the nonzero pattern of L's row k.
	s.parent = make([]int, n)
	flag := make([]int, n)
	colCount := make([]int, n)
	for k := 0; k < n; k++ {
		s.parent[k] = -1
		flag[k] = k
		for p := s.up[k]; p < s.up[k+1]; p++ {
			for i := s.ui[p]; flag[i] != k; i = s.parent[i] {
				if s.parent[i] == -1 {
					s.parent[i] = k
				}
				colCount[i]++
				flag[i] = k
			}
		}
	}
	s.lp = make([]int, n+1)
	for k := 0; k < n; k++ {
		s.lp[k+1] = s.lp[k] + colCount[k]
	}
	return s
}

// NewNumeric allocates a numeric factorization workspace bound to the
// symbolic structure. Factorize must be called before Solve, and every
// matrix passed to Factorize must carry the exact pattern analyzed here.
// The SymbolicFactor is shared, not copied; many NewNumeric workspaces may
// factorize concurrently against one symbolic analysis.
func (s *SymbolicFactor) NewNumeric() *SparseCholesky {
	n := s.n
	nl := s.lp[n]
	return &SparseCholesky{
		sym:     s,
		li:      make([]int, nl),
		lx:      make([]float64, nl),
		d:       NewVector(n),
		y:       NewVector(n),
		pat:     make([]int, n),
		flag:    make([]int, n),
		lnz:     make([]int, n),
		w:       NewVector(n),
		scratch: NewVector(n),
	}
}

// Matches reports whether a carries exactly the analyzed pattern: same
// shape, same row pointers, same column indices. Used by SymbolicCache to
// rule out hash collisions; O(nnz), far below the cost of a re-analysis.
func (s *SymbolicFactor) Matches(a *SparseMatrix) bool {
	if a.Rows != s.n || a.Cols != s.n || a.NNZ() != s.nnzA {
		return false
	}
	for i, p := range a.RowPtr {
		if s.rowPtr[i] != p {
			return false
		}
	}
	for i, c := range a.ColIdx {
		if s.colIdx[i] != c {
			return false
		}
	}
	return true
}

// N returns the analyzed dimension.
func (s *SymbolicFactor) N() int { return s.n }

// NNZL returns the number of stored below-diagonal entries of L — the
// symbolic fill the ordering achieved (the diagonal is implicit).
func (s *SymbolicFactor) NNZL() int { return s.lp[s.n] }

// Hash returns the canonical pattern hash of the analyzed matrix.
func (s *SymbolicFactor) Hash() uint64 { return s.hash }

// NewSparseCholesky analyzes the pattern of the square, structurally
// symmetric matrix a and returns a factorization workspace bound to that
// pattern: Analyze followed by NewNumeric. perm overrides the fill-reducing
// ordering (mostly for tests); nil selects AMDOrder.
func NewSparseCholesky(a *SparseMatrix, perm []int) *SparseCholesky {
	return Analyze(a, perm).NewNumeric()
}

// Symbolic returns the shared symbolic phase of the factorization.
func (c *SparseCholesky) Symbolic() *SymbolicFactor { return c.sym }

// NNZL returns the number of stored below-diagonal entries of L.
func (c *SparseCholesky) NNZL() int { return c.sym.NNZL() }

// Perm returns a copy of the fill-reducing ordering in use. (A copy: the
// live ordering is part of the factorization's fixed pattern and must not
// be aliased by callers.)
func (c *SparseCholesky) Perm() []int { return append([]int(nil), c.sym.perm...) }

// Shift returns the extra diagonal regularization the last Factorize had to
// apply beyond its static shift (0 if the matrix factorized cleanly).
func (c *SparseCholesky) Shift() float64 { return c.shift }
