package linalg

// SparseCholesky is a sparse simplicial LDLᵀ factorization
//
//	P A Pᵀ = L D Lᵀ
//
// with a fill-reducing permutation P, unit lower-triangular L, and diagonal
// D, specialized for the interior-point hot loop where the sparsity pattern
// of A is fixed across iterations while its values change every step:
//
//   - NewSparseCholesky runs the *symbolic* phase once — the AMD ordering,
//     the elimination tree, the per-column nonzero counts of L, and a
//     permuted upper-triangular view of A's pattern with precomputed value
//     sources — and preallocates every numeric workspace;
//   - Factorize / FactorizeQuasiDef then perform the *numeric*
//     refactorization only, in O(nnz(L) · row-width) with zero allocations;
//   - Solve / SolveRefined are sparse triangular solves against the factor.
//
// For a symmetric positive-definite A the factorization is the Cholesky
// factorization in LDLᵀ form (L·diag(√D) is the classical factor); the LDLᵀ
// form avoids square roots and extends to the symmetric quasi-definite
// KKT matrices of the equality-constrained path, which are strongly
// factorizable under any symmetric permutation.
type SparseCholesky struct {
	n    int
	perm []int // perm[k] = original index of the k-th pivot
	pinv []int // inverse permutation

	parent []int // elimination tree of the permuted matrix

	// Permuted upper-triangular view of the analyzed pattern: column k of
	// P A Pᵀ restricted to rows i ≤ k is the pairs (ui[p], Val[usrc[p]])
	// for p ∈ [up[k], up[k+1]). usrc indexes straight into the value array
	// of the matrix handed to Factorize, so refactorization needs no
	// re-permutation pass.
	up   []int
	ui   []int
	usrc []int
	nnzA int // pattern stamp checked by Factorize

	lp []int // column pointers of L, len n+1
	li []int // row indices of L, len lp[n]
	lx []float64
	d  Vector // diagonal of D

	shift float64 // extra diagonal regularization applied by the last Factorize

	// Workspaces preallocated at analysis time.
	y       Vector // sparse accumulator of the current row
	pat     []int  // topologically ordered row pattern (etree paths)
	flag    []int  // visitation stamps
	lnz     []int  // per-column fill counters of the running factorization
	w       Vector // permuted right-hand side in Solve
	scratch Vector // refinement residual
}

// NewSparseCholesky analyzes the pattern of the square, structurally
// symmetric matrix a and returns a factorization workspace bound to that
// pattern. perm overrides the fill-reducing ordering (mostly for tests);
// nil selects AMDOrder. Factorize must be called before Solve, and every
// matrix later passed to Factorize must carry the exact pattern analyzed
// here.
func NewSparseCholesky(a *SparseMatrix, perm []int) *SparseCholesky {
	if a.Rows != a.Cols {
		panic("linalg: sparse Cholesky of non-square matrix")
	}
	n := a.Rows
	if perm == nil {
		perm = AMDOrder(a)
	}
	if len(perm) != n {
		panic("linalg: SparseCholesky ordering length mismatch")
	}
	c := &SparseCholesky{n: n, perm: perm, nnzA: a.NNZ()}
	c.pinv = make([]int, n)
	for k, r := range perm {
		c.pinv[r] = k
	}
	// Permuted upper-triangular pattern with value sources: row perm[k] of
	// the (symmetric) input supplies column k of the permuted matrix.
	c.up = make([]int, n+1)
	for k := 0; k < n; k++ {
		r := perm[k]
		cnt := 0
		for t := a.RowPtr[r]; t < a.RowPtr[r+1]; t++ {
			if c.pinv[a.ColIdx[t]] <= k {
				cnt++
			}
		}
		c.up[k+1] = c.up[k] + cnt
	}
	c.ui = make([]int, c.up[n])
	c.usrc = make([]int, c.up[n])
	pos := 0
	for k := 0; k < n; k++ {
		r := perm[k]
		for t := a.RowPtr[r]; t < a.RowPtr[r+1]; t++ {
			if i := c.pinv[a.ColIdx[t]]; i <= k {
				c.ui[pos] = i
				c.usrc[pos] = t
				pos++
			}
		}
	}
	// Elimination tree and column counts of L: one elimination-tree path
	// walk per stored entry (Liu's algorithm). Row k's subtree, cut off at
	// already-visited nodes, is exactly the nonzero pattern of L's row k.
	c.parent = make([]int, n)
	c.flag = make([]int, n)
	colCount := make([]int, n)
	for k := 0; k < n; k++ {
		c.parent[k] = -1
		c.flag[k] = k
		for p := c.up[k]; p < c.up[k+1]; p++ {
			for i := c.ui[p]; c.flag[i] != k; i = c.parent[i] {
				if c.parent[i] == -1 {
					c.parent[i] = k
				}
				colCount[i]++
				c.flag[i] = k
			}
		}
	}
	c.lp = make([]int, n+1)
	for k := 0; k < n; k++ {
		c.lp[k+1] = c.lp[k] + colCount[k]
	}
	nl := c.lp[n]
	c.li = make([]int, nl)
	c.lx = make([]float64, nl)
	c.d = NewVector(n)
	c.y = NewVector(n)
	c.pat = make([]int, n)
	c.lnz = make([]int, n)
	c.w = NewVector(n)
	c.scratch = NewVector(n)
	return c
}

// NNZL returns the number of stored below-diagonal entries of L — the
// symbolic fill the ordering achieved (the diagonal is implicit).
func (c *SparseCholesky) NNZL() int { return c.lp[c.n] }

// Perm returns a copy of the fill-reducing ordering in use. (A copy: the
// live ordering is part of the factorization's fixed pattern and must not
// be aliased by callers.)
func (c *SparseCholesky) Perm() []int { return append([]int(nil), c.perm...) }

// Shift returns the extra diagonal regularization the last Factorize had to
// apply beyond its static shift (0 if the matrix factorized cleanly).
func (c *SparseCholesky) Shift() float64 { return c.shift }
