package linalg

// PanelData exposes the factor's internals to tests: the flat row-major
// panel storage of L and the diagonal of D. Bitwise comparison of these two
// arrays across runs is the strongest form of the determinism contract.
func (c *SupernodalCholesky) PanelData() (px []float64, d []float64) {
	return c.px, c.d
}
