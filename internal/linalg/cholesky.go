package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot even after the allowed regularization.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor L with A ≈ LLᵀ.
type Cholesky struct {
	n int
	l *Matrix // lower triangular, diagonal > 0
	// shift is the static regularization that was added to the diagonal
	// (0 when the matrix factorized cleanly).
	shift float64
}

// NewCholesky factorizes the symmetric positive-definite matrix A (only the
// lower triangle is read). If the factorization hits a non-positive pivot and
// reg > 0, it retries with increasing diagonal shifts reg, 10·reg, … up to
// 1e8·reg before giving up.
func NewCholesky(a *Matrix, reg float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	shift := 0.0
	for attempt := 0; ; attempt++ {
		l, ok := tryCholesky(a, shift)
		if ok {
			return &Cholesky{n: n, l: l, shift: shift}, nil
		}
		if reg <= 0 || attempt > 9 {
			return nil, ErrNotPositiveDefinite
		}
		if shift == 0 {
			shift = reg
		} else {
			shift *= 10
		}
	}
}

func tryCholesky(a *Matrix, shift float64) (*Matrix, bool) {
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + shift
		lrowj := l.Data[j*n : j*n+j]
		for _, v := range lrowj {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Data[i*n : i*n+j]
			for k, v := range lrowi {
				s -= v * lrowj[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	return l, true
}

// Shift returns the diagonal regularization that was applied (0 if none).
func (c *Cholesky) Shift() float64 { return c.shift }

// Solve solves A x = b in place: on return, b holds the solution.
func (c *Cholesky) Solve(b Vector) {
	if len(b) != c.n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	n, l := c.n, c.l
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * b[k]
		}
		b[i] = s / l.Data[i*n+i]
	}
	// Back substitution Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * b[k]
		}
		b[i] = s / l.Data[i*n+i]
	}
}

// SolveRefined solves A x = b with one step of iterative refinement against
// the original matrix a (which may differ from the factorized matrix by the
// regularization shift). The solution is written into x; b is not modified.
func (c *Cholesky) SolveRefined(a *Matrix, b Vector, x Vector) {
	if len(x) != c.n || len(b) != c.n {
		panic("linalg: SolveRefined dimension mismatch")
	}
	x.CopyFrom(b)
	c.Solve(x)
	// Residual r = b - A x; correct x by A⁻¹ r.
	r := NewVector(c.n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	c.Solve(r)
	x.AddScaled(1, r)
}

// LDLT holds an LDLᵀ factorization of a symmetric (possibly indefinite,
// quasi-definite) matrix without pivoting: A ≈ L D Lᵀ with unit lower
// triangular L and diagonal D. It is intended for KKT systems that are
// symmetric quasi-definite after regularization.
type LDLT struct {
	n int
	l *Matrix
	d Vector
}

// NewLDLT factorizes A (reading the full matrix; A must be symmetric).
// Diagonal entries whose magnitude falls below eps are replaced by ±eps,
// preserving sign (or +eps when zero), which keeps the factorization usable
// for quasi-definite KKT matrices.
func NewLDLT(a *Matrix, eps float64) (*LDLT, error) {
	if a.Rows != a.Cols {
		panic("linalg: LDLT of non-square matrix")
	}
	n := a.Rows
	l := Identity(n)
	d := NewVector(n)
	for j := 0; j < n; j++ {
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			dj -= v * v * d[k]
		}
		if math.IsNaN(dj) {
			return nil, ErrNotPositiveDefinite
		}
		if math.Abs(dj) < eps {
			if dj < 0 {
				dj = -eps
			} else {
				dj = eps
			}
		}
		d[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k) * d[k]
			}
			l.Set(i, j, s/dj)
		}
	}
	return &LDLT{n: n, l: l, d: d}, nil
}

// Solve solves A x = b in place.
func (f *LDLT) Solve(b Vector) {
	if len(b) != f.n {
		panic("linalg: LDLT.Solve dimension mismatch")
	}
	n, l := f.n, f.l
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.Data[i*n+k] * b[k]
		}
		b[i] = s
	}
	for i := 0; i < n; i++ {
		b[i] /= f.d[i]
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * b[k]
		}
		b[i] = s
	}
}

// SolveRefined solves A x = b with one iterative-refinement step against the
// original matrix a. The result is stored in x; b is unchanged.
func (f *LDLT) SolveRefined(a *Matrix, b Vector, x Vector) {
	x.CopyFrom(b)
	f.Solve(x)
	r := NewVector(f.n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	f.Solve(r)
	x.AddScaled(1, r)
}
