package linalg

import (
	"errors"
	"math"

	"repro/internal/faultinject"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot even after the allowed regularization.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor L with A ≈ LLᵀ. A
// Cholesky can be reused as a factorization workspace across matrices of the
// same size via Factorize, which avoids reallocating the factor in iterative
// algorithms that refactorize every step.
type Cholesky struct {
	n int
	l *Matrix // lower triangular, diagonal > 0
	// shift is the static regularization that was added to the diagonal
	// (0 when the matrix factorized cleanly).
	shift   float64
	scratch Vector // refinement residual, len n
}

// NewCholeskyWorkspace returns an unfactorized n×n Cholesky workspace;
// Factorize must be called before Solve.
func NewCholeskyWorkspace(n int) *Cholesky {
	return &Cholesky{n: n, l: NewMatrix(n, n), scratch: NewVector(n)}
}

// NewCholesky factorizes the symmetric positive-definite matrix A (only the
// lower triangle is read). If the factorization hits a non-positive pivot and
// reg > 0, it retries with increasing diagonal shifts reg, 10·reg, … up to
// 1e8·reg before giving up.
func NewCholesky(a *Matrix, reg float64) (*Cholesky, error) {
	c := NewCholeskyWorkspace(a.Rows)
	if err := c.Factorize(a, reg); err != nil {
		return nil, err
	}
	return c, nil
}

// Factorize (re)factorizes A into the existing workspace, with the same
// regularization retry policy as NewCholesky. A must be n×n.
func (c *Cholesky) Factorize(a *Matrix, reg float64) error {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	if a.Rows != c.n {
		panic("linalg: Cholesky.Factorize dimension mismatch")
	}
	if faultinject.Enabled() {
		if err := faultinject.Hit(faultinject.SiteDenseCholesky); err != nil {
			return err
		}
	}
	shift := 0.0
	for attempt := 0; ; attempt++ {
		if tryCholesky(a, shift, c.l) {
			c.shift = shift
			return nil
		}
		if reg <= 0 || attempt > 9 {
			return ErrNotPositiveDefinite
		}
		if shift == 0 {
			shift = reg
		} else {
			shift *= 10
		}
	}
}

// tryCholesky writes the factor into l (which must be n×n; only the lower
// triangle including the diagonal is written and later read).
func tryCholesky(a *Matrix, shift float64, l *Matrix) bool {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j) + shift
		lrowj := l.Data[j*n : j*n+j]
		for _, v := range lrowj {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Data[i*n : i*n+j]
			for k, v := range lrowi {
				s -= v * lrowj[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	return true
}

// Shift returns the diagonal regularization that was applied (0 if none).
func (c *Cholesky) Shift() float64 { return c.shift }

// Solve solves A x = b in place: on return, b holds the solution.
func (c *Cholesky) Solve(b Vector) {
	if len(b) != c.n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	n, l := c.n, c.l
	// Forward substitution L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*n : i*n+i]
		for k, v := range row {
			s -= v * b[k]
		}
		b[i] = s / l.Data[i*n+i]
	}
	// Back substitution Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * b[k]
		}
		b[i] = s / l.Data[i*n+i]
	}
}

// SolveRefined solves A x = b with one step of iterative refinement against
// the original matrix a (which may differ from the factorized matrix by the
// regularization shift). The solution is written into x; b is not modified.
func (c *Cholesky) SolveRefined(a *Matrix, b Vector, x Vector) {
	if len(x) != c.n || len(b) != c.n {
		panic("linalg: SolveRefined dimension mismatch")
	}
	x.CopyFrom(b)
	c.Solve(x)
	// Residual r = b - A x; correct x by A⁻¹ r.
	r := c.scratch
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	c.Solve(r)
	x.AddScaled(1, r)
}

// LDLT holds an LDLᵀ factorization of a symmetric (possibly indefinite,
// quasi-definite) matrix without pivoting: A ≈ L D Lᵀ with unit lower
// triangular L and diagonal D. It is intended for KKT systems that are
// symmetric quasi-definite after regularization. Like Cholesky, an LDLT can
// be reused as a factorization workspace via Factorize.
type LDLT struct {
	n       int
	l       *Matrix
	d       Vector
	scratch Vector // refinement residual, len n
}

// NewLDLTWorkspace returns an unfactorized n×n LDLᵀ workspace; Factorize
// must be called before Solve.
func NewLDLTWorkspace(n int) *LDLT {
	return &LDLT{n: n, l: Identity(n), d: NewVector(n), scratch: NewVector(n)}
}

// NewLDLT factorizes A (reading the full matrix; A must be symmetric).
// Diagonal entries whose magnitude falls below eps are replaced by ±eps,
// preserving sign (or +eps when zero), which keeps the factorization usable
// for quasi-definite KKT matrices.
func NewLDLT(a *Matrix, eps float64) (*LDLT, error) {
	f := NewLDLTWorkspace(a.Rows)
	if err := f.Factorize(a, eps); err != nil {
		return nil, err
	}
	return f, nil
}

// Factorize (re)factorizes A into the existing workspace with the same
// diagonal-floor policy as NewLDLT. A must be n×n.
func (f *LDLT) Factorize(a *Matrix, eps float64) error {
	if a.Rows != a.Cols {
		panic("linalg: LDLT of non-square matrix")
	}
	if a.Rows != f.n {
		panic("linalg: LDLT.Factorize dimension mismatch")
	}
	if faultinject.Enabled() {
		if err := faultinject.Hit(faultinject.SiteDenseLDLT); err != nil {
			return err
		}
	}
	n, l, d := f.n, f.l, f.d
	for j := 0; j < n; j++ {
		dj := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			dj -= v * v * d[k]
		}
		if math.IsNaN(dj) {
			return ErrNotPositiveDefinite
		}
		if math.Abs(dj) < eps {
			if dj < 0 {
				dj = -eps
			} else {
				dj = eps
			}
		}
		d[j] = dj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k) * d[k]
			}
			l.Set(i, j, s/dj)
		}
	}
	return nil
}

// Solve solves A x = b in place.
func (f *LDLT) Solve(b Vector) {
	if len(b) != f.n {
		panic("linalg: LDLT.Solve dimension mismatch")
	}
	n, l := f.n, f.l
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.Data[i*n+k] * b[k]
		}
		b[i] = s
	}
	for i := 0; i < n; i++ {
		b[i] /= f.d[i]
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * b[k]
		}
		b[i] = s
	}
}

// SolveRefined solves A x = b with one iterative-refinement step against the
// original matrix a. The result is stored in x; b is unchanged.
func (f *LDLT) SolveRefined(a *Matrix, b Vector, x Vector) {
	x.CopyFrom(b)
	f.Solve(x)
	r := f.scratch
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	f.Solve(r)
	x.AddScaled(1, r)
}
