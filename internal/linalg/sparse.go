package linalg

import (
	"fmt"
	"sort"
)

// SparseMatrix is a compressed-sparse-row (CSR) matrix. Row i's entries are
// ColIdx[RowPtr[i]:RowPtr[i+1]] (column indices, strictly increasing) and
// Val[RowPtr[i]:RowPtr[i+1]] (the corresponding values).
//
// The intended use in this repository is structural: the SRDF-derived
// constraint rows of the cone program touch only a handful of variables
// each, so the normal-equations assembly Gᵀ W⁻² G — the hot loop of every
// interior-point iteration — only needs to visit the structural nonzeros
// instead of full dense rows.
type SparseMatrix struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int // len NNZ()
	Val        []float64
}

// NewSparseFromDense converts a dense matrix to CSR, dropping exact zeros.
func NewSparseFromDense(m *Matrix) *SparseMatrix {
	s := &SparseMatrix{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if v != 0 {
				s.ColIdx = append(s.ColIdx, j)
				s.Val = append(s.Val, v)
			}
		}
		s.RowPtr[i+1] = len(s.ColIdx)
	}
	return s
}

// NewSparseFromPattern builds a CSR matrix with the given structural pattern
// and all values zero. pattern[i] lists row i's column indices and must be
// strictly increasing.
func NewSparseFromPattern(rows, cols int, pattern [][]int) *SparseMatrix {
	if len(pattern) != rows {
		panic("linalg: pattern length does not match row count")
	}
	s := &SparseMatrix{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	nnz := 0
	for _, p := range pattern {
		nnz += len(p)
	}
	s.ColIdx = make([]int, 0, nnz)
	for i, p := range pattern {
		for k, j := range p {
			if j < 0 || j >= cols {
				panic(fmt.Sprintf("linalg: pattern column %d out of range [0,%d)", j, cols))
			}
			if k > 0 && p[k-1] >= j {
				panic("linalg: pattern columns must be strictly increasing")
			}
			s.ColIdx = append(s.ColIdx, j)
		}
		s.RowPtr[i+1] = len(s.ColIdx)
	}
	s.Val = make([]float64, len(s.ColIdx))
	return s
}

// NNZ returns the number of stored entries.
func (s *SparseMatrix) NNZ() int { return len(s.ColIdx) }

// At returns entry (i, j), 0 when it is not stored. Rows keep their column
// indices sorted, so the lookup is a binary search of row i.
func (s *SparseMatrix) At(i, j int) float64 {
	if k := s.Index(i, j); k >= 0 {
		return s.Val[k]
	}
	return 0
}

// Index returns the storage position of entry (i, j) in ColIdx/Val, or −1
// when the entry is not stored. Rows keep their column indices strictly
// increasing, so this is a binary search of row i.
func (s *SparseMatrix) Index(i, j int) int {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	row := s.ColIdx[lo:hi]
	k := sort.SearchInts(row, j)
	if k < len(row) && row[k] == j {
		return lo + k
	}
	return -1
}

// NormInf returns the maximum absolute stored value (entries outside the
// pattern are zero, so this equals the dense max-absolute-entry norm).
func (s *SparseMatrix) NormInf() float64 {
	var m float64
	for _, v := range s.Val {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ToDense expands the matrix into dense row-major form.
func (s *SparseMatrix) ToDense() *Matrix {
	m := NewMatrix(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			m.Data[i*s.Cols+s.ColIdx[k]] = s.Val[k]
		}
	}
	return m
}

// Clone returns a deep copy of s.
func (s *SparseMatrix) Clone() *SparseMatrix {
	c := &SparseMatrix{
		Rows: s.Rows, Cols: s.Cols,
		RowPtr: make([]int, len(s.RowPtr)),
		ColIdx: make([]int, len(s.ColIdx)),
		Val:    make([]float64, len(s.Val)),
	}
	copy(c.RowPtr, s.RowPtr)
	copy(c.ColIdx, s.ColIdx)
	copy(c.Val, s.Val)
	return c
}

// ScaleRow multiplies every stored entry of row i by a.
func (s *SparseMatrix) ScaleRow(i int, a float64) {
	for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
		s.Val[k] *= a
	}
}

// MulVec computes dst = A x.
func (s *SparseMatrix) MulVec(dst, x Vector) {
	if len(dst) != s.Rows || len(x) != s.Cols {
		panic(fmt.Sprintf("linalg: sparse MulVec dims %dx%d with |dst|=%d |x|=%d", s.Rows, s.Cols, len(dst), len(x)))
	}
	for i := 0; i < s.Rows; i++ {
		var sum float64
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			sum += s.Val[k] * x[s.ColIdx[k]]
		}
		dst[i] = sum
	}
}

// MulVecAdd computes dst += alpha * A x.
func (s *SparseMatrix) MulVecAdd(dst Vector, alpha float64, x Vector) {
	if len(dst) != s.Rows || len(x) != s.Cols {
		panic("linalg: sparse MulVecAdd dimension mismatch")
	}
	for i := 0; i < s.Rows; i++ {
		var sum float64
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			sum += s.Val[k] * x[s.ColIdx[k]]
		}
		dst[i] += alpha * sum
	}
}

// MulVecT computes dst = Aᵀ x.
func (s *SparseMatrix) MulVecT(dst, x Vector) {
	if len(dst) != s.Cols || len(x) != s.Rows {
		panic("linalg: sparse MulVecT dimension mismatch")
	}
	dst.Zero()
	s.MulVecTAdd(dst, 1, x)
}

// MulVecTAdd computes dst += alpha * Aᵀ x.
func (s *SparseMatrix) MulVecTAdd(dst Vector, alpha float64, x Vector) {
	if len(dst) != s.Cols || len(x) != s.Rows {
		panic("linalg: sparse MulVecTAdd dimension mismatch")
	}
	for i := 0; i < s.Rows; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		for k := s.RowPtr[i]; k < s.RowPtr[i+1]; k++ {
			dst[s.ColIdx[k]] += xi * s.Val[k]
		}
	}
}

// AtAInto computes dst = AᵀA into the dense Cols×Cols matrix dst, visiting
// only the structural nonzeros: each row contributes the outer product of
// its stored entries, O(Σᵢ nnz(rowᵢ)²) total instead of the dense
// O(Rows·Cols²). Rows are accumulated in ascending order, matching the
// summation order of the dense Matrix.AtAInto so the two agree bitwise.
func (s *SparseMatrix) AtAInto(dst *Matrix) {
	n := s.Cols
	if dst.Rows != n || dst.Cols != n {
		panic("linalg: sparse AtAInto dimension mismatch")
	}
	dst.Zero()
	for r := 0; r < s.Rows; r++ {
		lo, hi := s.RowPtr[r], s.RowPtr[r+1]
		for a := lo; a < hi; a++ {
			vi := s.Val[a]
			if vi == 0 {
				continue
			}
			drow := dst.Data[s.ColIdx[a]*n : (s.ColIdx[a]+1)*n]
			for b := a; b < hi; b++ {
				drow[s.ColIdx[b]] += vi * s.Val[b]
			}
		}
	}
	// Mirror the upper triangle.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dst.Data[j*n+i] = dst.Data[i*n+j]
		}
	}
}
