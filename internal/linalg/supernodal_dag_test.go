package linalg_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/linalg"
)

// TestSupernodalDAGParallelBitwise factorizes the normal-equations matrix of
// a generated 1000-task dataflow instance — ≈5k rows, the shape whose
// elimination tree degenerates to the trailing dense panel chain the striped
// scheduler exists for — at parallelism 1, 2, and 8, asserting that the
// panel storage of L and the diagonal of D agree bit for bit across every
// setting. Run under -race this doubles as the data-race certification of
// the stripe scheduler: stripes of one panel run concurrently on the real
// matrix, not a toy fixture.
func TestSupernodalDAGParallelBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second factorization of a 5k-row instance")
	}
	cfg := gen.RandomDAG(gen.DAGOptions{Seed: 1, Tasks: 1000})
	p, err := core.BuildProblem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gsp := p.GSparse
	if gsp == nil {
		gsp = linalg.NewSparseFromDense(p.G)
	}
	ata := linalg.NewSparseAtA(gsp)
	ata.Compute(gsp)
	h := ata.Result
	reg := 1e-13 * (1 + h.NormInf())

	sym := linalg.Analyze(h, nil)
	chol := sym.NewSupernodal(1)
	if err := chol.Factorize(h, reg, reg); err != nil {
		t.Fatal(err)
	}
	px, d := chol.PanelData()
	refPx := append([]float64(nil), px...)
	refD := append([]float64(nil), d...)

	for _, workers := range []int{2, 8} {
		chol.SetParallelism(workers)
		if err := chol.Factorize(h, reg, reg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		px, d := chol.PanelData()
		for i := range refPx {
			//bbvet:allow floatcmp bitwise reproducibility across parallelism is the property under test
			if px[i] != refPx[i] {
				t.Fatalf("workers=%d: L panel storage differs at %d: %v vs %v", workers, i, px[i], refPx[i])
			}
		}
		for i := range refD {
			//bbvet:allow floatcmp bitwise reproducibility across parallelism is the property under test
			if d[i] != refD[i] {
				t.Fatalf("workers=%d: D differs at %d: %v vs %v", workers, i, d[i], refD[i])
			}
		}
	}
}
