package linalg

import (
	"math"

	"repro/internal/faultinject"
)

// Factorize numerically refactorizes P (A + shift·I) Pᵀ = L D Lᵀ for a
// matrix a carrying the analyzed pattern, reusing the symbolic structure and
// workspaces without allocating. The static shift is the caller's intended
// diagonal regularization (it is added on the fly, so no shifted copy of A
// is needed). If a pivot still comes out non-positive and reg > 0, the
// factorization retries with increasing extra shifts reg, 10·reg, … up to
// 1e8·reg — the same escalation policy as the dense Cholesky — before
// giving up with ErrNotPositiveDefinite.
//
//bbvet:hotpath
func (c *SparseCholesky) Factorize(a *SparseMatrix, shift, reg float64) error {
	c.checkPattern(a)
	if faultinject.Enabled() {
		//bbvet:allow hotalloc fault probe allocates only when a test arms this site
		if err := faultinject.Hit(faultinject.SiteSparseLDLT); err != nil {
			return err
		}
	}
	extra := 0.0
	for attempt := 0; ; attempt++ {
		if c.tryFactorize(a, shift+extra, false, 0) {
			c.shift = extra
			return nil
		}
		if reg <= 0 || attempt > 9 {
			return ErrNotPositiveDefinite
		}
		if extra == 0 {
			extra = reg
		} else {
			extra *= 10
		}
	}
}

// FactorizeQuasiDef refactorizes a symmetric quasi-definite matrix (e.g. the
// regularized reduced KKT matrix [[H+εI, Aᵀ], [A, −εI]]) with the analyzed
// pattern. Diagonal pivots whose magnitude falls below eps are floored at
// ±eps preserving sign, matching the dense LDLT policy; the factorization
// fails only on NaN breakdown.
//
//bbvet:hotpath
func (c *SparseCholesky) FactorizeQuasiDef(a *SparseMatrix, eps float64) error {
	c.checkPattern(a)
	if faultinject.Enabled() {
		//bbvet:allow hotalloc fault probe allocates only when a test arms this site
		if err := faultinject.Hit(faultinject.SiteSparseLDLT); err != nil {
			return err
		}
	}
	c.shift = 0
	if !c.tryFactorize(a, 0, true, eps) {
		return ErrNotPositiveDefinite
	}
	return nil
}

//bbvet:hotpath
func (c *SparseCholesky) checkPattern(a *SparseMatrix) {
	if a.Rows != c.sym.n || a.Cols != c.sym.n || a.NNZ() != c.sym.nnzA {
		panic("linalg: SparseCholesky.Factorize pattern differs from the analyzed one")
	}
}

// tryFactorize is the up-looking numeric kernel: row k of L solves the
// triangular system L[0:k,0:k] y = A_perm[0:k,k] whose nonzero pattern is
// the union of elimination-tree paths from the column's entries — collected
// in topological order via the flag stamps, so the sparse solve visits each
// contributing column exactly once. The symbolic structure (up/ui/usrc,
// etree, column pointers) is read through the shared immutable
// SymbolicFactor; only this workspace's numeric buffers are written.
//
//bbvet:hotpath
func (c *SparseCholesky) tryFactorize(a *SparseMatrix, shift float64, quasiDef bool, eps float64) bool {
	sym := c.sym
	n := sym.n
	up, ui, usrc, parent, lp := sym.up, sym.ui, sym.usrc, sym.parent, sym.lp
	y, pat, flag, lnz := c.y, c.pat, c.flag, c.lnz
	y.Zero()
	for k := range lnz {
		lnz[k] = 0
	}
	for k := 0; k < n; k++ {
		top := n
		flag[k] = k
		for p := up[k]; p < up[k+1]; p++ {
			i := ui[p]
			y[i] += a.Val[usrc[p]]
			ln := 0
			for ; flag[i] != k; i = parent[i] {
				pat[ln] = i
				ln++
				flag[i] = k
			}
			for ln > 0 {
				ln--
				top--
				pat[top] = pat[ln]
			}
		}
		dk := y[k] + shift
		y[k] = 0
		for s := top; s < n; s++ {
			i := pat[s]
			yi := y[i]
			y[i] = 0
			lki := yi / c.d[i]
			end := lp[i] + lnz[i]
			for p := lp[i]; p < end; p++ {
				y[c.li[p]] -= c.lx[p] * yi
			}
			c.li[end] = k
			c.lx[end] = lki
			lnz[i]++
			dk -= lki * yi
		}
		if math.IsNaN(dk) {
			return false
		}
		if quasiDef {
			if math.Abs(dk) < eps {
				if dk < 0 {
					dk = -eps
				} else {
					dk = eps
				}
			}
		} else if dk <= 0 {
			return false
		}
		c.d[k] = dk
	}
	return true
}
