package linalg

import "sort"

// AMDOrder computes a fill-reducing elimination ordering for the symmetric
// sparsity pattern of a: perm[k] is the original index of the k-th pivot.
//
// The algorithm is a quotient-graph minimum-degree heuristic of the
// approximate-minimum-degree (AMD) family: eliminated pivots become
// *elements* (cliques represented by their member list instead of explicit
// fill edges), elements adjacent to a pivot are absorbed into the new one,
// and node degrees are maintained as the cheap upper bound
//
//	d(i) ≈ |plain neighbors| + Σ_{e ∋ i} (|members(e)| − 1),
//
// which overcounts shared members but never undercounts the true degree.
// Plain-neighbor lists are pruned of nodes covered by a freshly created
// element, which keeps the quotient graph within O(nnz) storage instead of
// materializing fill.
//
// The pattern of a ∪ aᵀ is used and the diagonal is ignored, so a does not
// have to be structurally symmetric. The returned ordering is deterministic:
// ties are broken toward the lowest node index.
func AMDOrder(a *SparseMatrix) []int {
	if a.Rows != a.Cols {
		panic("linalg: AMDOrder needs a square matrix")
	}
	n := a.Rows
	// Symmetrized, deduplicated adjacency without the diagonal.
	adj := make([][]int, n)
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.ColIdx[k]; j != i {
				deg[i]++
				deg[j]++
			}
		}
	}
	for i := range adj {
		adj[i] = make([]int, 0, deg[i])
	}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.ColIdx[k]; j != i {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
		adj[i] = dedupSorted(adj[i])
	}

	perm := make([]int, 0, n)
	elems := make([][]int, n)     // element ids adjacent to each node
	elemNodes := make([][]int, n) // alive members of the element created at node p's elimination
	alive := make([]bool, n)
	elemAlive := make([]bool, n)
	degree := make([]int, n)
	mark := make([]int, n)
	for i := 0; i < n; i++ {
		alive[i] = true
		degree[i] = len(adj[i])
		mark[i] = -1
	}
	stamp := 0
	le := make([]int, 0, n)
	for len(perm) < n {
		// Pivot: the alive node with minimum approximate degree.
		p, best := -1, n+1
		for i := 0; i < n; i++ {
			if alive[i] && degree[i] < best {
				p, best = i, degree[i]
			}
		}
		// Member list of the new element: alive plain neighbors plus the
		// members of every adjacent element (which are thereby absorbed).
		stamp++
		mark[p] = stamp
		le = le[:0]
		for _, u := range adj[p] {
			if alive[u] && mark[u] != stamp {
				mark[u] = stamp
				le = append(le, u)
			}
		}
		for _, e := range elems[p] {
			for _, u := range elemNodes[e] {
				if alive[u] && u != p && mark[u] != stamp {
					mark[u] = stamp
					le = append(le, u)
				}
			}
			elemAlive[e] = false
			elemNodes[e] = nil
		}
		sort.Ints(le)
		alive[p] = false
		perm = append(perm, p)
		elemNodes[p] = append([]int(nil), le...)
		elemAlive[p] = true
		adj[p], elems[p] = nil, nil
		// Update every member: prune neighbors now covered by the new
		// element, drop absorbed elements, recompute the degree bound.
		for _, i := range elemNodes[p] {
			w := adj[i][:0]
			for _, u := range adj[i] {
				if alive[u] && mark[u] != stamp {
					w = append(w, u)
				}
			}
			adj[i] = w
			we := elems[i][:0]
			for _, e := range elems[i] {
				if elemAlive[e] {
					we = append(we, e)
				}
			}
			elems[i] = append(we, p)
			d := len(adj[i])
			for _, e := range elems[i] {
				d += len(elemNodes[e]) - 1
			}
			if d > n-1 {
				d = n - 1
			}
			degree[i] = d
		}
	}
	return perm
}

// dedupSorted removes consecutive duplicates from a sorted slice in place.
func dedupSorted(s []int) []int {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}
