package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSparseSPD builds an n×n sparse symmetric positive-definite matrix as
// BᵀB + I for a random m×n matrix B of the given density, returned in both
// dense and CSR form (identical values).
func randomSparseSPD(rng *rand.Rand, n int, density float64) (*Matrix, *SparseMatrix) {
	m := n + rng.Intn(n+1)
	b := NewMatrix(m, n)
	for i := range b.Data {
		if rng.Float64() < density {
			b.Data[i] = rng.NormFloat64()
		}
	}
	a := NewMatrix(n, n)
	b.AtAInto(a)
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	return a, NewSparseFromDense(a)
}

// TestSparseCholeskyRandomSPD is the randomized property test of the sparse
// pipeline: 200 random sparse SPD matrices across densities 1%–50%, where
// Solve and SolveRefined must match the dense Cholesky to 1e-8.
func TestSparseCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(56)
		density := 0.01 + 0.49*rng.Float64()
		ad, as := randomSparseSPD(rng, n, density)

		dense, err := NewCholesky(ad, 0)
		if err != nil {
			t.Fatalf("trial %d: dense factorization failed: %v", trial, err)
		}
		sc := NewSparseCholesky(as, nil)
		if err := sc.Factorize(as, 0, 0); err != nil {
			t.Fatalf("trial %d: sparse factorization failed: %v", trial, err)
		}
		if sc.Shift() != 0 {
			t.Fatalf("trial %d: unexpected regularization shift %g", trial, sc.Shift())
		}

		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := b.Clone()
		dense.Solve(want)
		got := b.Clone()
		sc.Solve(got)
		scale := 1 + NormInf(want)
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-8*scale {
				t.Fatalf("trial %d (n=%d density=%.2f): Solve x[%d] differs by %g",
					trial, n, density, i, d)
			}
		}

		wantR := NewVector(n)
		dense.SolveRefined(ad, b, wantR)
		gotR := NewVector(n)
		sc.SolveRefined(as, b, gotR)
		for i := range gotR {
			if d := math.Abs(gotR[i] - wantR[i]); d > 1e-8*scale {
				t.Fatalf("trial %d (n=%d density=%.2f): SolveRefined x[%d] differs by %g",
					trial, n, density, i, d)
			}
		}
	}
}

// TestSparseCholeskyRefactorize: the point of the symbolic split — numeric
// refactorization on the same pattern with new values must track the dense
// answer without re-analysis.
func TestSparseCholeskyRefactorize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 30
	ad, as := randomSparseSPD(rng, n, 0.15)
	sc := NewSparseCholesky(as, nil)
	for pass := 0; pass < 5; pass++ {
		// New values on the same pattern: scale every stored entry, keeping
		// SPD (D A D is congruent to A for a positive diagonal D).
		scale := NewVector(n)
		for i := range scale {
			scale[i] = 0.5 + rng.Float64()
		}
		for i := 0; i < n; i++ {
			for k := as.RowPtr[i]; k < as.RowPtr[i+1]; k++ {
				j := as.ColIdx[k]
				as.Val[k] = ad.At(i, j) * scale[i] * scale[j]
			}
		}
		adn := as.ToDense()
		dense, err := NewCholesky(adn, 0)
		if err != nil {
			t.Fatalf("pass %d: dense: %v", pass, err)
		}
		if err := sc.Factorize(as, 0, 0); err != nil {
			t.Fatalf("pass %d: sparse: %v", pass, err)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := b.Clone()
		dense.Solve(want)
		got := b.Clone()
		sc.Solve(got)
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-8*(1+NormInf(want)) {
				t.Fatalf("pass %d: x[%d] differs by %g", pass, i, d)
			}
		}
	}
}

// TestSparseCholeskyRegularizationRetry exercises the degenerate path: a
// singular PSD matrix must fail without regularization and succeed with the
// escalating diagonal-shift retry, reporting the shift it applied.
func TestSparseCholeskyRegularizationRetry(t *testing.T) {
	n := 6
	ad := Identity(n)
	ad.Set(n-1, n-1, 0) // exactly singular
	as := NewSparseFromDense(ad)
	sc := NewSparseCholesky(as, nil)
	if err := sc.Factorize(as, 0, 0); err == nil {
		t.Fatal("singular matrix factorized without regularization")
	}
	if err := sc.Factorize(as, 0, 1e-10); err != nil {
		t.Fatalf("regularized factorization failed: %v", err)
	}
	if sc.Shift() <= 0 {
		t.Fatalf("expected a positive retry shift, got %g", sc.Shift())
	}
	// The regularized solve must still be accurate on the nonsingular block.
	b := NewVector(n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := b.Clone()
	sc.Solve(x)
	for i := 0; i < n-1; i++ {
		if d := math.Abs(x[i] - b[i]); d > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
	// A static shift alone must also factorize it (no retry needed).
	if err := sc.Factorize(as, 1e-8, 0); err != nil {
		t.Fatalf("static shift factorization failed: %v", err)
	}
	if sc.Shift() != 0 {
		t.Fatalf("static shift should not trigger the retry path, got %g", sc.Shift())
	}
}

// TestSparseCholeskyQuasiDef: the factorization must handle the symmetric
// quasi-definite reduced KKT form [[H+εI, Aᵀ], [A, −εI]] under an arbitrary
// fill-reducing permutation, matching the dense LDLT.
func TestSparseCholeskyQuasiDef(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(20)
		pe := 1 + rng.Intn(3)
		hd, _ := randomSparseSPD(rng, n, 0.2)
		const eps = 1e-10
		nt := n + pe
		kd := NewMatrix(nt, nt)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				kd.Set(i, j, hd.At(i, j))
			}
			kd.Add(i, i, eps)
		}
		for e := 0; e < pe; e++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.4 {
					v := rng.NormFloat64()
					kd.Set(n+e, j, v)
					kd.Set(j, n+e, v)
				}
			}
			kd.Set(n+e, n+e, -eps)
		}
		ks := NewSparseFromDense(kd)
		dense, err := NewLDLT(kd, eps)
		if err != nil {
			t.Fatalf("trial %d: dense LDLT: %v", trial, err)
		}
		sc := NewSparseCholesky(ks, nil)
		if err := sc.FactorizeQuasiDef(ks, eps); err != nil {
			t.Fatalf("trial %d: sparse quasi-definite factorization: %v", trial, err)
		}
		b := NewVector(nt)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := NewVector(nt)
		dense.SolveRefined(kd, b, want)
		got := NewVector(nt)
		sc.SolveRefined(ks, b, got)
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > 1e-7*(1+NormInf(want)) {
				t.Fatalf("trial %d: x[%d] differs by %g", trial, i, d)
			}
		}
	}
}

// TestAMDOrderReducesFill: on an arrowhead matrix (dense hub row/column
// first) the natural ordering fills in completely while AMD eliminates the
// hub last and produces no fill at all.
func TestAMDOrderReducesFill(t *testing.T) {
	n := 40
	ad := Identity(n)
	ad.Set(0, 0, float64(n)) // diagonally dominant hub keeps the matrix SPD
	for j := 1; j < n; j++ {
		ad.Set(0, j, 1)
		ad.Set(j, 0, 1)
	}
	as := NewSparseFromDense(ad)

	perm := AMDOrder(as)
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("AMDOrder is not a permutation: %v", perm)
		}
		seen[p] = true
	}

	natural := make([]int, n)
	for i := range natural {
		natural[i] = i
	}
	nat := NewSparseCholesky(as, natural)
	amd := NewSparseCholesky(as, nil)
	if nat.NNZL() != n*(n-1)/2 {
		t.Fatalf("natural ordering of the arrowhead should fill completely: nnz(L) = %d", nat.NNZL())
	}
	if amd.NNZL() != n-1 {
		t.Fatalf("AMD ordering of the arrowhead should be fill-free: nnz(L) = %d", amd.NNZL())
	}
	// Both orderings must still solve correctly.
	if err := amd.Factorize(as, 0, 0); err != nil {
		t.Fatal(err)
	}
	dense, err := NewCholesky(ad, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := NewVector(n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	want := b.Clone()
	dense.Solve(want)
	got := b.Clone()
	amd.Solve(got)
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > 1e-8*(1+NormInf(want)) {
			t.Fatalf("x[%d] differs by %g", i, d)
		}
	}
}

// TestSparseAtAMatchesDense: the fixed-pattern scatter plan must reproduce
// the dense AᵀA, including after value rewrites on the same pattern.
func TestSparseAtAMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		m, n := 5+rng.Intn(40), 3+rng.Intn(25)
		a := NewMatrix(m, n)
		for i := range a.Data {
			if rng.Float64() < 0.2 {
				a.Data[i] = rng.NormFloat64()
			}
		}
		as := NewSparseFromDense(a)
		plan := NewSparseAtA(as)
		for pass := 0; pass < 2; pass++ {
			if pass == 1 {
				for k := range as.Val {
					as.Val[k] *= 1 + 0.1*rng.NormFloat64()
				}
				for i := 0; i < m; i++ {
					for k := as.RowPtr[i]; k < as.RowPtr[i+1]; k++ {
						a.Set(i, as.ColIdx[k], as.Val[k])
					}
				}
			}
			plan.Compute(as)
			want := NewMatrix(n, n)
			a.AtAInto(want)
			got := plan.Result.ToDense()
			for i := range got.Data {
				if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12*(1+math.Abs(want.Data[i])) {
					t.Fatalf("trial %d pass %d: AᵀA entry %d differs by %g", trial, pass, i, d)
				}
			}
		}
	}
}

// TestSparseIndex: the binary-search entry lookup against a known pattern.
func TestSparseIndex(t *testing.T) {
	s := NewSparseFromPattern(3, 5, [][]int{{0, 2, 4}, {}, {1, 3}})
	for k := range s.Val {
		s.Val[k] = float64(k + 1)
	}
	cases := []struct{ i, j, want int }{
		{0, 0, 0}, {0, 2, 1}, {0, 4, 2}, {0, 1, -1}, {0, 3, -1},
		{1, 0, -1}, {1, 4, -1},
		{2, 1, 3}, {2, 3, 4}, {2, 0, -1}, {2, 2, -1}, {2, 4, -1},
	}
	for _, c := range cases {
		if got := s.Index(c.i, c.j); got != c.want {
			t.Fatalf("Index(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
		want := 0.0
		if c.want >= 0 {
			want = float64(c.want + 1)
		}
		if got := s.At(c.i, c.j); got != want {
			t.Fatalf("At(%d,%d) = %v, want %v", c.i, c.j, got, want)
		}
	}
}
