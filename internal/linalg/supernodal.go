package linalg

// Supernodal symbolic analysis: the column partition and blocked storage
// layout of the supernodal LDLᵀ backend. A supernode is a range of
// consecutive pivot columns of L whose below-diagonal patterns nest, so the
// columns can be stored as one dense row-major panel and factorized with
// dense (BLAS-3 style) kernels instead of one sparse column at a time.
//
// The analysis runs on top of an existing SymbolicFactor — the elimination
// tree and column counts computed by Analyze — in three steps:
//
//  1. the explicit row pattern of every column of L (one elimination-tree
//     sweep, O(nnz(L)));
//  2. fundamental supernodes: column j+1 joins column j's supernode iff
//     parent[j] = j+1 and |pattern(j)| = |pattern(j+1)| + 1, i.e. the
//     patterns are identical below the diagonal;
//  3. relaxed amalgamation: adjacent supernodes merge when storing their
//     union pattern as one panel introduces at most a small budget of
//     explicit zeros, trading a few wasted multiplies for wider panels
//     (wider panels mean fewer, larger dense updates).
//
// Everything here depends only on the sparsity pattern, so one
// SupernodalSymbolic is shared read-only by any number of numeric
// workspaces, exactly like the SymbolicFactor it extends.

const (
	// maxSupernodeWidth caps panel width. Wider panels amortize better but
	// grow the per-worker update buffer (width² floats) and the explicit-zero
	// waste of amalgamation; 32 keeps the buffer inside L1.
	maxSupernodeWidth = 16
	// relaxFillBase and relaxFillShift set the amalgamation budget: two
	// adjacent supernodes merge when the panel union introduces at most
	// relaxFillBase + (stored(a)+stored(b))>>relaxFillShift explicit zeros
	// (an absolute floor plus 12.5% of the current storage).
	relaxFillBase  = 8
	relaxFillShift = 4
)

// snUpdate is one blocked outer-product contribution: descendant supernode d
// updates a target supernode with the rows rows[lo:hi] of d falling inside
// the target's column range (and every row of d from lo on, for the
// below-block part). lo and hi index the global rows array.
type snUpdate struct {
	d      int32
	lo, hi int32
}

// SupernodalSymbolic is the immutable blocked layout of L for one analyzed
// pattern: the supernode partition, per-panel row lists, flat value offsets,
// the assembly scatter plan, and the update dependency DAG. All fields are
// written once by newSupernodalSymbolic and only read afterwards.
type SupernodalSymbolic struct {
	sf *SymbolicFactor
	ns int // number of supernodes

	colPtr []int32 // len ns+1; supernode s covers permuted columns [colPtr[s], colPtr[s+1])
	snOf   []int32 // len n; owner supernode of each permuted column

	// rows[rowPtr[s]:rowPtr[s+1]] lists panel s's permuted row indices in
	// ascending order; the first width(s) entries are the supernode's own
	// columns (the dense diagonal block).
	rowPtr []int32
	rows   []int32

	// valPtr[s] is the offset of panel s in the flat value storage, where it
	// occupies nrows(s)×width(s) float64s in row-major order. valPtr[ns] is
	// the total storage.
	valPtr []int

	// Assembly plan: analyzed entry aEnt[e] (an index into the
	// SymbolicFactor's ui/usrc arrays) lands at panel-relative position
	// aDst[e] of its owner's panel. Entries are grouped per supernode by
	// asnPtr so each panel scatters only its own values.
	asnPtr []int32
	aEnt   []int32
	aDst   []int

	// Update plan: upds[updPtr[s]:updPtr[s+1]] are the contributions into
	// supernode s, in ascending descendant order (the deterministic reduction
	// order the parallel scheduler preserves). tgts[tgtPtr[d]:tgtPtr[d+1]]
	// is the transpose — the targets each descendant must notify.
	updPtr []int32
	upds   []snUpdate
	tgtPtr []int32
	tgts   []int32

	// indeg[s] is the number of distinct descendants updating s (the
	// scheduler's dependency count); leaves lists the supernodes with no
	// incoming updates, ascending.
	indeg  []int32
	leaves []int32

	maxWidth int // widest panel
	maxRows  int // tallest panel
}

// Supernodal returns the supernodal layout of the analyzed pattern,
// computing it on first use. The result is immutable and shared; concurrent
// callers synchronize through the once.
func (s *SymbolicFactor) Supernodal() *SupernodalSymbolic {
	s.snOnce.Do(func() { s.sn = newSupernodalSymbolic(s) })
	return s.sn
}

// NumSupernodes returns the number of supernodes of the blocked layout.
func (ss *SupernodalSymbolic) NumSupernodes() int { return ss.ns }

// PanelStorage returns the total flat panel storage in float64s — the
// blocked analogue of NNZL, including the explicit zeros amalgamation and
// the rectangular panel shape introduce.
func (ss *SupernodalSymbolic) PanelStorage() int { return ss.valPtr[ss.ns] }

// IdealSpeedup returns the serial-to-parallel makespan ratio of the striped
// update schedule under the given worker bound: each supernode is charged
// its update flops spread over min(workers, stripes) stripe tasks plus its
// serial diagonal-block factorization, and the panels are charged in
// sequence. The ratio is a property of the symbolic structure alone — the
// wall-clock speedup the stripe scheduler approaches on hardware with that
// many otherwise-idle cores. Treating the panel chain as fully sequential
// ignores inter-panel overlap, so on structures with real elimination-tree
// parallelism the true bound is higher.
func (ss *SupernodalSymbolic) IdealSpeedup(workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	var total, span float64
	for s := 0; s < ss.ns; s++ {
		var uf float64
		for u := ss.updPtr[s]; u < ss.updPtr[s+1]; u++ {
			upd := ss.upds[u]
			d := upd.d
			wd := float64(ss.colPtr[d+1] - ss.colPtr[d])
			nI := float64(upd.hi - upd.lo)
			nK := float64(ss.rowPtr[d+1]) - float64(upd.lo)
			uf += 2 * nI * nK * wd
		}
		w := float64(ss.colPtr[s+1] - ss.colPtr[s])
		nr := float64(ss.rowPtr[s+1]) - float64(ss.rowPtr[s])
		pf := nr * w * w
		nst := ss.stripeCount(int32(s))
		total += uf + pf
		span += uf*float64((nst+workers-1)/workers)/float64(nst) + pf
	}
	if span == 0 {
		return 1
	}
	return total / span
}

func newSupernodalSymbolic(sf *SymbolicFactor) *SupernodalSymbolic {
	n := sf.n
	ss := &SupernodalSymbolic{sf: sf}

	// Explicit row patterns of L, per column ascending: replay the
	// elimination-tree walk of Analyze, appending k to every column of row
	// k's pattern.
	lnz := make([]int, n)
	li := make([]int32, sf.lp[n])
	flag := make([]int, n)
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		flag[k] = k
		for p := sf.up[k]; p < sf.up[k+1]; p++ {
			for i := sf.ui[p]; flag[i] != k; i = sf.parent[i] {
				li[sf.lp[i]+lnz[i]] = int32(k)
				lnz[i]++
				flag[i] = k
			}
		}
	}

	// Fundamental supernodes: chains of columns with nested patterns.
	cc := func(j int) int { return sf.lp[j+1] - sf.lp[j] }
	var groups [][2]int // [c0, c1) column ranges
	for c0 := 0; c0 < n; {
		c1 := c0 + 1
		for c1 < n && c1-c0 < maxSupernodeWidth &&
			sf.parent[c1-1] == c1 && cc(c1-1) == cc(c1)+1 {
			c1++
		}
		groups = append(groups, [2]int{c0, c1})
		c0 = c1
	}

	// Panel row lists of the fundamental groups. Nestedness means the group's
	// rows are its first column's pattern plus the first column itself.
	rowsOf := make([][]int32, len(groups))
	for g, r := range groups {
		c0 := r[0]
		rows := make([]int32, 0, 1+cc(c0))
		rows = append(rows, int32(c0))
		rows = append(rows, li[sf.lp[c0]:sf.lp[c0+1]]...)
		rowsOf[g] = rows
	}

	// Relaxed amalgamation: one left-to-right pass greedily merging each
	// group into its left neighbor while the explicit-zero budget holds.
	// Merged rows are the sorted union; every own column is always a member,
	// and because column ranges stay contiguous the first width entries of
	// the union are exactly the own columns.
	merged := make([][2]int, 0, len(groups))
	mrows := make([][]int32, 0, len(groups))
	var union []int32
	for g := 0; g < len(groups); g++ {
		c0, c1 := groups[g][0], groups[g][1]
		rows := rowsOf[g]
		if len(merged) > 0 {
			lc := merged[len(merged)-1]
			lrows := mrows[len(mrows)-1]
			wm := c1 - lc[0]
			if wm <= maxSupernodeWidth {
				union = mergeSorted(union[:0], lrows, rows)
				storedA := len(lrows) * (lc[1] - lc[0])
				storedB := len(rows) * (c1 - c0)
				fill := len(union)*wm - storedA - storedB
				if fill <= relaxFillBase+((storedA+storedB)>>relaxFillShift) {
					merged[len(merged)-1][1] = c1
					mrows[len(mrows)-1] = append(lrows[:0], union...)
					continue
				}
			}
		}
		merged = append(merged, [2]int{c0, c1})
		mrows = append(mrows, rows)
	}

	ns := len(merged)
	ss.ns = ns
	ss.colPtr = make([]int32, ns+1)
	ss.snOf = make([]int32, n)
	ss.rowPtr = make([]int32, ns+1)
	ss.valPtr = make([]int, ns+1)
	total := 0
	for s := 0; s < ns; s++ {
		c0, c1 := merged[s][0], merged[s][1]
		ss.colPtr[s] = int32(c0)
		ss.colPtr[s+1] = int32(c1)
		for j := c0; j < c1; j++ {
			ss.snOf[j] = int32(s)
		}
		w := c1 - c0
		nr := len(mrows[s])
		ss.rowPtr[s+1] = ss.rowPtr[s] + int32(nr)
		ss.valPtr[s] = total
		total += nr * w
		if w > ss.maxWidth {
			ss.maxWidth = w
		}
		if nr > ss.maxRows {
			ss.maxRows = nr
		}
	}
	ss.valPtr[ns] = total
	ss.rows = make([]int32, ss.rowPtr[ns])
	for s := 0; s < ns; s++ {
		copy(ss.rows[ss.rowPtr[s]:ss.rowPtr[s+1]], mrows[s])
	}

	ss.buildAssemblyPlan()
	ss.buildUpdatePlan()
	return ss
}

// mergeSorted writes the sorted union of two ascending unique slices into
// dst (which must be empty) and returns it.
func mergeSorted(dst, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}

// buildAssemblyPlan groups the analyzed entries of the permuted
// upper-triangular view by owning supernode and precomputes each entry's
// flat panel destination, so numeric assembly is two indirections per entry
// with no searching.
func (ss *SupernodalSymbolic) buildAssemblyPlan() {
	sf := ss.sf
	n := sf.n
	nnz := sf.up[n]
	// Entry p of the view is pair (row k, col i) of the permuted lower
	// triangle with i = ui[p] and k the view column it sits under.
	aRow := make([]int32, nnz)
	counts := make([]int32, ss.ns+1)
	for k := 0; k < n; k++ {
		for p := sf.up[k]; p < sf.up[k+1]; p++ {
			aRow[p] = int32(k)
			counts[ss.snOf[sf.ui[p]]+1]++
		}
	}
	ss.asnPtr = counts
	for s := 0; s < ss.ns; s++ {
		ss.asnPtr[s+1] += ss.asnPtr[s]
	}
	ss.aEnt = make([]int32, nnz)
	ss.aDst = make([]int, nnz)
	next := make([]int32, ss.ns)
	copy(next, ss.asnPtr[:ss.ns])
	// pos[r] = local row index of r in the supernode currently being filled;
	// no clearing needed because every query hits a row of that supernode.
	pos := make([]int32, n)
	for p := 0; p < nnz; p++ {
		s := ss.snOf[sf.ui[p]]
		e := next[s]
		next[s] = e + 1
		ss.aEnt[e] = int32(p)
	}
	for s := 0; s < ss.ns; s++ {
		for idx := ss.rowPtr[s]; idx < ss.rowPtr[s+1]; idx++ {
			pos[ss.rows[idx]] = idx - ss.rowPtr[s]
		}
		c0 := int(ss.colPtr[s])
		w := int(ss.colPtr[s+1]) - c0
		for e := ss.asnPtr[s]; e < ss.asnPtr[s+1]; e++ {
			p := ss.aEnt[e]
			i := sf.ui[p]
			k := aRow[p]
			ss.aDst[e] = int(pos[k])*w + (i - c0)
		}
	}
}

// buildUpdatePlan derives the blocked update DAG from the panel row lists:
// every maximal run of a panel's below-diagonal rows owned by one ancestor
// supernode is one blocked contribution. Updates into a target are ordered
// by ascending descendant, which fixes the reduction order the parallel
// scheduler must (and does) preserve.
func (ss *SupernodalSymbolic) buildUpdatePlan() {
	counts := make([]int32, ss.ns+1)
	tcounts := make([]int32, ss.ns+1)
	for d := 0; d < ss.ns; d++ {
		w := ss.colPtr[d+1] - ss.colPtr[d]
		idx := ss.rowPtr[d] + w
		for idx < ss.rowPtr[d+1] {
			t := ss.snOf[ss.rows[idx]]
			j := idx + 1
			for j < ss.rowPtr[d+1] && ss.snOf[ss.rows[j]] == t {
				j++
			}
			counts[t+1]++
			tcounts[d+1]++
			idx = j
		}
	}
	ss.updPtr = counts
	ss.tgtPtr = tcounts
	for s := 0; s < ss.ns; s++ {
		ss.updPtr[s+1] += ss.updPtr[s]
		ss.tgtPtr[s+1] += ss.tgtPtr[s]
	}
	ss.upds = make([]snUpdate, ss.updPtr[ss.ns])
	ss.tgts = make([]int32, ss.tgtPtr[ss.ns])
	next := make([]int32, ss.ns)
	copy(next, ss.updPtr[:ss.ns])
	tnext := make([]int32, ss.ns)
	copy(tnext, ss.tgtPtr[:ss.ns])
	ss.indeg = make([]int32, ss.ns)
	for d := 0; d < ss.ns; d++ {
		w := ss.colPtr[d+1] - ss.colPtr[d]
		idx := ss.rowPtr[d] + w
		for idx < ss.rowPtr[d+1] {
			t := ss.snOf[ss.rows[idx]]
			j := idx + 1
			for j < ss.rowPtr[d+1] && ss.snOf[ss.rows[j]] == t {
				j++
			}
			e := next[t]
			next[t] = e + 1
			ss.upds[e] = snUpdate{d: int32(d), lo: idx, hi: j}
			te := tnext[d]
			tnext[d] = te + 1
			ss.tgts[te] = t
			ss.indeg[t]++
			idx = j
		}
	}
	for s := 0; s < ss.ns; s++ {
		if ss.indeg[s] == 0 {
			ss.leaves = append(ss.leaves, int32(s))
		}
	}
}
