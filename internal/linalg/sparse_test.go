package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseDense builds a dense matrix with the given fill fraction.
func randSparseDense(rng *rand.Rand, rows, cols int, fill float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Float64() < fill {
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

func TestSparseFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		d := randSparseDense(rng, rows, cols, 0.3)
		s := NewSparseFromDense(d)
		back := s.ToDense()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if back.At(i, j) != d.At(i, j) {
					t.Fatalf("trial %d: entry (%d,%d) = %v, want %v", trial, i, j, back.At(i, j), d.At(i, j))
				}
				if s.At(i, j) != d.At(i, j) {
					t.Fatalf("trial %d: At(%d,%d) = %v, want %v", trial, i, j, s.At(i, j), d.At(i, j))
				}
			}
		}
		nnz := 0
		for _, v := range d.Data {
			if v != 0 {
				nnz++
			}
		}
		if s.NNZ() != nnz {
			t.Fatalf("trial %d: NNZ = %d, want %d", trial, s.NNZ(), nnz)
		}
	}
}

func TestSparseEmptyRowsAndCols(t *testing.T) {
	// Row 1 and column 2 are entirely empty; row 3 is empty too.
	d := NewMatrixFromRows([][]float64{
		{1, 0, 0, 2},
		{0, 0, 0, 0},
		{0, 3, 0, 0},
		{0, 0, 0, 0},
	})
	s := NewSparseFromDense(d)
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ())
	}
	x := Vector{1, 1, 1, 1}
	got := NewVector(4)
	s.MulVec(got, x)
	want := NewVector(4)
	d.MulVec(want, x)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// AᵀA with an empty column stays zero on that row/col.
	ata := NewMatrix(4, 4)
	s.AtAInto(ata)
	for j := 0; j < 4; j++ {
		if ata.At(2, j) != 0 || ata.At(j, 2) != 0 {
			t.Fatalf("AtA row/col 2 not zero: %v / %v", ata.At(2, j), ata.At(j, 2))
		}
	}
	// A fully empty matrix round-trips.
	empty := NewSparseFromDense(NewMatrix(3, 2))
	if empty.NNZ() != 0 {
		t.Fatalf("empty NNZ = %d", empty.NNZ())
	}
	empty.AtAInto(NewMatrix(2, 2))
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(15)
		cols := 1 + rng.Intn(15)
		d := randSparseDense(rng, rows, cols, 0.25)
		s := NewSparseFromDense(d)
		x := NewVector(cols)
		y := NewVector(rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}

		gotR, wantR := NewVector(rows), NewVector(rows)
		s.MulVec(gotR, x)
		d.MulVec(wantR, x)
		gotC, wantC := NewVector(cols), NewVector(cols)
		s.MulVecT(gotC, y)
		d.MulVecT(wantC, y)
		for i := range gotR {
			if math.Abs(gotR[i]-wantR[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, gotR[i], wantR[i])
			}
		}
		for i := range gotC {
			if math.Abs(gotC[i]-wantC[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVecT[%d] = %v, want %v", trial, i, gotC[i], wantC[i])
			}
		}

		s.MulVecAdd(gotR, 0.5, x)
		d.MulVecAdd(wantR, 0.5, x)
		s.MulVecTAdd(gotC, -2, y)
		d.MulVecTAdd(wantC, -2, y)
		for i := range gotR {
			if math.Abs(gotR[i]-wantR[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVecAdd mismatch at %d", trial, i)
			}
		}
		for i := range gotC {
			if math.Abs(gotC[i]-wantC[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVecTAdd mismatch at %d", trial, i)
			}
		}
	}
}

func TestSparseAtAIntoMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(15)
		cols := 1 + rng.Intn(10)
		fill := 0.1 + 0.5*rng.Float64()
		d := randSparseDense(rng, rows, cols, fill)
		s := NewSparseFromDense(d)
		got := NewMatrix(cols, cols)
		want := NewMatrix(cols, cols)
		s.AtAInto(got)
		d.AtAInto(want)
		for i := range got.Data {
			// Identical accumulation order: the results agree bitwise.
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: AtA entry %d = %v, want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestSparseFromPattern(t *testing.T) {
	s := NewSparseFromPattern(3, 4, [][]int{{0, 2}, nil, {1, 2, 3}})
	if s.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", s.NNZ())
	}
	for i := range s.Val {
		s.Val[i] = float64(i + 1)
	}
	if s.At(0, 2) != 2 || s.At(2, 3) != 5 || s.At(1, 1) != 0 {
		t.Fatalf("pattern values misplaced: %v", s.Val)
	}
	c := s.Clone()
	c.Val[0] = 99
	if s.Val[0] == 99 {
		t.Fatal("Clone shares value storage")
	}
	c.ScaleRow(2, 2)
	if c.At(2, 1) != 6 || s.At(2, 1) != 3 {
		t.Fatalf("ScaleRow wrong: %v vs %v", c.At(2, 1), s.At(2, 1))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unsorted pattern did not panic")
		}
	}()
	NewSparseFromPattern(1, 3, [][]int{{2, 1}})
}
