package linalg

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestPatternHashIgnoresValues pins the cache-key contract: the hash folds
// the pattern only, so rewriting values must not change it, while any
// structural change must.
func TestPatternHashIgnoresValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, a := randomSparseSPD(rng, 40, 0.15)
	h := PatternHash(a)
	b := a.Clone()
	for i := range b.Val {
		b.Val[i] = rng.NormFloat64()
	}
	if PatternHash(b) != h {
		t.Fatal("hash changed when only values changed")
	}
	// Drop one entry: structure differs, hash must differ.
	c := &SparseMatrix{Rows: a.Rows, Cols: a.Cols, RowPtr: append([]int(nil), a.RowPtr...)}
	c.ColIdx = append([]int(nil), a.ColIdx[:len(a.ColIdx)-1]...)
	c.Val = append([]float64(nil), a.Val[:len(a.Val)-1]...)
	for i := range c.RowPtr {
		if c.RowPtr[i] > len(c.ColIdx) {
			c.RowPtr[i] = len(c.ColIdx)
		}
	}
	if PatternHash(c) == h {
		t.Fatal("hash unchanged after structural change")
	}
}

// TestSymbolicCacheSharesAnalysis checks that repeated acquires of one
// pattern run the symbolic analysis once, share the SymbolicFactor, and
// produce factorizations identical to a cold NewSparseCholesky.
func TestSymbolicCacheSharesAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, a := randomSparseSPD(rng, 50, 0.12)
	sc := NewSymbolicCache()

	cold := NewSparseCholesky(a, nil)
	if err := cold.Factorize(a, 0, 1e-12); err != nil {
		t.Fatal(err)
	}
	b := NewVector(a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := NewVector(a.Rows)
	cold.SolveRefined(a, b, want)

	var sym *SymbolicFactor
	for round := 0; round < 3; round++ {
		f := sc.Acquire(a)
		if sym == nil {
			sym = f.Symbolic()
		} else if f.Symbolic() != sym {
			t.Fatal("cache returned a different SymbolicFactor for the same pattern")
		}
		if err := f.Factorize(a, 0, 1e-12); err != nil {
			t.Fatal(err)
		}
		got := NewVector(a.Rows)
		f.SolveRefined(a, b, got)
		for i := range got {
			//bbvet:allow floatcmp cached and cold factorizations must agree bitwise
			if got[i] != want[i] {
				t.Fatalf("round %d: cached solve differs from cold at %d: %g vs %g",
					round, i, got[i], want[i])
			}
		}
		sc.Release(f)
	}
	hits, misses, patterns := sc.Stats()
	if misses != 1 || patterns != 1 {
		t.Fatalf("stats: hits=%d misses=%d patterns=%d, want 1 analysis of 1 pattern", hits, misses, patterns)
	}
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
}

// TestSymbolicCacheDistinguishesPatterns: two structurally different
// matrices must get independent symbolic factors even under one cache.
func TestSymbolicCacheDistinguishesPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, a := randomSparseSPD(rng, 30, 0.1)
	_, b := randomSparseSPD(rng, 34, 0.2)
	sc := NewSymbolicCache()
	fa := sc.Acquire(a)
	fb := sc.Acquire(b)
	if fa.Symbolic() == fb.Symbolic() {
		t.Fatal("distinct patterns share a symbolic factor")
	}
	if err := fa.Factorize(a, 0, 1e-12); err != nil {
		t.Fatal(err)
	}
	if err := fb.Factorize(b, 0, 1e-12); err != nil {
		t.Fatal(err)
	}
	sc.Release(fa)
	sc.Release(fb)
	if _, _, patterns := sc.Stats(); patterns != 2 {
		t.Fatalf("patterns = %d, want 2", patterns)
	}
}

// TestSymbolicCacheConcurrent hammers one cache from many goroutines over a
// few patterns; run under -race this checks the share-the-symbolic /
// own-the-numeric split.
func TestSymbolicCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var mats []*SparseMatrix
	for i := 0; i < 3; i++ {
		_, m := randomSparseSPD(rng, 24+8*i, 0.15)
		mats = append(mats, m)
	}
	sc := NewSymbolicCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := NewVector(0)
			x := NewVector(0)
			for it := 0; it < 50; it++ {
				m := mats[(g+it)%len(mats)]
				f := sc.Acquire(m)
				if err := f.Factorize(m, 0, 1e-12); err != nil {
					t.Error(err)
					sc.Release(f)
					return
				}
				if len(b) != m.Rows {
					b = NewVector(m.Rows)
					x = NewVector(m.Rows)
					for i := range b {
						b[i] = 1 + float64(i%5)
					}
				}
				f.SolveRefined(m, b[:m.Rows], x[:m.Rows])
				for _, v := range x[:m.Rows] {
					if math.IsNaN(v) {
						t.Error("NaN in cached solve")
						return
					}
				}
				sc.Release(f)
			}
		}(g)
	}
	wg.Wait()
	if _, _, patterns := sc.Stats(); patterns != 3 {
		t.Fatalf("patterns = %d, want 3", patterns)
	}
}

// TestSymbolicCacheSteadyStateAllocFree is the dynamic guard for the
// refactorize-with-cached-symbolic hotpath: once a pattern is in the cache
// and its pool is seeded, the full acquire → numeric refactorization →
// solve → release cycle of a sweep's steady state must not allocate.
func TestSymbolicCacheSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items at random; steady state is not alloc-free under -race")
	}
	rng := rand.New(rand.NewSource(23))
	_, a := randomSparseSPD(rng, 60, 0.1)
	sc := NewSymbolicCache()
	warm := sc.Acquire(a)
	if err := warm.Factorize(a, 0, 1e-12); err != nil {
		t.Fatal(err)
	}
	sc.Release(warm)
	b := NewVector(a.Rows)
	x := NewVector(a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ferr error
	allocs := testing.AllocsPerRun(50, func() {
		f := sc.Acquire(a)
		if err := f.Factorize(a, 0, 1e-12); err != nil {
			ferr = err
			sc.Release(f)
			return
		}
		f.SolveRefined(a, b, x)
		sc.Release(f)
	})
	if ferr != nil {
		t.Fatal(ferr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state cached solve allocated %.1f times per run, want 0", allocs)
	}
}
